// net/mac.hpp — 48-bit Ethernet MAC address value type.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace harmless::net {

class MacAddr {
 public:
  /// Zero (invalid-as-source) address.
  constexpr MacAddr() = default;

  constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Build from the low 48 bits of a u64 (useful for generated hosts:
  /// MacAddr::from_u64(0x0200'0000'0000 | host_id)).
  static constexpr MacAddr from_u64(std::uint64_t value) {
    return MacAddr({static_cast<std::uint8_t>(value >> 40), static_cast<std::uint8_t>(value >> 32),
                    static_cast<std::uint8_t>(value >> 24), static_cast<std::uint8_t>(value >> 16),
                    static_cast<std::uint8_t>(value >> 8), static_cast<std::uint8_t>(value)});
  }

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive). nullopt on any
  /// malformed input.
  static std::optional<MacAddr> parse(std::string_view text);

  /// ff:ff:ff:ff:ff:ff.
  static constexpr MacAddr broadcast() {
    return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto octet : octets_) v = (v << 8) | octet;
    return v;
  }

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const { return octets_; }

  /// Group bit (bit 0 of first octet): multicast and broadcast frames
  /// must never be learned as source addresses.
  [[nodiscard]] constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] constexpr bool is_broadcast() const { return to_u64() == 0xffffffffffffULL; }
  [[nodiscard]] constexpr bool is_zero() const { return to_u64() == 0; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const MacAddr&, const MacAddr&) = default;
  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace harmless::net

template <>
struct std::hash<harmless::net::MacAddr> {
  std::size_t operator()(const harmless::net::MacAddr& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.to_u64());
  }
};

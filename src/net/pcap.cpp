#include "net/pcap.hpp"

#include <fstream>

namespace harmless::net {

namespace {

// Little-endian writers: pcap headers are host-endian by convention;
// we fix little-endian and the reader handles only that (plus the
// matching magics), which covers every file this library produces.
void put16le(Bytes& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}
void put32le(Bytes& out, std::uint32_t value) {
  put16le(out, static_cast<std::uint16_t>(value));
  put16le(out, static_cast<std::uint16_t>(value >> 16));
}
std::uint32_t rd32le(BytesView in, std::size_t offset) {
  return static_cast<std::uint32_t>(in[offset]) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 3]) << 24);
}

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeEthernet = 1;

}  // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen)
    : snaplen_(snaplen == 0 ? 0xffffffffu : snaplen) {
  // Global header, nanosecond-resolution magic.
  put32le(buffer_, kMagicNanos);
  put16le(buffer_, 2);  // version major
  put16le(buffer_, 4);  // version minor
  put32le(buffer_, 0);  // thiszone
  put32le(buffer_, 0);  // sigfigs
  put32le(buffer_, snaplen_);
  put32le(buffer_, kLinkTypeEthernet);
}

void PcapWriter::write(std::int64_t timestamp_ns, BytesView frame) {
  const auto seconds = static_cast<std::uint32_t>(timestamp_ns / 1'000'000'000);
  const auto nanos = static_cast<std::uint32_t>(timestamp_ns % 1'000'000'000);
  const auto captured = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), snaplen_));
  put32le(buffer_, seconds);
  put32le(buffer_, nanos);
  put32le(buffer_, captured);
  put32le(buffer_, static_cast<std::uint32_t>(frame.size()));
  buffer_.insert(buffer_.end(), frame.begin(), frame.begin() + captured);
  ++records_;
}

bool PcapWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

util::Result<std::vector<PcapRecord>> pcap_parse(BytesView file) {
  using Out = util::Result<std::vector<PcapRecord>>;
  if (file.size() < 24) return Out::error("pcap: truncated global header");
  const std::uint32_t magic = rd32le(file, 0);
  std::int64_t subsecond_scale = 0;
  if (magic == kMagicNanos)
    subsecond_scale = 1;
  else if (magic == kMagicMicros)
    subsecond_scale = 1000;
  else
    return Out::error("pcap: unknown magic (big-endian or not a pcap?)");
  if (rd32le(file, 20) != kLinkTypeEthernet)
    return Out::error("pcap: not an Ethernet capture");

  std::vector<PcapRecord> records;
  std::size_t offset = 24;
  while (offset < file.size()) {
    if (offset + 16 > file.size()) return Out::error("pcap: truncated record header");
    PcapRecord record;
    const std::uint32_t seconds = rd32le(file, offset);
    const std::uint32_t subseconds = rd32le(file, offset + 4);
    const std::uint32_t captured = rd32le(file, offset + 8);
    record.timestamp_ns =
        static_cast<std::int64_t>(seconds) * 1'000'000'000 + subseconds * subsecond_scale;
    offset += 16;
    if (offset + captured > file.size()) return Out::error("pcap: truncated record body");
    record.frame.assign(file.begin() + static_cast<std::ptrdiff_t>(offset),
                        file.begin() + static_cast<std::ptrdiff_t>(offset + captured));
    offset += captured;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace harmless::net

#include "net/ipv4.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace harmless::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    std::uint64_t octet = 0;
    if (part.empty() || part.size() > 3) return std::nullopt;
    if (!util::parse_u64(part, octet) || octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace harmless::net

#include "net/l4.hpp"

namespace harmless::net {

std::optional<UdpHeader> UdpHeader::parse(BytesView segment) {
  if (segment.size() < kUdpHeaderSize) return std::nullopt;
  UdpHeader header;
  header.src_port = rd16(segment, 0);
  header.dst_port = rd16(segment, 2);
  header.length = rd16(segment, 4);
  if (header.length < kUdpHeaderSize || header.length > segment.size()) return std::nullopt;
  return header;
}

Bytes UdpHeader::serialize(std::uint16_t src_port, std::uint16_t dst_port, BytesView payload,
                           Ipv4Addr ip_src, Ipv4Addr ip_dst) {
  Bytes out;
  out.reserve(kUdpHeaderSize + payload.size());
  put16(out, src_port);
  put16(out, dst_port);
  put16(out, static_cast<std::uint16_t>(kUdpHeaderSize + payload.size()));
  put16(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());
  std::uint16_t checksum = l4_checksum(ip_src, ip_dst, IpProto::kUdp, out);
  if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
  wr16(std::span<std::uint8_t>(out.data(), out.size()), 6, checksum);
  return out;
}

std::optional<TcpHeader> TcpHeader::parse(BytesView segment) {
  if (segment.size() < kTcpHeaderSize) return std::nullopt;
  const std::uint8_t data_offset = segment[12] >> 4;
  if (data_offset < 5) return std::nullopt;
  TcpHeader header;
  header.src_port = rd16(segment, 0);
  header.dst_port = rd16(segment, 2);
  header.seq = rd32(segment, 4);
  header.ack = rd32(segment, 8);
  header.flags = segment[13];
  header.window = rd16(segment, 14);
  return header;
}

Bytes TcpHeader::serialize(const TcpHeader& header, BytesView payload, Ipv4Addr ip_src,
                           Ipv4Addr ip_dst) {
  Bytes out;
  out.reserve(kTcpHeaderSize + payload.size());
  put16(out, header.src_port);
  put16(out, header.dst_port);
  put32(out, header.seq);
  put32(out, header.ack);
  put8(out, 5 << 4);  // data offset 5 words, no options
  put8(out, header.flags);
  put16(out, header.window);
  put16(out, 0);  // checksum placeholder
  put16(out, 0);  // urgent pointer
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t checksum = l4_checksum(ip_src, ip_dst, IpProto::kTcp, out);
  wr16(std::span<std::uint8_t>(out.data(), out.size()), 16, checksum);
  return out;
}

std::optional<IcmpHeader> IcmpHeader::parse(BytesView segment) {
  if (segment.size() < kIcmpHeaderSize) return std::nullopt;
  const std::uint8_t type = segment[0];
  if (type != 0 && type != 8) return std::nullopt;
  IcmpHeader header;
  header.type = static_cast<IcmpType>(type);
  header.identifier = rd16(segment, 4);
  header.sequence = rd16(segment, 6);
  return header;
}

Bytes IcmpHeader::serialize(const IcmpHeader& header, BytesView payload) {
  Bytes out;
  out.reserve(kIcmpHeaderSize + payload.size());
  put8(out, static_cast<std::uint8_t>(header.type));
  put8(out, 0);   // code
  put16(out, 0);  // checksum placeholder
  put16(out, header.identifier);
  put16(out, header.sequence);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t checksum = internet_checksum(out);
  wr16(std::span<std::uint8_t>(out.data(), out.size()), 2, checksum);
  return out;
}

}  // namespace harmless::net

// net/packet.hpp — the unit of work that flows through the simulator.
//
// A Packet owns its frame bytes (ground truth) plus simulator metadata:
// a unique id, the creation timestamp (for end-to-end latency) and an
// accumulated processing-cost account (see sim/ and softswitch/ for who
// charges it). Header mutation goes through the byte-level helpers in
// net/vlan.hpp and net/parse.hpp so the bytes always stay canonical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "net/bytes.hpp"

namespace harmless::net {

/// Simulated nanoseconds (duplicated from sim/time.hpp to keep net/
/// independent of sim/).
using SimNanos = std::int64_t;

class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes frame) : frame_(std::move(frame)) {}

  [[nodiscard]] const Bytes& frame() const { return frame_; }
  [[nodiscard]] Bytes& frame() { return frame_; }
  [[nodiscard]] std::size_t size() const { return frame_.size(); }

  /// Monotone per-process id, assigned at first call; used to correlate
  /// send/receive events in tests and latency recorders.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  void set_id(std::uint64_t id) { id_ = id; }

  [[nodiscard]] SimNanos created_at() const { return created_at_; }
  void set_created_at(SimNanos t) { created_at_ = t; }

  /// Cumulative simulated processing cost charged by every element the
  /// packet traversed (ns of CPU/ASIC time, distinct from wire time).
  [[nodiscard]] SimNanos processing_ns() const { return processing_ns_; }
  void charge(SimNanos ns) { processing_ns_ += ns; }

  /// Number of switching elements traversed (legacy, SS_1, SS_2...).
  [[nodiscard]] int hops() const { return hops_; }
  void add_hop() { ++hops_; }

  /// classic "offset: xx xx .. ascii" dump for debugging and examples.
  [[nodiscard]] std::string hexdump() const;

 private:
  Bytes frame_;
  std::uint64_t id_ = 0;
  SimNanos created_at_ = 0;
  SimNanos processing_ns_ = 0;
  int hops_ = 0;
};

}  // namespace harmless::net

// net/packet.hpp — the unit of work that flows through the simulator.
//
// A Packet owns its frame bytes (ground truth) plus simulator metadata:
// a unique id, the creation timestamp (for end-to-end latency) and an
// accumulated processing-cost account (see sim/ and softswitch/ for who
// charges it). Header mutation goes through the byte-level helpers in
// net/vlan.hpp and net/parse.hpp so the bytes always stay canonical.
//
// Packets are move-only: the fast path (RxQueue -> scheduler burst ->
// pipeline -> emit -> link -> peer handle) moves one handle end to end
// and never copies frame bytes. Duplication is explicit via clone() —
// flood fan-out, group buckets, controller punts — and counted, which
// is what the zero-copy property test asserts against. Frame buffers
// recycle through a thread-local pool on destruction, and a Packet can
// carry an interned parse (net::PacketParse) that header mutation
// automatically invalidates: any non-const frame() access drops it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "net/bytes.hpp"

namespace harmless::net {

class PacketParse;

/// Simulated nanoseconds (duplicated from sim/time.hpp to keep net/
/// independent of sim/).
using SimNanos = std::int64_t;

/// Thread-local freelist of frame buffers: Packet destruction returns
/// its Bytes here, packet builders (net/build.cpp) draw from it, so a
/// steady-state simulation stops allocating frame storage entirely.
class FramePool {
 public:
  /// An empty buffer, with recycled capacity when available.
  [[nodiscard]] static Bytes acquire();
  /// Return a buffer (cleared and kept, or dropped when the pool is
  /// full). Zero-capacity buffers are ignored.
  static void release(Bytes&& frame);
  /// Buffers currently pooled (test/bench introspection).
  [[nodiscard]] static std::size_t pooled();
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes frame) : frame_(std::move(frame)) {}

  Packet(Packet&& other) noexcept
      : frame_(std::move(other.frame_)),
        id_(other.id_),
        created_at_(other.created_at_),
        processing_ns_(other.processing_ns_),
        hops_(other.hops_),
        intern_(std::exchange(other.intern_, nullptr)) {}

  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      recycle();
      frame_ = std::move(other.frame_);
      id_ = other.id_;
      created_at_ = other.created_at_;
      processing_ns_ = other.processing_ns_;
      hops_ = other.hops_;
      intern_ = std::exchange(other.intern_, nullptr);
    }
    return *this;
  }

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  ~Packet() { recycle(); }

  /// Explicit deep copy: fresh (pooled) frame storage, same metadata,
  /// no interned parse. Every call counts toward frame_copies() — the
  /// datapath's fast path must never need one.
  [[nodiscard]] Packet clone() const;

  /// Frame copies performed via clone() since the last reset — the
  /// copy-counting fixture for the zero-copy property test.
  [[nodiscard]] static std::uint64_t frame_copies();
  static void reset_frame_copies();

  [[nodiscard]] const Bytes& frame() const { return frame_; }
  /// Mutable frame access invalidates any interned parse: byte-level
  /// header rewrites (net/vlan.hpp, openflow/action.cpp) all come
  /// through here, so a cached parse can never go stale.
  [[nodiscard]] Bytes& frame() {
    drop_intern();
    return frame_;
  }
  [[nodiscard]] std::size_t size() const { return frame_.size(); }

  /// Monotone per-process id, assigned at first call; used to correlate
  /// send/receive events in tests and latency recorders.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  void set_id(std::uint64_t id) { id_ = id; }

  [[nodiscard]] SimNanos created_at() const { return created_at_; }
  void set_created_at(SimNanos t) { created_at_ = t; }

  /// Cumulative simulated processing cost charged by every element the
  /// packet traversed (ns of CPU/ASIC time, distinct from wire time).
  [[nodiscard]] SimNanos processing_ns() const { return processing_ns_; }
  void charge(SimNanos ns) { processing_ns_ += ns; }

  /// Number of switching elements traversed (legacy, SS_1, SS_2...).
  [[nodiscard]] int hops() const { return hops_; }
  void add_hop() { ++hops_; }

  /// The interned parse riding on this packet, if any (owned; see
  /// net/parse.hpp). Travels with moves, never with clones.
  [[nodiscard]] PacketParse* intern() const { return intern_; }
  /// Adopt `parse` (releasing any previous intern back to its pool).
  void set_intern(PacketParse* parse);
  /// Release the interned parse (called by any mutable frame access).
  void drop_intern();

  /// classic "offset: xx xx .. ascii" dump for debugging and examples.
  [[nodiscard]] std::string hexdump() const { return hexdump(frame_.size()); }
  /// Bounded dump: at most `max_bytes` of the frame (callers that log a
  /// prefix must not pay for the whole frame).
  [[nodiscard]] std::string hexdump(std::size_t max_bytes) const;

 private:
  void recycle() {
    drop_intern();
    if (frame_.capacity() != 0) FramePool::release(std::move(frame_));
  }

  Bytes frame_;
  std::uint64_t id_ = 0;
  SimNanos created_at_ = 0;
  SimNanos processing_ns_ = 0;
  int hops_ = 0;
  PacketParse* intern_ = nullptr;
};

}  // namespace harmless::net

// net/build.hpp — packet construction helpers.
//
// Workload generators and tests build frames through these; each
// returns a complete, checksummed Ethernet frame padded to the 60-byte
// Ethernet minimum.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/arp.hpp"
#include "net/bytes.hpp"
#include "net/ipv4.hpp"
#include "net/l4.hpp"
#include "net/mac.hpp"
#include "net/packet.hpp"
#include "net/vlan.hpp"

namespace harmless::net {

struct FlowKey {
  MacAddr eth_src;
  MacAddr eth_dst;
  Ipv4Addr ip_src;
  Ipv4Addr ip_dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

/// UDP datagram, payload filled with `fill` repeated. `frame_size` is
/// the final Ethernet frame size (headers included); it is clamped to
/// [60, 1518] and the payload is sized to fit.
Packet make_udp(const FlowKey& flow, std::size_t frame_size = 64, std::uint8_t fill = 0xab);

/// A prebuilt UDP frame for high-rate generators (the DPDK-pktgen
/// trick): serialize the headers and payload once per (mac, ip) pair,
/// then stamp() per-packet L4 ports with an RFC 1624 incremental
/// checksum update. stamp(s, d) produces a frame byte-identical to
/// make_udp with those ports (tests/net/build_property_test.cpp holds
/// it to that), without any per-packet header serialization or allocation
/// beyond the pooled frame itself.
class UdpTemplate {
 public:
  /// `flow` ports are ignored; frame_size/fill as in make_udp.
  explicit UdpTemplate(const FlowKey& flow, std::size_t frame_size = 64,
                       std::uint8_t fill = 0xab);

  /// A fresh pooled Packet with the ports (and checksum) stamped in.
  [[nodiscard]] Packet stamp(std::uint16_t src_port, std::uint16_t dst_port) const;

 private:
  Bytes frame_;
  /// Folded ones'-complement sum of the pseudo-header and the
  /// zero-port UDP segment; per-packet ports just add in.
  std::uint32_t base_sum_ = 0;
};

/// TCP segment with the given flags and payload text (e.g. an HTTP
/// request line for the parental-control use case).
Packet make_tcp(const FlowKey& flow, std::uint8_t tcp_flags, std::string_view payload = {});

/// A prebuilt TCP frame for high-rate generators — the UdpTemplate
/// trick for the stateful-tier workloads: serialize the headers (and
/// flags) once, then stamp() per-packet L4 ports with an RFC 1624
/// incremental checksum update. stamp(s, d) is byte-identical to
/// make_tcp with those ports (tests/net/build_property_test.cpp).
/// Flags are fixed per template (connection generators keep one
/// template per phase: SYN, ACK, FIN|ACK...).
class TcpTemplate {
 public:
  /// `flow` ports are ignored; flags/payload as in make_tcp.
  explicit TcpTemplate(const FlowKey& flow, std::uint8_t tcp_flags,
                       std::string_view payload = {});

  /// A fresh pooled Packet with the ports (and checksum) stamped in.
  [[nodiscard]] Packet stamp(std::uint16_t src_port, std::uint16_t dst_port) const;

 private:
  Bytes frame_;
  /// Folded ones'-complement sum of the pseudo-header and the
  /// zero-port TCP segment; per-packet ports just add in.
  std::uint32_t base_sum_ = 0;
};

/// ARP request: who-has target_ip tell sender.
Packet make_arp_request(MacAddr sender_mac, Ipv4Addr sender_ip, Ipv4Addr target_ip);

/// ARP reply: sender_ip is-at sender_mac, unicast to the requester.
Packet make_arp_reply(MacAddr sender_mac, Ipv4Addr sender_ip, MacAddr target_mac,
                      Ipv4Addr target_ip);

/// ICMP echo request/reply.
Packet make_icmp_echo(const FlowKey& flow, bool request, std::uint16_t identifier,
                      std::uint16_t sequence);

/// Raw Ethernet frame with an arbitrary EtherType and payload.
Packet make_raw(MacAddr src, MacAddr dst, std::uint16_t ether_type, BytesView payload);

/// Minimal HTTP/1.1 GET over TCP (single segment) — used by the
/// parental-control scenario; the Host header is what the app inspects.
Packet make_http_get(const FlowKey& flow, std::string_view host, std::string_view path = "/");

}  // namespace harmless::net

// net/l4.hpp — UDP, TCP and ICMP headers (minimal but checksummed).
//
// TCP is header-only (no sequencing/state machine): HARMLESS use cases
// match on ports and flags, the simulator's "HTTP" client/server layer
// carries requests in single segments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace harmless::net {

constexpr std::size_t kUdpHeaderSize = 8;
constexpr std::size_t kTcpHeaderSize = 20;  // no options
constexpr std::size_t kIcmpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  static std::optional<UdpHeader> parse(BytesView segment);
  /// Serialize header+payload with checksum over the pseudo-header.
  [[nodiscard]] static Bytes serialize(std::uint16_t src_port, std::uint16_t dst_port,
                                       BytesView payload, Ipv4Addr ip_src, Ipv4Addr ip_dst);
};

/// TCP flag bits (subset).
enum : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  static std::optional<TcpHeader> parse(BytesView segment);
  [[nodiscard]] static Bytes serialize(const TcpHeader& header, BytesView payload,
                                       Ipv4Addr ip_src, Ipv4Addr ip_dst);
};

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kEchoRequest = 8,
};

struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  static std::optional<IcmpHeader> parse(BytesView segment);
  [[nodiscard]] static Bytes serialize(const IcmpHeader& header, BytesView payload);
};

}  // namespace harmless::net

// net/ipv4.hpp — IPv4 address value type.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace harmless::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order_value) : value_(host_order_value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parse dotted-quad "10.0.0.1". nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }
  [[nodiscard]] constexpr bool is_broadcast() const { return value_ == 0xffffffffU; }
  /// 224.0.0.0/4.
  [[nodiscard]] constexpr bool is_multicast() const { return (value_ >> 28) == 0xe; }

  /// True if this address is inside `network`/`prefix_len`.
  [[nodiscard]] constexpr bool in_subnet(Ipv4Addr network, int prefix_len) const {
    if (prefix_len <= 0) return true;
    if (prefix_len >= 32) return value_ == network.value_;
    const std::uint32_t mask = ~((1U << (32 - prefix_len)) - 1);
    return (value_ & mask) == (network.value_ & mask);
  }

  friend constexpr bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;
  friend constexpr auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;

 private:
  std::uint32_t value_ = 0;  // host byte order; serialized big-endian by writers
};

}  // namespace harmless::net

template <>
struct std::hash<harmless::net::Ipv4Addr> {
  std::size_t operator()(const harmless::net::Ipv4Addr& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};

#include "net/vlan.hpp"

#include "net/ethernet.hpp"

namespace harmless::net {

std::optional<VlanTag> vlan_peek(BytesView frame) {
  if (frame.size() < kEthHeaderSize + 4) return std::nullopt;
  if (rd16(frame, 12) != static_cast<std::uint16_t>(EtherType::kVlan)) return std::nullopt;
  return VlanTag::from_tci(rd16(frame, 14));
}

void vlan_push(Bytes& frame, VlanTag tag) {
  // Insert TPID+TCI at offset 12 (after dst+src MAC); the original
  // EtherType slides to offset 16 and becomes the inner type.
  std::uint8_t tag_bytes[4];
  wr16(std::span<std::uint8_t>(tag_bytes, 4), 0, static_cast<std::uint16_t>(EtherType::kVlan));
  wr16(std::span<std::uint8_t>(tag_bytes, 4), 2, tag.tci());
  frame.insert(frame.begin() + 12, tag_bytes, tag_bytes + 4);
}

std::optional<VlanTag> vlan_pop(Bytes& frame) {
  const auto tag = vlan_peek(frame);
  if (!tag) return std::nullopt;
  frame.erase(frame.begin() + 12, frame.begin() + 16);
  return tag;
}

bool vlan_set_vid(Bytes& frame, VlanId vid) {
  if (!vlan_peek(frame)) return false;
  auto tag = VlanTag::from_tci(rd16(frame, 14));
  tag.vid = vid & 0x0fff;
  wr16(std::span<std::uint8_t>(frame.data(), frame.size()), 14, tag.tci());
  return true;
}

}  // namespace harmless::net

#include "net/parse.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace harmless::net {

std::uint16_t ParsedPacket::src_port() const {
  if (tcp) return tcp->src_port;
  if (udp) return udp->src_port;
  return 0;
}

std::uint16_t ParsedPacket::dst_port() const {
  if (tcp) return tcp->dst_port;
  if (udp) return udp->dst_port;
  return 0;
}

ParsedPacket parse_packet(BytesView frame) {
  ParsedPacket out;
  const auto eth = EthernetHeader::parse(frame);
  if (!eth) return out;
  out.l2_valid = true;
  out.eth_dst = eth->dst;
  out.eth_src = eth->src;
  out.eth_type = eth->ether_type;

  std::size_t l3_offset = kEthHeaderSize;
  if (eth->ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    if (frame.size() < kEthHeaderSize + 4) return out;
    out.vlan = VlanTag::from_tci(rd16(frame, 14));
    out.eth_type = rd16(frame, 16);
    l3_offset += 4;
    // Q-in-Q inner tags are left unparsed by design: the HARMLESS data
    // path never stacks more than one tag on the trunk.
  }

  const BytesView l3 = frame.subspan(std::min(l3_offset, frame.size()));
  if (out.eth_type == static_cast<std::uint16_t>(EtherType::kArp)) {
    out.arp = ArpPacket::parse(l3);
    return out;
  }
  if (out.eth_type != static_cast<std::uint16_t>(EtherType::kIpv4)) return out;

  out.ipv4 = Ipv4Header::parse(l3);
  if (!out.ipv4) return out;

  // The IP total_length may be shorter than the frame (Ethernet pads
  // runts to 60 bytes): use it to bound the L4 segment.
  const std::size_t ip_payload_size =
      std::min<std::size_t>(out.ipv4->total_length, l3.size()) - kIpv4HeaderSize;
  const BytesView l4 = l3.subspan(kIpv4HeaderSize, ip_payload_size);
  const std::size_t l4_offset = l3_offset + kIpv4HeaderSize;

  switch (static_cast<IpProto>(out.ipv4->protocol)) {
    case IpProto::kUdp:
      out.udp = UdpHeader::parse(l4);
      if (out.udp) {
        out.l4_payload_offset = l4_offset + kUdpHeaderSize;
        out.l4_payload_size = out.udp->length - kUdpHeaderSize;
      }
      break;
    case IpProto::kTcp:
      out.tcp = TcpHeader::parse(l4);
      if (out.tcp) {
        out.l4_payload_offset = l4_offset + kTcpHeaderSize;
        out.l4_payload_size = l4.size() - kTcpHeaderSize;
      }
      break;
    case IpProto::kIcmp:
      out.icmp = IcmpHeader::parse(l4);
      if (out.icmp) {
        out.l4_payload_offset = l4_offset + kIcmpHeaderSize;
        out.l4_payload_size = l4.size() - kIcmpHeaderSize;
      }
      break;
  }
  return out;
}

std::string_view l4_payload(const ParsedPacket& parsed, BytesView frame) {
  if (parsed.l4_payload_size == 0 ||
      parsed.l4_payload_offset + parsed.l4_payload_size > frame.size())
    return {};
  return {reinterpret_cast<const char*>(frame.data()) + parsed.l4_payload_offset,
          parsed.l4_payload_size};
}

namespace {

constexpr std::size_t kParsePoolCap = 4096;

/// Leaked on purpose, like net::FramePool's freelist: static-storage
/// Packets may release interns during shutdown, after a function-local
/// thread_local would already be gone.
std::vector<PacketParse*>& parse_pool() {
  thread_local auto* pool = new std::vector<PacketParse*>();
  return *pool;
}

}  // namespace

PacketParse* PacketParse::acquire() {
  auto& pool = parse_pool();
  if (pool.empty()) return new PacketParse();
  PacketParse* parse = pool.back();
  pool.pop_back();
  return parse;
}

void PacketParse::release(PacketParse* parse) {
  if (parse == nullptr) return;
  auto& pool = parse_pool();
  if (pool.size() >= kParsePoolCap) {
    delete parse;
    return;
  }
  pool.push_back(parse);
}

PacketParse& parse_cached(Packet& packet) {
  if (PacketParse* intern = packet.intern()) return *intern;
  PacketParse* parse = PacketParse::acquire();
  parse->parsed = parse_packet(std::as_const(packet).frame());
  parse->projection_valid = false;
  packet.set_intern(parse);
  return *parse;
}

std::string ParsedPacket::to_string() const {
  if (!l2_valid) return "<malformed frame>";
  std::ostringstream os;
  os << eth_src.to_string() << " > " << eth_dst.to_string();
  if (vlan) os << " vlan " << vlan->vid;
  if (arp) {
    os << ' ' << arp->to_string();
  } else if (ipv4) {
    os << ' ' << ipv4->src.to_string() << " > " << ipv4->dst.to_string();
    if (tcp)
      os << " tcp " << tcp->src_port << ">" << tcp->dst_port;
    else if (udp)
      os << " udp " << udp->src_port << ">" << udp->dst_port;
    else if (icmp)
      os << (icmp->type == IcmpType::kEchoRequest ? " icmp echo-req" : " icmp echo-rep");
  } else {
    os << util::format(" type=0x%04x", eth_type);
  }
  return os.str();
}

}  // namespace harmless::net

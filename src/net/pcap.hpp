// net/pcap.hpp — libpcap-format capture writer/reader.
//
// Every simulated link can be tapped into a classic pcap file
// (readable by tcpdump/Wireshark: magic 0xa1b2c3d4, LINKTYPE_ETHERNET)
// with simulated timestamps, which is how you debug a hairpin path
// without printf. The reader exists for tests and for replaying
// captures through the simulator.
//
//   net::PcapWriter pcap;
//   network.tap(channel, pcap);          // see sim/network.hpp
//   ...run...
//   pcap.save("trunk.pcap");
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bytes.hpp"
#include "net/packet.hpp"
#include "util/result.hpp"

namespace harmless::net {

struct PcapRecord {
  /// Capture timestamp in nanoseconds (simulated time).
  std::int64_t timestamp_ns = 0;
  Bytes frame;
};

class PcapWriter {
 public:
  /// `snaplen`: bytes kept per frame (pcap semantics; 0 = unlimited).
  explicit PcapWriter(std::uint32_t snaplen = 65535);

  void write(std::int64_t timestamp_ns, BytesView frame);
  void write(std::int64_t timestamp_ns, const Packet& packet) {
    write(timestamp_ns, packet.frame());
  }

  [[nodiscard]] std::size_t count() const { return records_; }

  /// The full capture file (header + records) as bytes.
  [[nodiscard]] const Bytes& bytes() const { return buffer_; }

  /// Write the capture to disk. Returns false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  std::uint32_t snaplen_;
  std::size_t records_ = 0;
  Bytes buffer_;
};

/// Parse a pcap byte stream (as produced by PcapWriter or tcpdump with
/// microsecond or nanosecond magic, native little-endian layout).
[[nodiscard]] util::Result<std::vector<PcapRecord>> pcap_parse(BytesView file);

}  // namespace harmless::net

#include "net/ethernet.hpp"

#include "util/strings.hpp"

namespace harmless::net {

std::optional<EthernetHeader> EthernetHeader::parse(BytesView frame) {
  if (frame.size() < kEthHeaderSize) return std::nullopt;
  EthernetHeader header;
  std::array<std::uint8_t, 6> mac{};
  std::copy(frame.begin(), frame.begin() + 6, mac.begin());
  header.dst = MacAddr(mac);
  std::copy(frame.begin() + 6, frame.begin() + 12, mac.begin());
  header.src = MacAddr(mac);
  header.ether_type = rd16(frame, 12);
  return header;
}

void EthernetHeader::write(std::span<std::uint8_t> frame) const {
  std::copy(dst.octets().begin(), dst.octets().end(), frame.begin());
  std::copy(src.octets().begin(), src.octets().end(), frame.begin() + 6);
  wr16(frame, 12, ether_type);
}

std::string EthernetHeader::to_string() const {
  return util::format("eth %s > %s type=0x%04x", src.to_string().c_str(),
                      dst.to_string().c_str(), ether_type);
}

}  // namespace harmless::net

// net/bytes.hpp — big-endian (network byte order) buffer accessors.
//
// All wire formats in this library are serialized into plain
// std::vector<uint8_t> in network byte order; these helpers are the
// single place where byte order is handled.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace harmless::net {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline std::uint16_t rd16(BytesView buf, std::size_t offset) {
  return static_cast<std::uint16_t>((buf[offset] << 8) | buf[offset + 1]);
}

inline std::uint32_t rd32(BytesView buf, std::size_t offset) {
  return (static_cast<std::uint32_t>(buf[offset]) << 24) |
         (static_cast<std::uint32_t>(buf[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[offset + 2]) << 8) |
         static_cast<std::uint32_t>(buf[offset + 3]);
}

inline void wr16(std::span<std::uint8_t> buf, std::size_t offset, std::uint16_t value) {
  buf[offset] = static_cast<std::uint8_t>(value >> 8);
  buf[offset + 1] = static_cast<std::uint8_t>(value);
}

inline void wr32(std::span<std::uint8_t> buf, std::size_t offset, std::uint32_t value) {
  buf[offset] = static_cast<std::uint8_t>(value >> 24);
  buf[offset + 1] = static_cast<std::uint8_t>(value >> 16);
  buf[offset + 2] = static_cast<std::uint8_t>(value >> 8);
  buf[offset + 3] = static_cast<std::uint8_t>(value);
}

/// Append big-endian values while building a packet.
inline void put8(Bytes& buf, std::uint8_t value) { buf.push_back(value); }
inline void put16(Bytes& buf, std::uint16_t value) {
  buf.push_back(static_cast<std::uint8_t>(value >> 8));
  buf.push_back(static_cast<std::uint8_t>(value));
}
inline void put32(Bytes& buf, std::uint32_t value) {
  buf.push_back(static_cast<std::uint8_t>(value >> 24));
  buf.push_back(static_cast<std::uint8_t>(value >> 16));
  buf.push_back(static_cast<std::uint8_t>(value >> 8));
  buf.push_back(static_cast<std::uint8_t>(value));
}

}  // namespace harmless::net

#include "net/arp.hpp"

#include "util/strings.hpp"

namespace harmless::net {

std::optional<ArpPacket> ArpPacket::parse(BytesView payload) {
  if (payload.size() < kArpPayloadSize) return std::nullopt;
  if (rd16(payload, 0) != 1) return std::nullopt;       // htype Ethernet
  if (rd16(payload, 2) != 0x0800) return std::nullopt;  // ptype IPv4
  if (payload[4] != 6 || payload[5] != 4) return std::nullopt;
  const std::uint16_t op = rd16(payload, 6);
  if (op != 1 && op != 2) return std::nullopt;

  ArpPacket arp;
  arp.op = static_cast<ArpOp>(op);
  std::array<std::uint8_t, 6> mac{};
  std::copy(payload.begin() + 8, payload.begin() + 14, mac.begin());
  arp.sender_mac = MacAddr(mac);
  arp.sender_ip = Ipv4Addr(rd32(payload, 14));
  std::copy(payload.begin() + 18, payload.begin() + 24, mac.begin());
  arp.target_mac = MacAddr(mac);
  arp.target_ip = Ipv4Addr(rd32(payload, 24));
  return arp;
}

Bytes ArpPacket::serialize() const {
  Bytes out;
  out.reserve(kArpPayloadSize);
  put16(out, 1);       // htype Ethernet
  put16(out, 0x0800);  // ptype IPv4
  put8(out, 6);        // hlen
  put8(out, 4);        // plen
  put16(out, static_cast<std::uint16_t>(op));
  out.insert(out.end(), sender_mac.octets().begin(), sender_mac.octets().end());
  put32(out, sender_ip.value());
  out.insert(out.end(), target_mac.octets().begin(), target_mac.octets().end());
  put32(out, target_ip.value());
  return out;
}

std::string ArpPacket::to_string() const {
  if (op == ArpOp::kRequest)
    return util::format("arp who-has %s tell %s", target_ip.to_string().c_str(),
                        sender_ip.to_string().c_str());
  return util::format("arp %s is-at %s", sender_ip.to_string().c_str(),
                      sender_mac.to_string().c_str());
}

}  // namespace harmless::net

// net/vlan.hpp — IEEE 802.1Q VLAN tagging.
//
// The 4-byte tag sits between the source MAC and the EtherType:
//   [12..13] TPID = 0x8100
//   [14..15] TCI: PCP(3) | DEI(1) | VID(12)
//
// push/pop/rewrite operate on raw frames and are the primitive HARMLESS
// relies on: the legacy switch pushes the access-port VLAN on ingress,
// SS_1 pops it toward the patch ports and pushes the output port's VLAN
// on the way back.
#pragma once

#include <cstdint>
#include <optional>

#include "net/bytes.hpp"

namespace harmless::net {

/// 12-bit VLAN identifier. 0 = priority tag (no VLAN), 4095 = reserved.
using VlanId = std::uint16_t;

constexpr VlanId kVlanNone = 0;
constexpr VlanId kVlanMax = 4094;

/// True for usable VLAN ids (1..4094).
constexpr bool vlan_id_valid(VlanId vid) { return vid >= 1 && vid <= kVlanMax; }

struct VlanTag {
  VlanId vid = 0;
  std::uint8_t pcp = 0;  // 802.1p priority, 3 bits
  bool dei = false;      // drop-eligible indicator

  [[nodiscard]] std::uint16_t tci() const {
    return static_cast<std::uint16_t>((pcp & 0x7) << 13) |
           static_cast<std::uint16_t>(dei ? 0x1000 : 0) | (vid & 0x0fff);
  }
  static VlanTag from_tci(std::uint16_t tci) {
    return VlanTag{static_cast<VlanId>(tci & 0x0fff), static_cast<std::uint8_t>(tci >> 13),
                   (tci & 0x1000) != 0};
  }

  friend bool operator==(const VlanTag&, const VlanTag&) = default;
};

/// The outermost tag, if the frame is 802.1Q-tagged. nullopt otherwise
/// (including runt frames).
std::optional<VlanTag> vlan_peek(BytesView frame);

/// Insert a tag after the source MAC. Frame must hold an Ethernet
/// header. Q-in-Q stacking is permitted (new tag becomes outermost).
void vlan_push(Bytes& frame, VlanTag tag);

/// Remove the outermost tag. Returns the removed tag, or nullopt (frame
/// unchanged) if the frame was untagged.
std::optional<VlanTag> vlan_pop(Bytes& frame);

/// Overwrite the VID of the outermost tag in place. Returns false if
/// the frame is untagged.
bool vlan_set_vid(Bytes& frame, VlanId vid);

}  // namespace harmless::net

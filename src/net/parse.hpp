// net/parse.hpp — one-pass full-stack packet parser.
//
// `ParsedPacket` is the flat field view every lookup path consumes: the
// legacy switch reads the VLAN tag and MACs, the OpenFlow pipeline
// matches on all of it. Parsing is strict about lengths but tolerant of
// unknown EtherTypes/protocols (fields stay unset, `l2_valid` alone).
//
// The view holds copies of the fields (not pointers into the frame), so
// it stays valid while actions rewrite the frame; re-parse after
// structural changes (tag push/pop).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/arp.hpp"
#include "net/bytes.hpp"
#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "net/l4.hpp"
#include "net/packet.hpp"
#include "net/vlan.hpp"

namespace harmless::net {

struct ParsedPacket {
  // L2 — always present when l2_valid.
  bool l2_valid = false;
  MacAddr eth_dst;
  MacAddr eth_src;
  /// EtherType after any VLAN tags (the "effective" type).
  std::uint16_t eth_type = 0;

  // Outermost 802.1Q tag, if any.
  std::optional<VlanTag> vlan;

  // ARP (when eth_type == kArp and payload parses).
  std::optional<ArpPacket> arp;

  // IPv4 (when eth_type == kIpv4 and header parses).
  std::optional<Ipv4Header> ipv4;

  // L4 over IPv4.
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpHeader> icmp;

  /// Byte offset of the L4 payload within the frame (0 when absent);
  /// used by the parental-control app to inspect HTTP request lines.
  std::size_t l4_payload_offset = 0;
  std::size_t l4_payload_size = 0;

  [[nodiscard]] bool has_vlan() const { return vlan.has_value(); }
  [[nodiscard]] VlanId vlan_vid() const { return vlan ? vlan->vid : kVlanNone; }

  /// L4 source/destination ports (TCP or UDP), 0 when neither.
  [[nodiscard]] std::uint16_t src_port() const;
  [[nodiscard]] std::uint16_t dst_port() const;

  /// tcpdump-ish one-liner.
  [[nodiscard]] std::string to_string() const;
};

/// Parse a frame. Never throws; missing/garbled layers simply leave the
/// corresponding optionals empty.
ParsedPacket parse_packet(BytesView frame);

/// Convenience overload.
inline ParsedPacket parse_packet(const Packet& packet) { return parse_packet(packet.frame()); }

/// An interned parse riding on a Packet (Packet::intern()): the
/// ParsedPacket plus one opaque projection slot a higher layer may
/// cache its own flattened view in (openflow keeps its FieldView here
/// without net/ depending on openflow/). Instances recycle through a
/// thread-local pool; Packet invalidates its intern on any mutable
/// frame() access, so a cached parse can never describe stale bytes.
class PacketParse {
 public:
  ParsedPacket parsed;

  /// Opaque, trivially-copyable projection slot (openflow::FieldView is
  /// the one user). `projection_valid` is reset whenever the parse is
  /// (re)built.
  static constexpr std::size_t kProjectionBytes = 160;
  alignas(16) unsigned char projection[kProjectionBytes];
  bool projection_valid = false;

  /// Pool a released instance (called by Packet when the intern drops).
  static void release(PacketParse* parse);
  /// A pooled (or fresh) instance; parsed/projection state undefined.
  [[nodiscard]] static PacketParse* acquire();
};

/// The interned parse of `packet`, parsing (once) on a cache miss. The
/// reference stays valid until the packet is mutated, moved-from, or
/// destroyed. Repeated calls between mutations are O(1) — this is the
/// once-per-hop parse the pipeline, hosts and the legacy switch share.
PacketParse& parse_cached(Packet& packet);

/// Extract the L4 payload of a parsed packet as a string_view into the
/// original frame (empty if none). The frame must outlive the view.
std::string_view l4_payload(const ParsedPacket& parsed, BytesView frame);

}  // namespace harmless::net

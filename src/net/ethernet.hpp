// net/ethernet.hpp — Ethernet II framing.
//
// Frame layout (no FCS; the simulator does not model bit errors):
//   [0..5]  destination MAC
//   [6..11] source MAC
//   [12..13] EtherType (or TPID 0x8100 when a VLAN tag follows)
//   payload...
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"
#include "net/mac.hpp"

namespace harmless::net {

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,   // 802.1Q TPID
  kIpv6 = 0x86dd,
  kExperimental = 0x88b5,
};

constexpr std::size_t kEthHeaderSize = 14;
constexpr std::size_t kMinFrameSize = 60;    // 64 on the wire minus 4-byte FCS
constexpr std::size_t kMaxFrameSize = 1518;  // 1500 MTU + header + 802.1Q

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  /// Parse the first 14 bytes; nullopt if the buffer is too short.
  static std::optional<EthernetHeader> parse(BytesView frame);

  /// Serialize into the first 14 bytes of `frame` (must be large enough).
  void write(std::span<std::uint8_t> frame) const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace harmless::net

#include "net/packet.hpp"

#include <cctype>
#include <sstream>

#include "util/strings.hpp"

namespace harmless::net {

std::string Packet::hexdump() const {
  std::ostringstream os;
  for (std::size_t offset = 0; offset < frame_.size(); offset += 16) {
    os << util::format("%04zx: ", offset);
    std::string ascii;
    for (std::size_t i = 0; i < 16; ++i) {
      if (offset + i < frame_.size()) {
        const std::uint8_t byte = frame_[offset + i];
        os << util::format("%02x ", byte);
        ascii += std::isprint(byte) ? static_cast<char>(byte) : '.';
      } else {
        os << "   ";
      }
    }
    os << ' ' << ascii << '\n';
  }
  return os.str();
}

}  // namespace harmless::net

#include "net/packet.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "net/parse.hpp"
#include "util/strings.hpp"

namespace harmless::net {

namespace {

constexpr std::size_t kFramePoolCap = 4096;
std::uint64_t g_frame_copies = 0;

/// Leaked on purpose: a function-local thread_local vector would be
/// destroyed before static-storage Packets, whose destructors release
/// into it. A leaked pool has no destruction order.
std::vector<Bytes>& frame_pool() {
  thread_local auto* pool = new std::vector<Bytes>();
  return *pool;
}

}  // namespace

Bytes FramePool::acquire() {
  auto& pool = frame_pool();
  if (pool.empty()) return Bytes{};
  Bytes frame = std::move(pool.back());
  pool.pop_back();
  return frame;
}

void FramePool::release(Bytes&& frame) {
  if (frame.capacity() == 0) return;
  auto& pool = frame_pool();
  if (pool.size() >= kFramePoolCap) return;  // let it free
  frame.clear();
  pool.push_back(std::move(frame));
}

std::size_t FramePool::pooled() { return frame_pool().size(); }

Packet Packet::clone() const {
  ++g_frame_copies;
  Bytes frame = FramePool::acquire();
  frame.assign(frame_.begin(), frame_.end());
  Packet copy(std::move(frame));
  copy.id_ = id_;
  copy.created_at_ = created_at_;
  copy.processing_ns_ = processing_ns_;
  copy.hops_ = hops_;
  return copy;
}

std::uint64_t Packet::frame_copies() { return g_frame_copies; }
void Packet::reset_frame_copies() { g_frame_copies = 0; }

void Packet::set_intern(PacketParse* parse) {
  if (intern_ == parse) return;
  drop_intern();
  intern_ = parse;
}

void Packet::drop_intern() {
  if (intern_ == nullptr) return;
  PacketParse::release(intern_);
  intern_ = nullptr;
}

std::string Packet::hexdump(std::size_t max_bytes) const {
  const std::size_t limit = std::min(max_bytes, frame_.size());
  std::ostringstream os;
  for (std::size_t offset = 0; offset < limit; offset += 16) {
    os << util::format("%04zx: ", offset);
    std::string ascii;
    for (std::size_t i = 0; i < 16; ++i) {
      if (offset + i < limit) {
        const std::uint8_t byte = frame_[offset + i];
        os << util::format("%02x ", byte);
        ascii += std::isprint(byte) ? static_cast<char>(byte) : '.';
      } else {
        os << "   ";
      }
    }
    os << ' ' << ascii << '\n';
  }
  if (limit < frame_.size())
    os << util::format("... (%zu of %zu bytes)\n", limit, frame_.size());
  return os.str();
}

}  // namespace harmless::net

#include "net/ip.hpp"

#include "util/strings.hpp"

namespace harmless::net {

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += rd16(data, i);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;  // odd trailing byte
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t l4_checksum(Ipv4Addr src, Ipv4Addr dst, IpProto proto, BytesView l4_segment) {
  Bytes pseudo;
  pseudo.reserve(12 + l4_segment.size());
  put32(pseudo, src.value());
  put32(pseudo, dst.value());
  put8(pseudo, 0);
  put8(pseudo, static_cast<std::uint8_t>(proto));
  put16(pseudo, static_cast<std::uint16_t>(l4_segment.size()));
  pseudo.insert(pseudo.end(), l4_segment.begin(), l4_segment.end());
  return internet_checksum(pseudo);
}

std::optional<Ipv4Header> Ipv4Header::parse(BytesView payload) {
  if (payload.size() < kIpv4HeaderSize) return std::nullopt;
  const std::uint8_t version = payload[0] >> 4;
  const std::uint8_t ihl = payload[0] & 0x0f;
  if (version != 4 || ihl < 5) return std::nullopt;
  // No options supported: a larger ihl would shift L4 offsets.
  if (ihl != 5) return std::nullopt;
  if (internet_checksum(payload.subspan(0, kIpv4HeaderSize)) != 0) return std::nullopt;

  Ipv4Header header;
  header.dscp = payload[1] >> 2;
  header.total_length = rd16(payload, 2);
  header.identification = rd16(payload, 4);
  header.ttl = payload[8];
  header.protocol = payload[9];
  header.src = Ipv4Addr(rd32(payload, 12));
  header.dst = Ipv4Addr(rd32(payload, 16));
  if (header.total_length < kIpv4HeaderSize) return std::nullopt;
  return header;
}

Bytes Ipv4Header::serialize() const {
  Bytes out;
  out.reserve(kIpv4HeaderSize);
  put8(out, 0x45);  // version 4, ihl 5
  put8(out, static_cast<std::uint8_t>(dscp << 2));
  put16(out, total_length);
  put16(out, identification);
  put16(out, 0x4000);  // flags: DF, no fragmentation modelled
  put8(out, ttl);
  put8(out, protocol);
  put16(out, 0);  // checksum placeholder
  put32(out, src.value());
  put32(out, dst.value());
  const std::uint16_t checksum = internet_checksum(out);
  wr16(std::span<std::uint8_t>(out.data(), out.size()), 10, checksum);
  return out;
}

std::string Ipv4Header::to_string() const {
  return util::format("ip %s > %s proto=%u ttl=%u len=%u", src.to_string().c_str(),
                      dst.to_string().c_str(), protocol, ttl, total_length);
}

}  // namespace harmless::net

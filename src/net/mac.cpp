#include "net/mac.hpp"

#include <cctype>
#include <cstdio>

namespace harmless::net {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  // Exactly "xx:xx:xx:xx:xx:xx" — 17 chars.
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * 3;
    const int hi = hex_digit(text[base]);
    const int lo = hex_digit(text[base + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (i < 5 && text[base + 2] != ':') return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return MacAddr(octets);
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace harmless::net

// net/ip.hpp — IPv4 header (RFC 791 subset: no options, no fragments).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"
#include "net/ipv4.hpp"

namespace harmless::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

constexpr std::size_t kIpv4HeaderSize = 20;

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Parse a 20-byte header from `payload` (bytes after Ethernet/VLAN).
  /// Rejects version != 4, ihl < 5 and checksum mismatches.
  static std::optional<Ipv4Header> parse(BytesView payload);

  /// Serialize a 20-byte header with a freshly computed checksum.
  [[nodiscard]] Bytes serialize() const;

  [[nodiscard]] std::string to_string() const;
};

/// RFC 1071 internet checksum over an arbitrary byte range.
std::uint16_t internet_checksum(BytesView data);

/// TCP/UDP checksum with the IPv4 pseudo-header.
std::uint16_t l4_checksum(Ipv4Addr src, Ipv4Addr dst, IpProto proto, BytesView l4_segment);

}  // namespace harmless::net

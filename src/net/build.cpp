#include "net/build.hpp"

#include <algorithm>
#include <string>

#include "net/ethernet.hpp"
#include "net/ip.hpp"

namespace harmless::net {

namespace {

/// Assemble eth(ip(l4)) and pad to the Ethernet minimum.
Packet assemble(MacAddr src, MacAddr dst, Ipv4Addr ip_src, Ipv4Addr ip_dst, IpProto proto,
                Bytes l4_segment) {
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(proto);
  ip.src = ip_src;
  ip.dst = ip_dst;
  ip.total_length = static_cast<std::uint16_t>(kIpv4HeaderSize + l4_segment.size());

  Bytes frame = FramePool::acquire();
  frame.reserve(kEthHeaderSize + ip.total_length);
  frame.resize(kEthHeaderSize);
  EthernetHeader eth{dst, src, static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.write(frame);
  const Bytes ip_bytes = ip.serialize();
  frame.insert(frame.end(), ip_bytes.begin(), ip_bytes.end());
  frame.insert(frame.end(), l4_segment.begin(), l4_segment.end());
  if (frame.size() < kMinFrameSize) frame.resize(kMinFrameSize, 0);
  return Packet(std::move(frame));
}

}  // namespace

Packet make_udp(const FlowKey& flow, std::size_t frame_size, std::uint8_t fill) {
  frame_size = std::clamp<std::size_t>(frame_size, kMinFrameSize, kMaxFrameSize);
  const std::size_t overhead = kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize;
  const std::size_t payload_size = frame_size > overhead ? frame_size - overhead : 0;
  const Bytes payload(payload_size, fill);
  Bytes segment =
      UdpHeader::serialize(flow.src_port, flow.dst_port, payload, flow.ip_src, flow.ip_dst);
  return assemble(flow.eth_src, flow.eth_dst, flow.ip_src, flow.ip_dst, IpProto::kUdp,
                  std::move(segment));
}

UdpTemplate::UdpTemplate(const FlowKey& flow, std::size_t frame_size, std::uint8_t fill) {
  FlowKey zero_ports = flow;
  zero_ports.src_port = 0;
  zero_ports.dst_port = 0;
  Packet prototype = make_udp(zero_ports, frame_size, fill);
  const BytesView bytes = prototype.frame();
  frame_.assign(bytes.begin(), bytes.end());
  // Recover the folded pseudo-header+segment sum from the stored
  // zero-port checksum (both ports are zero, so they contribute
  // nothing). The 0x0000/0xffff ambiguity is harmless: they are the
  // same value in ones'-complement arithmetic.
  base_sum_ = static_cast<std::uint16_t>(
      ~rd16(bytes, kEthHeaderSize + kIpv4HeaderSize + 6));
}

Packet UdpTemplate::stamp(std::uint16_t src_port, std::uint16_t dst_port) const {
  Bytes frame = FramePool::acquire();
  frame.assign(frame_.begin(), frame_.end());
  const std::span<std::uint8_t> bytes(frame.data(), frame.size());
  constexpr std::size_t l4 = kEthHeaderSize + kIpv4HeaderSize;
  wr16(bytes, l4 + 0, src_port);
  wr16(bytes, l4 + 2, dst_port);
  std::uint32_t sum = base_sum_ + src_port + dst_port;
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  auto checksum = static_cast<std::uint16_t>(~sum);
  if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
  wr16(bytes, l4 + 6, checksum);
  return Packet(std::move(frame));
}

Packet make_tcp(const FlowKey& flow, std::uint8_t tcp_flags, std::string_view payload) {
  TcpHeader header;
  header.src_port = flow.src_port;
  header.dst_port = flow.dst_port;
  header.flags = tcp_flags;
  const BytesView payload_bytes{reinterpret_cast<const std::uint8_t*>(payload.data()),
                                payload.size()};
  Bytes segment = TcpHeader::serialize(header, payload_bytes, flow.ip_src, flow.ip_dst);
  return assemble(flow.eth_src, flow.eth_dst, flow.ip_src, flow.ip_dst, IpProto::kTcp,
                  std::move(segment));
}

TcpTemplate::TcpTemplate(const FlowKey& flow, std::uint8_t tcp_flags,
                         std::string_view payload) {
  FlowKey zero_ports = flow;
  zero_ports.src_port = 0;
  zero_ports.dst_port = 0;
  Packet prototype = make_tcp(zero_ports, tcp_flags, payload);
  const BytesView bytes = prototype.frame();
  frame_.assign(bytes.begin(), bytes.end());
  // Recover the folded pseudo-header+segment sum from the stored
  // zero-port checksum (both ports are zero, so they contribute
  // nothing). Unlike UDP there is no 0-means-unchecksummed rule, so no
  // ambiguity to paper over either.
  base_sum_ = static_cast<std::uint16_t>(
      ~rd16(bytes, kEthHeaderSize + kIpv4HeaderSize + 16));
}

Packet TcpTemplate::stamp(std::uint16_t src_port, std::uint16_t dst_port) const {
  Bytes frame = FramePool::acquire();
  frame.assign(frame_.begin(), frame_.end());
  const std::span<std::uint8_t> bytes(frame.data(), frame.size());
  constexpr std::size_t l4 = kEthHeaderSize + kIpv4HeaderSize;
  wr16(bytes, l4 + 0, src_port);
  wr16(bytes, l4 + 2, dst_port);
  std::uint32_t sum = base_sum_ + src_port + dst_port;
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  wr16(bytes, l4 + 16, static_cast<std::uint16_t>(~sum));
  return Packet(std::move(frame));
}

Packet make_arp_request(MacAddr sender_mac, Ipv4Addr sender_ip, Ipv4Addr target_ip) {
  ArpPacket arp;
  arp.op = ArpOp::kRequest;
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_ip = target_ip;
  return make_raw(sender_mac, MacAddr::broadcast(),
                  static_cast<std::uint16_t>(EtherType::kArp), arp.serialize());
}

Packet make_arp_reply(MacAddr sender_mac, Ipv4Addr sender_ip, MacAddr target_mac,
                      Ipv4Addr target_ip) {
  ArpPacket arp;
  arp.op = ArpOp::kReply;
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_mac = target_mac;
  arp.target_ip = target_ip;
  return make_raw(sender_mac, target_mac, static_cast<std::uint16_t>(EtherType::kArp),
                  arp.serialize());
}

Packet make_icmp_echo(const FlowKey& flow, bool request, std::uint16_t identifier,
                      std::uint16_t sequence) {
  IcmpHeader icmp;
  icmp.type = request ? IcmpType::kEchoRequest : IcmpType::kEchoReply;
  icmp.identifier = identifier;
  icmp.sequence = sequence;
  const Bytes payload(32, 0x5a);
  Bytes segment = IcmpHeader::serialize(icmp, payload);
  return assemble(flow.eth_src, flow.eth_dst, flow.ip_src, flow.ip_dst, IpProto::kIcmp,
                  std::move(segment));
}

Packet make_raw(MacAddr src, MacAddr dst, std::uint16_t ether_type, BytesView payload) {
  Bytes frame = FramePool::acquire();
  frame.resize(kEthHeaderSize);
  EthernetHeader eth{dst, src, ether_type};
  eth.write(frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (frame.size() < kMinFrameSize) frame.resize(kMinFrameSize, 0);
  return Packet(std::move(frame));
}

Packet make_http_get(const FlowKey& flow, std::string_view host, std::string_view path) {
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.1\r\nHost: ";
  request += host;
  request += "\r\nUser-Agent: harmless-sim\r\n\r\n";
  return make_tcp(flow, kTcpPsh | kTcpAck, request);
}

}  // namespace harmless::net

// net/arp.hpp — ARP for IPv4-over-Ethernet (RFC 826 subset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::net {

enum class ArpOp : std::uint16_t {
  kRequest = 1,
  kReply = 2,
};

struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;  // zero in requests
  Ipv4Addr target_ip;

  /// Parse an ARP payload (the bytes after the Ethernet header).
  /// Validates htype/ptype/hlen/plen for Ethernet/IPv4.
  static std::optional<ArpPacket> parse(BytesView payload);

  /// Serialize the 28-byte ARP payload.
  [[nodiscard]] Bytes serialize() const;

  [[nodiscard]] std::string to_string() const;
};

constexpr std::size_t kArpPayloadSize = 28;

}  // namespace harmless::net

#include "openflow/pipeline.hpp"

#include <algorithm>

#include "net/parse.hpp"
#include "util/status.hpp"

namespace harmless::openflow {

namespace {
constexpr int kMaxGroupDepth = 4;  // guards against group->group cycles

/// Fields a header-mutating action writes (presence bits). Output and
/// group actions rewrite nothing; a SetFieldAction only rewrites the
/// fields set_field in action.cpp actually supports — on any other
/// field it silently no-ops, so the packet still carries the original
/// value and learning must keep unwildcarding it.
std::uint32_t written_field_bits(const Action& action) {
  if (const auto* set = std::get_if<SetFieldAction>(&action)) {
    switch (set->field) {
      case Field::kEthDst:
      case Field::kEthSrc:
      case Field::kVlanVid:
      case Field::kVlanPcp:
      case Field::kIpSrc:
      case Field::kIpDst:
      case Field::kL4Src:
      case Field::kL4Dst:
        return field_bit(set->field);
      default:
        return 0;
    }
  }
  if (std::holds_alternative<PushVlanAction>(action) ||
      std::holds_alternative<PopVlanAction>(action))
    return field_bit(Field::kVlanVid) | field_bit(Field::kVlanPcp);
  return 0;
}
}  // namespace

Pipeline::Pipeline(std::size_t table_count, bool specialized, bool flow_cache)
    : cache_enabled_(flow_cache) {
  if (table_count == 0) throw util::ConfigError("pipeline needs at least one table");
  tables_.reserve(table_count);
  for (std::size_t index = 0; index < table_count; ++index)
    tables_.emplace_back(static_cast<std::uint8_t>(index), specialized);
  caches_.push_back(std::make_unique<FlowCache>());
  caches_.front()->share_epoch(&cache_epoch_);
  // Every table mutation (and group mutation) bumps the shared epoch so
  // cached fast-path entries self-invalidate — in every shard at once.
  // Wired even when the cache is disabled, so the ablation knob can be
  // flipped at runtime.
  for (FlowTable& table : tables_) table.bind_epoch(&cache_epoch_);
  groups_.bind_epoch(&cache_epoch_);
}

void Pipeline::set_shard_count(std::size_t shards) {
  while (caches_.size() < std::max<std::size_t>(1, shards)) {
    auto shard = std::make_unique<FlowCache>();
    shard->share_epoch(&cache_epoch_);
    shard->set_limits(caches_.front()->limits());
    shard->set_linear_scan(caches_.front()->linear_scan());
    caches_.push_back(std::move(shard));
  }
  if (ct_enabled_ && trackers_.size() != caches_.size()) {
    // Rebuild so every shard agrees on the steering-shard count the
    // SNAT allocator uses (both calls are pre-traffic by contract).
    enable_conntrack(ct_config_);
  }
}

void Pipeline::enable_conntrack(const CtConfig& config) {
  ct_config_ = config;
  ct_enabled_ = true;
  trackers_.clear();
  for (std::size_t shard = 0; shard < caches_.size(); ++shard)
    trackers_.push_back(std::make_unique<ConnTracker>(ct_config_, caches_.size()));
}

std::size_t Pipeline::ct_connection_count() const {
  std::size_t total = 0;
  for (const auto& tracker : trackers_) total += tracker->size();
  return total;
}

std::size_t Pipeline::ct_expire(sim::SimNanos now) {
  std::size_t expired = 0;
  for (auto& tracker : trackers_) expired += tracker->expire(now);
  // Expiry needs no cache invalidation: ct_state is recomputed per
  // packet before any cache probe, so a megaflow keyed on the dead
  // connection's state simply stops matching.
  return expired;
}

std::optional<sim::SimNanos> Pipeline::ct_next_deadline() const {
  std::optional<sim::SimNanos> next;
  for (const auto& tracker : trackers_) {
    const std::optional<sim::SimNanos> deadline = tracker->next_deadline();
    if (deadline && (!next || *deadline < *next)) next = deadline;
  }
  return next;
}

void Pipeline::ct_clear() {
  for (auto& tracker : trackers_) tracker->clear();
}

FlowTable& Pipeline::table(std::size_t index) {
  if (index >= tables_.size())
    throw util::ConfigError("pipeline table " + std::to_string(index) + " out of range");
  return tables_[index];
}

const FlowTable& Pipeline::table(std::size_t index) const {
  if (index >= tables_.size())
    throw util::ConfigError("pipeline table " + std::to_string(index) + " out of range");
  return tables_[index];
}

std::size_t Pipeline::total_entries() const {
  std::size_t total = 0;
  for (const FlowTable& table : tables_) total += table.size();
  return total;
}

sim::SimNanos Pipeline::execute_actions(const ActionList& actions, net::Packet& packet,
                                        std::uint32_t in_port, std::uint8_t table_id,
                                        PipelineResult& result, bool& view_dirty,
                                        FieldUse* learn, int depth, bool consume) {
  // When the caller is done with the packet and the list ends in an
  // output to a data port, that final output moves the packet instead
  // of cloning it — the zero-copy unicast fast path. Any earlier
  // action still sees the live packet.
  const Action* move_output = nullptr;
  if (consume && !actions.empty()) {
    const auto* last = std::get_if<OutputAction>(&actions.back());
    if (last != nullptr && last->port != kPortController) move_output = &actions.back();
  }

  sim::SimNanos cost = 0;
  for (const Action& action : actions) {
    cost += costs_.action_ns;

    if (const auto* out = std::get_if<OutputAction>(&action)) {
      if (out->port == kPortController) {
        PacketInEvent event;
        event.packet = packet.clone();  // copy: pipeline may continue
        event.in_port = in_port;
        event.table_id = table_id;
        event.reason = PacketInReason::kAction;
        result.packet_ins.push_back(std::move(event));
      } else if (&action == move_output) {
        result.outputs.emplace_back(out->port, std::move(packet));
      } else {
        result.outputs.emplace_back(out->port, packet.clone());  // copy per output
      }
      continue;
    }

    if (const auto* ct = std::get_if<CtAction>(&action)) {
      ct_execute(*ct, packet, result, learn, view_dirty);
      continue;
    }

    if (const auto* grp = std::get_if<GroupAction>(&action)) {
      cost += costs_.group_ns;
      if (depth >= kMaxGroupDepth) continue;  // malformed config: stop recursion
      const GroupEntry* entry = groups_.find(grp->group_id);
      if (entry == nullptr) continue;  // dangling group id: packets blackhole (per spec)
      // Bucket actions run on packet *copies*: any fields they rewrite
      // stay original-dependent for the rest of the pipeline, so the
      // overwritten set is restored after each recursion.
      const std::uint32_t saved_overwritten = learn != nullptr ? learn->overwritten : 0;
      switch (entry->type) {
        case GroupType::kAll:
          for (const Bucket& bucket : entry->buckets) {
            net::Packet copy = packet.clone();
            cost += execute_actions(bucket.actions, copy, in_port, table_id, result,
                                    view_dirty, learn, depth + 1);
            if (learn != nullptr) learn->overwritten = saved_overwritten;
          }
          break;
        case GroupType::kSelect: {
          FieldView view = cached_field_view(packet, in_port);
          view.use = learn;  // bucket choice depends on the hashed fields
          const std::size_t index =
              groups_.select_bucket(*entry, flow_hash_of(view, entry->select_hash));
          GroupEntry* mutable_entry = groups_.find_mutable(grp->group_id);
          mutable_entry->buckets[index].packet_count++;
          net::Packet copy = packet.clone();
          cost += execute_actions(entry->buckets[index].actions, copy, in_port, table_id,
                                  result, view_dirty, learn, depth + 1);
          if (learn != nullptr) learn->overwritten = saved_overwritten;
          break;
        }
        case GroupType::kIndirect: {
          net::Packet copy = packet.clone();
          cost += execute_actions(entry->buckets[0].actions, copy, in_port, table_id, result,
                                  view_dirty, learn, depth + 1);
          if (learn != nullptr) learn->overwritten = saved_overwritten;
          break;
        }
      }
      continue;
    }

    // Header-mutating action. Whether it applies depends only on the
    // packet's *structure* (taggedness, IP version, L4 proto — see
    // action.cpp), never on the rewritten field's current value, so
    // learning pins just the structural bits: field presence, plus the
    // tag-present bit for vlan_vid (set vlan_vid fails on untagged
    // frames). Pinning full values here would fragment the megaflow
    // tier into one entry per rewritten aggregate.
    if (learn != nullptr) {
      std::uint32_t written = written_field_bits(action);
      while (written != 0) {
        const unsigned index = static_cast<unsigned>(__builtin_ctz(written));
        written &= written - 1;
        const auto field = static_cast<Field>(index);
        learn->note(field, field == Field::kVlanVid ? kVlanPresent : 0);
        learn->mark_overwritten(field);
      }
    }
    if (apply_header_action(action, packet)) view_dirty = true;
  }
  return cost;
}

bool Pipeline::ct_annotate(FieldView& view, std::size_t shard, sim::SimNanos now) {
  if (!ct_enabled_) return false;
  constexpr std::uint32_t kNeed =
      field_bit(Field::kIpProto) | field_bit(Field::kL4Src) | field_bit(Field::kL4Dst);
  if ((view.present & kNeed) != kNeed) return false;
  const auto proto = static_cast<std::uint8_t>(view.values[static_cast<std::size_t>(Field::kIpProto)]);
  if (proto != static_cast<std::uint8_t>(net::IpProto::kTcp) &&
      proto != static_cast<std::uint8_t>(net::IpProto::kUdp))
    return false;
  const CtTuple tuple{
      static_cast<std::uint32_t>(view.values[static_cast<std::size_t>(Field::kIpSrc)]),
      static_cast<std::uint32_t>(view.values[static_cast<std::size_t>(Field::kIpDst)]),
      static_cast<std::uint16_t>(view.values[static_cast<std::size_t>(Field::kL4Src)]),
      static_cast<std::uint16_t>(view.values[static_cast<std::size_t>(Field::kL4Dst)]),
      proto};
  const std::uint8_t tcp_flags =
      (view.present & field_bit(Field::kTcpFlags)) != 0
          ? static_cast<std::uint8_t>(view.values[static_cast<std::size_t>(Field::kTcpFlags)])
          : 0;
  view.set(Field::kCtState, trackers_[shard]->classify(tuple, tcp_flags, now));
  return true;
}

void Pipeline::ct_execute(const CtAction& spec, net::Packet& packet, PipelineResult& result,
                          FieldUse* learn, bool& view_dirty) {
  if (!ct_enabled_) return;
  const net::ParsedPacket& parsed = net::parse_cached(packet).parsed;
  if (!parsed.ipv4 || (!parsed.tcp && !parsed.udp)) return;
  const CtTuple tuple{parsed.ipv4->src.value(), parsed.ipv4->dst.value(), parsed.src_port(),
                      parsed.dst_port(), parsed.ipv4->protocol};
  const std::uint8_t tcp_flags = parsed.tcp ? parsed.tcp->flags : 0;

  if (learn != nullptr) {
    // A ct traversal's outcome is per-connection, per-direction and
    // per-state: pin the full 5-tuple and ct_state, so the learned
    // megaflow serves exactly that slice and a state transition always
    // escapes to a fresh traversal.
    learn->note(Field::kIpProto, field_all_ones(Field::kIpProto));
    learn->note(Field::kIpSrc, field_all_ones(Field::kIpSrc));
    learn->note(Field::kIpDst, field_all_ones(Field::kIpDst));
    learn->note(Field::kL4Src, field_all_ones(Field::kL4Src));
    learn->note(Field::kL4Dst, field_all_ones(Field::kL4Dst));
    learn->note(Field::kCtState, kCtStateMask);
  }

  const CtOutcome outcome =
      trackers_[current_shard_]->process(tuple, tcp_flags, ct_now_, spec);
  ++result.ct_commits;

  if (outcome.rewrite) {
    // Apply the tracker's stored translation — resolved per packet, so
    // replaying a megaflow through here re-derives the rewrite from
    // live connection state instead of baking stale constants in.
    if (outcome.translation.src) {
      apply_header_action(SetFieldAction{Field::kIpSrc, outcome.translation.src_ip}, packet);
      apply_header_action(SetFieldAction{Field::kL4Src, outcome.translation.src_port}, packet);
      if (learn != nullptr) {
        learn->mark_overwritten(Field::kIpSrc);
        learn->mark_overwritten(Field::kL4Src);
      }
    }
    if (outcome.translation.dst) {
      apply_header_action(SetFieldAction{Field::kIpDst, outcome.translation.dst_ip}, packet);
      apply_header_action(SetFieldAction{Field::kL4Dst, outcome.translation.dst_port}, packet);
      if (learn != nullptr) {
        learn->mark_overwritten(Field::kIpDst);
        learn->mark_overwritten(Field::kL4Dst);
      }
    }
    view_dirty = true;
  }
}

void Pipeline::replay(const MegaflowEntry& entry, net::Packet& packet, std::uint32_t in_port,
                      sim::SimNanos now, PipelineResult& result) {
  ct_now_ = now;
  result.cache_hit = true;
  result.matched = entry.matched;
  result.last_table = entry.last_table;
  bool view_dirty = false;
  // replay() consumes the packet, so the last action list executed may
  // move it into its final output instead of cloning (the zero-copy
  // fast path). With no final_actions, that list is the last step with
  // apply actions.
  std::size_t consuming_step = entry.steps.size();
  if (entry.final_actions.empty()) {
    for (std::size_t i = entry.steps.size(); i-- > 0;) {
      if (!entry.steps[i].apply_actions.empty()) {
        consuming_step = i;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < entry.steps.size(); ++i) {
    const MegaflowEntry::Step& step = entry.steps[i];
    // Exactly the bookkeeping the slow-path lookup would have done,
    // with the packet size *at this table* (earlier replayed actions
    // may have pushed or popped a tag).
    step.table->record_lookup(step.entry, packet.size(), now);
    if (!step.apply_actions.empty())
      result.cost_ns += execute_actions(step.apply_actions, packet, in_port,
                                        step.table->id(), result, view_dirty,
                                        /*learn=*/nullptr, 0,
                                        /*consume=*/i == consuming_step);
  }
  if (!entry.final_actions.empty())
    result.cost_ns += execute_actions(entry.final_actions, packet, in_port, entry.last_table,
                                      result, view_dirty, /*learn=*/nullptr, 0,
                                      /*consume=*/true);
}

void Pipeline::install_learned(MegaflowEntry entry, const FieldView& original_view,
                               const FieldUse& use, std::size_t shard) {
  std::uint32_t remaining = use.examined;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    const std::uint32_t bit = 1u << index;
    if ((original_view.present & bit) != 0) {
      entry.required_present |= bit;
      entry.masks[index] = use.masks[index];
      entry.values[index] = original_view.values[index] & use.masks[index];
    } else {
      // The traversal probed this field and found it absent (e.g. an
      // ACL's l4_dst against an ARP frame): only packets equally
      // lacking it may reuse the cached outcome.
      entry.required_absent |= bit;
    }
  }
  caches_[shard]->insert(std::move(entry), original_view);
}

PipelineResult Pipeline::run(net::Packet&& packet, std::uint32_t in_port, sim::SimNanos now,
                             std::size_t shard) {
  FieldView view = cached_field_view(packet, in_port);
  return run_with_view(std::move(packet), in_port, now, std::move(view), shard);
}

PipelineResult Pipeline::run_with_view(net::Packet&& packet, std::uint32_t in_port,
                                       sim::SimNanos now, FieldView view, std::size_t shard,
                                       bool ct_annotated, const MegaflowEntry** replayed) {
  PipelineResult result;
  // The one shard-bounds check on the per-packet entry path (run() and
  // the run_burst residue both come through here); install_learned
  // only ever receives this same validated shard.
  FlowCache& cache = *caches_.at(shard);
  current_shard_ = shard;
  ct_now_ = now;

  // Conntrack prelude, *before* any cache probe: the classification is
  // part of the packet's identity from here on, so both cache tiers
  // key on it and stale state decisions are structurally impossible.
  if (!ct_annotated && ct_annotate(view, shard, now)) ++result.ct_lookups;

  if (cache_enabled_) {
    std::uint32_t scanned = 0;
    MegaflowEntry* hit = cache.lookup(view, now, &scanned);
    result.cache_scanned = scanned;
    result.cache_linear = cache.linear_scan();
    if (hit != nullptr) {
      if (replayed != nullptr) *replayed = hit;
      replay(*hit, packet, in_port, now, result);
      return result;
    }
  }

  // ---- slow path: the full traversal, learning a megaflow as it goes.
  result.cost_ns += costs_.parse_ns;

  FieldUse use;
  FieldUse* learn = cache_enabled_ ? &use : nullptr;
  const FieldView original_view = view;  // pre-rewrite projection: the megaflow key basis
  MegaflowEntry learned;
  view.use = learn;
  bool view_dirty = false;
  // The prelude's classification survives header rewrites: a rebuilt
  // view (build_field_view knows nothing of conntrack) gets the bits
  // re-stamped below, matching OVS's ct_state persistence across
  // recirculation within one traversal.
  const bool ct_present = (view.present & field_bit(Field::kCtState)) != 0;
  const std::uint64_t ct_bits =
      ct_present ? view.values[static_cast<std::size_t>(Field::kCtState)] : 0;

  // The OF1.3 action set: at most one action per slot, executed in
  // spec order at pipeline exit.
  struct ActionSet {
    bool pop_vlan = false;
    bool push_vlan = false;
    std::vector<SetFieldAction> set_fields;  // last write per field wins
    std::optional<GroupAction> group;
    std::optional<OutputAction> output;

    void clear() { *this = ActionSet{}; }
    void write(const ActionList& actions) {
      for (const Action& action : actions) {
        if (std::holds_alternative<PopVlanAction>(action)) {
          pop_vlan = true;
        } else if (std::holds_alternative<PushVlanAction>(action)) {
          push_vlan = true;
        } else if (const auto* set = std::get_if<SetFieldAction>(&action)) {
          bool replaced = false;
          for (auto& existing : set_fields)
            if (existing.field == set->field) {
              existing = *set;
              replaced = true;
              break;
            }
          if (!replaced) set_fields.push_back(*set);
        } else if (const auto* grp = std::get_if<GroupAction>(&action)) {
          group = *grp;
        } else if (const auto* out = std::get_if<OutputAction>(&action)) {
          output = *out;
        }
      }
    }
    [[nodiscard]] ActionList to_list() const {
      ActionList list;
      if (pop_vlan) list.push_back(PopVlanAction{});
      if (push_vlan) list.push_back(PushVlanAction{});
      for (const SetFieldAction& set : set_fields) list.push_back(set);
      if (group) list.push_back(*group);
      if (output) list.push_back(*output);
      return list;
    }
  } action_set;

  std::size_t table_index = 0;
  while (table_index < tables_.size()) {
    result.last_table = static_cast<std::uint8_t>(table_index);
    if (view_dirty) {
      view = cached_field_view(packet, in_port);
      if (ct_present) view.set(Field::kCtState, ct_bits);
      view.use = learn;
      view_dirty = false;
      result.cost_ns += costs_.parse_ns;
    }

    LookupCost lookup_cost;
    FlowEntry* entry =
        tables_[table_index].lookup(view, packet.size(), now, lookup_cost);
    result.cost_ns += lookup_cost.hash_probes * costs_.hash_probe_ns +
                      lookup_cost.entries_scanned * costs_.entry_scan_ns;
    if (learn != nullptr)
      learned.steps.push_back(MegaflowEntry::Step{
          &tables_[table_index], entry,
          entry != nullptr ? entry->instructions.apply_actions : ActionList{}});

    if (entry == nullptr) {
      // Table miss without a miss entry: drop (OF1.3 default). The drop
      // itself is cached — elephant flows of unroutable traffic are
      // exactly as hot as routable ones.
      result.cost_ns += costs_.miss_ns;
      if (learn != nullptr && result.packet_ins.empty()) {
        learned.last_table = result.last_table;
        learned.matched = result.matched;
        install_learned(std::move(learned), original_view, use, shard);
        result.cache_installed = true;
      }
      return result;
    }
    result.matched = true;

    const Instructions& inst = entry->instructions;
    if (!inst.apply_actions.empty())
      result.cost_ns += execute_actions(inst.apply_actions, packet, in_port,
                                        static_cast<std::uint8_t>(table_index), result,
                                        view_dirty, learn, 0);
    if (inst.clear_actions) action_set.clear();
    if (!inst.write_actions.empty()) action_set.write(inst.write_actions);

    if (inst.goto_table) {
      if (*inst.goto_table <= table_index) {
        // Spec forbids backward gotos; treat as pipeline end.
        break;
      }
      table_index = *inst.goto_table;
      continue;
    }
    break;
  }

  const ActionList final_actions = action_set.to_list();
  if (!final_actions.empty())
    result.cost_ns += execute_actions(final_actions, packet, in_port, result.last_table,
                                      result, view_dirty, learn, 0, /*consume=*/true);

  // Punting traversals are not cached: the controller's reply is about
  // to mutate the tables, and caching the upcall would turn every
  // subsequent packet of the aggregate into a replayed packet-in
  // storm served from the fast path. They stay slow-path events, so
  // the datapath must not charge cache_insert_ns for them —
  // cache_installed carries that fact out.
  if (learn != nullptr && result.packet_ins.empty()) {
    learned.final_actions = final_actions;
    learned.last_table = result.last_table;
    learned.matched = result.matched;
    install_learned(std::move(learned), original_view, use, shard);
    result.cache_installed = true;
  }
  return result;
}

void Pipeline::run_burst(std::vector<BurstPacket>& burst, sim::SimNanos now,
                         std::size_t shard, BurstResult& out) {
  out.reset(burst.size());
  FlowCache& cache = *caches_.at(shard);
  if (!cache_enabled_) {
    // No cache, nothing to group: the burst amortizes only the
    // datapath's rx/tx overhead (charged by the caller).
    for (std::size_t i = 0; i < burst.size(); ++i)
      out.results[i] = run(std::move(burst[i].packet), burst[i].in_port, now, shard);
    return;
  }
  if (ct_enabled_) {
    // Connection state is order-sensitive within a burst (packet i's
    // commit changes packet i+1's classification), so the phased
    // probe/replay below would diverge from per-packet execution.
    run_burst_sequential(burst, now, shard, out);
    return;
  }

  // Phase 1: probe the cache for the whole burst. Misses are not
  // counted here (probe()); the residue's run() accounts each exactly
  // once. The returned pointers stay valid through phase 2: nothing
  // inserts or purges until the residue runs, and every probe shares
  // one `now`, so mid-burst lazy expiry cannot retire an entry the
  // probe accepted (timed_out is checked against the same clock).
  burst_hits_.assign(burst.size(), nullptr);
  burst_views_.resize(burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i) {
    cached_field_view_into(burst[i].packet, burst[i].in_port, &burst_views_[i]);
    std::uint32_t scanned = 0;
    burst_hits_[i] = cache.probe(burst_views_[i], now, &scanned);
    out.results[i].cache_scanned = scanned;
    out.results[i].cache_linear = cache.linear_scan();
  }

  // Phase 2: replay hit packets grouped by megaflow entry — one replay
  // setup per distinct learned program, per-packet emission. Replay
  // order across groups differs from arrival order; every mutation a
  // replay performs (flow/bucket counters, idle timestamps) is
  // commutative at a fixed `now`, so per-packet results are unchanged.
  // The group slots (and their member-index vectors' capacity) are
  // recycled across bursts: only the first `group_count` are live.
  std::size_t group_count = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (burst_hits_[i] == nullptr) continue;
    std::size_t g = 0;
    while (g < group_count && burst_groups_[g].first != burst_hits_[i]) ++g;
    if (g == group_count) {
      if (group_count == burst_groups_.size()) burst_groups_.emplace_back();
      burst_groups_[g].first = burst_hits_[i];
      burst_groups_[g].second.clear();
      ++group_count;
    }
    burst_groups_[g].second.push_back(i);
  }
  out.replay_groups = static_cast<std::uint32_t>(group_count);
  for (std::size_t g = 0; g < group_count; ++g)
    for (const std::size_t i : burst_groups_[g].second)
      replay(*burst_groups_[g].first, burst[i].packet, burst[i].in_port, now,
             out.results[i]);

  // Phase 3: the residue takes the slow path, in arrival order,
  // entering with its phase-1 view (nothing rewrote these packets, so
  // each is parsed once per burst). run_with_view re-probes the cache,
  // which is how a flow's second packet in the burst hits the megaflow
  // its first packet just installed.
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (burst_hits_[i] != nullptr) continue;
    const std::uint32_t probed = out.results[i].cache_scanned;
    out.results[i] = run_with_view(std::move(burst[i].packet), burst[i].in_port, now,
                                   std::move(burst_views_[i]), shard);
    out.results[i].cache_scanned += probed;  // phase-1 scan work really happened
  }
}

void Pipeline::run_burst_sequential(std::vector<BurstPacket>& burst, sim::SimNanos now,
                                    std::size_t shard, BurstResult& out) {
  // Strictly arrival-order per-packet processing — observationally
  // identical to calling run() per packet. Replay-group amortization
  // survives as the count of distinct megaflow entries replayed.
  burst_replayed_.clear();
  for (std::size_t i = 0; i < burst.size(); ++i) {
    FieldView view;
    cached_field_view_into(burst[i].packet, burst[i].in_port, &view);
    const bool classified = ct_annotate(view, shard, now);
    const MegaflowEntry* replayed = nullptr;
    out.results[i] = run_with_view(std::move(burst[i].packet), burst[i].in_port, now,
                                   std::move(view), shard, /*ct_annotated=*/true, &replayed);
    if (classified) ++out.results[i].ct_lookups;
    if (replayed != nullptr &&
        std::find(burst_replayed_.begin(), burst_replayed_.end(), replayed) ==
            burst_replayed_.end())
      burst_replayed_.push_back(replayed);
  }
  out.replay_groups = static_cast<std::uint32_t>(burst_replayed_.size());
}

std::vector<FlowEntry> Pipeline::collect_expired(sim::SimNanos now) {
  std::vector<FlowEntry> expired;
  for (FlowTable& table : tables_) {
    auto batch = table.collect_expired(now);
    expired.insert(expired.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }
  return expired;
}

}  // namespace harmless::openflow

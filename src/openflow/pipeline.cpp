#include "openflow/pipeline.hpp"

#include "net/parse.hpp"
#include "util/status.hpp"

namespace harmless::openflow {

namespace {
constexpr int kMaxGroupDepth = 4;  // guards against group->group cycles
}

Pipeline::Pipeline(std::size_t table_count, bool specialized) {
  if (table_count == 0) throw util::ConfigError("pipeline needs at least one table");
  tables_.reserve(table_count);
  for (std::size_t index = 0; index < table_count; ++index)
    tables_.emplace_back(static_cast<std::uint8_t>(index), specialized);
}

FlowTable& Pipeline::table(std::size_t index) {
  if (index >= tables_.size())
    throw util::ConfigError("pipeline table " + std::to_string(index) + " out of range");
  return tables_[index];
}

const FlowTable& Pipeline::table(std::size_t index) const {
  if (index >= tables_.size())
    throw util::ConfigError("pipeline table " + std::to_string(index) + " out of range");
  return tables_[index];
}

std::size_t Pipeline::total_entries() const {
  std::size_t total = 0;
  for (const FlowTable& table : tables_) total += table.size();
  return total;
}

sim::SimNanos Pipeline::execute_actions(const ActionList& actions, net::Packet& packet,
                                        std::uint32_t in_port, std::uint8_t table_id,
                                        PipelineResult& result, bool& view_dirty, int depth) {
  sim::SimNanos cost = 0;
  for (const Action& action : actions) {
    cost += costs_.action_ns;

    if (const auto* out = std::get_if<OutputAction>(&action)) {
      if (out->port == kPortController) {
        PacketInEvent event;
        event.packet = packet;  // copy: pipeline may continue
        event.in_port = in_port;
        event.table_id = table_id;
        event.reason = PacketInReason::kAction;
        result.packet_ins.push_back(std::move(event));
      } else {
        result.outputs.emplace_back(out->port, packet);  // copy per output
      }
      continue;
    }

    if (const auto* grp = std::get_if<GroupAction>(&action)) {
      cost += costs_.group_ns;
      if (depth >= kMaxGroupDepth) continue;  // malformed config: stop recursion
      const GroupEntry* entry = groups_.find(grp->group_id);
      if (entry == nullptr) continue;  // dangling group id: packets blackhole (per spec)
      switch (entry->type) {
        case GroupType::kAll:
          for (const Bucket& bucket : entry->buckets) {
            net::Packet copy = packet;
            cost += execute_actions(bucket.actions, copy, in_port, table_id, result,
                                    view_dirty, depth + 1);
          }
          break;
        case GroupType::kSelect: {
          const net::ParsedPacket parsed = net::parse_packet(packet);
          const FieldView view = build_field_view(parsed, in_port);
          const std::size_t index =
              groups_.select_bucket(*entry, flow_hash_of(view, entry->select_hash));
          GroupEntry* mutable_entry = groups_.find_mutable(grp->group_id);
          mutable_entry->buckets[index].packet_count++;
          net::Packet copy = packet;
          cost += execute_actions(entry->buckets[index].actions, copy, in_port, table_id,
                                  result, view_dirty, depth + 1);
          break;
        }
        case GroupType::kIndirect: {
          net::Packet copy = packet;
          cost += execute_actions(entry->buckets[0].actions, copy, in_port, table_id, result,
                                  view_dirty, depth + 1);
          break;
        }
      }
      continue;
    }

    // Header-mutating action.
    if (apply_header_action(action, packet)) view_dirty = true;
  }
  return cost;
}

PipelineResult Pipeline::run(net::Packet&& packet, std::uint32_t in_port, sim::SimNanos now) {
  PipelineResult result;
  result.cost_ns += costs_.parse_ns;

  net::ParsedPacket parsed = net::parse_packet(packet);
  FieldView view = build_field_view(parsed, in_port);
  bool view_dirty = false;

  // The OF1.3 action set: at most one action per slot, executed in
  // spec order at pipeline exit.
  struct ActionSet {
    bool pop_vlan = false;
    bool push_vlan = false;
    std::vector<SetFieldAction> set_fields;  // last write per field wins
    std::optional<GroupAction> group;
    std::optional<OutputAction> output;

    void clear() { *this = ActionSet{}; }
    void write(const ActionList& actions) {
      for (const Action& action : actions) {
        if (std::holds_alternative<PopVlanAction>(action)) {
          pop_vlan = true;
        } else if (std::holds_alternative<PushVlanAction>(action)) {
          push_vlan = true;
        } else if (const auto* set = std::get_if<SetFieldAction>(&action)) {
          bool replaced = false;
          for (auto& existing : set_fields)
            if (existing.field == set->field) {
              existing = *set;
              replaced = true;
              break;
            }
          if (!replaced) set_fields.push_back(*set);
        } else if (const auto* grp = std::get_if<GroupAction>(&action)) {
          group = *grp;
        } else if (const auto* out = std::get_if<OutputAction>(&action)) {
          output = *out;
        }
      }
    }
    [[nodiscard]] ActionList to_list() const {
      ActionList list;
      if (pop_vlan) list.push_back(PopVlanAction{});
      if (push_vlan) list.push_back(PushVlanAction{});
      for (const SetFieldAction& set : set_fields) list.push_back(set);
      if (group) list.push_back(*group);
      if (output) list.push_back(*output);
      return list;
    }
  } action_set;

  std::size_t table_index = 0;
  while (table_index < tables_.size()) {
    result.last_table = static_cast<std::uint8_t>(table_index);
    if (view_dirty) {
      parsed = net::parse_packet(packet);
      view = build_field_view(parsed, in_port);
      view_dirty = false;
      result.cost_ns += costs_.parse_ns;
    }

    LookupCost lookup_cost;
    FlowEntry* entry =
        tables_[table_index].lookup(view, packet.size(), now, lookup_cost);
    result.cost_ns += lookup_cost.hash_probes * costs_.hash_probe_ns +
                      lookup_cost.entries_scanned * costs_.entry_scan_ns;

    if (entry == nullptr) {
      // Table miss without a miss entry: drop (OF1.3 default).
      result.cost_ns += costs_.miss_ns;
      return result;
    }
    result.matched = true;

    const Instructions& inst = entry->instructions;
    if (!inst.apply_actions.empty())
      result.cost_ns += execute_actions(inst.apply_actions, packet, in_port,
                                        static_cast<std::uint8_t>(table_index), result,
                                        view_dirty, 0);
    if (inst.clear_actions) action_set.clear();
    if (!inst.write_actions.empty()) action_set.write(inst.write_actions);

    if (inst.goto_table) {
      if (*inst.goto_table <= table_index) {
        // Spec forbids backward gotos; treat as pipeline end.
        break;
      }
      table_index = *inst.goto_table;
      continue;
    }
    break;
  }

  const ActionList final_actions = action_set.to_list();
  if (!final_actions.empty())
    result.cost_ns += execute_actions(final_actions, packet, in_port, result.last_table,
                                      result, view_dirty, 0);
  return result;
}

std::vector<FlowEntry> Pipeline::collect_expired(sim::SimNanos now) {
  std::vector<FlowEntry> expired;
  for (FlowTable& table : tables_) {
    auto batch = table.collect_expired(now);
    expired.insert(expired.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }
  return expired;
}

}  // namespace harmless::openflow

#include "openflow/flow_table.hpp"

#include <algorithm>

namespace harmless::openflow {

FlowTable::FlowTable(std::uint8_t table_id, bool specialized_matcher)
    : id_(table_id), matcher_(make_matcher(specialized_matcher)) {}

void FlowTable::set_matcher(std::unique_ptr<Matcher> matcher) {
  matcher_ = std::move(matcher);
  mark_dirty();
}

void FlowTable::rebuild_if_needed() {
  if (!dirty_) return;
  std::vector<FlowEntry*> raw;
  raw.reserve(entries_.size());
  for (const auto& entry : entries_) raw.push_back(entry.get());
  matcher_->rebuild(raw);
  dirty_ = false;
}

util::Status FlowTable::add(FlowEntry entry, sim::SimNanos now, bool check_overlap) {
  if (check_overlap) {
    for (const auto& existing : entries_) {
      if (existing->priority == entry.priority && existing->match.overlaps(entry.match) &&
          !(existing->match == entry.match))
        return util::Status::error("overlapping entry at priority " +
                                   std::to_string(entry.priority));
    }
  }
  entry.installed_at = now;
  entry.last_hit = 0;

  // Identical (match, priority) replaces in place, counters reset
  // (OF1.3 §6.4 without OFPFF_RESET_COUNTS subtleties).
  for (auto& existing : entries_) {
    if (existing->priority == entry.priority && existing->match == entry.match) {
      *existing = std::move(entry);
      mark_dirty();
      return util::Status::ok();
    }
  }
  entries_.push_back(std::make_unique<FlowEntry>(std::move(entry)));
  mark_dirty();
  return util::Status::ok();
}

std::size_t FlowTable::modify(const Match& match, const Instructions& instructions, bool strict,
                              std::uint16_t priority) {
  std::size_t updated = 0;
  for (auto& entry : entries_) {
    const bool hit = strict ? (entry->match == match && entry->priority == priority)
                            : match.subsumes(entry->match);
    if (hit) {
      entry->instructions = instructions;
      ++updated;
    }
  }
  // Instructions don't affect match structures; no rebuild needed. The
  // flow cache replays instruction-derived action programs though, so
  // cached entries must still be invalidated.
  if (updated > 0) bump_epoch();
  return updated;
}

std::vector<FlowEntry> FlowTable::remove(const Match& match, bool strict,
                                         std::uint16_t priority) {
  std::vector<FlowEntry> removed;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    const bool hit = strict ? ((*it)->match == match && (*it)->priority == priority)
                            : match.subsumes((*it)->match);
    if (hit) {
      removed.push_back(std::move(**it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) mark_dirty();
  return removed;
}

std::vector<FlowEntry> FlowTable::remove_by_cookie(std::uint64_t cookie) {
  std::vector<FlowEntry> removed;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if ((*it)->cookie == cookie) {
      removed.push_back(std::move(**it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) mark_dirty();
  return removed;
}

FlowEntry* FlowTable::lookup(const FieldView& view, std::size_t packet_bytes, sim::SimNanos now,
                             LookupCost& cost) {
  rebuild_if_needed();
  FlowEntry* entry = matcher_->lookup(view, cost);
  if (entry != nullptr && entry->expired(now)) {
    // Lazy expiry: drop it now and retry (the sweep also runs
    // periodically; this just keeps single lookups correct).
    const Match match = entry->match;
    const std::uint16_t priority = entry->priority;
    remove(match, /*strict=*/true, priority);
    rebuild_if_needed();
    entry = matcher_->lookup(view, cost);
    if (entry != nullptr && entry->expired(now)) entry = nullptr;
  }
  record_lookup(entry, packet_bytes, now);
  return entry;
}

void FlowTable::record_lookup(FlowEntry* entry, std::size_t packet_bytes, sim::SimNanos now) {
  ++counters_.lookups;
  if (entry == nullptr) return;
  ++counters_.matches;
  ++entry->packet_count;
  entry->byte_count += packet_bytes;
  entry->last_hit = now;
}

std::vector<FlowEntry> FlowTable::collect_expired(sim::SimNanos now) {
  std::vector<FlowEntry> expired;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if ((*it)->expired(now)) {
      expired.push_back(std::move(**it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) mark_dirty();
  return expired;
}

std::vector<const FlowEntry*> FlowTable::entries() const {
  std::vector<const FlowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  std::stable_sort(out.begin(), out.end(), [](const FlowEntry* a, const FlowEntry* b) {
    return a->priority > b->priority;
  });
  return out;
}

}  // namespace harmless::openflow

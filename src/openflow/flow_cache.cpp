#include "openflow/flow_cache.hpp"

#include <algorithm>

namespace harmless::openflow {

bool MegaflowEntry::covers(const FieldView& view) const {
  if ((view.present & required_present) != required_present) return false;
  if ((view.present & required_absent) != 0) return false;
  std::uint32_t remaining = required_present;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    if ((view.values[index] & masks[index]) != values[index]) return false;
  }
  return true;
}

bool MegaflowEntry::timed_out(sim::SimNanos now) const {
  for (const Step& step : steps)
    if (step.entry != nullptr && step.entry->expired(now)) return true;
  return false;
}

std::uint64_t FlowCache::microflow_key(const FieldView& view) {
  std::uint64_t h = kFieldHashSeed ^ view.present;
  std::uint32_t remaining = view.present;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    h = hash_u64s(h, view.values[index]);
  }
  return h;
}

MegaflowEntry* FlowCache::lookup(const FieldView& view, sim::SimNanos now,
                                 std::uint32_t* scanned) {
  return find(view, now, scanned, /*count_miss=*/true);
}

MegaflowEntry* FlowCache::probe(const FieldView& view, sim::SimNanos now,
                                std::uint32_t* scanned) {
  return find(view, now, scanned, /*count_miss=*/false);
}

MegaflowEntry* FlowCache::find(const FieldView& view, sim::SimNanos now,
                               std::uint32_t* scanned, bool count_miss) {
  if (scanned != nullptr) *scanned = 0;
  // First lookup after an epoch bump: reap the self-invalidated
  // entries once, so the tier-2 probe never walks (or charges for)
  // stale candidates.
  if (purged_epoch_ != *epoch_) purge_stale();
  if (megaflows_.empty()) {
    if (count_miss) ++stats_.misses;
    return nullptr;
  }
  const std::uint64_t key = microflow_key(view);
  if (MegaflowEntry** slot = microflow_.find(key)) {
    MegaflowEntry* entry = *slot;
    if (entry->epoch == *epoch_ && entry->covers(view) && !entry->timed_out(now)) {
      ++stats_.hits;
      ++stats_.microflow_hits;
      ++entry->hits;
      entry->referenced = true;
      return entry;
    }
    // Self-invalidated (epoch/expiry) or a hash collision: unmap and
    // fall through to the megaflow tier. Stale entries are counted
    // once, in purge_stale, when the megaflow itself is discarded.
    microflow_.erase(key);
  }

  // ---- tier 2 ----
  ++tier2_lookups_;
  if (limits_.rank_decay_lookups != 0 &&
      tier2_lookups_ % limits_.rank_decay_lookups == 0)
    for (const auto& subtable : subtables_) subtable->rank_hits /= 2;

  MegaflowEntry* hit = linear_scan_ ? find_linear(view, now, key, scanned)
                                    : find_subtables(view, now, key, scanned);
  if (hit == nullptr && count_miss) ++stats_.misses;
  return hit;
}

MegaflowEntry* FlowCache::tier2_hit(MegaflowEntry* entry, std::uint64_t key) {
  if (microflow_.size() < limits_.max_microflows) {
    microflow_.insert_or_assign(key, entry);
    note_microflow_key(*entry, key);
  }
  ++stats_.hits;
  ++stats_.megaflow_hits;
  ++entry->hits;
  entry->referenced = true;
  return entry;
}

MegaflowEntry* FlowCache::find_subtables(const FieldView& view, sim::SimNanos now,
                                         std::uint64_t key, std::uint32_t* scanned) {
  // One hashed probe per presence-compatible subtable, front (hottest
  // rank) first. The presence pre-check is two bitmask compares — it is
  // deliberately not billed as a probe; only hashes are.
  for (std::size_t si = 0; si < subtables_.size(); ++si) {
    MegaflowSubtable& subtable = *subtables_[si];
    if ((view.present & subtable.required_present) != subtable.required_present) continue;
    if ((view.present & subtable.required_absent) != 0) continue;
    if (scanned != nullptr) ++*scanned;
    ++stats_.subtable_probes;
    const auto bucket = subtable.buckets.find(subtable.hash_view(view));
    if (bucket == subtable.buckets.end()) continue;
    for (MegaflowEntry* candidate : bucket->second) {
      if (!candidate->covers(view)) continue;  // same-hash collision
      // A covering entry with timed-out flow references must not hit:
      // the slow path has to run so the table performs its lazy expiry
      // (which bumps the epoch and retires this entry for good).
      if (candidate->timed_out(now)) return nullptr;
      // Rank maintenance: bump this subtable's decaying hit count and
      // bubble it toward the front past colder neighbors, so the next
      // lookup of a skewed workload probes it first.
      ++subtable.rank_hits;
      while (si > 0 && subtables_[si]->rank_hits > subtables_[si - 1]->rank_hits) {
        std::swap(subtables_[si], subtables_[si - 1]);
        --si;
      }
      return tier2_hit(candidate, key);
    }
  }
  return nullptr;
}

MegaflowEntry* FlowCache::find_linear(const FieldView& view, sim::SimNanos now,
                                      std::uint64_t key, std::uint32_t* scanned) {
  // The pre-classifier reference: one masked compare per resident
  // megaflow, insertion order — the ablation baseline Table 6 degrades.
  for (const auto& candidate : megaflows_) {
    if (scanned != nullptr) ++*scanned;
    if (candidate->epoch != *epoch_) continue;  // stale; reaped on next purge
    if (!candidate->covers(view)) continue;
    if (candidate->timed_out(now)) return nullptr;
    return tier2_hit(candidate.get(), key);
  }
  return nullptr;
}

void FlowCache::index_entry(MegaflowEntry* entry) {
  MegaflowSubtable* home = nullptr;
  for (const auto& subtable : subtables_)
    if (subtable->matches_signature(*entry)) {
      home = subtable.get();
      break;
    }
  if (home == nullptr) {
    auto fresh = std::make_unique<MegaflowSubtable>();
    fresh->masks = entry->masks;
    fresh->required_present = entry->required_present;
    fresh->required_absent = entry->required_absent;
    home = fresh.get();
    // New masks start cold, at the back of the probe order; they earn
    // their way forward through the rank bumps of actual hits.
    subtables_.push_back(std::move(fresh));
  }
  // Entry values are pre-masked at install time, so hashing them
  // through the subtable's own masks equals hashing a matching packet.
  FieldView masked;
  masked.values = entry->values;
  masked.present = entry->required_present;
  entry->subtable = home;
  entry->subtable_hash = home->hash_view(masked);
  home->buckets[entry->subtable_hash].push_back(entry);
  ++home->entry_count;
}

void FlowCache::unindex_entry(MegaflowEntry* entry) {
  MegaflowSubtable* home = entry->subtable;
  if (home == nullptr) return;
  const auto bucket = home->buckets.find(entry->subtable_hash);
  if (bucket != home->buckets.end()) {
    std::erase(bucket->second, entry);
    if (bucket->second.empty()) home->buckets.erase(bucket);
  }
  entry->subtable = nullptr;
  if (--home->entry_count == 0)
    std::erase_if(subtables_,
                  [home](const std::unique_ptr<MegaflowSubtable>& subtable) {
                    return subtable.get() == home;
                  });
}

void FlowCache::note_microflow_key(MegaflowEntry& entry, std::uint64_t key) {
  auto& keys = entry.microflow_keys;
  keys.push_back(key);
  // Compact at a doubling watermark: stale keys (tier-1 resets,
  // collision remaps) and duplicates are purged, so the vector stays
  // within ~2x the entry's live tier-1 mappings. Rearming the
  // watermark to 2x the survivors keeps the cost amortized O(1) per
  // recorded key even when the live count sits just under it.
  if (keys.size() < entry.microflow_compact_at) return;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::erase_if(keys, [&](std::uint64_t stale_key) {
    MegaflowEntry** slot = microflow_.find(stale_key);
    return slot == nullptr || *slot != &entry;
  });
  entry.microflow_compact_at = std::max<std::size_t>(64, 2 * keys.size());
}

void FlowCache::purge_stale() {
  purged_epoch_ = *epoch_;
  bool any_stale = false;
  for (const auto& entry : megaflows_)
    if (entry->epoch != *epoch_) {
      any_stale = true;
      break;
    }
  if (!any_stale) return;
  std::erase_if(megaflows_, [this](const std::unique_ptr<MegaflowEntry>& entry) {
    if (entry->epoch == *epoch_) return false;
    ++stats_.invalidations;
    return true;
  });
  // Rebuild the classifier from the survivors (in practice an epoch
  // bump stales everything, so this clears it). Subtable ranks reset
  // with it — the cache is cold again anyway.
  subtables_.clear();
  for (const auto& entry : megaflows_) {
    entry->subtable = nullptr;
    index_entry(entry.get());
  }
  // Microflow pointers may reference reaped entries; the tier re-learns
  // on the next packet of each microflow anyway.
  microflow_.clear();
  clock_hand_ = 0;
}

void FlowCache::evict_one() {
  // Second chance: at most two sweeps — the first clears every set
  // reference bit, so the second is guaranteed to find a victim.
  for (std::size_t step = 0; step < 2 * megaflows_.size(); ++step) {
    if (clock_hand_ >= megaflows_.size()) clock_hand_ = 0;
    MegaflowEntry* candidate = megaflows_[clock_hand_].get();
    if (candidate->referenced) {
      candidate->referenced = false;
      ++clock_hand_;
      continue;
    }
    // Unmap the victim's own microflow pointers before it is freed
    // (keys may have been remapped or reset since — re-check).
    for (const std::uint64_t key : candidate->microflow_keys) {
      MegaflowEntry** slot = microflow_.find(key);
      if (slot != nullptr && *slot == candidate) microflow_.erase(key);
    }
    unindex_entry(candidate);
    megaflows_.erase(megaflows_.begin() +
                     static_cast<std::ptrdiff_t>(clock_hand_));
    ++stats_.evictions;
    return;
  }
}

MegaflowEntry* FlowCache::insert(MegaflowEntry entry, const FieldView& view) {
  if (purged_epoch_ != *epoch_) purge_stale();
  if (megaflows_.size() >= limits_.max_megaflows) {
    // CLOCK eviction keeps hot aggregates (elephants) resident where
    // the old wholesale flush would have cold-started everything.
    evict_one();
  }
  if (microflow_.size() >= limits_.max_microflows) {
    // Only the exact-match tier is full (a long mice tail): resetting
    // it is cheap — its entries point into megaflows_, which survives,
    // so the hot aggregates keep hitting tier 2 and re-seed tier 1.
    microflow_.clear();
    ++stats_.flushes;
  }
  entry.epoch = *epoch_;
  megaflows_.push_back(std::make_unique<MegaflowEntry>(std::move(entry)));
  MegaflowEntry* inserted = megaflows_.back().get();
  index_entry(inserted);
  const std::uint64_t key = microflow_key(view);
  microflow_.insert_or_assign(key, inserted);
  note_microflow_key(*inserted, key);
  ++stats_.insertions;
  return inserted;
}

void FlowCache::clear() {
  megaflows_.clear();
  subtables_.clear();
  microflow_.clear();
  clock_hand_ = 0;
}

}  // namespace harmless::openflow

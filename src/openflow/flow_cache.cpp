#include "openflow/flow_cache.hpp"

#include <algorithm>

namespace harmless::openflow {

bool MegaflowEntry::covers(const FieldView& view) const {
  if ((view.present & required_present) != required_present) return false;
  if ((view.present & required_absent) != 0) return false;
  std::uint32_t remaining = required_present;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    if ((view.values[index] & masks[index]) != values[index]) return false;
  }
  return true;
}

bool MegaflowEntry::timed_out(sim::SimNanos now) const {
  for (const Step& step : steps)
    if (step.entry != nullptr && step.entry->expired(now)) return true;
  return false;
}

std::uint64_t FlowCache::microflow_key(const FieldView& view) {
  std::uint64_t h = kFieldHashSeed ^ view.present;
  std::uint32_t remaining = view.present;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    h = hash_u64s(h, view.values[index]);
  }
  return h;
}

MegaflowEntry* FlowCache::lookup(const FieldView& view, sim::SimNanos now,
                                 std::uint32_t* scanned) {
  return find(view, now, scanned, /*count_miss=*/true);
}

MegaflowEntry* FlowCache::probe(const FieldView& view, sim::SimNanos now,
                                std::uint32_t* scanned) {
  return find(view, now, scanned, /*count_miss=*/false);
}

MegaflowEntry* FlowCache::find(const FieldView& view, sim::SimNanos now,
                               std::uint32_t* scanned, bool count_miss) {
  if (scanned != nullptr) *scanned = 0;
  // First lookup after an epoch bump: reap the self-invalidated
  // entries once, so the tier-2 scan never walks (or charges for)
  // stale candidates.
  if (purged_epoch_ != epoch_) purge_stale();
  if (megaflows_.empty()) {
    if (count_miss) ++stats_.misses;
    return nullptr;
  }
  const std::uint64_t key = microflow_key(view);
  const auto it = microflow_.find(key);
  if (it != microflow_.end()) {
    MegaflowEntry* entry = it->second;
    if (entry->epoch == epoch_ && entry->covers(view) && !entry->timed_out(now)) {
      ++stats_.hits;
      ++stats_.microflow_hits;
      ++entry->hits;
      entry->referenced = true;
      return entry;
    }
    // Self-invalidated (epoch/expiry) or a hash collision: unmap and
    // fall through to the megaflow tier. Stale entries are counted
    // once, in purge_stale, when the megaflow itself is discarded.
    microflow_.erase(it);
  }
  for (const auto& candidate : megaflows_) {
    if (scanned != nullptr) ++*scanned;
    if (candidate->epoch != epoch_) continue;  // stale; reaped on next insert
    if (!candidate->covers(view)) continue;
    // A covering entry with timed-out flow references must not hit:
    // the slow path has to run so the table performs its lazy expiry
    // (which bumps the epoch and retires this entry for good).
    if (candidate->timed_out(now)) break;
    if (microflow_.size() < limits_.max_microflows) {
      microflow_[key] = candidate.get();
      candidate->microflow_keys.push_back(key);
    }
    ++stats_.hits;
    ++stats_.megaflow_hits;
    ++candidate->hits;
    candidate->referenced = true;
    return candidate.get();
  }
  if (count_miss) ++stats_.misses;
  return nullptr;
}

void FlowCache::purge_stale() {
  purged_epoch_ = epoch_;
  bool any_stale = false;
  for (const auto& entry : megaflows_)
    if (entry->epoch != epoch_) {
      any_stale = true;
      break;
    }
  if (!any_stale) return;
  std::erase_if(megaflows_, [this](const std::unique_ptr<MegaflowEntry>& entry) {
    if (entry->epoch == epoch_) return false;
    ++stats_.invalidations;
    return true;
  });
  // Microflow pointers may reference reaped entries; the tier re-learns
  // on the next packet of each microflow anyway.
  microflow_.clear();
  clock_hand_ = 0;
}

void FlowCache::evict_one() {
  // Second chance: at most two sweeps — the first clears every set
  // reference bit, so the second is guaranteed to find a victim.
  for (std::size_t step = 0; step < 2 * megaflows_.size(); ++step) {
    if (clock_hand_ >= megaflows_.size()) clock_hand_ = 0;
    MegaflowEntry* candidate = megaflows_[clock_hand_].get();
    if (candidate->referenced) {
      candidate->referenced = false;
      ++clock_hand_;
      continue;
    }
    // Unmap the victim's own microflow pointers before it is freed
    // (keys may have been remapped or reset since — re-check).
    for (const std::uint64_t key : candidate->microflow_keys) {
      const auto it = microflow_.find(key);
      if (it != microflow_.end() && it->second == candidate) microflow_.erase(it);
    }
    megaflows_.erase(megaflows_.begin() +
                     static_cast<std::ptrdiff_t>(clock_hand_));
    ++stats_.evictions;
    return;
  }
}

MegaflowEntry* FlowCache::insert(MegaflowEntry entry, const FieldView& view) {
  if (purged_epoch_ != epoch_) purge_stale();
  if (megaflows_.size() >= limits_.max_megaflows) {
    // CLOCK eviction keeps hot aggregates (elephants) resident where
    // the old wholesale flush would have cold-started everything.
    evict_one();
  }
  if (microflow_.size() >= limits_.max_microflows) {
    // Only the exact-match tier is full (a long mice tail): resetting
    // it is cheap — its entries point into megaflows_, which survives,
    // so the hot aggregates keep hitting tier 2 and re-seed tier 1.
    microflow_.clear();
    ++stats_.flushes;
  }
  entry.epoch = epoch_;
  megaflows_.push_back(std::make_unique<MegaflowEntry>(std::move(entry)));
  MegaflowEntry* inserted = megaflows_.back().get();
  const std::uint64_t key = microflow_key(view);
  microflow_[key] = inserted;
  inserted->microflow_keys.push_back(key);
  ++stats_.insertions;
  return inserted;
}

void FlowCache::clear() {
  megaflows_.clear();
  microflow_.clear();
  clock_hand_ = 0;
}

}  // namespace harmless::openflow

// openflow/matcher.hpp — flow-table lookup engines.
//
// Two engines implement the same contract so benches can swap them:
//
//  * LinearMatcher — the textbook approach: walk entries in priority
//    order, first hit wins. O(n) per lookup.
//
//  * SpecializedMatcher — a miniature of ESwitch's dataplane
//    specialization (Molnár et al., SIGCOMM'16 [9], the switch the
//    HARMLESS demo runs): entries are partitioned by *shape* (the set
//    of constrained fields + masks). Shapes whose constraints are all
//    exact-match compile to a hash table keyed on the packed field
//    values — one probe instead of n comparisons. Wildcarded shapes
//    keep a priority-ordered list. Lookup visits shapes in descending
//    max-priority order and stops as soon as no later shape can beat
//    the best hit.
//
// Both report a LookupCost so the softswitch can charge simulated
// nanoseconds proportional to real work.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "openflow/flow_entry.hpp"

namespace harmless::openflow {

struct LookupCost {
  std::uint32_t entries_scanned = 0;  // linear comparisons performed
  std::uint32_t hash_probes = 0;      // hash-table probes performed
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Rebuild internal structures from `entries` (any order; matchers
  /// sort internally). Pointers must stay valid until the next rebuild.
  virtual void rebuild(std::span<FlowEntry* const> entries) = 0;

  /// Highest-priority matching entry, or nullptr.
  virtual FlowEntry* lookup(const FieldView& view, LookupCost& cost) const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

class LinearMatcher : public Matcher {
 public:
  void rebuild(std::span<FlowEntry* const> entries) override;
  FlowEntry* lookup(const FieldView& view, LookupCost& cost) const override;
  [[nodiscard]] const char* name() const override { return "linear"; }

 private:
  std::vector<FlowEntry*> by_priority_;
};

class SpecializedMatcher : public Matcher {
 public:
  void rebuild(std::span<FlowEntry* const> entries) override;
  FlowEntry* lookup(const FieldView& view, LookupCost& cost) const override;
  [[nodiscard]] const char* name() const override { return "specialized"; }

  /// Number of compiled shapes (exposed for tests/benches).
  [[nodiscard]] std::size_t shape_count() const { return shapes_.size(); }

 private:
  struct Shape {
    std::uint32_t fields = 0;  // presence bitmap
    std::array<std::uint64_t, kFieldCount> masks{};
    bool exact = false;              // all masks full-width -> hashed
    std::uint16_t max_priority = 0;  // best entry priority in this shape
    // exact shapes:
    std::unordered_map<std::uint64_t, std::vector<FlowEntry*>> buckets;
    // wildcard shapes (priority-desc):
    std::vector<FlowEntry*> list;
  };

  /// Pack the constrained field values of `view` under `shape` into a
  /// hash key. Returns false if the view lacks one of the fields.
  static bool shape_key(const Shape& shape, const FieldView& view, std::uint64_t& key);

  std::vector<Shape> shapes_;  // sorted by max_priority descending
};

std::unique_ptr<Matcher> make_matcher(bool specialized);

}  // namespace harmless::openflow

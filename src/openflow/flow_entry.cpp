#include "openflow/flow_entry.hpp"

#include "util/strings.hpp"

namespace harmless::openflow {

Instructions apply(ActionList actions) {
  Instructions inst;
  inst.apply_actions = std::move(actions);
  return inst;
}

Instructions apply_then_goto(ActionList actions, std::uint8_t table) {
  Instructions inst;
  inst.apply_actions = std::move(actions);
  inst.goto_table = table;
  return inst;
}

std::string Instructions::to_string() const {
  std::string out;
  const auto append = [&out](const std::string& piece) {
    if (!out.empty()) out += ' ';
    out += piece;
  };
  if (!apply_actions.empty()) append("apply(" + openflow::to_string(apply_actions) + ")");
  if (clear_actions) append("clear");
  if (!write_actions.empty()) append("write(" + openflow::to_string(write_actions) + ")");
  if (goto_table) append("goto:" + std::to_string(*goto_table));
  if (out.empty()) out = "drop";
  return out;
}

std::string FlowEntry::to_string() const {
  return util::format("prio=%u %s -> %s (pkts=%llu)", priority, match.to_string().c_str(),
                      instructions.to_string().c_str(),
                      static_cast<unsigned long long>(packet_count));
}

}  // namespace harmless::openflow

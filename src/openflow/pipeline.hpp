// openflow/pipeline.hpp — the multi-table OF1.3 pipeline.
//
// Execution model (the subset of OF1.3 §5 the system needs, faithfully):
//   * packet enters table 0 with an empty action set
//   * on match: apply-actions run immediately (header rewrites take
//     effect for later tables), clear/write edit the action set,
//     goto-table continues at a strictly higher table
//   * when the pipeline stops (no goto), the action set executes in
//     spec order: pop_vlan, push_vlan, set_field*, group, output
//   * on miss: the packet is dropped (install a priority-0 wildcard
//     entry — the table-miss entry — to get controller punts)
//
// The multi-table traversal above is the *slow path*. By default every
// pipeline fronts it with a two-tier flow cache (flow_cache.hpp): the
// slow path records which field bits it examined, installs a megaflow
// covering the whole wildcarded aggregate, and subsequent packets of
// the aggregate replay the cached action program — identical outputs,
// packet-ins and counters, a fraction of the cost. Flow-mods, group
// mods and expiry invalidate cached entries via a shared epoch.
//
// The pipeline charges a simulated cost per packet assembled from the
// work actually performed (parse, hash probes, linear scans, actions,
// group executions). The constants model a 2017 x86 software switch in
// the ESwitch/DPDK class and are the knob EXPERIMENTS.md documents.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "openflow/conntrack.hpp"
#include "openflow/flow_cache.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/group_table.hpp"

namespace harmless::openflow {

struct PipelineCosts {
  sim::SimNanos parse_ns = 25;       // header parse + FieldView build
  sim::SimNanos hash_probe_ns = 12;  // one exact-match table probe
  sim::SimNanos entry_scan_ns = 4;   // one linear entry comparison
  sim::SimNanos action_ns = 6;       // one action application
  sim::SimNanos group_ns = 10;       // group indirection overhead
  sim::SimNanos miss_ns = 8;         // table miss bookkeeping
};

enum class PacketInReason : std::uint8_t {
  kNoMatch = 0,  // reached via a table-miss entry with output:CONTROLLER
  kAction = 1,
};

struct PacketInEvent {
  net::Packet packet;
  std::uint32_t in_port = 0;
  std::uint8_t table_id = 0;
  PacketInReason reason = PacketInReason::kAction;
};

struct PipelineResult {
  /// (out_port, frame) pairs; out_port may be a ReservedPort (FLOOD,
  /// ALL, IN_PORT) that the datapath resolves against its port set.
  std::vector<std::pair<std::uint32_t, net::Packet>> outputs;
  std::vector<PacketInEvent> packet_ins;
  sim::SimNanos cost_ns = 0;
  std::uint8_t last_table = 0;
  bool matched = false;
  /// True when the flow cache served this packet: cost_ns then covers
  /// only the replayed actions — the datapath adds its cache-hit cost
  /// (DatapathCosts::cache_hit_ns) instead of parse + lookup.
  bool cache_hit = false;
  /// True when this slow-path miss actually installed a megaflow; the
  /// datapath charges DatapathCosts::cache_insert_ns only then. The
  /// slow path declines to install when the traversal punted to the
  /// controller (a packet-in upcall is a slow-path event by nature —
  /// the controller's answer is about to change the tables anyway).
  bool cache_installed = false;
  /// Tier-2 classifier work performed for this packet (0 for microflow
  /// hits): hashed subtable probes in dpcls mode — charged at
  /// DatapathCosts::cache_subtable_ns each — or, when the linear-scan
  /// ablation is on (`cache_linear`), megaflow candidates compared,
  /// charged at DatapathCosts::cache_scan_ns each.
  std::uint32_t cache_scanned = 0;
  /// True when the cache ran in linear-scan ablation mode, so the
  /// datapath knows which unit (and rate) cache_scanned bills at.
  bool cache_linear = false;
  /// Conntrack work this packet performed, billed by the datapath at
  /// DatapathCosts::ct_lookup_ns / ct_commit_ns: one lookup when the
  /// prelude classified the packet (ct enabled + IPv4 TCP/UDP), one
  /// commit per `ct` action traversed (slow path or replay alike).
  std::uint32_t ct_lookups = 0;
  std::uint32_t ct_commits = 0;

  [[nodiscard]] bool dropped() const { return outputs.empty() && packet_ins.empty(); }

  /// Back to a fresh state, keeping the outputs/packet_ins capacity —
  /// BurstResult recycles these across bursts.
  void reset() {
    outputs.clear();
    packet_ins.clear();
    cost_ns = 0;
    last_table = 0;
    matched = false;
    cache_hit = false;
    cache_installed = false;
    cache_scanned = 0;
    cache_linear = false;
    ct_lookups = 0;
    ct_commits = 0;
  }
};

/// One packet of a service burst, in arrival order.
struct BurstPacket {
  net::Packet packet;
  std::uint32_t in_port = 0;
};

/// Per-packet results of one burst plus the burst-level amortization
/// facts the datapath bills from.
struct BurstResult {
  std::vector<PipelineResult> results;  // one per packet, arrival order
  /// Distinct megaflow entries replayed: the burst pays one
  /// DatapathCosts::replay_setup_ns per group, not per packet.
  std::uint32_t replay_groups = 0;

  /// Size for a new burst of `n` packets, recycling the per-packet
  /// result vectors' capacity (SoftSwitch keeps one BurstResult alive
  /// across its whole run).
  void reset(std::size_t n) {
    replay_groups = 0;
    if (results.size() > n) results.resize(n);
    for (PipelineResult& result : results) result.reset();
    results.reserve(n);
    while (results.size() < n) results.emplace_back();
  }
};

class Pipeline {
 public:
  /// `table_count` tables (0..n-1); `specialized` picks the matcher;
  /// `flow_cache` enables the two-tier fast path (ablation knob).
  explicit Pipeline(std::size_t table_count = 2, bool specialized = true,
                    bool flow_cache = true);

  /// Non-movable: tables_ and groups_ hold raw pointers into the
  /// pipeline-owned cache epoch counter, so a move would leave them
  /// aimed at the moved-from object. Hold pipelines by value in their
  /// owner (as SoftSwitch does) or behind a unique_ptr.
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  Pipeline(Pipeline&&) = delete;
  Pipeline& operator=(Pipeline&&) = delete;

  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] FlowTable& table(std::size_t index);
  [[nodiscard]] const FlowTable& table(std::size_t index) const;
  [[nodiscard]] GroupTable& groups() { return groups_; }
  [[nodiscard]] const GroupTable& groups() const { return groups_; }

  /// Grow the flow cache to `shards` per-core shards (one per worker
  /// core of a multi-core datapath; shard 0 always exists and is what
  /// the single-core datapath uses). Each shard owns its own microflow
  /// map, classifier subtables, rank order and CLOCK hand; all shards
  /// share the pipeline's one invalidation epoch, so any table/group
  /// mutation invalidates every core's cached programs at once — the
  /// only cross-core cache state, and it is read-mostly. New shards
  /// copy shard 0's limits and linear-scan mode. Call before traffic.
  void set_shard_count(std::size_t shards);
  [[nodiscard]] std::size_t shard_count() const { return caches_.size(); }

  /// Shard 0 — the single-core cache (and the historical accessor).
  [[nodiscard]] FlowCache& cache() { return *caches_.front(); }
  [[nodiscard]] const FlowCache& cache() const { return *caches_.front(); }
  /// Core `shard`'s cache shard.
  [[nodiscard]] FlowCache& cache(std::size_t shard) { return *caches_.at(shard); }
  [[nodiscard]] const FlowCache& cache(std::size_t shard) const { return *caches_.at(shard); }
  [[nodiscard]] bool cache_enabled() const { return cache_enabled_; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  /// Flip every shard between dpcls subtables and the linear-scan
  /// ablation (the per-shard knob, applied uniformly).
  void set_linear_scan(bool linear) {
    for (auto& shard : caches_) shard->set_linear_scan(linear);
  }
  /// Set every shard's capacity limits uniformly. On a multi-core
  /// switch, `cache().set_limits(...)` configures shard 0 only — for
  /// capacity experiments use this (typically with per-shard limits of
  /// total/cores, since each shard fields only its cores' traffic).
  void set_cache_limits(const FlowCache::Limits& limits) {
    for (auto& shard : caches_) shard->set_limits(limits);
  }

  /// Turn on the conntrack tier: one ConnTracker shard per cache shard
  /// (created now for existing shards; set_shard_count grows both in
  /// step). From here on, every IPv4 TCP/UDP packet is classified
  /// read-only before any cache probe and carries Field::kCtState, so
  /// ct_state rules can match and both cache tiers key on the state.
  /// Call before traffic, like set_shard_count.
  void enable_conntrack(const CtConfig& config);
  [[nodiscard]] bool conntrack_enabled() const { return ct_enabled_; }
  /// Core `shard`'s conntrack shard (enable_conntrack first).
  [[nodiscard]] ConnTracker& conntrack(std::size_t shard = 0) { return *trackers_.at(shard); }
  [[nodiscard]] const ConnTracker& conntrack(std::size_t shard = 0) const {
    return *trackers_.at(shard);
  }
  /// Live connections across all shards (0 when ct is disabled).
  [[nodiscard]] std::size_t ct_connection_count() const;
  /// Sweep every shard's expiry wheel; returns connections expired.
  std::size_t ct_expire(sim::SimNanos now);
  /// Earliest expiry deadline across shards, if any connection lives.
  [[nodiscard]] std::optional<sim::SimNanos> ct_next_deadline() const;
  /// Wipe all connection state (datapath crash), keeping shard stats.
  void ct_clear();

  /// Run one packet; consumes it. Fast path on a cache-shard hit,
  /// otherwise the full traversal (which learns a megaflow into the
  /// same shard when caching is on). `shard` is the calling worker
  /// core's cache shard; the single-core datapath uses shard 0.
  PipelineResult run(net::Packet&& packet, std::uint32_t in_port, sim::SimNanos now,
                     std::size_t shard = 0);

  /// Run one burst, OVS/DPDK style; consumes it. Phase 1 probes the
  /// flow cache for every packet; phase 2 groups the hits by megaflow
  /// entry and replays each learned action program group by group
  /// (per-packet emission, one replay setup per group); phase 3 sends
  /// only the residue through run()'s slow path — in arrival order, and
  /// re-probing, so the second packet of a new flow within one burst
  /// hits the megaflow the first one installed. Observationally
  /// identical to running the packets one at a time (the burst
  /// equivalence property test pins this). `shard` as in run().
  /// Consumes the packets but not the vector (the caller's burst
  /// buffer keeps its capacity); `out` is reset and refilled, so a
  /// caller-owned BurstResult recycles all result storage.
  void run_burst(std::vector<BurstPacket>& burst, sim::SimNanos now, std::size_t shard,
                 BurstResult& out);

  /// Convenience overload returning a fresh BurstResult.
  BurstResult run_burst(std::vector<BurstPacket>&& burst, sim::SimNanos now,
                        std::size_t shard = 0) {
    BurstResult out;
    run_burst(burst, now, shard, out);
    return out;
  }

  /// Sweep all tables for expired entries.
  std::vector<FlowEntry> collect_expired(sim::SimNanos now);

  void set_costs(const PipelineCosts& costs) { costs_ = costs; }
  [[nodiscard]] const PipelineCosts& costs() const { return costs_; }

  /// Total entries across tables.
  [[nodiscard]] std::size_t total_entries() const;

 private:
  /// Execute an action list against `packet`; outputs/groups/punts are
  /// routed into `result`. Returns the cost of the executed actions.
  /// `learn` (slow path only) records fields that actions overwrite so
  /// megaflow learning stops attributing them to the original packet.
  /// `consume` marks `packet` dead after this call: when the list's
  /// final action is an output to a data port, the packet moves into
  /// the result instead of being cloned — the common unicast fast path
  /// forwards zero frame copies.
  sim::SimNanos execute_actions(const ActionList& actions, net::Packet& packet,
                                std::uint32_t in_port, std::uint8_t table_id,
                                PipelineResult& result, bool& view_dirty, FieldUse* learn,
                                int depth, bool consume = false);

  /// run() body once the packet's FieldView is built — run_burst
  /// residue packets enter here with their phase-1 view, so a burst
  /// parses each packet exactly once. `shard` is the serving core's
  /// cache shard (lookup and learning both land there).
  /// `ct_annotated` marks a view the caller already ran the conntrack
  /// prelude on (the sequential ct burst path), so classification — a
  /// stats-bearing tracker lookup — happens exactly once per packet.
  /// `replayed` (optional) reports the megaflow entry a cache hit
  /// replayed, for the caller's replay-group accounting.
  PipelineResult run_with_view(net::Packet&& packet, std::uint32_t in_port, sim::SimNanos now,
                               FieldView view, std::size_t shard, bool ct_annotated = false,
                               const MegaflowEntry** replayed = nullptr);

  /// Conntrack prelude: classify the packet's 5-tuple against `shard`'s
  /// tracker (read-only) and stamp Field::kCtState into `view`. Returns
  /// true when the packet was classifiable (ct enabled + IPv4 TCP/UDP);
  /// the caller then counts one PipelineResult::ct_lookups.
  bool ct_annotate(FieldView& view, std::size_t shard, sim::SimNanos now);

  /// Execute one `ct` action: commit/refresh the connection in the
  /// current shard's tracker and apply its stored NAT translation to
  /// the packet. Pins the full 5-tuple + ct_state into `learn`, so a
  /// megaflow that traversed ct serves exactly one connection-direction
  /// in one state — a cached decision can never go stale.
  void ct_execute(const CtAction& spec, net::Packet& packet, PipelineResult& result,
                  FieldUse* learn, bool& view_dirty);

  /// run_burst body when conntrack is on: strictly sequential per-packet
  /// processing (classification is order-sensitive — an earlier packet's
  /// commit changes a later packet's ct_state, so phase-grouping would
  /// diverge from per-packet execution). Replay-group amortization is
  /// preserved by counting distinct replayed entries.
  void run_burst_sequential(std::vector<BurstPacket>& burst, sim::SimNanos now,
                            std::size_t shard, BurstResult& out);

  /// Fast path: replay a cached traversal against `packet`.
  void replay(const MegaflowEntry& entry, net::Packet& packet, std::uint32_t in_port,
              sim::SimNanos now, PipelineResult& result);

  /// Turn a finished slow-path traversal into a megaflow keyed on the
  /// original (pre-rewrite) packet projection and install it into
  /// `shard`.
  void install_learned(MegaflowEntry entry, const FieldView& original_view,
                       const FieldUse& use, std::size_t shard);

  std::vector<FlowTable> tables_;
  GroupTable groups_;
  PipelineCosts costs_;
  /// The one invalidation epoch all cache shards (and the tables'
  /// dirty plumbing) share — read-mostly across cores.
  std::uint64_t cache_epoch_ = 1;
  /// Per-core cache shards, >= 1 (shard 0 is the single-core cache).
  /// unique_ptr: FlowCache is address-pinned (self-referential epoch
  /// pointer until share_epoch rebinds it).
  std::vector<std::unique_ptr<FlowCache>> caches_;
  bool cache_enabled_ = true;

  /// Conntrack shards, parallel to caches_ when enabled (empty when
  /// not). unique_ptr for address stability, like the cache shards.
  std::vector<std::unique_ptr<ConnTracker>> trackers_;
  CtConfig ct_config_;
  bool ct_enabled_ = false;
  /// The shard whose tracker `ct` actions hit, set on every entry path
  /// (run_with_view / replay) — execute_actions recursion plumbs no
  /// shard argument. Safe as a member: the pipeline serves one packet
  /// at a time per datapath, like the burst scratch below.
  std::size_t current_shard_ = 0;
  /// Simulation time of the packet in flight, for ct timeouts (same
  /// single-packet-at-a-time argument).
  sim::SimNanos ct_now_ = 0;

  // run_burst scratch, recycled across bursts (phase-1 probe results
  // and the phase-2 replay grouping). Safe as members: run_burst is
  // not reentrant (the datapath serves one burst at a time).
  std::vector<MegaflowEntry*> burst_hits_;
  std::vector<FieldView> burst_views_;
  std::vector<std::pair<const MegaflowEntry*, std::vector<std::size_t>>> burst_groups_;
  /// Distinct entries replayed by a sequential ct burst (group billing).
  std::vector<const MegaflowEntry*> burst_replayed_;
};

}  // namespace harmless::openflow

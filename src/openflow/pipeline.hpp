// openflow/pipeline.hpp — the multi-table OF1.3 pipeline.
//
// Execution model (the subset of OF1.3 §5 the system needs, faithfully):
//   * packet enters table 0 with an empty action set
//   * on match: apply-actions run immediately (header rewrites take
//     effect for later tables), clear/write edit the action set,
//     goto-table continues at a strictly higher table
//   * when the pipeline stops (no goto), the action set executes in
//     spec order: pop_vlan, push_vlan, set_field*, group, output
//   * on miss: the packet is dropped (install a priority-0 wildcard
//     entry — the table-miss entry — to get controller punts)
//
// The pipeline charges a simulated cost per packet assembled from the
// work actually performed (parse, hash probes, linear scans, actions,
// group executions). The constants model a 2017 x86 software switch in
// the ESwitch/DPDK class and are the knob EXPERIMENTS.md documents.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/group_table.hpp"

namespace harmless::openflow {

struct PipelineCosts {
  sim::SimNanos parse_ns = 25;       // header parse + FieldView build
  sim::SimNanos hash_probe_ns = 12;  // one exact-match table probe
  sim::SimNanos entry_scan_ns = 4;   // one linear entry comparison
  sim::SimNanos action_ns = 6;       // one action application
  sim::SimNanos group_ns = 10;       // group indirection overhead
  sim::SimNanos miss_ns = 8;         // table miss bookkeeping
};

enum class PacketInReason : std::uint8_t {
  kNoMatch = 0,  // reached via a table-miss entry with output:CONTROLLER
  kAction = 1,
};

struct PacketInEvent {
  net::Packet packet;
  std::uint32_t in_port = 0;
  std::uint8_t table_id = 0;
  PacketInReason reason = PacketInReason::kAction;
};

struct PipelineResult {
  /// (out_port, frame) pairs; out_port may be a ReservedPort (FLOOD,
  /// ALL, IN_PORT) that the datapath resolves against its port set.
  std::vector<std::pair<std::uint32_t, net::Packet>> outputs;
  std::vector<PacketInEvent> packet_ins;
  sim::SimNanos cost_ns = 0;
  std::uint8_t last_table = 0;
  bool matched = false;

  [[nodiscard]] bool dropped() const { return outputs.empty() && packet_ins.empty(); }
};

class Pipeline {
 public:
  /// `table_count` tables (0..n-1); `specialized` picks the matcher.
  explicit Pipeline(std::size_t table_count = 2, bool specialized = true);

  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
  [[nodiscard]] FlowTable& table(std::size_t index);
  [[nodiscard]] const FlowTable& table(std::size_t index) const;
  [[nodiscard]] GroupTable& groups() { return groups_; }
  [[nodiscard]] const GroupTable& groups() const { return groups_; }

  /// Run one packet; consumes it.
  PipelineResult run(net::Packet&& packet, std::uint32_t in_port, sim::SimNanos now);

  /// Sweep all tables for expired entries.
  std::vector<FlowEntry> collect_expired(sim::SimNanos now);

  void set_costs(const PipelineCosts& costs) { costs_ = costs; }
  [[nodiscard]] const PipelineCosts& costs() const { return costs_; }

  /// Total entries across tables.
  [[nodiscard]] std::size_t total_entries() const;

 private:
  /// Execute an action list against `packet`; outputs/groups/punts are
  /// routed into `result`. Returns the cost of the executed actions.
  sim::SimNanos execute_actions(const ActionList& actions, net::Packet& packet,
                                std::uint32_t in_port, std::uint8_t table_id,
                                PipelineResult& result, bool& view_dirty, int depth);

  std::vector<FlowTable> tables_;
  GroupTable groups_;
  PipelineCosts costs_;
};

}  // namespace harmless::openflow

// openflow/action.hpp — OpenFlow actions.
//
// Actions mutate the frame bytes in place (tags pushed/popped, fields
// rewritten with checksums fixed up) or direct it somewhere (output,
// group, controller). The ActionList is std::vector<Action>; the
// OF1.3 *action set* semantics live in pipeline.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "net/packet.hpp"
#include "net/vlan.hpp"
#include "openflow/fields.hpp"

namespace harmless::openflow {

/// OF1.3 reserved port numbers.
enum ReservedPort : std::uint32_t {
  kPortInPort = 0xfffffff8,
  kPortAll = 0xfffffffc,
  kPortController = 0xfffffffd,
  kPortFlood = 0xfffffffb,
  kPortAny = 0xffffffff,
};

struct OutputAction {
  std::uint32_t port = 0;
  friend bool operator==(const OutputAction&, const OutputAction&) = default;
};
struct GroupAction {
  std::uint32_t group_id = 0;
  friend bool operator==(const GroupAction&, const GroupAction&) = default;
};
struct PushVlanAction {  // pushes TPID 0x8100, vid 0; follow with SetField
  friend bool operator==(const PushVlanAction&, const PushVlanAction&) = default;
};
struct PopVlanAction {
  friend bool operator==(const PopVlanAction&, const PopVlanAction&) = default;
};
/// Set-field. Supported fields: eth_src, eth_dst, vlan_vid, vlan_pcp,
/// ip_src, ip_dst, l4_src, l4_dst (checksums recomputed).
struct SetFieldAction {
  Field field = Field::kEthDst;
  std::uint64_t value = 0;
  friend bool operator==(const SetFieldAction&, const SetFieldAction&) = default;
};

/// Send the packet through the conntrack tier: commit (or refresh) the
/// connection for the packet's 5-tuple, optionally translating
/// addresses. The tracker stores the translation at first commit;
/// every later packet of the connection — either direction — gets the
/// stored mapping applied, so NAT survives group re-selection and
/// backend changes (connection affinity). No-op for non-IPv4-TCP/UDP
/// packets and on ct-less datapaths.
struct CtAction {
  enum class Nat : std::uint8_t {
    kNone,    // commit/refresh only
    kSource,  // SNAT: rewrite src to nat_ip + an allocated port in [port_min, port_max]
    kDest,    // DNAT: rewrite dst to nat_ip (port_min != 0 rewrites the dst port too)
  };
  Nat nat = Nat::kNone;
  std::uint32_t nat_ip = 0;
  std::uint16_t port_min = 0;
  std::uint16_t port_max = 0;
  friend bool operator==(const CtAction&, const CtAction&) = default;
};

using Action = std::variant<OutputAction, GroupAction, PushVlanAction, PopVlanAction,
                            SetFieldAction, CtAction>;
using ActionList = std::vector<Action>;

// ---- convenience constructors ------------------------------------------
inline Action output(std::uint32_t port) { return OutputAction{port}; }
inline Action to_controller() { return OutputAction{kPortController}; }
inline Action flood() { return OutputAction{kPortFlood}; }
inline Action group(std::uint32_t id) { return GroupAction{id}; }
inline Action push_vlan() { return PushVlanAction{}; }
inline Action pop_vlan() { return PopVlanAction{}; }
inline Action set_vlan_vid(net::VlanId vid) {
  return SetFieldAction{Field::kVlanVid, static_cast<std::uint64_t>(kVlanPresent | vid)};
}
inline Action set_eth_dst(net::MacAddr mac) {
  return SetFieldAction{Field::kEthDst, mac.to_u64()};
}
inline Action set_eth_src(net::MacAddr mac) {
  return SetFieldAction{Field::kEthSrc, mac.to_u64()};
}
inline Action set_ip_dst(net::Ipv4Addr ip) { return SetFieldAction{Field::kIpDst, ip.value()}; }
inline Action set_ip_src(net::Ipv4Addr ip) { return SetFieldAction{Field::kIpSrc, ip.value()}; }
inline Action set_l4_dst(std::uint16_t port) { return SetFieldAction{Field::kL4Dst, port}; }
inline Action set_l4_src(std::uint16_t port) { return SetFieldAction{Field::kL4Src, port}; }
inline Action ct_commit() { return CtAction{}; }
inline Action ct_snat(net::Ipv4Addr external_ip, std::uint16_t port_min, std::uint16_t port_max) {
  return CtAction{CtAction::Nat::kSource, external_ip.value(), port_min, port_max};
}
inline Action ct_dnat(net::Ipv4Addr target_ip, std::uint16_t target_port = 0) {
  return CtAction{CtAction::Nat::kDest, target_ip.value(), target_port, target_port};
}

/// Apply one header-mutating action to the frame (Output/Group are
/// no-ops here; the pipeline routes those). Returns false if the action
/// could not be applied (e.g. set vlan_vid on an untagged frame).
bool apply_header_action(const Action& action, net::Packet& packet);

[[nodiscard]] std::string to_string(const Action& action);
[[nodiscard]] std::string to_string(const ActionList& actions);

}  // namespace harmless::openflow

// openflow/match.hpp — the match half of a flow entry.
//
// A Match is a set of (field, value, mask) constraints. A packet's
// FieldView satisfies the match iff, for every constrained field, the
// field is present and (view & mask) == (value & mask). Fluent
// builders cover the fields the HARMLESS apps use.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "net/vlan.hpp"
#include "openflow/fields.hpp"

namespace harmless::openflow {

class Match {
 public:
  /// Wildcard-everything match (the table-miss match).
  Match() = default;

  // ---- generic ----
  Match& set(Field field, std::uint64_t value);
  Match& set_masked(Field field, std::uint64_t value, std::uint64_t mask);

  // ---- fluent helpers ----
  Match& in_port(std::uint32_t port) { return set(Field::kInPort, port); }
  Match& eth_dst(net::MacAddr mac) { return set(Field::kEthDst, mac.to_u64()); }
  Match& eth_src(net::MacAddr mac) { return set(Field::kEthSrc, mac.to_u64()); }
  Match& eth_type(std::uint16_t type) { return set(Field::kEthType, type); }
  /// Match a specific 802.1Q tag.
  Match& vlan_vid(net::VlanId vid) { return set(Field::kVlanVid, kVlanPresent | vid); }
  /// Match untagged frames (OFPVID_NONE).
  Match& vlan_absent() { return set(Field::kVlanVid, 0); }
  /// Match "any tagged frame" (OFPVID_PRESENT with mask).
  Match& vlan_any() { return set_masked(Field::kVlanVid, kVlanPresent, kVlanPresent); }
  Match& ip_proto(std::uint8_t proto) { return set(Field::kIpProto, proto); }
  Match& ip_src(net::Ipv4Addr ip) { return set(Field::kIpSrc, ip.value()); }
  Match& ip_dst(net::Ipv4Addr ip) { return set(Field::kIpDst, ip.value()); }
  Match& ip_src_prefix(net::Ipv4Addr ip, int prefix_len);
  Match& ip_dst_prefix(net::Ipv4Addr ip, int prefix_len);
  Match& l4_src(std::uint16_t port) { return set(Field::kL4Src, port); }
  Match& l4_dst(std::uint16_t port) { return set(Field::kL4Dst, port); }
  Match& arp_op(std::uint16_t op) { return set(Field::kArpOp, op); }
  /// Match TCP flag bits exactly under `mask` (e.g. SYN-only handshakes).
  Match& tcp_flags(std::uint8_t flags, std::uint8_t mask = 0xff) {
    return set_masked(Field::kTcpFlags, flags, mask);
  }
  /// Match ct_state bits: every bit in `bits` must be set, every bit in
  /// `mask & ~bits` clear. kCtState is only present when conntrack is
  /// enabled, so these rules fail-safe (never match) on a ct-less
  /// datapath.
  Match& ct_state(std::uint64_t bits, std::uint64_t mask) {
    return set_masked(Field::kCtState, bits, mask);
  }
  /// An entry exists for this tuple (either direction).
  Match& ct_tracked() { return ct_state(kCtTracked, kCtTracked); }
  /// No entry exists yet; a `ct` commit would create one.
  Match& ct_new() { return ct_state(kCtNew, kCtNew); }
  /// Entry exists and a reply-direction packet has been seen.
  Match& ct_established() { return ct_state(kCtEstablished, kCtEstablished); }
  /// Unclassifiable (e.g. mid-stream TCP with no entry).
  Match& ct_invalid() { return ct_state(kCtInvalid, kCtInvalid); }

  // ---- evaluation ----
  [[nodiscard]] bool matches(const FieldView& view) const;

  /// True if every packet matching `other` also matches this (this is
  /// equal or more general). Used by strict/non-strict flow-mod.
  [[nodiscard]] bool subsumes(const Match& other) const;

  /// True if some packet could match both (OFPFF_CHECK_OVERLAP).
  [[nodiscard]] bool overlaps(const Match& other) const;

  /// Exact structural equality (same fields, values, masks).
  friend bool operator==(const Match&, const Match&) = default;

  [[nodiscard]] bool is_wildcard_all() const { return present_ == 0; }
  [[nodiscard]] std::uint32_t fields_present() const { return present_; }
  [[nodiscard]] bool has(Field field) const { return (present_ & field_bit(field)) != 0; }
  [[nodiscard]] std::uint64_t value_of(Field field) const {
    return values_[static_cast<std::size_t>(field)];
  }
  [[nodiscard]] std::uint64_t mask_of(Field field) const {
    return masks_[static_cast<std::size_t>(field)];
  }

  /// True if every constrained field uses a full (exact) mask — the
  /// property the specialized matcher keys hash tables on.
  [[nodiscard]] bool all_exact() const;

  /// "in_port=3,vlan_vid=101" style.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::uint64_t, kFieldCount> values_{};
  std::array<std::uint64_t, kFieldCount> masks_{};
  std::uint32_t present_ = 0;
};

}  // namespace harmless::openflow

// openflow/flow_table.hpp — one OpenFlow table.
//
// Owns its entries and implements the OF1.3 flow-mod semantics:
//   add             — replaces an entry with identical (match, priority)
//   modify          — rewrites instructions of all entries subsumed by the match
//   modify_strict   — only the exact (match, priority) entry
//   remove / strict — same distinction for deletion
// plus lazy timeout expiry and an optional overlap check on add.
// Lookups delegate to a pluggable Matcher (linear or specialized).
#pragma once

#include <memory>
#include <vector>

#include "openflow/matcher.hpp"
#include "util/status.hpp"

namespace harmless::openflow {

class FlowTable {
 public:
  explicit FlowTable(std::uint8_t table_id = 0, bool specialized_matcher = true);

  [[nodiscard]] std::uint8_t id() const { return id_; }

  /// OFPFC_ADD. If check_overlap and an overlapping same-priority entry
  /// exists, fails without modifying the table.
  util::Status add(FlowEntry entry, sim::SimNanos now, bool check_overlap = false);

  /// OFPFC_MODIFY[_STRICT]: returns number of entries updated.
  std::size_t modify(const Match& match, const Instructions& instructions, bool strict,
                     std::uint16_t priority = 0);

  /// OFPFC_DELETE[_STRICT]: returns the removed entries (for
  /// flow-removed notifications).
  std::vector<FlowEntry> remove(const Match& match, bool strict, std::uint16_t priority = 0);

  /// Remove all entries whose cookie matches (HARMLESS apps tag their
  /// rules with per-app cookies).
  std::vector<FlowEntry> remove_by_cookie(std::uint64_t cookie);

  /// Highest-priority live (non-expired) entry matching `view`.
  /// Updates hit counters and idle timestamps.
  FlowEntry* lookup(const FieldView& view, std::size_t packet_bytes, sim::SimNanos now,
                    LookupCost& cost);

  /// Sweep expired entries out; returns them for notifications.
  std::vector<FlowEntry> collect_expired(sim::SimNanos now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Stable snapshot for stats replies / dumps (priority-descending).
  [[nodiscard]] std::vector<const FlowEntry*> entries() const;

  /// Cumulative per-table counters.
  struct Counters {
    std::uint64_t lookups = 0;
    std::uint64_t matches = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] const char* matcher_name() const { return matcher_->name(); }
  void set_matcher(std::unique_ptr<Matcher> matcher);

  /// Wire this table to the pipeline-wide flow-cache epoch: any
  /// mutation (add/remove/expiry/matcher swap, and instruction
  /// rewrites via modify) increments it so cached fast-path entries
  /// self-invalidate. See openflow/flow_cache.hpp.
  void bind_epoch(std::uint64_t* epoch) { epoch_ = epoch; }

  /// The counter and idle-timestamp bookkeeping of one lookup outcome
  /// (`entry` null on a table miss). lookup() ends with this, and the
  /// flow-cache replay calls it directly so cached hits stay
  /// byte-identical to real lookups.
  void record_lookup(FlowEntry* entry, std::size_t packet_bytes, sim::SimNanos now);

 private:
  void mark_dirty() {
    dirty_ = true;
    bump_epoch();
  }
  void bump_epoch() {
    if (epoch_ != nullptr) ++*epoch_;
  }
  void rebuild_if_needed();

  std::uint8_t id_;
  std::vector<std::unique_ptr<FlowEntry>> entries_;
  std::unique_ptr<Matcher> matcher_;
  bool dirty_ = true;
  std::uint64_t* epoch_ = nullptr;  // shared flow-cache epoch (optional)
  Counters counters_;
};

}  // namespace harmless::openflow

// openflow/flow_entry.hpp — flow entries and instructions.
//
// Instructions follow OF1.3: apply-actions runs immediately, write-
// actions/clear-actions edit the action set, goto-table continues the
// pipeline. Meters and metadata are out of scope (no experiment needs
// them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "openflow/action.hpp"
#include "openflow/match.hpp"
#include "sim/time.hpp"

namespace harmless::openflow {

struct Instructions {
  ActionList apply_actions;
  bool clear_actions = false;
  ActionList write_actions;
  std::optional<std::uint8_t> goto_table;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Instructions&, const Instructions&) = default;
};

/// Shorthand: apply-actions only (the common case in every app).
Instructions apply(ActionList actions);
/// Shorthand: apply-actions then goto.
Instructions apply_then_goto(ActionList actions, std::uint8_t table);

struct FlowEntry {
  std::uint16_t priority = 0;
  Match match;
  Instructions instructions;
  std::uint64_t cookie = 0;

  /// 0 = no timeout. Idle resets on every hit.
  sim::SimNanos idle_timeout = 0;
  sim::SimNanos hard_timeout = 0;
  bool send_flow_removed = false;

  // -- runtime state (maintained by FlowTable) --
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  sim::SimNanos installed_at = 0;
  sim::SimNanos last_hit = 0;

  [[nodiscard]] bool expired(sim::SimNanos now) const {
    if (hard_timeout > 0 && now - installed_at >= hard_timeout) return true;
    const sim::SimNanos last_activity = last_hit > 0 ? last_hit : installed_at;
    return idle_timeout > 0 && now - last_activity >= idle_timeout;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace harmless::openflow

#include "openflow/fields.hpp"

#include <type_traits>

namespace harmless::openflow {

std::uint64_t field_all_ones(Field field) {
  switch (field) {
    case Field::kInPort: return 0xffffffffULL;
    case Field::kEthDst:
    case Field::kEthSrc: return 0xffffffffffffULL;
    case Field::kEthType: return 0xffffULL;
    case Field::kVlanVid: return 0x1fffULL;  // presence bit + 12-bit vid
    case Field::kVlanPcp: return 0x7ULL;
    case Field::kIpProto: return 0xffULL;
    case Field::kIpSrc:
    case Field::kIpDst: return 0xffffffffULL;
    case Field::kIpDscp: return 0x3fULL;
    case Field::kL4Src:
    case Field::kL4Dst: return 0xffffULL;
    case Field::kArpOp: return 0xffffULL;
    case Field::kIcmpType: return 0xffULL;
    case Field::kTcpFlags: return 0xffULL;
    case Field::kCtState: return kCtStateMask;
  }
  return ~0ULL;
}

const char* field_name(Field field) {
  switch (field) {
    case Field::kInPort: return "in_port";
    case Field::kEthDst: return "eth_dst";
    case Field::kEthSrc: return "eth_src";
    case Field::kEthType: return "eth_type";
    case Field::kVlanVid: return "vlan_vid";
    case Field::kVlanPcp: return "vlan_pcp";
    case Field::kIpProto: return "ip_proto";
    case Field::kIpSrc: return "ip_src";
    case Field::kIpDst: return "ip_dst";
    case Field::kIpDscp: return "ip_dscp";
    case Field::kL4Src: return "l4_src";
    case Field::kL4Dst: return "l4_dst";
    case Field::kArpOp: return "arp_op";
    case Field::kIcmpType: return "icmp_type";
    case Field::kTcpFlags: return "tcp_flags";
    case Field::kCtState: return "ct_state";
  }
  return "?";
}

FieldView build_field_view(const net::ParsedPacket& parsed, std::uint32_t in_port) {
  FieldView view;
  view.set(Field::kInPort, in_port);
  if (!parsed.l2_valid) return view;

  view.set(Field::kEthDst, parsed.eth_dst.to_u64());
  view.set(Field::kEthSrc, parsed.eth_src.to_u64());
  view.set(Field::kEthType, parsed.eth_type);
  // kVlanVid is *always* present so rules can match untagged (0)
  // explicitly, per OF1.3 OFPVID_NONE semantics.
  if (parsed.vlan) {
    view.set(Field::kVlanVid, kVlanPresent | parsed.vlan->vid);
    view.set(Field::kVlanPcp, parsed.vlan->pcp);
  } else {
    view.set(Field::kVlanVid, 0);
  }

  if (parsed.arp) {
    view.set(Field::kArpOp, static_cast<std::uint64_t>(parsed.arp->op));
    return view;
  }
  if (!parsed.ipv4) return view;

  view.set(Field::kIpProto, parsed.ipv4->protocol);
  view.set(Field::kIpSrc, parsed.ipv4->src.value());
  view.set(Field::kIpDst, parsed.ipv4->dst.value());
  view.set(Field::kIpDscp, parsed.ipv4->dscp);

  if (parsed.tcp || parsed.udp) {
    view.set(Field::kL4Src, parsed.src_port());
    view.set(Field::kL4Dst, parsed.dst_port());
  }
  if (parsed.tcp) view.set(Field::kTcpFlags, parsed.tcp->flags);
  if (parsed.icmp) view.set(Field::kIcmpType, static_cast<std::uint64_t>(parsed.icmp->type));
  return view;
}

void cached_field_view_into(net::Packet& packet, std::uint32_t in_port, FieldView* out) {
  static_assert(sizeof(FieldView) <= net::PacketParse::kProjectionBytes);
  static_assert(alignof(FieldView) <= 16);
  static_assert(std::is_trivially_copyable_v<FieldView>);

  net::PacketParse& parse = net::parse_cached(packet);
  auto* slot = reinterpret_cast<FieldView*>(parse.projection);
  if (!parse.projection_valid) {
    *slot = build_field_view(parse.parsed, in_port);
    slot->use = nullptr;  // learning recorders never outlive one lookup
    parse.projection_valid = true;
  }
  *out = *slot;
  // kInPort is the only per-hop field: the same frame re-enters the
  // next switch on a different port, so patch it on the copy.
  out->set(Field::kInPort, in_port);
  out->use = nullptr;
}

FieldView cached_field_view(net::Packet& packet, std::uint32_t in_port) {
  FieldView view;
  cached_field_view_into(packet, in_port, &view);
  return view;
}

}  // namespace harmless::openflow

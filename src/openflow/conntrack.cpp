#include "openflow/conntrack.hpp"

#include "net/ip.hpp"
#include "net/l4.hpp"

namespace harmless::openflow {

namespace {
constexpr std::uint8_t kProtoTcp = static_cast<std::uint8_t>(net::IpProto::kTcp);
}  // namespace

std::uint64_t ConnTracker::classify_entry(const Slot& slot, bool reply_dir) const {
  std::uint64_t bits = kCtTracked;
  if (reply_dir) {
    // A valid reply-direction packet proves bidirectionality, so it is
    // already ESTABLISHED from the classifier's point of view (the
    // entry's seen_reply flips when it traverses a ct action).
    bits |= kCtReply | kCtEstablished;
  } else if (slot.entry.seen_reply) {
    bits |= kCtEstablished;
  }
  return bits;
}

std::uint64_t ConnTracker::classify(const CtTuple& tuple, std::uint8_t tcp_flags,
                                    sim::SimNanos now) {
  ++stats_.lookups;
  if (auto it = orig_map_.find(tuple); it != orig_map_.end()) {
    const Slot& slot = slots_[it->second];
    if (slot.entry.expires_at > now) {
      ++stats_.hits;
      return classify_entry(slot, false);
    }
  }
  if (auto it = reply_map_.find(tuple); it != reply_map_.end()) {
    const Slot& slot = slots_[it->second];
    if (slot.entry.expires_at > now) {
      ++stats_.hits;
      return classify_entry(slot, true);
    }
  }
  if (tuple.proto == kProtoTcp && (tcp_flags & net::kTcpSyn) == 0) {
    // Mid-stream TCP with no entry: unclassifiable, never NEW.
    ++stats_.invalid;
    return kCtInvalid;
  }
  return kCtNew;
}

sim::SimNanos ConnTracker::timeout_for(const ConnEntry& entry) const {
  if (entry.orig.proto != kProtoTcp) return config_.udp_timeout;
  if (entry.closing || !entry.seen_reply) return config_.tcp_transient_timeout;
  return config_.tcp_established_timeout;
}

std::uint32_t ConnTracker::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t id = free_slots_.back();
    free_slots_.pop_back();
    return id;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ConnTracker::lru_unlink(std::uint32_t id) {
  Slot& slot = slots_[id];
  if (slot.lru_prev != kNil) slots_[slot.lru_prev].lru_next = slot.lru_next;
  if (slot.lru_next != kNil) slots_[slot.lru_next].lru_prev = slot.lru_prev;
  if (lru_head_ == id) lru_head_ = slot.lru_next;
  if (lru_tail_ == id) lru_tail_ = slot.lru_prev;
  slot.lru_prev = slot.lru_next = kNil;
}

void ConnTracker::lru_push_front(std::uint32_t id) {
  Slot& slot = slots_[id];
  slot.lru_prev = kNil;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = id;
  lru_head_ = id;
  if (lru_tail_ == kNil) lru_tail_ = id;
}

void ConnTracker::lru_touch(std::uint32_t id) {
  if (lru_head_ == id) return;
  lru_unlink(id);
  lru_push_front(id);
}

void ConnTracker::file_deadline(std::uint32_t id, const Slot& slot) {
  const sim::SimNanos q = config_.sweep_interval > 0 ? config_.sweep_interval : 1;
  const sim::SimNanos bucket = ((slot.entry.expires_at + q - 1) / q) * q;
  wheel_[bucket].emplace_back(id, slot.generation);
}

void ConnTracker::kill(std::uint32_t id, bool /*expired*/) {
  Slot& slot = slots_[id];
  orig_map_.erase(slot.entry.orig);
  reply_map_.erase(slot.entry.reply);
  lru_unlink(id);
  slot.live = false;
  ++slot.generation;  // invalidates any wheel references
  free_slots_.push_back(id);
}

void ConnTracker::refresh(Slot& slot, std::uint32_t id, bool reply_dir, std::uint8_t tcp_flags,
                          sim::SimNanos now) {
  ConnEntry& entry = slot.entry;
  if (reply_dir) {
    entry.seen_reply = true;
    ++entry.packets_reply;
  } else {
    ++entry.packets_orig;
  }
  if (entry.orig.proto == kProtoTcp && (tcp_flags & (net::kTcpFin | net::kTcpRst)) != 0) {
    entry.closing = true;
  }
  entry.last_seen = now;
  entry.expires_at = now + timeout_for(entry);
  lru_touch(id);
  ++stats_.refreshed;
  // The wheel reference filed at creation (or at the last sweep) stays
  // put; the sweep re-files the entry when its stale bucket comes due.
}

std::optional<std::uint16_t> ConnTracker::allocate_snat_port(const CtTuple& orig,
                                                             const CtAction& spec) const {
  if (spec.port_min == 0 || spec.port_max < spec.port_min) return std::nullopt;
  const std::uint32_t range =
      static_cast<std::uint32_t>(spec.port_max - spec.port_min) + 1;
  // Both directions of the translated connection must steer to the
  // shard the *original* direction already landed on (symmetric RSS of
  // the pre-NAT tuple) — otherwise reverse traffic would need
  // cross-core state. The virtual-shard formulation (hash % shards,
  // not "this shard's index") makes the allocation independent of
  // which physical shard runs it, so a single-core run with the same
  // nat_steer_shards reproduces an N-core run's ports exactly.
  const std::uint64_t h = orig.symmetric_hash();
  const std::uint64_t want = h % steer_shards_;
  const std::uint32_t start = static_cast<std::uint32_t>((h >> 17) % range);
  for (std::uint32_t i = 0; i < range; ++i) {
    const std::uint16_t port =
        static_cast<std::uint16_t>(spec.port_min + (start + i) % range);
    const CtTuple reply{orig.dst_ip, spec.nat_ip, orig.dst_port, port, orig.proto};
    if (reply.symmetric_hash() % steer_shards_ != want) continue;
    if (reply_map_.contains(reply)) continue;  // endpoint-dependent uniqueness
    return port;
  }
  return std::nullopt;
}

CtOutcome ConnTracker::process(const CtTuple& tuple, std::uint8_t tcp_flags, sim::SimNanos now,
                               const CtAction& spec) {
  CtOutcome out;

  // Lazy expiry: an entry past its deadline is dead even if the sweep
  // has not reaped it yet — identical behavior to the classifier
  // prelude, which already treats it as missing.
  if (auto it = orig_map_.find(tuple); it != orig_map_.end()) {
    const std::uint32_t id = it->second;
    if (slots_[id].entry.expires_at <= now) {
      kill(id, true);
      ++stats_.expired;
    } else {
      Slot& slot = slots_[id];
      out.state = classify_entry(slot, false);
      refresh(slot, id, false, tcp_flags, now);
      const CtNat& nat = slot.entry.nat;
      if (nat.kind == CtAction::Nat::kSource) {
        out.rewrite = true;
        out.translation.src = true;
        out.translation.src_ip = nat.ip;
        out.translation.src_port = nat.port;
      } else if (nat.kind == CtAction::Nat::kDest) {
        out.rewrite = true;
        out.translation.dst = true;
        out.translation.dst_ip = nat.ip;
        out.translation.dst_port = nat.port;
      }
      return out;
    }
  }
  if (auto it = reply_map_.find(tuple); it != reply_map_.end()) {
    const std::uint32_t id = it->second;
    if (slots_[id].entry.expires_at <= now) {
      kill(id, true);
      ++stats_.expired;
    } else {
      Slot& slot = slots_[id];
      out.state = classify_entry(slot, true);
      refresh(slot, id, true, tcp_flags, now);
      const ConnEntry& entry = slot.entry;
      if (entry.nat.kind == CtAction::Nat::kSource) {
        // Un-SNAT: send the reply back to the original inside host.
        out.rewrite = true;
        out.translation.dst = true;
        out.translation.dst_ip = entry.orig.src_ip;
        out.translation.dst_port = entry.orig.src_port;
      } else if (entry.nat.kind == CtAction::Nat::kDest) {
        // Un-DNAT: restore the original (virtual) destination as source.
        out.rewrite = true;
        out.translation.src = true;
        out.translation.src_ip = entry.orig.dst_ip;
        out.translation.src_port = entry.orig.dst_port;
      }
      return out;
    }
  }

  // Miss: commit a new connection.
  if (tuple.proto == kProtoTcp && (tcp_flags & net::kTcpSyn) == 0) {
    ++stats_.invalid;
    out.state = kCtInvalid;
    return out;
  }
  out.state = kCtNew;

  CtNat nat{};
  CtTuple reply = tuple.reversed();
  if (spec.nat == CtAction::Nat::kSource) {
    const std::optional<std::uint16_t> port = allocate_snat_port(tuple, spec);
    if (!port) {
      ++stats_.nat_failures;
      out.state |= kCtInvalid;
      return out;
    }
    nat = CtNat{CtAction::Nat::kSource, spec.nat_ip, *port};
    reply = CtTuple{tuple.dst_ip, spec.nat_ip, tuple.dst_port, *port, tuple.proto};
    ++stats_.nat_allocated;
    out.rewrite = true;
    out.translation.src = true;
    out.translation.src_ip = nat.ip;
    out.translation.src_port = nat.port;
  } else if (spec.nat == CtAction::Nat::kDest) {
    const std::uint16_t port = spec.port_min != 0 ? spec.port_min : tuple.dst_port;
    nat = CtNat{CtAction::Nat::kDest, spec.nat_ip, port};
    reply = CtTuple{spec.nat_ip, tuple.src_ip, port, tuple.src_port, tuple.proto};
    if (reply_map_.contains(reply)) {
      ++stats_.nat_failures;
      out.state |= kCtInvalid;
      return out;
    }
    ++stats_.nat_allocated;
    out.rewrite = true;
    out.translation.dst = true;
    out.translation.dst_ip = nat.ip;
    out.translation.dst_port = nat.port;
  } else if (reply_map_.contains(reply)) {
    // Degenerate self-conflict (e.g. a palindromic tuple already
    // tracked the other way): refuse rather than corrupt the maps.
    ++stats_.nat_failures;
    out.state |= kCtInvalid;
    return out;
  }

  if (orig_map_.size() >= config_.max_connections && lru_tail_ != kNil) {
    kill(lru_tail_, false);
    ++stats_.evicted;
  }

  const std::uint32_t id = allocate_slot();
  Slot& slot = slots_[id];
  slot.entry = ConnEntry{};
  slot.entry.orig = tuple;
  slot.entry.reply = reply;
  slot.entry.nat = nat;
  slot.entry.last_seen = now;
  slot.entry.packets_orig = 1;
  slot.entry.expires_at = now + timeout_for(slot.entry);
  slot.live = true;
  orig_map_.emplace(tuple, id);
  reply_map_.emplace(reply, id);
  lru_push_front(id);
  file_deadline(id, slot);
  ++stats_.created;
  out.committed = true;
  return out;
}

std::size_t ConnTracker::expire(sim::SimNanos now) {
  std::size_t expired = 0;
  while (!wheel_.empty() && wheel_.begin()->first <= now) {
    const auto node = wheel_.extract(wheel_.begin());
    for (const auto& [id, generation] : node.mapped()) {
      Slot& slot = slots_[id];
      if (!slot.live || slot.generation != generation) continue;
      if (slot.entry.expires_at <= now) {
        kill(id, true);
        ++stats_.expired;
        ++expired;
      } else {
        file_deadline(id, slot);  // refreshed since filing: re-file
      }
    }
  }
  return expired;
}

std::optional<sim::SimNanos> ConnTracker::next_deadline() const {
  if (wheel_.empty()) return std::nullopt;
  return wheel_.begin()->first;
}

std::vector<ConnEntry> ConnTracker::snapshot() const {
  std::vector<ConnEntry> out;
  out.reserve(orig_map_.size());
  for (const Slot& slot : slots_) {
    if (slot.live) out.push_back(slot.entry);
  }
  return out;
}

void ConnTracker::clear() {
  slots_.clear();
  free_slots_.clear();
  orig_map_.clear();
  reply_map_.clear();
  wheel_.clear();
  lru_head_ = lru_tail_ = kNil;
  // Stats survive a clear — a datapath crash wipes state, not counters.
}

}  // namespace harmless::openflow

#include "openflow/conntrack.hpp"

#include "net/ip.hpp"
#include "net/l4.hpp"

namespace harmless::openflow {

namespace {
constexpr std::uint8_t kProtoTcp = static_cast<std::uint8_t>(net::IpProto::kTcp);
}  // namespace

std::uint64_t ConnTracker::classify_entry(const Slot& slot, bool reply_dir) const {
  std::uint64_t bits = kCtTracked;
  if (reply_dir) {
    // A valid reply-direction packet proves bidirectionality, so it is
    // already ESTABLISHED from the classifier's point of view (the
    // entry's seen_reply flips when it traverses a ct action).
    bits |= kCtReply | kCtEstablished;
  } else if (slot.entry.seen_reply) {
    bits |= kCtEstablished;
  }
  return bits;
}

std::uint64_t ConnTracker::classify(const CtTuple& tuple, std::uint8_t tcp_flags,
                                    sim::SimNanos now) {
  ++stats_.lookups;
  if (auto it = orig_map_.find(tuple); it != orig_map_.end()) {
    const Slot& slot = slots_[it->second];
    if (slot.entry.expires_at > now) {
      ++stats_.hits;
      return classify_entry(slot, false);
    }
  }
  if (auto it = reply_map_.find(tuple); it != reply_map_.end()) {
    const Slot& slot = slots_[it->second];
    if (slot.entry.expires_at > now) {
      ++stats_.hits;
      return classify_entry(slot, true);
    }
  }
  if (tuple.proto == kProtoTcp && (tcp_flags & net::kTcpSyn) == 0) {
    // Mid-stream TCP with no entry: unclassifiable, never NEW.
    ++stats_.invalid;
    return kCtInvalid;
  }
  return kCtNew;
}

sim::SimNanos ConnTracker::timeout_for(const ConnEntry& entry) const {
  if (entry.orig.proto != kProtoTcp) return config_.udp_timeout;
  // Unconfirmed (restored/demoted) entries get the transient timeout
  // even when seen_reply: real traffic must re-confirm them before the
  // full established idle budget applies.
  if (entry.closing || !entry.seen_reply || !entry.confirmed) return config_.tcp_transient_timeout;
  return config_.tcp_established_timeout;
}

std::uint32_t ConnTracker::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t id = free_slots_.back();
    free_slots_.pop_back();
    return id;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ConnTracker::lru_unlink(std::uint32_t id) {
  Slot& slot = slots_[id];
  if (slot.lru_prev != kNil) slots_[slot.lru_prev].lru_next = slot.lru_next;
  if (slot.lru_next != kNil) slots_[slot.lru_next].lru_prev = slot.lru_prev;
  if (lru_head_ == id) lru_head_ = slot.lru_next;
  if (lru_tail_ == id) lru_tail_ = slot.lru_prev;
  slot.lru_prev = slot.lru_next = kNil;
}

void ConnTracker::lru_push_front(std::uint32_t id) {
  Slot& slot = slots_[id];
  slot.lru_prev = kNil;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = id;
  lru_head_ = id;
  if (lru_tail_ == kNil) lru_tail_ = id;
}

void ConnTracker::lru_touch(std::uint32_t id) {
  if (lru_head_ == id) return;
  lru_unlink(id);
  lru_push_front(id);
}

void ConnTracker::file_deadline(std::uint32_t id, const Slot& slot) {
  const sim::SimNanos q = config_.sweep_interval > 0 ? config_.sweep_interval : 1;
  const sim::SimNanos bucket = ((slot.entry.expires_at + q - 1) / q) * q;
  wheel_[bucket].emplace_back(id, slot.generation);
}

void ConnTracker::emit_delta(CtDelta::Kind kind, const ConnEntry& entry, sim::SimNanos now) {
  if (!delta_sink_) return;
  CtDelta delta;
  delta.kind = kind;
  delta.entry = CtSnapshotEntry{entry.orig, entry.reply, entry.nat, entry.seen_reply,
                                entry.closing,
                                entry.expires_at > now ? entry.expires_at - now : 0};
  ++stats_.deltas_emitted;
  delta_sink_(delta);
}

void ConnTracker::kill(std::uint32_t id, bool /*expired*/, sim::SimNanos now) {
  Slot& slot = slots_[id];
  dirty_ = true;
  emit_delta(CtDelta::Kind::kClose, slot.entry, now);
  orig_map_.erase(slot.entry.orig);
  reply_map_.erase(slot.entry.reply);
  lru_unlink(id);
  slot.live = false;
  ++slot.generation;  // invalidates any wheel references
  free_slots_.push_back(id);
}

void ConnTracker::refresh(Slot& slot, std::uint32_t id, bool reply_dir, std::uint8_t tcp_flags,
                          sim::SimNanos now) {
  ConnEntry& entry = slot.entry;
  const bool was_reply = entry.seen_reply;
  const bool was_closing = entry.closing;
  const bool was_confirmed = entry.confirmed;
  entry.confirmed = true;  // real traffic re-confirms a restored entry
  if (reply_dir) {
    entry.seen_reply = true;
    ++entry.packets_reply;
  } else {
    ++entry.packets_orig;
  }
  if (entry.orig.proto == kProtoTcp && (tcp_flags & (net::kTcpFin | net::kTcpRst)) != 0) {
    entry.closing = true;
  }
  entry.last_seen = now;
  entry.expires_at = now + timeout_for(entry);
  lru_touch(id);
  dirty_ = true;
  ++stats_.refreshed;
  // Replicate state *advances* only — per-packet refreshes stay local,
  // so the sync stream scales with connection churn, not with traffic.
  if ((entry.seen_reply && !was_reply) || (entry.closing && !was_closing) || !was_confirmed) {
    emit_delta(CtDelta::Kind::kUpdate, entry, now);
  }
  // The wheel reference filed at creation (or at the last sweep) stays
  // put; the sweep re-files the entry when its stale bucket comes due.
}

std::optional<std::uint16_t> ConnTracker::allocate_snat_port(const CtTuple& orig,
                                                             const CtAction& spec) const {
  if (spec.port_min == 0 || spec.port_max < spec.port_min) return std::nullopt;
  const std::uint32_t range =
      static_cast<std::uint32_t>(spec.port_max - spec.port_min) + 1;
  // Both directions of the translated connection must steer to the
  // shard the *original* direction already landed on (symmetric RSS of
  // the pre-NAT tuple) — otherwise reverse traffic would need
  // cross-core state. The virtual-shard formulation (hash % shards,
  // not "this shard's index") makes the allocation independent of
  // which physical shard runs it, so a single-core run with the same
  // nat_steer_shards reproduces an N-core run's ports exactly.
  const std::uint64_t h = orig.symmetric_hash();
  const std::uint64_t want = h % steer_shards_;
  const std::uint32_t start = static_cast<std::uint32_t>((h >> 17) % range);
  for (std::uint32_t i = 0; i < range; ++i) {
    const std::uint16_t port =
        static_cast<std::uint16_t>(spec.port_min + (start + i) % range);
    const CtTuple reply{orig.dst_ip, spec.nat_ip, orig.dst_port, port, orig.proto};
    if (reply.symmetric_hash() % steer_shards_ != want) continue;
    if (reply_map_.contains(reply)) continue;  // endpoint-dependent uniqueness
    return port;
  }
  return std::nullopt;
}

CtOutcome ConnTracker::process(const CtTuple& tuple, std::uint8_t tcp_flags, sim::SimNanos now,
                               const CtAction& spec) {
  CtOutcome out;

  // Lazy expiry: an entry past its deadline is dead even if the sweep
  // has not reaped it yet — identical behavior to the classifier
  // prelude, which already treats it as missing.
  if (auto it = orig_map_.find(tuple); it != orig_map_.end()) {
    const std::uint32_t id = it->second;
    if (slots_[id].entry.expires_at <= now) {
      kill(id, true, now);
      ++stats_.expired;
    } else {
      Slot& slot = slots_[id];
      out.state = classify_entry(slot, false);
      refresh(slot, id, false, tcp_flags, now);
      const CtNat& nat = slot.entry.nat;
      if (nat.kind == CtAction::Nat::kSource) {
        out.rewrite = true;
        out.translation.src = true;
        out.translation.src_ip = nat.ip;
        out.translation.src_port = nat.port;
      } else if (nat.kind == CtAction::Nat::kDest) {
        out.rewrite = true;
        out.translation.dst = true;
        out.translation.dst_ip = nat.ip;
        out.translation.dst_port = nat.port;
      }
      return out;
    }
  }
  if (auto it = reply_map_.find(tuple); it != reply_map_.end()) {
    const std::uint32_t id = it->second;
    if (slots_[id].entry.expires_at <= now) {
      kill(id, true, now);
      ++stats_.expired;
    } else {
      Slot& slot = slots_[id];
      out.state = classify_entry(slot, true);
      refresh(slot, id, true, tcp_flags, now);
      const ConnEntry& entry = slot.entry;
      if (entry.nat.kind == CtAction::Nat::kSource) {
        // Un-SNAT: send the reply back to the original inside host.
        out.rewrite = true;
        out.translation.dst = true;
        out.translation.dst_ip = entry.orig.src_ip;
        out.translation.dst_port = entry.orig.src_port;
      } else if (entry.nat.kind == CtAction::Nat::kDest) {
        // Un-DNAT: restore the original (virtual) destination as source.
        out.rewrite = true;
        out.translation.src = true;
        out.translation.src_ip = entry.orig.dst_ip;
        out.translation.src_port = entry.orig.dst_port;
      }
      return out;
    }
  }

  // Miss: commit a new connection. A fenced shard (lease lost) must
  // not mint state — no new entries, no NAT allocations — or a
  // partitioned ex-active and a promoted standby could hand the same
  // external port to two different connections.
  if (fenced_) {
    ++stats_.fenced_rejects;
    out.state = kCtInvalid;
    return out;
  }
  if (tuple.proto == kProtoTcp && (tcp_flags & net::kTcpSyn) == 0) {
    ++stats_.invalid;
    out.state = kCtInvalid;
    return out;
  }
  out.state = kCtNew;

  CtNat nat{};
  CtTuple reply = tuple.reversed();
  if (spec.nat == CtAction::Nat::kSource) {
    const std::optional<std::uint16_t> port = allocate_snat_port(tuple, spec);
    if (!port) {
      ++stats_.nat_failures;
      out.state |= kCtInvalid;
      return out;
    }
    nat = CtNat{CtAction::Nat::kSource, spec.nat_ip, *port};
    reply = CtTuple{tuple.dst_ip, spec.nat_ip, tuple.dst_port, *port, tuple.proto};
    ++stats_.nat_allocated;
    out.rewrite = true;
    out.translation.src = true;
    out.translation.src_ip = nat.ip;
    out.translation.src_port = nat.port;
  } else if (spec.nat == CtAction::Nat::kDest) {
    const std::uint16_t port = spec.port_min != 0 ? spec.port_min : tuple.dst_port;
    nat = CtNat{CtAction::Nat::kDest, spec.nat_ip, port};
    reply = CtTuple{spec.nat_ip, tuple.src_ip, port, tuple.src_port, tuple.proto};
    if (reply_map_.contains(reply)) {
      ++stats_.nat_failures;
      out.state |= kCtInvalid;
      return out;
    }
    ++stats_.nat_allocated;
    out.rewrite = true;
    out.translation.dst = true;
    out.translation.dst_ip = nat.ip;
    out.translation.dst_port = nat.port;
  } else if (reply_map_.contains(reply)) {
    // Degenerate self-conflict (e.g. a palindromic tuple already
    // tracked the other way): refuse rather than corrupt the maps.
    ++stats_.nat_failures;
    out.state |= kCtInvalid;
    return out;
  }

  if (orig_map_.size() >= config_.max_connections && lru_tail_ != kNil) {
    kill(lru_tail_, false, now);
    ++stats_.evicted;
  }

  const std::uint32_t id = allocate_slot();
  Slot& slot = slots_[id];
  slot.entry = ConnEntry{};
  slot.entry.orig = tuple;
  slot.entry.reply = reply;
  slot.entry.nat = nat;
  slot.entry.last_seen = now;
  slot.entry.packets_orig = 1;
  slot.entry.expires_at = now + timeout_for(slot.entry);
  slot.live = true;
  orig_map_.emplace(tuple, id);
  reply_map_.emplace(reply, id);
  lru_push_front(id);
  file_deadline(id, slot);
  dirty_ = true;
  ++stats_.created;
  out.committed = true;
  emit_delta(CtDelta::Kind::kCommit, slot.entry, now);
  return out;
}

std::size_t ConnTracker::expire(sim::SimNanos now) {
  std::size_t expired = 0;
  while (!wheel_.empty() && wheel_.begin()->first <= now) {
    const auto node = wheel_.extract(wheel_.begin());
    for (const auto& [id, generation] : node.mapped()) {
      Slot& slot = slots_[id];
      if (!slot.live || slot.generation != generation) continue;
      if (slot.entry.expires_at <= now) {
        kill(id, true, now);
        ++stats_.expired;
        ++expired;
      } else {
        file_deadline(id, slot);  // refreshed since filing: re-file
      }
    }
  }
  return expired;
}

std::optional<sim::SimNanos> ConnTracker::next_deadline() const {
  if (wheel_.empty()) return std::nullopt;
  return wheel_.begin()->first;
}

std::vector<ConnEntry> ConnTracker::snapshot() const {
  std::vector<ConnEntry> out;
  out.reserve(orig_map_.size());
  for (const Slot& slot : slots_) {
    if (slot.live) out.push_back(slot.entry);
  }
  return out;
}

void ConnTracker::clear() {
  slots_.clear();
  free_slots_.clear();
  orig_map_.clear();
  reply_map_.clear();
  wheel_.clear();
  lru_head_ = lru_tail_ = kNil;
  dirty_ = true;  // a wiped table differs from its last checkpoint
  // Stats survive a clear — a datapath crash wipes state, not counters.
  // The delta sink and fencing latch survive too: wiring and role,
  // not connection state.
}

// --- checkpoint/restore ---------------------------------------------

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4354534e;  // "CTSN"
constexpr std::uint16_t kSnapshotVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (b * 8)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(v >> (b * 8)));
}
void put_tuple(std::vector<std::uint8_t>& out, const CtTuple& t) {
  put_u32(out, t.src_ip);
  put_u32(out, t.dst_ip);
  put_u16(out, t.src_port);
  put_u16(out, t.dst_port);
  out.push_back(t.proto);
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t at = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (at + 1 > bytes.size()) return ok = false, 0;
    return bytes[at++];
  }
  std::uint16_t u16() {
    std::uint16_t v = u8();
    return static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(u8()) << (b * 8);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(u8()) << (b * 8);
    return v;
  }
  CtTuple tuple() {
    CtTuple t;
    t.src_ip = u32();
    t.dst_ip = u32();
    t.src_port = u16();
    t.dst_port = u16();
    t.proto = u8();
    return t;
  }
};

}  // namespace

std::vector<std::uint8_t> CtSnapshot::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(18 + entries.size() * 42);
  put_u32(out, kSnapshotMagic);
  put_u16(out, kSnapshotVersion);
  put_u64(out, static_cast<std::uint64_t>(taken_at));
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const CtSnapshotEntry& e : entries) {
    put_tuple(out, e.orig);
    put_tuple(out, e.reply);
    out.push_back(static_cast<std::uint8_t>(e.nat.kind));
    put_u32(out, e.nat.ip);
    put_u16(out, e.nat.port);
    out.push_back(static_cast<std::uint8_t>((e.seen_reply ? 1 : 0) | (e.closing ? 2 : 0)));
    put_u64(out, static_cast<std::uint64_t>(e.remaining_ns));
  }
  return out;
}

std::optional<CtSnapshot> CtSnapshot::parse(const std::vector<std::uint8_t>& bytes) {
  Reader in{bytes};
  if (in.u32() != kSnapshotMagic) return std::nullopt;
  if (in.u16() != kSnapshotVersion) return std::nullopt;
  CtSnapshot snap;
  snap.taken_at = static_cast<sim::SimNanos>(in.u64());
  const std::uint32_t count = in.u32();
  if (!in.ok) return std::nullopt;
  snap.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CtSnapshotEntry e;
    e.orig = in.tuple();
    e.reply = in.tuple();
    e.nat.kind = static_cast<CtAction::Nat>(in.u8());
    e.nat.ip = in.u32();
    e.nat.port = in.u16();
    const std::uint8_t flags = in.u8();
    e.seen_reply = (flags & 1) != 0;
    e.closing = (flags & 2) != 0;
    e.remaining_ns = static_cast<sim::SimNanos>(in.u64());
    if (!in.ok) return std::nullopt;
    snap.entries.push_back(e);
  }
  if (in.at != bytes.size()) return std::nullopt;  // trailing garbage
  return snap;
}

CtSnapshot ConnTracker::checkpoint(sim::SimNanos now) {
  CtSnapshot snap;
  snap.taken_at = now;
  snap.entries.reserve(orig_map_.size());
  for (const Slot& slot : slots_) {
    if (!slot.live) continue;
    const ConnEntry& e = slot.entry;
    if (e.expires_at <= now) continue;  // already dead, just unswept
    snap.entries.push_back(CtSnapshotEntry{e.orig, e.reply, e.nat, e.seen_reply, e.closing,
                                           e.expires_at - now});
  }
  ++stats_.checkpoints;
  return snap;
}

CtRestoreResult ConnTracker::restore(const CtSnapshot& snapshot, sim::SimNanos now) {
  CtRestoreResult result;
  for (const CtSnapshotEntry& e : snapshot.entries) {
    // Mid-handshake TCP (never saw a reply): the peer will retransmit
    // its SYN and re-commit cleanly; restoring a half-open entry only
    // risks resurrecting a connection that never completed.
    const bool half_open = e.orig.proto == kProtoTcp && !e.seen_reply;
    const bool collides = orig_map_.contains(e.orig) || reply_map_.contains(e.reply) ||
                          reply_map_.contains(e.orig) || orig_map_.contains(e.reply);
    if (half_open || e.remaining_ns <= 0 || collides ||
        orig_map_.size() >= config_.max_connections) {
      ++result.dropped;
      ++stats_.restore_dropped;
      continue;
    }
    const std::uint32_t id = allocate_slot();
    Slot& slot = slots_[id];
    slot.entry = ConnEntry{};
    slot.entry.orig = e.orig;
    slot.entry.reply = e.reply;
    slot.entry.nat = e.nat;
    slot.entry.seen_reply = e.seen_reply;
    slot.entry.closing = e.closing;
    slot.entry.confirmed = false;  // demoted until traffic re-confirms
    slot.entry.last_seen = now;
    const sim::SimNanos cap = timeout_for(slot.entry);  // transient for TCP
    slot.entry.expires_at = now + (e.remaining_ns < cap ? e.remaining_ns : cap);
    slot.live = true;
    orig_map_.emplace(e.orig, id);
    reply_map_.emplace(e.reply, id);
    lru_push_front(id);
    file_deadline(id, slot);
    dirty_ = true;
    ++result.restored;
    ++stats_.restored;
  }
  return result;
}

// --- active→standby replication -------------------------------------

void ConnTracker::apply_delta(const CtDelta& delta, sim::SimNanos now) {
  ++stats_.deltas_applied;
  const CtSnapshotEntry& e = delta.entry;
  const auto it = orig_map_.find(e.orig);

  if (delta.kind == CtDelta::Kind::kClose) {
    if (it != orig_map_.end() && slots_[it->second].entry.reply == e.reply) {
      kill(it->second, false, now);
    }
    return;
  }

  if (it != orig_map_.end()) {
    // In-place advance of a connection we already mirror. A reply-tuple
    // mismatch means a different connection owns the key: drop rather
    // than corrupt the reverse map.
    Slot& slot = slots_[it->second];
    if (!(slot.entry.reply == e.reply)) return;
    slot.entry.seen_reply = e.seen_reply;
    slot.entry.closing = e.closing;
    slot.entry.nat = e.nat;
    slot.entry.confirmed = true;
    slot.entry.last_seen = now;
    slot.entry.expires_at = now + e.remaining_ns;
    lru_touch(it->second);
    file_deadline(it->second, slot);
    dirty_ = true;
    return;
  }

  // New to this replica (a commit, or an update whose commit was lost):
  // insert, unless it collides with live local state.
  if (e.remaining_ns <= 0 || reply_map_.contains(e.reply) || orig_map_.contains(e.reply) ||
      reply_map_.contains(e.orig)) {
    return;
  }
  if (orig_map_.size() >= config_.max_connections && lru_tail_ != kNil) {
    kill(lru_tail_, false, now);
    ++stats_.evicted;
  }
  const std::uint32_t id = allocate_slot();
  Slot& slot = slots_[id];
  slot.entry = ConnEntry{};
  slot.entry.orig = e.orig;
  slot.entry.reply = e.reply;
  slot.entry.nat = e.nat;
  slot.entry.seen_reply = e.seen_reply;
  slot.entry.closing = e.closing;
  slot.entry.confirmed = true;  // the live stream itself vouches for it
  slot.entry.last_seen = now;
  slot.entry.expires_at = now + e.remaining_ns;
  slot.live = true;
  orig_map_.emplace(e.orig, id);
  reply_map_.emplace(e.reply, id);
  lru_push_front(id);
  file_deadline(id, slot);
  dirty_ = true;
}

std::size_t ConnTracker::demote_all(sim::SimNanos now) {
  std::size_t demoted = 0;
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (!slot.live) continue;
    slot.entry.confirmed = false;
    const sim::SimNanos cap = now + timeout_for(slot.entry);
    if (slot.entry.expires_at > cap) {
      slot.entry.expires_at = cap;
      file_deadline(id, slot);
    }
    ++demoted;
  }
  if (demoted != 0) dirty_ = true;
  return demoted;
}

std::size_t ConnTracker::resync(const CtSnapshot& snapshot, sim::SimNanos now) {
  std::size_t upserts = 0;
  std::unordered_map<std::uint32_t, bool> covered;  // slot id -> authoritative
  covered.reserve(snapshot.entries.size());

  for (const CtSnapshotEntry& e : snapshot.entries) {
    if (e.remaining_ns <= 0) continue;
    // The snapshot is authoritative: evict any local connection that
    // claims either of this entry's tuples but is not this connection.
    // (kill() may emit a kClose delta; the HA layer's sink is
    // role/fence-gated, so a resyncing box never echoes these out.)
    for (const CtTuple* t : {&e.orig, &e.reply}) {
      if (auto it = orig_map_.find(*t); it != orig_map_.end()) {
        const Slot& s = slots_[it->second];
        if (!(s.entry.orig == e.orig && s.entry.reply == e.reply)) kill(it->second, false, now);
      }
      if (auto it = reply_map_.find(*t); it != reply_map_.end()) {
        const Slot& s = slots_[it->second];
        if (!(s.entry.orig == e.orig && s.entry.reply == e.reply)) kill(it->second, false, now);
      }
    }

    if (auto it = orig_map_.find(e.orig); it != orig_map_.end()) {
      // Same connection survives locally: take the active's view.
      const std::uint32_t id = it->second;
      Slot& slot = slots_[id];
      slot.entry.nat = e.nat;
      slot.entry.seen_reply = e.seen_reply;
      slot.entry.closing = e.closing;
      slot.entry.confirmed = true;
      slot.entry.last_seen = now;
      slot.entry.expires_at = now + e.remaining_ns;
      lru_touch(id);
      file_deadline(id, slot);
      covered.emplace(id, true);
      ++upserts;
      continue;
    }
    if (orig_map_.size() >= config_.max_connections && lru_tail_ != kNil) {
      kill(lru_tail_, false, now);
      ++stats_.evicted;
    }
    const std::uint32_t id = allocate_slot();
    Slot& slot = slots_[id];
    slot.entry = ConnEntry{};
    slot.entry.orig = e.orig;
    slot.entry.reply = e.reply;
    slot.entry.nat = e.nat;
    slot.entry.seen_reply = e.seen_reply;
    slot.entry.closing = e.closing;
    slot.entry.confirmed = true;  // streamed by the live active
    slot.entry.last_seen = now;
    slot.entry.expires_at = now + e.remaining_ns;
    slot.live = true;
    orig_map_.emplace(e.orig, id);
    reply_map_.emplace(e.reply, id);
    lru_push_front(id);
    file_deadline(id, slot);
    covered.emplace(id, true);
    ++upserts;
  }

  // Anything the snapshot did not vouch for is suspect ex-active state:
  // demote it so it either re-confirms through traffic or ages out on
  // the transient timeout.
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (!slot.live || covered.contains(id)) continue;
    slot.entry.confirmed = false;
    const sim::SimNanos cap = now + timeout_for(slot.entry);
    if (slot.entry.expires_at > cap) {
      slot.entry.expires_at = cap;
      file_deadline(id, slot);
    }
  }
  dirty_ = true;
  return upserts;
}

}  // namespace harmless::openflow

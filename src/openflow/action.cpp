#include "openflow/action.hpp"

#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "net/l4.hpp"
#include "util/strings.hpp"

namespace harmless::openflow {

namespace {

/// Offset of the IPv4 header in the frame, accounting for one tag.
std::size_t l3_offset(const net::Bytes& frame) {
  return net::vlan_peek(frame) ? net::kEthHeaderSize + 4 : net::kEthHeaderSize;
}

/// Recompute the IPv4 header checksum in place.
void refresh_ip_checksum(net::Bytes& frame, std::size_t l3) {
  std::span<std::uint8_t> bytes(frame.data(), frame.size());
  net::wr16(bytes, l3 + 10, 0);
  const std::uint16_t checksum =
      net::internet_checksum(net::BytesView(frame).subspan(l3, net::kIpv4HeaderSize));
  net::wr16(bytes, l3 + 10, checksum);
}

/// Recompute the TCP/UDP checksum after an address/port rewrite.
void refresh_l4_checksum(net::Bytes& frame, std::size_t l3) {
  const net::BytesView view(frame);
  const auto proto = static_cast<net::IpProto>(frame[l3 + 9]);
  const std::uint16_t total_length = net::rd16(view, l3 + 2);
  const std::size_t l4 = l3 + net::kIpv4HeaderSize;
  if (total_length < net::kIpv4HeaderSize) return;
  const std::size_t l4_size =
      std::min<std::size_t>(total_length - net::kIpv4HeaderSize, frame.size() - l4);
  std::span<std::uint8_t> bytes(frame.data(), frame.size());
  const net::Ipv4Addr src(net::rd32(view, l3 + 12));
  const net::Ipv4Addr dst(net::rd32(view, l3 + 16));

  if (proto == net::IpProto::kTcp && l4_size >= net::kTcpHeaderSize) {
    net::wr16(bytes, l4 + 16, 0);
    const std::uint16_t checksum =
        net::l4_checksum(src, dst, proto, view.subspan(l4, l4_size));
    net::wr16(bytes, l4 + 16, checksum);
  } else if (proto == net::IpProto::kUdp && l4_size >= net::kUdpHeaderSize) {
    net::wr16(bytes, l4 + 6, 0);
    std::uint16_t checksum = net::l4_checksum(src, dst, proto, view.subspan(l4, l4_size));
    if (checksum == 0) checksum = 0xffff;
    net::wr16(bytes, l4 + 6, checksum);
  }
}

bool set_field(const SetFieldAction& action, net::Packet& packet) {
  net::Bytes& frame = packet.frame();
  if (frame.size() < net::kEthHeaderSize) return false;
  std::span<std::uint8_t> bytes(frame.data(), frame.size());

  switch (action.field) {
    case Field::kEthDst: {
      const auto mac = net::MacAddr::from_u64(action.value).octets();
      std::copy(mac.begin(), mac.end(), frame.begin());
      return true;
    }
    case Field::kEthSrc: {
      const auto mac = net::MacAddr::from_u64(action.value).octets();
      std::copy(mac.begin(), mac.end(), frame.begin() + 6);
      return true;
    }
    case Field::kVlanVid:
      return net::vlan_set_vid(frame, static_cast<net::VlanId>(action.value & 0x0fff));
    case Field::kVlanPcp: {
      if (!net::vlan_peek(frame)) return false;
      auto tag = net::VlanTag::from_tci(net::rd16(net::BytesView(frame), 14));
      tag.pcp = static_cast<std::uint8_t>(action.value & 0x7);
      net::wr16(bytes, 14, tag.tci());
      return true;
    }
    default: break;
  }

  // IP/L4 rewrites need an IPv4 packet.
  const std::size_t l3 = l3_offset(frame);
  if (frame.size() < l3 + net::kIpv4HeaderSize) return false;
  if ((frame[l3] >> 4) != 4) return false;

  switch (action.field) {
    case Field::kIpSrc:
      net::wr32(bytes, l3 + 12, static_cast<std::uint32_t>(action.value));
      break;
    case Field::kIpDst:
      net::wr32(bytes, l3 + 16, static_cast<std::uint32_t>(action.value));
      break;
    case Field::kL4Src:
    case Field::kL4Dst: {
      const auto proto = static_cast<net::IpProto>(frame[l3 + 9]);
      if (proto != net::IpProto::kTcp && proto != net::IpProto::kUdp) return false;
      const std::size_t l4 = l3 + net::kIpv4HeaderSize;
      if (frame.size() < l4 + 4) return false;
      const std::size_t offset = (action.field == Field::kL4Src) ? l4 : l4 + 2;
      net::wr16(bytes, offset, static_cast<std::uint16_t>(action.value));
      break;
    }
    default:
      return false;
  }
  refresh_ip_checksum(frame, l3);
  refresh_l4_checksum(frame, l3);
  return true;
}

}  // namespace

bool apply_header_action(const Action& action, net::Packet& packet) {
  if (std::holds_alternative<PushVlanAction>(action)) {
    net::vlan_push(packet.frame(), net::VlanTag{0, 0, false});
    return true;
  }
  if (std::holds_alternative<PopVlanAction>(action)) {
    return net::vlan_pop(packet.frame()).has_value();
  }
  if (const auto* set = std::get_if<SetFieldAction>(&action)) {
    return set_field(*set, packet);
  }
  return true;  // Output/Group/Ct handled by the pipeline
}

std::string to_string(const Action& action) {
  if (const auto* out = std::get_if<OutputAction>(&action)) {
    switch (out->port) {
      case kPortController: return "output:CONTROLLER";
      case kPortFlood: return "output:FLOOD";
      case kPortAll: return "output:ALL";
      case kPortInPort: return "output:IN_PORT";
      default: return "output:" + std::to_string(out->port);
    }
  }
  if (const auto* grp = std::get_if<GroupAction>(&action))
    return "group:" + std::to_string(grp->group_id);
  if (std::holds_alternative<PushVlanAction>(action)) return "push_vlan";
  if (std::holds_alternative<PopVlanAction>(action)) return "pop_vlan";
  if (const auto* ct = std::get_if<CtAction>(&action)) {
    switch (ct->nat) {
      case CtAction::Nat::kSource:
        return util::format("ct(commit,snat=%s:%u-%u)",
                            net::Ipv4Addr(ct->nat_ip).to_string().c_str(), ct->port_min,
                            ct->port_max);
      case CtAction::Nat::kDest:
        if (ct->port_min != 0)
          return util::format("ct(commit,dnat=%s:%u)",
                              net::Ipv4Addr(ct->nat_ip).to_string().c_str(), ct->port_min);
        return util::format("ct(commit,dnat=%s)", net::Ipv4Addr(ct->nat_ip).to_string().c_str());
      case CtAction::Nat::kNone: break;
    }
    return "ct(commit)";
  }
  const auto& set = std::get<SetFieldAction>(action);
  switch (set.field) {
    case Field::kEthDst:
    case Field::kEthSrc:
      return util::format("set_%s:%s", field_name(set.field),
                          net::MacAddr::from_u64(set.value).to_string().c_str());
    case Field::kIpSrc:
    case Field::kIpDst:
      return util::format(
          "set_%s:%s", field_name(set.field),
          net::Ipv4Addr(static_cast<std::uint32_t>(set.value)).to_string().c_str());
    case Field::kVlanVid:
      return util::format("set_vlan_vid:%llu",
                          static_cast<unsigned long long>(set.value & 0x0fff));
    default:
      return util::format("set_%s:%llu", field_name(set.field),
                          static_cast<unsigned long long>(set.value));
  }
}

std::string to_string(const ActionList& actions) {
  if (actions.empty()) return "drop";
  std::string out;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) out += ',';
    out += to_string(actions[i]);
  }
  return out;
}

}  // namespace harmless::openflow

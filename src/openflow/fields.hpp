// openflow/fields.hpp — OXM-style match fields and the per-packet
// field view.
//
// A FieldView is the flattened, numeric projection of a parsed packet
// that lookups consume: one u64 slot per field plus a presence bitmap.
// Building it once per pipeline entry (not per table) is the first of
// the ESwitch-style specializations the paper's software switch [9]
// relies on.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/parse.hpp"

namespace harmless::openflow {

enum class Field : std::uint8_t {
  kInPort = 0,
  kEthDst,
  kEthSrc,
  kEthType,
  kVlanVid,  // OF1.3 semantics: OFPVID_PRESENT(0x1000)|vid when tagged, 0 when untagged
  kVlanPcp,
  kIpProto,
  kIpSrc,
  kIpDst,
  kIpDscp,
  kL4Src,
  kL4Dst,
  kArpOp,
  kIcmpType,
};

constexpr std::size_t kFieldCount = 14;

/// OFPVID_PRESENT: set in kVlanVid for any tagged frame.
constexpr std::uint64_t kVlanPresent = 0x1000;

[[nodiscard]] constexpr std::uint32_t field_bit(Field field) {
  return 1u << static_cast<unsigned>(field);
}

/// Field width in bits (used to derive "exact match" masks).
[[nodiscard]] std::uint64_t field_all_ones(Field field);
[[nodiscard]] const char* field_name(Field field);

struct FieldView {
  std::array<std::uint64_t, kFieldCount> values{};
  std::uint32_t present = 0;

  [[nodiscard]] bool has(Field field) const { return (present & field_bit(field)) != 0; }
  [[nodiscard]] std::uint64_t get(Field field) const {
    return values[static_cast<std::size_t>(field)];
  }
  void set(Field field, std::uint64_t value) {
    values[static_cast<std::size_t>(field)] = value;
    present |= field_bit(field);
  }
};

/// Project a parsed packet (plus its ingress port) into a FieldView.
[[nodiscard]] FieldView build_field_view(const net::ParsedPacket& parsed, std::uint32_t in_port);

}  // namespace harmless::openflow

// openflow/fields.hpp — OXM-style match fields and the per-packet
// field view.
//
// A FieldView is the flattened, numeric projection of a parsed packet
// that lookups consume: one u64 slot per field plus a presence bitmap.
// Building it once per pipeline entry (not per table) is the first of
// the ESwitch-style specializations the paper's software switch [9]
// relies on.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/parse.hpp"
#include "util/hash.hpp"

namespace harmless::openflow {

enum class Field : std::uint8_t {
  kInPort = 0,
  kEthDst,
  kEthSrc,
  kEthType,
  kVlanVid,  // OF1.3 semantics: OFPVID_PRESENT(0x1000)|vid when tagged, 0 when untagged
  kVlanPcp,
  kIpProto,
  kIpSrc,
  kIpDst,
  kIpDscp,
  kL4Src,
  kL4Dst,
  kArpOp,
  kIcmpType,
  kTcpFlags,
  kCtState,  // conntrack classification bits; present only when ct is enabled
};

constexpr std::size_t kFieldCount = 16;

/// OFPVID_PRESENT: set in kVlanVid for any tagged frame.
constexpr std::uint64_t kVlanPresent = 0x1000;

/// kCtState bit values (OVS ct_state naming). The conntrack prelude
/// classifies every IPv4 TCP/UDP packet *before* any cache probe and
/// stamps these into the FieldView, so both flow-cache tiers key on
/// the connection state by construction — a NEW→ESTABLISHED transition
/// can never be masked by a stale cached decision.
///   kCtNew:         no entry exists; a `ct` commit would create one.
///   kCtTracked:     an entry exists for the tuple (either direction).
///   kCtEstablished: entry exists and a reply-direction packet was seen.
///   kCtReply:       this packet travels in the entry's reply direction.
///   kCtRelated:     reserved for ALG/related-flow support (never set yet).
///   kCtInvalid:     unclassifiable (e.g. mid-stream TCP with no entry).
constexpr std::uint64_t kCtNew = 0x01;
constexpr std::uint64_t kCtTracked = 0x02;
constexpr std::uint64_t kCtEstablished = 0x04;
constexpr std::uint64_t kCtReply = 0x08;
constexpr std::uint64_t kCtRelated = 0x10;
constexpr std::uint64_t kCtInvalid = 0x20;
constexpr std::uint64_t kCtStateMask = 0x3f;

[[nodiscard]] constexpr std::uint32_t field_bit(Field field) {
  return 1u << static_cast<unsigned>(field);
}

/// Field width in bits (used to derive "exact match" masks).
[[nodiscard]] std::uint64_t field_all_ones(Field field);
[[nodiscard]] const char* field_name(Field field);

/// The shared project mix (util/hash.hpp), under its historical local
/// names: the specialized matcher's shape keys, the flow cache's
/// microflow keys / subtable probes, and RSS ingress steering all key
/// packed values through the same function, so the paths cannot drift.
constexpr std::uint64_t kFieldHashSeed = util::kHashSeed;
[[nodiscard]] constexpr std::uint64_t hash_u64s(std::uint64_t seed, std::uint64_t value) {
  return util::hash_u64(seed, value);
}

/// Accumulates which (field, mask bits) a slow-path traversal actually
/// consulted — the unwildcarding record a learned megaflow cache entry
/// is built from (see openflow/flow_cache.hpp). Once an action rewrites
/// a field, its value no longer depends on the original packet, so
/// later examinations of it are not recorded.
struct FieldUse {
  std::array<std::uint64_t, kFieldCount> masks{};
  std::uint32_t examined = 0;     // fields consulted (value or presence)
  std::uint32_t overwritten = 0;  // fields rewritten by an action so far

  void note(Field field, std::uint64_t mask) {
    const std::uint32_t bit = field_bit(field);
    if ((overwritten & bit) != 0) return;
    examined |= bit;
    masks[static_cast<std::size_t>(field)] |= mask;
  }
  void mark_overwritten(Field field) { overwritten |= field_bit(field); }
};

struct FieldView {
  std::array<std::uint64_t, kFieldCount> values{};
  std::uint32_t present = 0;
  /// When non-null (only during a learning slow-path traversal), every
  /// consultation of the view is recorded here. Matchers that bypass
  /// has()/get() for speed call note() with their precise masks.
  FieldUse* use = nullptr;

  void note(Field field, std::uint64_t mask) const {
    if (use != nullptr) use->note(field, mask);
  }
  [[nodiscard]] bool has(Field field) const {
    note(field, 0);  // presence alone can decide a lookup
    return (present & field_bit(field)) != 0;
  }
  [[nodiscard]] std::uint64_t get(Field field) const {
    note(field, field_all_ones(field));
    return values[static_cast<std::size_t>(field)];
  }
  void set(Field field, std::uint64_t value) {
    values[static_cast<std::size_t>(field)] = value;
    present |= field_bit(field);
  }
};

/// Project a parsed packet (plus its ingress port) into a FieldView.
[[nodiscard]] FieldView build_field_view(const net::ParsedPacket& parsed, std::uint32_t in_port);

/// The interned once-per-hop projection: parse `packet` (or reuse its
/// cached parse), build the FieldView once (or copy it out of the
/// intern's projection slot), then patch kInPort for this lookup. The
/// returned view is an independent by-value copy with `use` unset, so
/// callers record learning exactly as with build_field_view. Header
/// mutation invalidates the whole intern via Packet::frame().
[[nodiscard]] FieldView cached_field_view(net::Packet& packet, std::uint32_t in_port);

/// As cached_field_view, but writes into caller-owned storage — the
/// burst path projects straight into its per-burst view array instead
/// of copying a 160-byte return value twice.
void cached_field_view_into(net::Packet& packet, std::uint32_t in_port, FieldView* out);

}  // namespace harmless::openflow

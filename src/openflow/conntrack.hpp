// openflow/conntrack.hpp — the stateful connection-tracking tier.
//
// One ConnTracker is one shard of the per-5-tuple connection table,
// sharded per worker core exactly like the flow-cache shards
// (Pipeline::cache(core) — see Pipeline::conntrack(core)). A shard is
// only ever touched by its own core, so there is no locking anywhere:
// RssPolicy::kSymmetric steers both directions of a connection to the
// same core by hashing the *sorted* endpoint pair
// (util::symmetric_flow_hash), and SNAT port allocation picks external
// ports whose translated reply tuple hashes back to the committing
// shard, so even address-translated reverse traffic stays shard-local.
//
// Semantics are netfilter-ish, simplified for a simulator:
//   * The pipeline classifies every IPv4 TCP/UDP packet read-only
//     *before* any cache probe (the "prelude") and stamps the result
//     into Field::kCtState — see fields.hpp for the bit definitions.
//     Because both flow-cache tiers key on every present field, cached
//     decisions can never mask a state transition.
//   * State only advances when a packet traverses a `ct` action
//     (CtAction): commit creates the entry, later traversals refresh
//     it, a reply-direction packet flips it to ESTABLISHED, TCP
//     FIN/RST demote it to a short transient timeout, and idle entries
//     expire off a coarse timer wheel swept by calendar-engine events.
//   * Capacity is bounded per shard; commits into a full table evict
//     the least-recently-seen connection (LRU).
//
// NAT lives here too: the first commit through a translating CtAction
// records the mapping (SNAT allocates an external port, DNAT stores
// the target), and every subsequent packet of the connection — either
// direction — gets the *stored* mapping applied. That is what gives
// the Maglev LB connection affinity across backend changes, and what
// makes megaflow replay deterministic per connection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "openflow/action.hpp"
#include "sim/time.hpp"
#include "util/hash.hpp"

namespace harmless::openflow {

/// A directional 5-tuple (seq-less view of a TCP/UDP flow).
struct CtTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  [[nodiscard]] CtTuple reversed() const {
    return CtTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }
  [[nodiscard]] std::uint64_t symmetric_hash() const {
    return util::symmetric_flow_hash(src_ip, src_port, dst_ip, dst_port, proto);
  }
  /// Directional hash key (order-sensitive, unlike symmetric_hash).
  [[nodiscard]] std::uint64_t key_hash() const {
    std::uint64_t h = util::hash_u64(util::kHashSeed, util::flow_endpoint(src_ip, src_port));
    h = util::hash_u64(h, util::flow_endpoint(dst_ip, dst_port));
    return util::hash_u64(h, proto);
  }
  friend bool operator==(const CtTuple&, const CtTuple&) = default;
};

struct CtTupleHash {
  std::size_t operator()(const CtTuple& t) const { return static_cast<std::size_t>(t.key_hash()); }
};

/// Per-shard tunables (EXPERIMENTS.md "Conntrack knobs").
struct CtConfig {
  std::size_t max_connections = 65536;  // per shard; LRU reclaim beyond this
  sim::SimNanos tcp_established_timeout = 30'000'000'000;  // idle, after a reply was seen
  sim::SimNanos tcp_transient_timeout = 2'000'000'000;     // pre-reply / post-FIN/RST
  sim::SimNanos udp_timeout = 5'000'000'000;               // UDP idle expiry
  sim::SimNanos sweep_interval = 100'000'000;              // expiry-sweep cadence
  /// Shard count the SNAT allocator steers reply tuples against.
  /// 0 = the datapath's actual shard count. Overriding it lets a
  /// single-core run emulate an N-shard allocation exactly — the
  /// equivalence property tests pin it across differential runs.
  std::size_t nat_steer_shards = 0;
};

/// The stored NAT mapping of one connection.
struct CtNat {
  CtAction::Nat kind = CtAction::Nat::kNone;
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
};

/// Field rewrites `ct` asks the pipeline to apply to the current packet.
struct CtRewrite {
  bool src = false;  // rewrite source ip:port to (src_ip, src_port)
  bool dst = false;  // rewrite destination ip:port to (dst_ip, dst_port)
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

/// One tracked connection.
struct ConnEntry {
  CtTuple orig;   // as first committed (pre-NAT, original direction)
  CtTuple reply;  // expected reply tuple (post-NAT, reversed)
  CtNat nat;
  bool seen_reply = false;
  bool closing = false;  // TCP FIN/RST observed: transient timeout
  /// False only for entries that came in via restore() or were demoted
  /// at takeover: they classify exactly like confirmed entries (so
  /// surviving flows keep their ESTABLISHED fast path) but idle out on
  /// the *transient* timeout until real traffic re-traverses `ct` —
  /// a stale snapshot can never keep a dead flow alive as ESTABLISHED.
  bool confirmed = true;
  sim::SimNanos last_seen = 0;
  sim::SimNanos expires_at = 0;
  std::uint64_t packets_orig = 0;
  std::uint64_t packets_reply = 0;
};

/// One connection as carried by a checkpoint or a replication delta:
/// everything needed to rebuild the entry except its packet counters
/// and absolute deadlines (remaining_ns is deadline-relative so the
/// restore side can re-arm against its own clock).
struct CtSnapshotEntry {
  CtTuple orig;
  CtTuple reply;
  CtNat nat;
  bool seen_reply = false;
  bool closing = false;
  sim::SimNanos remaining_ns = 0;  // expires_at - snapshot time
};

/// A compact point-in-time image of one shard's connection table.
struct CtSnapshot {
  sim::SimNanos taken_at = 0;
  std::vector<CtSnapshotEntry> entries;

  /// Wire form: little-endian packed POD, 42 bytes per entry plus a
  /// fixed header with magic/version/count (so a truncated or foreign
  /// blob parses to nullopt instead of garbage connections).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<CtSnapshot> parse(const std::vector<std::uint8_t>& bytes);

  /// Exact serialized size without materializing the bytes — the
  /// checkpoint/replication byte accounting bills this.
  [[nodiscard]] std::size_t wire_bytes() const { return 18 + entries.size() * 42; }
};

/// One incremental replication event: a new connection (kCommit), a
/// state advance — reply seen, FIN/RST observed (kUpdate), or a
/// removal — expiry, eviction, explicit kill (kClose).
struct CtDelta {
  enum class Kind : std::uint8_t { kCommit = 0, kUpdate = 1, kClose = 2 };
  Kind kind = Kind::kCommit;
  CtSnapshotEntry entry;
  /// Fencing epoch of the publisher at emission time. The tracker is
  /// epoch-ignorant (always 0 here); the HA layer stamps it in the
  /// delta sink and rejects stale-epoch records on receipt, so a
  /// fenced ex-active's in-flight deltas die by epoch, not wall-clock.
  std::uint64_t epoch = 0;
};

using CtDeltaSink = std::function<void(const CtDelta&)>;

/// What restore() did with a snapshot's entries.
struct CtRestoreResult {
  std::size_t restored = 0;
  std::size_t dropped = 0;  // mid-handshake, expired, collisions, capacity
};

/// Shard-summable counters (Counters/CoreStats surface them).
struct CtStats {
  std::uint64_t lookups = 0;    // prelude classifications
  std::uint64_t hits = 0;       // classifications that found an entry
  std::uint64_t created = 0;    // connections committed
  std::uint64_t refreshed = 0;  // ct traversals on existing entries
  std::uint64_t expired = 0;    // idle-timeout kills (sweep or lazy)
  std::uint64_t evicted = 0;    // LRU reclaims at capacity
  std::uint64_t invalid = 0;    // unclassifiable packets seen
  std::uint64_t nat_allocated = 0;
  std::uint64_t nat_failures = 0;  // allocation/collision failures
  // --- stateful-HA counters (checkpoint/restore + replication) ---
  std::uint64_t checkpoints = 0;      // snapshots taken
  std::uint64_t restored = 0;         // entries accepted by restore()
  std::uint64_t restore_dropped = 0;  // entries restore() refused
  std::uint64_t deltas_emitted = 0;   // replication events published
  std::uint64_t deltas_applied = 0;   // replication events consumed
  std::uint64_t fenced_rejects = 0;   // new commits refused while fenced
};

/// What one `ct` action traversal did (see ConnTracker::process).
struct CtOutcome {
  std::uint64_t state = 0;   // kCt* bits, as the prelude would classify
  bool committed = false;    // a new entry was created
  bool rewrite = false;      // `translation` must be applied to the packet
  CtRewrite translation{};
};

/// One conntrack shard. Not thread-safe by design — ownership is
/// per-core, like FlowCache.
class ConnTracker {
 public:
  ConnTracker(const CtConfig& config, std::size_t shard_count)
      : config_(config),
        steer_shards_(config.nat_steer_shards != 0 ? config.nat_steer_shards
                                                   : (shard_count != 0 ? shard_count : 1)) {}

  /// Read-only classification for the pipeline prelude: the kCt* bits
  /// Field::kCtState gets for a packet with this tuple right now.
  /// Counts lookups/hits/invalid; never mutates connection state.
  std::uint64_t classify(const CtTuple& tuple, std::uint8_t tcp_flags, sim::SimNanos now);

  /// Execute one `ct` action traversal: create or refresh the entry,
  /// advance TCP state off `tcp_flags`, resolve the NAT translation to
  /// apply to this packet's direction. `spec` carries the action's NAT
  /// request; it only matters at first commit (the stored mapping wins
  /// afterwards).
  CtOutcome process(const CtTuple& tuple, std::uint8_t tcp_flags, sim::SimNanos now,
                    const CtAction& spec);

  /// Kill every connection idle past its deadline. Returns the number
  /// expired. Lazily revalidates wheel buckets (refreshes do not
  /// re-file entries eagerly).
  std::size_t expire(sim::SimNanos now);

  /// Earliest wheel deadline, if any connection is live (may be stale
  /// early — a sweep at that time is then simply a no-op).
  [[nodiscard]] std::optional<sim::SimNanos> next_deadline() const;

  [[nodiscard]] std::size_t size() const { return orig_map_.size(); }
  [[nodiscard]] const CtStats& stats() const { return stats_; }
  [[nodiscard]] const CtConfig& config() const { return config_; }

  /// Stable per-connection snapshot for tests: every live entry,
  /// unordered (callers sort by tuple).
  [[nodiscard]] std::vector<ConnEntry> snapshot() const;

  void clear();

  // --- stateful HA: checkpoint/restore ---

  /// Serialize every still-live connection into a restorable image
  /// (entries already past their deadline are left out). Counts
  /// stats().checkpoints.
  CtSnapshot checkpoint(sim::SimNanos now);

  /// Rebuild connections from a snapshot taken before a crash. Per
  /// entry, in snapshot order:
  ///   * TCP entries that never saw a reply are dropped — a snapshot
  ///     mid-handshake must not resurrect a half-open connection.
  ///   * Entries whose remaining timeout already ran out are dropped.
  ///   * Entries colliding with live state (either tuple, either map)
  ///     are dropped — live state wins over a stale image.
  ///   * Survivors are inserted *unconfirmed*: they classify as before
  ///     (ESTABLISHED for seen_reply entries) but their deadline is
  ///     re-armed at min(remaining, transient timeout) until real
  ///     traffic re-confirms them through `ct`.
  /// The timer wheel is re-filed for every accepted entry.
  CtRestoreResult restore(const CtSnapshot& snapshot, sim::SimNanos now);

  // --- stateful HA: active→standby replication ---

  /// Install the incremental replication stream: the sink fires on
  /// every commit, state advance, and removal. Pass nullptr to stop
  /// publishing. Restore/apply paths never echo into the sink.
  void set_delta_sink(CtDeltaSink sink) { delta_sink_ = std::move(sink); }

  /// Consume one replication event on the standby side: upsert for
  /// kCommit/kUpdate (collisions with live local state are dropped),
  /// removal for kClose. Entries land *confirmed* — freshness comes
  /// from the live stream itself, not from traffic.
  void apply_delta(const CtDelta& delta, sim::SimNanos now);

  /// Takeover hygiene: mark every live entry unconfirmed and clamp its
  /// deadline to the transient timeout, so connections that died while
  /// the replication stream was lagging expire quickly while surviving
  /// flows re-confirm through their own traffic. Returns entries
  /// demoted.
  std::size_t demote_all(sim::SimNanos now);

  // --- stateful HA: fencing + warm failback + dirty tracking ---

  /// Fencing gate: while fenced, process() refuses to commit *new*
  /// connections (NAT allocations included) — the miss path returns
  /// kCtInvalid and counts stats().fenced_rejects. Established entries
  /// keep being served and refreshed, so live flows survive a fencing
  /// window; only state *minting* stops. classify() is unaffected (it
  /// never mutates).
  void set_fenced(bool fenced) { fenced_ = fenced; }
  [[nodiscard]] bool fenced() const { return fenced_; }

  /// Dirty-shard tracking for incremental checkpoints: set by any
  /// mutation (commit/refresh/kill/apply/restore/resync/demote/clear),
  /// cleared only by the checkpointing layer once it has captured an
  /// image. checkpoint() itself does NOT clear — it is also used for
  /// failback streaming, which must not perturb the cadence.
  [[nodiscard]] bool dirty() const { return dirty_; }
  void clear_dirty() { dirty_ = false; }

  /// Warm failback: reconcile this shard against an authoritative
  /// snapshot from the current active. Unlike restore(), the snapshot
  /// *wins* collisions: local entries claiming either tuple of a
  /// snapshot entry are killed, matching connections are updated in
  /// place (confirmed), new ones inserted confirmed, and live entries
  /// the snapshot does not cover are demoted (unconfirmed + transient
  /// deadline) so stale ex-active state ages out fast. Returns the
  /// number of entries upserted.
  std::size_t resync(const CtSnapshot& snapshot, sim::SimNanos now);

 private:
  struct Slot {
    ConnEntry entry;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    std::uint32_t generation = 0;
    bool live = false;
  };
  static constexpr std::uint32_t kNil = 0xffffffff;

  [[nodiscard]] sim::SimNanos timeout_for(const ConnEntry& entry) const;
  [[nodiscard]] std::uint64_t classify_entry(const Slot& slot, bool reply_dir) const;

  std::uint32_t allocate_slot();
  void kill(std::uint32_t id, bool expired, sim::SimNanos now);
  void emit_delta(CtDelta::Kind kind, const ConnEntry& entry, sim::SimNanos now);
  void lru_touch(std::uint32_t id);
  void lru_unlink(std::uint32_t id);
  void lru_push_front(std::uint32_t id);
  void refresh(Slot& slot, std::uint32_t id, bool reply_dir, std::uint8_t tcp_flags,
               sim::SimNanos now);
  void file_deadline(std::uint32_t id, const Slot& slot);

  /// SNAT external-port allocation with shard affinity: the first port
  /// in [port_min, port_max] (probed from a tuple-derived offset) whose
  /// translated reply tuple (a) hashes to this connection's symmetric
  /// steering shard and (b) is not already claimed in reply_map_.
  [[nodiscard]] std::optional<std::uint16_t> allocate_snat_port(const CtTuple& orig,
                                                                const CtAction& spec) const;

  CtConfig config_;
  std::size_t steer_shards_ = 1;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<CtTuple, std::uint32_t, CtTupleHash> orig_map_;
  std::unordered_map<CtTuple, std::uint32_t, CtTupleHash> reply_map_;
  /// Coarse timer wheel: deadline bucket -> (slot id, generation).
  /// Buckets are swept lazily; a refreshed entry is re-filed when its
  /// stale bucket comes due.
  std::map<sim::SimNanos, std::vector<std::pair<std::uint32_t, std::uint32_t>>> wheel_;
  std::uint32_t lru_head_ = kNil;  // most recently seen
  std::uint32_t lru_tail_ = kNil;  // least recently seen (eviction victim)
  CtStats stats_;
  CtDeltaSink delta_sink_;  // replication stream; null when not an active
  bool fenced_ = false;     // lease lost: no new commits (survives clear())
  bool dirty_ = false;      // mutated since last clear_dirty()
};

}  // namespace harmless::openflow

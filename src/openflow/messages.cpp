#include "openflow/messages.hpp"

namespace harmless::openflow {

namespace {
struct Namer {
  const char* operator()(const HelloMsg&) const { return "hello"; }
  const char* operator()(const FeaturesRequestMsg&) const { return "features_request"; }
  const char* operator()(const FeaturesReplyMsg&) const { return "features_reply"; }
  const char* operator()(const FlowModMsg&) const { return "flow_mod"; }
  const char* operator()(const GroupModMsg&) const { return "group_mod"; }
  const char* operator()(const PacketInMsg&) const { return "packet_in"; }
  const char* operator()(const PacketOutMsg&) const { return "packet_out"; }
  const char* operator()(const PortStatusMsg&) const { return "port_status"; }
  const char* operator()(const FlowRemovedMsg&) const { return "flow_removed"; }
  const char* operator()(const FlowStatsRequestMsg&) const { return "flow_stats_request"; }
  const char* operator()(const FlowStatsReplyMsg&) const { return "flow_stats_reply"; }
  const char* operator()(const BarrierRequestMsg&) const { return "barrier_request"; }
  const char* operator()(const BarrierReplyMsg&) const { return "barrier_reply"; }
  const char* operator()(const EchoRequestMsg&) const { return "echo_request"; }
  const char* operator()(const EchoReplyMsg&) const { return "echo_reply"; }
  const char* operator()(const ErrorMsg&) const { return "error"; }
};
}  // namespace

const char* message_name(const Message& message) { return std::visit(Namer{}, message); }

}  // namespace harmless::openflow

// openflow/flow_cache.hpp — the two-tier datapath flow cache.
//
// Production software switches (OVS-style) do not run the full
// multi-table pipeline per packet; they consult a flow cache:
//
//  * Tier 1, the **microflow cache**, maps an exact hash of every field
//    a packet presents (full 5-tuple + in_port and friends) straight to
//    the megaflow entry that served the previous packet of that
//    microflow — one probe, no classification.
//
//  * Tier 2, the **megaflow cache**, holds one wildcarded entry per
//    distinct slow-path traversal: the union of (field, mask) bits the
//    traversal actually examined (recorded by FieldUse) plus the fields
//    it proved absent. One megaflow therefore covers every packet that
//    would take the identical path through the tables, so elephant-flow
//    aggregates — even ones varying in fields no rule looks at — stay
//    on the fast path.
//
// A cached entry stores the traversal outcome: per-table apply-action
// segments, the flattened final action set, and references to the flow
// entries it matched so cache hits keep per-rule packet/byte counters
// and idle timestamps byte-identical to an uncached pipeline.
//
// Invalidation is epoch-based: FlowTable/GroupTable bump the shared
// epoch counter on any mutation (flow-mod, group-mod, expiry, matcher
// swap) and entries self-invalidate lazily on epoch mismatch — there
// are no eager flush scans. Entries whose referenced flow entries have
// timed out also refuse to hit, forcing the slow path to perform the
// same lazy expiry an uncached lookup would.
//
// Capacity pressure on the megaflow tier is handled by CLOCK
// (second-chance) eviction, not a wholesale flush: every hit sets an
// entry's reference bit, and an insert into a full tier sweeps the
// clock hand, sparing referenced entries (clearing their bit) and
// evicting the first unreferenced one — so elephant aggregates stay
// resident while one-shot mice recycle. Only the exact-match microflow
// tier still resets wholesale when full; its entries are pointers into
// the megaflow tier and re-seed on the next packet.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "openflow/flow_entry.hpp"

namespace harmless::openflow {

class FlowTable;

/// One learned megaflow: a wildcarded key plus the cached traversal.
struct MegaflowEntry {
  // ---- key ----
  std::array<std::uint64_t, kFieldCount> values{};
  std::array<std::uint64_t, kFieldCount> masks{};
  std::uint32_t required_present = 0;  // examined fields the packet had
  std::uint32_t required_absent = 0;   // examined fields the packet lacked
  std::uint64_t epoch = 0;             // pipeline epoch at install time

  // ---- cached traversal ----
  struct Step {
    FlowTable* table = nullptr;  // whose lookup this replays (counters)
    FlowEntry* entry = nullptr;  // matched entry; null when the table missed
    ActionList apply_actions;    // that entry's apply-actions (copy)
  };
  std::vector<Step> steps;   // tables visited, in traversal order
  ActionList final_actions;  // flattened OF1.3 action set at pipeline exit
  std::uint8_t last_table = 0;
  bool matched = false;

  std::uint64_t hits = 0;
  /// CLOCK reference bit: set on every hit, cleared when the eviction
  /// hand passes over the entry (second chance). New entries start
  /// unreferenced and earn residency with their first hit — one-shot
  /// mice are the preferred victims, elephants are never at the hand
  /// while their bit is down.
  bool referenced = false;
  /// Microflow keys mapped to this entry, so eviction unmaps exactly
  /// its own tier-1 pointers instead of sweeping the whole map. May
  /// hold stale keys after a tier-1 reset (eviction re-checks the
  /// mapping before erasing).
  std::vector<std::uint64_t> microflow_keys;

  /// Key check: the packet agrees on every examined bit and presence.
  [[nodiscard]] bool covers(const FieldView& view) const;

  /// True if any referenced flow entry has timed out — the entry must
  /// stop hitting so the slow path performs the lazy expiry.
  [[nodiscard]] bool timed_out(sim::SimNanos now) const;
};

class FlowCache {
 public:
  struct Limits {
    std::size_t max_megaflows = 4096;
    std::size_t max_microflows = 16384;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t microflow_hits = 0;  // tier-1 exact-hash hits
    std::uint64_t megaflow_hits = 0;   // tier-2 wildcard hits (tier-1 missed)
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t invalidations = 0;  // entries discarded on epoch mismatch
    std::uint64_t evictions = 0;      // megaflows displaced by CLOCK at capacity
    std::uint64_t flushes = 0;        // microflow-tier capacity resets
  };

  /// The shared epoch counter. FlowTable/GroupTable hold this pointer
  /// and increment it on any mutation (the dirty_ plumbing).
  [[nodiscard]] std::uint64_t* epoch_slot() { return &epoch_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Invalidate everything (one epoch bump — entries die lazily).
  void invalidate_all() { ++epoch_; }

  /// Fast-path lookup: microflow probe, then megaflow scan. Returns
  /// null on miss, on epoch mismatch, or when a covering entry's flow
  /// references have timed out. `scanned` (optional) reports how many
  /// megaflow candidates the tier-2 scan examined — 0 for a microflow
  /// hit — so the datapath can charge work actually performed.
  MegaflowEntry* lookup(const FieldView& view, sim::SimNanos now,
                        std::uint32_t* scanned = nullptr);

  /// Burst-probe variant of lookup(): identical fast-path semantics,
  /// but a miss is NOT counted in stats — the residue re-enters the
  /// slow path via Pipeline::run(), whose own lookup accounts the
  /// packet exactly once (and may even hit, when an earlier packet of
  /// the same burst installed the covering megaflow).
  MegaflowEntry* probe(const FieldView& view, sim::SimNanos now,
                       std::uint32_t* scanned = nullptr);

  /// Install a freshly learned megaflow for the packet that built it.
  /// The entry is stamped with the current epoch; `view` seeds the
  /// microflow tier.
  MegaflowEntry* insert(MegaflowEntry entry, const FieldView& view);

  void clear();

  [[nodiscard]] std::size_t megaflow_count() const { return megaflows_.size(); }
  [[nodiscard]] std::size_t microflow_count() const { return microflow_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void set_limits(const Limits& limits) { limits_ = limits; }
  [[nodiscard]] const Limits& limits() const { return limits_; }

 private:
  /// FNV-style hash of the full presence bitmap + every present value.
  static std::uint64_t microflow_key(const FieldView& view);

  /// Shared body of lookup()/probe(); `count_miss` gates the miss stat.
  MegaflowEntry* find(const FieldView& view, sim::SimNanos now, std::uint32_t* scanned,
                      bool count_miss);

  /// Drop epoch-stale megaflows (and the microflow tier, whose pointers
  /// may reference them). Runs on the first lookup or insert after an
  /// epoch bump, so stale entries are never scanned repeatedly.
  void purge_stale();

  /// CLOCK second-chance sweep: spare referenced entries (clearing the
  /// bit), evict the first unreferenced one, and unmap any microflow
  /// pointers into it.
  void evict_one();

  std::uint64_t epoch_ = 1;
  std::uint64_t purged_epoch_ = 1;  // epoch purge_stale last ran against
  std::size_t clock_hand_ = 0;      // next megaflow the eviction sweep examines
  std::vector<std::unique_ptr<MegaflowEntry>> megaflows_;  // insertion order
  std::unordered_map<std::uint64_t, MegaflowEntry*> microflow_;
  Limits limits_;
  Stats stats_;
};

}  // namespace harmless::openflow

// openflow/flow_cache.hpp — the two-tier datapath flow cache.
//
// Production software switches (OVS-style) do not run the full
// multi-table pipeline per packet; they consult a flow cache:
//
//  * Tier 1, the **microflow cache**, maps an exact hash of every field
//    a packet presents (full 5-tuple + in_port and friends) straight to
//    the megaflow entry that served the previous packet of that
//    microflow — one probe, no classification.
//
//  * Tier 2, the **megaflow cache**, holds one wildcarded entry per
//    distinct slow-path traversal: the union of (field, mask) bits the
//    traversal actually examined (recorded by FieldUse) plus the fields
//    it proved absent. One megaflow therefore covers every packet that
//    would take the identical path through the tables, so elephant-flow
//    aggregates — even ones varying in fields no rule looks at — stay
//    on the fast path.
//
// Tier 2 is organized as a **dpcls-style classifier** (the OVS datapath
// classifier): megaflows are grouped by their mask signature — the
// (masks, required_present, required_absent) triple — into hash
// subtables keyed by the masked field values. A lookup hashes once per
// *distinct mask* rather than comparing once per *entry*, so tier-2
// cost is O(#subtables), not O(#megaflows), and stays flat as the cache
// fills. Subtables are probed in a hit-ranked order (a decaying hit
// count, OVS-style), so skewed workloads resolve in 1–2 probes. The
// pre-classifier linear scan survives behind `set_linear_scan(true)` as
// the ablation baseline; both modes are property-proven observationally
// identical (tests/property/classifier_equivalence_test.cpp).
//
// A cached entry stores the traversal outcome: per-table apply-action
// segments, the flattened final action set, and references to the flow
// entries it matched so cache hits keep per-rule packet/byte counters
// and idle timestamps byte-identical to an uncached pipeline.
//
// Invalidation is epoch-based: FlowTable/GroupTable bump the shared
// epoch counter on any mutation (flow-mod, group-mod, expiry, matcher
// swap) and entries self-invalidate lazily on epoch mismatch — there
// are no eager flush scans. Entries whose referenced flow entries have
// timed out also refuse to hit, forcing the slow path to perform the
// same lazy expiry an uncached lookup would.
//
// Capacity pressure on the megaflow tier is handled by CLOCK
// (second-chance) eviction, not a wholesale flush: every hit sets an
// entry's reference bit, and an insert into a full tier sweeps the
// clock hand, sparing referenced entries (clearing their bit) and
// evicting the first unreferenced one — so elephant aggregates stay
// resident while one-shot mice recycle. The hand sweeps insertion
// order; eviction also unlinks the victim from its subtable (dropping
// the subtable when it empties). Only the exact-match microflow tier
// still resets wholesale when full; its entries are pointers into the
// megaflow tier and re-seed on the next packet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "openflow/flow_entry.hpp"
#include "util/id_map.hpp"

namespace harmless::openflow {

class FlowTable;
struct MegaflowSubtable;

/// One learned megaflow: a wildcarded key plus the cached traversal.
struct MegaflowEntry {
  // ---- key ----
  std::array<std::uint64_t, kFieldCount> values{};
  std::array<std::uint64_t, kFieldCount> masks{};
  std::uint32_t required_present = 0;  // examined fields the packet had
  std::uint32_t required_absent = 0;   // examined fields the packet lacked
  std::uint64_t epoch = 0;             // pipeline epoch at install time

  // ---- cached traversal ----
  struct Step {
    FlowTable* table = nullptr;  // whose lookup this replays (counters)
    FlowEntry* entry = nullptr;  // matched entry; null when the table missed
    ActionList apply_actions;    // that entry's apply-actions (copy)
  };
  std::vector<Step> steps;   // tables visited, in traversal order
  ActionList final_actions;  // flattened OF1.3 action set at pipeline exit
  std::uint8_t last_table = 0;
  bool matched = false;

  std::uint64_t hits = 0;
  /// CLOCK reference bit: set on every hit, cleared when the eviction
  /// hand passes over the entry (second chance). New entries start
  /// unreferenced and earn residency with their first hit — one-shot
  /// mice are the preferred victims, elephants are never at the hand
  /// while their bit is down.
  bool referenced = false;
  /// Microflow keys mapped to this entry, so eviction unmaps exactly
  /// its own tier-1 pointers instead of sweeping the whole map. May
  /// hold stale keys after a tier-1 reset (eviction re-checks the
  /// mapping before erasing); FlowCache compacts it whenever it grows
  /// to the doubling watermark below, so stale/duplicate keys cannot
  /// grow a long-lived elephant's vector without bound.
  std::vector<std::uint64_t> microflow_keys;
  /// Next microflow_keys size that triggers a compaction; rearmed to
  /// 2x the surviving keys afterwards, so compaction cost stays
  /// amortized O(1) per recorded key even when the live-key count
  /// hovers just under a watermark.
  std::size_t microflow_compact_at = 64;

  /// Classifier back-links: the subtable holding this entry and the
  /// masked-key hash it is bucketed under (maintained by FlowCache).
  MegaflowSubtable* subtable = nullptr;
  std::uint64_t subtable_hash = 0;

  /// Key check: the packet agrees on every examined bit and presence.
  [[nodiscard]] bool covers(const FieldView& view) const;

  /// True if any referenced flow entry has timed out — the entry must
  /// stop hitting so the slow path performs the lazy expiry.
  [[nodiscard]] bool timed_out(sim::SimNanos now) const;
};

/// One per-mask hash subtable of the tier-2 classifier: every resident
/// megaflow with this exact (masks, required_present, required_absent)
/// signature, bucketed by the hash of its masked field values. One
/// lookup probe = one hash + one bucket walk (usually length 1).
struct MegaflowSubtable {
  std::array<std::uint64_t, kFieldCount> masks{};
  std::uint32_t required_present = 0;
  std::uint32_t required_absent = 0;
  /// Decaying hit count — the probe-order rank. Bumped on every hit,
  /// halved every Limits::rank_decay_lookups tier-2 lookups so a
  /// formerly-hot mask cannot keep the front slot forever.
  std::uint64_t rank_hits = 0;
  std::size_t entry_count = 0;
  std::unordered_map<std::uint64_t, std::vector<MegaflowEntry*>> buckets;

  /// True when `entry`'s key signature belongs in this subtable.
  [[nodiscard]] bool matches_signature(const MegaflowEntry& entry) const {
    return required_present == entry.required_present &&
           required_absent == entry.required_absent && masks == entry.masks;
  }

  /// Hash of `view` projected through this subtable's masks — the
  /// bucket key a packet probes with (identical to the stored entries'
  /// hash because their values are pre-masked at install time).
  [[nodiscard]] std::uint64_t hash_view(const FieldView& view) const {
    std::uint64_t h = kFieldHashSeed ^ required_present;
    std::uint32_t remaining = required_present;
    while (remaining != 0) {
      const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
      remaining &= remaining - 1;
      h = hash_u64s(h, view.values[index] & masks[index]);
    }
    return h;
  }
};

class FlowCache {
 public:
  struct Limits {
    std::size_t max_megaflows = 4096;
    std::size_t max_microflows = 16384;
    /// Halve every subtable's rank score after this many tier-2
    /// lookups (0 disables decay). Keeps the probe order tracking the
    /// *current* skew instead of all-time hit totals.
    std::uint64_t rank_decay_lookups = 4096;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t microflow_hits = 0;  // tier-1 exact-hash hits
    std::uint64_t megaflow_hits = 0;   // tier-2 wildcard hits (tier-1 missed)
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t invalidations = 0;  // entries discarded on epoch mismatch
    std::uint64_t evictions = 0;      // megaflows displaced by CLOCK at capacity
    std::uint64_t flushes = 0;        // microflow-tier capacity resets
    /// Hashed subtable probes performed by tier-2 lookups (dpcls mode
    /// only; the linear-scan ablation reports per-entry comparisons
    /// through the lookup's `scanned` out-param instead).
    std::uint64_t subtable_probes = 0;
  };

  /// Self-referential epoch pointer (and per-shard tier state): moving
  /// a cache would leave epoch_ aimed at the moved-from object. Own
  /// caches in place (Pipeline holds its shards behind unique_ptr).
  FlowCache() = default;
  FlowCache(const FlowCache&) = delete;
  FlowCache& operator=(const FlowCache&) = delete;
  FlowCache(FlowCache&&) = delete;
  FlowCache& operator=(FlowCache&&) = delete;

  /// The live invalidation epoch: this cache's own counter, or the
  /// shared one after share_epoch(). FlowTable/GroupTable bump the
  /// same counter on any mutation (Pipeline wires their bind_epoch to
  /// its shard-shared slot — the dirty_ plumbing).
  [[nodiscard]] std::uint64_t epoch() const { return *epoch_; }

  /// Rebind this cache onto an external epoch counter — how the
  /// per-core shards of a multi-core datapath share one invalidation
  /// epoch (read-mostly: every shard checks it per lookup, only table
  /// and group mutations bump it). Call before any traffic: resident
  /// entries are stamped against the old counter.
  void share_epoch(std::uint64_t* slot) {
    epoch_ = slot;
    purged_epoch_ = *slot;
  }

  /// Invalidate everything (one epoch bump — entries die lazily; with
  /// a shared epoch this invalidates every sibling shard too, which is
  /// exactly what a table/group/port mutation means).
  void invalidate_all() { ++*epoch_; }

  /// Fast-path lookup: microflow probe, then the tier-2 classifier.
  /// Returns null on miss, on epoch mismatch, or when a covering
  /// entry's flow references have timed out. `scanned` (optional)
  /// reports the tier-2 work actually performed — hashed subtable
  /// probes in dpcls mode, per-entry comparisons in the linear-scan
  /// ablation, 0 for a microflow hit — so the datapath can charge it
  /// (cache_subtable_ns / cache_scan_ns respectively).
  MegaflowEntry* lookup(const FieldView& view, sim::SimNanos now,
                        std::uint32_t* scanned = nullptr);

  /// Burst-probe variant of lookup(): identical fast-path semantics,
  /// but a miss is NOT counted in stats — the residue re-enters the
  /// slow path via Pipeline::run(), whose own lookup accounts the
  /// packet exactly once (and may even hit, when an earlier packet of
  /// the same burst installed the covering megaflow).
  MegaflowEntry* probe(const FieldView& view, sim::SimNanos now,
                       std::uint32_t* scanned = nullptr);

  /// Install a freshly learned megaflow for the packet that built it.
  /// The entry is stamped with the current epoch; `view` seeds the
  /// microflow tier.
  MegaflowEntry* insert(MegaflowEntry entry, const FieldView& view);

  void clear();

  /// Ablation knob: probe tier 2 with the pre-classifier linear scan
  /// over insertion order instead of the per-mask subtables. The
  /// subtable index is maintained either way, so the mode can be
  /// flipped at any time.
  void set_linear_scan(bool linear) { linear_scan_ = linear; }
  [[nodiscard]] bool linear_scan() const { return linear_scan_; }

  [[nodiscard]] std::size_t megaflow_count() const { return megaflows_.size(); }
  [[nodiscard]] std::size_t microflow_count() const { return microflow_.size(); }
  /// Live per-mask subtables (== distinct megaflow mask signatures).
  [[nodiscard]] std::size_t subtable_count() const { return subtables_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void set_limits(const Limits& limits) { limits_ = limits; }
  [[nodiscard]] const Limits& limits() const { return limits_; }

 private:
  /// FNV-style hash of the full presence bitmap + every present value.
  static std::uint64_t microflow_key(const FieldView& view);

  /// Shared body of lookup()/probe(); `count_miss` gates the miss stat.
  MegaflowEntry* find(const FieldView& view, sim::SimNanos now, std::uint32_t* scanned,
                      bool count_miss);

  /// Tier-2 probe bodies behind find(): classifier vs ablation. `key`
  /// is the packet's microflow key, already computed by the tier-1
  /// probe — a hit re-seeds tier 1 with it instead of rehashing.
  MegaflowEntry* find_subtables(const FieldView& view, sim::SimNanos now, std::uint64_t key,
                                std::uint32_t* scanned);
  MegaflowEntry* find_linear(const FieldView& view, sim::SimNanos now, std::uint64_t key,
                             std::uint32_t* scanned);

  /// Hit bookkeeping shared by both tier-2 probe paths: seed tier 1,
  /// bump stats and the entry's CLOCK bit.
  MegaflowEntry* tier2_hit(MegaflowEntry* entry, std::uint64_t key);

  /// Drop epoch-stale megaflows (and the microflow tier, whose pointers
  /// may reference them). Runs on the first lookup or insert after an
  /// epoch bump, so stale entries are never scanned repeatedly.
  void purge_stale();

  /// CLOCK second-chance sweep: spare referenced entries (clearing the
  /// bit), evict the first unreferenced one, and unmap any microflow
  /// pointers into it.
  void evict_one();

  /// Link `entry` into the subtable matching its signature (creating
  /// one at the back of the probe order if needed).
  void index_entry(MegaflowEntry* entry);
  /// Unlink `entry` from its subtable; drops the subtable when empty.
  void unindex_entry(MegaflowEntry* entry);

  /// Record a tier-1 key newly mapped to `entry`, compacting the
  /// per-entry key vector (dedupe + drop keys no longer mapped here)
  /// whenever it reaches a power-of-two watermark — bounded growth for
  /// long-lived elephants across tier-1 resets.
  void note_microflow_key(MegaflowEntry& entry, std::uint64_t key);

  std::uint64_t own_epoch_ = 1;         // storage for a standalone cache
  std::uint64_t* epoch_ = &own_epoch_;  // the (possibly shared) live counter
  std::uint64_t purged_epoch_ = 1;      // epoch purge_stale last ran against
  std::size_t clock_hand_ = 0;      // next megaflow the eviction sweep examines
  std::uint64_t tier2_lookups_ = 0; // drives the rank-decay cadence
  bool linear_scan_ = false;
  std::vector<std::unique_ptr<MegaflowEntry>> megaflows_;  // insertion order
  /// The classifier, in probe order (kept sorted by decaying rank: a
  /// hit bubbles its subtable toward the front past colder neighbors).
  std::vector<std::unique_ptr<MegaflowSubtable>> subtables_;
  util::IdMap<MegaflowEntry*> microflow_;
  Limits limits_;
  Stats stats_;
};

}  // namespace harmless::openflow

#include "openflow/matcher.hpp"

#include <algorithm>

namespace harmless::openflow {

namespace {

bool priority_desc(const FlowEntry* a, const FlowEntry* b) {
  return a->priority > b->priority;
}

}  // namespace

// ---------------------------------------------------------------- linear

void LinearMatcher::rebuild(std::span<FlowEntry* const> entries) {
  by_priority_.assign(entries.begin(), entries.end());
  std::stable_sort(by_priority_.begin(), by_priority_.end(), priority_desc);
}

FlowEntry* LinearMatcher::lookup(const FieldView& view, LookupCost& cost) const {
  for (FlowEntry* entry : by_priority_) {
    ++cost.entries_scanned;
    if (entry->match.matches(view)) return entry;
  }
  return nullptr;
}

// ----------------------------------------------------------- specialized

bool SpecializedMatcher::shape_key(const Shape& shape, const FieldView& view,
                                   std::uint64_t& key) {
  if ((view.present & shape.fields) != shape.fields) {
    // The shape is skipped because the packet lacks some of its fields;
    // pin exactly those absences for megaflow learning.
    std::uint32_t missing = shape.fields & ~view.present;
    while (missing != 0) {
      const unsigned index = static_cast<unsigned>(__builtin_ctz(missing));
      missing &= missing - 1;
      view.note(static_cast<Field>(index), 0);
    }
    return false;
  }
  std::uint64_t h = kFieldHashSeed;
  std::uint32_t remaining = shape.fields;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    view.note(static_cast<Field>(index), shape.masks[index]);
    h = hash_u64s(h, view.values[index] & shape.masks[index]);
  }
  key = h;
  return true;
}

void SpecializedMatcher::rebuild(std::span<FlowEntry* const> entries) {
  shapes_.clear();

  for (FlowEntry* entry : entries) {
    const Match& match = entry->match;
    // Find (or create) this entry's shape.
    Shape* shape = nullptr;
    for (Shape& candidate : shapes_) {
      if (candidate.fields != match.fields_present()) continue;
      bool same_masks = true;
      std::uint32_t remaining = candidate.fields;
      while (remaining != 0) {
        const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
        remaining &= remaining - 1;
        if (candidate.masks[index] != match.mask_of(static_cast<Field>(index))) {
          same_masks = false;
          break;
        }
      }
      if (same_masks) {
        shape = &candidate;
        break;
      }
    }
    if (shape == nullptr) {
      Shape fresh;
      fresh.fields = match.fields_present();
      for (std::size_t index = 0; index < kFieldCount; ++index)
        if (fresh.fields & (1u << index))
          fresh.masks[index] = match.mask_of(static_cast<Field>(index));
      fresh.exact = match.all_exact() && fresh.fields != 0;
      shapes_.push_back(std::move(fresh));
      shape = &shapes_.back();
    }

    shape->max_priority = std::max(shape->max_priority, entry->priority);
    if (shape->exact) {
      // Key the entry by its own constrained values (same packing as
      // shape_key uses for packets).
      std::uint64_t h = kFieldHashSeed;
      std::uint32_t remaining = shape->fields;
      while (remaining != 0) {
        const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
        remaining &= remaining - 1;
        h = hash_u64s(h, entry->match.value_of(static_cast<Field>(index)));
      }
      shape->buckets[h].push_back(entry);
    } else {
      shape->list.push_back(entry);
    }
  }

  for (Shape& shape : shapes_) {
    std::stable_sort(shape.list.begin(), shape.list.end(), priority_desc);
    for (auto& [key, bucket] : shape.buckets)
      std::stable_sort(bucket.begin(), bucket.end(), priority_desc);
  }
  std::stable_sort(shapes_.begin(), shapes_.end(),
                   [](const Shape& a, const Shape& b) { return a.max_priority > b.max_priority; });
}

FlowEntry* SpecializedMatcher::lookup(const FieldView& view, LookupCost& cost) const {
  FlowEntry* best = nullptr;
  for (const Shape& shape : shapes_) {
    // Shapes are ordered by max_priority: once the current best beats
    // everything a shape could contain, we are done.
    if (best != nullptr && best->priority >= shape.max_priority) break;

    if (shape.exact) {
      std::uint64_t key = 0;
      if (!shape_key(shape, view, key)) continue;
      ++cost.hash_probes;
      const auto it = shape.buckets.find(key);
      if (it == shape.buckets.end()) continue;
      for (FlowEntry* entry : it->second) {
        ++cost.entries_scanned;
        if (entry->match.matches(view)) {  // guards against hash collisions
          if (best == nullptr || entry->priority > best->priority) best = entry;
          break;  // bucket is priority-sorted
        }
      }
    } else {
      for (FlowEntry* entry : shape.list) {
        ++cost.entries_scanned;
        if (entry->match.matches(view)) {
          if (best == nullptr || entry->priority > best->priority) best = entry;
          break;  // list is priority-sorted
        }
      }
    }
  }
  return best;
}

std::unique_ptr<Matcher> make_matcher(bool specialized) {
  if (specialized) return std::make_unique<SpecializedMatcher>();
  return std::make_unique<LinearMatcher>();
}

}  // namespace harmless::openflow

#include "openflow/match.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace harmless::openflow {

Match& Match::set(Field field, std::uint64_t value) {
  return set_masked(field, value, field_all_ones(field));
}

Match& Match::set_masked(Field field, std::uint64_t value, std::uint64_t mask) {
  const auto index = static_cast<std::size_t>(field);
  values_[index] = value & mask;
  masks_[index] = mask;
  present_ |= field_bit(field);
  return *this;
}

Match& Match::ip_src_prefix(net::Ipv4Addr ip, int prefix_len) {
  const std::uint64_t mask =
      prefix_len <= 0 ? 0 : (prefix_len >= 32 ? 0xffffffffULL : ~((1ULL << (32 - prefix_len)) - 1) & 0xffffffffULL);
  return set_masked(Field::kIpSrc, ip.value(), mask);
}

Match& Match::ip_dst_prefix(net::Ipv4Addr ip, int prefix_len) {
  const std::uint64_t mask =
      prefix_len <= 0 ? 0 : (prefix_len >= 32 ? 0xffffffffULL : ~((1ULL << (32 - prefix_len)) - 1) & 0xffffffffULL);
  return set_masked(Field::kIpDst, ip.value(), mask);
}

bool Match::matches(const FieldView& view) const {
  std::uint32_t remaining = present_;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    const auto field = static_cast<Field>(index);
    if (!view.has(field)) return false;  // has() records the presence probe
    view.note(field, masks_[index]);     // exact mask bits examined, for megaflow learning
    if ((view.values[index] & masks_[index]) != values_[index]) return false;
  }
  return true;
}

bool Match::subsumes(const Match& other) const {
  // For every constraint of ours, `other` must constrain at least as
  // tightly: our mask bits ⊆ other's mask bits and values agree on our
  // mask.
  std::uint32_t remaining = present_;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    const auto field = static_cast<Field>(index);
    if (!other.has(field)) return false;
    const std::uint64_t our_mask = masks_[index];
    if ((other.masks_[index] & our_mask) != our_mask) return false;
    if ((other.values_[index] & our_mask) != values_[index]) return false;
  }
  return true;
}

bool Match::overlaps(const Match& other) const {
  // Two matches overlap unless some field they both constrain disagrees
  // on the intersection of the masks.
  const std::uint32_t both = present_ & other.present_;
  std::uint32_t remaining = both;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    const std::uint64_t common = masks_[index] & other.masks_[index];
    if ((values_[index] & common) != (other.values_[index] & common)) return false;
  }
  return true;
}

bool Match::all_exact() const {
  if (present_ == 0) return false;  // nothing to hash on
  std::uint32_t remaining = present_;
  while (remaining != 0) {
    const unsigned index = static_cast<unsigned>(__builtin_ctz(remaining));
    remaining &= remaining - 1;
    if (masks_[index] != field_all_ones(static_cast<Field>(index))) return false;
  }
  return true;
}

std::string Match::to_string() const {
  if (present_ == 0) return "*";
  std::ostringstream os;
  bool first = true;
  for (std::size_t index = 0; index < kFieldCount; ++index) {
    if ((present_ & (1u << index)) == 0) continue;
    if (!first) os << ',';
    first = false;
    const auto field = static_cast<Field>(index);
    os << field_name(field) << '=';
    switch (field) {
      case Field::kEthDst:
      case Field::kEthSrc:
        os << net::MacAddr::from_u64(values_[index]).to_string();
        break;
      case Field::kIpSrc:
      case Field::kIpDst:
        os << net::Ipv4Addr(static_cast<std::uint32_t>(values_[index])).to_string();
        break;
      case Field::kVlanVid:
        if (values_[index] == 0 && masks_[index] == field_all_ones(field))
          os << "untagged";
        else
          os << (values_[index] & 0x0fff);
        break;
      case Field::kEthType:
        os << util::format("0x%04x", static_cast<unsigned>(values_[index]));
        break;
      default:
        os << values_[index];
    }
    if (masks_[index] != field_all_ones(field))
      os << util::format("/0x%llx", static_cast<unsigned long long>(masks_[index]));
  }
  return os.str();
}

}  // namespace harmless::openflow

#include "openflow/channel.hpp"

namespace harmless::openflow {

void ControlChannel::send_to_controller(Message message) {
  ++to_controller_count_;
  engine_.schedule_after(latency_, [this, message = std::move(message)]() mutable {
    if (controller_handler_) controller_handler_(std::move(message));
  });
}

void ControlChannel::send_to_switch(Message message) {
  ++to_switch_count_;
  engine_.schedule_after(latency_, [this, message = std::move(message)]() mutable {
    if (switch_handler_) switch_handler_(std::move(message));
  });
}

}  // namespace harmless::openflow

#include "openflow/channel.hpp"

#include <algorithm>

namespace harmless::openflow {

void ControlChannel::send(Message&& message, DirectionStats& stats,
                          const ChannelImpairment& impairment, sim::SimNanos& next_free,
                          std::function<void(Message&&)>& handler) {
  ++stats.sent;
  if (!up_) {
    ++stats.dropped_down;
    return;
  }
  if (impairment.loss > 0.0 && rng_.chance(impairment.loss)) {
    ++stats.dropped_loss;
    return;
  }
  // Serialization point: min_gap_ns_ spaces departures, so a burst of N
  // flow-mods takes N * gap to drain — the resync-time model. With the
  // default gap of 0 this collapses to depart-now, the historical
  // instantaneous pipe.
  const sim::SimNanos depart = std::max(engine_.now(), next_free);
  next_free = depart + min_gap_ns_;
  sim::SimNanos arrive = depart + latency_;
  if (impairment.jitter_ns > 0) {
    // Jitter can reorder deliveries relative to FIFO — deliberate: an
    // impaired management network gives no ordering guarantees either.
    arrive += static_cast<sim::SimNanos>(
        rng_.below(static_cast<std::uint64_t>(impairment.jitter_ns) + 1));
  }
  engine_.schedule_at(arrive, [this, &stats, &handler, msg = std::move(message)]() mutable {
    if (!up_) {
      ++stats.dropped_down;  // in flight when the partition hit
      return;
    }
    if (!handler) {
      ++stats.dropped_no_handler;  // receiver crashed / not attached
      return;
    }
    ++stats.delivered;
    handler(std::move(msg));
  });
}

void ControlChannel::send_to_controller(Message message) {
  send(std::move(message), to_controller_stats_, to_controller_impairment_, to_controller_free_,
       controller_handler_);
}

void ControlChannel::send_to_switch(Message message) {
  send(std::move(message), to_switch_stats_, to_switch_impairment_, to_switch_free_,
       switch_handler_);
}

}  // namespace harmless::openflow

// openflow/messages.hpp — the controller<->switch protocol surface.
//
// The subset of OF1.3 message types the HARMLESS control plane uses,
// as plain structs in a std::variant. Wire framing (OFP headers, BER)
// is intentionally not modelled — the channel is in-process — but the
// message *semantics* (xids, barriers, flow-removed notifications,
// echo keepalives) are real, so controller apps are written exactly as
// they would be against a socket.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/bytes.hpp"
#include "openflow/flow_entry.hpp"
#include "openflow/group_table.hpp"
#include "openflow/pipeline.hpp"

namespace harmless::openflow {

struct HelloMsg {
  std::uint8_t version = 4;  // OF1.3
};

struct FeaturesRequestMsg {};

struct PortDesc {
  std::uint32_t port_no = 0;
  std::string name;
  bool up = true;
};

struct FeaturesReplyMsg {
  std::uint64_t datapath_id = 0;
  std::uint8_t table_count = 0;
  std::vector<PortDesc> ports;
};

struct FlowModMsg {
  enum class Command : std::uint8_t { kAdd, kModify, kModifyStrict, kDelete, kDeleteStrict };
  Command command = Command::kAdd;
  std::uint8_t table_id = 0;
  std::uint16_t priority = 0;
  Match match;
  Instructions instructions;
  std::uint64_t cookie = 0;
  sim::SimNanos idle_timeout = 0;
  sim::SimNanos hard_timeout = 0;
  bool check_overlap = false;
  bool send_flow_removed = false;
};

struct GroupModMsg {
  enum class Command : std::uint8_t { kAdd, kModify, kDelete };
  Command command = Command::kAdd;
  GroupEntry entry;
};

struct PacketInMsg {
  std::uint32_t in_port = 0;
  std::uint8_t table_id = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  net::Packet packet;
};

struct PacketOutMsg {
  std::uint32_t in_port = kPortAny;
  ActionList actions;
  net::Packet packet;
};

struct PortStatusMsg {
  enum class Reason : std::uint8_t { kAdd, kDelete, kModify };
  Reason reason = Reason::kModify;
  PortDesc desc;
};

struct FlowRemovedMsg {
  std::uint8_t table_id = 0;
  std::uint16_t priority = 0;
  Match match;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct FlowStatsRequestMsg {
  std::uint8_t table_id = 0xff;  // 0xff = all tables
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  std::uint16_t priority = 0;
  std::string match_text;
  std::string instructions_text;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct FlowStatsReplyMsg {
  std::vector<FlowStatsEntry> flows;
};

struct BarrierRequestMsg {
  std::uint32_t xid = 0;
};
struct BarrierReplyMsg {
  std::uint32_t xid = 0;
};
struct EchoRequestMsg {
  std::uint64_t payload = 0;
};
struct EchoReplyMsg {
  std::uint64_t payload = 0;
};
/// Sent by the switch when a mod fails (bad table id, overlap, ...).
struct ErrorMsg {
  std::string text;
};

using Message =
    std::variant<HelloMsg, FeaturesRequestMsg, FeaturesReplyMsg, FlowModMsg, GroupModMsg,
                 PacketInMsg, PacketOutMsg, PortStatusMsg, FlowRemovedMsg, FlowStatsRequestMsg,
                 FlowStatsReplyMsg, BarrierRequestMsg, BarrierReplyMsg, EchoRequestMsg,
                 EchoReplyMsg, ErrorMsg>;

/// Message type name for logs ("flow_mod", "packet_in", ...).
[[nodiscard]] const char* message_name(const Message& message);

}  // namespace harmless::openflow

// openflow/channel.hpp — the control channel between a datapath and
// its controller.
//
// In the paper SS_2 connects to the SDN controller over TCP; here the
// transport is the event engine with a configurable one-way latency
// (management networks are not free) and strictly FIFO delivery per
// direction — which is what the barrier semantics rely on.
#pragma once

#include <cstdint>
#include <functional>

#include "openflow/messages.hpp"
#include "sim/event.hpp"

namespace harmless::openflow {

class ControlChannel {
 public:
  ControlChannel(sim::Engine& engine, sim::SimNanos one_way_latency = 50'000 /*50 us*/)
      : engine_(engine), latency_(one_way_latency) {}

  // ---- datapath side ----
  void send_to_controller(Message message);
  void set_controller_handler(std::function<void(Message&&)> handler) {
    controller_handler_ = std::move(handler);
  }

  // ---- controller side ----
  void send_to_switch(Message message);
  void set_switch_handler(std::function<void(Message&&)> handler) {
    switch_handler_ = std::move(handler);
  }

  [[nodiscard]] std::uint64_t to_controller_count() const { return to_controller_count_; }
  [[nodiscard]] std::uint64_t to_switch_count() const { return to_switch_count_; }
  [[nodiscard]] sim::SimNanos latency() const { return latency_; }

 private:
  sim::Engine& engine_;
  sim::SimNanos latency_;
  std::function<void(Message&&)> controller_handler_;
  std::function<void(Message&&)> switch_handler_;
  std::uint64_t to_controller_count_ = 0;
  std::uint64_t to_switch_count_ = 0;
};

}  // namespace harmless::openflow

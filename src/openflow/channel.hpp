// openflow/channel.hpp — the control channel between a datapath and
// its controller.
//
// In the paper SS_2 connects to the SDN controller over TCP; here the
// transport is the event engine with a configurable one-way latency
// (management networks are not free) and strictly FIFO delivery per
// direction — which is what the barrier semantics rely on.
//
// The channel is failable (PR 7): it has up/down state (a management-
// network partition loses everything handed over *and* everything in
// flight), per-direction message loss probability and latency jitter
// drawn from a seeded util::Rng, and an optional per-message minimum
// gap modelling TCP + controller serialization (what makes a 10^3-flow
// resync take wall time instead of arriving as one instantaneous
// blob). Every loss is attributed: downed-channel drops, random loss,
// and messages that arrived while no handler was registered (a crashed
// controller's receive window) are counted separately per direction —
// nothing is silently lost. With the channel up and no impairment
// configured the Rng is never consulted and delivery is byte-identical
// to the infallible PR-6 channel.
#pragma once

#include <cstdint>
#include <functional>

#include "openflow/messages.hpp"
#include "sim/event.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {

/// One direction's impairment: per-message loss probability plus up to
/// `jitter_ns` of uniform extra latency per message.
struct ChannelImpairment {
  double loss = 0.0;
  sim::SimNanos jitter_ns = 0;

  [[nodiscard]] bool active() const { return loss > 0.0 || jitter_ns > 0; }
};

class ControlChannel : public sim::FaultPoint {
 public:
  ControlChannel(sim::Engine& engine, sim::SimNanos one_way_latency = 50'000 /*50 us*/,
                 std::uint64_t seed = 0xc0a7'0150'0fULL)
      : engine_(engine), latency_(one_way_latency), rng_(seed) {}

  // ---- datapath side ----
  void send_to_controller(Message message);
  void set_controller_handler(std::function<void(Message&&)> handler) {
    controller_handler_ = std::move(handler);
  }
  [[nodiscard]] bool has_controller_handler() const {
    return static_cast<bool>(controller_handler_);
  }

  // ---- controller side ----
  void send_to_switch(Message message);
  void set_switch_handler(std::function<void(Message&&)> handler) {
    switch_handler_ = std::move(handler);
  }

  // ---- failure semantics ----
  /// Partition / heal the channel (both directions — one TCP session).
  /// Downing loses in-flight messages at their delivery time too.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }

  /// Per-direction loss + jitter. (default-constructed = pristine).
  void set_impairment(ChannelImpairment to_controller, ChannelImpairment to_switch) {
    to_controller_impairment_ = to_controller;
    to_switch_impairment_ = to_switch;
  }

  /// Minimum spacing between message *deliveries* per direction — the
  /// serialization + processing budget of the management network and
  /// controller I/O loop. 0 (default) = the historical instantaneous
  /// pipe. This is what makes full-state resync time scale with the
  /// number of re-installed flows.
  void set_min_gap(sim::SimNanos gap_ns) { min_gap_ns_ = gap_ns; }
  [[nodiscard]] sim::SimNanos min_gap() const { return min_gap_ns_; }

  // sim::FaultPoint: partitions and impairments via the injector.
  void fault_set_up(bool up) override { set_up(up); }
  void fault_impair(double loss_probability, sim::SimNanos extra_latency_ns) override {
    set_impairment(ChannelImpairment{loss_probability, extra_latency_ns},
                   ChannelImpairment{loss_probability, extra_latency_ns});
  }

  /// Per-direction delivery accounting. sent == delivered + dropped_down
  /// + dropped_loss + dropped_no_handler + (messages still in flight).
  struct DirectionStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_down = 0;        // channel down at send or delivery
    std::uint64_t dropped_loss = 0;        // random impairment loss
    std::uint64_t dropped_no_handler = 0;  // arrived with no handler registered
  };
  [[nodiscard]] const DirectionStats& to_controller() const { return to_controller_stats_; }
  [[nodiscard]] const DirectionStats& to_switch() const { return to_switch_stats_; }

  /// Historical send counters (kept for existing callers; == sent).
  [[nodiscard]] std::uint64_t to_controller_count() const { return to_controller_stats_.sent; }
  [[nodiscard]] std::uint64_t to_switch_count() const { return to_switch_stats_.sent; }
  [[nodiscard]] sim::SimNanos latency() const { return latency_; }

 private:
  void send(Message&& message, DirectionStats& stats, const ChannelImpairment& impairment,
            sim::SimNanos& next_free, std::function<void(Message&&)>& handler);

  sim::Engine& engine_;
  sim::SimNanos latency_;
  sim::SimNanos min_gap_ns_ = 0;
  bool up_ = true;
  util::Rng rng_;
  ChannelImpairment to_controller_impairment_;
  ChannelImpairment to_switch_impairment_;
  sim::SimNanos to_controller_free_ = 0;
  sim::SimNanos to_switch_free_ = 0;
  std::function<void(Message&&)> controller_handler_;
  std::function<void(Message&&)> switch_handler_;
  DirectionStats to_controller_stats_;
  DirectionStats to_switch_stats_;
};

}  // namespace harmless::openflow

// openflow/group_table.hpp — OF1.3 group table.
//
// Three group types, which is all the use cases need:
//   ALL      — replicate the packet through every bucket (multicast)
//   SELECT   — pick one bucket by a deterministic weighted hash of the
//              flow key (the Load Balancer scenario)
//   INDIRECT — single bucket indirection
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "openflow/action.hpp"
#include "util/result.hpp"
#include "util/status.hpp"

namespace harmless::openflow {

enum class GroupType : std::uint8_t {
  kAll = 0,
  kSelect = 1,
  kIndirect = 2,
};

struct Bucket {
  ActionList actions;
  std::uint16_t weight = 1;  // SELECT only
  std::uint64_t packet_count = 0;
};

/// What a SELECT group hashes to pick a bucket. kFiveTuple is the
/// common switch default; kSourceIp gives the per-client stickiness
/// the paper's Load Balancer use case specifies ("based on matching of
/// the source IP address").
enum class SelectHash : std::uint8_t {
  kFiveTuple = 0,
  kSourceIp = 1,
};

struct GroupEntry {
  std::uint32_t group_id = 0;
  GroupType type = GroupType::kAll;
  SelectHash select_hash = SelectHash::kFiveTuple;
  std::vector<Bucket> buckets;
  /// SELECT only, optional: a consistent-hash indirection table of
  /// bucket indices (Maglev-style — see controller/apps/maglev.hpp for
  /// the permutation-fill builder). When non-empty, bucket choice is
  /// select_table[hash % size()] instead of the weighted scan, so a
  /// backend change remaps only the table slots that named it; weights
  /// are ignored. Entries must index into `buckets`.
  std::vector<std::uint16_t> select_table;
};

class GroupTable {
 public:
  /// OFPGC_ADD; fails if the id exists or a SELECT group has zero
  /// total weight.
  util::Status add(GroupEntry entry);

  /// OFPGC_MODIFY; fails if the id does not exist.
  util::Status modify(GroupEntry entry);

  /// OFPGC_DELETE (deleting a missing group is a no-op, per spec).
  void remove(std::uint32_t group_id);

  /// Wipe every group (a switch reboot); bumps the epoch once if any
  /// groups existed.
  void clear() {
    if (groups_.empty()) return;
    groups_.clear();
    bump_epoch();
  }

  [[nodiscard]] const GroupEntry* find(std::uint32_t group_id) const;
  GroupEntry* find_mutable(std::uint32_t group_id);

  /// For SELECT groups: choose a bucket index for the given flow hash.
  /// Deterministic: same flow -> same bucket (per-flow consistency, the
  /// property the LB use case tests). Weights bias the choice.
  [[nodiscard]] std::size_t select_bucket(const GroupEntry& entry,
                                          std::uint64_t flow_hash) const;

  [[nodiscard]] std::size_t size() const { return groups_.size(); }

  /// Wire to the pipeline-wide flow-cache epoch: any group mutation
  /// increments it so cached action programs referencing groups
  /// self-invalidate (see openflow/flow_cache.hpp).
  void bind_epoch(std::uint64_t* epoch) { epoch_ = epoch; }

 private:
  void bump_epoch() {
    if (epoch_ != nullptr) ++*epoch_;
  }

  std::map<std::uint32_t, GroupEntry> groups_;
  std::uint64_t* epoch_ = nullptr;  // shared flow-cache epoch (optional)
};

/// Hash of the fields that define a flow for SELECT balancing.
/// kFiveTuple: src/dst IP + ports + proto (eth src/dst for non-IP);
/// kSourceIp: source IP only (eth src for non-IP).
std::uint64_t flow_hash_of(const FieldView& view, SelectHash mode = SelectHash::kFiveTuple);

}  // namespace harmless::openflow

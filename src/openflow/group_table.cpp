#include "openflow/group_table.hpp"

namespace harmless::openflow {

util::Status GroupTable::add(GroupEntry entry) {
  if (groups_.contains(entry.group_id))
    return util::Status::error("group " + std::to_string(entry.group_id) + " exists");
  if (entry.buckets.empty())
    return util::Status::error("group " + std::to_string(entry.group_id) + " has no buckets");
  if (entry.type == GroupType::kSelect) {
    std::uint64_t total = 0;
    for (const Bucket& bucket : entry.buckets) total += bucket.weight;
    if (total == 0)
      return util::Status::error("SELECT group " + std::to_string(entry.group_id) +
                                 " has zero total weight");
  }
  if (entry.type == GroupType::kIndirect && entry.buckets.size() != 1)
    return util::Status::error("INDIRECT group must have exactly one bucket");
  for (const std::uint16_t index : entry.select_table)
    if (index >= entry.buckets.size())
      return util::Status::error("SELECT group " + std::to_string(entry.group_id) +
                                 " select_table entry out of range");
  groups_.emplace(entry.group_id, std::move(entry));
  bump_epoch();
  return util::Status::ok();
}

util::Status GroupTable::modify(GroupEntry entry) {
  const auto it = groups_.find(entry.group_id);
  if (it == groups_.end())
    return util::Status::error("group " + std::to_string(entry.group_id) + " does not exist");
  groups_.erase(it);
  return add(std::move(entry));
}

void GroupTable::remove(std::uint32_t group_id) {
  if (groups_.erase(group_id) > 0) bump_epoch();
}

const GroupEntry* GroupTable::find(std::uint32_t group_id) const {
  const auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

GroupEntry* GroupTable::find_mutable(std::uint32_t group_id) {
  const auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

std::size_t GroupTable::select_bucket(const GroupEntry& entry, std::uint64_t flow_hash) const {
  if (!entry.select_table.empty()) {
    // Consistent-hash indirection (Maglev): one scrambled modulo into
    // the lookup table; the table's construction carries the balancing
    // and minimal-disruption properties.
    const std::uint64_t slot =
        (flow_hash * 0x9e3779b97f4a7c15ULL) % entry.select_table.size();
    const std::size_t index = entry.select_table[static_cast<std::size_t>(slot)];
    return index < entry.buckets.size() ? index : entry.buckets.size() - 1;
  }
  std::uint64_t total = 0;
  for (const Bucket& bucket : entry.buckets) total += bucket.weight;
  if (total == 0) return 0;
  // Fibonacci scrambling decorrelates adjacent flow hashes before the
  // modulo so bucket occupancy is near-uniform even for sequential IPs.
  std::uint64_t point = (flow_hash * 0x9e3779b97f4a7c15ULL) % total;
  for (std::size_t index = 0; index < entry.buckets.size(); ++index) {
    const std::uint64_t weight = entry.buckets[index].weight;
    if (point < weight) return index;
    point -= weight;
  }
  return entry.buckets.size() - 1;
}

std::uint64_t flow_hash_of(const FieldView& view, SelectHash mode) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0;
  if (view.has(Field::kIpSrc)) {
    h = mix(h, view.get(Field::kIpSrc));
    if (mode == SelectHash::kFiveTuple) {
      h = mix(h, view.get(Field::kIpDst));
      h = mix(h, view.has(Field::kIpProto) ? view.get(Field::kIpProto) : 0);
      h = mix(h, view.has(Field::kL4Src) ? view.get(Field::kL4Src) : 0);
      h = mix(h, view.has(Field::kL4Dst) ? view.get(Field::kL4Dst) : 0);
    }
  } else {
    h = mix(h, view.has(Field::kEthSrc) ? view.get(Field::kEthSrc) : 0);
    if (mode == SelectHash::kFiveTuple)
      h = mix(h, view.has(Field::kEthDst) ? view.get(Field::kEthDst) : 0);
  }
  return h;
}

}  // namespace harmless::openflow

#include "sim/link.hpp"

#include <utility>

namespace harmless::sim {

Channel::Channel(Engine& engine, LinkSpec spec, std::string label)
    : engine_(engine), spec_(spec), label_(std::move(label)) {}

void Channel::transmit(net::Packet&& packet) {
  if (!up_) {
    ++drops_down_;
    return;
  }
  if (queued_ >= spec_.queue_capacity_packets) {
    ++drops_overflow_;
    return;
  }
  ++queued_;

  const SimNanos start = std::max(engine_.now(), transmitter_free_);
  if (packet.size() != memo_size_) {
    memo_size_ = packet.size();
    memo_serialization_ = spec_.rate.serialization_ns(memo_size_);
  }
  const SimNanos serialization = memo_serialization_;
  const SimNanos departs = start + serialization;
  const SimNanos arrives = departs + spec_.propagation_delay;
  transmitter_free_ = departs;
  busy_ns_ += serialization;

  // The slot is freed when the last bit leaves the transmitter;
  // propagation keeps the packet "in flight" but not "queued".
  engine_.schedule_at(departs, [this] { --queued_; });

  const std::size_t size = packet.size();
  engine_.schedule_at(arrives, [this, size, packet = std::move(packet)]() mutable {
    // A cable cut loses whatever was in flight: frames arriving while
    // the channel is down are downed-link drops, not deliveries.
    if (!up_) {
      ++drops_down_;
      return;
    }
    delivered_.add(size);
    if (tap_) tap_(engine_.now(), packet);
    if (sink_) sink_(std::move(packet));
  });
}

}  // namespace harmless::sim

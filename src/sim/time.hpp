// sim/time.hpp — simulated time and line rates.
//
// The simulator counts nanoseconds in a signed 64-bit integer (≈292
// years of headroom). Rates are stored as bits-per-nanosecond doubles;
// serialization delay is rounded up to a whole nanosecond so that a
// zero-cost wire is impossible unless explicitly configured.
#pragma once

#include <cmath>
#include <cstdint>

namespace harmless::sim {

using SimNanos = std::int64_t;

constexpr SimNanos operator""_ns(unsigned long long v) { return static_cast<SimNanos>(v); }
constexpr SimNanos operator""_us(unsigned long long v) { return static_cast<SimNanos>(v) * 1000; }
constexpr SimNanos operator""_ms(unsigned long long v) {
  return static_cast<SimNanos>(v) * 1000 * 1000;
}
constexpr SimNanos operator""_s(unsigned long long v) {
  return static_cast<SimNanos>(v) * 1000 * 1000 * 1000;
}

/// A transmission rate. Rate::gbps(10).serialization_ns(1500) is the
/// time the last bit leaves the NIC after the first one.
class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate gbps(double gigabits_per_second) {
    return Rate(gigabits_per_second);  // 1 Gb/s == 1 bit/ns
  }
  static constexpr Rate mbps(double megabits_per_second) {
    return Rate(megabits_per_second / 1000.0);
  }

  [[nodiscard]] constexpr double bits_per_ns() const { return bits_per_ns_; }
  [[nodiscard]] constexpr double gbps_value() const { return bits_per_ns_; }

  /// Time to clock `bytes` onto the wire. 0 only for infinite rate.
  [[nodiscard]] SimNanos serialization_ns(std::size_t bytes) const {
    if (bits_per_ns_ <= 0) return 0;
    const double ns = static_cast<double>(bytes) * 8.0 / bits_per_ns_;
    return static_cast<SimNanos>(std::ceil(ns));
  }

  [[nodiscard]] constexpr bool is_infinite() const { return bits_per_ns_ <= 0; }

 private:
  constexpr explicit Rate(double bits_per_ns) : bits_per_ns_(bits_per_ns) {}
  double bits_per_ns_ = 0;  // <= 0 means "infinitely fast"
};

}  // namespace harmless::sim

#include "sim/network.hpp"

namespace harmless::sim {

void Network::connect(Node& a, std::size_t a_port, Node& b, std::size_t b_port, LinkSpec spec) {
  a.ensure_ports(a_port + 1);
  b.ensure_ports(b_port + 1);

  auto a_to_b = std::make_unique<Channel>(
      engine_, spec, a.name() + ":" + std::to_string(a_port) + "->" + b.name());
  auto b_to_a = std::make_unique<Channel>(
      engine_, spec, b.name() + ":" + std::to_string(b_port) + "->" + a.name());

  Port& pa = a.port(a_port);
  Port& pb = b.port(b_port);
  a_to_b->set_sink([&pb](net::Packet&& packet) { pb.receive(std::move(packet)); });
  b_to_a->set_sink([&pa](net::Packet&& packet) { pa.receive(std::move(packet)); });
  pa.attach(a_to_b.get());
  pb.attach(b_to_a.get());

  // Link-state propagation: either direction going down is a cable
  // event both endpoints observe (loss-of-signal on the shared cable).
  auto notify = [&a, a_port, &b, b_port](bool up) {
    a.on_port_link(static_cast<int>(a_port), up);
    b.on_port_link(static_cast<int>(b_port), up);
  };
  a_to_b->set_state_observer(notify);
  b_to_a->set_state_observer(notify);

  channels_.push_back(std::move(a_to_b));
  channels_.push_back(std::move(b_to_a));
}

}  // namespace harmless::sim

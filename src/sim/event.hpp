// sim/event.hpp — the discrete-event engine.
//
// Events are (time, sequence)-ordered closures; sequence numbers break
// ties FIFO, which together with the seeded Rng makes every run fully
// deterministic. The dispatch order is therefore a total order, and
// the queue below is free to change *how* it finds the minimum as long
// as it never changes *which* event is the minimum.
//
// The store is a calendar queue (Brown 1988), tuned for the dominant
// event shape — service completions and link deliveries tens to
// hundreds of nanoseconds out, i.e. nearly-FIFO:
//
//   * A ring of `bucket_count` buckets, each `1 << bucket_bits` ns
//     wide. An event at time t belongs to day t >> bucket_bits and
//     lives in bucket (day & (bucket_count - 1)). The defaults (4 ns
//     buckets, a ~64 us ring) put average occupancy near one event per
//     bucket, so the per-bucket "heaps" degenerate to push_back /
//     pop_back and enqueue/dequeue are O(1) with almost no
//     data-dependent branches.
//   * Each bucket is a binary heap under the same (at, seq) comparator
//     the historical priority_queue used, so within a bucket events
//     dispatch in exactly the historical order.
//   * The cursor only advances when an event is actually dispatched,
//     which (with schedule_at clamping to now()) guarantees every
//     pending day is at or after the cursor — so a bucket holds at
//     most one distinct day at a time and the ring is a true sliding
//     window.
//   * Dequeue finds the earliest non-empty bucket through an occupancy
//     bitmap (one bit per bucket) scanned word-at-a-time with
//     count-trailing-zeros from the cursor position: a dense schedule
//     hits the first word, and a gap is skipped at 64 buckets per
//     compare — no per-event day bookkeeping at all.
//   * Events beyond the ring's window (far-future timers: expiry
//     sweeps, pacing starts, pre-scheduled arrival streams) wait in an
//     overflow heap keyed by the same comparator and migrate into the
//     ring as the window advances past their admission day. The
//     dequeue path dispatches min(earliest ring event, earliest
//     overflow event), migrating first when overflow is due, so the
//     total order is preserved exactly.
//
// Closures are stored as util::InlineFunction: no per-event heap
// allocation, and move-only captures (a pooled net::Packet) are legal.
// The closures live in a chunked slab with a free list, off to the
// side of the heaps: heap elements are 24-byte {at, seq, slot} PODs,
// so a sift moves three words instead of a 128-byte Event through an
// indirect relocate call. Chunks never move once allocated, so a
// closure is relocated exactly once (into its slot at schedule time)
// and then *invoked in place* at dispatch — even if running it
// schedules more events and grows the slab.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/inline_function.hpp"

namespace harmless::sim {

/// An event closure: anything invocable as void(). Move-only captures
/// are fine; captures up to ~100 bytes are stored without allocating.
using EventFn = util::InlineFunction;

/// Calendar-queue tuning (EXPERIMENTS.md "engine profiling" documents
/// the trade-offs). Events farther than bucket_width * bucket_count ns
/// ahead of the cursor overflow into the fallback heap — that product
/// is the implicit overflow threshold.
struct CalendarConfig {
  /// log2 of the bucket width in ns (2 -> 4 ns per bucket — the scale
  /// of the inter-event gap in a loaded fabric, keeping occupancy ~1).
  unsigned bucket_bits = 2;
  /// Ring size; rounded up to a power of two. Defaults span ~64 us,
  /// which covers service completions and link deliveries; ms-scale
  /// timers ride the overflow heap.
  std::size_t bucket_count = 16384;
};

class Engine {
 public:
  Engine() : Engine(CalendarConfig{}) {}
  explicit Engine(const CalendarConfig& config);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimNanos now() const { return now_; }
  [[nodiscard]] const CalendarConfig& calendar() const { return config_; }

  /// Schedule `fn` at absolute time `at` (clamped to now, never in the
  /// past).
  void schedule_at(SimNanos at, EventFn fn) {
    const std::uint32_t slot = alloc_slot();
    fn_slot(slot) = std::move(fn);
    commit(at, slot);
  }

  /// Callable overload: constructs the closure directly in its slab
  /// slot (no intermediate EventFn, no relocation — a captured Packet
  /// is moved exactly once).
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>, int> = 0>
  void schedule_at(SimNanos at, F&& fn) {
    const std::uint32_t slot = alloc_slot();
    fn_slot(slot).emplace(std::forward<F>(fn));
    commit(at, slot);
  }

  /// Schedule `fn` `delay` ns from now.
  template <typename F>
  void schedule_after(SimNanos delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Run the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= `deadline`; leaves later events queued and
  /// advances now() to the deadline.
  void run_until(SimNanos deadline);

  [[nodiscard]] std::size_t pending() const {
    return calendar_size_ + overflow_sorted_.size() + overflow_staging_.size();
  }

  /// Capacity hint: the expected number of concurrently pending events
  /// (FabricSpec wires its own estimate through). Pre-sizes the closure
  /// slab so steady state never grows it mid-run; buckets keep their
  /// (small) capacity across steps regardless.
  void reserve(std::size_t expected_pending);

  /// Monotone packet-id source shared by every generator in a network.
  std::uint64_t next_packet_id() { return ++last_packet_id_; }

  /// Total events dispatched (engine work metric for benches).
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  /// A heap element: the ordering key plus the index of the closure in
  /// `fns_`. Kept POD-small so heap sifts are three-word moves.
  struct Event {
    SimNanos at;
    std::uint64_t seq;
    std::uint32_t fn;
  };
  /// The historical comparator, verbatim: min-(at, seq) under the
  /// priority-queue convention. Bucket heaps and the overflow heap both
  /// order with it, so dispatch order is bit-identical to the old
  /// single-heap engine (tests/property/engine_equivalence_test.cpp).
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  using Bucket = std::vector<Event>;

  /// Closures per slab chunk. Chunk addresses are stable, so dispatch
  /// can invoke a closure in place while it schedules new events.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] std::uint64_t day_of(SimNanos at) const {
    return static_cast<std::uint64_t>(at) >> config_.bucket_bits;
  }
  [[nodiscard]] EventFn& fn_slot(std::uint32_t slot) {
    return fn_chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  /// Claim a free slab slot (fast path: pop the free list).
  std::uint32_t alloc_slot() {
    if (!free_fns_.empty()) {
      const std::uint32_t slot = free_fns_.back();
      free_fns_.pop_back();
      return slot;
    }
    return grow_slot();
  }
  /// Cold path: append a fresh slot (and chunk, when needed).
  std::uint32_t grow_slot();
  /// Assign `slot` its (time, seq) key and enqueue it.
  void commit(SimNanos at, std::uint32_t slot);
  void push_calendar(Event event);
  /// The earliest far-future event across the sorted store and the
  /// staging area (nullptr when both are empty).
  [[nodiscard]] const Event* overflow_min() const;
  /// Sort the staging area into overflow_sorted_ (descending, minimum
  /// at the back).
  void flush_overflow();
  /// Pull every overflow event whose day the ring now covers.
  void migrate_overflow();
  /// First non-empty bucket at or after the cursor in day order (the
  /// occupancy-bitmap scan). Requires calendar_size_ > 0.
  [[nodiscard]] Bucket* scan_ring();
  /// The bucket holding the next event to dispatch, with its admission
  /// window advanced — or nullptr when the engine is empty or the next
  /// event is past `deadline` (in which case no state changes, so the
  /// cursor never overruns an undispatched event).
  [[nodiscard]] Bucket* next_bucket(SimNanos deadline);
  /// Pop the minimum of the cursor bucket and dispatch it.
  void dispatch_from(Bucket& bucket);

  CalendarConfig config_;
  SimNanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_packet_id_ = 0;
  std::uint64_t events_dispatched_ = 0;

  std::vector<Bucket> buckets_;
  /// One bit per bucket: set while the bucket is non-empty. The dequeue
  /// scan jumps empty stretches 64 buckets at a time.
  std::vector<std::uint64_t> occupied_;
  std::uint64_t bucket_mask_ = 0;
  /// The ring's admission window floor: schedule_at sends days at or
  /// beyond cursor_day_ + bucket_count to overflow_. Advanced only when
  /// an event is dispatched (to that event's day) or overflow is
  /// migrated (to the overflow minimum's day), so every pending day is
  /// >= cursor_day_ and each bucket holds at most one day.
  std::uint64_t cursor_day_ = 0;
  std::size_t calendar_size_ = 0;
  /// Far-future store: descending (at, seq) order, minimum at the
  /// back, so migration is pop_back. New far-future events append to
  /// the unsorted staging area (with a running minimum) and merge in
  /// lazily — a pre-scheduled arrival stream costs one sort at run
  /// start instead of a heap sift per push and per pop.
  std::vector<Event> overflow_sorted_;
  std::vector<Event> overflow_staging_;
  Event staging_min_{};
  /// Closure slab: heap elements reference slots here by index. Fixed
  /// chunks (never reallocated) keep slot addresses stable across
  /// growth, so dispatch runs the closure in its slot and recycles the
  /// slot through `free_fns_` afterwards — no move-out per event.
  std::vector<std::unique_ptr<EventFn[]>> fn_chunks_;
  std::size_t fn_count_ = 0;
  std::vector<std::uint32_t> free_fns_;
};

}  // namespace harmless::sim

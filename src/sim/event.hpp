// sim/event.hpp — the discrete-event engine.
//
// A single min-heap of (time, sequence) ordered closures. Sequence
// numbers break ties FIFO, which together with the seeded Rng makes
// every run fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace harmless::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimNanos now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now, never in the
  /// past).
  void schedule_at(SimNanos at, std::function<void()> fn);

  /// Schedule `fn` `delay` ns from now.
  void schedule_after(SimNanos delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= `deadline`; leaves later events queued and
  /// advances now() to the deadline.
  void run_until(SimNanos deadline);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Monotone packet-id source shared by every generator in a network.
  std::uint64_t next_packet_id() { return ++last_packet_id_; }

  /// Total events dispatched (engine work metric for benches).
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Event {
    SimNanos at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimNanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_packet_id_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace harmless::sim

#include "sim/scheduler.hpp"

namespace harmless::sim {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kRoundRobin: return "rr";
    case SchedulerKind::kDrr: return "drr";
  }
  return "?";
}

const char* to_string(RssPolicy policy) {
  switch (policy) {
    case RssPolicy::kHash: return "hash";
    case RssPolicy::kStride: return "stride";
    case RssPolicy::kSymmetric: return "symmetric";
  }
  return "?";
}

std::unique_ptr<BurstScheduler> make_scheduler(const SchedulerSpec& spec) {
  switch (spec.kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(spec.rr_quantum_packets);
    case SchedulerKind::kDrr:
      return std::make_unique<DrrScheduler>(spec.drr_quantum_bytes,
                                            spec.drr_port_quantum_bytes);
  }
  return std::make_unique<FcfsScheduler>();
}

void FcfsScheduler::next_burst(const std::vector<RxQueue*>& queues, std::size_t budget,
                               Burst& out) {
  // One sweep collects the backlogged queues; the pop loop then only
  // touches those. The common case — a single busy port — drains at
  // deque speed instead of rescanning the whole port array per packet.
  backlogged_.clear();
  for (RxQueue* queue : queues)
    if (!queue->empty()) backlogged_.push_back(queue);
  if (backlogged_.size() == 1) {
    RxQueue& queue = *backlogged_.front();
    while (out.size() < budget && !queue.empty())
      out.emplace_back(queue.in_port(), queue.pop());
    return;
  }
  while (out.size() < budget && !backlogged_.empty()) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < backlogged_.size(); ++i)
      if (backlogged_[i]->front().seq < backlogged_[oldest]->front().seq) oldest = i;
    out.emplace_back(backlogged_[oldest]->in_port(), backlogged_[oldest]->pop());
    if (backlogged_[oldest]->empty())
      backlogged_.erase(backlogged_.begin() + static_cast<std::ptrdiff_t>(oldest));
  }
}

void RoundRobinScheduler::next_burst(const std::vector<RxQueue*>& queues, std::size_t budget,
                                     Burst& out) {
  if (queues.empty()) return;
  if (cursor_ >= queues.size()) cursor_ = 0;
  std::size_t empty_streak = 0;
  while (out.size() < budget && empty_streak < queues.size()) {
    RxQueue& queue = *queues[cursor_];
    if (queue.empty()) {
      ++empty_streak;
      cursor_ = (cursor_ + 1) % queues.size();
      continue;
    }
    empty_streak = 0;
    for (std::size_t granted = 0;
         granted < quantum_ && out.size() < budget && !queue.empty(); ++granted)
      out.emplace_back(queue.in_port(), queue.pop());
    cursor_ = (cursor_ + 1) % queues.size();
  }
}

void DrrScheduler::next_burst(const std::vector<RxQueue*>& queues, std::size_t budget,
                              Burst& out) {
  if (queues.empty()) return;
  if (deficit_.size() < queues.size()) deficit_.resize(queues.size(), 0);
  if (cursor_ >= queues.size()) {
    cursor_ = 0;
    mid_visit_ = false;
  }
  std::size_t empty_streak = 0;
  while (out.size() < budget && empty_streak < queues.size()) {
    RxQueue& queue = *queues[cursor_];
    if (queue.empty()) {
      deficit_[cursor_] = 0;  // an idle port forfeits banked credit
      mid_visit_ = false;
      ++empty_streak;
      cursor_ = (cursor_ + 1) % queues.size();
      continue;
    }
    empty_streak = 0;
    if (!mid_visit_)
      deficit_[cursor_] += quantum_for(static_cast<std::size_t>(queue.in_port()));
    mid_visit_ = false;
    while (!queue.empty() && out.size() < budget &&
           queue.front().packet.size() <= deficit_[cursor_]) {
      deficit_[cursor_] -= queue.front().packet.size();
      out.emplace_back(queue.in_port(), queue.pop());
    }
    if (queue.empty()) {
      deficit_[cursor_] = 0;
      cursor_ = (cursor_ + 1) % queues.size();
      continue;
    }
    if (out.size() >= budget && queue.front().packet.size() <= deficit_[cursor_]) {
      // The burst budget, not the deficit, ended this visit: resume
      // the same queue on its remaining credit next burst.
      mid_visit_ = true;
      return;
    }
    cursor_ = (cursor_ + 1) % queues.size();
  }
}

}  // namespace harmless::sim

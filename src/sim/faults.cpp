#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace harmless::sim {

FaultPlan& FaultPlan::down(const std::string& target, SimNanos at, SimNanos duration) {
  events.push_back(FaultEvent{at, FaultEvent::Kind::kDown, target});
  if (duration > 0) events.push_back(FaultEvent{at + duration, FaultEvent::Kind::kUp, target});
  return *this;
}

FaultPlan& FaultPlan::up(const std::string& target, SimNanos at) {
  events.push_back(FaultEvent{at, FaultEvent::Kind::kUp, target});
  return *this;
}

FaultPlan& FaultPlan::impair(const std::string& target, SimNanos at, double loss,
                             SimNanos extra_latency, SimNanos duration) {
  events.push_back(FaultEvent{at, FaultEvent::Kind::kImpair, target, loss, extra_latency});
  if (duration > 0)
    events.push_back(FaultEvent{at + duration, FaultEvent::Kind::kImpair, target, 0.0, 0});
  return *this;
}

FaultPlan& FaultPlan::crash(const std::string& target, SimNanos at, SimNanos duration) {
  events.push_back(FaultEvent{at, FaultEvent::Kind::kCrash, target});
  if (duration > 0)
    events.push_back(FaultEvent{at + duration, FaultEvent::Kind::kRestart, target});
  return *this;
}

FaultPlan& FaultPlan::restart(const std::string& target, SimNanos at) {
  events.push_back(FaultEvent{at, FaultEvent::Kind::kRestart, target});
  return *this;
}

namespace {

/// Shared generator for the random schedule helpers: `count` windows of
/// (start, duration) inside [begin, end), exponential durations.
template <typename EmitFn>
void random_windows(std::uint64_t seed, std::uint64_t stream, std::size_t count,
                    SimNanos window_begin, SimNanos window_end, SimNanos mean_duration,
                    EmitFn&& emit) {
  if (count == 0 || window_end <= window_begin) return;
  // Distinct deterministic stream per helper call: same plan, same
  // events, regardless of how many other helpers ran before.
  util::Rng rng(seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
  const auto window = static_cast<std::uint64_t>(window_end - window_begin);
  for (std::size_t i = 0; i < count; ++i) {
    const SimNanos start = window_begin + static_cast<SimNanos>(rng.below(window));
    SimNanos duration = static_cast<SimNanos>(
        std::llround(rng.exponential(static_cast<double>(std::max<SimNanos>(mean_duration, 1)))));
    duration = std::clamp<SimNanos>(duration, 1, window_end - start);
    emit(start, duration);
  }
}

}  // namespace

FaultPlan& FaultPlan::random_outages(const std::string& target, std::size_t count,
                                     SimNanos window_begin, SimNanos window_end,
                                     SimNanos mean_duration) {
  random_windows(seed, random_draws_++, count, window_begin, window_end, mean_duration,
                 [&](SimNanos start, SimNanos duration) { down(target, start, duration); });
  return *this;
}

FaultPlan& FaultPlan::random_crashes(const std::string& target, std::size_t count,
                                     SimNanos window_begin, SimNanos window_end,
                                     SimNanos mean_duration) {
  random_windows(seed, random_draws_++, count, window_begin, window_end, mean_duration,
                 [&](SimNanos start, SimNanos duration) { crash(target, start, duration); });
  return *this;
}

void FaultInjector::register_link(const std::string& name, Channel& channel) {
  if (points_.count(name) != 0)
    throw util::ConfigError("FaultInjector: link target '" + name +
                            "' would shadow an existing fault point");
  auto& channels = links_[name];
  if (std::find(channels.begin(), channels.end(), &channel) != channels.end())
    throw util::ConfigError("FaultInjector: channel already registered under link target '" +
                            name + "'");
  channels.push_back(&channel);
}

void FaultInjector::register_point(const std::string& name, FaultPoint& point) {
  if (links_.count(name) != 0)
    throw util::ConfigError("FaultInjector: point target '" + name +
                            "' would shadow an existing link");
  auto& points = points_[name];
  if (std::find(points.begin(), points.end(), &point) != points.end())
    throw util::ConfigError("FaultInjector: point already registered under target '" + name +
                            "'");
  points.push_back(&point);
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    if (!has_target(event.target))
      throw util::ConfigError("FaultInjector: unknown fault target '" + event.target + "'");
    ++stats_.armed;
    // By-value capture: the plan need not outlive arm().
    engine_.schedule_at(event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  ++stats_.fired;
  const auto link_it = links_.find(event.target);
  const auto point_it = points_.find(event.target);
  switch (event.kind) {
    case FaultEvent::Kind::kDown:
    case FaultEvent::Kind::kUp: {
      const bool up = event.kind == FaultEvent::Kind::kUp;
      if (link_it != links_.end())
        for (Channel* channel : link_it->second) channel->set_up(up);
      if (point_it != points_.end())
        for (FaultPoint* point : point_it->second) point->fault_set_up(up);
      break;
    }
    case FaultEvent::Kind::kImpair:
      if (point_it != points_.end())
        for (FaultPoint* point : point_it->second)
          point->fault_impair(event.loss, event.extra_latency);
      break;
    case FaultEvent::Kind::kCrash:
      if (point_it != points_.end())
        for (FaultPoint* point : point_it->second) point->fault_crash();
      break;
    case FaultEvent::Kind::kRestart:
      if (point_it != points_.end())
        for (FaultPoint* point : point_it->second) point->fault_restart();
      break;
  }
}

}  // namespace harmless::sim

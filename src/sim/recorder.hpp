// sim/recorder.hpp — end-to-end measurement helpers.
//
// LatencyRecorder correlates packet ids between send and receive sides
// and accumulates one-way latency plus per-packet processing cost into
// histograms. Hosts call arm()/complete(); benches read the summaries.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/id_map.hpp"
#include "util/stats.hpp"

namespace harmless::sim {

class LatencyRecorder {
 public:
  /// Register a packet at transmission time.
  void arm(std::uint64_t packet_id, SimNanos sent_at);

  /// Mark delivery; returns false for unknown ids (e.g. flooded copies
  /// already completed once — only the first delivery counts).
  bool complete(const net::Packet& packet, SimNanos received_at);

  [[nodiscard]] const util::Histogram& latency() const { return latency_ns_; }
  [[nodiscard]] const util::Histogram& processing() const { return processing_ns_; }
  [[nodiscard]] const util::Histogram& hops() const { return hops_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t outstanding() const { return in_flight_.size(); }
  [[nodiscard]] SimNanos first_sent() const { return first_sent_; }
  [[nodiscard]] SimNanos last_received() const { return last_received_; }

  void clear();

 private:
  util::IdMap<std::int64_t> in_flight_;
  util::Histogram latency_ns_;
  util::Histogram processing_ns_;
  util::Histogram hops_;
  std::uint64_t completed_ = 0;
  SimNanos first_sent_ = -1;
  SimNanos last_received_ = 0;
};

}  // namespace harmless::sim

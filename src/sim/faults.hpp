// sim/faults.hpp — the deterministic fault-injection layer.
//
// A FaultPlan is a declarative schedule of failures — link flaps,
// control-channel partitions, loss/latency impairments, controller or
// switch crash+restart windows — and the FaultInjector compiles it
// into ordinary engine events against *registered* targets. Nothing
// here knows about OpenFlow or soft switches: higher layers register
// sim::Channels (wires) under names, and anything else that can fail
// implements the FaultPoint seam below (ControlChannel, SoftSwitch,
// Controller all do).
//
// Determinism is the whole point: a plan's random helpers draw from a
// util::Rng seeded by FaultPlan::seed at *build* time, the compiled
// events ride the engine's (at, seq) total order like any other event,
// and no wall-clock or global randomness exists anywhere — the same
// plan against the same fabric replays bit-identically, which is what
// the chaos property suite (tests/property/fault_equivalence_test.cpp)
// asserts. An empty plan arms nothing and perturbs nothing: a fabric
// with a registered injector and no events is byte-identical to one
// without the injector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/link.hpp"
#include "sim/time.hpp"

namespace harmless::sim {

/// The seam a failable component exposes to the injector. Default
/// implementations ignore verbs that make no sense for the component
/// (a wire cannot "crash"; a switch cannot "lose 10% of messages").
class FaultPoint {
 public:
  virtual ~FaultPoint() = default;
  /// Partition / restore (links, control channels). Down means every
  /// message or frame handed over — or in flight — is lost.
  virtual void fault_set_up(bool up) { (void)up; }
  /// Transient impairment: per-message loss probability plus up to
  /// `extra_latency_ns` of uniform added latency. (0, 0) clears it.
  virtual void fault_impair(double loss_probability, SimNanos extra_latency_ns) {
    (void)loss_probability;
    (void)extra_latency_ns;
  }
  /// Hard crash: the component loses its volatile state and stops
  /// responding until fault_restart().
  virtual void fault_crash() {}
  /// Restart complete: the component boots back up (and, for OpenFlow
  /// components, re-handshakes / resyncs on its own).
  virtual void fault_restart() {}
};

/// One compiled fault action at an absolute simulated time.
struct FaultEvent {
  enum class Kind : std::uint8_t { kDown, kUp, kImpair, kCrash, kRestart };
  SimNanos at = 0;
  Kind kind = Kind::kDown;
  std::string target;
  double loss = 0.0;             // kImpair
  SimNanos extra_latency = 0;    // kImpair
};

/// A declarative failure schedule. Build it with the fluent helpers
/// (each returns *this) or push FaultEvents directly; the random
/// helpers expand deterministically from `seed` at call time.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Take `target` down at `at`; with duration > 0 bring it back up at
  /// `at + duration` automatically.
  FaultPlan& down(const std::string& target, SimNanos at, SimNanos duration = 0);
  FaultPlan& up(const std::string& target, SimNanos at);

  /// Impair `target` (loss probability + latency jitter) from `at`;
  /// with duration > 0 the impairment clears at `at + duration`.
  FaultPlan& impair(const std::string& target, SimNanos at, double loss,
                    SimNanos extra_latency, SimNanos duration = 0);

  /// Crash `target` at `at`; with duration > 0 it restarts at
  /// `at + duration` (0 = stays dead).
  FaultPlan& crash(const std::string& target, SimNanos at, SimNanos duration = 0);
  FaultPlan& restart(const std::string& target, SimNanos at);

  /// `count` random outages of `target` inside [window_begin,
  /// window_end): start times uniform in the window, durations
  /// exponential with mean `mean_duration` (clamped to at least 1 ns
  /// and to the window end). Deterministic from `seed` and the number
  /// of random events already planned.
  FaultPlan& random_outages(const std::string& target, std::size_t count,
                            SimNanos window_begin, SimNanos window_end,
                            SimNanos mean_duration);

  /// Like random_outages but crash+restart windows (controller or
  /// switch restarts) instead of partitions.
  FaultPlan& random_crashes(const std::string& target, std::size_t count,
                            SimNanos window_begin, SimNanos window_end,
                            SimNanos mean_duration);

 private:
  std::uint64_t random_draws_ = 0;  // offsets the seed stream per helper call
};

/// Compiles FaultPlans into engine events against registered targets.
/// Registering is cheap and armless; only arm() schedules anything.
class FaultInjector {
 public:
  explicit FaultInjector(Engine& engine) : engine_(engine) {}

  /// Register a wire under `name`. Call repeatedly to group several
  /// *distinct* channels (both directions of a duplex link, every leg
  /// of a bonded trunk) under one target name — a kDown hits them all.
  /// Re-registering the same channel under the same name, or reusing a
  /// name already taken by a FaultPoint, throws util::ConfigError —
  /// a silently shadowed target would make a chaos schedule lie.
  void register_link(const std::string& name, Channel& channel);

  /// Register any FaultPoint (control channel, switch, controller)
  /// under `name`. Multiple distinct points may share a name; the same
  /// duplicate/cross-type guards as register_link() apply.
  void register_point(const std::string& name, FaultPoint& point);

  [[nodiscard]] bool has_target(const std::string& name) const {
    return links_.count(name) != 0 || points_.count(name) != 0;
  }

  /// Every registered target name, in deterministic sorted order
  /// (links and points merged — the registration guard keeps the two
  /// namespaces disjoint, so a plain merge cannot duplicate). Chaos
  /// schedules over auto-registered topologies draw from this instead
  /// of hard-coding names.
  [[nodiscard]] std::vector<std::string> target_names() const {
    std::vector<std::string> names;
    names.reserve(links_.size() + points_.size());
    for (const auto& [name, channels] : links_) names.push_back(name);
    for (const auto& [name, points] : points_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
  }

  /// Compile `plan` into engine events (scheduled at their absolute
  /// times, clamped to now like every event). Unknown targets throw
  /// util::ConfigError — a chaos schedule that silently does nothing
  /// is worse than a crash.
  void arm(const FaultPlan& plan);

  struct Stats {
    std::uint64_t armed = 0;  // events compiled and scheduled
    std::uint64_t fired = 0;  // events whose time has come
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void apply(const FaultEvent& event);

  Engine& engine_;
  std::map<std::string, std::vector<Channel*>> links_;
  std::map<std::string, std::vector<FaultPoint*>> points_;
  Stats stats_;
};

}  // namespace harmless::sim

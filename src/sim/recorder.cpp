#include "sim/recorder.hpp"

namespace harmless::sim {

void LatencyRecorder::arm(std::uint64_t packet_id, SimNanos sent_at) {
  in_flight_.insert_or_assign(packet_id, sent_at);
  if (first_sent_ < 0 || sent_at < first_sent_) first_sent_ = sent_at;
}

bool LatencyRecorder::complete(const net::Packet& packet, SimNanos received_at) {
  std::int64_t sent_at = 0;
  if (!in_flight_.take(packet.id(), &sent_at)) return false;
  latency_ns_.add(static_cast<double>(received_at - sent_at));
  processing_ns_.add(static_cast<double>(packet.processing_ns()));
  hops_.add(static_cast<double>(packet.hops()));
  ++completed_;
  last_received_ = std::max(last_received_, received_at);
  return true;
}

void LatencyRecorder::clear() {
  in_flight_.clear();
  latency_ns_.clear();
  processing_ns_.clear();
  hops_.clear();
  completed_ = 0;
  first_sent_ = -1;
  last_received_ = 0;
}

}  // namespace harmless::sim

#include "sim/host.hpp"

#include <utility>

#include "util/strings.hpp"

namespace harmless::sim {

Host::Host(Engine& engine, std::string name, net::MacAddr mac, net::Ipv4Addr ip)
    : Node(engine, std::move(name)), mac_(mac), ip_(ip) {
  ensure_ports(1);
}

void Host::send(net::Packet&& packet) {
  packet.set_id(engine_.next_packet_id());
  packet.set_created_at(engine_.now());
  if (recorder_) recorder_->arm(packet.id(), engine_.now());
  ++counters_.tx_total;
  port(0).send(std::move(packet));
}

void Host::handle(int /*in_port*/, net::Packet&& packet) {
  // Reuse the interned parse when the delivering switch already paid
  // for it (the zero-copy output path hands the frame over intact).
  // Nothing below mutates the frame, so the reference stays valid.
  const net::ParsedPacket& parsed = net::parse_cached(packet).parsed;

  // NIC destination filter: unicast frames for someone else are dropped
  // before the stack sees them (flooded copies on shared segments).
  if (!promiscuous_ && parsed.l2_valid && !parsed.eth_dst.is_multicast() &&
      parsed.eth_dst != mac_) {
    ++counters_.rx_filtered;
    return;
  }

  ++counters_.rx_total;
  if (recorder_) recorder_->complete(packet, engine_.now());

  if (parsed.udp) ++counters_.rx_udp;
  if (parsed.tcp) ++counters_.rx_tcp;
  if (parsed.icmp && parsed.icmp->type == net::IcmpType::kEchoReply)
    ++counters_.rx_icmp_echo_reply;
  if (parsed.arp && parsed.arp->op == net::ArpOp::kReply) ++counters_.rx_arp_reply;

  if (parsed.tcp) {
    // as_const: the mutable frame() overload would drop the intern.
    const std::string_view payload = net::l4_payload(parsed, std::as_const(packet).frame());
    if (util::starts_with(payload, "HTTP/1.1 200")) ++counters_.http_ok_received;
    if (util::starts_with(payload, "HTTP/1.1 403")) ++counters_.http_forbidden_received;
  }

  if (rx_log_.size() < rx_log_capacity_) rx_log_.push_back(parsed);

  maybe_respond(parsed, packet);
  if (on_receive_) on_receive_(packet, parsed);
}

void Host::maybe_respond(const net::ParsedPacket& parsed, const net::Packet& packet) {
  // ARP responder: answer requests that target our IP.
  if (arp_responder_ && parsed.arp && parsed.arp->op == net::ArpOp::kRequest &&
      parsed.arp->target_ip == ip_) {
    send(net::make_arp_reply(mac_, ip_, parsed.arp->sender_mac, parsed.arp->sender_ip));
    return;
  }

  // ICMP echo responder.
  if (icmp_responder_ && parsed.icmp && parsed.icmp->type == net::IcmpType::kEchoRequest &&
      parsed.ipv4 && parsed.ipv4->dst == ip_) {
    net::FlowKey reply;
    reply.eth_src = mac_;
    reply.eth_dst = parsed.eth_src;
    reply.ip_src = ip_;
    reply.ip_dst = parsed.ipv4->src;
    send(net::make_icmp_echo(reply, /*request=*/false, parsed.icmp->identifier,
                             parsed.icmp->sequence));
    return;
  }

  // HTTP server: one-segment request/response exchange.
  if (http_port_ && parsed.tcp && parsed.tcp->dst_port == *http_port_ && parsed.ipv4 &&
      parsed.ipv4->dst == ip_) {
    const std::string_view payload = net::l4_payload(parsed, packet.frame());
    if (util::starts_with(payload, "GET ")) {
      ++counters_.http_requests_served;
      net::FlowKey reply;
      reply.eth_src = mac_;
      reply.eth_dst = parsed.eth_src;
      reply.ip_src = ip_;
      reply.ip_dst = parsed.ipv4->src;
      reply.src_port = parsed.tcp->dst_port;
      reply.dst_port = parsed.tcp->src_port;
      send(net::make_tcp(reply, net::kTcpPsh | net::kTcpAck,
                         "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"));
    }
  }
}

void Host::serve_http(std::uint16_t tcp_port) { http_port_ = tcp_port; }

void Host::send_udp_stream(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::size_t count,
                           std::size_t frame_size, SimNanos interval, SimNanos start,
                           std::uint16_t dst_port) {
  for (std::size_t i = 0; i < count; ++i) {
    const SimNanos at = start + static_cast<SimNanos>(i) * interval;
    engine_.schedule_at(at, [this, dst_mac, dst_ip, frame_size, dst_port, i] {
      net::FlowKey flow;
      flow.eth_src = mac_;
      flow.eth_dst = dst_mac;
      flow.ip_src = ip_;
      flow.ip_dst = dst_ip;
      flow.src_port = static_cast<std::uint16_t>(10000 + (i % 50000));
      flow.dst_port = dst_port;
      send(net::make_udp(flow, frame_size));
    });
  }
}

void Host::http_get(net::MacAddr server_mac, net::Ipv4Addr server_ip, std::string_view http_host,
                    std::string_view path, std::uint16_t server_port) {
  net::FlowKey flow;
  flow.eth_src = mac_;
  flow.eth_dst = server_mac;
  flow.ip_src = ip_;
  flow.ip_dst = server_ip;
  flow.src_port = next_src_port_++;
  if (next_src_port_ < 40000) next_src_port_ = 40000;  // wrap within ephemeral range
  flow.dst_port = server_port;
  send(net::make_http_get(flow, http_host, path));
}

void Host::arp_request(net::Ipv4Addr target_ip) {
  send(net::make_arp_request(mac_, ip_, target_ip));
}

}  // namespace harmless::sim

#include "sim/node.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace harmless::sim {

void Port::send(net::Packet&& packet) {
  tx.add(packet.size());
  if (out_ == nullptr) {
    ++tx_unwired_drops;
    return;
  }
  out_->transmit(std::move(packet));
}

void Port::receive(net::Packet&& packet) {
  rx.add(packet.size());
  owner_->handle(index_, std::move(packet));
}

void Node::ensure_ports(std::size_t count) {
  while (ports_.size() < count)
    ports_.push_back(std::make_unique<Port>(*this, static_cast<int>(ports_.size())));
}

Port& Node::port(std::size_t index) {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

const Port& Node::port(std::size_t index) const {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

void ServicedNode::handle(int in_port, net::Packet&& packet) {
  if (queue_.size() >= queue_capacity_) {
    ++queue_drops_;
    return;
  }
  queue_.emplace_back(in_port, std::move(packet));
  if (!draining_) {
    draining_ = true;
    engine_.schedule_at(std::max(engine_.now(), busy_until_), [this] { drain(); });
  }
}

void ServicedNode::emit(std::size_t out_port, net::Packet&& packet) {
  if (!in_service_)
    throw util::ConfigError(name() + ": emit() called outside service()");
  pending_out_.emplace_back(out_port, std::move(packet));
}

void ServicedNode::drain() {
  if (queue_.empty()) {
    draining_ = false;
    return;
  }

  in_service_ = true;
  pending_out_.clear();
  SimNanos cost = 0;
  if (burst_size_ <= 1) {
    // Per-packet mode: bit-for-bit the classic single-server queue.
    auto [in_port, packet] = std::move(queue_.front());
    queue_.pop_front();
    cost = service(in_port, std::move(packet));
  } else {
    const std::size_t count = std::min(queue_.size(), burst_size_);
    Burst burst;
    burst.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      burst.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    cost = service_burst(std::move(burst));
  }
  in_service_ = false;
  ++bursts_served_;

  busy_ns_ += cost;
  busy_until_ = engine_.now() + cost;

  // Outputs leave when the burst finishes processing (a tx burst);
  // each carries the compute cost it accrued in its metadata (the
  // service implementation charges it).
  if (!pending_out_.empty()) {
    auto outputs = std::move(pending_out_);
    pending_out_.clear();
    engine_.schedule_at(busy_until_, [this, outputs = std::move(outputs)]() mutable {
      for (auto& [out_port, out_packet] : outputs)
        transmit(out_port, std::move(out_packet));
    });
  }

  // Serve the next packet when this one's service time elapses.
  engine_.schedule_at(busy_until_, [this] { drain(); });
}

}  // namespace harmless::sim

#include "sim/node.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace harmless::sim {

void Port::send(net::Packet&& packet) {
  tx.add(packet.size());
  if (out_ == nullptr) {
    ++tx_unwired_drops;
    return;
  }
  out_->transmit(std::move(packet));
}

void Port::receive(net::Packet&& packet) {
  rx.add(packet.size());
  owner_->handle(index_, std::move(packet));
}

void Node::ensure_ports(std::size_t count) {
  while (ports_.size() < count)
    ports_.push_back(std::make_unique<Port>(*this, static_cast<int>(ports_.size())));
}

Port& Node::port(std::size_t index) {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

const Port& Node::port(std::size_t index) const {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

void ServicedNode::ensure_rx_queues(std::size_t count) {
  while (rx_queues_.size() < count)
    rx_queues_.emplace_back(static_cast<int>(rx_queues_.size()));
}

RxQueue& ServicedNode::rx_queue_for(int in_port) {
  const auto index = static_cast<std::size_t>(in_port < 0 ? 0 : in_port);
  ensure_rx_queues(index + 1);
  return rx_queues_[index];
}

void ServicedNode::handle(int in_port, net::Packet&& packet) {
  RxQueue& queue = rx_queue_for(in_port);
  // Admission: the shared buffer bound applies always (exactly the
  // historical shared-FIFO drop rule); the per-port bound, when set,
  // partitions that buffer so one port's backlog cannot crowd out
  // another port's admissions.
  if (total_depth_ >= ingress_.queue_capacity ||
      (ingress_.port_queue_capacity > 0 && queue.depth() >= ingress_.port_queue_capacity)) {
    queue.count_drop();
    ++queue_drops_;
    return;
  }
  queue.push(arrival_seq_++, std::move(packet));
  ++total_depth_;
  if (!draining_) {
    draining_ = true;
    engine_.schedule_at(std::max(engine_.now(), busy_until_), [this] { drain(); });
  }
}

void ServicedNode::emit(std::size_t out_port, net::Packet&& packet) {
  if (!in_service_)
    throw util::ConfigError(name() + ": emit() called outside service()");
  pending_out_.emplace_back(out_port, std::move(packet));
}

void ServicedNode::drain() {
  if (total_depth_ == 0) {
    draining_ = false;
    return;
  }

  in_service_ = true;
  pending_out_.clear();
  // One poll sweep over every RX queue per burst, empty or not — a
  // batched-datapath cost only; the per-packet mode keeps the flat
  // rx_tx_ns model and counts no sweeps.
  queues_polled_ = burst_size_ <= 1 ? 0 : rx_queues_.size();
  rx_polls_ += queues_polled_;

  // The scheduler picks what this burst serves (budget 1 in per-packet
  // mode: the classic single-server queue, scheduler-ordered).
  Burst burst;
  burst.reserve(std::min(total_depth_, burst_size_));
  scheduler_->next_burst(rx_queues_, burst_size_, burst);
  if (burst.empty())
    throw util::ConfigError(name() + ": scheduler " + scheduler_->name() +
                            " idled with backlog (work-conserving contract)");
  total_depth_ -= burst.size();
  SimNanos cost = 0;
  if (burst_size_ <= 1) {
    auto& [in_port, packet] = burst.front();
    cost = service(in_port, std::move(packet));
  } else {
    cost = service_burst(std::move(burst));
  }
  in_service_ = false;
  ++bursts_served_;

  busy_ns_ += cost;
  busy_until_ = engine_.now() + cost;

  // Outputs leave when the burst finishes processing (a tx burst);
  // each carries the compute cost it accrued in its metadata (the
  // service implementation charges it).
  if (!pending_out_.empty()) {
    auto outputs = std::move(pending_out_);
    pending_out_.clear();
    engine_.schedule_at(busy_until_, [this, outputs = std::move(outputs)]() mutable {
      for (auto& [out_port, out_packet] : outputs)
        transmit(out_port, std::move(out_packet));
    });
  }

  // Serve the next packet when this one's service time elapses.
  engine_.schedule_at(busy_until_, [this] { drain(); });
}

}  // namespace harmless::sim

#include "sim/node.hpp"

#include <algorithm>
#include <utility>

#include "net/parse.hpp"
#include "util/status.hpp"

namespace harmless::sim {

void Port::send(net::Packet&& packet) {
  tx.add(packet.size());
  if (out_ == nullptr) {
    ++tx_unwired_drops;
    return;
  }
  out_->transmit(std::move(packet));
}

void Port::receive(net::Packet&& packet) {
  rx.add(packet.size());
  owner_->handle(index_, std::move(packet));
}

void Node::ensure_ports(std::size_t count) {
  while (ports_.size() < count)
    ports_.push_back(std::make_unique<Port>(*this, static_cast<int>(ports_.size())));
}

Port& Node::port(std::size_t index) {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

const Port& Node::port(std::size_t index) const {
  if (index >= ports_.size())
    throw util::ConfigError(name() + ": port " + std::to_string(index) + " out of range");
  return *ports_[index];
}

void ServicedNode::ensure_rx_queues(std::size_t port_count) {
  // One queue per port; under the symmetric grid, one per (port, core)
  // — queue index = port * stride + core, in_port = index / stride.
  const std::size_t stride = queue_stride();
  while (rx_queues_.size() < port_count * stride) {
    const std::size_t index = rx_queues_.size();
    rx_queues_.emplace_back(static_cast<int>(index / stride));
    // Steering decision: the queue belongs to one worker core for its
    // lifetime (pin map override, RSS hash otherwise; the grid encodes
    // its core in the index). Queue views hold pointers into
    // rx_queues_, which may have just reallocated — rebuild them
    // lazily before the next step.
    const std::size_t core = ingress_.cores.core_of(index) % cores_.size();
    queue_core_.push_back(core);
    cores_[core].queue_indices.push_back(index);
    views_dirty_ = true;
  }
}

void ServicedNode::refresh_views() {
  if (!views_dirty_) return;
  views_dirty_ = false;
  for (Core& core : cores_) {
    core.view.clear();
    core.view.reserve(core.queue_indices.size());
    for (const std::size_t index : core.queue_indices) core.view.push_back(&rx_queues_[index]);
  }
}

std::size_t ServicedNode::steer_core(std::size_t port, net::Packet& packet) {
  if (queue_stride() == 1) return 0;  // collapsed grid: core_of steers the queue
  const auto& pins = ingress_.cores.pin_map;
  if (port < pins.size() && pins[port] != kCoreUnpinned) return pins[port] % cores_.size();
  // Symmetric per-flow steering: hash the sorted endpoint pair, so
  // a→b and b→a land on the same core (the conntrack shard-affinity
  // invariant). The interned parse rides the packet into the datapath,
  // so the pipeline's later parse_cached call is a cache hit.
  const net::ParsedPacket& parsed = net::parse_cached(packet).parsed;
  std::uint64_t h = 0;
  if (parsed.ipv4 && (parsed.tcp || parsed.udp)) {
    h = util::symmetric_flow_hash(parsed.ipv4->src.value(), parsed.src_port(),
                                  parsed.ipv4->dst.value(), parsed.dst_port(),
                                  parsed.ipv4->protocol);
  } else if (parsed.ipv4) {
    h = util::symmetric_pair_hash(parsed.ipv4->src.value(), parsed.ipv4->dst.value());
  } else if (parsed.l2_valid) {
    h = util::symmetric_pair_hash(parsed.eth_src.to_u64(), parsed.eth_dst.to_u64());
  }
  return static_cast<std::size_t>(h) % cores_.size();
}

void ServicedNode::handle(int in_port, net::Packet&& packet) {
  const auto port = static_cast<std::size_t>(in_port < 0 ? 0 : in_port);
  ensure_rx_queues(port + 1);
  const std::size_t queue_index = port * queue_stride() + steer_core(port, packet);
  RxQueue& queue = rx_queues_[queue_index];
  // Admission: the shared buffer bound applies always (exactly the
  // historical shared-FIFO drop rule); the per-port bound, when set,
  // partitions that buffer so one port's backlog cannot crowd out
  // another port's admissions. The per-port bound covers the whole
  // queue group of the port under the symmetric grid.
  if (total_depth_ >= ingress_.queue_capacity ||
      (ingress_.port_queue_capacity > 0 && port_queue_depth(port) >= ingress_.port_queue_capacity)) {
    queue.count_drop();
    ++queue_drops_;
    return;
  }
  queue.push(arrival_seq_++, std::move(packet));
  ++total_depth_;
  ++cores_[queue_core_[queue_index]].backlog;
  if (!draining_) {
    draining_ = true;
    engine_.schedule_at(std::max(engine_.now(), busy_until_), [this] { drain(); });
  }
}

std::size_t ServicedNode::port_queue_depth(std::size_t port) const {
  const std::size_t stride = queue_stride();
  std::size_t depth = 0;
  for (std::size_t q = port * stride; q < (port + 1) * stride && q < rx_queues_.size(); ++q)
    depth += rx_queues_[q].depth();
  return depth;
}

std::uint64_t ServicedNode::port_queue_drops(std::size_t port) const {
  const std::size_t stride = queue_stride();
  std::uint64_t drops = 0;
  for (std::size_t q = port * stride; q < (port + 1) * stride && q < rx_queues_.size(); ++q)
    drops += rx_queues_[q].drops();
  return drops;
}

std::size_t ServicedNode::port_queue_peak_depth(std::size_t port) const {
  // Sum of per-queue peaks — an upper bound on the port's instantaneous
  // peak, exact when the grid is collapsed (the common case).
  const std::size_t stride = queue_stride();
  std::size_t peak = 0;
  for (std::size_t q = port * stride; q < (port + 1) * stride && q < rx_queues_.size(); ++q)
    peak += rx_queues_[q].peak_depth();
  return peak;
}

void ServicedNode::emit(std::size_t out_port, net::Packet&& packet) {
  if (!in_service_)
    throw util::ConfigError(name() + ": emit() called outside service()");
  pending_out_.emplace_back(out_port, std::move(packet));
}

SimNanos ServicedNode::serve_core(std::size_t core_index, SimNanos step_start) {
  Core& core = cores_[core_index];
  current_core_ = core_index;

  // Adaptive burst sizing: the budget tracks this core's backlog
  // between the configured floor and the node's burst_size — light
  // load takes the per-packet path below (no poll sweep), overload
  // runs the full batch. A fixed budget otherwise.
  std::size_t budget = burst_size_;
  if (ingress_.scheduler.adaptive_burst) {
    const std::size_t floor =
        std::min(std::max<std::size_t>(1, ingress_.scheduler.adaptive_min_burst), burst_size_);
    budget = std::clamp(core.backlog, floor, burst_size_);
  }

  in_service_ = true;
  // Reuse a delivered tx-burst vector's capacity when one has come
  // back through the pool (pending_out_ was moved into the tx event).
  if (pending_out_.capacity() == 0 && !out_pool_.empty()) {
    pending_out_ = std::move(out_pool_.back());
    out_pool_.pop_back();
  }
  pending_out_.clear();
  // One poll sweep over every RX queue this core owns, empty or not —
  // a batched-datapath cost only; the per-packet mode keeps the flat
  // rx_tx_ns model and counts no sweeps.
  queues_polled_ = budget <= 1 ? 0 : core.view.size();
  rx_polls_ += queues_polled_;
  core.rx_polls += queues_polled_;

  // The core's scheduler picks what this burst serves (budget 1 in
  // per-packet mode: the classic single-server queue, scheduler-ordered).
  // The burst vector is per-core scratch: service_burst(Burst&&) binds
  // it by reference and moves only the packets out, so its capacity
  // survives from burst to burst.
  Burst& burst = core.burst;
  burst.clear();
  burst.reserve(std::min(core.backlog, budget));
  core.scheduler->next_burst(core.view, budget, burst);
  if (burst.empty())
    throw util::ConfigError(name() + ": scheduler " + core.scheduler->name() +
                            " idled with backlog (work-conserving contract)");
  total_depth_ -= burst.size();
  core.backlog -= burst.size();
  core.packets += burst.size();
  SimNanos cost = 0;
  if (budget <= 1) {
    auto& [in_port, packet] = burst.front();
    cost = service(in_port, std::move(packet));
  } else {
    cost = service_burst(std::move(burst));
  }
  burst.clear();  // drop the moved-from shells, keep the capacity
  in_service_ = false;
  ++bursts_served_;
  ++core.bursts;
  busy_ns_ += cost;
  core.busy_ns += cost;

  // This core's outputs leave when *its* burst finishes processing (a
  // tx burst at step_start + its own cost, not the step makespan);
  // each carries the compute cost it accrued in its metadata (the
  // service implementation charges it).
  if (!pending_out_.empty()) {
    auto outputs = std::move(pending_out_);
    pending_out_.clear();
    engine_.schedule_at(step_start + cost, [this, outputs = std::move(outputs)]() mutable {
      for (auto& [out_port, out_packet] : outputs)
        transmit(out_port, std::move(out_packet));
      // Return the emptied vector to the pool for the next burst.
      outputs.clear();
      if (out_pool_.size() < 8) out_pool_.push_back(std::move(outputs));
    });
  }
  return cost;
}

void ServicedNode::drain() {
  if (total_depth_ == 0) {
    draining_ = false;
    return;
  }
  refresh_views();

  // One bulk-synchronous service step: every backlogged core drains
  // one burst. Each core is billed its own busy nanoseconds; the node
  // (and the next step) advances by the step makespan — cores that
  // finish early idle until the slowest core's burst completes, which
  // is exactly what lockstep run-to-completion workers cost.
  const SimNanos step_start = engine_.now();
  SimNanos makespan = 0;
  for (std::size_t core = 0; core < cores_.size(); ++core) {
    if (cores_[core].backlog == 0) continue;
    makespan = std::max(makespan, serve_core(core, step_start));
  }
  busy_until_ = step_start + makespan;

  // Serve the next step when this one's makespan elapses.
  engine_.schedule_at(busy_until_, [this] { drain(); });
}

}  // namespace harmless::sim

// sim/network.hpp — owns the engine, the nodes and the cables.
//
// Usage:
//   Network net;
//   auto& h1 = net.add_host("h1", mac1, ip1);
//   auto& sw = net.add_node<legacy::LegacySwitch>(...);
//   net.connect(h1, 0, sw, 1, LinkSpec::gbps(1));
//   ... schedule traffic ...
//   net.run();
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/pcap.hpp"
#include "sim/event.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"

namespace harmless::sim {

class Network {
 public:
  Network() = default;

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] SimNanos now() const { return engine_.now(); }

  /// Construct a node in place; the network owns it.
  template <typename NodeT, typename... Args>
  NodeT& add_node(Args&&... args) {
    auto node = std::make_unique<NodeT>(engine_, std::forward<Args>(args)...);
    NodeT& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Shorthand for the most common node type.
  Host& add_host(const std::string& name, net::MacAddr mac, net::Ipv4Addr ip) {
    return add_node<Host>(name, mac, ip);
  }

  /// Wire port `a_port` of `a` to port `b_port` of `b` with a duplex
  /// link of the given spec (both directions identical).
  void connect(Node& a, std::size_t a_port, Node& b, std::size_t b_port, LinkSpec spec);

  /// All channels, for utilization reports.
  [[nodiscard]] const std::vector<std::unique_ptr<Channel>>& channels() const {
    return channels_;
  }

  /// Tap every frame a channel delivers into a pcap capture (one tap
  /// per channel; the writer must outlive the network run).
  static void tap(Channel& channel, net::PcapWriter& pcap) {
    channel.set_tap([&pcap](SimNanos at, const net::Packet& packet) {
      pcap.write(at, packet);
    });
  }

  /// Find channels by label substring ("legacy:4->SS_1" etc.).
  [[nodiscard]] std::vector<Channel*> find_channels(std::string_view label_part) const {
    std::vector<Channel*> found;
    for (const auto& channel : channels_)
      if (channel->label().find(label_part) != std::string::npos)
        found.push_back(channel.get());
    return found;
  }

  void run() { engine_.run(); }
  void run_until(SimNanos deadline) { engine_.run_until(deadline); }

 private:
  Engine engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace harmless::sim

// sim/scheduler.hpp — per-port RX queues and the pluggable burst
// scheduler they feed.
//
// A ServicedNode owns one bounded RxQueue per ingress port (the
// software model of a NIC RX ring). Every service burst, a
// BurstScheduler decides which queues the burst drains and in what
// order — the seam where head-of-line blocking across ports is won or
// lost. Three policies ship:
//
//   * Fcfs       — global arrival order across all queues. Bit-exact
//                  with the pre-refactor shared FIFO; the ablation
//                  baseline (and what an unscheduled datapath does).
//   * RoundRobin — packet-quantum sweep: up to `rr_quantum_packets`
//                  per non-empty queue per visit, cursor persists
//                  across bursts.
//   * Drr        — deficit round-robin (Shreedhar & Varghese): each
//                  visited queue banks `drr_quantum_bytes` of credit
//                  and sends while its head frame fits; byte-fair
//                  regardless of frame-size mix, so an elephant port
//                  cannot starve a mouse port.
//
// Scheduling state (cursors, deficits) lives in the scheduler object,
// one per worker core; the queues themselves belong to the node. The
// (queue -> burst) hand-off defined here is the unit a worker core
// pulls: a multi-core node (CoreSpec) steers each RX queue to one core
// RSS-style and gives every core its own scheduler instance over its
// own queue subset, so next_burst takes the core's queue *view* (a
// stable-ordered vector of queue pointers), not the node's whole
// array. Per-view state (cursors, deficits) indexes positions in that
// view; a single-core node's view is the full array in port order,
// which keeps the one-core datapath bit-exact with the pre-multi-core
// code.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/hash.hpp"

namespace harmless::sim {

/// One ingress port's bounded RX queue. Packets are stamped with a
/// node-global arrival sequence number so FCFS can reconstruct the
/// exact shared-FIFO order across queues.
class RxQueue {
 public:
  struct Item {
    std::uint64_t seq;
    net::Packet packet;
  };

  explicit RxQueue(int in_port = 0) : in_port_(in_port) {}

  // Explicitly noexcept moves: deque's move constructor is not noexcept
  // in libstdc++ (the moved-from map is reallocated), and Packet is
  // move-only, so vector growth must be allowed to relocate queues by
  // move rather than falling back to the deleted copy.
  RxQueue(RxQueue&& other) noexcept
      : in_port_(other.in_port_),
        items_(std::move(other.items_)),
        drops_(other.drops_),
        enqueued_(other.enqueued_),
        peak_depth_(other.peak_depth_) {}
  RxQueue& operator=(RxQueue&& other) noexcept {
    in_port_ = other.in_port_;
    items_ = std::move(other.items_);
    drops_ = other.drops_;
    enqueued_ = other.enqueued_;
    peak_depth_ = other.peak_depth_;
    return *this;
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t depth() const { return items_.size(); }
  [[nodiscard]] const Item& front() const { return items_.front(); }
  [[nodiscard]] int in_port() const { return in_port_; }

  void push(std::uint64_t seq, net::Packet&& packet) {
    items_.push_back(Item{seq, std::move(packet)});
    ++enqueued_;
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
  }
  net::Packet pop() {
    net::Packet packet = std::move(items_.front().packet);
    items_.pop_front();
    return packet;
  }
  void count_drop() { ++drops_; }

  /// Tail drops charged to this port (per-port bound or the shared
  /// bound — either way the arriving port pays).
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t enqueued() const { return enqueued_; }
  /// High-water mark of the queue depth over the run.
  [[nodiscard]] std::size_t peak_depth() const { return peak_depth_; }

 private:
  int in_port_;
  std::deque<Item> items_;
  std::uint64_t drops_ = 0;
  std::uint64_t enqueued_ = 0;
  std::size_t peak_depth_ = 0;
};

/// One (in_port, packet) unit of a service burst, in the order the
/// scheduler drained them.
using Burst = std::vector<std::pair<int, net::Packet>>;

enum class SchedulerKind : std::uint8_t { kFcfs, kRoundRobin, kDrr };
[[nodiscard]] const char* to_string(SchedulerKind kind);

/// Value-type selection of a scheduler, carried by FabricSpec /
/// RigOptions and turned into a live object with make_scheduler().
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kFcfs;
  /// RoundRobin: packets granted per queue visit.
  std::size_t rr_quantum_packets = 1;
  /// Drr: bytes of credit banked per queue visit (one MTU by default,
  /// the classic choice — one full-size frame per round).
  std::size_t drr_quantum_bytes = 1500;
  /// Weighted DRR: per-port byte quanta (index = port), the operator's
  /// policy weights — a port with twice the quantum banks twice the
  /// credit per round and gets ~twice the goodput under overload.
  /// Ports beyond the vector (or with a 0 entry) use drr_quantum_bytes.
  std::vector<std::size_t> drr_port_quantum_bytes;
  /// Adaptive burst sizing: each service step, a core's burst budget
  /// tracks its own backlog, clamped to [adaptive_min_burst, the
  /// node's burst_size]. Light load degrades to the per-packet
  /// datapath (budget 1: flat rx_tx_ns, no per-queue poll sweep — the
  /// idle-poll bill disappears); overload runs the full batch and
  /// keeps the whole amortization win. Off by default: a fixed budget
  /// is what the burst-sweep ablations compare against.
  bool adaptive_burst = false;
  /// Floor of the adaptive budget (1 = allow the per-packet path).
  std::size_t adaptive_min_burst = 1;
};

/// In a CoreSpec pin map: this port has no pin; RSS steering decides.
constexpr std::uint32_t kCoreUnpinned = 0xffffffffu;

/// How a multi-core node spreads per-port RX queues over worker cores
/// when the pin map does not dictate a core.
enum class RssPolicy : std::uint8_t {
  /// RSS-style: hash the port id through the shared project mix
  /// (util/hash.hpp — the same mix the flow cache keys with) and take
  /// it modulo the core count. What a NIC's indirection table does.
  kHash,
  /// Stride the ports across cores (port % cores): deterministic exact
  /// balance, the hand-tuned comparison point for the hash policy.
  kStride,
  /// Symmetric per-flow steering for the stateful tier: the node keeps
  /// one RX queue per (port, core) — queue index = port * cores + core
  /// — and steers each *packet* by util::symmetric_flow_hash over its
  /// sorted 5-tuple endpoints, so both directions of a connection land
  /// on the same core (and thus the same conntrack shard). Non-TCP/UDP
  /// traffic falls back to a symmetric hash of the IP (or MAC) pair.
  /// With cores == 1 the queue grid collapses to one queue per port,
  /// bit-exact with the other policies.
  kSymmetric,
};
[[nodiscard]] const char* to_string(RssPolicy policy);

/// Worker-core layout of a ServicedNode: how many run-to-completion
/// cores service the RX queues, and how queues are steered to them.
/// cores == 1 is the single-core datapath (bit-exact with the
/// pre-multi-core code); each core owns its own BurstScheduler
/// instance (and, in SoftSwitch, its own flow-cache shard).
struct CoreSpec {
  std::size_t cores = 1;
  RssPolicy rss = RssPolicy::kHash;
  /// Per-port core override (index = sim port / queue index): entries
  /// other than kCoreUnpinned pin that port's queue to the given core
  /// (mod cores, so a map built for 8 cores still works on 2). Ports
  /// beyond the vector fall back to the RSS policy.
  std::vector<std::uint32_t> pin_map;

  /// The steering decision: which core services queue `queue_index`.
  [[nodiscard]] std::size_t core_of(std::size_t queue_index) const {
    const std::size_t count = cores == 0 ? 1 : cores;
    // kSymmetric queues form a (port, core) grid — the queue index
    // already encodes its core; per-packet steering picked it (the pin
    // map, when set, is consulted there, keyed by port).
    if (rss == RssPolicy::kSymmetric) return queue_index % count;
    if (queue_index < pin_map.size() && pin_map[queue_index] != kCoreUnpinned)
      return pin_map[queue_index] % count;
    if (rss == RssPolicy::kStride) return queue_index % count;
    // Two extra finalizer rounds fold the high bits down: one round of
    // the FNV-style mix barely diffuses a small port id, leaving the
    // low bits (what `% cores` reads) a pure rotation of the id — i.e.
    // stride in disguise. Finalized, the map behaves like a real NIC's
    // indirection table: hash-random spread, visible imbalance
    // included (that honesty is what the stride policy is the
    // counterfactual for).
    std::uint64_t h = util::hash_u64(util::kHashSeed, queue_index);
    h = util::hash_u64(h, h >> 32);
    h = util::hash_u64(h, h >> 32);
    return static_cast<std::size_t>(h) % count;
  }
};

/// The pluggable ingress-scheduling API: given one worker core's view
/// of the per-port queues and a packet budget, drain the next burst.
class BurstScheduler {
 public:
  virtual ~BurstScheduler() = default;
  BurstScheduler() = default;
  BurstScheduler(const BurstScheduler&) = delete;
  BurstScheduler& operator=(const BurstScheduler&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Move up to `budget` packets from `queues` into `out` (appended in
  /// service order). `queues` is the calling core's queue view; its
  /// order must be stable across calls (cursor/deficit state indexes
  /// positions in it). Must take exactly min(budget, total backlog)
  /// packets: a scheduler may reorder ports, never idle the datapath
  /// while work is queued (all shipped policies are work-conserving).
  virtual void next_burst(const std::vector<RxQueue*>& queues, std::size_t budget,
                          Burst& out) = 0;
};

/// Global arrival order (lowest sequence stamp first) — the shared
/// FIFO of the pre-refactor datapath, reconstructed across queues.
class FcfsScheduler final : public BurstScheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fcfs"; }
  void next_burst(const std::vector<RxQueue*>& queues, std::size_t budget, Burst& out) override;

 private:
  std::vector<RxQueue*> backlogged_;  // reused scratch, cleared per burst
};

/// Packet-quantum sweep with a cursor that persists across bursts.
class RoundRobinScheduler final : public BurstScheduler {
 public:
  explicit RoundRobinScheduler(std::size_t quantum_packets = 1)
      : quantum_(quantum_packets == 0 ? 1 : quantum_packets) {}
  [[nodiscard]] const char* name() const override { return "rr"; }
  void next_burst(const std::vector<RxQueue*>& queues, std::size_t budget, Burst& out) override;

 private:
  std::size_t quantum_;
  std::size_t cursor_ = 0;
};

/// Byte-quantum deficit round-robin (Shreedhar & Varghese, SIGCOMM
/// '95): per-queue deficit counters persist across bursts; a queue
/// that goes empty forfeits its credit, so idle ports cannot bank
/// bandwidth. Optionally weighted: per-port quanta (operator policy)
/// make the banked credit — and thus the overload goodput split —
/// proportional to the weights.
class DrrScheduler final : public BurstScheduler {
 public:
  explicit DrrScheduler(std::size_t quantum_bytes = 1500,
                        std::vector<std::size_t> port_quantum_bytes = {})
      : quantum_(quantum_bytes == 0 ? 1 : quantum_bytes),
        port_quantum_(std::move(port_quantum_bytes)) {}
  [[nodiscard]] const char* name() const override { return "drr"; }
  void next_burst(const std::vector<RxQueue*>& queues, std::size_t budget, Burst& out) override;

 private:
  /// The quantum banked per visit of the queue on port `port`: the
  /// per-port policy weight when configured, the uniform default
  /// otherwise. Keyed by the queue's port id, not its position in the
  /// core's view — policy weights follow the port wherever its queue
  /// is steered.
  [[nodiscard]] std::size_t quantum_for(std::size_t port) const {
    if (port < port_quantum_.size() && port_quantum_[port] != 0)
      return port_quantum_[port];
    return quantum_;
  }

  std::size_t quantum_;
  std::vector<std::size_t> port_quantum_;
  std::vector<std::size_t> deficit_;
  std::size_t cursor_ = 0;
  /// True when the previous burst's budget ran out mid-visit: the
  /// cursor queue resumes on its remaining credit without banking a
  /// fresh quantum.
  bool mid_visit_ = false;
};

[[nodiscard]] std::unique_ptr<BurstScheduler> make_scheduler(const SchedulerSpec& spec);

/// Ingress configuration of a ServicedNode: queue bounds plus the
/// scheduling policy. `queue_capacity` bounds the sum across all port
/// queues (the shared packet buffer); `port_queue_capacity`, when
/// non-zero, additionally bounds each port's queue — the partitioned
/// buffer that lets a scheduler actually isolate ports (with only the
/// shared bound, an elephant port's backlog crowds out everyone's
/// admissions no matter how fairly service is scheduled).
struct IngressSpec {
  std::size_t queue_capacity = 1024;
  std::size_t port_queue_capacity = 0;
  SchedulerSpec scheduler;
  /// Worker-core layout: queue -> core steering plus the core count.
  /// Every core gets its own scheduler instance built from `scheduler`.
  CoreSpec cores;
};

}  // namespace harmless::sim

#include "sim/witness.hpp"

#include <algorithm>
#include <utility>

namespace harmless::sim {

Witness::Decision Witness::decide(std::uint64_t client, SimNanos now) {
  // Another holder with an unexpired lease: deny. The denial carries
  // the current epoch so a fenced ex-active can learn how far the
  // world moved on.
  if (holder_ != 0 && holder_ != client && expires_at_ > now) {
    ++stats_.denials;
    return Decision{false, epoch_, expires_at_};
  }
  if (holder_ != client) {
    // Holder change (first grant, or takeover after expiry): bump the
    // epoch so every delta stamped under the old lease is refusable.
    ++epoch_;
    ++stats_.epoch_bumps;
    holder_ = client;
    ++stats_.grants;
  } else {
    ++stats_.renewals;
  }
  expires_at_ = now + spec_.lease_validity_ns;
  return Decision{true, epoch_, expires_at_};
}

void WitnessLink::request_lease(GrantHandler handler) {
  ++stats_.requests_sent;
  if (!up_) {
    ++stats_.requests_dropped;
    return;
  }
  const SimNanos fwd = std::max<SimNanos>(witness_.spec().rtt_ns / 2, 1);
  // Response leg is never zero: a grant decision made at t can only be
  // *known* to the client strictly after t, which is what keeps an
  // expiry-fence at t and a new grant learned after t from overlapping.
  const SimNanos back = std::max<SimNanos>(witness_.spec().rtt_ns - fwd, 1);
  engine_.schedule_after(fwd, [this, handler = std::move(handler), back]() mutable {
    if (!up_ || witness_.crashed()) {
      ++stats_.requests_dropped;
      return;
    }
    const Witness::Decision decision = witness_.decide(client_id_, engine_.now());
    engine_.schedule_after(back, [this, handler = std::move(handler), decision] {
      if (!up_) {
        ++stats_.responses_dropped;
        return;
      }
      if (decision.granted)
        ++stats_.granted;
      else
        ++stats_.denied;
      handler(decision.granted, decision.epoch, decision.expires_at);
    });
  });
}

}  // namespace harmless::sim

// sim/host.hpp — end hosts: traffic sources, sinks and tiny servers.
//
// A Host has one NIC (port 0), a MAC and an IPv4 address. Out of the
// box it answers ARP requests and ICMP echoes for its own address and
// counts everything it receives. Optional roles:
//   * UDP generator  — send_udp_stream(): paced or back-to-back bursts
//   * HTTP server    — serves "GET" requests with a canned 200/403
//   * HTTP client    — http_get() fires a request; responses counted
// Tests can attach an on_receive hook; benches attach a
// LatencyRecorder to measure end-to-end latency.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/build.hpp"
#include "net/parse.hpp"
#include "sim/node.hpp"
#include "sim/recorder.hpp"

namespace harmless::sim {

class Host : public Node {
 public:
  Host(Engine& engine, std::string name, net::MacAddr mac, net::Ipv4Addr ip);

  [[nodiscard]] net::MacAddr mac() const { return mac_; }
  [[nodiscard]] net::Ipv4Addr ip() const { return ip_; }

  // ---- receive path -------------------------------------------------
  void handle(int in_port, net::Packet&& packet) override;

  /// Observe every delivered packet (after built-in responders ran).
  void set_on_receive(std::function<void(const net::Packet&, const net::ParsedPacket&)> hook) {
    on_receive_ = std::move(hook);
  }

  /// Latency bookkeeping: sent packets are armed, received ones
  /// completed, on this recorder.
  void set_recorder(LatencyRecorder* recorder) { recorder_ = recorder; }

  /// Toggle built-in responders (all default-on).
  void set_arp_responder(bool on) { arp_responder_ = on; }
  void set_icmp_responder(bool on) { icmp_responder_ = on; }

  /// NIC destination filtering: by default frames for other unicast
  /// MACs are dropped (counted in rx_filtered), like a real NIC with
  /// promiscuous mode off. Trunk observers in tests turn this off.
  void set_promiscuous(bool on) { promiscuous_ = on; }

  /// Enable the HTTP server role on the given TCP port.
  void serve_http(std::uint16_t tcp_port = 80);

  // ---- transmit path ------------------------------------------------
  /// Send a fully built frame right now (stamps id/timestamp, arms the
  /// recorder).
  void send(net::Packet&& packet);

  /// Schedule a UDP stream: `count` frames of `frame_size` bytes to
  /// (dst_mac, dst_ip), one every `interval` ns starting at `start`.
  /// interval 0 = back-to-back (limited only by the NIC line rate).
  void send_udp_stream(net::MacAddr dst_mac, net::Ipv4Addr dst_ip, std::size_t count,
                       std::size_t frame_size, SimNanos interval, SimNanos start = 0,
                       std::uint16_t dst_port = 9000);

  /// Fire one HTTP GET to host `http_host` at the given server.
  void http_get(net::MacAddr server_mac, net::Ipv4Addr server_ip, std::string_view http_host,
                std::string_view path = "/", std::uint16_t server_port = 80);

  /// Broadcast an ARP request for `target_ip`.
  void arp_request(net::Ipv4Addr target_ip);

  // ---- observable state ----------------------------------------------
  struct Counters {
    std::uint64_t rx_total = 0;
    std::uint64_t rx_filtered = 0;  // dropped by the NIC dst-MAC filter
    std::uint64_t rx_udp = 0;
    std::uint64_t rx_tcp = 0;
    std::uint64_t rx_icmp_echo_reply = 0;
    std::uint64_t rx_arp_reply = 0;
    std::uint64_t http_requests_served = 0;
    std::uint64_t http_ok_received = 0;
    std::uint64_t http_forbidden_received = 0;
    std::uint64_t tx_total = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Last `capacity` received parsed packets (newest last), for tests.
  [[nodiscard]] const std::vector<net::ParsedPacket>& rx_log() const { return rx_log_; }
  void set_rx_log_capacity(std::size_t capacity) { rx_log_capacity_ = capacity; }

 private:
  void maybe_respond(const net::ParsedPacket& parsed, const net::Packet& packet);

  net::MacAddr mac_;
  net::Ipv4Addr ip_;
  bool arp_responder_ = true;
  bool icmp_responder_ = true;
  bool promiscuous_ = false;
  std::optional<std::uint16_t> http_port_;
  std::function<void(const net::Packet&, const net::ParsedPacket&)> on_receive_;
  LatencyRecorder* recorder_ = nullptr;
  Counters counters_;
  std::vector<net::ParsedPacket> rx_log_;
  std::size_t rx_log_capacity_ = 64;
  std::uint16_t next_src_port_ = 40000;
};

}  // namespace harmless::sim

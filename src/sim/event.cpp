#include "sim/event.hpp"

#include <algorithm>

namespace harmless::sim {

void Engine::schedule_at(SimNanos at, std::function<void()> fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the closure is moved out via a
  // const_cast that is safe because pop() follows immediately.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  ++events_dispatched_;
  event.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimNanos deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  now_ = std::max(now_, deadline);
}

}  // namespace harmless::sim

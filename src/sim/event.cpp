#include "sim/event.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace harmless::sim {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Engine::Engine(const CalendarConfig& config) : config_(config) {
  config_.bucket_bits = std::min(config_.bucket_bits, 40u);
  config_.bucket_count = round_up_pow2(std::max<std::size_t>(2, config_.bucket_count));
  buckets_.resize(config_.bucket_count);
  occupied_.assign((config_.bucket_count + 63) / 64, 0);
  bucket_mask_ = config_.bucket_count - 1;
}

void Engine::reserve(std::size_t expected_pending) {
  while (fn_chunks_.size() * kChunkSize < expected_pending) {
    fn_chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
  }
  free_fns_.reserve(expected_pending);
}

std::uint32_t Engine::grow_slot() {
  const auto slot = static_cast<std::uint32_t>(fn_count_++);
  if ((slot >> kChunkShift) == fn_chunks_.size()) {
    fn_chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
  }
  return slot;
}

void Engine::push_calendar(Event event) {
  const std::size_t index = day_of(event.at) & bucket_mask_;
  Bucket& bucket = buckets_[index];
  if (bucket.empty()) occupied_[index >> 6] |= 1ull << (index & 63);
  bucket.push_back(event);
  // Occupancy hovers near one event per bucket; the heap only earns
  // its sift when a bucket actually holds rivals.
  if (bucket.size() > 1) std::push_heap(bucket.begin(), bucket.end(), Later{});
  ++calendar_size_;
}

void Engine::commit(SimNanos at, std::uint32_t slot) {
  Event event{std::max(at, now_), next_seq_++, slot};
  if (day_of(event.at) < cursor_day_ + config_.bucket_count) {
    push_calendar(event);
  } else {
    // Far-future events append to the staging area unsorted; they are
    // sorted (once) into overflow_sorted_ only when one becomes due.
    // Pre-scheduled arrival streams therefore cost O(1) per event here
    // and one O(n log n) sort at run start, instead of a heap sift per
    // push and another per migration.
    if (overflow_staging_.empty() || Later{}(staging_min_, event)) staging_min_ = event;
    overflow_staging_.push_back(event);
  }
}

const Engine::Event* Engine::overflow_min() const {
  const Event* min = overflow_sorted_.empty() ? nullptr : &overflow_sorted_.back();
  if (!overflow_staging_.empty() && (min == nullptr || Later{}(*min, staging_min_))) {
    min = &staging_min_;
  }
  return min;
}

void Engine::flush_overflow() {
  std::sort(overflow_staging_.begin(), overflow_staging_.end(), Later{});
  const auto mid = static_cast<std::ptrdiff_t>(overflow_sorted_.size());
  overflow_sorted_.insert(overflow_sorted_.end(), overflow_staging_.begin(),
                          overflow_staging_.end());
  std::inplace_merge(overflow_sorted_.begin(), overflow_sorted_.begin() + mid,
                     overflow_sorted_.end(), Later{});
  overflow_staging_.clear();
}

void Engine::migrate_overflow() {
  const std::uint64_t admit_below = cursor_day_ + config_.bucket_count;
  for (;;) {
    const Event* min = overflow_min();
    if (min == nullptr || day_of(min->at) >= admit_below) return;
    if (min == &staging_min_) {
      flush_overflow();
      continue;
    }
    push_calendar(*min);
    overflow_sorted_.pop_back();
  }
}

Engine::Bucket* Engine::scan_ring() {
  const std::size_t start = static_cast<std::size_t>(cursor_day_) & bucket_mask_;
  std::size_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  // At most one full lap (plus the masked start word, revisited whole
  // at the end for the wrapped-around low bits).
  for (std::size_t i = 0; i <= occupied_.size(); ++i) {
    if (bits != 0) {
      return &buckets_[(word << 6) + static_cast<std::size_t>(std::countr_zero(bits))];
    }
    word = word + 1 == occupied_.size() ? 0 : word + 1;
    bits = occupied_[word];
  }
  return nullptr;  // unreachable while calendar_size_ > 0
}

Engine::Bucket* Engine::next_bucket(SimNanos deadline) {
  for (;;) {
    Bucket* ring = calendar_size_ > 0 ? scan_ring() : nullptr;
    if (ring == nullptr) {
      const Event* top = overflow_min();
      if (top == nullptr || top->at > deadline) return nullptr;
      cursor_day_ = std::max(cursor_day_, day_of(top->at));
      migrate_overflow();
      continue;
    }
    const Event& front = ring->front();
    const Event* top = overflow_min();
    if (top != nullptr && day_of(top->at) <= day_of(front.at)) {
      // The overflow minimum may precede the ring minimum (run_until
      // can leave the window behind newly due overflow; an equal day
      // is settled by the bucket heap after migration). Admit, then
      // rescan.
      if (top->at > deadline && front.at > deadline) return nullptr;
      cursor_day_ = std::max(cursor_day_, day_of(top->at));
      migrate_overflow();
      continue;
    }
    if (front.at > deadline) return nullptr;
    cursor_day_ = day_of(front.at);
    return ring;
  }
}

void Engine::dispatch_from(Bucket& bucket) {
  if (bucket.size() > 1) std::pop_heap(bucket.begin(), bucket.end(), Later{});
  const Event event = bucket.back();
  bucket.pop_back();  // capacity is retained: the bucket recycles
  if (bucket.empty()) {
    const auto index = static_cast<std::size_t>(&bucket - buckets_.data());
    occupied_[index >> 6] &= ~(1ull << (index & 63));
  }
  --calendar_size_;
  now_ = event.at;
  ++events_dispatched_;
  // Invoke in place: slab chunks never move, so the closure's address
  // stays valid even when running it schedules more events. The slot is
  // recycled only afterwards, so a reschedule cannot overwrite it.
  EventFn& fn = fn_slot(event.fn);
  fn();
  fn.reset();
  free_fns_.push_back(event.fn);
}

bool Engine::step() {
  Bucket* bucket = next_bucket(std::numeric_limits<SimNanos>::max());
  if (bucket == nullptr) return false;
  dispatch_from(*bucket);
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimNanos deadline) {
  for (;;) {
    Bucket* bucket = next_bucket(deadline);
    if (bucket == nullptr) break;
    dispatch_from(*bucket);
  }
  now_ = std::max(now_, deadline);
}

}  // namespace harmless::sim

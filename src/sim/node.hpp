// sim/node.hpp — nodes and ports.
//
// A Node is anything with numbered ports: hosts, the legacy switch, the
// software switches. Ports receive from / transmit into Channels.
//
// `ServicedNode` adds the processing model every switching element
// uses: packets are served one at a time from a bounded FIFO, each
// taking `service(...)` nanoseconds of simulated compute. That single
// queue is what turns per-packet costs into throughput limits, so the
// relative numbers in E1/E2 come from code, not from constants pasted
// into benches.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/link.hpp"
#include "util/stats.hpp"

namespace harmless::sim {

class Node;

/// One attachment point of a node. tx goes into a Channel (if wired).
class Port {
 public:
  Port(Node& owner, int index) : owner_(&owner), index_(index) {}

  /// Transmit through the attached channel; counts and drops silently
  /// when unwired (like a NIC with no cable).
  void send(net::Packet&& packet);

  /// Called by the channel sink; forwards into the owner node.
  void receive(net::Packet&& packet);

  void attach(Channel* out) { out_ = out; }
  [[nodiscard]] bool wired() const { return out_ != nullptr; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] Channel* channel() const { return out_; }

  util::RateCounter tx;
  util::RateCounter rx;
  std::uint64_t tx_unwired_drops = 0;

 private:
  Node* owner_;
  int index_;
  Channel* out_ = nullptr;
};

class Node {
 public:
  Node(Engine& engine, std::string name) : engine_(engine), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Packet arrived on port `in_port` (rx counters already updated).
  virtual void handle(int in_port, net::Packet&& packet) = 0;

  /// Grow the port array to at least `count` ports.
  void ensure_ports(std::size_t count);
  [[nodiscard]] Port& port(std::size_t index);
  [[nodiscard]] const Port& port(std::size_t index) const;
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  Engine& engine_;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

/// Single-server queueing node (see file comment).
class ServicedNode : public Node {
 public:
  ServicedNode(Engine& engine, std::string name, std::size_t queue_capacity = 1024)
      : Node(engine, std::move(name)), queue_capacity_(queue_capacity) {}

  void handle(int in_port, net::Packet&& packet) final;

  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// Total simulated compute spent in service().
  [[nodiscard]] SimNanos busy_ns() const { return busy_ns_; }

 protected:
  /// Process one packet: mutate/forward it via port(i).send(...) and
  /// return the compute cost in ns. Outputs scheduled inside service()
  /// are delayed by that same cost (they leave when processing ends).
  virtual SimNanos service(int in_port, net::Packet&& packet) = 0;

  /// Emit a packet from `out_port` once the current service completes.
  /// Only valid while inside service().
  void emit(std::size_t out_port, net::Packet&& packet);

  /// True while service() is executing (emit() is legal).
  [[nodiscard]] bool in_service() const { return in_service_; }

  /// How a completed output leaves the node. Default: the sim port's
  /// channel. SoftSwitch overrides this to divert patch-bound ports
  /// into the peer switch without a wire.
  virtual void transmit(std::size_t out_port, net::Packet&& packet) {
    port(out_port).send(std::move(packet));
  }

 private:
  void drain();

  std::size_t queue_capacity_;
  std::deque<std::pair<int, net::Packet>> queue_;
  std::vector<std::pair<std::size_t, net::Packet>> pending_out_;
  bool draining_ = false;
  bool in_service_ = false;
  SimNanos busy_until_ = 0;
  SimNanos busy_ns_ = 0;
  std::uint64_t queue_drops_ = 0;
};

}  // namespace harmless::sim

// sim/node.hpp — nodes and ports.
//
// A Node is anything with numbered ports: hosts, the legacy switch, the
// software switches. Ports receive from / transmit into Channels.
//
// `ServicedNode` adds the processing model every switching element
// uses: arriving packets land in one bounded RxQueue per ingress port
// (sim/scheduler.hpp), and a pluggable BurstScheduler picks which
// queues each service burst of up to `burst_size` packets drains
// (FCFS by default — bit-exact with the historical shared FIFO).
// Each burst takes `service_burst(...)` nanoseconds of simulated
// compute; outputs leave when the burst completes (a tx burst). With
// `burst_size == 1` the node degrades to the classic single-server
// queue, serving one packet per `service(...)` call — the per-packet
// datapath of PR 1, kept as the batching ablation baseline. The
// bounded queues are what turn per-packet (and per-burst) costs into
// throughput limits, so the relative numbers in E1/E2 come from code,
// not from constants pasted into benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"

namespace harmless::sim {

class Node;

/// One attachment point of a node. tx goes into a Channel (if wired).
class Port {
 public:
  Port(Node& owner, int index) : owner_(&owner), index_(index) {}

  /// Transmit through the attached channel; counts and drops silently
  /// when unwired (like a NIC with no cable).
  void send(net::Packet&& packet);

  /// Called by the channel sink; forwards into the owner node.
  void receive(net::Packet&& packet);

  void attach(Channel* out) { out_ = out; }
  [[nodiscard]] bool wired() const { return out_ != nullptr; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] Channel* channel() const { return out_; }

  util::RateCounter tx;
  util::RateCounter rx;
  std::uint64_t tx_unwired_drops = 0;

 private:
  Node* owner_;
  int index_;
  Channel* out_ = nullptr;
};

class Node {
 public:
  Node(Engine& engine, std::string name) : engine_(engine), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Packet arrived on port `in_port` (rx counters already updated).
  virtual void handle(int in_port, net::Packet&& packet) = 0;

  /// Grow the port array to at least `count` ports.
  void ensure_ports(std::size_t count);
  [[nodiscard]] Port& port(std::size_t index);
  [[nodiscard]] const Port& port(std::size_t index) const;
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  Engine& engine_;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

/// Burst-serviced queueing node over per-port RX queues (see file
/// comment).
class ServicedNode : public Node {
 public:
  /// One (in_port, packet) unit of a service burst, in service order.
  using Burst = sim::Burst;

  ServicedNode(Engine& engine, std::string name, IngressSpec ingress = {},
               std::size_t burst_size = 32)
      : Node(engine, std::move(name)),
        ingress_(ingress),
        burst_size_(burst_size == 0 ? 1 : burst_size),
        scheduler_(make_scheduler(ingress.scheduler)) {}

  void handle(int in_port, net::Packet&& packet) final;

  /// Maximum packets drained per service burst. 1 = per-packet service
  /// (the classic single-server queue; `service()` is called directly
  /// and `service_burst()` never runs).
  void set_burst_size(std::size_t burst_size) { burst_size_ = burst_size == 0 ? 1 : burst_size; }
  [[nodiscard]] std::size_t burst_size() const { return burst_size_; }

  /// Swap the burst scheduler (spec form resets cursor/deficit state).
  void set_scheduler(const SchedulerSpec& spec) {
    ingress_.scheduler = spec;
    scheduler_ = make_scheduler(spec);
  }
  void set_scheduler(std::unique_ptr<BurstScheduler> scheduler) {
    if (scheduler != nullptr) scheduler_ = std::move(scheduler);
  }
  [[nodiscard]] const BurstScheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] const IngressSpec& ingress() const { return ingress_; }

  /// Total tail drops across all port queues (shared-bound and
  /// per-port-bound drops both count; each is also attributed to the
  /// arriving port's RxQueue).
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  /// Total backlog across all port queues.
  [[nodiscard]] std::size_t queue_depth() const { return total_depth_; }

  /// Per-port RX queue stats (depth, drops, peak depth). Queues are
  /// created on demand; `rx_queue_count()` is what the poll loop
  /// sweeps every burst.
  [[nodiscard]] std::size_t rx_queue_count() const { return rx_queues_.size(); }
  [[nodiscard]] const RxQueue& rx_queue(std::size_t index) const { return rx_queues_[index]; }
  /// Cumulative per-queue polls across all service bursts (every burst
  /// polls every RX queue once, empty or not — poll-mode drivers pay
  /// for silence too; the datapath charges rx_poll_ns each).
  [[nodiscard]] std::uint64_t rx_polls() const { return rx_polls_; }

  /// Total simulated compute spent in service()/service_burst().
  [[nodiscard]] SimNanos busy_ns() const { return busy_ns_; }
  /// Service bursts drained (equals packets served when burst_size==1).
  [[nodiscard]] std::uint64_t bursts_served() const { return bursts_served_; }

 protected:
  /// Process one packet: mutate/forward it via port(i).send(...) and
  /// return the compute cost in ns. Outputs scheduled inside service()
  /// are delayed by that same cost (they leave when processing ends).
  virtual SimNanos service(int in_port, net::Packet&& packet) = 0;

  /// Process one burst and return its total compute cost. The default
  /// serves packets one by one through service(), so nodes that never
  /// override it keep per-packet semantics (costs sum; outputs still
  /// leave together when the burst completes). SoftSwitch overrides
  /// this with the batched cache-replay datapath.
  virtual SimNanos service_burst(Burst&& burst) {
    SimNanos cost = 0;
    for (auto& [in_port, packet] : burst) cost += service(in_port, std::move(packet));
    return cost;
  }

  /// Emit a packet from `out_port` once the current service completes.
  /// Only valid while inside service().
  void emit(std::size_t out_port, net::Packet&& packet);

  /// True while service() is executing (emit() is legal).
  [[nodiscard]] bool in_service() const { return in_service_; }

  /// RX queues polled by the burst currently in service (the node's
  /// whole queue array) — service_burst() implementations bill their
  /// per-queue poll cost from this.
  [[nodiscard]] std::size_t queues_polled() const { return queues_polled_; }

  /// Pre-size the RX queue array (one queue per port); queues still
  /// grow on demand if a packet arrives on a later port. Sizing up
  /// front makes the per-burst poll bill honest from the first packet.
  void ensure_rx_queues(std::size_t count);

  /// How a completed output leaves the node. Default: the sim port's
  /// channel. SoftSwitch overrides this to divert patch-bound ports
  /// into the peer switch without a wire.
  virtual void transmit(std::size_t out_port, net::Packet&& packet) {
    port(out_port).send(std::move(packet));
  }

 private:
  void drain();
  [[nodiscard]] RxQueue& rx_queue_for(int in_port);

  IngressSpec ingress_;
  std::size_t burst_size_;
  std::unique_ptr<BurstScheduler> scheduler_;
  std::vector<RxQueue> rx_queues_;
  std::size_t total_depth_ = 0;
  std::uint64_t arrival_seq_ = 0;
  std::size_t queues_polled_ = 0;
  std::uint64_t rx_polls_ = 0;
  std::vector<std::pair<std::size_t, net::Packet>> pending_out_;
  bool draining_ = false;
  bool in_service_ = false;
  SimNanos busy_until_ = 0;
  SimNanos busy_ns_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t bursts_served_ = 0;
};

}  // namespace harmless::sim

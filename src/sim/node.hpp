// sim/node.hpp — nodes and ports.
//
// A Node is anything with numbered ports: hosts, the legacy switch, the
// software switches. Ports receive from / transmit into Channels.
//
// `ServicedNode` adds the processing model every switching element
// uses: arriving packets land in one bounded RxQueue per ingress port
// (sim/scheduler.hpp), each queue is steered to one worker core
// (CoreSpec: RSS-style hash with a pin-map override), and every core
// runs its own burst service loop — a pluggable BurstScheduler
// instance picks which of *its* queues each service burst of up to
// `burst_size` packets drains (FCFS by default — bit-exact with the
// historical shared FIFO when cores == 1). Each burst takes
// `service_burst(...)` nanoseconds of simulated compute; outputs
// leave when their core's burst completes (a tx burst).
//
// The multi-core step model is bulk-synchronous run-to-completion:
// every service step, each backlogged core drains one burst; each
// core's busy nanoseconds accrue separately (busy_ns() sums them —
// total compute), each core's outputs leave at step-start + its own
// burst cost, and simulated time advances by the step *makespan* (max
// over cores) — parallel speedup is the ratio of work done to the
// slowest core's bill, never a free lunch. With cores == 1 the loop
// degrades bit-exactly to the single-core datapath of PR 2-4.
//
// With `burst_size == 1` a core degrades to the classic single-server
// queue, serving one packet per `service(...)` call — the per-packet
// datapath of PR 1, kept as the batching ablation baseline.
// `SchedulerSpec::adaptive_burst` makes the budget track each core's
// backlog between adaptive_min_burst and burst_size, so light load
// takes the per-packet path (no idle poll sweep) and overload keeps
// the full batch. The bounded queues are what turn per-packet (and
// per-burst) costs into throughput limits, so the relative numbers in
// E1/E2 come from code, not from constants pasted into benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"

namespace harmless::sim {

class Node;

/// One attachment point of a node. tx goes into a Channel (if wired).
class Port {
 public:
  Port(Node& owner, int index) : owner_(&owner), index_(index) {}

  /// Transmit through the attached channel; counts and drops silently
  /// when unwired (like a NIC with no cable).
  void send(net::Packet&& packet);

  /// Called by the channel sink; forwards into the owner node.
  void receive(net::Packet&& packet);

  void attach(Channel* out) { out_ = out; }
  [[nodiscard]] bool wired() const { return out_ != nullptr; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] Channel* channel() const { return out_; }

  util::RateCounter tx;
  util::RateCounter rx;
  std::uint64_t tx_unwired_drops = 0;

 private:
  Node* owner_;
  int index_;
  Channel* out_ = nullptr;
};

class Node {
 public:
  Node(Engine& engine, std::string name) : engine_(engine), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Packet arrived on port `in_port` (rx counters already updated).
  virtual void handle(int in_port, net::Packet&& packet) = 0;

  /// The cable on port `port_index` changed state (either direction of
  /// the duplex pair; Network wires channel state observers here).
  /// Real switches react — flush MACs learned on the port, raise
  /// port-status — so failable nodes override this; the default is the
  /// dumb-NIC behaviour of noticing nothing.
  virtual void on_port_link(int port_index, bool up) {
    (void)port_index;
    (void)up;
  }

  /// Grow the port array to at least `count` ports.
  void ensure_ports(std::size_t count);
  [[nodiscard]] Port& port(std::size_t index);
  [[nodiscard]] const Port& port(std::size_t index) const;
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  Engine& engine_;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

/// Burst-serviced queueing node over per-port RX queues (see file
/// comment).
class ServicedNode : public Node {
 public:
  /// One (in_port, packet) unit of a service burst, in service order.
  using Burst = sim::Burst;

  ServicedNode(Engine& engine, std::string name, IngressSpec ingress = {},
               std::size_t burst_size = 32)
      : Node(engine, std::move(name)),
        ingress_(ingress),
        burst_size_(burst_size == 0 ? 1 : burst_size) {
    cores_.resize(ingress_.cores.cores == 0 ? 1 : ingress_.cores.cores);
    for (Core& core : cores_) core.scheduler = make_scheduler(ingress_.scheduler);
  }

  void handle(int in_port, net::Packet&& packet) final;

  /// Maximum packets drained per core per service burst. 1 = per-packet
  /// service (the classic single-server queue; `service()` is called
  /// directly and `service_burst()` never runs).
  void set_burst_size(std::size_t burst_size) { burst_size_ = burst_size == 0 ? 1 : burst_size; }
  [[nodiscard]] std::size_t burst_size() const { return burst_size_; }

  /// Swap every core's burst scheduler (resets cursor/deficit state).
  void set_scheduler(const SchedulerSpec& spec) {
    ingress_.scheduler = spec;
    for (Core& core : cores_) core.scheduler = make_scheduler(spec);
  }
  /// Swap core 0's scheduler object directly (single-core test hook).
  void set_scheduler(std::unique_ptr<BurstScheduler> scheduler) {
    if (scheduler != nullptr) cores_.front().scheduler = std::move(scheduler);
  }
  [[nodiscard]] const BurstScheduler& scheduler() const { return *cores_.front().scheduler; }
  [[nodiscard]] const IngressSpec& ingress() const { return ingress_; }

  /// Worker-core layout (fixed at construction via IngressSpec::cores).
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  /// Which core queue `queue_index` is steered to (pin map / RSS hash).
  [[nodiscard]] std::size_t core_of_queue(std::size_t queue_index) const {
    return queue_index < queue_core_.size() ? queue_core_[queue_index]
                                            : ingress_.cores.core_of(queue_index);
  }
  /// Per-core observables: simulated compute, bursts drained, queue
  /// polls swept, packets served, queues owned, live backlog.
  [[nodiscard]] SimNanos core_busy_ns(std::size_t core) const { return cores_.at(core).busy_ns; }
  [[nodiscard]] std::uint64_t core_bursts(std::size_t core) const {
    return cores_.at(core).bursts;
  }
  [[nodiscard]] std::uint64_t core_rx_polls(std::size_t core) const {
    return cores_.at(core).rx_polls;
  }
  [[nodiscard]] std::uint64_t core_packets(std::size_t core) const {
    return cores_.at(core).packets;
  }
  [[nodiscard]] std::size_t core_queue_count(std::size_t core) const {
    return cores_.at(core).queue_indices.size();
  }
  [[nodiscard]] std::size_t core_backlog(std::size_t core) const {
    return cores_.at(core).backlog;
  }

  /// Total tail drops across all port queues (shared-bound and
  /// per-port-bound drops both count; each is also attributed to the
  /// arriving port's RxQueue).
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  /// Total backlog across all port queues.
  [[nodiscard]] std::size_t queue_depth() const { return total_depth_; }

  /// Per-port RX queue stats (depth, drops, peak depth). Queues are
  /// created on demand; `rx_queue_count()` is what the poll loop
  /// sweeps every burst.
  [[nodiscard]] std::size_t rx_queue_count() const { return rx_queues_.size(); }
  [[nodiscard]] const RxQueue& rx_queue(std::size_t index) const { return rx_queues_[index]; }
  /// RX queues per port: 1 normally; `cores` under RssPolicy::kSymmetric
  /// with multiple cores (the (port, core) queue grid — queue index =
  /// port * stride + core).
  [[nodiscard]] std::size_t queue_stride() const {
    return ingress_.cores.rss == RssPolicy::kSymmetric ? cores_.size() : 1;
  }
  /// Per-*port* aggregates over the port's queue group (== the single
  /// queue's numbers outside the symmetric grid).
  [[nodiscard]] std::size_t port_queue_depth(std::size_t port) const;
  [[nodiscard]] std::uint64_t port_queue_drops(std::size_t port) const;
  [[nodiscard]] std::size_t port_queue_peak_depth(std::size_t port) const;
  /// Cumulative per-queue polls across all service bursts (every burst
  /// polls every RX queue once, empty or not — poll-mode drivers pay
  /// for silence too; the datapath charges rx_poll_ns each).
  [[nodiscard]] std::uint64_t rx_polls() const { return rx_polls_; }

  /// Total simulated compute spent in service()/service_burst().
  [[nodiscard]] SimNanos busy_ns() const { return busy_ns_; }
  /// Service bursts drained (equals packets served when burst_size==1).
  [[nodiscard]] std::uint64_t bursts_served() const { return bursts_served_; }

 protected:
  /// Process one packet: mutate/forward it via port(i).send(...) and
  /// return the compute cost in ns. Outputs scheduled inside service()
  /// are delayed by that same cost (they leave when processing ends).
  virtual SimNanos service(int in_port, net::Packet&& packet) = 0;

  /// Process one burst and return its total compute cost. The default
  /// serves packets one by one through service(), so nodes that never
  /// override it keep per-packet semantics (costs sum; outputs still
  /// leave together when the burst completes). SoftSwitch overrides
  /// this with the batched cache-replay datapath.
  virtual SimNanos service_burst(Burst&& burst) {
    SimNanos cost = 0;
    for (auto& [in_port, packet] : burst) cost += service(in_port, std::move(packet));
    return cost;
  }

  /// Emit a packet from `out_port` once the current service completes.
  /// Only valid while inside service().
  void emit(std::size_t out_port, net::Packet&& packet);

  /// True while service() is executing (emit() is legal).
  [[nodiscard]] bool in_service() const { return in_service_; }

  /// RX queues polled by the burst currently in service (the serving
  /// core's whole queue subset) — service_burst() implementations bill
  /// their per-queue poll cost from this.
  [[nodiscard]] std::size_t queues_polled() const { return queues_polled_; }

  /// The worker core whose burst is currently in service — SoftSwitch
  /// keys its flow-cache shard (and per-core billing) off this. Only
  /// meaningful inside service()/service_burst().
  [[nodiscard]] std::size_t current_core() const { return current_core_; }

  /// Pre-size the RX queue array for `port_count` ports (one queue per
  /// port; a full (port, core) group per port under the symmetric
  /// grid); queues still grow on demand if a packet arrives on a later
  /// port. Sizing up front makes the per-burst poll bill honest from
  /// the first packet.
  void ensure_rx_queues(std::size_t port_count);

  /// How a completed output leaves the node. Default: the sim port's
  /// channel. SoftSwitch overrides this to divert patch-bound ports
  /// into the peer switch without a wire.
  virtual void transmit(std::size_t out_port, net::Packet&& packet) {
    port(out_port).send(std::move(packet));
  }

 private:
  /// One run-to-completion worker core: its scheduler instance, the
  /// queues steered to it (append order — stable, so per-view
  /// cursor/deficit state stays coherent), and its own service bill.
  struct Core {
    std::unique_ptr<BurstScheduler> scheduler;
    std::vector<std::size_t> queue_indices;
    std::vector<RxQueue*> view;  // rebuilt lazily after queue growth
    Burst burst;                 // per-step scratch, recycled across bursts
    std::size_t backlog = 0;     // packets across this core's queues
    SimNanos busy_ns = 0;
    std::uint64_t bursts = 0;
    std::uint64_t rx_polls = 0;
    std::uint64_t packets = 0;
  };

  void drain();
  /// Serve one burst on `core`; returns its compute cost (the step
  /// loop folds it into the makespan).
  SimNanos serve_core(std::size_t core_index, SimNanos step_start);
  /// Which core of the symmetric grid this packet steers to (pin map
  /// override by port, symmetric flow hash otherwise). Always 0 when
  /// the grid is collapsed (stride 1 — core_of steers the queue).
  [[nodiscard]] std::size_t steer_core(std::size_t port, net::Packet& packet);
  void refresh_views();

  IngressSpec ingress_;
  std::size_t burst_size_;
  std::vector<Core> cores_;
  std::vector<RxQueue> rx_queues_;
  std::vector<std::size_t> queue_core_;  // queue index -> owning core
  bool views_dirty_ = false;
  std::size_t current_core_ = 0;
  std::size_t total_depth_ = 0;
  std::uint64_t arrival_seq_ = 0;
  std::size_t queues_polled_ = 0;
  std::uint64_t rx_polls_ = 0;
  std::vector<std::pair<std::size_t, net::Packet>> pending_out_;
  /// Delivered tx-burst vectors come back here so serve_core can reuse
  /// their capacity instead of reallocating one per burst.
  std::vector<std::vector<std::pair<std::size_t, net::Packet>>> out_pool_;
  bool draining_ = false;
  bool in_service_ = false;
  SimNanos busy_until_ = 0;
  SimNanos busy_ns_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t bursts_served_ = 0;
};

}  // namespace harmless::sim

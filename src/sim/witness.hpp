// sim/witness.hpp — the lease-arbitrating witness for split-brain-safe HA.
//
// An active/standby pair alone cannot distinguish "my peer died" from
// "the wire between us died": both look like heartbeat silence, and a
// standby that promotes on silence while the active still serves will
// double-allocate NAT state. The classic fix is a third party — a
// witness — that hands out a revocable, epoch-numbered lease:
//
//   * At most one holder at a time. A grant to a new client only
//     happens once the previous holder's lease has *expired* on the
//     witness's clock, and every holder change bumps the epoch.
//   * The holder must keep renewing. A holder that cannot reach the
//     witness watches its own lease expire and fences itself (stops
//     minting conntrack/NAT state) at or before the instant the
//     witness would consider the lease lapsed — simulated clocks are
//     synchronized, so local expiry is always <= witness expiry, and
//     the next grant's response arrives strictly later (>= rtt/2).
//     Hence: at most one unfenced active at any simulated time.
//   * Epochs are durable across witness crashes (the ledger is the
//     witness's "disk"); a crashed witness simply stops answering,
//     which fails *closed* — nobody can promote, current holder fences
//     at expiry.
//
// The witness is a FaultPoint like everything else, and each client
// talks to it over a WitnessLink — a private request/response wire with
// its own rtt and up/down state — so the chaos suite can partition
// active-witness, standby-witness, or both, independently of the
// replication channel.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event.hpp"
#include "sim/faults.hpp"
#include "sim/time.hpp"

namespace harmless::sim {

/// Lease/arbitration tunables (EXPERIMENTS.md "Witness & fencing knobs").
struct WitnessSpec {
  SimNanos lease_validity_ns = 2'000'000;  // grant lifetime on both clocks
  SimNanos renew_interval_ns = 500'000;    // how often the holder renews
  SimNanos rtt_ns = 100'000;               // witness link round-trip
};

/// The arbiter: a single revocable lease with an epoch ledger.
class Witness : public FaultPoint {
 public:
  explicit Witness(const WitnessSpec& spec = {}) : spec_(spec) {}

  struct Decision {
    bool granted = false;
    std::uint64_t epoch = 0;       // current epoch (post-bump when granted)
    SimNanos expires_at = 0;       // absolute, on the shared sim clock
  };

  /// Grant or deny the lease to `client` (nonzero id, e.g. the
  /// datapath id) as of `now`. Same-holder calls renew (no epoch
  /// bump); a different client is denied until the current lease
  /// expires, then granted under a bumped epoch.
  Decision decide(std::uint64_t client, SimNanos now);

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t holder() const { return holder_; }
  [[nodiscard]] const WitnessSpec& spec() const { return spec_; }

  /// A crashed witness stops answering but keeps its ledger — epoch
  /// durability is what makes fencing safe across arbiter restarts.
  void fault_crash() override { crashed_ = true; ++stats_.crashes; }
  void fault_restart() override { crashed_ = false; }

  struct Stats {
    std::uint64_t grants = 0;      // holder-changing grants
    std::uint64_t renewals = 0;    // same-holder extensions
    std::uint64_t denials = 0;
    std::uint64_t epoch_bumps = 0;
    std::uint64_t crashes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  WitnessSpec spec_;
  std::uint64_t holder_ = 0;  // 0 = unheld
  std::uint64_t epoch_ = 0;
  SimNanos expires_at_ = 0;
  bool crashed_ = false;
  Stats stats_;
};

/// One client's wire to the witness: request/response with rtt, failable
/// independently per client (partition just the active's view, or just
/// the standby's). Requests and responses in flight across a down
/// transition are lost, like every other channel here.
class WitnessLink : public FaultPoint {
 public:
  using GrantHandler = std::function<void(bool granted, std::uint64_t epoch,
                                          SimNanos expires_at)>;

  WitnessLink(Engine& engine, Witness& witness, std::uint64_t client_id)
      : engine_(engine), witness_(witness), client_id_(client_id) {}

  /// Fire a lease request; `handler` runs one rtt later with the
  /// witness's decision (or never, if either direction drops or the
  /// witness is down at arrival time).
  void request_lease(GrantHandler handler);

  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }
  void fault_set_up(bool up) override { up_ = up; }

  [[nodiscard]] Witness& witness() { return witness_; }
  [[nodiscard]] const WitnessSpec& spec() const { return witness_.spec(); }
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t requests_dropped = 0;   // link down at send or arrival
    std::uint64_t responses_dropped = 0;  // link down on the way back
    std::uint64_t granted = 0;
    std::uint64_t denied = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Engine& engine_;
  Witness& witness_;
  std::uint64_t client_id_;
  bool up_ = true;
  Stats stats_;
};

}  // namespace harmless::sim

// sim/link.hpp — unidirectional wire model.
//
// A Channel models one direction of a cable: a drop-tail output queue
// in front of a transmitter that serializes at the line rate, followed
// by a fixed propagation delay. `Network::connect` pairs two Channels
// into a duplex link.
//
// Timing model for a packet handed to transmit() at time t:
//   start  = max(t, transmitter_free)
//   departs = start + serialization(size)
//   arrives = departs + propagation_delay
// Packets whose queue (packets waiting to start) exceeds the capacity
// are dropped and counted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace harmless::sim {

struct LinkSpec {
  Rate rate = Rate::gbps(1);
  SimNanos propagation_delay = 500_ns;  // ~100 m of fibre
  std::size_t queue_capacity_packets = 256;

  static LinkSpec gbps(double gigabits, SimNanos delay = 500_ns) {
    return LinkSpec{Rate::gbps(gigabits), delay, 256};
  }
};

class Channel {
 public:
  Channel(Engine& engine, LinkSpec spec, std::string label);

  /// Where delivered packets go (the far-side port).
  void set_sink(std::function<void(net::Packet&&)> sink) { sink_ = std::move(sink); }

  /// Passive observer invoked at delivery time, before the sink (pcap
  /// taps, test probes). At most one per channel.
  void set_tap(std::function<void(SimNanos, const net::Packet&)> tap) {
    tap_ = std::move(tap);
  }

  /// Enqueue a packet for transmission; may drop if the queue is full.
  void transmit(net::Packet&& packet);

  /// Failure injection: a downed channel drops everything handed to it
  /// — and everything already in flight at delivery time — counted in
  /// drops_down(). State transitions notify the observer (how endpoint
  /// nodes see their link die: MAC flushes, port-status).
  void set_up(bool up) {
    if (up_ == up) return;
    up_ = up;
    if (state_observer_) state_observer_(up);
  }
  [[nodiscard]] bool is_up() const { return up_; }

  /// Observe up/down transitions (at most one observer; Network wires
  /// it to both endpoint nodes' on_port_link).
  void set_state_observer(std::function<void(bool)> observer) {
    state_observer_ = std::move(observer);
  }

  [[nodiscard]] const util::RateCounter& delivered() const { return delivered_; }
  /// All drops (downed-link + queue-overflow) — the historical counter.
  [[nodiscard]] std::uint64_t drops() const { return drops_down_ + drops_overflow_; }
  /// Frames lost because the link was down (at admission or in flight).
  [[nodiscard]] std::uint64_t drops_down() const { return drops_down_; }
  /// Frames tail-dropped by the bounded transmit queue.
  [[nodiscard]] std::uint64_t drops_overflow() const { return drops_overflow_; }
  [[nodiscard]] std::size_t queue_depth() const { return queued_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

  /// Total time the transmitter has spent serializing; divide by the
  /// observation window for utilization.
  [[nodiscard]] SimNanos busy_ns() const { return busy_ns_; }

 private:
  Engine& engine_;
  LinkSpec spec_;
  std::string label_;
  std::function<void(net::Packet&&)> sink_;
  std::function<void(SimNanos, const net::Packet&)> tap_;
  std::function<void(bool)> state_observer_;
  bool up_ = true;
  SimNanos transmitter_free_ = 0;
  /// One-entry memo for rate.serialization_ns(size): streams repeat one
  /// frame size, and the divide + ceil shows up at per-packet rates.
  std::size_t memo_size_ = static_cast<std::size_t>(-1);
  SimNanos memo_serialization_ = 0;
  std::size_t queued_ = 0;  // packets accepted but not yet departed
  std::uint64_t drops_down_ = 0;
  std::uint64_t drops_overflow_ = 0;
  SimNanos busy_ns_ = 0;
  util::RateCounter delivered_;
};

}  // namespace harmless::sim

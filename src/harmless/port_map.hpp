// harmless/port_map.hpp — the heart of the Tagging-and-Hairpinning
// scheme: the bijection
//
//     legacy access port  <->  VLAN id  <->  SS_2 OpenFlow port
//
// Fig. 1 of the paper: access port 1 <-> VLAN 101 <-> SS_2 port 1,
// access port 2 <-> VLAN 102 <-> SS_2 port 2, ... The PortMap also
// fixes where each mapping lives in SS_1's port space: SS_1 port 1 is
// the trunk; SS_1 port (1 + k) is the patch leg toward SS_2 port k.
//
// Everything downstream is *generated* from this object — the legacy
// VLAN config, SS_1's translator rules, the patch wiring — so a single
// validated source of truth rules out the classic hybrid-SDN failure
// mode of drifting port/VLAN tables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/vlan.hpp"
#include "util/result.hpp"

namespace harmless::core {

struct MappedPort {
  int legacy_port = 0;          // 1-based access port on the legacy switch
  net::VlanId vlan = 0;         // unique tag for this port
  std::uint32_t ss2_port = 0;   // OF port on SS_2 (1-based)
  /// Which trunk leg carries this port's VLAN (index into
  /// PortMap::trunk_ports(); always 0 for single-trunk deployments).
  int trunk_index = 0;

  friend bool operator==(const MappedPort&, const MappedPort&) = default;
};

class PortMap {
 public:
  /// Build the canonical mapping of the paper: access ports as given,
  /// VLAN id = `vlan_base` + legacy port number (port 1 -> 101 with the
  /// default base 100), SS_2 ports numbered 1..N in list order.
  /// `trunk_port` is the legacy port cabled to the SS_1 box.
  static util::Result<PortMap> make(std::vector<int> access_ports, int trunk_port,
                                    int vlan_base = 100);

  /// Bonded variant: several legacy ports are cabled to the S4 box
  /// (one NIC port each); access ports are assigned to trunks round-
  /// robin, which balances per-port load without per-flow hashing.
  static util::Result<PortMap> make_bonded(std::vector<int> access_ports,
                                           std::vector<int> trunk_ports, int vlan_base = 100);

  /// Fully explicit construction (tests exercise odd shapes).
  static util::Result<PortMap> make_explicit(std::vector<MappedPort> ports,
                                             std::vector<int> trunk_ports);

  [[nodiscard]] const std::vector<MappedPort>& ports() const { return ports_; }
  /// First (or only) trunk — kept for the common single-trunk case.
  [[nodiscard]] int trunk_port() const { return trunk_ports_.front(); }
  [[nodiscard]] const std::vector<int>& trunk_ports() const { return trunk_ports_; }
  [[nodiscard]] std::size_t trunk_count() const { return trunk_ports_.size(); }
  [[nodiscard]] std::size_t size() const { return ports_.size(); }

  // ---- lookups (nullopt when unmapped) ----
  [[nodiscard]] std::optional<net::VlanId> vlan_for_legacy(int legacy_port) const;
  [[nodiscard]] std::optional<int> legacy_for_vlan(net::VlanId vlan) const;
  [[nodiscard]] std::optional<std::uint32_t> ss2_for_vlan(net::VlanId vlan) const;
  [[nodiscard]] std::optional<net::VlanId> vlan_for_ss2(std::uint32_t ss2_port) const;
  [[nodiscard]] std::optional<std::uint32_t> ss2_for_legacy(int legacy_port) const;

  /// SS_1's OF port for trunk leg `trunk_index` (legs occupy 1..T).
  [[nodiscard]] std::uint32_t ss1_trunk_port(int trunk_index = 0) const {
    return static_cast<std::uint32_t>(trunk_index) + 1;
  }
  /// SS_1's OF port patched to the given SS_2 port (after the trunks).
  [[nodiscard]] std::uint32_t ss1_patch_port(std::uint32_t ss2_port) const {
    return static_cast<std::uint32_t>(trunk_ports_.size()) + ss2_port;
  }
  /// Ports SS_1 needs in total (trunk legs + one patch per mapping).
  [[nodiscard]] std::size_t ss1_port_count() const {
    return trunk_ports_.size() + ports_.size();
  }

  [[nodiscard]] std::string to_string() const;

 private:
  PortMap(std::vector<MappedPort> ports, std::vector<int> trunk_ports)
      : ports_(std::move(ports)), trunk_ports_(std::move(trunk_ports)) {}
  [[nodiscard]] static util::Result<PortMap> validated(PortMap map);

  std::vector<MappedPort> ports_;
  std::vector<int> trunk_ports_;
};

}  // namespace harmless::core

#include "harmless/fabric.hpp"

namespace harmless::core {

Fabric Fabric::build(sim::Network& network, legacy::LegacySwitch& device, const PortMap& map,
                     const FabricSpec& spec) {
  Fabric fabric(map, make_translator_rules(map));
  if (spec.expected_pending_events > 0)
    network.engine().reserve(spec.expected_pending_events);

  // SS_1: trunk leg (OF 1) + one patch leg per mapping.
  fabric.ss1_ = &network.add_node<softswitch::SoftSwitch>(
      "SS_1", spec.ss1_datapath_id, fabric.map_.ss1_port_count(), /*table_count=*/1,
      spec.specialized_matchers, spec.flow_cache, spec.burst_size, spec.ingress);
  // SS_2: one OF port per managed access port.
  fabric.ss2_ = &network.add_node<softswitch::SoftSwitch>(
      "SS_2", spec.ss2_datapath_id, fabric.map_.size(), spec.ss2_tables,
      spec.specialized_matchers, spec.flow_cache, spec.burst_size, spec.ingress);
  // Every cache shard (one per worker core) follows the ablation knob.
  fabric.ss1_->pipeline().set_linear_scan(spec.cache_linear_scan);
  fabric.ss2_->pipeline().set_linear_scan(spec.cache_linear_scan);

  // Trunk cables: one per bonded leg, legacy trunk port i <-> SS_1 OF
  // port (1+i).
  for (std::size_t leg = 0; leg < fabric.map_.trunk_count(); ++leg) {
    const std::size_t channels_before = network.channels().size();
    network.connect(device,
                    static_cast<std::size_t>(fabric.map_.trunk_ports()[leg] - 1), *fabric.ss1_,
                    fabric.map_.ss1_trunk_port(static_cast<int>(leg)) - 1, spec.trunk_link);
    fabric.trunk_channels_.push_back(network.channels()[channels_before].get());
    fabric.trunk_channels_.push_back(network.channels()[channels_before + 1].get());
  }

  // Patch pairs: SS_1 port (T+k) <-> SS_2 port k.
  for (const MappedPort& mapped : fabric.map_.ports())
    fabric.ss1_->bind_patch(fabric.map_.ss1_patch_port(mapped.ss2_port), *fabric.ss2_,
                            mapped.ss2_port);

  // The Manager owns SS_1: translator rules go in directly.
  for (const openflow::FlowModMsg& mod : fabric.rules_.flow_mods)
    fabric.ss1_->install(mod).check();

  // SS_2's controller channel (connected to a Controller by the caller
  // or the Manager).
  fabric.channel_ = std::make_unique<openflow::ControlChannel>(
      network.engine(), spec.control_latency, spec.control_seed);
  fabric.channel_->set_min_gap(spec.control_min_gap);
  if (spec.control_impairment.active())
    fabric.channel_->set_impairment(spec.control_impairment, spec.control_impairment);
  fabric.ss2_->attach_channel(*fabric.channel_);
  if (spec.ss2_failover.enabled()) fabric.ss2_->set_failover(spec.ss2_failover);
  return fabric;
}

void Fabric::register_faults(sim::FaultInjector& injector) {
  // Legacy aliases (the original hard-coded four): whole-trunk, the
  // control channel, and the two switches.
  for (sim::Channel* channel : trunk_channels_) injector.register_link("trunk", *channel);
  if (channel_) injector.register_point("control", *channel_);
  if (ss1_ != nullptr) injector.register_point("ss1", *ss1_);
  if (ss2_ != nullptr) injector.register_point("ss2", *ss2_);
  // Derived names — every component self-registers, so plans scale to
  // any fabric shape without new hard-coding here.
  if (ss1_ != nullptr) injector.register_point("switch:SS_1", *ss1_);
  if (ss2_ != nullptr) injector.register_point("switch:SS_2", *ss2_);
  if (channel_) injector.register_point("control:SS_2", *channel_);
  // Per-leg trunk targets: trunk_channels_ holds both directions of
  // each bonded leg, in leg order.
  for (std::size_t i = 0; i < trunk_channels_.size(); ++i)
    injector.register_link("trunk:leg" + std::to_string(i / 2), *trunk_channels_[i]);
}

void Fabric::register_faults(sim::FaultInjector& injector, sim::Network& network) {
  register_faults(injector);
  for (const auto& channel : network.channels())
    injector.register_link("link:" + channel->label(), *channel);
}

void Fabric::set_trunk_up(bool up) {
  trunk_up_ = up;
  for (sim::Channel* channel : trunk_channels_) channel->set_up(up);
  // SS_1 sees its trunk legs change state; harmless for data (the
  // channels already drop) but keeps the OF port model truthful.
  if (ss1_ != nullptr)
    for (std::size_t leg = 0; leg < map_.trunk_count(); ++leg)
      ss1_->set_port_state(map_.ss1_trunk_port(static_cast<int>(leg)), up);
}

}  // namespace harmless::core

#include "harmless/cost_model.hpp"

#include <cmath>
#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace harmless::core {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kForkliftSdn: return "forklift-COTS-SDN";
    case Strategy::kPureSoftware: return "pure-software";
    case Strategy::kHarmless: return "HARMLESS";
  }
  return "?";
}

double CostEstimate::total_usd() const {
  double total = 0;
  for (const BomLine& line : bom) total += line.total_usd();
  return total;
}

std::string CostEstimate::to_string() const {
  std::ostringstream os;
  os << strategy_name(strategy) << " for " << sdn_ports << " SDN ports:\n";
  for (const BomLine& line : bom)
    os << util::format("  %-38s x%-3d $%8.0f\n", line.item.c_str(), line.quantity,
                       line.total_usd());
  os << util::format("  total $%.0f  ($%.1f/port)\n", total_usd(), usd_per_port());
  return os.str();
}

CostEstimate CostModel::estimate(Strategy strategy, int port_count, bool greenfield) const {
  if (port_count <= 0) throw util::ConfigError("cost model: port_count must be positive");
  CostEstimate estimate;
  estimate.strategy = strategy;
  estimate.sdn_ports = port_count;

  const int legacy_switches = static_cast<int>(
      std::ceil(static_cast<double>(port_count) / catalog_.legacy_switch.ports));

  switch (strategy) {
    case Strategy::kForkliftSdn: {
      const int units = static_cast<int>(
          std::ceil(static_cast<double>(port_count) / catalog_.sdn_switch.ports));
      estimate.bom.push_back({catalog_.sdn_switch.name, units, catalog_.sdn_switch.price_usd});
      break;
    }
    case Strategy::kPureSoftware: {
      // Every host port is a NIC port in a server chassis.
      const int nics = static_cast<int>(
          std::ceil(static_cast<double>(port_count) / catalog_.nic_quad_1g.ports));
      const int nics_per_server = catalog_.server_max_nic_ports / catalog_.nic_quad_1g.ports;
      const int servers =
          static_cast<int>(std::ceil(static_cast<double>(nics) / nics_per_server));
      estimate.bom.push_back({catalog_.server.name, servers, catalog_.server.price_usd});
      estimate.bom.push_back({catalog_.nic_quad_1g.name, nics, catalog_.nic_quad_1g.price_usd});
      break;
    }
    case Strategy::kHarmless: {
      // Keep the legacy switches; add one server + 10G NIC + trunk
      // cable per switch. (One ESwitch-class server saturates a 10G
      // trunk, which oversubscribes 48x1G at 4.8:1 — standard access
      // oversubscription; E7 quantifies the knee.)
      if (greenfield)
        estimate.bom.push_back(
            {catalog_.legacy_switch.name, legacy_switches, catalog_.legacy_switch.price_usd});
      estimate.bom.push_back({catalog_.server.name, legacy_switches, catalog_.server.price_usd});
      estimate.bom.push_back({catalog_.nic_10g.name, legacy_switches, catalog_.nic_10g.price_usd});
      estimate.bom.push_back(
          {catalog_.trunk_cable.name, legacy_switches, catalog_.trunk_cable.price_usd});
      break;
    }
  }
  return estimate;
}

}  // namespace harmless::core

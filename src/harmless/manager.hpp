// harmless/manager.hpp — the HARMLESS Manager.
//
// The paper's §2: "Relying on Python and BASH, we developed the
// HARMLESS Manager that automatically manages and queries the legacy
// Ethernet switch via SNMP through NAPALM ... According to the desired
// OpenFlow-enabled port-setting, the manager configures the legacy
// switch, then instantiates HARMLESS-S4. Finally, it installs the
// corresponding flow rules into SS_1 and connects SS_2 to the SDN
// controller."
//
// migrate() reproduces that exact sequence, each step auditable in the
// returned report:
//   1. discover   — get_facts/get_interfaces through the driver
//   2. plan       — build + validate the PortMap
//   3. render     — per-port VLAN config in the device's own dialect
//   4. push       — load_merge_candidate, compare, commit
//   5. verify     — re-read interfaces; any mismatch triggers rollback
//   6. instantiate— Fabric::build (SS_1 + SS_2 + patches + trunk)
//   7. connect    — hand SS_2's channel to the SDN controller
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "harmless/fabric.hpp"
#include "mgmt/driver.hpp"

namespace harmless::core {

struct MigrationRequest {
  /// Legacy access ports to uplift to OpenFlow (1-based). Empty =
  /// every port the device reports except the trunk(s).
  std::vector<int> access_ports;
  /// Legacy port cabled to the HARMLESS-S4 box.
  int trunk_port = 0;
  /// Bonded deployment: several legacy ports cabled to the S4 box.
  /// When non-empty this supersedes `trunk_port`.
  std::vector<int> trunk_ports;
  int vlan_base = 100;
  FabricSpec fabric;

  [[nodiscard]] std::vector<int> effective_trunks() const {
    return trunk_ports.empty() ? std::vector<int>{trunk_port} : trunk_ports;
  }
};

struct MigrationReport {
  bool success = false;
  std::string failure;            // empty on success
  bool rolled_back = false;
  std::vector<std::string> steps;  // human-readable audit trail
  std::string device_hostname;
  std::string rendered_config;     // what was pushed, in dialect text
  std::optional<PortMap> port_map;

  [[nodiscard]] std::string to_string() const;
};

class Deployment {
 public:
  Deployment(Fabric fabric, controller::Session& session)
      : fabric_(std::move(fabric)), session_(&session) {}

  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] controller::Session& session() { return *session_; }

 private:
  Fabric fabric_;
  controller::Session* session_;
};

class HarmlessManager {
 public:
  /// `driver` speaks to the legacy device's management plane; `device`
  /// is the simulated box itself (needed only to build the data-plane
  /// fabric around it — the config path goes through the driver).
  HarmlessManager(mgmt::NetworkDriver& driver, legacy::LegacySwitch& device,
                  sim::Network& network)
      : driver_(driver), device_(device), network_(network) {}

  /// Run the full migration; on success the returned Deployment holds
  /// the live fabric and the controller session.
  std::pair<MigrationReport, std::optional<Deployment>> migrate(
      const MigrationRequest& request, controller::Controller& controller);

  /// Reverse a migration: restore the pre-migration configuration on
  /// the legacy switch (driver rollback) and sever the trunk, so hosts
  /// fall back to plain legacy L2 switching. The S4 software switches
  /// stay instantiated but isolated (simulated boxes cannot be
  /// "unracked"; the data plane no longer reaches them).
  MigrationReport decommission(Deployment& deployment);

 private:
  /// Render the target VLAN layout in the driver's dialect.
  [[nodiscard]] std::string render_target_config(const PortMap& map) const;

  mgmt::NetworkDriver& driver_;
  legacy::LegacySwitch& device_;
  sim::Network& network_;
};

}  // namespace harmless::core

#include "harmless/translator.hpp"

#include <sstream>

namespace harmless::core {

using namespace openflow;

TranslatorRules make_translator_rules(const PortMap& map) {
  TranslatorRules rules;
  rules.flow_mods.reserve(2 * map.size() + 1);

  for (const MappedPort& mapped : map.ports()) {
    const std::uint32_t patch = map.ss1_patch_port(mapped.ss2_port);
    const std::uint32_t trunk = map.ss1_trunk_port(mapped.trunk_index);

    // Trunk ingress: tagged frame identifies its legacy access port;
    // strip the tag and hand the bare frame to SS_2's matching port.
    FlowModMsg to_patch;
    to_patch.table_id = 0;
    to_patch.priority = 100;
    to_patch.match.in_port(trunk).vlan_vid(mapped.vlan);
    to_patch.instructions = apply({pop_vlan(), output(patch)});
    to_patch.cookie = mapped.vlan;
    rules.flow_mods.push_back(std::move(to_patch));

    // Patch ingress: SS_2 chose this output port; re-tag with the
    // port's VLAN and hairpin back down this port's trunk leg.
    FlowModMsg to_trunk;
    to_trunk.table_id = 0;
    to_trunk.priority = 100;
    to_trunk.match.in_port(patch);
    to_trunk.instructions = apply({push_vlan(), set_vlan_vid(mapped.vlan), output(trunk)});
    to_trunk.cookie = mapped.vlan;
    rules.flow_mods.push_back(std::move(to_trunk));
  }

  // Explicit miss: unmapped VLANs (or untagged trunk noise) must drop,
  // never flood — data-plane transparency hinges on it.
  FlowModMsg miss;
  miss.table_id = 0;
  miss.priority = 0;
  miss.instructions = Instructions{};
  rules.flow_mods.push_back(std::move(miss));
  return rules;
}

std::string TranslatorRules::to_string() const {
  std::ostringstream os;
  os << "Flow table of SS_1:\n";
  for (const FlowModMsg& mod : flow_mods) {
    os << "  prio=" << mod.priority << "  match[" << mod.match.to_string() << "]  actions["
       << mod.instructions.to_string() << "]\n";
  }
  return os.str();
}

}  // namespace harmless::core

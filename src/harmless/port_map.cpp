#include "harmless/port_map.hpp"

#include <set>
#include <sstream>

#include "util/strings.hpp"

namespace harmless::core {

util::Result<PortMap> PortMap::make(std::vector<int> access_ports, int trunk_port,
                                    int vlan_base) {
  return make_bonded(std::move(access_ports), {trunk_port}, vlan_base);
}

util::Result<PortMap> PortMap::make_bonded(std::vector<int> access_ports,
                                           std::vector<int> trunk_ports, int vlan_base) {
  if (trunk_ports.empty())
    return util::Result<PortMap>::error("PortMap: at least one trunk port required");
  std::vector<MappedPort> ports;
  ports.reserve(access_ports.size());
  std::uint32_t ss2_port = 1;
  for (const int legacy_port : access_ports) {
    MappedPort mapped;
    mapped.legacy_port = legacy_port;
    mapped.vlan = static_cast<net::VlanId>(vlan_base + legacy_port);
    mapped.ss2_port = ss2_port;
    // Round-robin trunk assignment balances access ports across legs.
    mapped.trunk_index = static_cast<int>((ss2_port - 1) % trunk_ports.size());
    ++ss2_port;
    ports.push_back(mapped);
  }
  return validated(PortMap(std::move(ports), std::move(trunk_ports)));
}

util::Result<PortMap> PortMap::make_explicit(std::vector<MappedPort> ports,
                                             std::vector<int> trunk_ports) {
  if (trunk_ports.empty())
    return util::Result<PortMap>::error("PortMap: at least one trunk port required");
  return validated(PortMap(std::move(ports), std::move(trunk_ports)));
}

util::Result<PortMap> PortMap::validated(PortMap map) {
  auto fail = [](const std::string& why) { return util::Result<PortMap>::error(why); };
  if (map.ports_.empty()) return fail("PortMap: no access ports to manage");

  std::set<int> trunk_seen;
  for (const int trunk : map.trunk_ports_) {
    if (trunk < 1) return fail("PortMap: trunk ports must be 1-based");
    if (!trunk_seen.insert(trunk).second)
      return fail("PortMap: duplicate trunk port " + std::to_string(trunk));
  }

  std::set<int> legacy_seen;
  std::set<net::VlanId> vlan_seen;
  std::set<std::uint32_t> ss2_seen;
  for (const MappedPort& mapped : map.ports_) {
    if (mapped.legacy_port < 1)
      return fail("PortMap: legacy port numbers are 1-based, got " +
                  std::to_string(mapped.legacy_port));
    if (trunk_seen.contains(mapped.legacy_port))
      return fail("PortMap: trunk port " + std::to_string(mapped.legacy_port) +
                  " cannot also be a managed access port");
    if (!net::vlan_id_valid(mapped.vlan))
      return fail("PortMap: invalid VLAN id " + std::to_string(mapped.vlan));
    if (mapped.ss2_port < 1)
      return fail("PortMap: SS_2 ports are 1-based, got " + std::to_string(mapped.ss2_port));
    if (mapped.trunk_index < 0 ||
        static_cast<std::size_t>(mapped.trunk_index) >= map.trunk_ports_.size())
      return fail("PortMap: trunk index " + std::to_string(mapped.trunk_index) +
                  " out of range");
    if (!legacy_seen.insert(mapped.legacy_port).second)
      return fail("PortMap: duplicate legacy port " + std::to_string(mapped.legacy_port));
    if (!vlan_seen.insert(mapped.vlan).second)
      return fail("PortMap: duplicate VLAN id " + std::to_string(mapped.vlan) +
                  " (tags must identify ports uniquely)");
    if (!ss2_seen.insert(mapped.ss2_port).second)
      return fail("PortMap: duplicate SS_2 port " + std::to_string(mapped.ss2_port));
  }
  return map;
}

std::optional<net::VlanId> PortMap::vlan_for_legacy(int legacy_port) const {
  for (const MappedPort& mapped : ports_)
    if (mapped.legacy_port == legacy_port) return mapped.vlan;
  return std::nullopt;
}

std::optional<int> PortMap::legacy_for_vlan(net::VlanId vlan) const {
  for (const MappedPort& mapped : ports_)
    if (mapped.vlan == vlan) return mapped.legacy_port;
  return std::nullopt;
}

std::optional<std::uint32_t> PortMap::ss2_for_vlan(net::VlanId vlan) const {
  for (const MappedPort& mapped : ports_)
    if (mapped.vlan == vlan) return mapped.ss2_port;
  return std::nullopt;
}

std::optional<net::VlanId> PortMap::vlan_for_ss2(std::uint32_t ss2_port) const {
  for (const MappedPort& mapped : ports_)
    if (mapped.ss2_port == ss2_port) return mapped.vlan;
  return std::nullopt;
}

std::optional<std::uint32_t> PortMap::ss2_for_legacy(int legacy_port) const {
  for (const MappedPort& mapped : ports_)
    if (mapped.legacy_port == legacy_port) return mapped.ss2_port;
  return std::nullopt;
}

std::string PortMap::to_string() const {
  std::ostringstream os;
  os << "trunks={";
  for (std::size_t i = 0; i < trunk_ports_.size(); ++i) {
    if (i) os << ',';
    os << "port" << trunk_ports_[i];
  }
  os << "} [";
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i) os << ", ";
    os << "port" << ports_[i].legacy_port << "<->vlan" << ports_[i].vlan << "<->ss2:"
       << ports_[i].ss2_port;
    if (trunk_ports_.size() > 1) os << "@t" << ports_[i].trunk_index;
  }
  os << ']';
  return os.str();
}

}  // namespace harmless::core

// harmless/translator.hpp — the OpenFlow Translator Component (SS_1).
//
// §2 of the paper: "To avoid having to tailor controller programs to
// the way HARMLESS maps output ports to VLAN ids and vice versa, we
// introduce an additional OpenFlow Translator Component as an
// adaptation layer, implemented by another software switch instance
// (SS_1) ... to dispatch packets to and from the patch ports based on
// the used VLAN ids."
//
// This module generates SS_1's complete flow table from a PortMap —
// exactly the "Flow table of SS_1" shown in Fig. 1:
//
//   trunk-to-patch (per mapping k):
//     match: in_port=1, vlan_vid=vlan_k   actions: pop_vlan, output:patch_k
//   patch-to-trunk (per mapping k):
//     match: in_port=patch_k              actions: push_vlan,
//                                                  set_vlan_vid:vlan_k,
//                                                  output:1
//   miss: drop (a frame with an unmapped VLAN must never leak).
#pragma once

#include <vector>

#include "harmless/port_map.hpp"
#include "openflow/messages.hpp"

namespace harmless::core {

struct TranslatorRules {
  std::vector<openflow::FlowModMsg> flow_mods;

  /// 2 rules per mapped port (+1 explicit miss entry).
  [[nodiscard]] std::size_t expected_count(const PortMap& map) const {
    return 2 * map.size() + 1;
  }

  /// Render the table the way Fig. 1 prints it.
  [[nodiscard]] std::string to_string() const;
};

/// Generate SS_1's rules for `map`. Priorities: 100 for mapped traffic,
/// 0 for the explicit drop-miss entry.
[[nodiscard]] TranslatorRules make_translator_rules(const PortMap& map);

}  // namespace harmless::core

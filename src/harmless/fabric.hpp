// harmless/fabric.hpp — the assembled HARMLESS data plane.
//
// Fabric::build() takes a simulated Network that already contains the
// legacy switch and constructs everything Fig. 1 adds around it:
//
//     hosts ── legacy switch ══trunk══ SS_1 ──patch──> SS_2 ── controller
//                                        (HARMLESS-S4 box)
//
//   * SS_1 ("translator"): trunk leg on OF port 1 wired to the legacy
//     trunk port; translator rules installed directly (the Manager
//     owns SS_1; it is not controller-visible).
//   * SS_2 ("main OF switch"): one patch-bound OF port per managed
//     access port, numbered identically to the legacy ports' order in
//     the PortMap, plus a ControlChannel for the SDN controller.
//
// The fabric also provides failure injection (trunk down) used by the
// resilience tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harmless/port_map.hpp"
#include "harmless/translator.hpp"
#include "legacy/legacy_switch.hpp"
#include "openflow/channel.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::core {

struct FabricSpec {
  /// Trunk interconnect: typically faster than access links (the paper
  /// uses a 10G trunk-port-to-soft-switch cable for 1G access ports).
  sim::LinkSpec trunk_link = sim::LinkSpec::gbps(10);
  /// SS_2 pipeline shape.
  std::size_t ss2_tables = 2;
  bool specialized_matchers = true;
  /// Two-tier flow cache on both soft switches (ablation knob).
  bool flow_cache = true;
  /// Probe the megaflow tier with the pre-classifier linear scan
  /// instead of the per-mask subtables (ablation knob; only meaningful
  /// with flow_cache on).
  bool cache_linear_scan = false;
  /// Service burst size on both soft switches; 1 = the per-packet
  /// datapath (batching ablation knob).
  std::size_t burst_size = 32;
  /// Ingress queueing on both soft switches: per-port RX queue bounds,
  /// the burst scheduler (FCFS / RR / DRR) that picks which ports each
  /// service burst drains, and the worker-core layout
  /// (`ingress.cores`: core count, RSS steering policy, pin map — one
  /// burst scheduler and one flow-cache shard per core). FCFS over the
  /// shared bound with one core == the historical shared-FIFO datapath.
  sim::IngressSpec ingress;
  /// Control channel one-way latency (controller is usually on-box or
  /// one rack away).
  sim::SimNanos control_latency = 50'000;
  /// Control-channel seed (loss/jitter draws when impaired) and
  /// per-message serialization gap (0 = instantaneous pipe; set to
  /// model resync time scaling with flow count).
  std::uint64_t control_seed = 0xc0a7'0150'0fULL;
  sim::SimNanos control_min_gap = 0;
  /// Control-channel impairment applied at build (both directions);
  /// default pristine. Fault plans can impair it later via the
  /// injector regardless.
  openflow::ChannelImpairment control_impairment;
  /// SS_2 controller-loss behaviour (disabled by default: no probes,
  /// PR-6-identical). SS_1 never gets one — it has no controller.
  softswitch::FailoverSpec ss2_failover;
  /// Expected concurrent pending events (in-flight frames + timers) —
  /// a sizing hint forwarded to sim::Engine::reserve so the calendar
  /// queue's buckets are pre-sized before traffic starts. 0 = default
  /// sizing.
  std::size_t expected_pending_events = 4096;
  std::uint64_t ss1_datapath_id = 0x51;
  std::uint64_t ss2_datapath_id = 0x52;
};

class Fabric {
 public:
  /// Build the S4 box around `device` inside `network`. The legacy
  /// switch must already be configured with the per-port VLANs the
  /// `map` describes (the Manager guarantees this ordering).
  static Fabric build(sim::Network& network, legacy::LegacySwitch& device, const PortMap& map,
                      const FabricSpec& spec = {});

  [[nodiscard]] softswitch::SoftSwitch& ss1() { return *ss1_; }
  [[nodiscard]] softswitch::SoftSwitch& ss2() { return *ss2_; }
  [[nodiscard]] openflow::ControlChannel& control_channel() { return *channel_; }
  [[nodiscard]] const PortMap& port_map() const { return map_; }
  [[nodiscard]] const TranslatorRules& translator_rules() const { return rules_; }

  /// Sever / restore the trunk (both directions). SS_1 reports the
  /// port-status transition; SS_2 keeps running (its patches are
  /// intact) so the controller sees the event via SS_1's... — SS_1 has
  /// no controller, so the observable effect is silence plus the
  /// port-status SS_2 emits for any patch leg the caller also downs.
  void set_trunk_up(bool up);
  [[nodiscard]] bool trunk_up() const { return trunk_up_; }

  /// Register the fabric's failure surface with a FaultInjector. Every
  /// component is auto-registered under a derived name, so FaultPlans
  /// scale to any topology without hard-coding:
  ///   "switch:<name>"  — each soft switch (crash/restart faults)
  ///   "control:<name>" — each control channel (named by its switch)
  ///   "trunk:leg<k>"   — each bonded trunk leg (both directions)
  /// The legacy four ("trunk" = all legs, "control", "ss1", "ss2")
  /// stay registered as aliases — existing plans keep working. The
  /// caller registers its Controller separately (the fabric does not
  /// own one).
  void register_faults(sim::FaultInjector& injector);

  /// Same, plus every channel of `network` under "link:<label>" (e.g.
  /// "link:legacy:4->SS_1") — the whole-network failure surface for
  /// chaos schedules that flap arbitrary cables.
  void register_faults(sim::FaultInjector& injector, sim::Network& network);

 private:
  Fabric(PortMap map, TranslatorRules rules) : map_(std::move(map)), rules_(std::move(rules)) {}

  PortMap map_;
  TranslatorRules rules_;
  softswitch::SoftSwitch* ss1_ = nullptr;
  softswitch::SoftSwitch* ss2_ = nullptr;
  std::unique_ptr<openflow::ControlChannel> channel_;
  std::vector<sim::Channel*> trunk_channels_;  // both directions, per leg
  bool trunk_up_ = true;
};

}  // namespace harmless::core

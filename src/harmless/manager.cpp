#include "harmless/manager.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace harmless::core {

std::string MigrationReport::to_string() const {
  std::ostringstream os;
  os << "HARMLESS migration of '" << device_hostname << "': "
     << (success ? "SUCCESS" : ("FAILED: " + failure)) << (rolled_back ? " (rolled back)" : "")
     << '\n';
  for (const std::string& step : steps) os << "  - " << step << '\n';
  return os.str();
}

std::string HarmlessManager::render_target_config(const PortMap& map) const {
  legacy::SwitchConfig target;
  target.hostname = device_.config().hostname;

  // Each trunk leg carries exactly the VLANs of the access ports
  // assigned to it — a misdirected tag dies at trunk ingress.
  std::vector<std::set<net::VlanId>> per_trunk_vlans(map.trunk_count());
  for (const MappedPort& mapped : map.ports()) {
    legacy::PortConfig port;
    port.mode = legacy::PortMode::kAccess;
    port.pvid = mapped.vlan;
    port.description = util::format("HARMLESS access (vlan %u)", mapped.vlan);
    target.ports[mapped.legacy_port] = std::move(port);
    per_trunk_vlans[static_cast<std::size_t>(mapped.trunk_index)].insert(mapped.vlan);
  }
  for (std::size_t leg = 0; leg < map.trunk_count(); ++leg) {
    legacy::PortConfig trunk;
    trunk.mode = legacy::PortMode::kTrunk;
    trunk.allowed_vlans = std::move(per_trunk_vlans[leg]);
    trunk.description =
        util::format("HARMLESS trunk leg %zu/%zu to S4 box", leg + 1, map.trunk_count());
    target.ports[map.trunk_ports()[leg]] = std::move(trunk);
  }

  return driver_.render_config(target);
}

std::pair<MigrationReport, std::optional<Deployment>> HarmlessManager::migrate(
    const MigrationRequest& request, controller::Controller& controller) {
  MigrationReport report;
  auto fail = [&](const std::string& why) {
    report.failure = why;
    return std::pair<MigrationReport, std::optional<Deployment>>{std::move(report),
                                                                 std::nullopt};
  };

  // 1. Discover the device through the management plane.
  auto facts = driver_.get_facts();
  if (!facts) return fail("discovery: " + facts.message());
  report.device_hostname = facts->hostname;
  report.steps.push_back(util::format("discovered '%s' (%d interfaces) via %s",
                                      facts->hostname.c_str(), facts->interface_count,
                                      driver_.platform().c_str()));

  auto interfaces = driver_.get_interfaces();
  if (!interfaces) return fail("interface walk: " + interfaces.message());

  // 2. Plan the port map.
  const std::vector<int> trunks = request.effective_trunks();
  std::vector<int> access_ports = request.access_ports;
  if (access_ports.empty()) {
    for (const mgmt::InterfaceInfo& info : *interfaces)
      if (std::find(trunks.begin(), trunks.end(), info.number) == trunks.end())
        access_ports.push_back(info.number);
  } else {
    // Every requested port must exist on the box.
    for (const int number : access_ports) {
      const bool known = std::any_of(
          interfaces->begin(), interfaces->end(),
          [number](const mgmt::InterfaceInfo& info) { return info.number == number; });
      if (!known) return fail("plan: requested port " + std::to_string(number) +
                              " does not exist on the device");
    }
  }
  for (const int trunk : trunks) {
    const bool trunk_known = std::any_of(
        interfaces->begin(), interfaces->end(),
        [trunk](const mgmt::InterfaceInfo& info) { return info.number == trunk; });
    if (!trunk_known)
      return fail("plan: trunk port " + std::to_string(trunk) +
                  " does not exist on the device");
  }

  auto map = PortMap::make_bonded(access_ports, trunks, request.vlan_base);
  if (!map) return fail("plan: " + map.message());
  report.port_map = *map;
  report.steps.push_back("planned " + map->to_string());

  // 3. Render the VLAN layout in the device's dialect.
  report.rendered_config = render_target_config(*map);
  report.steps.push_back(util::format("rendered %zu bytes of %s config",
                                      report.rendered_config.size(),
                                      driver_.platform().c_str()));

  // 4. Push: stage, diff, commit.
  auto status = driver_.load_merge_candidate(report.rendered_config);
  if (!status) return fail("stage: " + status.message());
  auto diff = driver_.compare_config();
  if (!diff) return fail("diff: " + diff.message());
  report.steps.push_back(diff->empty() ? "device already in target state"
                                       : "candidate differs from running; committing");
  status = driver_.commit_config();
  if (!status) return fail("commit: " + status.message());
  report.steps.push_back("committed VLAN config");

  // 5. Verify the running state matches the plan; roll back otherwise.
  auto verify = driver_.get_interfaces();
  bool verified = verify.is_ok();
  if (verified) {
    for (const MappedPort& mapped : map->ports()) {
      const auto it = std::find_if(
          verify->begin(), verify->end(),
          [&](const mgmt::InterfaceInfo& info) { return info.number == mapped.legacy_port; });
      if (it == verify->end() || it->mode != legacy::PortMode::kAccess ||
          it->pvid != mapped.vlan) {
        verified = false;
        break;
      }
    }
  }
  if (!verified) {
    report.rolled_back = driver_.rollback().is_ok();
    return fail("verify: device state does not match plan");
  }
  report.steps.push_back("verified per-port VLANs on the device");

  // 6. Instantiate HARMLESS-S4 (SS_1 + SS_2 + patches + trunk wiring);
  // translator rules are installed by the fabric.
  Fabric fabric = Fabric::build(network_, device_, *map, request.fabric);
  report.steps.push_back(util::format("instantiated S4: SS_1 (%zu ports) + SS_2 (%zu ports), %zu translator rules",
                                      fabric.ss1().of_port_count(),
                                      fabric.ss2().of_port_count(),
                                      fabric.translator_rules().flow_mods.size()));

  // 7. Connect SS_2 to the SDN controller.
  controller::Session& session =
      controller.connect(fabric.control_channel(), facts->hostname + "/SS_2");
  report.steps.push_back("connected SS_2 to controller '" + controller.name() + "'");

  report.success = true;
  return {std::move(report), Deployment(std::move(fabric), session)};
}

MigrationReport HarmlessManager::decommission(Deployment& deployment) {
  MigrationReport report;
  report.device_hostname = device_.config().hostname;

  const util::Status status = driver_.rollback();
  if (!status) {
    report.failure = "decommission rollback: " + status.message();
    return report;
  }
  report.rolled_back = true;
  report.steps.push_back("restored pre-migration configuration via " + driver_.platform());

  deployment.fabric().set_trunk_up(false);
  report.steps.push_back("severed the trunk; hosts are back on plain legacy switching");

  report.success = true;
  return report;
}

}  // namespace harmless::core

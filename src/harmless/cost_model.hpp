// harmless/cost_model.hpp — the economics behind "Cost-Effective
// Transitioning to SDN".
//
// The paper's pitch is CAPEX arithmetic: a small enterprise that wants
// OpenFlow on N access ports can (a) forklift to COTS SDN switches,
// (b) build a pure software switch farm with enough NICs for N ports,
// or (c) HARMLESS: keep the legacy switches (sunk cost), add one
// commodity server per switch and a trunk cable. This module makes the
// comparison explicit and sweepable: a device catalog with
// representative 2017 list prices (documented per SKU) and per-strategy
// bill-of-materials generators. Absolute dollars are from the catalog;
// the *shape* (who is cheapest where, how the gap scales with N) is the
// reproduced claim — see EXPERIMENTS.md E3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace harmless::core {

struct DeviceSku {
  std::string name;
  double price_usd = 0;
  int ports = 0;  // usable data ports contributed per unit
};

/// Representative 2017 street prices (sources documented in
/// EXPERIMENTS.md): values chosen to sit inside the ranges quoted for
/// each device class at the time; the model is linear in all of them.
struct Catalog {
  // 48x1G managed legacy access switch — already owned; price matters
  // only for the greenfield comparison.
  DeviceSku legacy_switch{"legacy 48x1G access switch", 1500.0, 48};
  // 48x1G OpenFlow-capable COTS SDN switch (Pica8/Edge-core class).
  DeviceSku sdn_switch{"COTS SDN 48x1G switch", 6500.0, 48};
  // Commodity 2U x86 server able to run ESwitch at >=10G line rate.
  DeviceSku server{"x86 server (DPDK-capable)", 2200.0, 0};
  // Dual-port 10G NIC for the server's trunk legs.
  DeviceSku nic_10g{"2x10G NIC", 350.0, 2};
  // Quad-port 1G NIC used by the pure-software strategy for host ports.
  DeviceSku nic_quad_1g{"4x1G NIC", 180.0, 4};
  // DAC/fibre for each trunk.
  DeviceSku trunk_cable{"10G DAC cable", 60.0, 1};

  /// How many 1G host ports one server chassis can physically take as
  /// NICs (PCIe slots x 4-port NICs) in the pure-software strategy —
  /// the "port density" wall the paper cites (soft switches "struggle
  /// to match the port density of COTS switches ... physical limits of
  /// the blade form factor").
  int server_max_nic_ports = 24;
};

enum class Strategy {
  kForkliftSdn,   // replace every legacy switch with a COTS SDN switch
  kPureSoftware,  // servers + 1G NICs provide every host port
  kHarmless,      // keep legacy, add 1 server + trunk per switch
};

[[nodiscard]] const char* strategy_name(Strategy strategy);

struct BomLine {
  std::string item;
  int quantity = 0;
  double unit_usd = 0;
  [[nodiscard]] double total_usd() const { return quantity * unit_usd; }
};

struct CostEstimate {
  Strategy strategy = Strategy::kHarmless;
  int sdn_ports = 0;
  std::vector<BomLine> bom;
  [[nodiscard]] double total_usd() const;
  [[nodiscard]] double usd_per_port() const {
    return sdn_ports > 0 ? total_usd() / sdn_ports : 0;
  }
  [[nodiscard]] std::string to_string() const;
};

class CostModel {
 public:
  explicit CostModel(Catalog catalog = {}) : catalog_(catalog) {}

  /// CAPEX to give `port_count` access ports OpenFlow capability,
  /// assuming the site already owns ceil(N/48) legacy switches.
  /// `greenfield` adds the legacy hardware to the non-forklift bills
  /// (i.e. nothing is sunk) for the sensitivity analysis.
  [[nodiscard]] CostEstimate estimate(Strategy strategy, int port_count,
                                      bool greenfield = false) const;

  [[nodiscard]] const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
};

}  // namespace harmless::core

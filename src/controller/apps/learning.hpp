// controller/apps/learning.hpp — the canonical L2 learning switch app.
//
// Reactive MAC learning over a designated table:
//   * on connect: install a table-miss entry punting to the controller
//   * on packet-in: learn (datapath, src MAC) -> in_port; if the dst
//     MAC is known, install a forward flow (with idle timeout) and
//     packet-out the trigger frame; otherwise flood it.
// This is the default "make it behave like the old network" program a
// small enterprise would run on day one after a HARMLESS migration.
#pragma once

#include <unordered_map>

#include "controller/controller.hpp"
#include "net/mac.hpp"

namespace harmless::controller {

class LearningSwitchApp : public App {
 public:
  /// `table` is where rules live (HARMLESS deployments may reserve
  /// table 0 for a policy app and chain learning behind it).
  explicit LearningSwitchApp(std::uint8_t table = 0, sim::SimNanos idle_timeout = 0)
      : table_(table), idle_timeout_(idle_timeout) {}

  [[nodiscard]] const char* name() const override { return "learning_switch"; }

  void on_connect(Session& session) override;
  void on_packet_in(Session& session, const openflow::PacketInMsg& event) override;

  struct Stats {
    std::uint64_t learned = 0;
    std::uint64_t flows_installed = 0;
    std::uint64_t floods = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Learned port for (datapath, mac), if any — exposed for tests.
  [[nodiscard]] std::optional<std::uint32_t> lookup(std::uint64_t datapath_id,
                                                    net::MacAddr mac) const;

 private:
  struct Key {
    std::uint64_t datapath_id;
    std::uint64_t mac;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return std::hash<std::uint64_t>{}(key.datapath_id * 0x9e3779b97f4a7c15ULL ^ key.mac);
    }
  };

  std::uint8_t table_;
  sim::SimNanos idle_timeout_;
  std::unordered_map<Key, std::uint32_t, KeyHash> mac_to_port_;
  Stats stats_;
};

}  // namespace harmless::controller

#include "controller/apps/maglev.hpp"

#include "net/build.hpp"
#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "net/parse.hpp"
#include "util/hash.hpp"
#include "util/status.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kMaglevCookie = 0x3A61;  // "MaGLev"
}

MaglevLbApp::MaglevLbApp(MaglevConfig config) : config_(std::move(config)) {
  if (config_.backends.empty()) throw util::ConfigError("maglev needs at least one backend");
  if (config_.client_ports.empty())
    throw util::ConfigError("maglev needs at least one client port");
  if (config_.lookup_table_size == 0 || config_.lookup_table_size > 0xffff)
    throw util::ConfigError("maglev lookup table size out of range");
}

std::vector<std::uint16_t> MaglevLbApp::build_lookup_table(
    const std::vector<MaglevBackend>& backends, std::size_t table_size) {
  const std::size_t n = backends.size();
  std::vector<std::uint16_t> table(table_size, 0);
  if (n == 0) return table;

  // Per-backend permutation parameters from two independent hashes of
  // its key (the backend IP — stable across reorderings of the vector).
  std::vector<std::size_t> offset(n);
  std::vector<std::size_t> skip(n);
  std::vector<std::size_t> next(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = backends[i].ip.value();
    std::uint64_t h1 = util::hash_u64(util::kHashSeed, key);
    h1 = util::hash_u64(h1, h1 >> 32);
    std::uint64_t h2 = util::hash_u64(h1, key);
    h2 = util::hash_u64(h2, h2 >> 32);
    offset[i] = static_cast<std::size_t>(h1 % table_size);
    skip[i] = static_cast<std::size_t>(h2 % (table_size - 1)) + 1;
  }

  // Round-robin fill: each backend claims the next unclaimed slot of
  // its permutation. With a prime table size every permutation visits
  // every slot, so the loop always terminates with the table full and
  // per-backend ownership within one slot of M/N.
  std::vector<bool> taken(table_size, false);
  std::size_t filled = 0;
  while (filled < table_size) {
    for (std::size_t i = 0; i < n && filled < table_size; ++i) {
      std::size_t slot = (offset[i] + next[i] * skip[i]) % table_size;
      while (taken[slot]) {
        ++next[i];
        slot = (offset[i] + next[i] * skip[i]) % table_size;
      }
      taken[slot] = true;
      table[slot] = static_cast<std::uint16_t>(i);
      ++next[i];
      ++filled;
    }
  }
  return table;
}

void MaglevLbApp::install_group(Session& session, bool modify) {
  GroupEntry entry;
  entry.group_id = config_.group_id;
  entry.type = GroupType::kSelect;
  entry.select_hash = SelectHash::kFiveTuple;
  entry.select_table = build_lookup_table(config_.backends, config_.lookup_table_size);
  for (const MaglevBackend& backend : config_.backends) {
    Bucket bucket;
    // ct_dnat commits the client->backend mapping and rewrites the
    // destination in-place (port 0: keep the service port); the
    // affinity rule then owns every later packet of the connection.
    bucket.actions = {ct_dnat(backend.ip), set_eth_dst(backend.mac),
                      output(backend.of_port)};
    entry.buckets.push_back(std::move(bucket));
  }
  if (modify) {
    GroupModMsg mod;
    mod.command = GroupModMsg::Command::kModify;
    mod.entry = std::move(entry);
    session.send(std::move(mod));
  } else {
    session.group_add(std::move(entry));
  }
}

void MaglevLbApp::on_connect(Session& session) {
  install_group(session, /*modify=*/false);

  // Affinity first: packets of a tracked connection skip the group —
  // the ct traversal re-applies the *stored* DNAT mapping, so backend
  // set changes never move a live connection.
  session.flow_add(config_.table, /*priority=*/120,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_dst(config_.vip)
                       .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                       .l4_dst(config_.service_port)
                       .ct_tracked(),
                   apply_then_goto({ct_commit()}, config_.route_table), kMaglevCookie);

  // New connections: consistent-hash bucket choice; the bucket DNATs,
  // rewrites the MAC and outputs directly.
  session.flow_add(config_.table, /*priority=*/110,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_dst(config_.vip)
                       .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                       .l4_dst(config_.service_port),
                   apply({group(config_.group_id)}), kMaglevCookie);

  // Replies: un-DNAT (src: backend -> VIP, the stored reverse
  // translation) and masquerade the MAC back toward the clients.
  for (const MaglevBackend& backend : config_.backends) {
    ActionList reverse{ct_commit(), set_eth_src(config_.vip_mac)};
    if (config_.client_ports.size() == 1)
      reverse.push_back(output(config_.client_ports.front()));
    else
      reverse.push_back(flood());
    session.flow_add(config_.table, /*priority=*/115,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_src(backend.ip)
                         .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                         .l4_src(config_.service_port)
                         .ct_tracked(),
                     apply(std::move(reverse)), kMaglevCookie);
  }

  // Backend routing for the affinity path (the ct rewrite restored the
  // backend's address as the destination by then).
  for (const MaglevBackend& backend : config_.backends) {
    session.flow_add(config_.route_table, /*priority=*/100,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(backend.ip),
                     apply({set_eth_dst(backend.mac), output(backend.of_port)}),
                     kMaglevCookie);
  }
  session.flow_add(config_.route_table, /*priority=*/0, Match{}, Instructions{},
                   kMaglevCookie);

  // ARP glue (proxy for the VIP, flood for everyone else).
  if (config_.arp_proxy) {
    session.flow_add(config_.table, /*priority=*/160,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kArp))
                         .arp_op(static_cast<std::uint16_t>(net::ArpOp::kRequest)),
                     apply({to_controller()}), kMaglevCookie);
  }
  session.flow_add(config_.table, /*priority=*/150,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kArp)),
                   apply({flood()}), kMaglevCookie);
  session.flow_add(config_.table, /*priority=*/0, Match{}, Instructions{}, kMaglevCookie);
  session.barrier();
}

void MaglevLbApp::set_backends(Session& session, std::vector<MaglevBackend> backends) {
  if (backends.empty()) throw util::ConfigError("maglev needs at least one backend");
  // Route entries for removed backends are left installed: live
  // connections pinned to them (the affinity rule) still need their
  // packets routed until they drain or expire.
  config_.backends = std::move(backends);
  install_group(session, /*modify=*/true);
  for (const MaglevBackend& backend : config_.backends) {
    session.flow_add(config_.route_table, /*priority=*/100,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(backend.ip),
                     apply({set_eth_dst(backend.mac), output(backend.of_port)}),
                     kMaglevCookie);
  }
  session.barrier();
}

void MaglevLbApp::on_packet_in(Session& session, const PacketInMsg& event) {
  if (!config_.arp_proxy) return;
  const net::ParsedPacket parsed = net::parse_packet(event.packet);
  if (!parsed.arp || parsed.arp->op != net::ArpOp::kRequest) return;
  if (parsed.arp->target_ip == config_.vip) {
    ++stats_.arp_replies_sent;
    session.packet_out(net::make_arp_reply(config_.vip_mac, config_.vip,
                                           parsed.arp->sender_mac, parsed.arp->sender_ip),
                       {output(event.in_port)});
    return;
  }
  session.packet_out(event.packet.clone(), {flood()}, event.in_port);
}

}  // namespace harmless::controller

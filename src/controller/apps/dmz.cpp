#include "controller/apps/dmz.hpp"

#include "util/status.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kDmzCookie = 0xD312;
}

DmzPolicyApp::DmzPolicyApp(DmzPolicy policy) : policy_(std::move(policy)) {
  for (const auto& [a, b] : policy_.allowed_pairs) {
    if (find_host(a) == nullptr || find_host(b) == nullptr)
      throw util::ConfigError("DMZ pair references unknown host: " + a + "/" + b);
  }
  for (const auto& [host, port] : policy_.exposed_services) {
    (void)port;
    if (find_host(host) == nullptr)
      throw util::ConfigError("DMZ service references unknown host: " + host);
  }
}

const DmzHost* DmzPolicyApp::find_host(const std::string& name) const {
  for (const DmzHost& host : policy_.hosts)
    if (host.name == name) return &host;
  return nullptr;
}

void DmzPolicyApp::install_pair(Session& session, const DmzHost& a, const DmzHost& b) {
  session.flow_add(policy_.table, /*priority=*/100,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_src(a.ip)
                       .ip_dst(b.ip),
                   apply({output(b.of_port)}), kDmzCookie);
  session.flow_add(policy_.table, /*priority=*/100,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_src(b.ip)
                       .ip_dst(a.ip),
                   apply({output(a.of_port)}), kDmzCookie);
}

void DmzPolicyApp::on_connect(Session& session) {
  // ARP must flow or nobody resolves anybody: flood it (the legacy
  // switch's per-port VLANs make this loop-free by construction).
  session.flow_add(policy_.table, /*priority=*/150,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kArp)),
                   apply({flood()}), kDmzCookie);

  for (const auto& [a, b] : policy_.allowed_pairs)
    install_pair(session, *find_host(a), *find_host(b));

  for (const auto& [host_name, tcp_port] : policy_.exposed_services) {
    const DmzHost* host = find_host(host_name);
    session.flow_add(policy_.table, /*priority=*/120,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(host->ip)
                         .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                         .l4_dst(tcp_port),
                     apply({output(host->of_port)}), kDmzCookie);
    // Replies from an exposed service are allowed back out by source
    // port (stateless approximation of connection tracking).
    session.flow_add(policy_.table, /*priority=*/120,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_src(host->ip)
                         .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                         .l4_src(tcp_port),
                     apply({flood()}), kDmzCookie);
  }

  // Default deny: explicit drop entry so the miss counter stays clean
  // and the intent is visible in flow dumps.
  session.flow_add(policy_.table, /*priority=*/0, Match{}, Instructions{}, kDmzCookie);
  session.barrier();
}

void DmzPolicyApp::allow_pair(Session& session, const std::string& a, const std::string& b) {
  const DmzHost* host_a = find_host(a);
  const DmzHost* host_b = find_host(b);
  if (host_a == nullptr || host_b == nullptr)
    throw util::ConfigError("allow_pair: unknown host " + a + " or " + b);
  policy_.allowed_pairs.emplace_back(a, b);
  install_pair(session, *host_a, *host_b);
}

}  // namespace harmless::controller

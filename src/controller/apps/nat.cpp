#include "controller/apps/nat.hpp"

#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "util/status.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kNatCookie = 0x5A47;  // "NAT gw"
constexpr std::uint8_t kProtos[] = {static_cast<std::uint8_t>(net::IpProto::kTcp),
                                    static_cast<std::uint8_t>(net::IpProto::kUdp)};
}  // namespace

SourceNatApp::SourceNatApp(SourceNatConfig config) : config_(std::move(config)) {
  if (config_.inside.empty()) throw util::ConfigError("source NAT needs inside hosts");
  if (config_.outside_port == 0) throw util::ConfigError("source NAT needs an outside port");
  if (config_.port_min == 0 || config_.port_min > config_.port_max)
    throw util::ConfigError("source NAT port range is empty");
}

void SourceNatApp::on_connect(Session& session) {
  // ARP floods so the segments resolve each other (loop-free by
  // construction in the demo topologies).
  session.flow_add(config_.table, /*priority=*/150,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kArp)),
                   apply({flood()}), kNatCookie);

  for (const std::uint8_t proto : kProtos) {
    // Outbound: commit + source-translate, then straight out the
    // uplink. ct_snat rewrites src ip:port in-place (the allocation is
    // recorded on the connection, so every later packet — slow path or
    // megaflow replay — re-derives the same translation).
    for (const NatHost& host : config_.inside) {
      session.flow_add(config_.table, /*priority=*/110,
                       Match()
                           .in_port(host.of_port)
                           .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                           .ip_proto(proto),
                       apply({ct_snat(config_.external_ip, config_.port_min, config_.port_max),
                              set_eth_dst(config_.outside_mac), output(config_.outside_port)}),
                       kNatCookie);
    }
    // Reverse: only tracked connections get in. The ct traversal
    // applies the stored reverse translation (dst: external ip:port ->
    // the inside host's private ip:port); the route table then
    // forwards by the restored private address.
    session.flow_add(config_.table, /*priority=*/110,
                     Match()
                         .in_port(config_.outside_port)
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(config_.external_ip)
                         .ip_proto(proto)
                         .ct_tracked(),
                     apply_then_goto({ct_commit()}, config_.route_table), kNatCookie);
  }

  // Default deny: unsolicited inbound (and anything unclassifiable)
  // drops — the NAT boundary is a stateful firewall by construction.
  session.flow_add(config_.table, /*priority=*/0, Match{}, Instructions{}, kNatCookie);

  // Inside routing by private destination address (valid only after
  // the reverse translation restored it).
  for (const NatHost& host : config_.inside) {
    session.flow_add(config_.route_table, /*priority=*/100,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(host.ip),
                     apply({set_eth_dst(host.mac), output(host.of_port)}), kNatCookie);
  }
  session.flow_add(config_.route_table, /*priority=*/0, Match{}, Instructions{}, kNatCookie);
  session.barrier();
}

}  // namespace harmless::controller

// controller/apps/maglev.hpp — consistent-hash L4 load balancer with
// connection affinity.
//
// Two mechanisms compose:
//   * A SELECT group whose bucket choice goes through a Maglev-style
//     lookup table (GroupEntry::select_table): each backend fills the
//     table via its own permutation of the slots (Eisenbud et al.,
//     NSDI'16 §3.4), giving near-perfect balance and minimal disruption
//     — removing one backend remaps only the slots that named it.
//   * Conntrack affinity: the chosen bucket's ct_dnat commits the
//     client->backend mapping, and a higher-priority ct_tracked rule
//     bypasses the group entirely for every later packet of the
//     connection. Changing the backend set therefore never breaks
//     connections in flight: new connections see the new table, live
//     ones ride their stored mapping — the property the conntrack
//     bench's affinity scenario measures.
//
// Replies from backends are un-DNATed back to the VIP (the stored
// reverse translation) and returned toward the clients.
#pragma once

#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::controller {

struct MaglevBackend {
  std::string name;
  net::MacAddr mac;
  net::Ipv4Addr ip;
  std::uint32_t of_port = 0;
};

struct MaglevConfig {
  net::Ipv4Addr vip;
  net::MacAddr vip_mac;
  std::uint16_t service_port = 80;
  std::vector<MaglevBackend> backends;
  /// Port(s) clients live behind (reverse traffic exits here).
  std::vector<std::uint32_t> client_ports;
  std::uint32_t group_id = 1;
  /// Maglev lookup-table size; prime, and >> backend count for balance
  /// (the paper uses 65537; 251 keeps demo groups readable).
  std::size_t lookup_table_size = 251;
  std::uint8_t table = 0;
  std::uint8_t route_table = 1;
  /// Answer ARP requests for the VIP from the controller.
  bool arp_proxy = true;
};

class MaglevLbApp : public App {
 public:
  explicit MaglevLbApp(MaglevConfig config);

  [[nodiscard]] const char* name() const override { return "maglev_lb"; }
  void on_connect(Session& session) override;
  void on_packet_in(Session& session, const openflow::PacketInMsg& event) override;

  /// Replace the backend set at runtime and push the regenerated group
  /// to the session. Live connections keep their stored mappings (the
  /// affinity rule); only new connections see the new table.
  void set_backends(Session& session, std::vector<MaglevBackend> backends);

  [[nodiscard]] const MaglevConfig& config() const { return config_; }

  /// The Maglev permutation-fill: each backend i gets (offset_i,
  /// skip_i) from hashes of its key and claims slots offset, offset +
  /// skip, ... until the table is full; backends take turns, so every
  /// backend owns either floor(M/N) or ceil(M/N) slots. Exposed for
  /// the unit tests (balance + minimal-disruption properties).
  [[nodiscard]] static std::vector<std::uint16_t> build_lookup_table(
      const std::vector<MaglevBackend>& backends, std::size_t table_size);

  struct Stats {
    std::uint64_t arp_replies_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void install_group(Session& session, bool modify);

  MaglevConfig config_;
  Stats stats_;
};

}  // namespace harmless::controller

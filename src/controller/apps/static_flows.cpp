#include "controller/apps/static_flows.hpp"

namespace harmless::controller {

StaticFlowApp& StaticFlowApp::flow(openflow::FlowModMsg mod,
                                   std::optional<std::uint64_t> datapath_id) {
  flows_.push_back(PendingFlow{std::move(mod), datapath_id});
  return *this;
}

StaticFlowApp& StaticFlowApp::group(openflow::GroupModMsg mod,
                                    std::optional<std::uint64_t> datapath_id) {
  groups_.push_back(PendingGroup{std::move(mod), datapath_id});
  return *this;
}

void StaticFlowApp::on_connect(Session& session) {
  // Groups first: flows may reference them.
  for (const auto& pending : groups_) {
    if (pending.datapath_id && *pending.datapath_id != session.datapath_id()) continue;
    session.send(pending.mod);
    ++installed_;
  }
  for (const auto& pending : flows_) {
    if (pending.datapath_id && *pending.datapath_id != session.datapath_id()) continue;
    session.send(pending.mod);
    ++installed_;
  }
  session.barrier();
}

}  // namespace harmless::controller

// controller/apps/static_flows.hpp — declarative rule pusher.
//
// Holds a list of flow/group mods and installs them on every datapath
// that connects (optionally filtered by datapath id). The building
// block for scripted deployments and for tests that need a precise
// table state.
#pragma once

#include <optional>
#include <vector>

#include "controller/controller.hpp"

namespace harmless::controller {

class StaticFlowApp : public App {
 public:
  [[nodiscard]] const char* name() const override { return "static_flows"; }

  /// Queue a flow for installation on connect. If `datapath_id` is
  /// given, only that datapath receives it.
  StaticFlowApp& flow(openflow::FlowModMsg mod,
                      std::optional<std::uint64_t> datapath_id = std::nullopt);
  StaticFlowApp& group(openflow::GroupModMsg mod,
                       std::optional<std::uint64_t> datapath_id = std::nullopt);

  void on_connect(Session& session) override;

  [[nodiscard]] std::size_t installed_count() const { return installed_; }

 private:
  struct PendingFlow {
    openflow::FlowModMsg mod;
    std::optional<std::uint64_t> datapath_id;
  };
  struct PendingGroup {
    openflow::GroupModMsg mod;
    std::optional<std::uint64_t> datapath_id;
  };
  std::vector<PendingGroup> groups_;
  std::vector<PendingFlow> flows_;
  std::size_t installed_ = 0;
};

}  // namespace harmless::controller

// controller/apps/nat.hpp — source-NAT gateway on the stateful tier.
//
// The classic home/branch-office masquerade, built on the conntrack
// `ct` action (openflow/conntrack.hpp) instead of per-flow controller
// rules: inside hosts share one external IP; the first packet of every
// outbound connection traverses ct_snat, which allocates an external
// port (shard-affine — the translated reply hashes back to the same
// conntrack shard) and commits the mapping; reverse traffic to the
// external IP is admitted only when conntrack recognizes it
// (ct_tracked), gets the stored reverse translation applied, and is
// routed back to the inside host by its (restored) private address.
// Unsolicited inbound traffic never matches a tracked connection and
// falls to the default drop — NAT's implicit firewall, for free.
#pragma once

#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::controller {

struct NatHost {
  std::string name;
  net::MacAddr mac;
  net::Ipv4Addr ip;        // private address
  std::uint32_t of_port = 0;
};

struct SourceNatConfig {
  /// The shared external address outbound sources are rewritten to.
  net::Ipv4Addr external_ip;
  /// External port pool ct_snat allocates from.
  std::uint16_t port_min = 49152;
  std::uint16_t port_max = 65535;
  /// The uplink: where translated traffic leaves, and the only port
  /// reverse traffic is admitted on.
  std::uint32_t outside_port = 0;
  /// Next hop on the outside segment (frames must carry a real NIC's
  /// destination MAC or the remote host filters them).
  net::MacAddr outside_mac;
  std::vector<NatHost> inside;
  std::uint8_t table = 0;        // classify + ct
  std::uint8_t route_table = 1;  // inside routing by restored private IP
};

class SourceNatApp : public App {
 public:
  explicit SourceNatApp(SourceNatConfig config);

  [[nodiscard]] const char* name() const override { return "source_nat"; }
  void on_connect(Session& session) override;

  [[nodiscard]] const SourceNatConfig& config() const { return config_; }

 private:
  SourceNatConfig config_;
};

}  // namespace harmless::controller

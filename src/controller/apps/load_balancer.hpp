// controller/apps/load_balancer.hpp — use case (a) of the paper:
// "equally distribute ingress web traffic between multiple backends
// based on matching of the source IP address".
//
// Implementation: a SELECT group with one bucket per backend. Each
// bucket rewrites the destination MAC/IP from the VIP to the backend
// and outputs to its port; bucket choice is a deterministic hash of
// the flow key, so the split is per-source-IP sticky, exactly the
// paper's "matching of the source IP address". Reverse rules rewrite
// the backend's replies to come from the VIP.
#pragma once

#include <vector>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::controller {

struct Backend {
  net::MacAddr mac;
  net::Ipv4Addr ip;
  std::uint32_t of_port = 0;  // SS_2 port == legacy access port number
  std::uint16_t weight = 1;
};

struct LoadBalancerConfig {
  net::Ipv4Addr vip;
  net::MacAddr vip_mac;
  std::uint16_t service_port = 80;
  std::vector<Backend> backends;
  /// Port(s) clients live behind (reverse traffic exits here). A
  /// single uplink covers the demo topology; several are allowed.
  std::vector<std::uint32_t> client_ports;
  std::uint32_t group_id = 1;
  std::uint8_t table = 0;
  /// Answer ARP requests for the VIP from the controller (proxy ARP),
  /// so clients can resolve a VIP no host owns.
  bool arp_proxy = true;
};

class LoadBalancerApp : public App {
 public:
  explicit LoadBalancerApp(LoadBalancerConfig config);

  [[nodiscard]] const char* name() const override { return "load_balancer"; }
  void on_connect(Session& session) override;
  void on_packet_in(Session& session, const openflow::PacketInMsg& event) override;

  [[nodiscard]] const LoadBalancerConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t arp_replies_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  LoadBalancerConfig config_;
  Stats stats_;
};

}  // namespace harmless::controller

#include "controller/apps/monitor.hpp"

namespace harmless::controller {

void StatsMonitorApp::on_connect(Session& session) {
  if (polls_ <= 0) return;
  engine_.schedule_after(interval_, [this, &session] { poll(session, polls_ - 1); });
}

void StatsMonitorApp::poll(Session& session, int remaining) {
  session.request_flow_stats([this, &session](const openflow::FlowStatsReplyMsg& reply) {
    Sample sample;
    sample.at = engine_.now();
    sample.flows = reply.flows.size();
    for (const openflow::FlowStatsEntry& flow : reply.flows) {
      sample.packets += flow.packet_count;
      sample.bytes += flow.byte_count;
    }
    history_[session.datapath_id()].push_back(sample);
  });
  if (remaining > 0)
    engine_.schedule_after(interval_, [this, &session, remaining] {
      poll(session, remaining - 1);
    });
}

const std::vector<StatsMonitorApp::Sample>& StatsMonitorApp::history(
    std::uint64_t datapath_id) const {
  const auto it = history_.find(datapath_id);
  return it == history_.end() ? empty_ : it->second;
}

double StatsMonitorApp::packet_rate(std::uint64_t datapath_id) const {
  const auto& samples = history(datapath_id);
  if (samples.size() < 2) return 0;
  const Sample& first = samples.front();
  const Sample& last = samples.back();
  const double duration_ns = static_cast<double>(last.at - first.at);
  if (duration_ns <= 0) return 0;
  return static_cast<double>(last.packets - first.packets) * 1e9 / duration_ns;
}

}  // namespace harmless::controller

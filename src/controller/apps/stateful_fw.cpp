#include "controller/apps/stateful_fw.hpp"

#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "util/status.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kFwCookie = 0xF13E;  // "FW"
}

StatefulFirewallApp::StatefulFirewallApp(StatefulFirewallConfig config)
    : config_(std::move(config)) {
  if (config_.inside.empty()) throw util::ConfigError("stateful firewall needs inside hosts");
  if (config_.outside_port == 0)
    throw util::ConfigError("stateful firewall needs an outside port");
}

void StatefulFirewallApp::on_connect(Session& session) {
  session.flow_add(config_.table, /*priority=*/150,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kArp)),
                   apply({flood()}), kFwCookie);

  std::vector<std::uint8_t> protos{static_cast<std::uint8_t>(net::IpProto::kTcp)};
  if (config_.allow_udp) protos.push_back(static_cast<std::uint8_t>(net::IpProto::kUdp));

  for (const std::uint8_t proto : protos) {
    // Outbound from any inside port: commit (creating the connection
    // on first packet) and continue to routing.
    for (const FirewallHost& host : config_.inside) {
      session.flow_add(config_.table, /*priority=*/110,
                       Match()
                           .in_port(host.of_port)
                           .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                           .ip_proto(proto),
                       apply_then_goto({ct_commit()}, config_.route_table), kFwCookie);
    }
    // Inbound on the uplink: ESTABLISHED connections only. A tracked-
    // but-not-established state never occurs inbound here (the reply
    // direction is established by definition), and NEW/INVALID fall
    // through to the drop — the whole point of the stateful tier.
    session.flow_add(config_.table, /*priority=*/110,
                     Match()
                         .in_port(config_.outside_port)
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_proto(proto)
                         .ct_established(),
                     apply_then_goto({ct_commit()}, config_.route_table), kFwCookie);
  }

  // Default deny, both tables.
  session.flow_add(config_.table, /*priority=*/0, Match{}, Instructions{}, kFwCookie);

  // Routing: inside hosts by destination IP; everything else out the
  // uplink (outbound traffic reaches here only after its commit).
  for (const FirewallHost& host : config_.inside) {
    session.flow_add(config_.route_table, /*priority=*/100,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_dst(host.ip),
                     apply({set_eth_dst(host.mac), output(host.of_port)}), kFwCookie);
  }
  session.flow_add(config_.route_table, /*priority=*/10,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4)),
                   apply({set_eth_dst(config_.outside_mac), output(config_.outside_port)}),
                   kFwCookie);
  session.flow_add(config_.route_table, /*priority=*/0, Match{}, Instructions{}, kFwCookie);
  session.barrier();
}

}  // namespace harmless::controller

#include "controller/apps/learning.hpp"

#include "net/parse.hpp"

namespace harmless::controller {

using namespace openflow;

/// Cookie tagging every rule this app installs ("L2" in hex-speak).
constexpr std::uint64_t kLearningCookie = 0x4C32;

void LearningSwitchApp::on_connect(Session& session) {
  // Table-miss: punt everything unknown to the controller.
  session.flow_add(table_, /*priority=*/0, Match{}, apply({to_controller()}),
                   /*cookie=*/kLearningCookie);
}

std::optional<std::uint32_t> LearningSwitchApp::lookup(std::uint64_t datapath_id,
                                                       net::MacAddr mac) const {
  const auto it = mac_to_port_.find(Key{datapath_id, mac.to_u64()});
  if (it == mac_to_port_.end()) return std::nullopt;
  return it->second;
}

void LearningSwitchApp::on_packet_in(Session& session, const PacketInMsg& event) {
  // Only react to punts from our own table: co-resident apps (e.g. the
  // parental-control interceptor in table 0) own their punted packets.
  if (event.table_id != table_) return;
  const net::ParsedPacket parsed = net::parse_packet(event.packet);
  if (!parsed.l2_valid) return;

  // Learn the source.
  if (!parsed.eth_src.is_multicast() && !parsed.eth_src.is_zero()) {
    const Key key{session.datapath_id(), parsed.eth_src.to_u64()};
    const auto [it, inserted] = mac_to_port_.insert_or_assign(key, event.in_port);
    (void)it;
    if (inserted) ++stats_.learned;
  }

  // Forward: known destination gets a flow; unknown floods.
  const auto destination = lookup(session.datapath_id(), parsed.eth_dst);
  if (destination && !parsed.eth_dst.is_multicast()) {
    session.flow_add(table_, /*priority=*/10, Match().eth_dst(parsed.eth_dst),
                     apply({output(*destination)}), /*cookie=*/kLearningCookie, idle_timeout_);
    ++stats_.flows_installed;
    session.packet_out(event.packet.clone(), {output(*destination)}, event.in_port);
  } else {
    ++stats_.floods;
    session.packet_out(event.packet.clone(), {flood()}, event.in_port);
  }
}

}  // namespace harmless::controller

// controller/apps/stateful_fw.hpp — stateful perimeter firewall.
//
// Replaces the DMZ app's stateless "replies allowed back by source
// port" approximation (controller/apps/dmz.hpp) with real connection
// tracking: inside hosts may open TCP/UDP connections outward (the
// first packet commits the connection); inbound traffic on the uplink
// is admitted only when conntrack classifies it as part of an
// ESTABLISHED connection — a bare SYN, a mid-stream segment, or a
// probe to a port an inside host happens to listen on all fall to the
// default drop. The fast path matters here: established-connection
// packets ride per-connection megaflows (keyed on ct_state, so a
// cached allow can never leak to an untracked packet), while the
// policy decision itself lives in one table.
#pragma once

#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::controller {

struct FirewallHost {
  std::string name;
  net::MacAddr mac;
  net::Ipv4Addr ip;
  std::uint32_t of_port = 0;
};

struct StatefulFirewallConfig {
  std::vector<FirewallHost> inside;
  /// The uplink: the only port untrusted traffic arrives on.
  std::uint32_t outside_port = 0;
  /// Next hop on the outside segment (egress frames need its MAC).
  net::MacAddr outside_mac;
  /// Track UDP "connections" too (request/response idiom); TCP is
  /// always tracked.
  bool allow_udp = true;
  std::uint8_t table = 0;        // policy + ct
  std::uint8_t route_table = 1;  // destination routing
};

class StatefulFirewallApp : public App {
 public:
  explicit StatefulFirewallApp(StatefulFirewallConfig config);

  [[nodiscard]] const char* name() const override { return "stateful_firewall"; }
  void on_connect(Session& session) override;

  [[nodiscard]] const StatefulFirewallConfig& config() const { return config_; }

 private:
  StatefulFirewallConfig config_;
};

}  // namespace harmless::controller

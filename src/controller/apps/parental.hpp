// controller/apps/parental.hpp — use case (c) of the paper:
// "selectively deny access to specific users to certain web pages
// on-the-fly".
//
// HTTP (tcp/80) requests are punted to the controller; the app parses
// the request line + Host header out of the packet-in. If (user IP,
// host) is on the blocklist the app answers the user directly with an
// HTTP 403 via packet-out and — "on-the-fly" — installs a drop flow
// for that (user, server) pair so subsequent requests die in the data
// plane. Allowed requests are packet-out'ed along the normal path.
// Non-HTTP traffic never reaches the app (a goto-table entry chains it
// past this table).
#pragma once

#include <map>
#include <set>
#include <string>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"

namespace harmless::controller {

struct ParentalControlConfig {
  /// user IP -> set of blocked HTTP hostnames (exact match, lowercase).
  std::map<net::Ipv4Addr, std::set<std::string>> blocklist;
  std::uint8_t table = 0;        // where HTTP interception lives
  std::uint8_t next_table = 1;   // where non-HTTP traffic continues
  std::uint16_t http_port = 80;
};

class ParentalControlApp : public App {
 public:
  explicit ParentalControlApp(ParentalControlConfig config);

  [[nodiscard]] const char* name() const override { return "parental_control"; }
  void on_connect(Session& session) override;
  void on_packet_in(Session& session, const openflow::PacketInMsg& event) override;

  struct Stats {
    std::uint64_t requests_seen = 0;
    std::uint64_t blocked = 0;
    std::uint64_t allowed = 0;
    std::uint64_t drop_flows_installed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Runtime blocklist edit ("on-the-fly").
  void block(net::Ipv4Addr user, std::string host);

 private:
  /// Extract the Host header from an HTTP request payload; empty if
  /// the payload is not an HTTP request.
  [[nodiscard]] static std::string http_host_of(std::string_view payload);

  ParentalControlConfig config_;
  Stats stats_;
};

}  // namespace harmless::controller

#include "controller/apps/load_balancer.hpp"

#include "net/build.hpp"
#include "net/parse.hpp"
#include "util/status.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kLbCookie = 0x1BA1;
}

LoadBalancerApp::LoadBalancerApp(LoadBalancerConfig config) : config_(std::move(config)) {
  if (config_.backends.empty())
    throw util::ConfigError("load balancer needs at least one backend");
  if (config_.client_ports.empty())
    throw util::ConfigError("load balancer needs at least one client port");
}

void LoadBalancerApp::on_connect(Session& session) {
  // The SELECT group: one bucket per backend, rewriting VIP -> backend.
  GroupEntry group_entry;
  group_entry.group_id = config_.group_id;
  group_entry.type = GroupType::kSelect;
  // Paper: split "based on matching of the source IP address" — the
  // same client must stick to the same backend across connections.
  group_entry.select_hash = SelectHash::kSourceIp;
  for (const Backend& backend : config_.backends) {
    Bucket bucket;
    bucket.weight = backend.weight;
    bucket.actions = {set_eth_dst(backend.mac), set_ip_dst(backend.ip),
                      output(backend.of_port)};
    group_entry.buckets.push_back(std::move(bucket));
  }
  session.group_add(std::move(group_entry));

  // Forward direction: web traffic to the VIP -> group.
  session.flow_add(config_.table, /*priority=*/200,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_dst(config_.vip)
                       .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                       .l4_dst(config_.service_port),
                   apply({group(config_.group_id)}), kLbCookie);

  // Reverse direction: one rule per backend, masquerading as the VIP.
  for (const Backend& backend : config_.backends) {
    ActionList reverse{set_eth_src(config_.vip_mac), set_ip_src(config_.vip)};
    if (config_.client_ports.size() == 1) {
      reverse.push_back(output(config_.client_ports.front()));
    } else {
      // Multiple client ports: let the punting path flood (rare in the
      // demo topologies; documented simplification).
      reverse.push_back(flood());
    }
    session.flow_add(config_.table, /*priority=*/200,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                         .ip_src(backend.ip)
                         .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                         .l4_src(config_.service_port),
                     apply(std::move(reverse)), kLbCookie);
  }

  // ARP glue. With the proxy enabled, requests for the VIP punt to the
  // controller (which answers as the VIP); everything else floods so
  // real hosts still resolve each other.
  if (config_.arp_proxy) {
    session.flow_add(config_.table, /*priority=*/160,
                     Match()
                         .eth_type(static_cast<std::uint16_t>(net::EtherType::kArp))
                         .arp_op(static_cast<std::uint16_t>(net::ArpOp::kRequest)),
                     apply({to_controller()}), kLbCookie);
  }
  session.flow_add(config_.table, /*priority=*/150,
                   Match().eth_type(static_cast<std::uint16_t>(net::EtherType::kArp)),
                   apply({flood()}), kLbCookie);

  session.barrier();
}

void LoadBalancerApp::on_packet_in(Session& session, const PacketInMsg& event) {
  if (!config_.arp_proxy) return;
  const net::ParsedPacket parsed = net::parse_packet(event.packet);
  if (!parsed.arp || parsed.arp->op != net::ArpOp::kRequest) return;

  if (parsed.arp->target_ip == config_.vip) {
    // Proxy ARP: the controller answers as the VIP.
    ++stats_.arp_replies_sent;
    session.packet_out(net::make_arp_reply(config_.vip_mac, config_.vip,
                                           parsed.arp->sender_mac, parsed.arp->sender_ip),
                       {output(event.in_port)});
    return;
  }
  // Not for the VIP: behave like the flood rule would have.
  session.packet_out(event.packet.clone(), {flood()}, event.in_port);
}

}  // namespace harmless::controller

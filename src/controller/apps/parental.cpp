#include "controller/apps/parental.hpp"

#include "net/build.hpp"
#include "net/parse.hpp"
#include "util/strings.hpp"

namespace harmless::controller {

using namespace openflow;

namespace {
constexpr std::uint64_t kPcCookie = 0x9C;  // "PC"
}

ParentalControlApp::ParentalControlApp(ParentalControlConfig config)
    : config_(std::move(config)) {}

void ParentalControlApp::block(net::Ipv4Addr user, std::string host) {
  config_.blocklist[user].insert(util::to_lower(host));
}

void ParentalControlApp::on_connect(Session& session) {
  // Intercept HTTP; everything else continues down the pipeline.
  session.flow_add(config_.table, /*priority=*/300,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                       .l4_dst(config_.http_port),
                   apply({to_controller()}), kPcCookie);
  Instructions chain;
  chain.goto_table = config_.next_table;
  session.flow_add(config_.table, /*priority=*/0, Match{}, std::move(chain), kPcCookie);
  session.barrier();
}

std::string ParentalControlApp::http_host_of(std::string_view payload) {
  if (!util::starts_with(payload, "GET ") && !util::starts_with(payload, "POST ")) return {};
  constexpr std::string_view kHostHeader = "Host:";
  const std::size_t pos = payload.find(kHostHeader);
  if (pos == std::string_view::npos) return {};
  std::size_t end = payload.find("\r\n", pos);
  if (end == std::string_view::npos) end = payload.size();
  return util::to_lower(util::trim(payload.substr(pos + kHostHeader.size(),
                                                  end - pos - kHostHeader.size())));
}

void ParentalControlApp::on_packet_in(Session& session, const PacketInMsg& event) {
  const net::ParsedPacket parsed = net::parse_packet(event.packet);
  if (!parsed.tcp || !parsed.ipv4 || parsed.tcp->dst_port != config_.http_port) return;

  const std::string host = http_host_of(net::l4_payload(parsed, event.packet.frame()));
  if (host.empty()) {
    // Not a request segment (e.g. bare SYN): let it through the normal
    // path so connections can establish.
    session.packet_out(event.packet.clone(), {flood()}, event.in_port);
    return;
  }
  ++stats_.requests_seen;

  const auto user_entry = config_.blocklist.find(parsed.ipv4->src);
  const bool blocked =
      user_entry != config_.blocklist.end() && user_entry->second.contains(host);

  if (!blocked) {
    ++stats_.allowed;
    session.packet_out(event.packet.clone(), {flood()}, event.in_port);
    return;
  }

  ++stats_.blocked;

  // Answer the user with a 403 directly from the control plane.
  net::FlowKey reply;
  reply.eth_src = parsed.eth_dst;
  reply.eth_dst = parsed.eth_src;
  reply.ip_src = parsed.ipv4->dst;
  reply.ip_dst = parsed.ipv4->src;
  reply.src_port = parsed.tcp->dst_port;
  reply.dst_port = parsed.tcp->src_port;
  net::Packet forbidden = net::make_tcp(
      reply, net::kTcpPsh | net::kTcpAck,
      "HTTP/1.1 403 Forbidden\r\nContent-Length: 7\r\n\r\nblocked");
  session.packet_out(std::move(forbidden), {output(event.in_port)});

  // "On-the-fly": push the block into the data plane for this
  // (user, server) pair so repeats don't even reach us.
  session.flow_add(config_.table, /*priority=*/400,
                   Match()
                       .eth_type(static_cast<std::uint16_t>(net::EtherType::kIpv4))
                       .ip_src(parsed.ipv4->src)
                       .ip_dst(parsed.ipv4->dst)
                       .ip_proto(static_cast<std::uint8_t>(net::IpProto::kTcp))
                       .l4_dst(config_.http_port),
                   Instructions{}, kPcCookie);
  ++stats_.drop_flows_installed;
}

}  // namespace harmless::controller

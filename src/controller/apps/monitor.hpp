// controller/apps/monitor.hpp — flow-stats telemetry.
//
// Polls every connected datapath's flow stats on a fixed cadence and
// keeps a bounded history of (time, packets, bytes) samples per
// datapath — the data an operator graphs to see whether the migrated
// switch actually carries traffic. Poll count is bounded so simulations
// still drain their event queues.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "controller/controller.hpp"
#include "sim/event.hpp"

namespace harmless::controller {

class StatsMonitorApp : public App {
 public:
  /// Polls each datapath `polls` times, every `interval` ns, starting
  /// one interval after it connects.
  StatsMonitorApp(sim::Engine& engine, sim::SimNanos interval, int polls)
      : engine_(engine), interval_(interval), polls_(polls) {}

  [[nodiscard]] const char* name() const override { return "stats_monitor"; }
  void on_connect(Session& session) override;

  struct Sample {
    sim::SimNanos at = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::size_t flows = 0;
  };

  [[nodiscard]] const std::vector<Sample>& history(std::uint64_t datapath_id) const;

  /// Average packet rate between the first and last sample (pkt/s of
  /// simulated time); 0 with fewer than two samples.
  [[nodiscard]] double packet_rate(std::uint64_t datapath_id) const;

 private:
  void poll(Session& session, int remaining);

  sim::Engine& engine_;
  sim::SimNanos interval_;
  int polls_;
  std::map<std::uint64_t, std::vector<Sample>> history_;
  std::vector<Sample> empty_;
};

}  // namespace harmless::controller

// controller/apps/dmz.hpp — use case (b) of the paper: "implement and
// fine-tune VM-level access policies in a multi-tenant cloud".
//
// A default-deny pairwise policy: traffic flows only between hosts the
// policy explicitly allows (the "DMZ" row in Fig. 1's SS_2 table is
// one such pair). Rules are proactive — one allow entry per direction
// per pair — plus an ARP flood entry so neighbours can resolve, and an
// optional per-(host, tcp port) service exposure (e.g. "anyone may
// reach the web VM on port 443").
#pragma once

#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "net/ipv4.hpp"

namespace harmless::controller {

struct DmzHost {
  std::string name;
  net::Ipv4Addr ip;
  std::uint32_t of_port = 0;
};

struct DmzPolicy {
  std::vector<DmzHost> hosts;
  /// Unordered allowed pairs (both directions installed).
  std::vector<std::pair<std::string, std::string>> allowed_pairs;
  /// (host name, tcp port): reachable by every tenant on that port.
  std::vector<std::pair<std::string, std::uint16_t>> exposed_services;
  std::uint8_t table = 0;
};

class DmzPolicyApp : public App {
 public:
  explicit DmzPolicyApp(DmzPolicy policy);

  [[nodiscard]] const char* name() const override { return "dmz_policy"; }
  void on_connect(Session& session) override;

  /// Add an allowed pair at runtime ("fine-tune ... using OF"):
  /// installs on every ready session immediately.
  void allow_pair(Session& session, const std::string& a, const std::string& b);

  [[nodiscard]] const DmzPolicy& policy() const { return policy_; }

 private:
  [[nodiscard]] const DmzHost* find_host(const std::string& name) const;
  void install_pair(Session& session, const DmzHost& a, const DmzHost& b);

  DmzPolicy policy_;
};

}  // namespace harmless::controller

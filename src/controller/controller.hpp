// controller/controller.hpp — the SDN controller framework.
//
// A Controller owns one Session per datapath (per control channel) and
// dispatches events to registered Apps — the structure of Ryu/ONOS in
// miniature. Apps never see channels; they program switches through
// the Session helpers (flow_add, group_add, packet_out, ...), which is
// what makes them reusable between a native SS_2 and any other
// datapath, the property HARMLESS's translator exists to protect.
//
// Failure semantics (PR 7): a switch that lost its session sends Hello
// over the (healed) channel; a ready Session answers with a features
// handshake and, when the FeaturesReply lands, runs a full-state
// resync — a flow-stats audit of what survived on the datapath,
// App::on_reconnect on every app (default: re-run on_connect, since
// well-written apps install idempotently), and a barrier fencing the
// re-installed state. The Controller is itself a sim::FaultPoint:
// fault_crash detaches every session's receive handler (messages then
// count as dropped_no_handler on the channel) and fault_restart
// re-handshakes every session with the resync path armed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "openflow/channel.hpp"
#include "openflow/messages.hpp"
#include "sim/faults.hpp"

namespace harmless::sim {
class Witness;
}  // namespace harmless::sim

namespace harmless::controller {

class Controller;

class Session {
 public:
  Session(Controller& owner, openflow::ControlChannel& channel, std::string label);

  /// Datapath identity (valid after the features handshake).
  [[nodiscard]] std::uint64_t datapath_id() const { return features_.datapath_id; }
  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] const openflow::FeaturesReplyMsg& features() const { return features_; }
  [[nodiscard]] const std::string& label() const { return label_; }

  // ---- programming helpers -------------------------------------------
  void flow_add(std::uint8_t table, std::uint16_t priority, openflow::Match match,
                openflow::Instructions instructions, std::uint64_t cookie = 0,
                sim::SimNanos idle_timeout = 0, sim::SimNanos hard_timeout = 0);
  void flow_delete(std::uint8_t table, const openflow::Match& match);
  void group_add(openflow::GroupEntry entry);
  void packet_out(net::Packet packet, openflow::ActionList actions,
                  std::uint32_t in_port = openflow::kPortAny);
  void barrier();
  /// Async flow-stats dump; `callback` fires when the reply arrives.
  void request_flow_stats(std::function<void(const openflow::FlowStatsReplyMsg&)> callback);

  /// Liveness probe: sends an EchoRequest; replies are counted in
  /// echo_replies(). A healthy datapath answers every ping.
  void ping(std::uint64_t payload = 0);
  [[nodiscard]] std::uint64_t echo_replies() const { return echo_replies_; }

  /// Raw message escape hatch.
  void send(openflow::Message message);

  // Used by Controller.
  void handle(openflow::Message&& message);
  void start_handshake();
  /// Stop receiving (controller crash): the channel delivers into
  /// nothing and counts dropped_no_handler.
  void detach();
  /// Re-handshake after a controller restart; a previously-ready
  /// session arms the resync path.
  void restart_handshake();

  /// Resyncs completed (reconnect handshakes that re-ran the apps).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  /// Flow entries the pre-resync audit found still installed on the
  /// datapath (what survived the outage).
  [[nodiscard]] std::uint64_t last_audit_flows() const { return last_audit_flows_; }
  /// Resyncs whose audit found surviving flow state (the datapath kept
  /// its tables — e.g. a controller-side outage, or a stateful restore).
  [[nodiscard]] std::uint64_t warm_resyncs() const { return warm_resyncs_; }
  /// Resyncs against an empty (wiped/rebooted) datapath.
  [[nodiscard]] std::uint64_t cold_resyncs() const { return cold_resyncs_; }

 private:
  /// Full-state resync: audit the surviving flow table, re-run the
  /// apps, fence with a barrier.
  void run_resync();

  Controller& owner_;
  openflow::ControlChannel& channel_;
  std::string label_;
  openflow::FeaturesReplyMsg features_;
  bool ready_ = false;
  bool resync_pending_ = false;
  std::uint32_t next_xid_ = 1;
  std::uint64_t echo_replies_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t last_audit_flows_ = 0;
  std::uint64_t warm_resyncs_ = 0;
  std::uint64_t cold_resyncs_ = 0;
  std::vector<std::function<void(const openflow::FlowStatsReplyMsg&)>> stats_callbacks_;
};

/// Controller application interface (Ryu-style event callbacks).
class App {
 public:
  virtual ~App() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Datapath completed the handshake: install your rules here.
  virtual void on_connect(Session& session) { (void)session; }
  /// Datapath re-established a lost session. Default: re-run
  /// on_connect — correct for apps whose installs are idempotent
  /// (flow_add of an existing rule overwrites). Override to
  /// reconcile incrementally instead.
  virtual void on_reconnect(Session& session) { on_connect(session); }
  virtual void on_packet_in(Session& session, const openflow::PacketInMsg& event) {
    (void)session;
    (void)event;
  }
  virtual void on_port_status(Session& session, const openflow::PortStatusMsg& event) {
    (void)session;
    (void)event;
  }
  virtual void on_flow_removed(Session& session, const openflow::FlowRemovedMsg& event) {
    (void)session;
    (void)event;
  }
  virtual void on_error(Session& session, const openflow::ErrorMsg& event) {
    (void)session;
    (void)event;
  }
};

class Controller : public sim::FaultPoint {
 public:
  explicit Controller(std::string name = "ctrl") : name_(std::move(name)) {}

  /// Register an app (kept for the controller's lifetime). Dispatch
  /// order == registration order.
  template <typename AppT, typename... Args>
  AppT& add_app(Args&&... args) {
    auto app = std::make_unique<AppT>(std::forward<Args>(args)...);
    AppT& ref = *app;
    apps_.push_back(std::move(app));
    return ref;
  }

  /// Adopt a datapath: starts the hello/features handshake over
  /// `channel` and dispatches its events from then on.
  Session& connect(openflow::ControlChannel& channel, std::string label = "dp");

  [[nodiscard]] const std::vector<std::unique_ptr<Session>>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  struct Stats {
    std::uint64_t packet_ins = 0;
    std::uint64_t flow_removed = 0;
    std::uint64_t errors = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t resyncs = 0;       // across all sessions
    std::uint64_t warm_resyncs = 0;  // audits that found surviving flow state
    std::uint64_t cold_resyncs = 0;  // audits against a wiped datapath
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Host the HA lease arbiter in this controller's process: the
  /// witness fate-shares with the controller — a crashed controller
  /// grants no leases (which fails closed: nobody can promote), and a
  /// restart resumes arbitration with the epoch ledger intact. The
  /// witness must outlive the controller.
  void host_witness(sim::Witness& witness) { witness_ = &witness; }
  [[nodiscard]] sim::Witness* hosted_witness() const { return witness_; }

  // sim::FaultPoint: process death and supervised restart. Crash stops
  // every session from receiving; restart re-handshakes them all with
  // full-state resync.
  void fault_crash() override;
  void fault_restart() override;
  void fault_set_up(bool up) override {
    if (up) fault_restart();
    else fault_crash();
  }
  [[nodiscard]] bool crashed() const { return crashed_; }

 private:
  friend class Session;
  void dispatch_connect(Session& session);
  void dispatch_reconnect(Session& session);
  void dispatch(Session& session, openflow::Message&& message);

  std::string name_;
  std::vector<std::unique_ptr<App>> apps_;
  std::vector<std::unique_ptr<Session>> sessions_;
  Stats stats_;
  bool crashed_ = false;
  sim::Witness* witness_ = nullptr;  // co-hosted lease arbiter, if any
};

}  // namespace harmless::controller

#include "controller/controller.hpp"

#include "sim/witness.hpp"

namespace harmless::controller {

using namespace openflow;

Session::Session(Controller& owner, ControlChannel& channel, std::string label)
    : owner_(owner), channel_(channel), label_(std::move(label)) {}

void Session::start_handshake() {
  channel_.set_controller_handler([this](Message&& message) { handle(std::move(message)); });
  channel_.send_to_switch(HelloMsg{});
  channel_.send_to_switch(FeaturesRequestMsg{});
}

void Session::detach() { channel_.set_controller_handler(nullptr); }

void Session::restart_handshake() {
  // A session that was ready before the crash must resync, not just
  // connect: the datapath kept (some of) its state while we lost ours.
  if (ready_) resync_pending_ = true;
  start_handshake();
}

void Session::run_resync() {
  ++resyncs_;
  ++owner_.stats_.resyncs;
  // Audit what survived on the datapath (observability: apps reinstall
  // idempotently regardless; the audit tells Table 8 how much state
  // outlived the outage)...
  request_flow_stats([this](const FlowStatsReplyMsg& reply) {
    last_audit_flows_ = reply.flows.size();
    // Warm/cold classification (PR 9): a datapath that still holds flow
    // state across the outage (controller-side crash, or a stateful
    // restart that restored it) resyncs warm — its surviving flows will
    // not storm packet-ins, so recovery tooling can deprioritize it. An
    // empty audit is a cold (wiped) switch.
    if (last_audit_flows_ > 0) {
      ++warm_resyncs_;
      ++owner_.stats_.warm_resyncs;
    } else {
      ++cold_resyncs_;
      ++owner_.stats_.cold_resyncs;
    }
  });
  // ...re-run the apps' programming...
  owner_.dispatch_reconnect(*this);
  // ...and fence it: FIFO delivery means the barrier reaches the
  // switch after every re-installed mod, closing its resync window.
  barrier();
}

void Session::send(Message message) { channel_.send_to_switch(std::move(message)); }

void Session::flow_add(std::uint8_t table, std::uint16_t priority, Match match,
                       Instructions instructions, std::uint64_t cookie,
                       sim::SimNanos idle_timeout, sim::SimNanos hard_timeout) {
  FlowModMsg mod;
  mod.command = FlowModMsg::Command::kAdd;
  mod.table_id = table;
  mod.priority = priority;
  mod.match = std::move(match);
  mod.instructions = std::move(instructions);
  mod.cookie = cookie;
  mod.idle_timeout = idle_timeout;
  mod.hard_timeout = hard_timeout;
  mod.send_flow_removed = (idle_timeout > 0 || hard_timeout > 0);
  channel_.send_to_switch(std::move(mod));
}

void Session::flow_delete(std::uint8_t table, const Match& match) {
  FlowModMsg mod;
  mod.command = FlowModMsg::Command::kDelete;
  mod.table_id = table;
  mod.match = match;
  channel_.send_to_switch(std::move(mod));
}

void Session::group_add(GroupEntry entry) {
  GroupModMsg mod;
  mod.command = GroupModMsg::Command::kAdd;
  mod.entry = std::move(entry);
  channel_.send_to_switch(std::move(mod));
}

void Session::packet_out(net::Packet packet, ActionList actions, std::uint32_t in_port) {
  PacketOutMsg out;
  out.packet = std::move(packet);
  out.actions = std::move(actions);
  out.in_port = in_port;
  channel_.send_to_switch(std::move(out));
}

void Session::barrier() { channel_.send_to_switch(BarrierRequestMsg{next_xid_++}); }

void Session::ping(std::uint64_t payload) { channel_.send_to_switch(EchoRequestMsg{payload}); }

void Session::request_flow_stats(std::function<void(const FlowStatsReplyMsg&)> callback) {
  stats_callbacks_.push_back(std::move(callback));
  channel_.send_to_switch(FlowStatsRequestMsg{});
}

void Session::handle(Message&& message) {
  if (std::holds_alternative<HelloMsg>(message)) {
    // A Hello on an already-ready session is a switch asking to come
    // back (its reconnect-backoff probe). Accept by re-running the
    // features handshake; the resync fires when the reply lands.
    // (During the initial handshake ready_ is still false and the
    // switch's Hello reply is ignored, as it always was.)
    if (ready_ && !resync_pending_) {
      resync_pending_ = true;
      channel_.send_to_switch(FeaturesRequestMsg{});
    }
    return;
  }
  if (std::holds_alternative<EchoReplyMsg>(message)) {
    ++echo_replies_;
    return;
  }
  if (const auto* echo = std::get_if<EchoRequestMsg>(&message)) {
    // Datapath-side liveness probe: answer it (a dead controller
    // can't — its handler is detached, so the probe counts as
    // dropped_no_handler and the switch's miss counter grows).
    channel_.send_to_switch(EchoReplyMsg{echo->payload});
    return;
  }
  if (const auto* features = std::get_if<FeaturesReplyMsg>(&message)) {
    features_ = *features;
    const bool first = !ready_;
    ready_ = true;
    if (first) {
      owner_.dispatch_connect(*this);
    } else if (resync_pending_) {
      resync_pending_ = false;
      run_resync();
    }
    return;
  }
  if (const auto* stats = std::get_if<FlowStatsReplyMsg>(&message)) {
    if (!stats_callbacks_.empty()) {
      auto callback = std::move(stats_callbacks_.front());
      stats_callbacks_.erase(stats_callbacks_.begin());
      callback(*stats);
    }
    return;
  }
  owner_.dispatch(*this, std::move(message));
}

Session& Controller::connect(ControlChannel& channel, std::string label) {
  sessions_.push_back(std::make_unique<Session>(*this, channel, std::move(label)));
  Session& session = *sessions_.back();
  session.start_handshake();
  return session;
}

void Controller::dispatch_connect(Session& session) {
  for (const auto& app : apps_) app->on_connect(session);
}

void Controller::dispatch_reconnect(Session& session) {
  for (const auto& app : apps_) app->on_reconnect(session);
}

void Controller::fault_crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  // The process is gone: nothing receives. In-flight and future
  // messages to the controller count as dropped_no_handler on their
  // channels — the observable difference between a dead controller and
  // a partitioned one (dropped_down).
  for (const auto& session : sessions_) session->detach();
  // The co-hosted lease arbiter dies with the process (fails closed:
  // no grants, so nobody promotes while the arbiter is down).
  if (witness_ != nullptr) witness_->fault_crash();
}

void Controller::fault_restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.restarts;
  // Supervised restart: apps are still registered (their state is code
  // plus what on_reconnect re-derives); every known datapath gets a
  // fresh handshake with the resync path armed.
  for (const auto& session : sessions_) session->restart_handshake();
  // The arbiter comes back with its epoch ledger intact (durable).
  if (witness_ != nullptr) witness_->fault_restart();
}

void Controller::dispatch(Session& session, Message&& message) {
  if (const auto* packet_in = std::get_if<PacketInMsg>(&message)) {
    ++stats_.packet_ins;
    for (const auto& app : apps_) app->on_packet_in(session, *packet_in);
    return;
  }
  if (const auto* port_status = std::get_if<PortStatusMsg>(&message)) {
    for (const auto& app : apps_) app->on_port_status(session, *port_status);
    return;
  }
  if (const auto* flow_removed = std::get_if<FlowRemovedMsg>(&message)) {
    ++stats_.flow_removed;
    for (const auto& app : apps_) app->on_flow_removed(session, *flow_removed);
    return;
  }
  if (const auto* error = std::get_if<ErrorMsg>(&message)) {
    ++stats_.errors;
    for (const auto& app : apps_) app->on_error(session, *error);
    return;
  }
  // barrier replies / echo replies need no app dispatch
}

}  // namespace harmless::controller

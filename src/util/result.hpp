// util/result.hpp — Result<T>: a value or an error message.
//
// GCC 12 does not ship std::expected (C++23), so this is the minimal
// subset the library needs: construct from a value or via
// Result<T>::error(), test, and access.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/status.hpp"

namespace harmless::util {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success. Implicit so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result error(std::string message) { return Result(std::move(message), ErrorTag{}); }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  /// Value access. Throws ConfigError when called on an error result.
  T& value() & {
    require_ok();
    return *value_;
  }
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Failure message; empty when ok.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Value or a fallback.
  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : Status::error(message_);
  }

 private:
  struct ErrorTag {};
  Result(std::string message, ErrorTag) : message_(std::move(message)) {}
  void require_ok() const {
    if (!value_.has_value()) throw ConfigError("Result accessed on error: " + message_);
  }

  std::optional<T> value_;
  std::string message_;
};

}  // namespace harmless::util

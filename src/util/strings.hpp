// util/strings.hpp — small string helpers shared across the library
// (config rendering/parsing in mgmt, table output, hexdump).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace harmless::util {

/// Split on a delimiter; empty tokens are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delimiter);

/// Split on runs of whitespace; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// Parse a decimal unsigned integer; returns false on any non-digit or
/// overflow. The strict counterpart of std::stoul for config parsing.
bool parse_u64(std::string_view text, std::uint64_t& out);

/// "1.50 Mpps"-style human formatting with SI prefixes (k, M, G).
std::string si_format(double value, std::string_view unit, int precision = 2);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace harmless::util

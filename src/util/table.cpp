#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"

namespace harmless::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw ConfigError("Table row arity mismatch: expected " + std::to_string(header_.size()) +
                      " got " + std::to_string(row.size()));
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

}  // namespace harmless::util

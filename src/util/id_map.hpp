// util/id_map.hpp — a flat open-addressing map from 64-bit ids to a
// small trivially-copyable value, for per-packet bookkeeping on the
// hot path.
//
// std::unordered_map pays a node allocation per insert and a free per
// erase — two mallocs per recorded packet in LatencyRecorder, and a
// pointer chase per FlowCache microflow probe. This map stores keys
// and values in two flat arrays with linear probing and backward-shift
// deletion, so steady-state find/insert/erase touch a couple of cache
// lines and never allocate. Key 0 (the empty marker) is carried in a
// side slot so arbitrary hash keys are legal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace harmless::util {

template <typename Value>
class IdMap {
 public:
  IdMap() { rehash(kMinCapacity); }

  [[nodiscard]] std::size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    size_ = 0;
    has_zero_ = false;
  }

  /// Insert `key` -> `value`, overwriting any existing entry.
  void insert_or_assign(std::uint64_t key, Value value) {
    if (key == 0) {
      has_zero_ = true;
      zero_value_ = value;
      return;
    }
    if ((size_ + 1) * 8 > keys_.size() * 7) rehash(keys_.size() * 2);
    std::size_t slot = probe_start(key);
    while (keys_[slot] != 0 && keys_[slot] != key) slot = (slot + 1) & mask_;
    if (keys_[slot] == 0) {
      keys_[slot] = key;
      ++size_;
    }
    values_[slot] = value;
  }

  /// Pointer to `key`'s value, or nullptr when absent. Invalidated by
  /// any mutation.
  [[nodiscard]] Value* find(std::uint64_t key) {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    std::size_t slot = probe_start(key);
    while (keys_[slot] != key) {
      if (keys_[slot] == 0) return nullptr;
      slot = (slot + 1) & mask_;
    }
    return &values_[slot];
  }

  /// Remove `key` if present.
  void erase(std::uint64_t key) {
    Value value;
    take(key, &value);
  }

  /// Find `key`; on a hit, store its value in `*value`, erase the
  /// entry, and return true.
  bool take(std::uint64_t key, Value* value) {
    if (key == 0) {
      if (!has_zero_) return false;
      *value = zero_value_;
      has_zero_ = false;
      return true;
    }
    std::size_t slot = probe_start(key);
    while (keys_[slot] != key) {
      if (keys_[slot] == 0) return false;
      slot = (slot + 1) & mask_;
    }
    *value = values_[slot];
    erase_slot(slot);
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 64;

  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const {
    // Fibonacci hashing: spreads sequential packet ids across the
    // table while keeping the probe computation two instructions.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_) & mask_;
  }

  void erase_slot(std::size_t hole) {
    // Backward-shift deletion keeps probe chains dense (no
    // tombstones): pull every displaced follower back over the hole.
    std::size_t slot = hole;
    for (;;) {
      slot = (slot + 1) & mask_;
      const std::uint64_t key = keys_[slot];
      if (key == 0) break;
      const std::size_t home = probe_start(key);
      if (((slot - home) & mask_) >= ((slot - hole) & mask_)) {
        keys_[hole] = key;
        values_[hole] = values_[slot];
        hole = slot;
      }
    }
    keys_[hole] = 0;
  }

  void rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(capacity, 0);
    values_.assign(capacity, Value{});
    mask_ = capacity - 1;
    shift_ = 64;
    while ((std::size_t{1} << (64 - shift_)) < capacity) --shift_;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != 0) insert_or_assign(old_keys[i], old_values[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
  bool has_zero_ = false;
  Value zero_value_{};
};

}  // namespace harmless::util

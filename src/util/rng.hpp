// util/rng.hpp — deterministic PRNG for the whole simulator.
//
// All randomness in the library flows from a seeded Rng so that every
// simulation, test and benchmark is reproducible bit-for-bit. The
// generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64;
// both are public-domain algorithms reimplemented here.
#pragma once

#include <cstdint>
#include <limits>

namespace harmless::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return std::numeric_limits<std::uint64_t>::max(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace harmless::util

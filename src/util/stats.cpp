#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace harmless::util {

Histogram::Histogram(std::size_t max_samples) : max_samples_(max_samples) {
  samples_.reserve(std::min<std::size_t>(max_samples_, 4096));
}

void Histogram::add(double sample) {
  if (total_count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++total_count_;
  sum_ += sample;
  sum_sq_ += sample * sample;

  if (samples_.size() < max_samples_) {
    samples_.push_back(sample);
    sorted_ = false;
    return;
  }
  // Reservoir sampling keeps quantiles approximately right if a bench
  // ever exceeds the cap (none in this repo does by default).
  reservoir_state_ = reservoir_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const std::uint64_t slot = reservoir_state_ % total_count_;
  if (slot < samples_.size()) {
    samples_[slot] = sample;
    sorted_ = false;
  }
}

double Histogram::min() const { return empty() ? 0.0 : min_; }
double Histogram::max() const { return empty() ? 0.0 : max_; }

double Histogram::mean() const {
  return empty() ? 0.0 : sum_ / static_cast<double>(total_count_);
}

double Histogram::stddev() const {
  if (total_count_ < 2) return 0.0;
  const double n = static_cast<double>(total_count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

std::string Histogram::summary(const std::string& unit) const {
  std::ostringstream os;
  os << "n=" << total_count_ << " mean=" << mean() << unit << " p50=" << p50() << unit
     << " p95=" << p95() << unit << " p99=" << p99() << unit << " max=" << max() << unit;
  return os.str();
}

void Histogram::clear() {
  total_count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
  samples_.clear();
  sorted_ = true;
}

double RateCounter::pps(std::uint64_t duration_ns) const {
  if (duration_ns == 0) return 0.0;
  return static_cast<double>(packets) * 1e9 / static_cast<double>(duration_ns);
}

double RateCounter::bps(std::uint64_t duration_ns) const {
  if (duration_ns == 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 * 1e9 / static_cast<double>(duration_ns);
}

}  // namespace harmless::util

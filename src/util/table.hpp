// util/table.hpp — plain-text table rendering for benches and examples.
//
// Every benchmark prints the rows/series the paper reports; this is the
// shared formatter so they all look alike:
//
//   +------------+---------+--------+
//   | setup      | pps     | rel    |
//   +------------+---------+--------+
//   | legacy     | 14.8M   | 1.00x  |
//   ...
#pragma once

#include <string>
#include <vector>

namespace harmless::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with ASCII borders.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harmless::util

// util/hash.hpp — the one 64-bit mixing hash the project shares.
//
// An FNV-1a-style multiply-xor mix over a stream of u64s. Three layers
// key packed values with it and must never diverge:
//   * the specialized matcher's shape keys (openflow/matcher.cpp),
//   * the flow cache's microflow keys and per-mask subtable probes
//     (openflow/flow_cache.*),
//   * RSS ingress steering — the queue -> worker-core assignment of the
//     multi-core datapath (sim/scheduler.hpp).
// The last two sharing one mix is deliberate: RSS flow affinity only
// pays off because the same bits that pick a core also pick that
// core's cache shard, so a shard's subtable rank order tracks exactly
// the skew its own queues carry.
#pragma once

#include <cstdint>

namespace harmless::util {

/// FNV-1a 64-bit offset basis — the shared seed.
constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// Fold one u64 into a running hash (FNV-style multiply + xor-shift).
[[nodiscard]] constexpr std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t h = seed ^ value;
  h *= 0x100000001b3ULL;
  h ^= h >> 29;
  return h;
}

/// Pack one flow endpoint (IPv4 address + L4 port) into a single u64 —
/// the unit the symmetric flow hash sorts. 48 significant bits.
[[nodiscard]] constexpr std::uint64_t flow_endpoint(std::uint64_t ip, std::uint64_t port) {
  return (ip << 16) | (port & 0xffff);
}

/// Direction-insensitive flow hash: fold the two endpoints in sorted
/// order (then the protocol), so hash(a→b) == hash(b→a) for every
/// tuple. This is what RssPolicy::kSymmetric steers with and what the
/// conntrack tier uses for NAT port selection — both directions of one
/// connection must resolve to the same worker-core shard without
/// cross-core locking. Two extra self-folds finalize the value so that
/// `% cores` over small core counts sees well-mixed low bits.
[[nodiscard]] constexpr std::uint64_t symmetric_flow_hash(std::uint64_t ip_a, std::uint64_t port_a,
                                                          std::uint64_t ip_b, std::uint64_t port_b,
                                                          std::uint64_t proto) {
  const std::uint64_t a = flow_endpoint(ip_a, port_a);
  const std::uint64_t b = flow_endpoint(ip_b, port_b);
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  std::uint64_t h = hash_u64(kHashSeed, lo);
  h = hash_u64(h, hi);
  h = hash_u64(h, proto);
  h = hash_u64(h, h >> 32);
  h = hash_u64(h, h >> 32);
  return h;
}

/// Symmetric fold over a single unordered pair (no protocol/ports) —
/// the non-IP fallback for symmetric steering (e.g. sorted MAC pairs,
/// so an ARP request and its reply land on one core).
[[nodiscard]] constexpr std::uint64_t symmetric_pair_hash(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  std::uint64_t h = hash_u64(kHashSeed, lo);
  h = hash_u64(h, hi);
  h = hash_u64(h, h >> 32);
  return h;
}

}  // namespace harmless::util

// util/hash.hpp — the one 64-bit mixing hash the project shares.
//
// An FNV-1a-style multiply-xor mix over a stream of u64s. Three layers
// key packed values with it and must never diverge:
//   * the specialized matcher's shape keys (openflow/matcher.cpp),
//   * the flow cache's microflow keys and per-mask subtable probes
//     (openflow/flow_cache.*),
//   * RSS ingress steering — the queue -> worker-core assignment of the
//     multi-core datapath (sim/scheduler.hpp).
// The last two sharing one mix is deliberate: RSS flow affinity only
// pays off because the same bits that pick a core also pick that
// core's cache shard, so a shard's subtable rank order tracks exactly
// the skew its own queues carry.
#pragma once

#include <cstdint>

namespace harmless::util {

/// FNV-1a 64-bit offset basis — the shared seed.
constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// Fold one u64 into a running hash (FNV-style multiply + xor-shift).
[[nodiscard]] constexpr std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t h = seed ^ value;
  h *= 0x100000001b3ULL;
  h ^= h >> 29;
  return h;
}

}  // namespace harmless::util

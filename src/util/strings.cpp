#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace harmless::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += separator;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string si_format(double value, std::string_view unit, int precision) {
  const char* prefix = "";
  double scaled = value;
  if (scaled >= 1e9) {
    scaled /= 1e9;
    prefix = "G";
  } else if (scaled >= 1e6) {
    scaled /= 1e6;
    prefix = "M";
  } else if (scaled >= 1e3) {
    scaled /= 1e3;
    prefix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s%.*s", precision, scaled, prefix,
                static_cast<int>(unit.size()), unit.data());
  return buf;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace harmless::util

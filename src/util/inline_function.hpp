// util/inline_function.hpp — a move-only callable with small-buffer
// storage, built for the event engine's hot path.
//
// std::function costs the scheduler twice: every capture beyond two
// words heap-allocates, and it requires CopyConstructible targets —
// which rules out closures that capture a move-only net::Packet.
// InlineFunction stores any nothrow-movable callable up to
// kInlineBytes in place (one cache line together with the Event
// metadata around it) and boxes larger ones behind a single pointer,
// so scheduling a typical link-delivery or drain closure performs zero
// allocations.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace harmless::util {

class InlineFunction {
 public:
  /// Sized so Event{at, seq, fn} is two cache lines and the largest hot
  /// closure (Channel delivery: this + size + a moved Packet) fits.
  static constexpr std::size_t kInlineBytes = 104;

  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor): callable sink
    emplace(std::forward<F>(fn));
  }

  /// Destroy any current callable and construct `fn` directly in the
  /// small buffer — the zero-relocation path the event engine uses to
  /// build a closure straight into its slab slot.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    relocate_from(other);
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      relocate_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (if any) and become empty. Trivially
  /// relocatable callables (most capture lists: pointers, indices, a
  /// frame size) have no destroy op at all — reset is two predictable
  /// branches.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src`, destroying `src`; null
    /// when a fixed-size memcpy of the storage does the same thing
    /// (trivially copyable + trivially destructible callables), which
    /// lets moves inline instead of an indirect call per relocation.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null for trivially destructible callables.
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops make_inline_ops() {
    Ops ops{};
    ops.invoke = [](void* storage) { (*std::launder(static_cast<D*>(storage)))(); };
    if constexpr (std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
      ops.relocate = nullptr;
      ops.destroy = nullptr;
    } else {
      ops.relocate = [](void* src, void* dst) noexcept {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      };
      ops.destroy = [](void* storage) noexcept {
        std::launder(static_cast<D*>(storage))->~D();
      };
    }
    return ops;
  }

  template <typename D>
  static constexpr Ops kInlineOps = make_inline_ops<D>();

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* storage) { (**std::launder(static_cast<D**>(storage)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* storage) noexcept { delete *std::launder(static_cast<D**>(storage)); },
  };

  void relocate_from(InlineFunction& other) noexcept {
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
    }
    other.ops_ = nullptr;
  }

  alignas(kAlign) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace harmless::util

#include "util/rng.hpp"

#include <cmath>

namespace harmless::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 guarantees that for
  // any seed because consecutive outputs cannot all be zero.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  if (bound == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  // Inverse-CDF; uniform() < 1 so log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace harmless::util

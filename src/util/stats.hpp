// util/stats.hpp — counters and latency/size distributions.
//
// Benchmarks and the simulator record per-port packet/byte counters and
// full latency distributions. `Histogram` keeps exact samples up to a
// cap (enough for every bench in this repo) and reports quantiles and
// moments; `RateCounter` converts (count, simulated duration) into
// packets/s and bits/s.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace harmless::util {

/// Exact-sample distribution. Stores every sample (up to `max_samples`,
/// after which it reservoir-samples to stay bounded) and answers
/// quantile/mean/min/max queries.
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 1 << 20);

  void add(double sample);

  [[nodiscard]] std::size_t count() const { return total_count_; }
  [[nodiscard]] bool empty() const { return total_count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// "n=… mean=… p50=… p95=… p99=… max=…" one-liner for logs.
  [[nodiscard]] std::string summary(const std::string& unit = "") const;

  void clear();

 private:
  void ensure_sorted() const;

  std::size_t max_samples_;
  std::size_t total_count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
  std::uint64_t reservoir_state_ = 0x853c49e6748fea9bULL;  // cheap LCG for reservoir
};

/// Monotonic packet/byte tally with simulated-time rate conversion.
struct RateCounter {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  void add(std::size_t packet_bytes) {
    ++packets;
    bytes += packet_bytes;
  }
  void merge(const RateCounter& other) {
    packets += other.packets;
    bytes += other.bytes;
  }

  /// Packets per second over `duration_ns` of simulated time.
  [[nodiscard]] double pps(std::uint64_t duration_ns) const;
  /// Bits per second over `duration_ns` of simulated time.
  [[nodiscard]] double bps(std::uint64_t duration_ns) const;
};

}  // namespace harmless::util

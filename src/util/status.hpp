// util/status.hpp — lightweight error-reporting primitives.
//
// Expected, recoverable failures (a parse that does not apply, a config
// the device rejects) travel as values: `Status` for operations without
// a payload, `Result<T>` (result.hpp) for operations with one.
// Programming errors and unrecoverable configuration errors throw
// `ConfigError`.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace harmless::util {

/// Thrown for invalid configuration that indicates a caller bug or an
/// impossible deployment request (e.g. duplicate VLAN ids in a PortMap).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Value-style success/failure for expected failures. Cheap to copy on
/// the success path (no allocation); carries a message on failure.
class Status {
 public:
  /// Successful status.
  Status() = default;

  static Status ok() { return Status{}; }
  static Status error(std::string message) { return Status{std::move(message)}; }

  [[nodiscard]] bool is_ok() const { return message_.empty(); }
  explicit operator bool() const { return is_ok(); }

  /// Failure message; empty string when ok.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Throws ConfigError if this status is a failure. Use at boundaries
  /// where a failure can only mean a caller bug.
  void check() const {
    if (!is_ok()) throw ConfigError(message_);
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;  // empty == ok
};

}  // namespace harmless::util

#include "util/diff.hpp"

#include <algorithm>
#include <vector>

#include "util/strings.hpp"

namespace harmless::util {

std::string line_diff(std::string_view before, std::string_view after, int context) {
  if (before == after) return {};
  const std::vector<std::string> a = split(before, '\n');
  const std::vector<std::string> b = split(after, '\n');

  // Classic LCS table; configs are tiny so O(n*m) is fine.
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<std::uint32_t>> lcs(n + 1, std::vector<std::uint32_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = (a[i] == b[j]) ? lcs[i + 1][j + 1] + 1
                                 : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }

  struct Line {
    char tag;  // ' ', '-', '+'
    const std::string* text;
  };
  std::vector<Line> script;
  std::size_t i = 0, j = 0;
  bool changed = false;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      script.push_back({' ', &a[i]});
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      script.push_back({'-', &a[i++]});
      changed = true;
    } else {
      script.push_back({'+', &b[j++]});
      changed = true;
    }
  }
  while (i < n) {
    script.push_back({'-', &a[i++]});
    changed = true;
  }
  while (j < m) {
    script.push_back({'+', &b[j++]});
    changed = true;
  }
  if (!changed) return {};

  // Context filtering: keep unchanged lines only near changes.
  std::vector<bool> keep(script.size(), context < 0);
  if (context >= 0) {
    for (std::size_t k = 0; k < script.size(); ++k) {
      if (script[k].tag == ' ') continue;
      const std::size_t lo = k >= static_cast<std::size_t>(context)
                                 ? k - static_cast<std::size_t>(context)
                                 : 0;
      const std::size_t hi =
          std::min(script.size() - 1, k + static_cast<std::size_t>(context));
      for (std::size_t x = lo; x <= hi; ++x) keep[x] = true;
    }
  }

  std::string out;
  bool last_kept = true;
  for (std::size_t k = 0; k < script.size(); ++k) {
    if (!keep[k]) {
      if (last_kept) out += "...\n";
      last_kept = false;
      continue;
    }
    last_kept = true;
    out += script[k].tag == ' ' ? "  " : (script[k].tag == '-' ? "- " : "+ ");
    out += *script[k].text;
    out += '\n';
  }
  return out;
}

}  // namespace harmless::util

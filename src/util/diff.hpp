// util/diff.hpp — line-oriented diff for configuration text.
//
// NAPALM's compare_config returns a human-readable diff of candidate
// vs running; this is the engine behind our reproduction of it. LCS
// based (configs are small), output in the familiar -/+ form:
//
//     hostname sw1
//   - switchport access vlan 1
//   + switchport access vlan 101
#pragma once

#include <string>
#include <string_view>

namespace harmless::util {

/// Unified-style diff of `before` vs `after`. Unchanged lines are
/// prefixed with two spaces, removals with "- ", additions with "+ ".
/// Returns the empty string when the inputs are line-identical.
/// `context`: unchanged lines kept around each change (-1 = keep all).
[[nodiscard]] std::string line_diff(std::string_view before, std::string_view after,
                                    int context = -1);

}  // namespace harmless::util

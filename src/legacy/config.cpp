#include "legacy/config.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace harmless::legacy {

util::Status SwitchConfig::validate() const {
  for (const auto& [number, port] : ports) {
    if (number < 1)
      return util::Status::error(hostname + ": port numbers are 1-based, got " +
                                 std::to_string(number));
    if (port.mode == PortMode::kAccess) {
      if (!net::vlan_id_valid(port.pvid))
        return util::Status::error(util::format("%s: port %d: invalid PVID %u",
                                                hostname.c_str(), number, port.pvid));
    } else {
      if (port.allowed_vlans.empty() && !port.native_vlan)
        return util::Status::error(util::format(
            "%s: port %d: trunk carries no VLANs", hostname.c_str(), number));
      for (const net::VlanId vid : port.allowed_vlans)
        if (!net::vlan_id_valid(vid))
          return util::Status::error(util::format("%s: port %d: invalid allowed VLAN %u",
                                                  hostname.c_str(), number, vid));
      if (port.native_vlan && !net::vlan_id_valid(*port.native_vlan))
        return util::Status::error(util::format("%s: port %d: invalid native VLAN %u",
                                                hostname.c_str(), number, *port.native_vlan));
    }
  }
  return util::Status::ok();
}

std::set<int> SwitchConfig::ports_in_vlan(net::VlanId vid) const {
  std::set<int> result;
  for (const auto& [number, port] : ports)
    if (port.carries(vid)) result.insert(number);
  return result;
}

std::set<net::VlanId> SwitchConfig::all_vlans() const {
  std::set<net::VlanId> result;
  for (const auto& [number, port] : ports) {
    (void)number;
    if (port.mode == PortMode::kAccess) {
      result.insert(port.pvid);
    } else {
      result.insert(port.allowed_vlans.begin(), port.allowed_vlans.end());
      if (port.native_vlan) result.insert(*port.native_vlan);
    }
  }
  return result;
}

std::string SwitchConfig::to_text() const {
  std::ostringstream os;
  os << "hostname " << hostname << '\n';
  for (const auto& [number, port] : ports) {
    os << "interface " << number << '\n';
    if (!port.description.empty()) os << "  description " << port.description << '\n';
    if (port.mode == PortMode::kAccess) {
      os << "  switchport mode access\n  switchport access vlan " << port.pvid << '\n';
    } else {
      os << "  switchport mode trunk\n  switchport trunk allowed vlan ";
      std::vector<std::string> vids;
      for (const net::VlanId vid : port.allowed_vlans) vids.push_back(std::to_string(vid));
      os << util::join(vids, ",") << '\n';
      if (port.native_vlan) os << "  switchport trunk native vlan " << *port.native_vlan << '\n';
    }
    if (!port.enabled) os << "  shutdown\n";
  }
  return os.str();
}

}  // namespace harmless::legacy

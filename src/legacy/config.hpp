// legacy/config.hpp — the legacy switch's "running configuration".
//
// This mirrors what a real access switch stores in NVRAM: per-port
// mode (access/trunk), PVID, trunk allowed-VLAN list, plus global MAC
// aging. The HARMLESS Manager never touches the switch object directly;
// it renders one of these into a vendor dialect (mgmt/dialects) and
// pushes it through the emulated management plane, exactly as the paper
// does with SNMP/NAPALM.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/vlan.hpp"
#include "sim/time.hpp"
#include "util/status.hpp"

namespace harmless::legacy {

enum class PortMode {
  kAccess,  // untagged toward the host; frames classified into the PVID
  kTrunk,   // 802.1Q tagged; carries the allowed VLAN set
};

struct PortConfig {
  PortMode mode = PortMode::kAccess;
  /// Access: the VLAN untagged ingress frames join (and the only VLAN
  /// this port egresses, untagged).
  net::VlanId pvid = 1;
  /// Trunk: VLANs carried (tagged). Ignored for access ports.
  std::set<net::VlanId> allowed_vlans;
  /// Trunk: VLAN sent/received untagged on the trunk, if any.
  std::optional<net::VlanId> native_vlan;
  bool enabled = true;
  std::string description;

  [[nodiscard]] bool carries(net::VlanId vid) const {
    if (!enabled) return false;
    if (mode == PortMode::kAccess) return pvid == vid;
    return allowed_vlans.contains(vid) || (native_vlan && *native_vlan == vid);
  }
};

struct SwitchConfig {
  std::string hostname = "legacy-sw";
  /// Port number (1-based, like real gear) -> config.
  std::map<int, PortConfig> ports;
  sim::SimNanos mac_aging = 300u * 1000u * 1000u * 1000u;  // 300 s, the 802.1D default

  /// Structural validation: VLAN ids in range, trunks with non-empty
  /// allowed sets, no disabled port carrying config mistakes.
  [[nodiscard]] util::Status validate() const;

  /// Ports that carry `vid` (for flood domains and the MIB).
  [[nodiscard]] std::set<int> ports_in_vlan(net::VlanId vid) const;

  /// All VLAN ids referenced anywhere in the config.
  [[nodiscard]] std::set<net::VlanId> all_vlans() const;

  /// Canonical textual rendering (vendor-neutral), used by tests and
  /// config diffing in the management layer.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace harmless::legacy

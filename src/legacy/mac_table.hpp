// legacy/mac_table.hpp — the 802.1D learning/filtering database.
//
// Entries are keyed by (VLAN, MAC) — independent learning per VLAN, as
// required for HARMLESS where the same host MAC may appear in multiple
// VLAN contexts during migration. Aging is lazy: entries are checked
// against the clock on lookup, so no timer events are needed.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/mac.hpp"
#include "net/vlan.hpp"
#include "sim/time.hpp"

namespace harmless::legacy {

class MacTable {
 public:
  explicit MacTable(sim::SimNanos aging = 300u * 1000u * 1000u * 1000u,
                    std::size_t capacity = 8192)
      : aging_(aging), capacity_(capacity) {}

  /// Record (vlan, mac) -> port. Refreshes the timestamp on re-learn;
  /// a station move (same key, new port) overwrites. When full, new
  /// entries are not inserted (the real TCAM behaviour: flood instead).
  void learn(net::VlanId vlan, net::MacAddr mac, int port, sim::SimNanos now);

  /// Port for (vlan, mac), if known and not aged out.
  [[nodiscard]] std::optional<int> lookup(net::VlanId vlan, net::MacAddr mac,
                                          sim::SimNanos now) const;

  /// Drop all entries pointing at `port` (link-down handling); returns
  /// how many were flushed.
  std::size_t flush_port(int port);

  void clear() { table_.clear(); }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t moves() const { return moves_; }

  void set_aging(sim::SimNanos aging) { aging_ = aging; }
  [[nodiscard]] sim::SimNanos aging() const { return aging_; }

 private:
  struct Key {
    net::VlanId vlan;
    net::MacAddr mac;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return std::hash<std::uint64_t>{}(key.mac.to_u64() ^
                                        (static_cast<std::uint64_t>(key.vlan) << 48));
    }
  };
  struct Entry {
    int port;
    sim::SimNanos learned_at;
  };

  sim::SimNanos aging_;
  std::size_t capacity_;
  std::uint64_t moves_ = 0;
  std::unordered_map<Key, Entry, KeyHash> table_;
};

}  // namespace harmless::legacy

#include "legacy/mac_table.hpp"

namespace harmless::legacy {

void MacTable::learn(net::VlanId vlan, net::MacAddr mac, int port, sim::SimNanos now) {
  const Key key{vlan, mac};
  const auto it = table_.find(key);
  if (it != table_.end()) {
    if (it->second.port != port) ++moves_;
    it->second = Entry{port, now};
    return;
  }
  if (table_.size() >= capacity_) return;  // table full: keep flooding
  table_.emplace(key, Entry{port, now});
}

std::optional<int> MacTable::lookup(net::VlanId vlan, net::MacAddr mac,
                                    sim::SimNanos now) const {
  const auto it = table_.find(Key{vlan, mac});
  if (it == table_.end()) return std::nullopt;
  if (aging_ > 0 && now - it->second.learned_at > aging_) return std::nullopt;  // aged out
  return it->second.port;
}

std::size_t MacTable::flush_port(int port) {
  std::size_t flushed = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.port == port) {
      it = table_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  return flushed;
}

}  // namespace harmless::legacy

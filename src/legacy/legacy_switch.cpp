#include "legacy/legacy_switch.hpp"

#include <algorithm>
#include <utility>

namespace harmless::legacy {

LegacySwitch::LegacySwitch(sim::Engine& engine, std::string name, SwitchConfig config)
    // burst_size 1: the ASIC forwards per packet at line rate; burst
    // amortization is a software-datapath technique (SoftSwitch). The
    // ingress stays FCFS over per-port queues — store-and-forward
    // access silicon arbitrates in arrival order.
    : ServicedNode(engine, std::move(name), sim::IngressSpec{}, /*burst_size=*/1),
      mac_table_(config.mac_aging) {
  apply_config(std::move(config));
}

void LegacySwitch::apply_config(SwitchConfig config) {
  config.validate().check();
  // Conservative and correct: any config change invalidates learned
  // state (real switches flush per-VLAN; the distinction is invisible
  // to our tests and the Manager reconfigures rarely).
  mac_table_.clear();
  mac_table_.set_aging(config.mac_aging);
  config_ = std::move(config);
  int max_port = 0;
  for (const auto& [number, port] : config_.ports) max_port = std::max(max_port, number);
  ensure_ports(static_cast<std::size_t>(max_port));
  ensure_rx_queues(static_cast<std::size_t>(max_port));
}

void LegacySwitch::on_port_link(int port_index, bool up) {
  if (up) return;
  counters_.link_down_flushes += mac_table_.flush_port(port_index + 1);
}

std::optional<LegacySwitch::Classified> LegacySwitch::classify(
    int port_number, const net::ParsedPacket& parsed) const {
  const auto it = config_.ports.find(port_number);
  if (it == config_.ports.end() || !it->second.enabled) return std::nullopt;
  const PortConfig& port = it->second;

  if (port.mode == PortMode::kAccess) {
    // 802.1Q access ports drop tagged frames (no VLAN leaking).
    if (parsed.has_vlan()) return std::nullopt;
    return Classified{port.pvid, false};
  }

  // Trunk.
  if (parsed.has_vlan()) {
    const net::VlanId vid = parsed.vlan_vid();
    if (!port.allowed_vlans.contains(vid)) return std::nullopt;
    return Classified{vid, true};
  }
  if (port.native_vlan) return Classified{*port.native_vlan, false};
  return std::nullopt;
}

void LegacySwitch::egress(int port_number, net::VlanId vlan, net::Packet&& packet) {
  const PortConfig& port = config_.ports.at(port_number);
  // as_const: a mutable frame() would invalidate the interned parse
  // even on the no-rewrite path (access egress of an untagged frame).
  const bool tagged = net::vlan_peek(std::as_const(packet).frame()).has_value();

  if (port.mode == PortMode::kAccess) {
    // Access egress is always untagged.
    if (tagged) net::vlan_pop(packet.frame());
  } else {
    const bool send_untagged = port.native_vlan && *port.native_vlan == vlan;
    if (send_untagged) {
      if (tagged) net::vlan_pop(packet.frame());
    } else if (!tagged) {
      net::vlan_push(packet.frame(), net::VlanTag{vlan, 0, false});
    } else {
      net::vlan_set_vid(packet.frame(), vlan);
    }
  }
  packet.charge(costs_.rewrite_ns);
  emit(static_cast<std::size_t>(port_number - 1), std::move(packet));
}

sim::SimNanos LegacySwitch::service(int in_port, net::Packet&& packet) {
  const int port_number = in_port + 1;
  // By-value copy of the interned parse: egress rewrites the frame
  // (dropping the intern), and the flood loop reads `parsed` between
  // egress calls — a reference would dangle.
  const net::ParsedPacket parsed = net::parse_cached(packet).parsed;
  sim::SimNanos cost = costs_.classify_ns;

  packet.add_hop();

  const auto classified = classify(port_number, parsed);
  if (!classified || !parsed.l2_valid) {
    ++counters_.ingress_filtered;
    packet.charge(cost);
    return cost;
  }
  const net::VlanId vlan = classified->vlan;

  // Learning (unicast sources only).
  cost += costs_.lookup_ns;
  if (!parsed.eth_src.is_multicast() && !parsed.eth_src.is_zero())
    mac_table_.learn(vlan, parsed.eth_src, port_number, engine_.now());

  // Known unicast?
  std::optional<int> out;
  if (!parsed.eth_dst.is_multicast())
    out = mac_table_.lookup(vlan, parsed.eth_dst, engine_.now());

  packet.charge(cost);

  if (out && *out != port_number) {
    ++counters_.forwarded;
    egress(*out, vlan, std::move(packet));
    return cost + costs_.rewrite_ns;
  }
  if (out && *out == port_number) {
    // Destination is on the ingress segment; filter (802.1D).
    return cost;
  }

  // Flood within the VLAN.
  ++counters_.flooded;
  std::size_t copies = 0;
  for (const int member : config_.ports_in_vlan(vlan)) {
    if (member == port_number) continue;
    ++copies;
    egress(member, vlan, packet.clone());  // copy per member
  }
  counters_.flood_copies += copies;
  if (copies == 0) ++counters_.no_member_egress;
  return cost + static_cast<sim::SimNanos>(copies) * costs_.rewrite_ns;
}

}  // namespace harmless::legacy

// legacy/legacy_switch.hpp — a faithful model of a dumb 802.1Q access
// switch: the hardware HARMLESS keeps in service.
//
// Behaviour implemented (and nothing more — this device has no flow
// tables, no controller, no programmability):
//   * VLAN classification on ingress: access ports classify untagged
//     frames into their PVID and drop tagged frames; trunk ports accept
//     frames tagged with an allowed VLAN (and untagged into the native
//     VLAN if configured).
//   * MAC learning per (VLAN, source MAC) with aging; multicast sources
//     are never learned.
//   * Forwarding: known unicast to the learned port, otherwise flood
//     inside the VLAN (never back out the ingress port).
//   * Egress tagging: access ports send untagged; trunks send tagged
//     (native VLAN untagged).
//
// The crucial emergent property for HARMLESS: when every access port
// has a *unique* PVID and one trunk carries them all, no two access
// ports share a VLAN, so the switch can never locally bridge host
// traffic — every frame is tagged with its ingress port's VLAN and
// hairpins through the trunk. §2 of the paper in ~20 lines of config.
#pragma once

#include <cstdint>

#include "legacy/config.hpp"
#include "legacy/mac_table.hpp"
#include "net/parse.hpp"
#include "sim/node.hpp"

namespace harmless::legacy {

/// Per-packet hardware costs. A store-and-forward ASIC does lookup +
/// rewrite in effectively constant time; values are representative of
/// a 2017 1G access switch and only matter *relative* to the software
/// switch costs in softswitch/soft_switch.hpp.
struct AsicCosts {
  // Defaults total 30 ns/packet (~33 Mpps), i.e. above 10G line rate
  // for minimum-size frames: the ASIC is never the bottleneck, as on
  // real store-and-forward access silicon.
  sim::SimNanos classify_ns = 10;  // VLAN classification + ingress filter
  sim::SimNanos lookup_ns = 15;    // FDB lookup + learning
  sim::SimNanos rewrite_ns = 5;    // tag push/pop on egress
};

class LegacySwitch : public sim::ServicedNode {
 public:
  /// `config` port numbers are 1-based; sim port index = number - 1.
  LegacySwitch(sim::Engine& engine, std::string name, SwitchConfig config);

  /// Replace the running config (what a mgmt commit ultimately calls).
  /// Flushes learned MACs on ports whose VLAN membership changed.
  void apply_config(SwitchConfig config);
  [[nodiscard]] const SwitchConfig& config() const { return config_; }

  [[nodiscard]] const MacTable& mac_table() const { return mac_table_; }

  struct Counters {
    std::uint64_t forwarded = 0;          // known-unicast forwards
    std::uint64_t flooded = 0;            // unknown-unicast/broadcast floods
    std::uint64_t flood_copies = 0;       // total copies emitted by floods
    std::uint64_t ingress_filtered = 0;   // dropped by VLAN ingress rules
    std::uint64_t no_member_egress = 0;   // frame had nowhere to go
    std::uint64_t link_down_flushes = 0;  // MAC entries flushed by port link-down
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  void set_costs(AsicCosts costs) { costs_ = costs; }

  /// Link state change on a port: a down transition flushes the FDB
  /// entries learned on that port (802.1D topology-change behaviour —
  /// stations behind a dead link must not black-hole unicast; they
  /// flood and re-learn wherever the station reappears).
  void on_port_link(int port_index, bool up) override;

 protected:
  sim::SimNanos service(int in_port, net::Packet&& packet) override;

 private:
  struct Classified {
    net::VlanId vlan;
    bool had_tag;
  };

  /// Ingress VLAN classification; nullopt means "filter the frame".
  [[nodiscard]] std::optional<Classified> classify(int port_number,
                                                   const net::ParsedPacket& parsed) const;

  /// Emit `packet` out of `port_number` with correct egress tagging.
  void egress(int port_number, net::VlanId vlan, net::Packet&& packet);

  SwitchConfig config_;
  MacTable mac_table_;
  AsicCosts costs_;
  Counters counters_;
};

}  // namespace harmless::legacy

// softswitch/soft_switch.hpp — the x86 software switch datapath.
//
// One SoftSwitch is one software-switch instance of the paper (SS_1 or
// SS_2): an OF1.3 pipeline bound to ports. OpenFlow port n corresponds
// to sim port index n-1. A port is either
//   * wired  — attached to a sim Channel (a NIC + cable), or
//   * patch  — bound to a port of another SoftSwitch in the same box
//     (the SS_1<->SS_2 interconnect of Fig. 1): delivery is a queue
//     hand-off that costs kPatchNs of compute instead of wire time.
//
// The datapath is two-tier cached (openflow/flow_cache.hpp): service()
// consults the microflow/megaflow cache first and only falls back to
// the full multi-table traversal on a miss, which then installs the
// learned megaflow. Flow-mods, group mods, entry expiry and port
// state changes invalidate cached entries through a shared epoch.
//
// The datapath is burst-oriented (OVS/DPDK style): the service loop
// drains up to `burst_size` packets per gulp (default 32) and runs
// them through Pipeline::run_burst — probe the cache for the whole
// burst, replay hits grouped by megaflow (one replay setup per group),
// slow-path only the residue. With burst_size 1 it degrades to the
// per-packet datapath (the batching ablation baseline).
//
// The datapath is multi-core capable (IngressSpec::cores): each worker
// core owns a subset of the per-port RX queues (RSS-hash steered, pin
// map override), its own BurstScheduler instance, and its own
// flow-cache *shard* (Pipeline cache shard = core index) — microflow
// map, classifier subtables, rank order and CLOCK hand are all
// per-core, so a shard's probe order tracks exactly the skew its own
// queues carry and no cross-core cache state exists beyond the one
// read-mostly invalidation epoch. Every service step each backlogged
// core drains one burst; per-core busy nanoseconds accrue separately
// and simulated time advances by the step makespan (see sim/node.hpp).
// Steering bills DatapathCosts::rss_hash_ns per packet (multi-core
// only); cores=1 is bit-exact with the single-core datapath.
//
// The datapath charges simulated nanoseconds accordingly: per burst, a
// fixed rx/tx overhead plus a smaller per-packet marginal (their sum
// at burst size 1 equals the per-packet rx_tx_ns — batching buys the
// super-linear gain real switches see), a replay setup per distinct
// megaflow group, and per packet either the flat cache-hit cost plus
// replayed actions or the full parse/lookup/action bill the pipeline
// reports plus the megaflow-insert cost (only when a megaflow was
// actually installed). Defaults model an ESwitch/DPDK-class switch
// (~10 Mpps/core simple pipelines, per-packet); the legacy ASIC in
// legacy_switch.hpp is faster per packet but dumb — that contrast is
// exactly the trade HARMLESS exploits. All knobs are documented in
// EXPERIMENTS.md.
//
// The control side implements the OF session: hello/features, flow and
// group mods with error replies, packet-in/out, barriers, flow stats,
// flow-removed on expiry, port-status on failure injection.
//
// The control side is failable (PR 7). With a FailoverSpec enabled the
// switch probes controller liveness with echo requests; after
// `echo_miss_threshold` consecutive unanswered probes it declares the
// controller lost and enters one of the two OF1.3 §6.4 degraded modes:
//   * fail-secure     — packet-ins are dropped; installed flows keep
//                       forwarding and keep expiring.
//   * fail-standalone — the datapath falls back to legacy MAC
//                       learning/flooding (the OFPP_NORMAL function,
//                       reusing legacy::MacTable), bypassing the
//                       OpenFlow pipeline entirely.
// While lost it retries the session with capped exponential backoff
// (deterministic seeded jitter). The controller answers a reconnect
// Hello with a features handshake; the switch then bumps the flow-
// cache epoch, flushes standalone MACs, and counts re-installed flows
// until the controller's resync barrier arrives — after which an
// optional warm-up window rate-limits packet-ins while the control
// plane refills its own state. All of it is opt-in: the default
// FailoverSpec is disabled and the datapath is bit-exact with PR 6.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "legacy/mac_table.hpp"
#include "openflow/channel.hpp"
#include "openflow/messages.hpp"
#include "openflow/pipeline.hpp"
#include "sim/faults.hpp"
#include "sim/node.hpp"
#include "sim/witness.hpp"
#include "softswitch/replication.hpp"
#include "util/rng.hpp"

namespace harmless::softswitch {

struct DatapathCosts {
  sim::SimNanos rx_tx_ns = 55;   // NIC RX + TX per packet (per-packet datapath, burst_size 1)
  /// Batched rx/tx: one poll-mode rx burst + tx burst costs a fixed
  /// setup plus a small marginal per packet. Defaults keep the
  /// identity rx_tx_burst_ns + rx_tx_pkt_ns == rx_tx_ns, so a
  /// one-packet burst pays what the per-packet datapath pays for rx/tx
  /// (the batched path still adds its replay_setup_ns — polling for a
  /// single packet is how batching loses at burst size 1).
  sim::SimNanos rx_tx_burst_ns = 40;  // fixed per rx/tx burst call
  sim::SimNanos rx_tx_pkt_ns = 15;    // marginal per packet within a burst
  /// Poll-mode rx sweep: every service burst polls every per-port RX
  /// queue the serving core owns once, empty or not — port density
  /// costs cycles even when the ports are silent (charged per queue
  /// per burst; the per-packet burst_size-1 datapath keeps the flat
  /// rx_tx_ns instead).
  sim::SimNanos rx_poll_ns = 2;
  /// RSS steering: one hash per packet deciding which worker core's
  /// queue it lands in (what a NIC's RSS indirection table computes
  /// per received frame). Charged per packet only on a multi-core
  /// datapath — with one core there is no steering decision to make,
  /// which keeps cores=1 bit-exact with the single-core bill.
  sim::SimNanos rss_hash_ns = 3;
  sim::SimNanos patch_ns = 20;   // patch-port hand-off (one enqueue)
  sim::SimNanos clone_ns = 15;   // per extra copy on flood/group ALL
  /// Flow-cache fast path: one microflow hash probe + key validation,
  /// charged *instead of* the pipeline's parse + lookup bill.
  sim::SimNanos cache_hit_ns = 10;
  /// Each megaflow candidate the tier-2 wildcard scan examines (a
  /// masked compare, cheaper than a full rule comparison) — only
  /// charged when the linear-scan ablation is on; microflow hits scan
  /// nothing.
  sim::SimNanos cache_scan_ns = 2;
  /// Each hashed subtable probe of the dpcls-style tier-2 classifier
  /// (one masked-key hash + one bucket lookup — costlier than a single
  /// masked compare, but paid per *distinct mask*, not per entry).
  sim::SimNanos cache_subtable_ns = 4;
  /// Megaflow learning on a slow-path miss that actually installed an
  /// entry (build + install); punting misses decline to install and
  /// are not charged (PipelineResult::cache_installed).
  sim::SimNanos cache_insert_ns = 30;
  /// Fetching one cached action program + setting up its replay
  /// context. The batched datapath pays this once per distinct
  /// megaflow group in a burst — the amortization elephants buy.
  sim::SimNanos replay_setup_ns = 12;
  /// Fail-standalone MAC-learning datapath, per packet (learn + FDB
  /// lookup in software): cheaper than a pipeline slow-path miss but
  /// costlier than a cache hit — the legacy function without legacy
  /// silicon. Only charged while degraded in standalone mode.
  sim::SimNanos standalone_ns = 45;
  /// Conntrack prelude classification: one hash probe of the per-core
  /// connection table per IPv4 TCP/UDP packet while conntrack is
  /// enabled (cache hit or miss alike — the ct_state stamp happens
  /// before any cache probe). Zero-billed when conntrack is off.
  sim::SimNanos ct_lookup_ns = 8;
  /// One `ct` action traversal: create/refresh the connection entry,
  /// advance TCP state, resolve the NAT rewrite. Paid on slow path and
  /// megaflow replay alike — connection state always advances.
  sim::SimNanos ct_commit_ns = 25;
  /// Serializing one connection entry into a checkpoint image. Billed
  /// into FailoverStats::checkpoint_ns_billed as reported overhead
  /// (not injected into the datapath event timeline — checkpointing
  /// perturbs the staleness-vs-overhead ledger, not packet order), so
  /// the bench_faults cadence sweep prices full vs incremental
  /// checkpoints honestly.
  sim::SimNanos checkpoint_entry_ns = 40;

  /// Everything but rx/tx for one pipeline result: the pipeline's own
  /// bill plus the cache accounting.
  [[nodiscard]] sim::SimNanos marginal_cost_ns(const openflow::PipelineResult& result,
                                               bool cache_enabled) const {
    sim::SimNanos cost = result.cost_ns +
                         static_cast<sim::SimNanos>(result.ct_lookups) * ct_lookup_ns +
                         static_cast<sim::SimNanos>(result.ct_commits) * ct_commit_ns;
    if (cache_enabled) {
      cost += static_cast<sim::SimNanos>(result.cache_scanned) *
              (result.cache_linear ? cache_scan_ns : cache_subtable_ns);
      if (result.cache_hit)
        cost += cache_hit_ns;
      else if (result.cache_installed)
        cost += cache_insert_ns;
    }
    return cost;
  }

  /// The full per-packet bill for one pipeline result on the
  /// per-packet datapath — the single source of truth shared by
  /// SoftSwitch::service and the capacity benches (bench_throughput
  /// Table 3).
  [[nodiscard]] sim::SimNanos packet_cost_ns(const openflow::PipelineResult& result,
                                             bool cache_enabled) const {
    return rx_tx_ns + marginal_cost_ns(result, cache_enabled);
  }

  /// The full bill for one service burst — shared by
  /// SoftSwitch::service_burst and the burst-sweep bench.
  /// `rx_packets` is what the rx burst actually pulled (may exceed
  /// burst.results when ingress-down packets were dropped pre-pipeline);
  /// `queues_polled` is the per-port RX queues the serving core's poll
  /// sweep visited (all of its own, every burst — empty-port polling
  /// isn't free); `rss_hashes` is the steering decisions billed to the
  /// burst (one per packet on a multi-core datapath, 0 single-core).
  [[nodiscard]] sim::SimNanos burst_cost_ns(const openflow::BurstResult& burst,
                                            bool cache_enabled, std::size_t rx_packets,
                                            std::size_t queues_polled,
                                            std::size_t rss_hashes = 0) const {
    sim::SimNanos cost = rx_tx_burst_ns +
                         static_cast<sim::SimNanos>(queues_polled) * rx_poll_ns +
                         static_cast<sim::SimNanos>(rx_packets) * rx_tx_pkt_ns +
                         static_cast<sim::SimNanos>(rss_hashes) * rss_hash_ns;
    if (cache_enabled)
      cost += static_cast<sim::SimNanos>(burst.replay_groups) * replay_setup_ns;
    for (const openflow::PipelineResult& result : burst.results)
      cost += marginal_cost_ns(result, cache_enabled);
    return cost;
  }
};

/// Controller-loss behaviour (OF1.3 §6.4). Disabled by default
/// (echo_interval_ns == 0): no probes, no degraded modes, no backoff —
/// the PR-6 datapath exactly. NOTE: enabling liveness probing makes the
/// echo timer self-perpetuating, so drive the engine with run_until(),
/// not run().
struct FailoverSpec {
  enum class Mode {
    kFailSecure,      // drop packet-ins; installed flows keep working
    kFailStandalone,  // fall back to MAC learning (OFPP_NORMAL)
  };
  Mode mode = Mode::kFailSecure;
  /// Liveness probe cadence; 0 disables the whole failover machinery.
  sim::SimNanos echo_interval_ns = 0;
  /// Consecutive unanswered probes before the controller is declared
  /// lost (so detection takes ~threshold * interval).
  int echo_miss_threshold = 3;
  /// Reconnect backoff: initial delay, doubling per attempt up to the
  /// cap, plus a uniform jitter of up to `backoff_jitter` * delay drawn
  /// from a seeded Rng (deterministic; decorrelates fleets).
  sim::SimNanos backoff_initial_ns = 1'000'000;  // 1 ms
  sim::SimNanos backoff_cap_ns = 8'000'000;      // 8 ms
  double backoff_jitter = 0.25;
  std::uint64_t seed = 0xfa11'0f3aULL;
  /// Post-resync warm-up: for `warmup_ns` after the resync barrier, at
  /// most `warmup_packet_in_budget` packet-ins are admitted (a governor
  /// protecting the just-restarted controller from the thundering herd
  /// of cold flows). 0 disables the window.
  sim::SimNanos warmup_ns = 0;
  std::uint64_t warmup_packet_in_budget = 32;
  /// Conntrack checkpoint cadence: every interval the switch snapshots
  /// all connection shards into an off-box image that fault_restart
  /// restores (see ConnTracker::checkpoint/restore). 0 (default) = no
  /// checkpointing — a crash loses every connection, the PR-8
  /// behaviour exactly. Independent of echo_interval_ns: a switch with
  /// no controller-liveness probing can still checkpoint. The timer is
  /// self-disarming (it stops once the connection table empties), so
  /// run() engines still drain.
  sim::SimNanos checkpoint_interval_ns = 0;
  /// Incremental checkpoints: each cadence serializes only the shards
  /// mutated since their last capture (ConnTracker dirty tracking);
  /// clean shards keep their previous image. Off (default) = every
  /// cadence re-serializes every shard, the PR-9 behaviour. The held
  /// image stays exact either way — any commit/refresh/kill dirties
  /// its shard — modulo entries that lazily expired unswept (they are
  /// filtered again at restore, so the slack is cosmetic).
  bool incremental_checkpoints = false;

  [[nodiscard]] bool enabled() const { return echo_interval_ns > 0; }
  [[nodiscard]] bool checkpointing() const { return checkpoint_interval_ns > 0; }
};

/// Everything the failover machinery observed, for tests and Table 8.
struct FailoverStats {
  std::uint64_t disconnects = 0;        // controller declared lost
  std::uint64_t reconnects = 0;         // sessions re-established
  std::uint64_t resyncs = 0;            // resync barriers observed
  std::uint64_t echo_sent = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t echo_misses = 0;        // probe intervals that elapsed unanswered
  std::uint64_t reconnect_attempts = 0; // backoff Hellos sent
  std::uint64_t packet_ins_dropped = 0; // suppressed while degraded (fail-secure)
  std::uint64_t warmup_packet_ins_dropped = 0;  // over-budget during warm-up
  std::uint64_t standalone_packets = 0; // served by the MAC-learning fallback
  std::uint64_t standalone_floods = 0;
  std::uint64_t flows_expired_degraded = 0;  // expiries while disconnected
  std::uint64_t flows_reinstalled = 0;  // adds between reconnect and resync barrier
  std::uint64_t crashes = 0;            // switch-level crash faults
  std::uint64_t restarts = 0;
  std::uint64_t dropped_restarting = 0; // ingress dropped while rebooting
  // Stateful HA (PR 9):
  std::uint64_t checkpoints = 0;        // whole-switch conntrack snapshots taken
  std::uint64_t ct_restored = 0;        // connections rebuilt by fault_restart
  std::uint64_t ct_restore_dropped = 0; // snapshot entries restore refused
  std::uint64_t takeovers = 0;          // standby promotions (ha_takeover)
  std::uint64_t warm_resyncs = 0;       // resyncs completed with restored ct state
  // Split-brain-safe HA (PR 10):
  std::uint64_t ha_fences = 0;             // fencing engaged (lease lost/lapsed)
  std::uint64_t ha_unfences = 0;           // fencing lifted (lease regained)
  std::uint64_t ha_lease_grants = 0;       // witness grants/renewals received
  std::uint64_t ha_lease_denials = 0;      // witness denials received
  std::uint64_t ha_promotions_denied = 0;  // standby takeovers blocked by the witness
  std::uint64_t ha_demotions = 0;          // active stepped down (newer epoch seen)
  std::uint64_t ha_failbacks = 0;          // warm resync streams completed
  std::uint64_t ha_failback_entries = 0;   // connections upserted by failback resync
  std::uint64_t ha_deltas_rejected_epoch = 0;  // stale-epoch deltas refused
  std::uint64_t checkpoint_entries = 0;    // entries serialized across cadences
  std::uint64_t checkpoint_bytes = 0;      // wire bytes serialized across cadences
  std::uint64_t checkpoint_shards_skipped = 0;  // clean shards reusing their image
  sim::SimNanos checkpoint_ns_billed = 0;  // serialization cost (reported, not injected)
  sim::SimNanos degraded_ns = 0;        // cumulative disconnected time
  sim::SimNanos last_disconnect_at = -1;
  sim::SimNanos last_reconnect_at = -1;
  sim::SimNanos last_resync_at = -1;    // Table 8 recovery = this - heal time
};

class SoftSwitch : public sim::ServicedNode, public sim::FaultPoint {
 public:
  SoftSwitch(sim::Engine& engine, std::string name, std::uint64_t datapath_id,
             std::size_t of_port_count, std::size_t table_count = 2, bool specialized = true,
             bool flow_cache = true, std::size_t burst_size = 32,
             const sim::IngressSpec& ingress = {});

  [[nodiscard]] std::uint64_t datapath_id() const { return datapath_id_; }
  [[nodiscard]] std::size_t of_port_count() const { return of_port_count_; }
  [[nodiscard]] openflow::Pipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const openflow::Pipeline& pipeline() const { return pipeline_; }

  /// Bind OF port `of_port` to `peer`'s OF port `peer_of_port` as a
  /// patch pair (both directions are bound; call once per pair).
  void bind_patch(std::uint32_t of_port, SoftSwitch& peer, std::uint32_t peer_of_port);

  /// Attach the controller channel (datapath side). The switch answers
  /// hello/features/echo/barrier and routes packet-ins there.
  void attach_channel(openflow::ControlChannel& channel);

  /// Administratively set an OF port up/down. Down ports drop egress
  /// and ingress; a PortStatus message is sent to the controller.
  void set_port_state(std::uint32_t of_port, bool up);
  [[nodiscard]] bool port_up(std::uint32_t of_port) const;

  /// Direct rule installation, bypassing the channel — the HARMLESS
  /// Manager uses this for SS_1, which is *not* controller-managed.
  [[nodiscard]] util::Status install(const openflow::FlowModMsg& mod);
  [[nodiscard]] util::Status install_group(const openflow::GroupModMsg& mod);

  struct Counters {
    std::uint64_t pipeline_runs = 0;
    std::uint64_t packets_out = 0;      // data-plane outputs emitted
    std::uint64_t packet_ins = 0;       // punts to controller
    std::uint64_t drops_no_match = 0;   // pipeline produced nothing
    std::uint64_t drops_port_down = 0;
    std::uint64_t flow_mods = 0;
    std::uint64_t errors = 0;
    // Flow-cache fast path (zero when the cache is disabled):
    std::uint64_t cache_hits = 0;          // packets served by replay
    std::uint64_t cache_misses = 0;        // packets that took the slow path
    std::uint64_t cache_invalidations = 0; // epoch bumps observed (flow/group mods,
                                           // expiry, port state changes)
    std::uint64_t cache_evictions = 0;     // megaflows displaced by CLOCK at capacity
    std::uint64_t cache_subtables = 0;     // live per-mask subtables (distinct signatures)
    std::uint64_t cache_subtable_probes = 0;  // cumulative hashed tier-2 probes; divide by
                                              // tier-2 lookups for probes-per-lookup
    // Burst service loop (zero when burst_size is 1):
    std::uint64_t service_bursts = 0;      // bursts drained by service_burst
    std::uint64_t replay_groups = 0;       // megaflow groups replayed across bursts
    std::uint64_t rx_queue_polls = 0;      // per-port RX queues polled across bursts
    // Multi-core datapath (zero with one core):
    std::uint64_t rss_steered = 0;         // per-packet steering hashes billed
    // Conntrack tier (zero while conntrack is disabled); aggregated
    // across the per-core shards at read time, like the cache fields:
    std::uint64_t ct_lookups = 0;       // prelude classifications
    std::uint64_t ct_hits = 0;          // classifications that found an entry
    std::uint64_t ct_created = 0;       // connections committed
    std::uint64_t ct_expired = 0;       // idle-timeout kills
    std::uint64_t ct_evicted = 0;       // LRU reclaims at capacity
    std::uint64_t ct_invalid = 0;       // unclassifiable (mid-stream TCP, NAT failures)
    std::uint64_t ct_nat_allocated = 0;
    std::uint64_t ct_nat_failures = 0;
    std::size_t ct_connections = 0;     // live entries across shards
  };
  /// Datapath counters. The cache eviction/classifier fields are
  /// aggregated across the per-core shards at read time (they are
  /// monotone per-shard totals; summing them per packet would put
  /// O(cores) work on the hot path for numbers only reports consume).
  [[nodiscard]] const Counters& counters() const;

  /// One worker core's slice of the datapath: its service-loop bill
  /// (from ServicedNode's per-core accounting) joined with its own
  /// flow-cache shard's stats — the per-core numbers the core-scaling
  /// bench table and the sharding tests read.
  struct CoreStats {
    sim::SimNanos busy_ns = 0;
    std::uint64_t bursts = 0;
    std::uint64_t packets = 0;          // packets this core served
    std::uint64_t rx_queue_polls = 0;
    std::size_t rx_queues = 0;          // queues steered to this core
    std::uint64_t cache_hits = 0;       // this shard's lookup hits
    std::uint64_t cache_misses = 0;     // this shard's lookup misses
    std::uint64_t cache_evictions = 0;  // CLOCK evictions in this shard
    std::size_t cache_megaflows = 0;    // resident megaflows in this shard
    std::size_t cache_subtables = 0;    // live subtables in this shard
    std::size_t ct_connections = 0;     // live conntrack entries in this shard
    std::uint64_t ct_created = 0;       // connections committed on this shard
    std::uint64_t ct_lookups = 0;       // prelude classifications on this shard
  };
  [[nodiscard]] CoreStats core_stats(std::size_t core) const;

  /// Per-OF-port ingress queue stats (of_port is 1-based, like every
  /// OF-facing API here). Depth is the live backlog; drops and peak
  /// depth are cumulative — the per-port numbers the bench tables and
  /// the DRR isolation tests assert on. Under the symmetric RSS grid a
  /// port fronts one queue per core; these aggregate the whole group.
  [[nodiscard]] std::size_t rx_queue_depth(std::uint32_t of_port) const {
    return of_port >= 1 ? port_queue_depth(of_port - 1) : 0;
  }
  [[nodiscard]] std::uint64_t rx_queue_drops(std::uint32_t of_port) const {
    return of_port >= 1 ? port_queue_drops(of_port - 1) : 0;
  }
  [[nodiscard]] std::size_t rx_queue_peak_depth(std::uint32_t of_port) const {
    return of_port >= 1 ? port_queue_peak_depth(of_port - 1) : 0;
  }

  void set_costs(const DatapathCosts& costs) { costs_ = costs; }
  [[nodiscard]] const DatapathCosts& costs() const { return costs_; }

  /// Enable the stateful conntrack tier (one connection-table shard per
  /// worker core; see openflow/conntrack.hpp). Call before traffic,
  /// like the other datapath shape knobs. Idle connections expire off a
  /// self-disarming sweep timer (CtConfig::sweep_interval cadence).
  void enable_conntrack(const openflow::CtConfig& config) {
    pipeline_.enable_conntrack(config);
  }

  /// Enable (or reconfigure) controller-loss handling. With the probe
  /// timer armed the engine's queue never drains — use run_until().
  void set_failover(const FailoverSpec& spec);
  [[nodiscard]] const FailoverSpec& failover() const { return failover_; }
  [[nodiscard]] const FailoverStats& failover_stats() const { return failover_stats_; }

  // ---- stateful HA: active–standby pairing (PR 9/10) ----
  // Wire two switches (same shard count, same rules, conntrack enabled
  // on both) through one ReplicationChannel: the active publishes its
  // conntrack deltas and heartbeats into it, the standby applies the
  // deltas and promotes itself when the heartbeats go silent. Both
  // calls are opt-in and arm perpetual timers — drive the engine with
  // run_until(). A takeover does not rewire traffic by itself; the
  // harness observes it through set_ha_takeover_handler and re-steers.
  //
  // PR 10 adds witness arbitration: attach a WitnessLink to both boxes
  // and promotion requires a lease quorum (heartbeat silence AND a
  // witness grant), while an active that cannot renew fences itself —
  // stops minting conntrack/NAT state — at lease expiry. Fencing is
  // fail-closed: a box with a witness attached is fenced until its
  // first grant. With no witness, behaviour is the PR-9 machinery
  // exactly. Pass the reverse channel to enable warm failback: a
  // demoted ex-active asks over it and the new active streams its
  // shard snapshots back.

  enum class HaRole : std::uint8_t { kNone, kActive, kStandby };

  /// Attach this box's wire to the lease witness. Call before (or
  /// after) enable_ha_active/standby; engages fail-closed fencing
  /// immediately on an active. The link must outlive the switch.
  void set_ha_witness(sim::WitnessLink& link);

  /// Become the active of an HA pair: every conntrack shard's delta
  /// stream is published into `channel` (stamped with the fencing
  /// epoch), and a heartbeat fires every heartbeat_interval_ns (silent
  /// while crashed or fenced). `reverse` (standby→active direction),
  /// when given, is listened on for failback sync requests and the
  /// peer's snapshots/heartbeats after a role swap. Requires conntrack
  /// to be enabled first.
  void enable_ha_active(ReplicationChannel& channel, ReplicationChannel* reverse = nullptr);

  /// Become the standby of an HA pair: apply replicated deltas into the
  /// local conntrack shards and monitor the active's heartbeats; after
  /// ReplicationSpec::takeover_miss_threshold silent intervals the
  /// standby promotes itself (with a witness attached, only after a
  /// lease grant). `reverse` is the standby→active channel this box
  /// publishes on once promoted (and begs for failback on when
  /// demoted). Requires conntrack enabled.
  void enable_ha_standby(ReplicationChannel& channel, ReplicationChannel* reverse = nullptr);

  /// Promote this switch: demote every replicated connection to the
  /// transient timeout (ConnTracker::demote_all — flows that died
  /// while replication lagged must not linger as ESTABLISHED), become
  /// the publishing active, count the takeover, and fire the takeover
  /// handler. Idempotent. NOTE: bypasses the witness — callers gating
  /// promotion on a lease go through the monitor path instead.
  void ha_takeover();

  /// Observer the harness uses to re-steer traffic after a promotion.
  void set_ha_takeover_handler(std::function<void()> handler) {
    ha_takeover_handler_ = std::move(handler);
  }

  [[nodiscard]] bool ha_promoted() const { return ha_promoted_; }
  [[nodiscard]] HaRole ha_role() const { return ha_role_; }
  [[nodiscard]] bool ha_fenced() const { return ha_fenced_; }
  [[nodiscard]] std::uint64_t ha_epoch() const { return ha_epoch_; }
  /// The split-brain invariant's probe: true iff this box would mint
  /// new conntrack/NAT state right now. The chaos suite asserts at
  /// most one box of a pair satisfies this at any simulated time.
  [[nodiscard]] bool ha_unfenced_active() const {
    return ha_role_ == HaRole::kActive && !ha_fenced_ && !restarting_;
  }
  /// Control-session view: true when the switch believes its controller
  /// is reachable (always true with failover disabled).
  [[nodiscard]] bool control_connected() const { return connected_; }
  [[nodiscard]] bool restarting() const { return restarting_; }
  /// The standalone fallback's learned stations (fail-standalone only).
  [[nodiscard]] const legacy::MacTable& standalone_macs() const { return standalone_macs_; }

  // sim::FaultPoint: a switch-level fault is a reboot. fault_crash
  // wipes all datapath state (tables, groups, caches, learned MACs) and
  // drops ingress until fault_restart, which re-enters the reconnect
  // path so the controller reprograms the empty tables.
  void fault_crash() override;
  void fault_restart() override;
  void fault_set_up(bool up) override {
    if (up) fault_restart();
    else fault_crash();
  }

 protected:
  sim::SimNanos service(int in_port, net::Packet&& packet) override;
  sim::SimNanos service_burst(sim::ServicedNode::Burst&& burst) override;
  void transmit(std::size_t out_port, net::Packet&& packet) override;

 private:
  struct PatchBinding {
    SoftSwitch* peer = nullptr;
    std::uint32_t peer_of_port = 0;
  };

  void handle_controller_message(openflow::Message&& message);
  void send_port_status(std::uint32_t of_port, bool up);
  /// Resolve a (possibly reserved) OF output port into concrete ports.
  void resolve_output(std::uint32_t of_port, std::uint32_t in_of_port, net::Packet&& packet);
  void schedule_expiry_sweep();
  /// Arm the conntrack expiry sweep (no-op when already armed or no
  /// connections are live). Mirrors schedule_expiry_sweep: re-arms
  /// itself only while entries remain, so idle engines still drain.
  void schedule_ct_sweep();
  /// Arm the conntrack checkpoint timer (no-op when checkpointing is
  /// off or already armed). Self-disarming like schedule_ct_sweep: a
  /// firing re-arms only while connections remain — but it always
  /// overwrites the held image first, so an emptied table checkpoints
  /// as empty rather than leaving a stale snapshot behind.
  void schedule_ct_checkpoint();
  /// Snapshot every conntrack shard into ct_checkpoint_ (the off-box
  /// image fault_restart restores from).
  void take_ct_checkpoint();
  void schedule_ha_heartbeat();
  void schedule_ha_monitor();

  // ---- witness-arbitrated fencing + warm failback (PR 10) ----
  /// Install delta/heartbeat/snapshot/sync-request receivers on the
  /// channel this box listens on (standby: the forward channel;
  /// active: the reverse channel, when wired).
  void install_ha_receivers(ReplicationChannel& channel);
  /// Install the epoch-stamping conntrack delta sinks onto repl_out_.
  void install_ha_delta_sinks();
  /// Propagate the fencing latch to every conntrack shard (no
  /// accounting); ha_set_fenced is the counted idempotent wrapper.
  void ha_apply_fence(bool fenced);
  void ha_set_fenced(bool fenced);
  /// Active: ask the witness to (re)grant the lease; a denial fences
  /// and, when it reveals a newer epoch, demotes.
  void ha_renew_lease();
  void schedule_ha_lease_renew();
  /// Arm the self-fencing deadline: at `expires_at`, fence unless the
  /// lease was renewed past it in the meantime.
  void ha_arm_fence_check(sim::SimNanos expires_at);
  /// Standby monitor tripped: promote directly (no witness) or request
  /// the lease and promote only on a grant.
  void ha_request_promotion();
  /// Active that learned of a newer epoch: step down to standby,
  /// keep the fence up, and beg the new active for a warm resync.
  void ha_demote(std::uint64_t epoch);
  void on_ha_heartbeat(std::uint64_t epoch);
  void on_ha_delta(const ReplicationRecord& record);
  void on_ha_snapshot(std::size_t shard, const openflow::CtSnapshot& snapshot,
                      std::uint64_t epoch);
  void on_ha_sync_request();

  // ---- failover machinery (all inert while failover_.enabled() is
  // false — the default) ----
  [[nodiscard]] bool standalone_active() const {
    return failover_.enabled() && !connected_ &&
           failover_.mode == FailoverSpec::Mode::kFailStandalone;
  }
  /// Gate one packet-in: false while degraded (fail-secure drop) or
  /// over the warm-up budget; counts what it suppresses.
  bool admit_packet_in();
  void arm_liveness();
  void schedule_echo();
  void on_control_lost();
  void schedule_reconnect_attempt();
  void on_control_reconnected();
  void complete_resync();
  /// MAC-learn + forward one packet on the standalone fallback path;
  /// charges `charge_ns` onto the packet and returns the marginal
  /// datapath cost (the caller owns rx/tx billing).
  sim::SimNanos standalone_forward(std::uint32_t in_of_port, net::Packet&& packet,
                                   sim::SimNanos charge_ns);

  std::uint64_t datapath_id_;
  std::size_t of_port_count_;
  openflow::Pipeline pipeline_;
  DatapathCosts costs_;
  /// mutable: counters() aggregates the per-shard cache totals into
  /// the cache_* fields at read time (see its comment).
  mutable Counters counters_;
  openflow::ControlChannel* channel_ = nullptr;
  /// Fold any epoch advance since the last observation into the
  /// cache_invalidations counter (each table/group mutation bumps the
  /// epoch exactly once), and mirror the cache's eviction count.
  void observe_cache_epoch();
  /// Route one pipeline result's outputs and packet-ins out of the
  /// datapath, charging `packet_cost` across the outputs (shared by the
  /// per-packet and burst service paths).
  void dispatch_result(openflow::PipelineResult& result, std::uint32_t in_of_port,
                       sim::SimNanos packet_cost);

  std::unordered_map<std::uint32_t, PatchBinding> patches_;
  std::vector<bool> port_up_;
  bool sweep_scheduled_ = false;
  bool ct_sweep_scheduled_ = false;
  // Failover state. connected_ means "the switch believes its control
  // session is alive"; it starts true (attaching a channel is the
  // session) and only ever changes when failover is enabled.
  FailoverSpec failover_;
  FailoverStats failover_stats_;
  util::Rng failover_rng_;
  bool connected_ = true;
  bool restarting_ = false;
  bool liveness_armed_ = false;
  bool resync_window_ = false;  // between reconnect and the resync barrier
  int echo_outstanding_ = 0;
  std::uint64_t echo_seq_ = 0;
  sim::SimNanos backoff_ns_ = 0;
  sim::SimNanos degraded_since_ = 0;
  sim::SimNanos warmup_until_ = 0;
  std::uint64_t warmup_budget_ = 0;
  // Stateful HA. The checkpoint image lives *outside* the datapath
  // state fault_crash wipes — it models a snapshot persisted off-box
  // (disk / peer), which is the entire point of checkpointing.
  std::vector<openflow::CtSnapshot> ct_checkpoint_;
  bool ct_checkpoint_scheduled_ = false;
  bool ct_state_restored_ = false;  // restore happened; next resync is warm
  ReplicationChannel* repl_out_ = nullptr;  // publish direction (this -> peer)
  ReplicationChannel* repl_in_ = nullptr;   // listen direction (peer -> this)
  bool ha_heartbeat_armed_ = false;
  bool ha_monitor_armed_ = false;
  bool ha_promoted_ = false;
  bool ha_heartbeat_seen_ = false;  // monitor only trips after first contact
  sim::SimNanos last_ha_heartbeat_ = 0;
  std::function<void()> ha_takeover_handler_;
  // Witness-arbitrated fencing + failback (PR 10). All inert without
  // set_ha_witness / a reverse channel — the PR-9 pair exactly.
  sim::WitnessLink* ha_witness_ = nullptr;
  HaRole ha_role_ = HaRole::kNone;
  bool ha_fenced_ = false;
  std::uint64_t ha_epoch_ = 0;
  sim::SimNanos ha_lease_expires_ = 0;
  bool ha_renew_armed_ = false;
  bool ha_failback_pending_ = false;  // demoted, waiting for the peer's stream
  legacy::MacTable standalone_macs_;
  std::uint64_t seen_cache_epoch_ = 0;
  /// service_burst staging + result scratch, recycled across bursts
  /// (one switch's service loop never re-enters itself).
  std::vector<openflow::BurstPacket> burst_items_;
  std::vector<std::uint32_t> burst_in_ports_;
  openflow::BurstResult burst_result_;
};

}  // namespace harmless::softswitch

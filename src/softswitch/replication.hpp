// softswitch/replication.hpp — the active→standby conntrack sync
// stream (the stateful-HA transport).
//
// An active SoftSwitch publishes every conntrack state *advance*
// (commit / established / closing / close — see CtDelta) into a
// ReplicationChannel; the standby peer applies them to its own shards
// so an established connection survives a takeover with its NAT
// binding intact. The channel is deliberately shaped like the control
// channel (PR 7): batched + paced departures model the sync TCP
// session's serialization, per-batch loss and latency jitter come from
// a seeded util::Rng, and the whole thing is a sim::FaultPoint so a
// FaultPlan can partition or impair replication independently of the
// data and control planes. With no impairment configured the Rng is
// never consulted — a pristine channel replays byte-identically.
//
// Liveness rides the same pipe: the active publishes heartbeats on a
// timer (paused while it is crashed), and the standby's monitor trips
// a takeover after `takeover_miss_threshold` silent intervals. The
// channel only transports; the takeover decision lives in SoftSwitch
// (enable_ha_standby / ha_takeover).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "openflow/conntrack.hpp"
#include "sim/event.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace harmless::softswitch {

/// Replication tunables (EXPERIMENTS.md "Stateful HA knobs").
struct ReplicationSpec {
  sim::SimNanos latency_ns = 50'000;         // one-way sync latency (lag)
  sim::SimNanos batch_interval_ns = 100'000; // delta coalescing window; 0 = send-now
  double loss = 0.0;                         // per-batch loss probability
  sim::SimNanos jitter_ns = 0;               // uniform extra latency per batch
  std::uint64_t seed = 0x5ec0'17da'7aULL;
  sim::SimNanos heartbeat_interval_ns = 500'000;  // active liveness beacon cadence
  std::uint32_t takeover_miss_threshold = 3;      // silent intervals before takeover
};

/// One replicated event, tagged with the conntrack shard it belongs to
/// (active and standby must agree on shard count — same RSS policy).
struct ReplicationRecord {
  std::size_t shard = 0;
  openflow::CtDelta delta;
};

class ReplicationChannel : public sim::FaultPoint {
 public:
  ReplicationChannel(sim::Engine& engine, ReplicationSpec spec = {})
      : engine_(engine), spec_(spec), rng_(spec.seed) {}

  // ---- active side ----
  /// Queue one delta; it departs with the current batch (after at most
  /// batch_interval_ns) and arrives latency + jitter later.
  void publish(std::size_t shard, const openflow::CtDelta& delta);
  /// Liveness beacon: sent immediately (never batched behind deltas —
  /// a sync backlog must not read as a dead active), same loss/lag.
  /// Carries the sender's fencing epoch so a peer holding a newer lease
  /// is recognizable from the beacon alone (0 = witness-less PR 9 HA).
  void publish_heartbeat(std::uint64_t epoch = 0);
  /// Warm-failback state stream: one shard's full snapshot, stamped
  /// with the sender's epoch. Unbatched (it is already a batch) but
  /// rides the same loss/lag/partition gates as a delta batch; its
  /// drops are attributed to the batch counters (it is state-stream
  /// traffic, unlike heartbeats).
  void publish_snapshot(std::size_t shard, openflow::CtSnapshot snapshot, std::uint64_t epoch);
  /// Resync beg from a demoted ex-active: asks the peer to stream its
  /// snapshots back. Same fate-sharing as a delta batch.
  void publish_sync_request();

  // ---- standby side ----
  void set_delta_handler(std::function<void(const ReplicationRecord&)> handler) {
    delta_handler_ = std::move(handler);
  }
  void set_heartbeat_handler(std::function<void(std::uint64_t epoch)> handler) {
    heartbeat_handler_ = std::move(handler);
  }
  void set_snapshot_handler(
      std::function<void(std::size_t shard, const openflow::CtSnapshot&, std::uint64_t epoch)>
          handler) {
    snapshot_handler_ = std::move(handler);
  }
  void set_sync_request_handler(std::function<void()> handler) {
    sync_request_handler_ = std::move(handler);
  }

  // ---- failure semantics ----
  /// Partition / heal the sync session. Downing loses queued and
  /// in-flight batches at their delivery time, like the control channel.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }
  void set_loss(double loss) { spec_.loss = loss; }
  void set_lag(sim::SimNanos latency_ns, sim::SimNanos jitter_ns) {
    spec_.latency_ns = latency_ns;
    spec_.jitter_ns = jitter_ns;
  }

  // sim::FaultPoint: partition and impairment via the injector.
  void fault_set_up(bool up) override { set_up(up); }
  void fault_impair(double loss_probability, sim::SimNanos extra_latency_ns) override {
    spec_.loss = loss_probability;
    spec_.jitter_ns = extra_latency_ns;
  }

  struct Stats {
    std::uint64_t deltas_published = 0;
    std::uint64_t deltas_delivered = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t batches_delivered = 0;
    std::uint64_t batches_dropped_down = 0;  // partitioned at send or delivery
    std::uint64_t batches_dropped_loss = 0;  // random impairment loss
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_delivered = 0;
    // Heartbeat drops attributed separately from delta-batch drops: a
    // lossy-heartbeat-only impairment must be distinguishable from
    // state loss in Table 10/11 forensics.
    std::uint64_t heartbeats_dropped_down = 0;
    std::uint64_t heartbeats_dropped_loss = 0;
    // Warm-failback stream accounting.
    std::uint64_t sync_requests_sent = 0;
    std::uint64_t sync_requests_delivered = 0;
    std::uint64_t snapshots_sent = 0;
    std::uint64_t snapshots_delivered = 0;
    std::uint64_t snapshot_bytes = 0;  // wire bytes of delivered snapshots
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ReplicationSpec& spec() const { return spec_; }

 private:
  void flush();
  /// Departure-side gate shared by batches and heartbeats: false means
  /// the message died (down / loss) and was accounted to `down`/`loss`.
  bool depart(std::uint64_t& down, std::uint64_t& loss);
  [[nodiscard]] sim::SimNanos arrival_delay();

  sim::Engine& engine_;
  ReplicationSpec spec_;
  util::Rng rng_;
  bool up_ = true;
  bool flush_scheduled_ = false;
  std::vector<ReplicationRecord> pending_;
  std::function<void(const ReplicationRecord&)> delta_handler_;
  std::function<void(std::uint64_t)> heartbeat_handler_;
  std::function<void(std::size_t, const openflow::CtSnapshot&, std::uint64_t)> snapshot_handler_;
  std::function<void()> sync_request_handler_;
  Stats stats_;
};

}  // namespace harmless::softswitch

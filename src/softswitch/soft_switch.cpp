#include "softswitch/soft_switch.hpp"

#include <algorithm>

#include "net/parse.hpp"
#include "util/strings.hpp"

namespace harmless::softswitch {

using namespace openflow;

SoftSwitch::SoftSwitch(sim::Engine& engine, std::string name, std::uint64_t datapath_id,
                       std::size_t of_port_count, std::size_t table_count, bool specialized,
                       bool flow_cache, std::size_t burst_size, const sim::IngressSpec& ingress)
    : ServicedNode(engine, std::move(name), ingress, burst_size),
      datapath_id_(datapath_id),
      of_port_count_(of_port_count),
      pipeline_(table_count, specialized, flow_cache),
      port_up_(of_port_count + 1, true),
      seen_cache_epoch_(pipeline_.cache().epoch()) {
  ensure_ports(of_port_count);
  // One flow-cache shard per worker core: each core learns into (and
  // probes) only its own shard; all shards share the pipeline's one
  // invalidation epoch.
  pipeline_.set_shard_count(core_count());
  // One RX queue per OF port from the start: the poll sweep pays for
  // every port the switch fronts, busy or idle (and the queue -> core
  // steering is decided up front, not on first arrival).
  ensure_rx_queues(of_port_count);
}

void SoftSwitch::observe_cache_epoch() {
  // Hot path (called per packet / per burst): O(1) epoch bookkeeping
  // only. The per-shard tier/classifier totals are summed lazily when
  // counters() is read.
  const std::uint64_t epoch = pipeline_.cache().epoch();
  counters_.cache_invalidations += epoch - seen_cache_epoch_;
  seen_cache_epoch_ = epoch;
}

const SoftSwitch::Counters& SoftSwitch::counters() const {
  // Reporting time: aggregate the monotone per-shard stats across the
  // cache shards (one per worker core; one shard total single-core).
  counters_.cache_evictions = 0;
  counters_.cache_subtables = 0;
  counters_.cache_subtable_probes = 0;
  for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard) {
    counters_.cache_evictions += pipeline_.cache(shard).stats().evictions;
    counters_.cache_subtables += pipeline_.cache(shard).subtable_count();
    counters_.cache_subtable_probes += pipeline_.cache(shard).stats().subtable_probes;
  }
  counters_.ct_lookups = 0;
  counters_.ct_hits = 0;
  counters_.ct_created = 0;
  counters_.ct_expired = 0;
  counters_.ct_evicted = 0;
  counters_.ct_invalid = 0;
  counters_.ct_nat_allocated = 0;
  counters_.ct_nat_failures = 0;
  counters_.ct_connections = 0;
  if (pipeline_.conntrack_enabled()) {
    for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard) {
      const openflow::CtStats& ct = pipeline_.conntrack(shard).stats();
      counters_.ct_lookups += ct.lookups;
      counters_.ct_hits += ct.hits;
      counters_.ct_created += ct.created;
      counters_.ct_expired += ct.expired;
      counters_.ct_evicted += ct.evicted;
      counters_.ct_invalid += ct.invalid;
      counters_.ct_nat_allocated += ct.nat_allocated;
      counters_.ct_nat_failures += ct.nat_failures;
      counters_.ct_connections += pipeline_.conntrack(shard).size();
    }
  }
  return counters_;
}

SoftSwitch::CoreStats SoftSwitch::core_stats(std::size_t core) const {
  CoreStats stats;
  stats.busy_ns = core_busy_ns(core);
  stats.bursts = core_bursts(core);
  stats.packets = core_packets(core);
  stats.rx_queue_polls = core_rx_polls(core);
  stats.rx_queues = core_queue_count(core);
  const openflow::FlowCache& shard = pipeline_.cache(core);
  stats.cache_hits = shard.stats().hits;
  stats.cache_misses = shard.stats().misses;
  stats.cache_evictions = shard.stats().evictions;
  stats.cache_megaflows = shard.megaflow_count();
  stats.cache_subtables = shard.subtable_count();
  if (pipeline_.conntrack_enabled()) {
    const openflow::ConnTracker& tracker = pipeline_.conntrack(core);
    stats.ct_connections = tracker.size();
    stats.ct_created = tracker.stats().created;
    stats.ct_lookups = tracker.stats().lookups;
  }
  return stats;
}

void SoftSwitch::bind_patch(std::uint32_t of_port, SoftSwitch& peer,
                            std::uint32_t peer_of_port) {
  if (of_port == 0 || of_port > of_port_count_)
    throw util::ConfigError(name() + ": patch of_port " + std::to_string(of_port) +
                            " out of range");
  if (peer_of_port == 0 || peer_of_port > peer.of_port_count_)
    throw util::ConfigError(peer.name() + ": patch of_port " + std::to_string(peer_of_port) +
                            " out of range");
  patches_[of_port] = PatchBinding{&peer, peer_of_port};
  peer.patches_[peer_of_port] = PatchBinding{this, of_port};
}

void SoftSwitch::attach_channel(openflow::ControlChannel& channel) {
  channel_ = &channel;
  channel.set_switch_handler(
      [this](Message&& message) { handle_controller_message(std::move(message)); });
  arm_liveness();
}

void SoftSwitch::set_failover(const FailoverSpec& spec) {
  failover_ = spec;
  failover_rng_.reseed(spec.seed);
  backoff_ns_ = spec.backoff_initial_ns;
  arm_liveness();
}

void SoftSwitch::arm_liveness() {
  if (liveness_armed_ || !failover_.enabled() || channel_ == nullptr) return;
  liveness_armed_ = true;
  schedule_echo();
}

void SoftSwitch::schedule_echo() {
  // Perpetual by design (liveness has no natural end); callers drive
  // the engine with run_until. The timer keeps ticking through
  // disconnects and reboots so detection re-arms itself after healing.
  engine_.schedule_after(failover_.echo_interval_ns, [this] {
    if (connected_ && !restarting_) {
      if (echo_outstanding_ > 0) {
        ++failover_stats_.echo_misses;
        if (echo_outstanding_ >= failover_.echo_miss_threshold) {
          on_control_lost();
          schedule_echo();
          return;
        }
      }
      ++failover_stats_.echo_sent;
      ++echo_outstanding_;
      channel_->send_to_controller(EchoRequestMsg{echo_seq_++});
    }
    schedule_echo();
  });
}

void SoftSwitch::on_control_lost() {
  if (!connected_) return;
  connected_ = false;
  ++failover_stats_.disconnects;
  failover_stats_.last_disconnect_at = engine_.now();
  degraded_since_ = engine_.now();
  echo_outstanding_ = 0;
  backoff_ns_ = failover_.backoff_initial_ns;
  schedule_reconnect_attempt();
}

void SoftSwitch::schedule_reconnect_attempt() {
  sim::SimNanos delay = backoff_ns_;
  if (failover_.backoff_jitter > 0) {
    const auto spread = static_cast<std::uint64_t>(
        static_cast<double>(backoff_ns_) * failover_.backoff_jitter);
    if (spread > 0) delay += static_cast<sim::SimNanos>(failover_rng_.below(spread + 1));
  }
  backoff_ns_ = std::min(backoff_ns_ * 2, failover_.backoff_cap_ns);
  engine_.schedule_after(delay, [this] {
    if (connected_ || channel_ == nullptr) return;  // healed meanwhile: stop the loop
    if (!restarting_) {
      ++failover_stats_.reconnect_attempts;
      channel_->send_to_controller(HelloMsg{});
    }
    schedule_reconnect_attempt();
  });
}

void SoftSwitch::on_control_reconnected() {
  connected_ = true;
  ++failover_stats_.reconnects;
  failover_stats_.last_reconnect_at = engine_.now();
  failover_stats_.degraded_ns += engine_.now() - degraded_since_;
  resync_window_ = true;
  echo_outstanding_ = 0;
  backoff_ns_ = failover_.backoff_initial_ns;
  // The controller's world may have moved while we were deaf: every
  // cached action program is suspect, and standalone-learned stations
  // must not shadow the re-installed flow rules.
  if (pipeline_.cache_enabled()) {
    pipeline_.cache().invalidate_all();
    observe_cache_epoch();
  }
  standalone_macs_.clear();
}

void SoftSwitch::complete_resync() {
  if (!resync_window_) return;
  resync_window_ = false;
  ++failover_stats_.resyncs;
  failover_stats_.last_resync_at = engine_.now();
  if (ct_state_restored_) {
    // Warm resync: the restored connection table means surviving flows
    // hit their ct_established rules instead of punting, so there is no
    // cold-flow herd for the warm-up governor to throttle — arming it
    // would only tax the (few) genuinely new flows.
    ct_state_restored_ = false;
    ++failover_stats_.warm_resyncs;
    return;
  }
  if (failover_.warmup_ns > 0) {
    warmup_until_ = engine_.now() + failover_.warmup_ns;
    warmup_budget_ = failover_.warmup_packet_in_budget;
  }
}

bool SoftSwitch::admit_packet_in() {
  if (failover_.enabled() && !connected_) {
    ++failover_stats_.packet_ins_dropped;  // fail-secure suppression
    return false;
  }
  if (engine_.now() < warmup_until_) {
    if (warmup_budget_ == 0) {
      ++failover_stats_.warmup_packet_ins_dropped;
      return false;
    }
    --warmup_budget_;
  }
  return true;
}

void SoftSwitch::fault_crash() {
  restarting_ = true;
  ++failover_stats_.crashes;
  // A rebooting switch forgets everything: flow tables, groups, cached
  // megaflows, tracked connections, standalone-learned stations.
  for (std::size_t t = 0; t < pipeline_.table_count(); ++t)
    pipeline_.table(t).remove(Match{}, /*strict=*/false);
  pipeline_.groups().clear();
  if (pipeline_.conntrack_enabled()) pipeline_.ct_clear();
  if (pipeline_.cache_enabled()) {
    pipeline_.cache().invalidate_all();
    observe_cache_epoch();
  }
  standalone_macs_.clear();
}

void SoftSwitch::fault_restart() {
  if (!restarting_) return;
  restarting_ = false;
  ++failover_stats_.restarts;
  // Stateful restart: rebuild the connection table from the last
  // checkpoint before the control plane even notices. Restored entries
  // come back demoted (ConnTracker::restore) — established flows keep
  // their fast path but must re-confirm through real traffic.
  if (failover_.checkpointing() && pipeline_.conntrack_enabled() && !ct_checkpoint_.empty()) {
    const std::size_t shards =
        ct_checkpoint_.size() < pipeline_.shard_count() ? ct_checkpoint_.size()
                                                        : pipeline_.shard_count();
    std::size_t restored = 0;
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const openflow::CtRestoreResult result =
          pipeline_.conntrack(shard).restore(ct_checkpoint_[shard], engine_.now());
      restored += result.restored;
      failover_stats_.ct_restored += result.restored;
      failover_stats_.ct_restore_dropped += result.dropped;
    }
    if (restored > 0) {
      ct_state_restored_ = true;   // the next resync is warm
      schedule_ct_sweep();         // re-arm expiry for the re-filed wheel
      schedule_ct_checkpoint();    // keep checkpointing the restored table
    }
  }
  // The control session died with the box. Come back up disconnected
  // and re-handshake, so the controller reprograms the empty tables;
  // without failover the switch just waits to be reprogrammed.
  if (failover_.enabled() && channel_ != nullptr && connected_) on_control_lost();
}

sim::SimNanos SoftSwitch::standalone_forward(std::uint32_t in_of_port, net::Packet&& packet,
                                             sim::SimNanos charge_ns) {
  ++failover_stats_.standalone_packets;
  packet.charge(charge_ns);
  const net::ParsedPacket parsed = net::parse_cached(packet).parsed;
  if (!parsed.l2_valid) return costs_.standalone_ns;  // not bridgeable: drop
  const net::VlanId vlan = parsed.has_vlan() ? parsed.vlan_vid() : 0;
  if (!parsed.eth_src.is_multicast() && !parsed.eth_src.is_zero())
    standalone_macs_.learn(vlan, parsed.eth_src, static_cast<int>(in_of_port), engine_.now());
  std::optional<int> out;
  if (!parsed.eth_dst.is_multicast())
    out = standalone_macs_.lookup(vlan, parsed.eth_dst, engine_.now());
  if (out && static_cast<std::uint32_t>(*out) == in_of_port)
    return costs_.standalone_ns;  // destination on the ingress segment: filter
  if (out) {
    resolve_output(static_cast<std::uint32_t>(*out), in_of_port, std::move(packet));
    return costs_.standalone_ns;
  }
  ++failover_stats_.standalone_floods;
  resolve_output(kPortFlood, in_of_port, std::move(packet));
  return costs_.standalone_ns;
}

bool SoftSwitch::port_up(std::uint32_t of_port) const {
  if (of_port == 0 || of_port > of_port_count_) return false;
  return port_up_[of_port];
}

void SoftSwitch::set_port_state(std::uint32_t of_port, bool up) {
  if (of_port == 0 || of_port > of_port_count_) return;
  if (port_up_[of_port] == up) return;
  port_up_[of_port] = up;
  // Cached action programs may reference this port (directly or via a
  // FLOOD fan-out); conservatively invalidate them all so the next
  // packet of every aggregate re-learns against the new port set.
  if (pipeline_.cache_enabled()) {
    pipeline_.cache().invalidate_all();
    observe_cache_epoch();
  }
  send_port_status(of_port, up);
}

void SoftSwitch::send_port_status(std::uint32_t of_port, bool up) {
  if (channel_ == nullptr) return;
  PortStatusMsg status;
  status.reason = PortStatusMsg::Reason::kModify;
  status.desc.port_no = of_port;
  status.desc.name = name() + "/" + std::to_string(of_port);
  status.desc.up = up;
  channel_->send_to_controller(status);
}

util::Status SoftSwitch::install(const FlowModMsg& mod) {
  ++counters_.flow_mods;
  if (mod.table_id >= pipeline_.table_count())
    return util::Status::error(name() + ": bad table id " + std::to_string(mod.table_id));
  FlowTable& table = pipeline_.table(mod.table_id);

  switch (mod.command) {
    case FlowModMsg::Command::kAdd: {
      FlowEntry entry;
      entry.priority = mod.priority;
      entry.match = mod.match;
      entry.instructions = mod.instructions;
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.send_flow_removed = mod.send_flow_removed;
      auto status = table.add(std::move(entry), engine_.now(), mod.check_overlap);
      if (status.is_ok() && resync_window_) ++failover_stats_.flows_reinstalled;
      if (status.is_ok() && (mod.idle_timeout > 0 || mod.hard_timeout > 0))
        schedule_expiry_sweep();
      return status;
    }
    case FlowModMsg::Command::kModify:
      table.modify(mod.match, mod.instructions, /*strict=*/false);
      return util::Status::ok();
    case FlowModMsg::Command::kModifyStrict:
      table.modify(mod.match, mod.instructions, /*strict=*/true, mod.priority);
      return util::Status::ok();
    case FlowModMsg::Command::kDelete:
      table.remove(mod.match, /*strict=*/false);
      return util::Status::ok();
    case FlowModMsg::Command::kDeleteStrict:
      table.remove(mod.match, /*strict=*/true, mod.priority);
      return util::Status::ok();
  }
  return util::Status::error("unreachable");
}

util::Status SoftSwitch::install_group(const GroupModMsg& mod) {
  switch (mod.command) {
    case GroupModMsg::Command::kAdd: return pipeline_.groups().add(mod.entry);
    case GroupModMsg::Command::kModify: return pipeline_.groups().modify(mod.entry);
    case GroupModMsg::Command::kDelete:
      pipeline_.groups().remove(mod.entry.group_id);
      return util::Status::ok();
  }
  return util::Status::error("unreachable");
}

void SoftSwitch::schedule_expiry_sweep() {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  // 100 ms sweep cadence; reschedules itself only while timed entries
  // remain, so idle simulations still drain their event queues.
  engine_.schedule_after(100'000'000, [this] {
    sweep_scheduled_ = false;
    auto expired = pipeline_.collect_expired(engine_.now());
    // Installed flows keep expiring while degraded (fail-secure keeps
    // forwarding on them until they do — the slow bleed Table 8 shows).
    if (failover_.enabled() && !connected_)
      failover_stats_.flows_expired_degraded += expired.size();
    for (const FlowEntry& entry : expired) {
      if (entry.send_flow_removed && channel_ != nullptr) {
        FlowRemovedMsg removed;
        removed.priority = entry.priority;
        removed.match = entry.match;
        removed.cookie = entry.cookie;
        removed.packet_count = entry.packet_count;
        removed.byte_count = entry.byte_count;
        channel_->send_to_controller(removed);
      }
    }
    bool timed_entries_remain = false;
    for (std::size_t t = 0; t < pipeline_.table_count() && !timed_entries_remain; ++t)
      for (const FlowEntry* entry : pipeline_.table(t).entries())
        if (entry->idle_timeout > 0 || entry->hard_timeout > 0) {
          timed_entries_remain = true;
          break;
        }
    if (timed_entries_remain) schedule_expiry_sweep();
  });
}

void SoftSwitch::schedule_ct_sweep() {
  if (ct_sweep_scheduled_ || !pipeline_.conntrack_enabled()) return;
  if (pipeline_.ct_connection_count() == 0) return;
  ct_sweep_scheduled_ = true;
  // Sweep at the configured cadence (the timer wheel quantizes entry
  // deadlines to the same interval, so one sweep per bucket suffices);
  // re-arm only while connections remain — idle engines still drain.
  engine_.schedule_after(pipeline_.conntrack(0).config().sweep_interval, [this] {
    ct_sweep_scheduled_ = false;
    pipeline_.ct_expire(engine_.now());
    schedule_ct_sweep();
  });
}

void SoftSwitch::take_ct_checkpoint() {
  const std::size_t shards = pipeline_.shard_count();
  // Incremental mode only works against a held image of the same
  // shape; the first cadence (or a shape change) is always full.
  const bool incremental =
      failover_.incremental_checkpoints && ct_checkpoint_.size() == shards;
  if (!incremental) ct_checkpoint_.assign(shards, openflow::CtSnapshot{});
  for (std::size_t shard = 0; shard < shards; ++shard) {
    openflow::ConnTracker& ct = pipeline_.conntrack(shard);
    if (incremental && !ct.dirty()) {
      // Untouched since its last capture: the held image is still
      // exact (every commit/refresh/kill dirties), so reuse it free.
      ++failover_stats_.checkpoint_shards_skipped;
      continue;
    }
    openflow::CtSnapshot snap = ct.checkpoint(engine_.now());
    ct.clear_dirty();
    failover_stats_.checkpoint_entries += snap.entries.size();
    failover_stats_.checkpoint_bytes += snap.wire_bytes();
    failover_stats_.checkpoint_ns_billed +=
        static_cast<sim::SimNanos>(snap.entries.size()) * costs_.checkpoint_entry_ns;
    ct_checkpoint_[shard] = std::move(snap);
  }
  ++failover_stats_.checkpoints;
}

void SoftSwitch::schedule_ct_checkpoint() {
  if (ct_checkpoint_scheduled_ || !failover_.checkpointing() || !pipeline_.conntrack_enabled())
    return;
  if (pipeline_.ct_connection_count() == 0 && ct_checkpoint_.empty()) return;
  ct_checkpoint_scheduled_ = true;
  engine_.schedule_after(failover_.checkpoint_interval_ns, [this] {
    ct_checkpoint_scheduled_ = false;
    // A crashed switch takes no checkpoints — overwriting the held
    // image with the wiped table would defeat the restore it feeds.
    if (restarting_) return;
    take_ct_checkpoint();
    // Re-arm while connections remain; the final firing after the
    // table empties snapshots it as empty (never leaves a stale image)
    // and then disarms, so engines driven by run() still drain.
    if (pipeline_.ct_connection_count() > 0) schedule_ct_checkpoint();
  });
}

// ---- stateful HA: active–standby pairing ----

void SoftSwitch::install_ha_delta_sinks() {
  for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard) {
    pipeline_.conntrack(shard).set_delta_sink([this, shard](const openflow::CtDelta& delta) {
      // Only an unfenced active publishes state: a fenced box must not
      // leak even kUpdate/kClose advances of established flows, and a
      // standby's resync-driven kills must never echo back out.
      if (ha_fenced_ || ha_role_ != HaRole::kActive) return;
      openflow::CtDelta stamped = delta;
      stamped.epoch = ha_epoch_;
      repl_out_->publish(shard, stamped);
    });
  }
}

void SoftSwitch::install_ha_receivers(ReplicationChannel& channel) {
  channel.set_delta_handler([this](const ReplicationRecord& record) { on_ha_delta(record); });
  channel.set_heartbeat_handler([this](std::uint64_t epoch) { on_ha_heartbeat(epoch); });
  channel.set_snapshot_handler(
      [this](std::size_t shard, const openflow::CtSnapshot& snapshot, std::uint64_t epoch) {
        on_ha_snapshot(shard, snapshot, epoch);
      });
  channel.set_sync_request_handler([this] { on_ha_sync_request(); });
}

void SoftSwitch::enable_ha_active(ReplicationChannel& channel, ReplicationChannel* reverse) {
  repl_out_ = &channel;
  repl_in_ = reverse;
  ha_role_ = HaRole::kActive;
  install_ha_delta_sinks();
  if (repl_in_ != nullptr) install_ha_receivers(*repl_in_);
  if (ha_witness_ != nullptr) {
    // Fail-closed: fenced until the witness grants. The very first
    // renewal (one rtt away) lifts it in the healthy case.
    ha_apply_fence(true);
    ha_renew_lease();
    schedule_ha_lease_renew();
  }
  schedule_ha_heartbeat();
}

void SoftSwitch::schedule_ha_heartbeat() {
  if (ha_heartbeat_armed_ || repl_out_ == nullptr) return;
  const sim::SimNanos interval = repl_out_->spec().heartbeat_interval_ns;
  if (interval <= 0) return;
  ha_heartbeat_armed_ = true;
  engine_.schedule_after(interval, [this] {
    ha_heartbeat_armed_ = false;
    // A crashed or fenced active is silent — silence *is* the takeover
    // signal, and a fenced box advertising liveness would stall a
    // standby that could otherwise win the lease and serve. The timer
    // keeps running so heartbeats resume on restart/unfence.
    if (!restarting_ && ha_role_ == HaRole::kActive && !ha_fenced_)
      repl_out_->publish_heartbeat(ha_epoch_);
    schedule_ha_heartbeat();
  });
}

void SoftSwitch::enable_ha_standby(ReplicationChannel& channel, ReplicationChannel* reverse) {
  repl_in_ = &channel;
  repl_out_ = reverse;
  ha_role_ = HaRole::kStandby;
  last_ha_heartbeat_ = engine_.now();
  install_ha_receivers(channel);
  // A standby never mints state; with a witness attached the fence
  // stays up until this box is actually promoted under a lease.
  if (ha_witness_ != nullptr) ha_apply_fence(true);
  schedule_ha_monitor();
}

void SoftSwitch::set_ha_witness(sim::WitnessLink& link) {
  ha_witness_ = &link;
  // Fail-closed from the moment arbitration is configured: nobody
  // mints state without a lease.
  ha_apply_fence(true);
  if (ha_role_ == HaRole::kActive) {
    ha_renew_lease();
    schedule_ha_lease_renew();
  }
}

void SoftSwitch::schedule_ha_monitor() {
  if (ha_monitor_armed_ || repl_in_ == nullptr || ha_role_ != HaRole::kStandby) return;
  const ReplicationSpec& spec = repl_in_->spec();
  if (spec.heartbeat_interval_ns <= 0) return;
  ha_monitor_armed_ = true;
  engine_.schedule_after(spec.heartbeat_interval_ns, [this] {
    ha_monitor_armed_ = false;
    if (ha_role_ != HaRole::kStandby) return;  // promotion stops the monitor
    const ReplicationSpec& spec = repl_in_->spec();
    const sim::SimNanos silence = engine_.now() - last_ha_heartbeat_;
    // A demoted ex-active still begging for its warm resync retries
    // here (the first sync request may have died on the wire).
    if (ha_failback_pending_ && !restarting_ && repl_out_ != nullptr)
      repl_out_->publish_sync_request();
    // Never self-promote before first contact: until a heartbeat has
    // actually arrived the standby cannot distinguish a dead active
    // from sync latency longer than the miss threshold (bootstrap
    // promotion is the operator's call, not the monitor's).
    if (!restarting_ && ha_heartbeat_seen_ &&
        silence > static_cast<sim::SimNanos>(spec.takeover_miss_threshold) *
                      spec.heartbeat_interval_ns) {
      ha_request_promotion();
      // Keep monitoring: with a witness the promotion is asynchronous
      // (and may be denied); the role flip stops the re-arm naturally.
    }
    schedule_ha_monitor();
  });
}

void SoftSwitch::ha_request_promotion() {
  if (ha_witness_ == nullptr) {
    // Witness-less PR-9 pair: heartbeat silence alone decides.
    ha_takeover();
    return;
  }
  ha_witness_->request_lease([this](bool granted, std::uint64_t epoch,
                                    sim::SimNanos expires_at) {
    if (ha_role_ != HaRole::kStandby) return;  // raced with another path
    if (!granted) {
      ++failover_stats_.ha_lease_denials;
      ++failover_stats_.ha_promotions_denied;
      if (epoch > ha_epoch_) ha_epoch_ = epoch;
      return;
    }
    ++failover_stats_.ha_lease_grants;
    ha_epoch_ = epoch;
    ha_lease_expires_ = expires_at;
    ha_takeover();
  });
}

void SoftSwitch::ha_takeover() {
  if (ha_role_ == HaRole::kActive || ha_promoted_) return;
  ha_promoted_ = true;
  ha_role_ = HaRole::kActive;
  ++failover_stats_.takeovers;
  // Takeover hygiene: every replicated connection is only as fresh as
  // the sync stream was — demote them all so the ones that died while
  // replication lagged expire on the transient timeout, while live
  // flows re-confirm through their own traffic.
  if (pipeline_.conntrack_enabled()) {
    for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard)
      pipeline_.conntrack(shard).demote_all(engine_.now());
    schedule_ct_sweep();
  }
  // The promotion lease (when arbitrated) was taken in
  // ha_request_promotion; lift the fence and start acting the part:
  // publish deltas/heartbeats on the reverse channel, keep renewing.
  ha_set_fenced(false);
  if (repl_out_ != nullptr) {
    if (pipeline_.conntrack_enabled()) install_ha_delta_sinks();
    schedule_ha_heartbeat();
  }
  if (ha_witness_ != nullptr) {
    ha_arm_fence_check(ha_lease_expires_);
    schedule_ha_lease_renew();
  }
  if (ha_takeover_handler_) ha_takeover_handler_();
}

// ---- witness-arbitrated fencing + warm failback ----

void SoftSwitch::ha_apply_fence(bool fenced) {
  ha_fenced_ = fenced;
  if (!pipeline_.conntrack_enabled()) return;
  for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard)
    pipeline_.conntrack(shard).set_fenced(fenced);
}

void SoftSwitch::ha_set_fenced(bool fenced) {
  if (ha_fenced_ == fenced) return;
  if (fenced)
    ++failover_stats_.ha_fences;
  else
    ++failover_stats_.ha_unfences;
  ha_apply_fence(fenced);
}

void SoftSwitch::ha_renew_lease() {
  if (ha_witness_ == nullptr || ha_role_ != HaRole::kActive || restarting_) return;
  ha_witness_->request_lease([this](bool granted, std::uint64_t epoch,
                                    sim::SimNanos expires_at) {
    if (ha_role_ != HaRole::kActive) return;  // demoted while in flight
    if (granted) {
      ++failover_stats_.ha_lease_grants;
      ha_epoch_ = epoch;
      ha_lease_expires_ = expires_at;
      ha_set_fenced(false);
      ha_arm_fence_check(expires_at);
      return;
    }
    ++failover_stats_.ha_lease_denials;
    // Someone else holds the lease: fence immediately (do not wait for
    // expiry) and, since the denial proves a newer holder epoch, step
    // down and ask the new active for our state back.
    ha_set_fenced(true);
    if (epoch > ha_epoch_) ha_demote(epoch);
  });
}

void SoftSwitch::schedule_ha_lease_renew() {
  if (ha_renew_armed_ || ha_witness_ == nullptr) return;
  const sim::SimNanos interval = ha_witness_->spec().renew_interval_ns;
  if (interval <= 0) return;
  ha_renew_armed_ = true;
  engine_.schedule_after(interval, [this] {
    ha_renew_armed_ = false;
    if (ha_role_ != HaRole::kActive) return;  // a standby does not renew
    ha_renew_lease();  // no-ops while restarting_, resumes after
    schedule_ha_lease_renew();
  });
}

void SoftSwitch::ha_arm_fence_check(sim::SimNanos expires_at) {
  engine_.schedule_at(expires_at, [this, expires_at] {
    // Stale checks no-op: a renewal moved ha_lease_expires_ forward.
    (void)expires_at;
    if (ha_role_ != HaRole::kActive || ha_fenced_) return;
    if (engine_.now() >= ha_lease_expires_) ha_set_fenced(true);
  });
}

void SoftSwitch::ha_demote(std::uint64_t epoch) {
  if (ha_role_ != HaRole::kActive) return;
  ha_role_ = HaRole::kStandby;
  ha_promoted_ = false;
  ++failover_stats_.ha_demotions;
  if (epoch > ha_epoch_) ha_epoch_ = epoch;
  // The fence stays up: a standby never mints state. (apply_delta and
  // resync bypass the conntrack fence by design — it only gates
  // process()'s miss path.)
  ha_set_fenced(true);
  last_ha_heartbeat_ = engine_.now();  // restart the silence clock
  ha_heartbeat_seen_ = false;          // and require fresh contact
  // Warm failback: beg the new active to stream its table back. The
  // monitor retries this while pending, in case the request is lost.
  ha_failback_pending_ = true;
  if (repl_out_ != nullptr && !restarting_) repl_out_->publish_sync_request();
  schedule_ha_monitor();
}

void SoftSwitch::on_ha_heartbeat(std::uint64_t epoch) {
  ha_heartbeat_seen_ = true;
  last_ha_heartbeat_ = engine_.now();
  if (epoch > ha_epoch_) {
    // The peer provably holds a newer lease than we ever did. An
    // active hearing this steps down — this is how a healed partition
    // resolves without the witness having to referee twice.
    const bool was_active = ha_role_ == HaRole::kActive;
    ha_epoch_ = epoch;
    if (was_active) ha_demote(epoch);
  }
}

void SoftSwitch::on_ha_delta(const ReplicationRecord& record) {
  // Epoch gate first: stale-epoch deltas are refused no matter the
  // role — a promoted active must still count (and drop) a fenced
  // ex-active's in-flight state.
  if (record.delta.epoch < ha_epoch_) {
    ++failover_stats_.ha_deltas_rejected_epoch;
    return;
  }
  if (ha_role_ != HaRole::kStandby || restarting_) return;
  if (!pipeline_.conntrack_enabled() || record.shard >= pipeline_.shard_count()) return;
  if (record.delta.epoch > ha_epoch_) ha_epoch_ = record.delta.epoch;
  pipeline_.conntrack(record.shard).apply_delta(record.delta, engine_.now());
  schedule_ct_sweep();  // replicated entries must expire here too
}

void SoftSwitch::on_ha_snapshot(std::size_t shard, const openflow::CtSnapshot& snapshot,
                                std::uint64_t epoch) {
  // Failback stream from the current active: only a standby consumes
  // it, and only at the current (or a newer) epoch.
  if (ha_role_ != HaRole::kStandby || restarting_) return;
  if (epoch < ha_epoch_) return;
  if (!pipeline_.conntrack_enabled() || shard >= pipeline_.shard_count()) return;
  if (epoch > ha_epoch_) ha_epoch_ = epoch;
  const std::size_t upserts = pipeline_.conntrack(shard).resync(snapshot, engine_.now());
  failover_stats_.ha_failback_entries += upserts;
  if (ha_failback_pending_ && shard + 1 == pipeline_.shard_count()) {
    ha_failback_pending_ = false;
    ++failover_stats_.ha_failbacks;  // rejoined warm
  }
  schedule_ct_sweep();
}

void SoftSwitch::on_ha_sync_request() {
  // Only a live unfenced active is authoritative enough to stream its
  // table to a rejoining peer.
  if (ha_role_ != HaRole::kActive || ha_fenced_ || restarting_) return;
  if (repl_out_ == nullptr || !pipeline_.conntrack_enabled()) return;
  for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard)
    repl_out_->publish_snapshot(shard, pipeline_.conntrack(shard).checkpoint(engine_.now()),
                                ha_epoch_);
}

void SoftSwitch::handle_controller_message(Message&& message) {
  if (restarting_) return;  // a rebooting switch is deaf to control traffic
  // ANY message from the controller proves the channel is alive — not
  // just echo replies. Without this, a long serialized resync (N flow
  // mods behind the channel's min_gap pacing) delays the echo reply
  // past the miss threshold and the switch declares its controller
  // dead in the middle of being resynced by it.
  echo_outstanding_ = 0;
  if (std::holds_alternative<HelloMsg>(message)) {
    channel_->send_to_controller(HelloMsg{});
    return;
  }
  if (std::holds_alternative<FeaturesRequestMsg>(message)) {
    // A features request while we considered the session dead is the
    // controller accepting our reconnect Hello: the session is back.
    if (failover_.enabled() && !connected_) on_control_reconnected();
    FeaturesReplyMsg reply;
    reply.datapath_id = datapath_id_;
    reply.table_count = static_cast<std::uint8_t>(pipeline_.table_count());
    for (std::uint32_t of_port = 1; of_port <= of_port_count_; ++of_port) {
      PortDesc desc;
      desc.port_no = of_port;
      desc.name = name() + "/" + std::to_string(of_port);
      desc.up = port_up_[of_port];
      reply.ports.push_back(std::move(desc));
    }
    channel_->send_to_controller(std::move(reply));
    return;
  }
  if (const auto* mod = std::get_if<FlowModMsg>(&message)) {
    const util::Status status = install(*mod);
    if (!status.is_ok()) {
      ++counters_.errors;
      channel_->send_to_controller(ErrorMsg{status.message()});
    }
    return;
  }
  if (const auto* group_mod = std::get_if<GroupModMsg>(&message)) {
    const util::Status status = install_group(*group_mod);
    if (!status.is_ok()) {
      ++counters_.errors;
      channel_->send_to_controller(ErrorMsg{status.message()});
    }
    return;
  }
  if (auto* packet_out = std::get_if<PacketOutMsg>(&message)) {
    // Execute the action list on the supplied frame immediately (the
    // datapath charges nothing extra: controller-path packets are rare
    // and their cost is dominated by the channel RTT).
    for (const Action& action : packet_out->actions) {
      if (const auto* out = std::get_if<OutputAction>(&action)) {
        net::Packet copy = packet_out->packet.clone();
        resolve_output(out->port, packet_out->in_port, std::move(copy));
      } else {
        apply_header_action(action, packet_out->packet);
      }
    }
    return;
  }
  if (const auto* barrier = std::get_if<BarrierRequestMsg>(&message)) {
    // The first barrier after a reconnect is the controller's resync
    // fence: everything it re-installed is now in the tables.
    complete_resync();
    channel_->send_to_controller(BarrierReplyMsg{barrier->xid});
    return;
  }
  if (const auto* echo = std::get_if<EchoRequestMsg>(&message)) {
    channel_->send_to_controller(EchoReplyMsg{echo->payload});
    return;
  }
  if (std::holds_alternative<EchoReplyMsg>(message)) {
    ++failover_stats_.echo_replies;
    echo_outstanding_ = 0;
    return;
  }
  if (const auto* stats = std::get_if<FlowStatsRequestMsg>(&message)) {
    FlowStatsReplyMsg reply;
    for (std::size_t t = 0; t < pipeline_.table_count(); ++t) {
      if (stats->table_id != 0xff && stats->table_id != t) continue;
      for (const FlowEntry* entry : pipeline_.table(t).entries()) {
        FlowStatsEntry row;
        row.table_id = static_cast<std::uint8_t>(t);
        row.priority = entry->priority;
        row.match_text = entry->match.to_string();
        row.instructions_text = entry->instructions.to_string();
        row.cookie = entry->cookie;
        row.packet_count = entry->packet_count;
        row.byte_count = entry->byte_count;
        reply.flows.push_back(std::move(row));
      }
    }
    channel_->send_to_controller(std::move(reply));
    return;
  }
  // Remaining message types are controller-bound only; ignore.
}

void SoftSwitch::resolve_output(std::uint32_t of_port, std::uint32_t in_of_port,
                                net::Packet&& packet) {
  auto deliver_one = [this](std::uint32_t port, net::Packet&& p) {
    if (!port_up(port)) {
      ++counters_.drops_port_down;
      return;
    }
    ++counters_.packets_out;
    if (in_service()) {
      emit(port - 1, std::move(p));  // leaves when processing completes
    } else {
      // Controller-driven packet-out: no data-plane service slot was
      // consumed; transmit immediately.
      transmit(port - 1, std::move(p));
    }
  };

  switch (of_port) {
    case kPortFlood:
    case kPortAll:
      // No STP port blocking in this datapath, so FLOOD == ALL: every
      // up port except the ingress one.
      for (std::uint32_t port = 1; port <= of_port_count_; ++port) {
        if (port == in_of_port) continue;
        if (!port_up(port)) continue;
        net::Packet copy = packet.clone();
        copy.charge(costs_.clone_ns);
        deliver_one(port, std::move(copy));
      }
      break;
    case kPortInPort:
      deliver_one(in_of_port, std::move(packet));
      break;
    case kPortController: {
      if (channel_ != nullptr && admit_packet_in()) {
        ++counters_.packet_ins;
        PacketInMsg punt;
        punt.in_port = in_of_port;
        punt.reason = PacketInReason::kAction;
        punt.packet = std::move(packet);
        channel_->send_to_controller(std::move(punt));
      }
      break;
    }
    default:
      if (of_port == 0 || of_port > of_port_count_) return;  // invalid port: drop
      // OF1.3: output to the ingress port is suppressed unless the
      // rule explicitly uses OFPP_IN_PORT.
      if (of_port == in_of_port) return;
      deliver_one(of_port, std::move(packet));
  }
}

void SoftSwitch::dispatch_result(PipelineResult& result, std::uint32_t in_of_port,
                                 sim::SimNanos packet_cost) {
  if (result.dropped()) ++counters_.drops_no_match;
  for (auto& [of_port, out_packet] : result.outputs) {
    out_packet.charge(packet_cost / static_cast<sim::SimNanos>(result.outputs.size()));
    resolve_output(of_port, in_of_port, std::move(out_packet));
  }
  for (PacketInEvent& event : result.packet_ins) {
    if (channel_ == nullptr || !admit_packet_in()) continue;
    ++counters_.packet_ins;
    PacketInMsg punt;
    punt.in_port = event.in_port;
    punt.table_id = event.table_id;
    punt.reason = event.reason;
    punt.packet = std::move(event.packet);
    channel_->send_to_controller(std::move(punt));
  }
}

sim::SimNanos SoftSwitch::service(int in_port, net::Packet&& packet) {
  const std::uint32_t in_of_port = static_cast<std::uint32_t>(in_port) + 1;
  ++counters_.pipeline_runs;
  packet.add_hop();

  // Multi-core: one RSS steering hash per packet (cores=1 makes no
  // steering decision and bills nothing — bit-exact with PR 4).
  sim::SimNanos rss_ns = 0;
  if (core_count() > 1) {
    ++counters_.rss_steered;
    rss_ns = costs_.rss_hash_ns;
  }

  if (restarting_) {
    ++failover_stats_.dropped_restarting;
    return costs_.rx_tx_ns + rss_ns;
  }
  if (!port_up(in_of_port)) {
    ++counters_.drops_port_down;
    return costs_.rx_tx_ns + rss_ns;
  }
  if (standalone_active()) {
    // Fail-standalone degraded mode: MAC-learning datapath, no
    // pipeline, no cache.
    const sim::SimNanos bill = costs_.rx_tx_ns + rss_ns + costs_.standalone_ns;
    return costs_.rx_tx_ns + rss_ns +
           standalone_forward(in_of_port, std::move(packet), bill);
  }

  PipelineResult result =
      pipeline_.run(std::move(packet), in_of_port, engine_.now(), current_core());
  const sim::SimNanos cost =
      costs_.packet_cost_ns(result, pipeline_.cache_enabled()) + rss_ns;
  if (pipeline_.cache_enabled()) {
    if (result.cache_hit)
      ++counters_.cache_hits;
    else
      ++counters_.cache_misses;
    observe_cache_epoch();
  }

  if (result.ct_commits != 0) {
    schedule_ct_sweep();
    schedule_ct_checkpoint();
  }
  dispatch_result(result, in_of_port, cost);
  return cost;
}

sim::SimNanos SoftSwitch::service_burst(sim::ServicedNode::Burst&& burst) {
  ++counters_.service_bursts;
  const std::size_t rx_packets = burst.size();

  if (restarting_ || standalone_active()) {
    // Degraded-mode burst: the rx/poll overhead is still paid, but no
    // pipeline or cache runs — packets are dropped (rebooting box) or
    // MAC-bridged (fail-standalone) one by one.
    const std::size_t rss_hashes = core_count() > 1 ? rx_packets : 0;
    counters_.rss_steered += rss_hashes;
    counters_.rx_queue_polls += queues_polled();
    sim::SimNanos cost = costs_.rx_tx_burst_ns +
                         static_cast<sim::SimNanos>(queues_polled()) * costs_.rx_poll_ns +
                         static_cast<sim::SimNanos>(rx_packets) * costs_.rx_tx_pkt_ns +
                         static_cast<sim::SimNanos>(rss_hashes) * costs_.rss_hash_ns;
    sim::SimNanos shared_ns = costs_.rx_tx_pkt_ns;
    if (rss_hashes != 0) shared_ns += costs_.rss_hash_ns;
    if (rx_packets != 0)
      shared_ns += (costs_.rx_tx_burst_ns +
                    static_cast<sim::SimNanos>(queues_polled()) * costs_.rx_poll_ns) /
                   static_cast<sim::SimNanos>(rx_packets);
    for (auto& [in_port, packet] : burst) {
      const std::uint32_t in_of_port = static_cast<std::uint32_t>(in_port) + 1;
      ++counters_.pipeline_runs;
      packet.add_hop();
      if (restarting_) {
        ++failover_stats_.dropped_restarting;
        continue;
      }
      if (!port_up(in_of_port)) {
        ++counters_.drops_port_down;
        continue;
      }
      cost +=
          standalone_forward(in_of_port, std::move(packet), shared_ns + costs_.standalone_ns);
    }
    return cost;
  }

  // Ingress admission per packet; down ports drop before the pipeline
  // (they still occupied a slot in the rx burst). The staging vectors
  // are members recycled across bursts — the service loop of one
  // switch never re-enters itself.
  std::vector<BurstPacket>& items = burst_items_;
  std::vector<std::uint32_t>& in_of_ports = burst_in_ports_;  // parallel to items/results
  items.clear();
  in_of_ports.clear();
  items.reserve(rx_packets);
  in_of_ports.reserve(rx_packets);
  for (auto& [in_port, packet] : burst) {
    const std::uint32_t in_of_port = static_cast<std::uint32_t>(in_port) + 1;
    ++counters_.pipeline_runs;
    packet.add_hop();
    if (!port_up(in_of_port)) {
      ++counters_.drops_port_down;
      continue;
    }
    items.push_back(BurstPacket{std::move(packet), in_of_port});
    in_of_ports.push_back(in_of_port);
  }

  // Multi-core: one RSS steering hash per packet pulled by this core's
  // rx burst (cores=1 bills nothing).
  const std::size_t rss_hashes = core_count() > 1 ? rx_packets : 0;
  counters_.rss_steered += rss_hashes;

  const bool cache = pipeline_.cache_enabled();
  BurstResult& result = burst_result_;
  pipeline_.run_burst(items, engine_.now(), current_core(), result);
  const sim::SimNanos cost =
      costs_.burst_cost_ns(result, cache, rx_packets, queues_polled(), rss_hashes);
  counters_.replay_groups += result.replay_groups;
  counters_.rx_queue_polls += queues_polled();

  // Latency metadata: each packet carries its own marginal bill plus an
  // even share of the burst-level overhead (rx/tx setup, the per-queue
  // poll sweep, its steering hash, group setups).
  sim::SimNanos shared_ns = costs_.rx_tx_pkt_ns;
  if (rss_hashes != 0) shared_ns += costs_.rss_hash_ns;
  if (!result.results.empty()) {
    sim::SimNanos overhead =
        costs_.rx_tx_burst_ns + static_cast<sim::SimNanos>(queues_polled()) * costs_.rx_poll_ns;
    if (cache)
      overhead += static_cast<sim::SimNanos>(result.replay_groups) * costs_.replay_setup_ns;
    shared_ns += overhead / static_cast<sim::SimNanos>(result.results.size());
  }

  for (std::size_t i = 0; i < result.results.size(); ++i) {
    PipelineResult& packet_result = result.results[i];
    if (cache) {
      if (packet_result.cache_hit)
        ++counters_.cache_hits;
      else
        ++counters_.cache_misses;
    }
    dispatch_result(packet_result, in_of_ports[i],
                    costs_.marginal_cost_ns(packet_result, cache) + shared_ns);
  }
  if (cache) observe_cache_epoch();
  schedule_ct_sweep();       // arms only when live connections exist
  schedule_ct_checkpoint();  // likewise (and only when checkpointing is on)
  return cost;
}

void SoftSwitch::transmit(std::size_t out_port, net::Packet&& packet) {
  const std::uint32_t of_port = static_cast<std::uint32_t>(out_port) + 1;
  const auto it = patches_.find(of_port);
  if (it == patches_.end()) {
    port(out_port).send(std::move(packet));
    return;
  }
  // Patch hand-off: no wire, just a queue insert into the peer's
  // datapath. rx/tx counters still tick on both pseudo-ports.
  packet.charge(costs_.patch_ns);
  port(out_port).tx.add(packet.size());
  SoftSwitch& peer = *it->second.peer;
  const std::uint32_t peer_of_port = it->second.peer_of_port;
  peer.port(peer_of_port - 1).receive(std::move(packet));
}

}  // namespace harmless::softswitch

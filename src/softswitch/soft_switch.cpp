#include "softswitch/soft_switch.hpp"

#include "util/strings.hpp"

namespace harmless::softswitch {

using namespace openflow;

SoftSwitch::SoftSwitch(sim::Engine& engine, std::string name, std::uint64_t datapath_id,
                       std::size_t of_port_count, std::size_t table_count, bool specialized,
                       bool flow_cache, std::size_t burst_size, const sim::IngressSpec& ingress)
    : ServicedNode(engine, std::move(name), ingress, burst_size),
      datapath_id_(datapath_id),
      of_port_count_(of_port_count),
      pipeline_(table_count, specialized, flow_cache),
      port_up_(of_port_count + 1, true),
      seen_cache_epoch_(pipeline_.cache().epoch()) {
  ensure_ports(of_port_count);
  // One flow-cache shard per worker core: each core learns into (and
  // probes) only its own shard; all shards share the pipeline's one
  // invalidation epoch.
  pipeline_.set_shard_count(core_count());
  // One RX queue per OF port from the start: the poll sweep pays for
  // every port the switch fronts, busy or idle (and the queue -> core
  // steering is decided up front, not on first arrival).
  ensure_rx_queues(of_port_count);
}

void SoftSwitch::observe_cache_epoch() {
  // Hot path (called per packet / per burst): O(1) epoch bookkeeping
  // only. The per-shard tier/classifier totals are summed lazily when
  // counters() is read.
  const std::uint64_t epoch = pipeline_.cache().epoch();
  counters_.cache_invalidations += epoch - seen_cache_epoch_;
  seen_cache_epoch_ = epoch;
}

const SoftSwitch::Counters& SoftSwitch::counters() const {
  // Reporting time: aggregate the monotone per-shard stats across the
  // cache shards (one per worker core; one shard total single-core).
  counters_.cache_evictions = 0;
  counters_.cache_subtables = 0;
  counters_.cache_subtable_probes = 0;
  for (std::size_t shard = 0; shard < pipeline_.shard_count(); ++shard) {
    counters_.cache_evictions += pipeline_.cache(shard).stats().evictions;
    counters_.cache_subtables += pipeline_.cache(shard).subtable_count();
    counters_.cache_subtable_probes += pipeline_.cache(shard).stats().subtable_probes;
  }
  return counters_;
}

SoftSwitch::CoreStats SoftSwitch::core_stats(std::size_t core) const {
  CoreStats stats;
  stats.busy_ns = core_busy_ns(core);
  stats.bursts = core_bursts(core);
  stats.packets = core_packets(core);
  stats.rx_queue_polls = core_rx_polls(core);
  stats.rx_queues = core_queue_count(core);
  const openflow::FlowCache& shard = pipeline_.cache(core);
  stats.cache_hits = shard.stats().hits;
  stats.cache_misses = shard.stats().misses;
  stats.cache_evictions = shard.stats().evictions;
  stats.cache_megaflows = shard.megaflow_count();
  stats.cache_subtables = shard.subtable_count();
  return stats;
}

void SoftSwitch::bind_patch(std::uint32_t of_port, SoftSwitch& peer,
                            std::uint32_t peer_of_port) {
  if (of_port == 0 || of_port > of_port_count_)
    throw util::ConfigError(name() + ": patch of_port " + std::to_string(of_port) +
                            " out of range");
  if (peer_of_port == 0 || peer_of_port > peer.of_port_count_)
    throw util::ConfigError(peer.name() + ": patch of_port " + std::to_string(peer_of_port) +
                            " out of range");
  patches_[of_port] = PatchBinding{&peer, peer_of_port};
  peer.patches_[peer_of_port] = PatchBinding{this, of_port};
}

void SoftSwitch::attach_channel(openflow::ControlChannel& channel) {
  channel_ = &channel;
  channel.set_switch_handler(
      [this](Message&& message) { handle_controller_message(std::move(message)); });
}

bool SoftSwitch::port_up(std::uint32_t of_port) const {
  if (of_port == 0 || of_port > of_port_count_) return false;
  return port_up_[of_port];
}

void SoftSwitch::set_port_state(std::uint32_t of_port, bool up) {
  if (of_port == 0 || of_port > of_port_count_) return;
  if (port_up_[of_port] == up) return;
  port_up_[of_port] = up;
  // Cached action programs may reference this port (directly or via a
  // FLOOD fan-out); conservatively invalidate them all so the next
  // packet of every aggregate re-learns against the new port set.
  if (pipeline_.cache_enabled()) {
    pipeline_.cache().invalidate_all();
    observe_cache_epoch();
  }
  send_port_status(of_port, up);
}

void SoftSwitch::send_port_status(std::uint32_t of_port, bool up) {
  if (channel_ == nullptr) return;
  PortStatusMsg status;
  status.reason = PortStatusMsg::Reason::kModify;
  status.desc.port_no = of_port;
  status.desc.name = name() + "/" + std::to_string(of_port);
  status.desc.up = up;
  channel_->send_to_controller(status);
}

util::Status SoftSwitch::install(const FlowModMsg& mod) {
  ++counters_.flow_mods;
  if (mod.table_id >= pipeline_.table_count())
    return util::Status::error(name() + ": bad table id " + std::to_string(mod.table_id));
  FlowTable& table = pipeline_.table(mod.table_id);

  switch (mod.command) {
    case FlowModMsg::Command::kAdd: {
      FlowEntry entry;
      entry.priority = mod.priority;
      entry.match = mod.match;
      entry.instructions = mod.instructions;
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.send_flow_removed = mod.send_flow_removed;
      auto status = table.add(std::move(entry), engine_.now(), mod.check_overlap);
      if (status.is_ok() && (mod.idle_timeout > 0 || mod.hard_timeout > 0))
        schedule_expiry_sweep();
      return status;
    }
    case FlowModMsg::Command::kModify:
      table.modify(mod.match, mod.instructions, /*strict=*/false);
      return util::Status::ok();
    case FlowModMsg::Command::kModifyStrict:
      table.modify(mod.match, mod.instructions, /*strict=*/true, mod.priority);
      return util::Status::ok();
    case FlowModMsg::Command::kDelete:
      table.remove(mod.match, /*strict=*/false);
      return util::Status::ok();
    case FlowModMsg::Command::kDeleteStrict:
      table.remove(mod.match, /*strict=*/true, mod.priority);
      return util::Status::ok();
  }
  return util::Status::error("unreachable");
}

util::Status SoftSwitch::install_group(const GroupModMsg& mod) {
  switch (mod.command) {
    case GroupModMsg::Command::kAdd: return pipeline_.groups().add(mod.entry);
    case GroupModMsg::Command::kModify: return pipeline_.groups().modify(mod.entry);
    case GroupModMsg::Command::kDelete:
      pipeline_.groups().remove(mod.entry.group_id);
      return util::Status::ok();
  }
  return util::Status::error("unreachable");
}

void SoftSwitch::schedule_expiry_sweep() {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  // 100 ms sweep cadence; reschedules itself only while timed entries
  // remain, so idle simulations still drain their event queues.
  engine_.schedule_after(100'000'000, [this] {
    sweep_scheduled_ = false;
    auto expired = pipeline_.collect_expired(engine_.now());
    for (const FlowEntry& entry : expired) {
      if (entry.send_flow_removed && channel_ != nullptr) {
        FlowRemovedMsg removed;
        removed.priority = entry.priority;
        removed.match = entry.match;
        removed.cookie = entry.cookie;
        removed.packet_count = entry.packet_count;
        removed.byte_count = entry.byte_count;
        channel_->send_to_controller(removed);
      }
    }
    bool timed_entries_remain = false;
    for (std::size_t t = 0; t < pipeline_.table_count() && !timed_entries_remain; ++t)
      for (const FlowEntry* entry : pipeline_.table(t).entries())
        if (entry->idle_timeout > 0 || entry->hard_timeout > 0) {
          timed_entries_remain = true;
          break;
        }
    if (timed_entries_remain) schedule_expiry_sweep();
  });
}

void SoftSwitch::handle_controller_message(Message&& message) {
  if (std::holds_alternative<HelloMsg>(message)) {
    channel_->send_to_controller(HelloMsg{});
    return;
  }
  if (std::holds_alternative<FeaturesRequestMsg>(message)) {
    FeaturesReplyMsg reply;
    reply.datapath_id = datapath_id_;
    reply.table_count = static_cast<std::uint8_t>(pipeline_.table_count());
    for (std::uint32_t of_port = 1; of_port <= of_port_count_; ++of_port) {
      PortDesc desc;
      desc.port_no = of_port;
      desc.name = name() + "/" + std::to_string(of_port);
      desc.up = port_up_[of_port];
      reply.ports.push_back(std::move(desc));
    }
    channel_->send_to_controller(std::move(reply));
    return;
  }
  if (const auto* mod = std::get_if<FlowModMsg>(&message)) {
    const util::Status status = install(*mod);
    if (!status.is_ok()) {
      ++counters_.errors;
      channel_->send_to_controller(ErrorMsg{status.message()});
    }
    return;
  }
  if (const auto* group_mod = std::get_if<GroupModMsg>(&message)) {
    const util::Status status = install_group(*group_mod);
    if (!status.is_ok()) {
      ++counters_.errors;
      channel_->send_to_controller(ErrorMsg{status.message()});
    }
    return;
  }
  if (auto* packet_out = std::get_if<PacketOutMsg>(&message)) {
    // Execute the action list on the supplied frame immediately (the
    // datapath charges nothing extra: controller-path packets are rare
    // and their cost is dominated by the channel RTT).
    for (const Action& action : packet_out->actions) {
      if (const auto* out = std::get_if<OutputAction>(&action)) {
        net::Packet copy = packet_out->packet.clone();
        resolve_output(out->port, packet_out->in_port, std::move(copy));
      } else {
        apply_header_action(action, packet_out->packet);
      }
    }
    return;
  }
  if (const auto* barrier = std::get_if<BarrierRequestMsg>(&message)) {
    channel_->send_to_controller(BarrierReplyMsg{barrier->xid});
    return;
  }
  if (const auto* echo = std::get_if<EchoRequestMsg>(&message)) {
    channel_->send_to_controller(EchoReplyMsg{echo->payload});
    return;
  }
  if (const auto* stats = std::get_if<FlowStatsRequestMsg>(&message)) {
    FlowStatsReplyMsg reply;
    for (std::size_t t = 0; t < pipeline_.table_count(); ++t) {
      if (stats->table_id != 0xff && stats->table_id != t) continue;
      for (const FlowEntry* entry : pipeline_.table(t).entries()) {
        FlowStatsEntry row;
        row.table_id = static_cast<std::uint8_t>(t);
        row.priority = entry->priority;
        row.match_text = entry->match.to_string();
        row.instructions_text = entry->instructions.to_string();
        row.cookie = entry->cookie;
        row.packet_count = entry->packet_count;
        row.byte_count = entry->byte_count;
        reply.flows.push_back(std::move(row));
      }
    }
    channel_->send_to_controller(std::move(reply));
    return;
  }
  // Remaining message types are controller-bound only; ignore.
}

void SoftSwitch::resolve_output(std::uint32_t of_port, std::uint32_t in_of_port,
                                net::Packet&& packet) {
  auto deliver_one = [this](std::uint32_t port, net::Packet&& p) {
    if (!port_up(port)) {
      ++counters_.drops_port_down;
      return;
    }
    ++counters_.packets_out;
    if (in_service()) {
      emit(port - 1, std::move(p));  // leaves when processing completes
    } else {
      // Controller-driven packet-out: no data-plane service slot was
      // consumed; transmit immediately.
      transmit(port - 1, std::move(p));
    }
  };

  switch (of_port) {
    case kPortFlood:
    case kPortAll:
      // No STP port blocking in this datapath, so FLOOD == ALL: every
      // up port except the ingress one.
      for (std::uint32_t port = 1; port <= of_port_count_; ++port) {
        if (port == in_of_port) continue;
        if (!port_up(port)) continue;
        net::Packet copy = packet.clone();
        copy.charge(costs_.clone_ns);
        deliver_one(port, std::move(copy));
      }
      break;
    case kPortInPort:
      deliver_one(in_of_port, std::move(packet));
      break;
    case kPortController: {
      if (channel_ != nullptr) {
        ++counters_.packet_ins;
        PacketInMsg punt;
        punt.in_port = in_of_port;
        punt.reason = PacketInReason::kAction;
        punt.packet = std::move(packet);
        channel_->send_to_controller(std::move(punt));
      }
      break;
    }
    default:
      if (of_port == 0 || of_port > of_port_count_) return;  // invalid port: drop
      // OF1.3: output to the ingress port is suppressed unless the
      // rule explicitly uses OFPP_IN_PORT.
      if (of_port == in_of_port) return;
      deliver_one(of_port, std::move(packet));
  }
}

void SoftSwitch::dispatch_result(PipelineResult& result, std::uint32_t in_of_port,
                                 sim::SimNanos packet_cost) {
  if (result.dropped()) ++counters_.drops_no_match;
  for (auto& [of_port, out_packet] : result.outputs) {
    out_packet.charge(packet_cost / static_cast<sim::SimNanos>(result.outputs.size()));
    resolve_output(of_port, in_of_port, std::move(out_packet));
  }
  for (PacketInEvent& event : result.packet_ins) {
    if (channel_ == nullptr) continue;
    ++counters_.packet_ins;
    PacketInMsg punt;
    punt.in_port = event.in_port;
    punt.table_id = event.table_id;
    punt.reason = event.reason;
    punt.packet = std::move(event.packet);
    channel_->send_to_controller(std::move(punt));
  }
}

sim::SimNanos SoftSwitch::service(int in_port, net::Packet&& packet) {
  const std::uint32_t in_of_port = static_cast<std::uint32_t>(in_port) + 1;
  ++counters_.pipeline_runs;
  packet.add_hop();

  // Multi-core: one RSS steering hash per packet (cores=1 makes no
  // steering decision and bills nothing — bit-exact with PR 4).
  sim::SimNanos rss_ns = 0;
  if (core_count() > 1) {
    ++counters_.rss_steered;
    rss_ns = costs_.rss_hash_ns;
  }

  if (!port_up(in_of_port)) {
    ++counters_.drops_port_down;
    return costs_.rx_tx_ns + rss_ns;
  }

  PipelineResult result =
      pipeline_.run(std::move(packet), in_of_port, engine_.now(), current_core());
  const sim::SimNanos cost =
      costs_.packet_cost_ns(result, pipeline_.cache_enabled()) + rss_ns;
  if (pipeline_.cache_enabled()) {
    if (result.cache_hit)
      ++counters_.cache_hits;
    else
      ++counters_.cache_misses;
    observe_cache_epoch();
  }

  dispatch_result(result, in_of_port, cost);
  return cost;
}

sim::SimNanos SoftSwitch::service_burst(sim::ServicedNode::Burst&& burst) {
  ++counters_.service_bursts;
  const std::size_t rx_packets = burst.size();

  // Ingress admission per packet; down ports drop before the pipeline
  // (they still occupied a slot in the rx burst). The staging vectors
  // are members recycled across bursts — the service loop of one
  // switch never re-enters itself.
  std::vector<BurstPacket>& items = burst_items_;
  std::vector<std::uint32_t>& in_of_ports = burst_in_ports_;  // parallel to items/results
  items.clear();
  in_of_ports.clear();
  items.reserve(rx_packets);
  in_of_ports.reserve(rx_packets);
  for (auto& [in_port, packet] : burst) {
    const std::uint32_t in_of_port = static_cast<std::uint32_t>(in_port) + 1;
    ++counters_.pipeline_runs;
    packet.add_hop();
    if (!port_up(in_of_port)) {
      ++counters_.drops_port_down;
      continue;
    }
    items.push_back(BurstPacket{std::move(packet), in_of_port});
    in_of_ports.push_back(in_of_port);
  }

  // Multi-core: one RSS steering hash per packet pulled by this core's
  // rx burst (cores=1 bills nothing).
  const std::size_t rss_hashes = core_count() > 1 ? rx_packets : 0;
  counters_.rss_steered += rss_hashes;

  const bool cache = pipeline_.cache_enabled();
  BurstResult& result = burst_result_;
  pipeline_.run_burst(items, engine_.now(), current_core(), result);
  const sim::SimNanos cost =
      costs_.burst_cost_ns(result, cache, rx_packets, queues_polled(), rss_hashes);
  counters_.replay_groups += result.replay_groups;
  counters_.rx_queue_polls += queues_polled();

  // Latency metadata: each packet carries its own marginal bill plus an
  // even share of the burst-level overhead (rx/tx setup, the per-queue
  // poll sweep, its steering hash, group setups).
  sim::SimNanos shared_ns = costs_.rx_tx_pkt_ns;
  if (rss_hashes != 0) shared_ns += costs_.rss_hash_ns;
  if (!result.results.empty()) {
    sim::SimNanos overhead =
        costs_.rx_tx_burst_ns + static_cast<sim::SimNanos>(queues_polled()) * costs_.rx_poll_ns;
    if (cache)
      overhead += static_cast<sim::SimNanos>(result.replay_groups) * costs_.replay_setup_ns;
    shared_ns += overhead / static_cast<sim::SimNanos>(result.results.size());
  }

  for (std::size_t i = 0; i < result.results.size(); ++i) {
    PipelineResult& packet_result = result.results[i];
    if (cache) {
      if (packet_result.cache_hit)
        ++counters_.cache_hits;
      else
        ++counters_.cache_misses;
    }
    dispatch_result(packet_result, in_of_ports[i],
                    costs_.marginal_cost_ns(packet_result, cache) + shared_ns);
  }
  if (cache) observe_cache_epoch();
  return cost;
}

void SoftSwitch::transmit(std::size_t out_port, net::Packet&& packet) {
  const std::uint32_t of_port = static_cast<std::uint32_t>(out_port) + 1;
  const auto it = patches_.find(of_port);
  if (it == patches_.end()) {
    port(out_port).send(std::move(packet));
    return;
  }
  // Patch hand-off: no wire, just a queue insert into the peer's
  // datapath. rx/tx counters still tick on both pseudo-ports.
  packet.charge(costs_.patch_ns);
  port(out_port).tx.add(packet.size());
  SoftSwitch& peer = *it->second.peer;
  const std::uint32_t peer_of_port = it->second.peer_of_port;
  peer.port(peer_of_port - 1).receive(std::move(packet));
}

}  // namespace harmless::softswitch

#include "softswitch/replication.hpp"

namespace harmless::softswitch {

bool ReplicationChannel::depart(std::uint64_t& down, std::uint64_t& loss) {
  if (!up_) {
    ++down;
    return false;
  }
  if (spec_.loss > 0.0 && rng_.chance(spec_.loss)) {
    ++loss;
    return false;
  }
  return true;
}

sim::SimNanos ReplicationChannel::arrival_delay() {
  sim::SimNanos delay = spec_.latency_ns;
  if (spec_.jitter_ns > 0) {
    delay += static_cast<sim::SimNanos>(
        rng_.below(static_cast<std::uint64_t>(spec_.jitter_ns) + 1));
  }
  return delay;
}

void ReplicationChannel::publish(std::size_t shard, const openflow::CtDelta& delta) {
  ++stats_.deltas_published;
  pending_.push_back(ReplicationRecord{shard, delta});
  if (spec_.batch_interval_ns == 0) {
    flush();
    return;
  }
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    engine_.schedule_after(spec_.batch_interval_ns, [this] {
      flush_scheduled_ = false;
      flush();
    });
  }
}

void ReplicationChannel::flush() {
  if (pending_.empty()) return;
  std::vector<ReplicationRecord> batch;
  batch.swap(pending_);
  ++stats_.batches_sent;
  if (!depart(stats_.batches_dropped_down, stats_.batches_dropped_loss)) return;
  engine_.schedule_after(arrival_delay(), [this, batch = std::move(batch)] {
    if (!up_) {
      ++stats_.batches_dropped_down;  // in flight when the partition hit
      return;
    }
    ++stats_.batches_delivered;
    if (!delta_handler_) return;
    for (const ReplicationRecord& record : batch) {
      ++stats_.deltas_delivered;
      delta_handler_(record);
    }
  });
}

void ReplicationChannel::publish_heartbeat(std::uint64_t epoch) {
  ++stats_.heartbeats_sent;
  if (!depart(stats_.heartbeats_dropped_down, stats_.heartbeats_dropped_loss)) return;
  engine_.schedule_after(arrival_delay(), [this, epoch] {
    if (!up_) {
      ++stats_.heartbeats_dropped_down;  // in flight when the partition hit
      return;
    }
    ++stats_.heartbeats_delivered;
    if (heartbeat_handler_) heartbeat_handler_(epoch);
  });
}

void ReplicationChannel::publish_snapshot(std::size_t shard, openflow::CtSnapshot snapshot,
                                          std::uint64_t epoch) {
  ++stats_.snapshots_sent;
  // State-stream traffic: drops share the batch buckets, unlike
  // heartbeats — a lost snapshot *is* lost state.
  if (!depart(stats_.batches_dropped_down, stats_.batches_dropped_loss)) return;
  engine_.schedule_after(arrival_delay(),
                         [this, shard, epoch, snapshot = std::move(snapshot)] {
                           if (!up_) {
                             ++stats_.batches_dropped_down;
                             return;
                           }
                           ++stats_.snapshots_delivered;
                           stats_.snapshot_bytes += snapshot.wire_bytes();
                           if (snapshot_handler_) snapshot_handler_(shard, snapshot, epoch);
                         });
}

void ReplicationChannel::publish_sync_request() {
  ++stats_.sync_requests_sent;
  if (!depart(stats_.batches_dropped_down, stats_.batches_dropped_loss)) return;
  engine_.schedule_after(arrival_delay(), [this] {
    if (!up_) {
      ++stats_.batches_dropped_down;
      return;
    }
    ++stats_.sync_requests_delivered;
    if (sync_request_handler_) sync_request_handler_();
  });
}

}  // namespace harmless::softswitch

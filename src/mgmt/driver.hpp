// mgmt/driver.hpp — the NAPALM-style device driver.
//
// The paper's Manager "automatically manages and queries the legacy
// Ethernet switch via SNMP through NAPALM". NetworkDriver is that
// abstraction: candidate-config workflow (load / compare / commit /
// rollback) plus read-only fact gathering. SnmpDriver is the concrete
// implementation that speaks to a SwitchMib through an SnmpAgent and
// renders/parses configs in a vendor Dialect — so the orchestration
// code in harmless/manager.cpp exercises the same seams the Python
// original does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mgmt/dialects.hpp"
#include "mgmt/mib.hpp"
#include "mgmt/snmp.hpp"
#include "util/result.hpp"
#include "util/status.hpp"

namespace harmless::mgmt {

struct DeviceFacts {
  std::string hostname;
  std::string description;
  int interface_count = 0;
};

struct InterfaceInfo {
  int number = 0;
  std::string description;
  bool enabled = true;
  legacy::PortMode mode = legacy::PortMode::kAccess;
  net::VlanId pvid = 1;
  std::set<net::VlanId> trunk_vlans;
};

class NetworkDriver {
 public:
  virtual ~NetworkDriver() = default;

  [[nodiscard]] virtual std::string platform() const = 0;
  [[nodiscard]] virtual util::Result<DeviceFacts> get_facts() = 0;
  [[nodiscard]] virtual util::Result<std::vector<InterfaceInfo>> get_interfaces() = 0;

  /// Render a target config in this device's own CLI language (what an
  /// operator would paste; also what load_merge_candidate consumes).
  [[nodiscard]] virtual std::string render_config(const legacy::SwitchConfig& config) const = 0;

  /// Stage a (partial) config given as dialect text; merged into the
  /// device's candidate. Nothing changes on the box yet.
  [[nodiscard]] virtual util::Status load_merge_candidate(const std::string& config_text) = 0;

  /// Candidate-vs-running diff; empty string when in sync.
  [[nodiscard]] virtual util::Result<std::string> compare_config() = 0;

  /// Apply the candidate. Takes a pre-commit snapshot for rollback().
  [[nodiscard]] virtual util::Status commit_config() = 0;

  /// Restore the configuration captured by the last successful commit.
  [[nodiscard]] virtual util::Status rollback() = 0;
};

/// SNMP-backed implementation (see file comment).
class SnmpDriver : public NetworkDriver {
 public:
  SnmpDriver(SnmpAgent& agent, std::unique_ptr<Dialect> dialect);

  [[nodiscard]] std::string platform() const override { return dialect_->name(); }
  [[nodiscard]] std::string render_config(const legacy::SwitchConfig& config) const override {
    return dialect_->render(config);
  }
  [[nodiscard]] util::Result<DeviceFacts> get_facts() override;
  [[nodiscard]] util::Result<std::vector<InterfaceInfo>> get_interfaces() override;
  [[nodiscard]] util::Status load_merge_candidate(const std::string& config_text) override;
  [[nodiscard]] util::Result<std::string> compare_config() override;
  [[nodiscard]] util::Status commit_config() override;
  [[nodiscard]] util::Status rollback() override;

  [[nodiscard]] const Dialect& dialect() const { return *dialect_; }

 private:
  /// Push one port's candidate fields through SNMP SETs.
  util::Status stage_port(int number, const legacy::PortConfig& port);
  /// Read the device's current per-port config through SNMP.
  util::Result<std::vector<InterfaceInfo>> read_ports();

  SnmpAgent& agent_;
  std::unique_ptr<Dialect> dialect_;
  std::vector<InterfaceInfo> pre_commit_snapshot_;
  bool has_snapshot_ = false;
};

}  // namespace harmless::mgmt

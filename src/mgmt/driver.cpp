#include "mgmt/driver.hpp"

#include "util/strings.hpp"

namespace harmless::mgmt {

namespace {

util::Result<std::int64_t> get_int(SnmpAgent& agent, const Oid& oid) {
  auto value = agent.get(oid);
  if (!value) return util::Result<std::int64_t>::error(value.message());
  if (const auto* i = std::get_if<std::int64_t>(&value.value())) return *i;
  return util::Result<std::int64_t>::error(oid.to_string() + ": not an integer");
}

util::Result<std::string> get_string(SnmpAgent& agent, const Oid& oid) {
  auto value = agent.get(oid);
  if (!value) return util::Result<std::string>::error(value.message());
  return snmp_value_to_string(value.value());
}

}  // namespace

SnmpDriver::SnmpDriver(SnmpAgent& agent, std::unique_ptr<Dialect> dialect)
    : agent_(agent), dialect_(std::move(dialect)) {
  if (!dialect_) throw util::ConfigError("SnmpDriver requires a dialect");
}

util::Result<DeviceFacts> SnmpDriver::get_facts() {
  DeviceFacts facts;
  auto name = get_string(agent_, oids::kSysName);
  if (!name) return util::Result<DeviceFacts>::error(name.message());
  facts.hostname = *name;
  auto descr = get_string(agent_, oids::kSysDescr);
  if (!descr) return util::Result<DeviceFacts>::error(descr.message());
  facts.description = *descr;
  auto count = get_int(agent_, oids::kIfNumber);
  if (!count) return util::Result<DeviceFacts>::error(count.message());
  facts.interface_count = static_cast<int>(*count);
  return facts;
}

util::Result<std::vector<InterfaceInfo>> SnmpDriver::read_ports() {
  std::vector<InterfaceInfo> out;
  // ifIndex column enumerates the ports.
  for (const auto& bind : agent_.walk(oids::kIfTable.child(1))) {
    const auto* index = std::get_if<std::int64_t>(&bind.value);
    if (!index) continue;
    InterfaceInfo info;
    info.number = static_cast<int>(*index);
    const auto p = static_cast<std::uint32_t>(info.number);

    auto descr = get_string(agent_, oids::kIfTable.child({2, p}));
    if (descr) info.description = *descr;

    auto mode = get_int(agent_, oids::kEnterprise.child({1, 1, p}));
    if (!mode) return util::Result<std::vector<InterfaceInfo>>::error(mode.message());
    info.mode = (*mode == 1) ? legacy::PortMode::kAccess : legacy::PortMode::kTrunk;

    auto pvid = get_int(agent_, oids::kEnterprise.child({1, 2, p}));
    if (!pvid) return util::Result<std::vector<InterfaceInfo>>::error(pvid.message());
    info.pvid = static_cast<net::VlanId>(*pvid);

    auto vlans = get_string(agent_, oids::kEnterprise.child({1, 3, p}));
    if (vlans && !vlans->empty()) {
      for (const auto& part : util::split(*vlans, ',')) {
        std::uint64_t vid = 0;
        if (util::parse_u64(part, vid))
          info.trunk_vlans.insert(static_cast<net::VlanId>(vid));
      }
    }

    auto enabled = get_int(agent_, oids::kEnterprise.child({1, 4, p}));
    if (!enabled) return util::Result<std::vector<InterfaceInfo>>::error(enabled.message());
    info.enabled = (*enabled == 1);
    out.push_back(std::move(info));
  }
  return out;
}

util::Result<std::vector<InterfaceInfo>> SnmpDriver::get_interfaces() { return read_ports(); }

util::Status SnmpDriver::stage_port(int number, const legacy::PortConfig& port) {
  const auto p = static_cast<std::uint32_t>(number);
  auto check = [](const util::Result<SnmpValue>& result) {
    return result ? util::Status::ok() : util::Status::error(result.message());
  };

  auto status = check(agent_.set(oids::kEnterprise.child({1, 1, p}),
                                 std::int64_t{port.mode == legacy::PortMode::kAccess ? 1 : 2}));
  if (!status) return status;
  status = check(agent_.set(oids::kEnterprise.child({1, 2, p}), std::int64_t{port.pvid}));
  if (!status) return status;

  std::vector<std::string> vids;
  for (const net::VlanId vid : port.allowed_vlans) vids.push_back(std::to_string(vid));
  status = check(agent_.set(oids::kEnterprise.child({1, 3, p}), util::join(vids, ",")));
  if (!status) return status;

  return check(
      agent_.set(oids::kEnterprise.child({1, 4, p}), std::int64_t{port.enabled ? 1 : 0}));
}

util::Status SnmpDriver::load_merge_candidate(const std::string& config_text) {
  auto parsed = dialect_->parse(config_text);
  if (!parsed) return util::Status::error(parsed.message());
  for (const auto& [number, port] : parsed->ports) {
    auto status = stage_port(number, port);
    if (!status) return status;
  }
  return util::Status::ok();
}

util::Result<std::string> SnmpDriver::compare_config() {
  return get_string(agent_, oids::kEnterprise.child({3, 0}));
}

util::Status SnmpDriver::commit_config() {
  // Snapshot the running config first so rollback() can restore it.
  auto snapshot = read_ports();
  if (!snapshot) return snapshot.status();

  auto result = agent_.set(oids::kEnterprise.child({2, 0}), std::int64_t{1});
  if (!result) return util::Status::error(result.message());

  pre_commit_snapshot_ = std::move(snapshot.value());
  has_snapshot_ = true;
  return util::Status::ok();
}

util::Status SnmpDriver::rollback() {
  if (!has_snapshot_) return util::Status::error("rollback: no committed snapshot");
  for (const auto& info : pre_commit_snapshot_) {
    legacy::PortConfig port;
    port.mode = info.mode;
    port.pvid = info.pvid;
    port.allowed_vlans = info.trunk_vlans;
    port.enabled = info.enabled;
    port.description = info.description;
    auto status = stage_port(info.number, port);
    if (!status) return status;
  }
  auto result = agent_.set(oids::kEnterprise.child({2, 0}), std::int64_t{1});
  if (!result) return util::Status::error(result.message());
  return util::Status::ok();
}

}  // namespace harmless::mgmt

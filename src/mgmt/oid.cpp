#include "mgmt/oid.hpp"

#include "util/strings.hpp"

namespace harmless::mgmt {

std::optional<Oid> Oid::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::vector<std::uint32_t> arcs;
  for (const auto& part : util::split(text, '.')) {
    std::uint64_t arc = 0;
    if (!util::parse_u64(part, arc) || arc > UINT32_MAX) return std::nullopt;
    arcs.push_back(static_cast<std::uint32_t>(arc));
  }
  return Oid(std::move(arcs));
}

Oid Oid::child(std::initializer_list<std::uint32_t> suffix) const {
  std::vector<std::uint32_t> arcs = arcs_;
  arcs.insert(arcs.end(), suffix.begin(), suffix.end());
  return Oid(std::move(arcs));
}

bool Oid::has_prefix(const Oid& prefix) const {
  if (prefix.arcs_.size() > arcs_.size()) return false;
  return std::equal(prefix.arcs_.begin(), prefix.arcs_.end(), arcs_.begin());
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

}  // namespace harmless::mgmt

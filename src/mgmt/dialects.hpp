// mgmt/dialects.hpp — vendor configuration dialects.
//
// NAPALM's value proposition is "one API, many NOS dialects"; the
// HARMLESS Manager leans on it so a deployment never depends on the
// brand of the legacy switch. We reproduce that seam: a Dialect renders
// a SwitchConfig to vendor CLI text and parses it back. Two dialects
// with genuinely different syntax (interface naming, indentation,
// banner lines) keep the abstraction honest.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "legacy/config.hpp"
#include "util/result.hpp"

namespace harmless::mgmt {

class Dialect {
 public:
  virtual ~Dialect() = default;

  /// NAPALM-style platform string ("ios_like", "eos_like").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Interface name for a 1-based port number.
  [[nodiscard]] virtual std::string interface_name(int port_number) const = 0;

  /// Inverse of interface_name; nullopt if the name is foreign.
  [[nodiscard]] virtual std::optional<int> parse_interface_name(
      std::string_view name) const = 0;

  /// Render a full running config in this dialect.
  [[nodiscard]] virtual std::string render(const legacy::SwitchConfig& config) const = 0;

  /// Parse dialect text back into a config. Unknown lines are an error
  /// (config push must be exact); missing sections simply stay absent.
  [[nodiscard]] virtual util::Result<legacy::SwitchConfig> parse(
      const std::string& text) const = 0;
};

/// Cisco-IOS-flavoured: "interface GigabitEthernet0/3", one-space
/// indent, '!' separators.
std::unique_ptr<Dialect> make_ios_like_dialect();

/// Arista-EOS-flavoured: "interface Ethernet3", three-space indent.
std::unique_ptr<Dialect> make_eos_like_dialect();

/// Factory by platform name; nullptr for unknown platforms.
std::unique_ptr<Dialect> make_dialect(std::string_view platform);

}  // namespace harmless::mgmt

#include "mgmt/snmp.hpp"

namespace harmless::mgmt {

std::string snmp_value_to_string(const SnmpValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return std::to_string(*i);
  return std::get<std::string>(value);
}

std::string to_string(SnmpError error) {
  switch (error) {
    case SnmpError::kNoSuchName: return "noSuchName";
    case SnmpError::kReadOnly: return "readOnly";
    case SnmpError::kBadValue: return "badValue";
    case SnmpError::kEndOfMib: return "endOfMibView";
  }
  return "unknown";
}

void SnmpAgent::register_var(const Oid& oid, Reader reader, Writer writer) {
  tree_[oid] = Var{std::move(reader), std::move(writer)};
}

void SnmpAgent::unregister_subtree(const Oid& prefix) {
  for (auto it = tree_.begin(); it != tree_.end();) {
    if (it->first.has_prefix(prefix))
      it = tree_.erase(it);
    else
      ++it;
  }
}

util::Result<SnmpValue> SnmpAgent::get(const Oid& oid) const {
  ++stats_.gets;
  const auto it = tree_.find(oid);
  if (it == tree_.end())
    return util::Result<SnmpValue>::error(to_string(SnmpError::kNoSuchName) + ": " +
                                          oid.to_string());
  return it->second.reader();
}

util::Result<SnmpAgent::VarBind> SnmpAgent::get_next(const Oid& oid) const {
  ++stats_.gets;
  auto it = tree_.upper_bound(oid);
  if (it == tree_.end())
    return util::Result<VarBind>::error(to_string(SnmpError::kEndOfMib));
  return VarBind{it->first, it->second.reader()};
}

util::Result<SnmpValue> SnmpAgent::set(const Oid& oid, SnmpValue value) {
  ++stats_.sets;
  const auto it = tree_.find(oid);
  if (it == tree_.end())
    return util::Result<SnmpValue>::error(to_string(SnmpError::kNoSuchName) + ": " +
                                          oid.to_string());
  if (!it->second.writer)
    return util::Result<SnmpValue>::error(to_string(SnmpError::kReadOnly) + ": " +
                                          oid.to_string());
  const std::string rejection = it->second.writer(value);
  if (!rejection.empty())
    return util::Result<SnmpValue>::error(to_string(SnmpError::kBadValue) + ": " + rejection);
  return value;
}

void SnmpAgent::notify(const Oid& oid, SnmpValue value) {
  ++stats_.traps;
  const VarBind bind{oid, std::move(value)};
  for (const TrapSink& sink : trap_sinks_) sink(bind);
}

std::vector<SnmpAgent::VarBind> SnmpAgent::walk(const Oid& prefix) const {
  ++stats_.walks;
  std::vector<VarBind> out;
  for (auto it = tree_.lower_bound(prefix); it != tree_.end() && it->first.has_prefix(prefix);
       ++it)
    out.push_back(VarBind{it->first, it->second.reader()});
  return out;
}

}  // namespace harmless::mgmt

#include "mgmt/dialects.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace harmless::mgmt {

namespace {

using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;

/// Shared line-oriented renderer/parser; dialects differ in interface
/// naming, indentation and section separators.
class TextDialect : public Dialect {
 public:
  TextDialect(std::string name, std::string if_prefix, std::string indent, bool bang_separators)
      : name_(std::move(name)),
        if_prefix_(std::move(if_prefix)),
        indent_(std::move(indent)),
        bang_separators_(bang_separators) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::string interface_name(int port_number) const override {
    return if_prefix_ + std::to_string(port_number);
  }

  [[nodiscard]] std::optional<int> parse_interface_name(std::string_view text) const override {
    if (!util::starts_with(text, if_prefix_)) return std::nullopt;
    std::uint64_t number = 0;
    if (!util::parse_u64(text.substr(if_prefix_.size()), number) || number == 0 ||
        number > 4096)
      return std::nullopt;
    return static_cast<int>(number);
  }

  [[nodiscard]] std::string render(const SwitchConfig& config) const override {
    std::ostringstream os;
    os << "hostname " << config.hostname << '\n';
    for (const auto& [number, port] : config.ports) {
      if (bang_separators_) os << "!\n";
      os << "interface " << interface_name(number) << '\n';
      if (!port.description.empty()) os << indent_ << "description " << port.description << '\n';
      if (port.mode == PortMode::kAccess) {
        os << indent_ << "switchport mode access\n";
        os << indent_ << "switchport access vlan " << port.pvid << '\n';
      } else {
        os << indent_ << "switchport mode trunk\n";
        if (!port.allowed_vlans.empty()) {
          std::vector<std::string> vids;
          for (const net::VlanId vid : port.allowed_vlans) vids.push_back(std::to_string(vid));
          os << indent_ << "switchport trunk allowed vlan " << util::join(vids, ",") << '\n';
        }
        if (port.native_vlan)
          os << indent_ << "switchport trunk native vlan " << *port.native_vlan << '\n';
      }
      if (!port.enabled) os << indent_ << "shutdown\n";
    }
    if (bang_separators_) os << "!\n";
    return os.str();
  }

  [[nodiscard]] util::Result<SwitchConfig> parse(const std::string& text) const override {
    SwitchConfig config;
    config.ports.clear();
    PortConfig* current = nullptr;
    int line_number = 0;

    for (const auto& raw_line : util::split(text, '\n')) {
      ++line_number;
      const std::string_view line = util::trim(raw_line);
      if (line.empty() || line == "!" || line == "end") continue;
      const auto words = util::split_ws(line);

      auto fail = [&](const std::string& why) {
        return util::Result<SwitchConfig>::error(
            util::format("%s: line %d: %s: '%.*s'", name_.c_str(), line_number, why.c_str(),
                         static_cast<int>(line.size()), line.data()));
      };

      if (words[0] == "hostname") {
        if (words.size() != 2) return fail("hostname takes one argument");
        config.hostname = words[1];
        continue;
      }
      if (words[0] == "interface") {
        if (words.size() != 2) return fail("interface takes one argument");
        const auto number = parse_interface_name(words[1]);
        if (!number) return fail("unknown interface name");
        current = &config.ports[*number];
        continue;
      }
      if (current == nullptr) return fail("statement outside interface section");

      if (words[0] == "description") {
        if (words.size() < 2) return fail("description needs an argument");
        current->description =
            std::string(util::trim(line.substr(std::string_view("description").size())));
        continue;
      }
      if (words[0] == "shutdown") {
        current->enabled = false;
        continue;
      }
      if (words[0] == "switchport") {
        if (words.size() >= 3 && words[1] == "mode") {
          if (words[2] == "access")
            current->mode = PortMode::kAccess;
          else if (words[2] == "trunk")
            current->mode = PortMode::kTrunk;
          else
            return fail("unknown switchport mode");
          continue;
        }
        if (words.size() == 4 && words[1] == "access" && words[2] == "vlan") {
          std::uint64_t vid = 0;
          if (!util::parse_u64(words[3], vid) ||
              !net::vlan_id_valid(static_cast<net::VlanId>(vid)))
            return fail("bad access vlan");
          current->pvid = static_cast<net::VlanId>(vid);
          continue;
        }
        if (words.size() == 5 && words[1] == "trunk" && words[2] == "allowed" &&
            words[3] == "vlan") {
          current->allowed_vlans.clear();
          for (const auto& part : util::split(words[4], ',')) {
            std::uint64_t vid = 0;
            if (!util::parse_u64(part, vid) ||
                !net::vlan_id_valid(static_cast<net::VlanId>(vid)))
              return fail("bad trunk vlan list");
            current->allowed_vlans.insert(static_cast<net::VlanId>(vid));
          }
          continue;
        }
        if (words.size() == 5 && words[1] == "trunk" && words[2] == "native" &&
            words[3] == "vlan") {
          std::uint64_t vid = 0;
          if (!util::parse_u64(words[4], vid) ||
              !net::vlan_id_valid(static_cast<net::VlanId>(vid)))
            return fail("bad native vlan");
          current->native_vlan = static_cast<net::VlanId>(vid);
          continue;
        }
        return fail("unknown switchport statement");
      }
      return fail("unknown statement");
    }
    return config;
  }

 private:
  std::string name_;
  std::string if_prefix_;
  std::string indent_;
  bool bang_separators_;
};

}  // namespace

std::unique_ptr<Dialect> make_ios_like_dialect() {
  return std::make_unique<TextDialect>("ios_like", "GigabitEthernet0/", " ", true);
}

std::unique_ptr<Dialect> make_eos_like_dialect() {
  return std::make_unique<TextDialect>("eos_like", "Ethernet", "   ", false);
}

std::unique_ptr<Dialect> make_dialect(std::string_view platform) {
  if (platform == "ios_like") return make_ios_like_dialect();
  if (platform == "eos_like") return make_eos_like_dialect();
  return nullptr;
}

}  // namespace harmless::mgmt

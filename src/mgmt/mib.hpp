// mgmt/mib.hpp — the legacy switch's MIB, bound to a live switch model.
//
// Exposes the subset of MIB-II plus a Q-BRIDGE-flavoured VLAN table the
// HARMLESS Manager uses:
//
//   1.3.6.1.2.1.1.1.0        sysDescr          (ro, string)
//   1.3.6.1.2.1.1.5.0        sysName           (ro, string)
//   1.3.6.1.2.1.2.1.0        ifNumber          (ro, int)
//   1.3.6.1.2.1.2.2.1.1.<p>  ifIndex           (ro, int)
//   1.3.6.1.2.1.2.2.1.2.<p>  ifDescr           (ro, string)
//   1.3.6.1.2.1.2.2.1.8.<p>  ifOperStatus      (ro, 1=up 2=down)
//   <ent>.1.1.<p>            portMode          (rw, 1=access 2=trunk)
//   <ent>.1.2.<p>            portPvid          (rw, VLAN id)
//   <ent>.1.3.<p>            portTrunkVlans    (rw, "101,102,...")
//   <ent>.1.4.<p>            portEnabled       (rw, 1/0)
//   <ent>.2.0                commit            (wo, set 1 to apply)
//   <ent>.3.0                stagedDiff        (ro, candidate vs running)
//
// where <ent> = 1.3.6.1.4.1.99999 (a made-up private enterprise arc).
// Writes stage into a candidate SwitchConfig; nothing touches the
// switch until commit, mirroring candidate/commit vendor semantics.
#pragma once

#include <string>

#include "legacy/legacy_switch.hpp"
#include "mgmt/snmp.hpp"

namespace harmless::mgmt {

/// Well-known OIDs (see the table above).
namespace oids {
inline const Oid kSysDescr{1, 3, 6, 1, 2, 1, 1, 1, 0};
inline const Oid kSysName{1, 3, 6, 1, 2, 1, 1, 5, 0};
inline const Oid kIfNumber{1, 3, 6, 1, 2, 1, 2, 1, 0};
inline const Oid kIfTable{1, 3, 6, 1, 2, 1, 2, 2, 1};
inline const Oid kEnterprise{1, 3, 6, 1, 4, 1, 99999};
}  // namespace oids

class SwitchMib {
 public:
  /// Registers every variable on `agent`; both references must outlive
  /// the MIB binding.
  SwitchMib(SnmpAgent& agent, legacy::LegacySwitch& device);
  ~SwitchMib();

  SwitchMib(const SwitchMib&) = delete;
  SwitchMib& operator=(const SwitchMib&) = delete;

  /// The candidate config writes are staged into (copy of running at
  /// bind time / after each commit).
  [[nodiscard]] const legacy::SwitchConfig& candidate() const { return candidate_; }

  /// Number of commits applied through the MIB.
  [[nodiscard]] int commits() const { return commits_; }

 private:
  void register_all();
  std::string stage_port_field(int port_number, int field, const SnmpValue& value);
  std::string do_commit(const SnmpValue& value);

  SnmpAgent& agent_;
  legacy::LegacySwitch& device_;
  legacy::SwitchConfig candidate_;
  int commits_ = 0;
};

}  // namespace harmless::mgmt

#include "mgmt/mib.hpp"

#include "util/diff.hpp"
#include "util/strings.hpp"

namespace harmless::mgmt {

namespace {

/// Parse "101,102,107" into a VLAN set; empty string -> empty set.
util::Result<std::set<net::VlanId>> parse_vlan_list(const std::string& text) {
  std::set<net::VlanId> out;
  if (util::trim(text).empty()) return out;
  for (const auto& part : util::split(text, ',')) {
    std::uint64_t vid = 0;
    if (!util::parse_u64(std::string(util::trim(part)), vid) ||
        !net::vlan_id_valid(static_cast<net::VlanId>(vid)))
      return util::Result<std::set<net::VlanId>>::error("bad VLAN id '" + part + "'");
    out.insert(static_cast<net::VlanId>(vid));
  }
  return out;
}

std::string render_vlan_list(const std::set<net::VlanId>& vlans) {
  std::vector<std::string> parts;
  for (const net::VlanId vid : vlans) parts.push_back(std::to_string(vid));
  return util::join(parts, ",");
}

}  // namespace

SwitchMib::SwitchMib(SnmpAgent& agent, legacy::LegacySwitch& device)
    : agent_(agent), device_(device), candidate_(device.config()) {
  register_all();
}

SwitchMib::~SwitchMib() {
  agent_.unregister_subtree(Oid{1, 3, 6, 1});
}

void SwitchMib::register_all() {
  agent_.register_var(oids::kSysDescr, [this] {
    return SnmpValue{std::string("HARMLESS emulated legacy Ethernet switch (802.1Q), ") +
                     std::to_string(device_.config().ports.size()) + " ports"};
  });
  agent_.register_var(oids::kSysName,
                      [this] { return SnmpValue{device_.config().hostname}; });
  agent_.register_var(oids::kIfNumber, [this] {
    return SnmpValue{static_cast<std::int64_t>(device_.config().ports.size())};
  });

  for (const auto& [number, port] : device_.config().ports) {
    (void)port;
    const auto p = static_cast<std::uint32_t>(number);
    const int port_number = number;
    agent_.register_var(oids::kIfTable.child({1, p}),
                        [port_number] { return SnmpValue{std::int64_t{port_number}}; });
    agent_.register_var(oids::kIfTable.child({2, p}), [this, port_number] {
      const auto& cfg = device_.config().ports.at(port_number);
      return SnmpValue{cfg.description.empty() ? "port" + std::to_string(port_number)
                                               : cfg.description};
    });
    agent_.register_var(oids::kIfTable.child({8, p}), [this, port_number] {
      return SnmpValue{std::int64_t{device_.config().ports.at(port_number).enabled ? 1 : 2}};
    });

    // Writable VLAN config columns (staged).
    for (int field = 1; field <= 4; ++field) {
      agent_.register_var(
          oids::kEnterprise.child({1, static_cast<std::uint32_t>(field), p}),
          // Reads reflect the *running* config (operational state, as on
          // real gear); writes stage into the candidate.
          [this, port_number, field]() -> SnmpValue {
            const auto& cfg = device_.config().ports.at(port_number);
            switch (field) {
              case 1: return std::int64_t{cfg.mode == legacy::PortMode::kAccess ? 1 : 2};
              case 2: return std::int64_t{cfg.pvid};
              case 3: return render_vlan_list(cfg.allowed_vlans);
              default: return std::int64_t{cfg.enabled ? 1 : 0};
            }
          },
          [this, port_number, field](const SnmpValue& value) {
            return stage_port_field(port_number, field, value);
          });
    }
  }

  agent_.register_var(
      oids::kEnterprise.child({2, 0}), [] { return SnmpValue{std::int64_t{0}}; },
      [this](const SnmpValue& value) { return do_commit(value); });

  agent_.register_var(oids::kEnterprise.child({3, 0}), [this]() -> SnmpValue {
    // Candidate-vs-running as a proper line diff (what an operator
    // reviews before committing).
    return util::line_diff(device_.config().to_text(), candidate_.to_text(), /*context=*/1);
  });
}

std::string SwitchMib::stage_port_field(int port_number, int field, const SnmpValue& value) {
  auto& cfg = candidate_.ports[port_number];
  switch (field) {
    case 1: {
      const auto* mode = std::get_if<std::int64_t>(&value);
      if (!mode || (*mode != 1 && *mode != 2)) return "portMode must be 1 or 2";
      cfg.mode = (*mode == 1) ? legacy::PortMode::kAccess : legacy::PortMode::kTrunk;
      return {};
    }
    case 2: {
      const auto* pvid = std::get_if<std::int64_t>(&value);
      if (!pvid || !net::vlan_id_valid(static_cast<net::VlanId>(*pvid)))
        return "portPvid out of range";
      cfg.pvid = static_cast<net::VlanId>(*pvid);
      return {};
    }
    case 3: {
      const auto* text = std::get_if<std::string>(&value);
      if (!text) return "portTrunkVlans must be a string";
      auto vlans = parse_vlan_list(*text);
      if (!vlans) return vlans.message();
      cfg.allowed_vlans = std::move(vlans.value());
      return {};
    }
    default: {
      const auto* enabled = std::get_if<std::int64_t>(&value);
      if (!enabled || (*enabled != 0 && *enabled != 1)) return "portEnabled must be 0 or 1";
      cfg.enabled = (*enabled == 1);
      return {};
    }
  }
}

std::string SwitchMib::do_commit(const SnmpValue& value) {
  const auto* flag = std::get_if<std::int64_t>(&value);
  if (!flag || *flag != 1) return "write 1 to commit";
  const util::Status valid = candidate_.validate();
  if (!valid.is_ok()) return "candidate invalid: " + valid.message();
  device_.apply_config(candidate_);
  candidate_ = device_.config();
  ++commits_;
  // configCommitted trap: <enterprise>.0.1 carrying the commit count.
  agent_.notify(oids::kEnterprise.child({0, 1}), std::int64_t{commits_});
  return {};
}

}  // namespace harmless::mgmt

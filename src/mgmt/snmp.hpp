// mgmt/snmp.hpp — an in-process SNMP agent.
//
// Models the protocol surface the HARMLESS Manager needs: GET, SET,
// GETNEXT and WALK against an OID-ordered tree of variables. Variables
// are registered with read callbacks (values computed from live switch
// state) and optional write callbacks (SETs staged into a candidate
// config). Wire encoding (BER) is out of scope: the transport in this
// reproduction is a function call, the semantics are SNMP's.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "mgmt/oid.hpp"
#include "util/result.hpp"

namespace harmless::mgmt {

/// INTEGER / OCTET STRING are all our MIB needs.
using SnmpValue = std::variant<std::int64_t, std::string>;

std::string snmp_value_to_string(const SnmpValue& value);

enum class SnmpError {
  kNoSuchName,   // OID not in the MIB
  kReadOnly,     // SET on a read-only variable
  kBadValue,     // write callback rejected the value
  kEndOfMib,     // GETNEXT walked past the last variable
};

std::string to_string(SnmpError error);

class SnmpAgent {
 public:
  using Reader = std::function<SnmpValue()>;
  /// Returns an error message to reject the SET, empty to accept.
  using Writer = std::function<std::string(const SnmpValue&)>;

  /// Register a variable. Writer may be null (read-only variable).
  void register_var(const Oid& oid, Reader reader, Writer writer = nullptr);
  void unregister_subtree(const Oid& prefix);

  struct VarBind {
    Oid oid;
    SnmpValue value;
  };

  [[nodiscard]] util::Result<SnmpValue> get(const Oid& oid) const;
  [[nodiscard]] util::Result<VarBind> get_next(const Oid& oid) const;
  [[nodiscard]] util::Result<SnmpValue> set(const Oid& oid, SnmpValue value);

  // ---- notifications (SNMP traps) ----
  /// Register a trap receiver; all receivers see every trap.
  using TrapSink = std::function<void(const VarBind&)>;
  void add_trap_sink(TrapSink sink) { trap_sinks_.push_back(std::move(sink)); }
  /// Emit a trap (called by MIB implementations, e.g. on config commit).
  void notify(const Oid& oid, SnmpValue value);

  /// All variables under `prefix`, in OID order (SNMP walk).
  [[nodiscard]] std::vector<VarBind> walk(const Oid& prefix) const;

  /// Request counters, visible in the examples' status output.
  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t sets = 0;
    std::uint64_t walks = 0;
    std::uint64_t traps = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Var {
    Reader reader;
    Writer writer;
  };
  std::map<Oid, Var> tree_;
  std::vector<TrapSink> trap_sinks_;
  mutable Stats stats_;
};

}  // namespace harmless::mgmt

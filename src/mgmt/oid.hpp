// mgmt/oid.hpp — SNMP object identifiers.
//
// An Oid is a sequence of unsigned arcs ("1.3.6.1.2.1.1.1.0").
// Lexicographic ordering over arcs is what GETNEXT walks.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace harmless::mgmt {

class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parse dotted notation; nullopt on malformed text.
  static std::optional<Oid> parse(std::string_view text);

  [[nodiscard]] const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  [[nodiscard]] std::size_t size() const { return arcs_.size(); }
  [[nodiscard]] bool empty() const { return arcs_.empty(); }

  /// This OID extended with extra arcs: sysDescr + {0}.
  [[nodiscard]] Oid child(std::initializer_list<std::uint32_t> suffix) const;
  [[nodiscard]] Oid child(std::uint32_t arc) const { return child({arc}); }

  /// True if `prefix` is a (non-strict) prefix of this OID.
  [[nodiscard]] bool has_prefix(const Oid& prefix) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Oid&, const Oid&) = default;
  friend std::strong_ordering operator<=>(const Oid& a, const Oid& b) {
    const std::size_t n = std::min(a.arcs_.size(), b.arcs_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.arcs_[i] != b.arcs_[i]) return a.arcs_[i] <=> b.arcs_[i];
    }
    return a.arcs_.size() <=> b.arcs_.size();
  }

 private:
  std::vector<std::uint32_t> arcs_;
};

}  // namespace harmless::mgmt

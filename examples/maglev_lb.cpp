// maglev_lb — consistent-hash load balancing with connection
// affinity: a Maglev lookup table spreads new connections across
// backends; conntrack pins every live connection to the backend it
// started on, so draining a backend never breaks connections in
// flight.
//
//   $ ./maglev_lb [clients]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "controller/apps/maglev.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;

int main(int argc, char** argv) {
  const std::uint32_t clients = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 90;
  std::printf("== Maglev LB with conntrack affinity: %u clients, 3 backends ==\n\n", clients);

  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("lb", 0x1B, 4);
  sw.enable_conntrack(openflow::CtConfig{});
  openflow::ControlChannel channel(network.engine(), 10'000);
  sw.attach_channel(channel);

  auto& uplink =
      network.add_host("uplink", net::MacAddr::from_u64(0x02), net::Ipv4Addr(172, 16, 0, 254));
  network.connect(uplink, 0, sw, 0, sim::LinkSpec::gbps(1));
  std::vector<sim::Host*> backends;
  for (int i = 0; i < 3; ++i) {
    auto& backend = network.add_host("web" + std::to_string(i + 1),
                                     net::MacAddr::from_u64(0x02000000b001ULL + i),
                                     net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(10 + i)));
    network.connect(backend, 0, sw, static_cast<std::size_t>(i + 1), sim::LinkSpec::gbps(1));
    backend.serve_http(80);
    backends.push_back(&backend);
  }

  controller::MaglevConfig lb;
  lb.vip = net::Ipv4Addr(10, 0, 0, 100);
  lb.vip_mac = net::MacAddr::from_u64(0x02000000deadULL);
  lb.client_ports = {1};
  for (std::size_t i = 0; i < backends.size(); ++i)
    lb.backends.push_back(controller::MaglevBackend{backends[i]->name(), backends[i]->mac(),
                                                    backends[i]->ip(),
                                                    static_cast<std::uint32_t>(i + 2)});
  controller::Controller ctrl("maglev-controller");
  auto& app = ctrl.add_app<controller::MaglevLbApp>(lb);
  ctrl.connect(channel, "lb");
  network.run();

  auto client_flow = [&](std::uint32_t client) {
    net::FlowKey key;
    key.eth_src = uplink.mac();
    key.eth_dst = lb.vip_mac;
    key.ip_src = net::Ipv4Addr(0xac100000u + client);
    key.ip_dst = lb.vip;
    key.src_port = static_cast<std::uint16_t>(20000 + (client % 40000));
    key.dst_port = 80;
    return key;
  };
  // SYN opens the connection (the group's ct_dnat commits the
  // client->backend mapping); the GET rides the affinity rule.
  auto open_and_get = [&](std::uint32_t client) {
    const net::FlowKey key = client_flow(client);
    uplink.send(net::make_tcp(key, net::kTcpSyn));
    uplink.send(net::make_http_get(key, "vip.shop.example"));
  };
  for (sim::Host* backend : backends) backend->set_rx_log_capacity(1024);

  // The whole scenario runs as one event schedule: connections idle
  // out (and the engine only drains) once nothing references them
  // anymore, so the drain + follow-up must happen while the first
  // wave's connections are still live.
  for (std::uint32_t client = 1; client <= clients; ++client) {
    network.engine().schedule_at(static_cast<sim::SimNanos>(client) * 10'000,
                                 [&, client] { open_and_get(client); });
  }

  std::uint64_t round1_served[3] = {};
  std::uint64_t ok_round1 = 0;
  std::uint32_t pinned_client = 0;
  std::uint64_t web3_before_follow_up = 0;
  const sim::SimNanos wave_end = static_cast<sim::SimNanos>(clients + 50) * 10'000;

  // t = wave_end: snapshot round 1, pick a client pinned to web3 and
  // drain web3 from the pool.
  network.engine().schedule_at(wave_end, [&] {
    for (int i = 0; i < 3; ++i) round1_served[i] = backends[i]->counters().http_requests_served;
    ok_round1 = uplink.counters().http_ok_received;
    for (std::uint32_t client = 1; client <= clients && pinned_client == 0; ++client) {
      for (const net::ParsedPacket& rx : backends[2]->rx_log())
        if (rx.ipv4 && rx.ipv4->src == client_flow(client).ip_src) {
          pinned_client = client;
          break;
        }
    }
    app.set_backends(*ctrl.sessions().front(),
                     {lb.backends[0], lb.backends[1]});  // web3 removed
  });

  // t = wave_end + 1ms: the pinned client sends another request on its
  // live connection — the stored DNAT mapping still routes it to web3
  // even though the group no longer lists it.
  network.engine().schedule_at(wave_end + 1'000'000, [&] {
    web3_before_follow_up = backends[2]->counters().http_requests_served;
    uplink.send(net::make_http_get(client_flow(pinned_client), "vip.shop.example"));
  });

  // t = wave_end + 2ms ...: a second wave of brand-new clients — none
  // of them may land on the drained backend.
  std::uint64_t web3_at_wave2 = 0;
  network.engine().schedule_at(wave_end + 2'000'000,
                               [&] { web3_at_wave2 = backends[2]->counters().http_requests_served; });
  for (std::uint32_t client = 1; client <= clients; ++client) {
    network.engine().schedule_at(wave_end + 2'000'000 + static_cast<sim::SimNanos>(client) * 10'000,
                                 [&, client] { open_and_get(clients + client); });
  }
  network.run();

  auto print_shares = [&](const char* title) {
    util::Table table({"backend", "requests served", "share"});
    std::uint64_t total = 0;
    for (sim::Host* backend : backends) total += backend->counters().http_requests_served;
    for (sim::Host* backend : backends) {
      const auto served = backend->counters().http_requests_served;
      table.add_row({backend->name(), std::to_string(served),
                     util::format("%.1f%%", total ? 100.0 * served / total : 0.0)});
    }
    std::puts(title);
    std::cout << table.to_string() << '\n';
  };

  {
    util::Table table({"backend", "round-1 served", "share"});
    std::uint64_t total = 0;
    for (int i = 0; i < 3; ++i) total += round1_served[i];
    for (int i = 0; i < 3; ++i)
      table.add_row({backends[static_cast<std::size_t>(i)]->name(),
                     std::to_string(round1_served[i]),
                     util::format("%.1f%%", total ? 100.0 * round1_served[i] / total : 0.0)});
    std::puts("Initial spread (Maglev table, one connection per client):");
    std::cout << table.to_string() << '\n';
  }
  std::printf("clients=%u 200s=%llu\n\n", clients, static_cast<unsigned long long>(ok_round1));
  std::printf("Drained web3 while client %u had a live connection there.\n", pinned_client);

  const bool affinity_held =
      backends[2]->counters().http_requests_served >= web3_before_follow_up + 1 &&
      web3_at_wave2 == web3_before_follow_up + 1;
  std::printf("Existing connection after drain: %s\n",
              affinity_held ? "still served by web3 (affinity held)" : "MOVED (affinity broken)");

  const bool drained = backends[2]->counters().http_requests_served == web3_at_wave2;
  print_shares("\nFinal spread after the second wave (web3 drained):");
  std::printf("web3 new connections after drain: %s\n",
              drained ? "none (good)" : "STILL RECEIVING (bad)");

  const auto counters = sw.counters();
  std::printf("\nconntrack: %zu live connections, %llu created\n", counters.ct_connections,
              static_cast<unsigned long long>(counters.ct_created));

  const bool ok = ok_round1 == clients && affinity_held && drained;
  return ok ? 0 : 1;
}

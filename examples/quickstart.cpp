// quickstart — the paper's demo, end to end, in one file.
//
// Builds a factory-default 5-port legacy Ethernet switch with four
// hosts, migrates it to OpenFlow with the HARMLESS Manager (through
// the emulated SNMP/NAPALM management plane), attaches an SDN
// controller running a learning-switch app, and shows Host 1 pinging
// Host 2 across the tag-and-hairpin path of Fig. 1.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "controller/apps/learning.hpp"
#include "harmless/manager.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

using namespace harmless;

int main() {
  std::puts("== HARMLESS quickstart: migrating a dumb legacy switch to SDN ==\n");

  // --- 1. The legacy estate: a 5-port access switch, everything VLAN 1.
  sim::Network network;
  legacy::SwitchConfig factory;
  factory.hostname = "closet-sw-1";
  for (int port = 1; port <= 5; ++port)
    factory.ports[port] = legacy::PortConfig{};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", factory);

  std::vector<sim::Host*> hosts;
  for (int i = 0; i < 4; ++i) {
    auto& host = network.add_host(
        "Host" + std::to_string(i + 1), net::MacAddr::from_u64(0x020000000001ULL + i),
        net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
    network.connect(host, 0, device, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    hosts.push_back(&host);
  }

  // --- 2. Its management plane: an SNMP agent + a NAPALM-style driver.
  mgmt::SnmpAgent agent;
  mgmt::SwitchMib mib(agent, device);
  mgmt::SnmpDriver driver(agent, mgmt::make_ios_like_dialect());

  // --- 3. An SDN controller with a classic learning-switch app.
  controller::Controller ctrl("demo-controller");
  ctrl.add_app<controller::LearningSwitchApp>();

  // --- 4. Run the migration (discover -> plan -> render -> commit ->
  //         verify -> instantiate S4 -> connect controller).
  core::HarmlessManager manager(driver, device, network);
  core::MigrationRequest request;
  request.access_ports = {1, 2, 3, 4};
  request.trunk_port = 5;
  // The S4 box's ingress: per-port RX queues arbitrated by byte-fair
  // deficit round-robin, so no single legacy port can head-of-line
  // block its neighbours through the soft switches.
  request.fabric.ingress.scheduler.kind = sim::SchedulerKind::kDrr;
  request.fabric.ingress.port_queue_capacity = 256;

  auto [report, deployment] = manager.migrate(request, ctrl);
  std::cout << report.to_string() << '\n';
  if (!report.success) return 1;

  std::cout << "Rendered " << driver.platform() << " config pushed to the device:\n"
            << report.rendered_config << '\n';
  std::cout << deployment->fabric().translator_rules().to_string() << '\n';

  network.run();  // let the OF handshake finish

  // --- 5. Prove the data path: ARP, then ping, then UDP.
  std::puts("Host1 resolves and pings Host2 across the hairpin path:");
  hosts[0]->arp_request(hosts[1]->ip());
  network.run();

  net::FlowKey key;
  key.eth_src = hosts[0]->mac();
  key.eth_dst = hosts[1]->mac();
  key.ip_src = hosts[0]->ip();
  key.ip_dst = hosts[1]->ip();
  hosts[0]->send(net::make_icmp_echo(key, /*request=*/true, 1, 1));
  key.dst_port = 9000;
  hosts[0]->send(net::make_udp(key, 256));
  network.run();

  std::printf("  Host1: arp replies=%llu  echo replies=%llu\n",
              static_cast<unsigned long long>(hosts[0]->counters().rx_arp_reply),
              static_cast<unsigned long long>(hosts[0]->counters().rx_icmp_echo_reply));
  std::printf("  Host2: packets received=%llu (udp=%llu)\n",
              static_cast<unsigned long long>(hosts[1]->counters().rx_total),
              static_cast<unsigned long long>(hosts[1]->counters().rx_udp));

  auto& fabric = deployment->fabric();
  std::printf("\nDatapath activity: legacy fwd=%llu flood=%llu | SS_1 runs=%llu | SS_2 runs=%llu punts=%llu\n",
              static_cast<unsigned long long>(device.counters().forwarded),
              static_cast<unsigned long long>(device.counters().flooded),
              static_cast<unsigned long long>(fabric.ss1().counters().pipeline_runs),
              static_cast<unsigned long long>(fabric.ss2().counters().pipeline_runs),
              static_cast<unsigned long long>(fabric.ss2().counters().packet_ins));
  std::printf("Ingress: %s over %llu per-port rx queues (SS_2), %llu drops\n",
              fabric.ss2().scheduler().name(),
              static_cast<unsigned long long>(fabric.ss2().rx_queue_count()),
              static_cast<unsigned long long>(fabric.ss2().queue_drops()));

  const bool ok = hosts[0]->counters().rx_icmp_echo_reply == 1 &&
                  hosts[1]->counters().rx_udp == 1 &&
                  fabric.ss1().queue_drops() == 0 && fabric.ss2().queue_drops() == 0;
  std::puts(ok ? "\nquickstart: OK — the legacy switch is now an OpenFlow switch."
               : "\nquickstart: FAILED");
  return ok ? 0 : 1;
}

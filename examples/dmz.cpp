// dmz — use case (b) of the paper: "implement and fine-tune VM-level
// access policies in a multi-tenant cloud using OF" on a migrated
// legacy switch: pairwise default-deny, plus a runtime policy edit.
//
//   $ ./dmz
#include <cstdio>
#include <iostream>

#include "controller/apps/dmz.hpp"
#include "harmless/fabric.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;

namespace {

net::Packet udp_between(sim::Host& from, sim::Host& to) {
  net::FlowKey key;
  key.eth_src = from.mac();
  key.eth_dst = to.mac();
  key.ip_src = from.ip();
  key.ip_dst = to.ip();
  key.dst_port = 5000;
  return net::make_udp(key, 128);
}

}  // namespace

int main() {
  std::puts("== HARMLESS DMZ: VM-level access policy on a legacy switch ==\n");

  sim::Network network;
  legacy::SwitchConfig config;
  config.hostname = "dmz-legacy";
  std::set<net::VlanId> vlans;
  for (int port = 1; port <= 4; ++port) {
    config.ports[port] = legacy::PortConfig{legacy::PortMode::kAccess,
                                            static_cast<net::VlanId>(100 + port),
                                            {},
                                            std::nullopt,
                                            true,
                                            ""};
    vlans.insert(static_cast<net::VlanId>(100 + port));
  }
  config.ports[5] = legacy::PortConfig{legacy::PortMode::kTrunk, 1, vlans, std::nullopt, true, ""};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);

  std::vector<sim::Host*> vms;
  for (int i = 0; i < 4; ++i) {
    auto& vm = network.add_host("vm" + std::to_string(i + 1),
                                net::MacAddr::from_u64(0x0200000000a1ULL + i),
                                net::Ipv4Addr(10, 20, 0, static_cast<std::uint8_t>(i + 1)));
    network.connect(vm, 0, device, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    vms.push_back(&vm);
  }

  auto map = core::PortMap::make({1, 2, 3, 4}, 5);
  auto fabric = core::Fabric::build(network, device, *map);

  controller::DmzPolicy policy;
  for (int i = 0; i < 4; ++i)
    policy.hosts.push_back(
        controller::DmzHost{"vm" + std::to_string(i + 1), vms[static_cast<std::size_t>(i)]->ip(),
                            static_cast<std::uint32_t>(i + 1)});
  policy.allowed_pairs = {{"vm1", "vm2"}};  // the Fig.-1 "DMZ" row
  policy.exposed_services = {{"vm4", 80}};  // vm4 is the shared web VM

  controller::Controller ctrl("dmz-controller");
  auto& app = ctrl.add_app<controller::DmzPolicyApp>(policy);
  ctrl.connect(fabric.control_channel(), "SS_2");
  network.run();
  vms[3]->serve_http(80);

  // Probe every ordered pair, one packet at a time, and tabulate what
  // the policy let through.
  auto probe_matrix = [&](const char* title) {
    util::Table table({"pair", "delivered"});
    std::puts(title);
    for (int from = 0; from < 4; ++from)
      for (int to = 0; to < 4; ++to) {
        if (from == to) continue;
        const auto rx0 = vms[static_cast<std::size_t>(to)]->counters().rx_udp;
        vms[static_cast<std::size_t>(from)]->send(
            udp_between(*vms[static_cast<std::size_t>(from)], *vms[static_cast<std::size_t>(to)]));
        network.run();
        const bool delivered = vms[static_cast<std::size_t>(to)]->counters().rx_udp > rx0;
        table.add_row({util::format("vm%d -> vm%d", from + 1, to + 1),
                       delivered ? "yes" : "-"});
      }
    std::cout << table.to_string() << '\n';
  };

  probe_matrix("Initial policy: only vm1 <-> vm2 allowed:");

  // "Fine-tune on the fly": allow vm1 <-> vm3 without touching the
  // legacy switch — one OF rule pair.
  std::puts("Operator allows vm1 <-> vm3 at runtime...\n");
  app.allow_pair(*ctrl.sessions().front(), "vm1", "vm3");
  network.run();
  probe_matrix("After the runtime edit:");

  // The exposed web service works for everyone.
  vms[0]->http_get(vms[3]->mac(), vms[3]->ip(), "dmz.web.example");
  vms[2]->http_get(vms[3]->mac(), vms[3]->ip(), "dmz.web.example");
  network.run();
  std::printf("Exposed service vm4:80 served %llu requests (vm1+vm3).\n",
              static_cast<unsigned long long>(vms[3]->counters().http_requests_served));
  return 0;
}

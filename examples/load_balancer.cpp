// load_balancer — use case (a) of the paper: "equally distribute
// ingress web traffic between multiple backends based on matching of
// the source IP address", in-network, on a migrated legacy switch.
//
//   $ ./load_balancer [clients]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "controller/apps/load_balancer.hpp"
#include "harmless/fabric.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;

int main(int argc, char** argv) {
  const std::uint32_t clients = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 300;
  std::printf("== HARMLESS load balancer: %u clients across 3 backends ==\n\n", clients);

  // Legacy switch with the HARMLESS VLAN layout: port 1 = uplink where
  // client traffic enters, ports 2-4 = web backends, port 5 = trunk.
  sim::Network network;
  legacy::SwitchConfig config;
  config.hostname = "lb-legacy";
  std::set<net::VlanId> vlans;
  for (int port = 1; port <= 4; ++port) {
    config.ports[port] = legacy::PortConfig{legacy::PortMode::kAccess,
                                            static_cast<net::VlanId>(100 + port),
                                            {},
                                            std::nullopt,
                                            true,
                                            ""};
    vlans.insert(static_cast<net::VlanId>(100 + port));
  }
  config.ports[5] = legacy::PortConfig{legacy::PortMode::kTrunk, 1, vlans, std::nullopt, true, ""};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);

  auto& uplink = network.add_host("uplink", net::MacAddr::from_u64(0x02u), net::Ipv4Addr(172, 16, 0, 254));
  network.connect(uplink, 0, device, 0, sim::LinkSpec::gbps(1));
  std::vector<sim::Host*> backends;
  for (int i = 0; i < 3; ++i) {
    auto& backend = network.add_host("web" + std::to_string(i + 1),
                                     net::MacAddr::from_u64(0x02000000b001ULL + i),
                                     net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(10 + i)));
    network.connect(backend, 0, device, static_cast<std::size_t>(i + 1), sim::LinkSpec::gbps(1));
    backend.serve_http(80);
    backends.push_back(&backend);
  }

  // HARMLESS-S4 around it.
  auto map = core::PortMap::make({1, 2, 3, 4}, 5);
  auto fabric = core::Fabric::build(network, device, *map);

  // The LB app: VIP 10.0.0.100:80 -> the three backends.
  controller::LoadBalancerConfig lb;
  lb.vip = net::Ipv4Addr(10, 0, 0, 100);
  lb.vip_mac = net::MacAddr::from_u64(0x02000000dead);
  lb.service_port = 80;
  lb.client_ports = {1};
  for (std::size_t i = 0; i < backends.size(); ++i)
    lb.backends.push_back(controller::Backend{backends[i]->mac(), backends[i]->ip(),
                                              static_cast<std::uint32_t>(i + 2), 1});
  controller::Controller ctrl("lb-controller");
  ctrl.add_app<controller::LoadBalancerApp>(lb);
  ctrl.connect(fabric.control_channel(), "SS_2");
  network.run();

  // Fire one HTTP GET per client source IP, paced at 5 us so the
  // uplink NIC queue never overflows (clients arrive over time, not as
  // one line-rate burst).
  for (std::uint32_t client = 1; client <= clients; ++client) {
    network.engine().schedule_at(static_cast<sim::SimNanos>(client) * 5'000, [&, client] {
      net::FlowKey key;
      key.eth_src = uplink.mac();
      key.eth_dst = lb.vip_mac;
      key.ip_src = net::Ipv4Addr(0xac100000u + client);
      key.ip_dst = lb.vip;
      key.src_port = static_cast<std::uint16_t>(20000 + (client % 40000));
      key.dst_port = 80;
      uplink.send(net::make_http_get(key, "vip.shop.example"));
    });
  }
  network.run();

  util::Table table({"backend", "requests served", "share"});
  std::uint64_t total = 0;
  for (sim::Host* backend : backends) total += backend->counters().http_requests_served;
  for (sim::Host* backend : backends) {
    const auto served = backend->counters().http_requests_served;
    table.add_row({backend->name(), std::to_string(served),
                   util::format("%.1f%%", total ? 100.0 * served / total : 0.0)});
  }
  std::cout << table.to_string();
  std::printf("\nclients=%u served=%llu 200s-at-uplink=%llu (VIP masquerade verified: %s)\n",
              clients, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(uplink.counters().http_ok_received),
              uplink.counters().http_ok_received == clients ? "yes" : "NO");
  return uplink.counters().http_ok_received == clients ? 0 : 1;
}

// snat_gateway — the conntrack tier as a NAT gateway: two inside
// hosts behind one external address, per-connection external ports
// allocated by the tracker, replies translated back, unsolicited
// inbound dropped.
//
//   $ ./snat_gateway
#include <cstdio>
#include <iostream>

#include "controller/apps/nat.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/table.hpp"

using namespace harmless;

int main() {
  std::puts("== Source NAT gateway on the stateful conntrack tier ==\n");

  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("natgw", 0x0A, 3);
  sw.enable_conntrack(openflow::CtConfig{});
  openflow::ControlChannel channel(network.engine(), 10'000);
  sw.attach_channel(channel);

  auto& h1 = network.add_host("h1", net::MacAddr::from_u64(0x11), net::Ipv4Addr(10, 0, 0, 1));
  auto& h2 = network.add_host("h2", net::MacAddr::from_u64(0x12), net::Ipv4Addr(10, 0, 0, 2));
  auto& server =
      network.add_host("server", net::MacAddr::from_u64(0x99), net::Ipv4Addr(198, 51, 100, 7));
  network.connect(h1, 0, sw, 0, sim::LinkSpec::gbps(1));
  network.connect(h2, 0, sw, 1, sim::LinkSpec::gbps(1));
  network.connect(server, 0, sw, 2, sim::LinkSpec::gbps(1));
  server.serve_http(80);

  controller::SourceNatConfig nat;
  nat.external_ip = net::Ipv4Addr(203, 0, 113, 1);
  nat.outside_port = 3;
  nat.outside_mac = server.mac();
  nat.inside = {{"h1", h1.mac(), h1.ip(), 1}, {"h2", h2.mac(), h2.ip(), 2}};
  controller::Controller ctrl("nat-controller");
  ctrl.add_app<controller::SourceNatApp>(nat);
  ctrl.connect(channel, "natgw");
  network.run();

  // Each inside host opens a TCP connection (SYN, then the request —
  // conntrack refuses to create connections from mid-stream segments)
  // and fetches a page from the outside server.
  auto fetch = [&](sim::Host& host, std::uint16_t src_port) {
    net::FlowKey key;
    key.eth_src = host.mac();
    key.eth_dst = server.mac();
    key.ip_src = host.ip();
    key.ip_dst = server.ip();
    key.src_port = src_port;
    key.dst_port = 80;
    host.send(net::make_tcp(key, net::kTcpSyn));
    host.send(net::make_http_get(key, "nat.example"));
  };
  fetch(h1, 40001);
  fetch(h2, 40001);  // same private port on purpose: NAT must disambiguate
  network.run();

  util::Table table({"client", "HTTP 200 received", "server saw source"});
  for (const net::ParsedPacket& rx : server.rx_log()) {
    if (!rx.ipv4 || !rx.tcp) continue;
    table.add_row({rx.ipv4->src == nat.external_ip ? "(translated)" : "(LEAKED private!)",
                   "-", rx.ipv4->src.to_string() + ":" + std::to_string(rx.src_port())});
  }
  table.add_row({"h1", h1.counters().http_ok_received == 1 ? "yes" : "NO", "-"});
  table.add_row({"h2", h2.counters().http_ok_received == 1 ? "yes" : "NO", "-"});
  std::cout << table.to_string() << '\n';

  // Unsolicited inbound to the external address: no connection owns
  // that port, so the default-deny drops it at the NAT boundary.
  const auto h1_rx_before = h1.counters().rx_total;
  net::FlowKey probe;
  probe.eth_src = server.mac();
  probe.eth_dst = net::MacAddr::from_u64(0x0A);
  probe.ip_src = server.ip();
  probe.ip_dst = nat.external_ip;
  probe.src_port = 12345;
  probe.dst_port = 49700;
  server.send(net::make_tcp(probe, net::kTcpSyn));
  network.run();
  std::printf("Unsolicited inbound SYN to %s: %s\n", nat.external_ip.to_string().c_str(),
              h1.counters().rx_total == h1_rx_before ? "dropped (good)" : "DELIVERED (bad)");

  const auto counters = sw.counters();
  std::printf(
      "\nconntrack: %zu live connections, %llu created, %llu NAT ports allocated, "
      "%llu lookups (%llu hits)\n",
      counters.ct_connections, static_cast<unsigned long long>(counters.ct_created),
      static_cast<unsigned long long>(counters.ct_nat_allocated),
      static_cast<unsigned long long>(counters.ct_lookups),
      static_cast<unsigned long long>(counters.ct_hits));

  const bool ok = h1.counters().http_ok_received == 1 && h2.counters().http_ok_received == 1 &&
                  h1.counters().rx_total == h1_rx_before && counters.ct_nat_allocated == 2;
  return ok ? 0 : 1;
}

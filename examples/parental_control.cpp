// parental_control — use case (c) of the paper: "selectively deny
// access to specific users to certain web pages on-the-fly".
//
// Two users behind a migrated legacy switch share a web server. The
// kid's machine is blocked from games.example; the first offending GET
// is answered with an HTTP 403 straight from the control plane and a
// drop flow is pushed into the data plane.
//
//   $ ./parental_control
#include <cstdio>
#include <iostream>

#include "controller/apps/learning.hpp"
#include "controller/apps/parental.hpp"
#include "harmless/fabric.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

using namespace harmless;

int main() {
  std::puts("== HARMLESS parental control: per-user HTTP host blocking ==\n");

  sim::Network network;
  legacy::SwitchConfig config;
  config.hostname = "home-legacy";
  std::set<net::VlanId> vlans;
  for (int port = 1; port <= 3; ++port) {
    config.ports[port] = legacy::PortConfig{legacy::PortMode::kAccess,
                                            static_cast<net::VlanId>(100 + port),
                                            {},
                                            std::nullopt,
                                            true,
                                            ""};
    vlans.insert(static_cast<net::VlanId>(100 + port));
  }
  config.ports[4] = legacy::PortConfig{legacy::PortMode::kTrunk, 1, vlans, std::nullopt, true, ""};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);

  auto& kid = network.add_host("kid-laptop", net::MacAddr::from_u64(0x02000000c001),
                               net::Ipv4Addr(192, 168, 1, 10));
  auto& parent = network.add_host("parent-pc", net::MacAddr::from_u64(0x02000000c002),
                                  net::Ipv4Addr(192, 168, 1, 11));
  auto& server = network.add_host("web-server", net::MacAddr::from_u64(0x02000000c003),
                                  net::Ipv4Addr(192, 168, 1, 80));
  network.connect(kid, 0, device, 0, sim::LinkSpec::gbps(1));
  network.connect(parent, 0, device, 1, sim::LinkSpec::gbps(1));
  network.connect(server, 0, device, 2, sim::LinkSpec::gbps(1));
  server.serve_http(80);

  auto map = core::PortMap::make({1, 2, 3}, 4);
  auto fabric = core::Fabric::build(network, device, *map);

  controller::ParentalControlConfig pc;
  pc.blocklist[kid.ip()] = {"games.example"};
  controller::Controller ctrl("home-controller");
  auto& app = ctrl.add_app<controller::ParentalControlApp>(pc);
  ctrl.add_app<controller::LearningSwitchApp>(/*table=*/1);
  ctrl.connect(fabric.control_channel(), "SS_2");
  network.run();

  std::puts("kid  -> GET games.example   (blocked host for this user)");
  kid.http_get(server.mac(), server.ip(), "games.example");
  network.run();
  std::printf("     kid received 403: %s; server saw the request: %s\n",
              kid.counters().http_forbidden_received ? "yes" : "no",
              server.counters().http_requests_served ? "yes" : "no");

  std::puts("parent -> GET games.example (same site, different user)");
  parent.http_get(server.mac(), server.ip(), "games.example");
  network.run();
  std::printf("     parent received 200: %s\n",
              parent.counters().http_ok_received ? "yes" : "no");

  std::puts("kid  -> GET school.example  (IP-level drop flow now covers the pair)");
  kid.http_get(server.mac(), server.ip(), "school.example");
  network.run();
  std::printf("     delivered: %s (dropped in the data plane, no controller round-trip)\n",
              kid.counters().http_ok_received ? "yes" : "no");

  std::printf("\napp stats: seen=%llu blocked=%llu allowed=%llu drop-flows=%llu\n",
              static_cast<unsigned long long>(app.stats().requests_seen),
              static_cast<unsigned long long>(app.stats().blocked),
              static_cast<unsigned long long>(app.stats().allowed),
              static_cast<unsigned long long>(app.stats().drop_flows_installed));

  const bool ok = kid.counters().http_forbidden_received == 1 &&
                  parent.counters().http_ok_received == 1 &&
                  server.counters().http_requests_served == 1;
  std::puts(ok ? "\nparental_control: OK" : "\nparental_control: FAILED");
  return ok ? 0 : 1;
}

// migration_planner — the ops-facing side of HARMLESS: given a switch
// size, trunk layout and vendor OS, print everything an operator (or a
// change-review board) needs before touching production:
//   * the port map (port <-> VLAN <-> SS_2 port, trunk leg assignment)
//   * the exact CLI config to be pushed, in the device's own dialect
//   * the SS_1 translator table that will be generated
//   * the CAPEX comparison for this site size
//
//   $ ./migration_planner [ports] [trunks] [ios_like|eos_like]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harmless/cost_model.hpp"
#include "harmless/translator.hpp"
#include "legacy/config.hpp"
#include "mgmt/dialects.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;

int main(int argc, char** argv) {
  const int ports = argc > 1 ? std::atoi(argv[1]) : 8;
  const int trunks = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string platform = argc > 3 ? argv[3] : "ios_like";

  auto dialect = mgmt::make_dialect(platform);
  if (!dialect || ports < 1 || trunks < 1) {
    std::fprintf(stderr, "usage: %s [access-ports>=1] [trunks>=1] [ios_like|eos_like]\n",
                 argv[0]);
    return 2;
  }

  std::printf("== HARMLESS migration plan: %d access ports, %d trunk leg(s), %s ==\n\n",
              ports, trunks, platform.c_str());

  // 1. The port map.
  std::vector<int> access_ports;
  for (int port = 1; port <= ports; ++port) access_ports.push_back(port);
  std::vector<int> trunk_ports;
  for (int leg = 0; leg < trunks; ++leg) trunk_ports.push_back(ports + 1 + leg);
  auto map = core::PortMap::make_bonded(access_ports, trunk_ports);
  if (!map) {
    std::fprintf(stderr, "plan rejected: %s\n", map.message().c_str());
    return 1;
  }

  util::Table plan({"legacy port", "VLAN", "SS_2 port", "trunk leg"});
  for (const core::MappedPort& mapped : map->ports())
    plan.add_row({std::to_string(mapped.legacy_port), std::to_string(mapped.vlan),
                  std::to_string(mapped.ss2_port),
                  std::to_string(mapped.trunk_index) + " (legacy port " +
                      std::to_string(map->trunk_ports()[static_cast<std::size_t>(
                          mapped.trunk_index)]) +
                      ")"});
  std::cout << "Port map:\n" << plan.to_string() << '\n';

  // 2. The vendor config that would be committed.
  legacy::SwitchConfig target;
  target.hostname = "planned-switch";
  std::vector<std::set<net::VlanId>> per_trunk(static_cast<std::size_t>(trunks));
  for (const core::MappedPort& mapped : map->ports()) {
    legacy::PortConfig port;
    port.pvid = mapped.vlan;
    port.description = util::format("HARMLESS access (vlan %u)", mapped.vlan);
    target.ports[mapped.legacy_port] = std::move(port);
    per_trunk[static_cast<std::size_t>(mapped.trunk_index)].insert(mapped.vlan);
  }
  for (int leg = 0; leg < trunks; ++leg) {
    legacy::PortConfig trunk;
    trunk.mode = legacy::PortMode::kTrunk;
    trunk.allowed_vlans = per_trunk[static_cast<std::size_t>(leg)];
    trunk.description = "HARMLESS trunk to S4 box";
    target.ports[map->trunk_ports()[static_cast<std::size_t>(leg)]] = std::move(trunk);
  }
  std::cout << "Config to push (" << platform << "):\n" << dialect->render(target) << '\n';

  // 3. The translator table SS_1 will run.
  const core::TranslatorRules rules = core::make_translator_rules(*map);
  std::cout << rules.to_string() << "  (" << rules.flow_mods.size()
            << " rules: 2 per access port + explicit drop miss)\n\n";

  // 4. What this site costs under each migration strategy.
  core::CostModel model;
  util::Table costs({"strategy", "total ($)", "$/port"});
  for (const auto strategy : {core::Strategy::kForkliftSdn, core::Strategy::kPureSoftware,
                              core::Strategy::kHarmless}) {
    const core::CostEstimate estimate = model.estimate(strategy, ports);
    costs.add_row({core::strategy_name(strategy), util::format("%.0f", estimate.total_usd()),
                   util::format("%.1f", estimate.usd_per_port())});
  }
  std::cout << "CAPEX for " << ports << " SDN ports:\n" << costs.to_string() << '\n';

  std::puts("Review the plan, then run the Manager against the live device\n"
            "(see examples/quickstart.cpp for the end-to-end sequence).");
  return 0;
}

// stateful_firewall — the DMZ idea done right: instead of the
// stateless "replies allowed back by port number" approximation,
// inbound traffic on the uplink is admitted only when conntrack says
// it belongs to a connection an inside host opened.
//
//   $ ./stateful_firewall
#include <cstdio>
#include <iostream>

#include "controller/apps/stateful_fw.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/table.hpp"

using namespace harmless;

int main() {
  std::puts("== Stateful perimeter firewall on the conntrack tier ==\n");

  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("fw", 0x0F, 3);
  sw.enable_conntrack(openflow::CtConfig{});
  openflow::ControlChannel channel(network.engine(), 10'000);
  sw.attach_channel(channel);

  auto& h1 = network.add_host("h1", net::MacAddr::from_u64(0x21), net::Ipv4Addr(10, 1, 0, 1));
  auto& h2 = network.add_host("h2", net::MacAddr::from_u64(0x22), net::Ipv4Addr(10, 1, 0, 2));
  auto& outside =
      network.add_host("outside", net::MacAddr::from_u64(0x66), net::Ipv4Addr(192, 0, 2, 9));
  network.connect(h1, 0, sw, 0, sim::LinkSpec::gbps(1));
  network.connect(h2, 0, sw, 1, sim::LinkSpec::gbps(1));
  network.connect(outside, 0, sw, 2, sim::LinkSpec::gbps(1));
  outside.serve_http(80);
  h2.serve_http(80);  // an inside service the firewall must NOT expose

  controller::StatefulFirewallConfig fw;
  fw.inside = {{"h1", h1.mac(), h1.ip(), 1}, {"h2", h2.mac(), h2.ip(), 2}};
  fw.outside_port = 3;
  fw.outside_mac = outside.mac();
  controller::Controller ctrl("fw-controller");
  ctrl.add_app<controller::StatefulFirewallApp>(fw);
  ctrl.connect(channel, "fw");
  network.run();

  util::Table table({"attempt", "result", "verdict"});

  // 1. Inside opens outward: first packet commits the connection, the
  //    server's response rides back as ESTABLISHED.
  net::FlowKey out_flow;
  out_flow.eth_src = h1.mac();
  out_flow.eth_dst = outside.mac();
  out_flow.ip_src = h1.ip();
  out_flow.ip_dst = outside.ip();
  out_flow.src_port = 41000;
  out_flow.dst_port = 80;
  h1.send(net::make_tcp(out_flow, net::kTcpSyn));
  h1.send(net::make_http_get(out_flow, "fw.example"));
  network.run();
  const bool outbound_ok = h1.counters().http_ok_received == 1;
  table.add_row({"h1 -> outside:80 (opened inside)", outbound_ok ? "200 OK" : "no reply",
                 outbound_ok ? "allowed (good)" : "BROKEN"});

  // 2. Outside probes the inside web server: classified NEW inbound,
  //    no ESTABLISHED match, default deny.
  const auto h2_rx_before = h2.counters().rx_tcp;
  net::FlowKey probe;
  probe.eth_src = outside.mac();
  probe.eth_dst = h2.mac();
  probe.ip_src = outside.ip();
  probe.ip_dst = h2.ip();
  probe.src_port = 51000;
  probe.dst_port = 80;
  outside.send(net::make_tcp(probe, net::kTcpSyn));
  network.run();
  const bool syn_blocked = h2.counters().rx_tcp == h2_rx_before;
  table.add_row({"outside -> h2:80 SYN (unsolicited)", syn_blocked ? "dropped" : "DELIVERED",
                 syn_blocked ? "blocked (good)" : "EXPOSED"});

  // 3. A mid-stream segment with no connection: INVALID, also denied —
  //    the classic ACK-probe firewall bypass does not work here.
  probe.src_port = 51001;
  outside.send(net::make_tcp(probe, net::kTcpAck));
  network.run();
  const bool ack_blocked = h2.counters().rx_tcp == h2_rx_before;
  table.add_row({"outside -> h2:80 bare ACK (mid-stream)", ack_blocked ? "dropped" : "DELIVERED",
                 ack_blocked ? "blocked (good)" : "EXPOSED"});

  std::cout << table.to_string();

  const auto counters = sw.counters();
  std::printf("\nconntrack: %zu live connections, %llu created, %llu invalid classifications\n",
              counters.ct_connections, static_cast<unsigned long long>(counters.ct_created),
              static_cast<unsigned long long>(counters.ct_invalid));
  return outbound_ok && syn_blocked && ack_blocked ? 0 : 1;
}

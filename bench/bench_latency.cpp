// E2 — latency ("...or latency penalty").
//
// One paced packet at a time (no queueing): one-way delivery latency
// through each data plane, per frame size, decomposed into wire time
// (serialization + propagation) and processing time (ASIC / CPU work
// the packet was charged). Reports p50/p95/p99 and the absolute delta
// HARMLESS adds over the legacy baseline.
#include <iostream>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr std::size_t kPackets = 2'000;
constexpr sim::SimNanos kPacing = 100'000;  // 100 us: strictly one in flight

struct LatencyResult {
  double p50 = 0, p95 = 0, p99 = 0, processing_mean = 0, hops = 0;
};

template <typename Rig>
LatencyResult run_paced(const RigOptions& options, std::size_t frame_size) {
  Rig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, kPackets, frame_size, kPacing);
  rig.network.run();
  LatencyResult result;
  result.p50 = recorder.latency().p50();
  result.p95 = recorder.latency().p95();
  result.p99 = recorder.latency().p99();
  result.processing_mean = recorder.processing().mean();
  result.hops = recorder.hops().mean();
  return result;
}

}  // namespace

int main() {
  std::cout << "E2 - one-way latency: legacy vs native software switch vs HARMLESS\n"
            << "(paced " << kPackets << " packets, 1G access / 10G trunk, no queueing)\n\n";

  RigOptions options;
  options.access_link = sim::LinkSpec::gbps(1);
  options.trunk_link = sim::LinkSpec::gbps(10);

  util::Table table({"frame", "setup", "p50 (us)", "p95 (us)", "p99 (us)", "proc (ns)",
                     "hops", "delta vs legacy (us)"});
  for (const std::size_t frame_size : {64u, 512u, 1500u}) {
    const LatencyResult legacy_lat = run_paced<LegacyRig>(options, frame_size);
    const LatencyResult native_lat = run_paced<NativeRig>(options, frame_size);
    const LatencyResult harmless_lat = run_paced<HarmlessRig>(options, frame_size);

    auto row = [&](const char* name, const LatencyResult& r) {
      table.add_row({std::to_string(frame_size) + "B", name,
                     util::format("%.2f", r.p50 / 1000.0), util::format("%.2f", r.p95 / 1000.0),
                     util::format("%.2f", r.p99 / 1000.0), util::format("%.0f", r.processing_mean),
                     util::format("%.0f", r.hops),
                     util::format("%+.2f", (r.p50 - legacy_lat.p50) / 1000.0)});
    };
    row("legacy", legacy_lat);
    row("native SS", native_lat);
    row("HARMLESS", harmless_lat);
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Shape check: HARMLESS adds a fixed, frame-size-independent few-us\n"
               "detour (trunk hop + two SS_1 passes + SS_2) on top of the legacy\n"
               "path - small against end-to-end application latencies, which is the\n"
               "paper's 'no major latency penalty'.\n";
  return 0;
}

// E6 — ablation of the Translator (SS_1).
//
// The paper adds SS_1 purely as an adaptation layer "to avoid having
// to tailor controller programs to the way HARMLESS maps output ports
// to VLAN ids". This bench quantifies what that abstraction costs by
// comparing against the alternative the paper rejected: a *merged*
// single software switch whose (VLAN-aware) rules fuse translation and
// policy — every L2 rule becomes (in_port=trunk, vlan=v_src,
// eth_dst=mac) -> set_vlan(v_dst) -> output trunk.
//
// Reported per data plane: throughput, p50 latency, rules installed,
// and whether the controller program had to know the VLAN map.
#include <iostream>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr std::size_t kPackets = 20'000;
constexpr std::size_t kFrame = 256;

struct Outcome {
  double pps = 0;
  double p50_us = 0;
  std::size_t rules = 0;
};

Outcome run_harmless(const RigOptions& options) {
  HarmlessRig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, kPackets, kFrame, options.access_link.rate.serialization_ns(kFrame));
  rig.network.run();
  Outcome outcome;
  outcome.pps = measure(recorder, kFrame).pps;
  outcome.p50_us = recorder.latency().p50() / 1000.0;
  outcome.rules = rig.fabric->ss1().pipeline().total_entries() +
                  rig.fabric->ss2().pipeline().total_entries();
  return outcome;
}

/// The merged design: legacy switch + ONE software switch on the trunk
/// whose single table fuses translation and forwarding.
Outcome run_merged(const RigOptions& options) {
  BaseRig rig;
  auto& device = rig.network.add_node<legacy::LegacySwitch>(
      "legacy", harmless_legacy_config(options.host_count));
  rig.add_hosts(device, options);

  auto& merged = rig.network.add_node<softswitch::SoftSwitch>(
      "merged-ss", 0x99, 1, /*table_count=*/1, options.specialized_matchers);
  rig.network.connect(device, static_cast<std::size_t>(options.host_count), merged, 0,
                      options.trunk_link);

  // Fused rules: for every (source port, destination host) pair.
  // The "controller program" must know every VLAN id — the coupling
  // the Translator exists to remove.
  std::size_t rules = 0;
  for (int src = 0; src < options.host_count; ++src) {
    for (int dst = 0; dst < options.host_count; ++dst) {
      if (src == dst) continue;
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 100;
      mod.match.in_port(1)
          .vlan_vid(static_cast<net::VlanId>(101 + src))
          .eth_dst(host_mac(dst));
      // The hairpin goes back out the trunk it arrived on, which in
      // OpenFlow requires the explicit IN_PORT reserved port.
      mod.instructions = openflow::apply(
          {openflow::set_vlan_vid(static_cast<net::VlanId>(101 + dst)),
           openflow::output(openflow::kPortInPort)});
      merged.install(mod).check();
      ++rules;
    }
  }

  // Warm the legacy FDB.
  for (int i = 0; i < options.host_count; ++i)
    rig.stream(i, (i + 1) % options.host_count, 1, 64, 0);
  rig.network.run();

  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, kPackets, kFrame, options.access_link.rate.serialization_ns(kFrame));
  rig.network.run();
  Outcome outcome;
  outcome.pps = measure(recorder, kFrame).pps;
  outcome.p50_us = recorder.latency().p50() / 1000.0;
  outcome.rules = rules;
  return outcome;
}

}  // namespace

int main() {
  std::cout << "E6 - Translator (SS_1) ablation: HARMLESS vs merged single-switch\n"
            << "(" << kPackets << " packets of " << kFrame << "B, 10G feed, h1->h2)\n\n";

  util::Table table({"hosts", "design", "pps", "p50 (us)", "OF rules",
                     "controller VLAN-free?"});
  for (const int hosts : {4, 8, 16, 32}) {
    RigOptions options;
    options.host_count = hosts;
    options.access_link = sim::LinkSpec::gbps(10);
    options.trunk_link = sim::LinkSpec::gbps(10);

    const Outcome harmless_outcome = run_harmless(options);
    const Outcome merged_outcome = run_merged(options);
    RigOptions linear_options = options;
    linear_options.specialized_matchers = false;
    const Outcome linear_outcome = run_harmless(linear_options);
    RigOptions uncached_options = options;
    uncached_options.flow_cache = false;
    const Outcome uncached_outcome = run_harmless(uncached_options);
    table.add_row({std::to_string(hosts), "HARMLESS (SS_1+SS_2)",
                   util::si_format(harmless_outcome.pps, "pps"),
                   util::format("%.2f", harmless_outcome.p50_us),
                   std::to_string(harmless_outcome.rules), "yes"});
    table.add_row({std::to_string(hosts), "HARMLESS (linear matchers)",
                   util::si_format(linear_outcome.pps, "pps"),
                   util::format("%.2f", linear_outcome.p50_us),
                   std::to_string(linear_outcome.rules), "yes"});
    table.add_row({std::to_string(hosts), "HARMLESS (no flow cache)",
                   util::si_format(uncached_outcome.pps, "pps"),
                   util::format("%.2f", uncached_outcome.p50_us),
                   std::to_string(uncached_outcome.rules), "yes"});
    table.add_row({std::to_string(hosts), "merged single SS",
                   util::si_format(merged_outcome.pps, "pps"),
                   util::format("%.2f", merged_outcome.p50_us),
                   std::to_string(merged_outcome.rules), "NO (fused VLAN map)"});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Shape check: the merged design wins some throughput/latency (one SS\n"
               "traversal instead of three) but its rule count grows as ports x hosts\n"
               "and every rule hard-codes the VLAN mapping - the operational cost the\n"
               "paper's adaptation layer pays a bounded performance price to avoid\n"
               "(HARMLESS rules stay 2*ports + policy). The linear-matcher and\n"
               "no-flow-cache rows isolate the two datapath accelerations: disabling\n"
               "the cache re-exposes the full per-packet parse+lookup bill on every\n"
               "SS traversal.\n";
  return 0;
}

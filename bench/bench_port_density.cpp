// E7 — port density vs the trunk bottleneck.
//
// The paper pitches HARMLESS as combining software-switch flexibility
// with "the port density of hardware-based appliances". The physics
// bill for tag-and-hairpin: every frame crosses the (full-duplex)
// trunk once per direction, so aggregate goodput is capped by the
// trunk line rate; past that, by SS_1's per-packet compute. This bench
// sweeps the number of busy access ports and reports aggregate
// delivered goodput and trunk utilization — the oversubscription curve
// an operator sizes the trunk (and the S4 box's cores) against.
#include <iostream>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr std::size_t kFrame = 512;
constexpr std::size_t kPacketsPerHost = 3'000;

struct DensityPoint {
  double offered_gbps = 0;
  double delivered_gbps = 0;
  double trunk_utilization = 0;
  double p99_us = 0;
  std::uint64_t ss1_rxq_drops = 0;  // per-port rx-queue tail drops, summed
  std::uint64_t ss2_rxq_drops = 0;
  std::uint64_t unwired_tx_drops = 0;  // frames sent out cable-less ports
};

/// Sum of unwired-tx drops across a node's ports.
std::uint64_t sum_unwired(const sim::Node& node) {
  std::uint64_t drops = 0;
  for (std::size_t p = 0; p < node.port_count(); ++p) drops += node.port(p).tx_unwired_drops;
  return drops;
}

DensityPoint run_density(int host_count, double trunk_gbps, int trunk_count = 1) {
  RigOptions options;
  options.host_count = host_count;
  options.trunk_count = trunk_count;
  options.access_link = sim::LinkSpec::gbps(1);
  options.trunk_link = sim::LinkSpec::gbps(trunk_gbps);
  // Deep trunk queue so the knee shows as latency+loss, not instant tail drop.
  options.trunk_link.queue_capacity_packets = 512;
  HarmlessRig rig(options);

  sim::LatencyRecorder recorder;
  for (sim::Host* host : rig.hosts) host->set_recorder(&recorder);

  // Every host streams at its access line rate to its ring neighbour:
  // offered load = host_count x 1G.
  const sim::SimNanos interval = options.access_link.rate.serialization_ns(kFrame);
  for (int i = 0; i < host_count; ++i)
    rig.stream(i, (i + 1) % host_count, kPacketsPerHost, kFrame, interval);
  rig.network.run();

  DensityPoint point;
  point.offered_gbps = static_cast<double>(host_count) * 1.0;
  const double duration_ns =
      static_cast<double>(recorder.last_received() - recorder.first_sent());
  if (duration_ns > 0)
    point.delivered_gbps = static_cast<double>(recorder.completed()) *
                           static_cast<double>(kFrame) * 8.0 / duration_ns;
  point.p99_us = recorder.latency().p99() / 1000.0;

  // Trunk utilization: busy time of the busier direction over the run.
  double busiest = 0;
  for (const auto& channel : rig.network.channels()) {
    if (channel->label().find("SS_1") != std::string::npos ||
        channel->label().find("legacy:" + std::to_string(host_count)) != std::string::npos) {
      busiest = std::max(busiest, static_cast<double>(channel->busy_ns()));
    }
  }
  if (duration_ns > 0) point.trunk_utilization = busiest / duration_ns;
  // Per-port drops are also summed into the node-wide total (an
  // invariant scheduler_equivalence_test asserts), so report that.
  point.ss1_rxq_drops = rig.fabric->ss1().queue_drops();
  point.ss2_rxq_drops = rig.fabric->ss2().queue_drops();
  point.unwired_tx_drops = sum_unwired(rig.fabric->ss1()) + sum_unwired(rig.fabric->ss2()) +
                           sum_unwired(*rig.device);
  return point;
}

}  // namespace

int main() {
  std::cout << "E7 - aggregate goodput vs managed access ports (1G access links,\n"
            << "ring traffic, every port offered at line rate)\n\n";

  struct TrunkSetup {
    double gbps;
    int legs;
  };
  for (const TrunkSetup setup : {TrunkSetup{10.0, 1}, TrunkSetup{40.0, 1}, TrunkSetup{10.0, 2}}) {
    std::cout << "Trunk = " << setup.legs << " x " << setup.gbps << " Gb/s"
              << (setup.legs > 1 ? " (bonded)" : "") << ":\n";
    util::Table table({"busy ports", "offered (Gb/s)", "delivered (Gb/s)", "efficiency",
                       "trunk util", "p99 (us)", "ss1 rxq drops", "ss2 rxq drops",
                       "unwired tx"});
    for (const int hosts : {2, 4, 8, 12, 16, 24, 32, 48}) {
      const DensityPoint point = run_density(hosts, setup.gbps, setup.legs);
      table.add_row({std::to_string(hosts), util::format("%.0f", point.offered_gbps),
                     util::format("%.2f", point.delivered_gbps),
                     util::format("%.0f%%", 100.0 * point.delivered_gbps / point.offered_gbps),
                     util::format("%.0f%%", 100.0 * point.trunk_utilization),
                     util::format("%.1f", point.p99_us),
                     std::to_string(point.ss1_rxq_drops), std::to_string(point.ss2_rxq_drops),
                     std::to_string(point.unwired_tx_drops)});
    }
    std::cout << table.to_string() << '\n';
  }

  std::cout << "Shape check: with the 10G trunk, delivery scales linearly to ~10 busy\n"
               "1G ports, then pins at the trunk line rate with rising p99 (classic\n"
               "access oversubscription). With a 40G trunk the wire stops being the\n"
               "limit and the single-core SS_1 becomes it: sustained 2x+ compute\n"
               "overload collapses goodput because returning packets are dropped at\n"
               "SS_1's own full queue - the honest argument for multi-core soft\n"
               "switches (or ingress policing) at high port counts.\n";
  return 0;
}

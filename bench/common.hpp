// bench/common.hpp — shared rig builders for the experiment harness.
//
// Three comparable data planes, all with the same host population:
//   * LegacyRig   — hosts on the legacy switch, one shared VLAN (the
//                   pre-migration network; the hardware baseline)
//   * NativeRig   — hosts directly on one software switch (the
//                   "forklift to a soft switch" comparator)
//   * HarmlessRig — hosts on the legacy switch migrated by HARMLESS
//                   (tag-and-hairpin through SS_1/SS_2)
// Forwarding state is preinstalled (exact-match L2 rules / pre-learned
// MACs) so benches measure the data plane, not controller warmup.
#pragma once

#include <cstdio>
#include <vector>

#include "harmless/fabric.hpp"
#include "legacy/legacy_switch.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::bench {

struct RigOptions {
  int host_count = 4;
  sim::LinkSpec access_link = sim::LinkSpec::gbps(10);
  sim::LinkSpec trunk_link = sim::LinkSpec::gbps(10);
  bool specialized_matchers = true;
  /// Two-tier flow cache on the soft switches (ablation knob).
  bool flow_cache = true;
  /// Bonded trunk legs between the legacy switch and the S4 box.
  int trunk_count = 1;
};

inline net::MacAddr host_mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
inline net::Ipv4Addr host_ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

/// The legacy switch config HARMLESS needs (unique PVID per access
/// port + trunks) for `n` hosts; trunk legs occupy ports n+1..n+T with
/// VLANs distributed round-robin to mirror PortMap::make_bonded.
inline legacy::SwitchConfig harmless_legacy_config(int n, int trunk_count = 1) {
  legacy::SwitchConfig config;
  config.hostname = "bench-legacy";
  std::vector<std::set<net::VlanId>> per_trunk(static_cast<std::size_t>(trunk_count));
  for (int port = 1; port <= n; ++port) {
    config.ports[port] = legacy::PortConfig{
        legacy::PortMode::kAccess, static_cast<net::VlanId>(100 + port), {}, std::nullopt,
        true,                      ""};
    per_trunk[static_cast<std::size_t>((port - 1) % trunk_count)].insert(
        static_cast<net::VlanId>(100 + port));
  }
  for (int leg = 0; leg < trunk_count; ++leg)
    config.ports[n + 1 + leg] = legacy::PortConfig{legacy::PortMode::kTrunk, 1,
                                                   per_trunk[static_cast<std::size_t>(leg)],
                                                   std::nullopt, true, ""};
  return config;
}

/// Pre-migration network: one VLAN, plain L2 switching.
inline legacy::SwitchConfig flat_legacy_config(int n) {
  legacy::SwitchConfig config;
  config.hostname = "bench-legacy-flat";
  for (int port = 1; port <= n; ++port) config.ports[port] = legacy::PortConfig{};
  return config;
}

struct BaseRig {
  sim::Network network;
  std::vector<sim::Host*> hosts;

  void add_hosts(sim::Node& attach_to, const RigOptions& options, int first_switch_port = 0) {
    for (int i = 0; i < options.host_count; ++i) {
      sim::Host& host =
          network.add_host("h" + std::to_string(i + 1), host_mac(i), host_ip(i));
      network.connect(host, 0, attach_to,
                      static_cast<std::size_t>(first_switch_port + i), options.access_link);
      hosts.push_back(&host);
    }
  }

  /// Paced unidirectional stream: `from` offers exactly its line rate.
  void stream(int from, int to, std::size_t count, std::size_t frame_size,
              sim::SimNanos interval) {
    hosts[static_cast<std::size_t>(from)]->send_udp_stream(
        hosts[static_cast<std::size_t>(to)]->mac(), hosts[static_cast<std::size_t>(to)]->ip(),
        count, frame_size, interval);
  }
};

struct LegacyRig : BaseRig {
  legacy::LegacySwitch* device = nullptr;

  explicit LegacyRig(const RigOptions& options = {}) {
    device = &network.add_node<legacy::LegacySwitch>("legacy",
                                                     flat_legacy_config(options.host_count));
    add_hosts(*device, options);
    // Pre-learn every MAC: one warmup frame per host to a peer.
    for (int i = 0; i < options.host_count; ++i)
      stream(i, (i + 1) % options.host_count, 1, 64, 0);
    network.run();
  }
};

struct NativeRig : BaseRig {
  softswitch::SoftSwitch* datapath = nullptr;

  explicit NativeRig(const RigOptions& options = {}) {
    datapath = &network.add_node<softswitch::SoftSwitch>(
        "native-ss", 0xbe, static_cast<std::size_t>(options.host_count), 1,
        options.specialized_matchers, options.flow_cache);
    add_hosts(*datapath, options);
    for (int i = 0; i < options.host_count; ++i) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(host_mac(i));
      mod.instructions = openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
      datapath->install(mod).check();
    }
  }
};

struct HarmlessRig : BaseRig {
  legacy::LegacySwitch* device = nullptr;
  std::optional<core::Fabric> fabric;

  explicit HarmlessRig(const RigOptions& options = {}) {
    device = &network.add_node<legacy::LegacySwitch>(
        "legacy", harmless_legacy_config(options.host_count, options.trunk_count));
    add_hosts(*device, options);
    std::vector<int> access_ports;
    for (int port = 1; port <= options.host_count; ++port) access_ports.push_back(port);
    std::vector<int> trunk_ports;
    for (int leg = 0; leg < options.trunk_count; ++leg)
      trunk_ports.push_back(options.host_count + 1 + leg);
    auto map = core::PortMap::make_bonded(access_ports, trunk_ports);
    core::FabricSpec spec;
    spec.trunk_link = options.trunk_link;
    spec.specialized_matchers = options.specialized_matchers;
    spec.flow_cache = options.flow_cache;
    fabric.emplace(core::Fabric::build(network, *device, *map, spec));
    // Static L2 program on SS_2 (what the learning app would converge to).
    for (int i = 0; i < options.host_count; ++i) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(host_mac(i));
      mod.instructions = openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
      fabric->ss2().install(mod).check();
    }
    // Pre-learn legacy MACs along the hairpin path.
    for (int i = 0; i < options.host_count; ++i)
      stream(i, (i + 1) % options.host_count, 1, 64, 0);
    network.run();
  }
};

/// Measured delivery rate for a finished run.
struct Throughput {
  double pps = 0;
  double gbps = 0;
};

inline Throughput measure(const sim::LatencyRecorder& recorder, std::size_t frame_size) {
  Throughput result;
  if (recorder.completed() < 2) return result;
  const double duration_ns =
      static_cast<double>(recorder.last_received() - recorder.first_sent());
  if (duration_ns <= 0) return result;
  result.pps = static_cast<double>(recorder.completed()) * 1e9 / duration_ns;
  result.gbps = result.pps * static_cast<double>(frame_size) * 8.0 / 1e9;
  return result;
}

}  // namespace harmless::bench

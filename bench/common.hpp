// bench/common.hpp — shared rig builders for the experiment harness.
//
// Three comparable data planes, all with the same host population:
//   * LegacyRig   — hosts on the legacy switch, one shared VLAN (the
//                   pre-migration network; the hardware baseline)
//   * NativeRig   — hosts directly on one software switch (the
//                   "forklift to a soft switch" comparator)
//   * HarmlessRig — hosts on the legacy switch migrated by HARMLESS
//                   (tag-and-hairpin through SS_1/SS_2)
// Forwarding state is preinstalled (exact-match L2 rules / pre-learned
// MACs) so benches measure the data plane, not controller warmup.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "harmless/fabric.hpp"
#include "legacy/legacy_switch.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/strings.hpp"

namespace harmless::bench {

// ---- machine-readable bench artifacts --------------------------------
//
// Every bench that prints a table can also emit the same rows as a
// BENCH_<name>.json next to wherever it was run, so the perf
// trajectory is trackable across PRs (the repo commits the current
// numbers as evidence). Minimal ordered JSON value — objects keep
// insertion order, no external dependencies.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>, int> = 0>
  Json(T value) : kind_(Kind::kNumber) {
    if constexpr (std::is_integral_v<T>)
      text_ = std::to_string(value);
    else
      text_ = util::format("%.10g", static_cast<double>(value));
  }
  Json(bool value) : kind_(Kind::kBool), text_(value ? "true" : "false") {}
  Json(const char* value) : kind_(Kind::kString), text_(value) {}
  Json(std::string value) : kind_(Kind::kString), text_(std::move(value)) {}

  static Json object() {
    Json json;
    json.kind_ = Kind::kObject;
    return json;
  }
  static Json array() {
    Json json;
    json.kind_ = Kind::kArray;
    return json;
  }

  Json& set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Json& push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  [[nodiscard]] std::string dump(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNull: return "null";
      case Kind::kNumber:
      case Kind::kBool: return text_;
      case Kind::kString: return quote(text_);
      case Kind::kArray: {
        if (items_.empty()) return "[]";
        std::string out = "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i)
          out += inner_pad + items_[i].dump(indent + 1) +
                 (i + 1 < items_.size() ? ",\n" : "\n");
        return out + pad + "]";
      }
      case Kind::kObject: {
        if (members_.empty()) return "{}";
        std::string out = "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i)
          out += inner_pad + quote(members_[i].first) + ": " +
                 members_[i].second.dump(indent + 1) +
                 (i + 1 < members_.size() ? ",\n" : "\n");
        return out + pad + "}";
      }
    }
    return "null";
  }

 private:
  enum class Kind { kNull, kNumber, kBool, kString, kArray, kObject };

  static std::string quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20)
            out += util::format("\\u%04x", c);
          else
            out += c;
      }
    }
    return out + "\"";
  }

  Kind kind_;
  std::string text_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

/// Write `json` to `path` (and say so on stdout, next to the tables).
/// A failed write exits non-zero: the artifact is the bench's whole
/// point, and the CI smoke job keys off this exit code.
inline void write_bench_json(const std::string& path, const Json& json) {
  std::ofstream out(path);
  out << json.dump() << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

struct RigOptions {
  int host_count = 4;
  sim::LinkSpec access_link = sim::LinkSpec::gbps(10);
  sim::LinkSpec trunk_link = sim::LinkSpec::gbps(10);
  bool specialized_matchers = true;
  /// Two-tier flow cache on the soft switches (ablation knob).
  bool flow_cache = true;
  /// Megaflow tier probed by the pre-classifier linear scan instead of
  /// the dpcls-style per-mask subtables (ablation knob).
  bool cache_linear_scan = false;
  /// Service burst size on the soft switches; 1 = per-packet datapath
  /// (batching ablation knob).
  std::size_t burst_size = 32;
  /// Burst scheduler across the per-port RX queues (FCFS / RR / DRR).
  sim::SchedulerSpec scheduler;
  /// Shared ingress buffer bound (sum across all port queues).
  std::size_t queue_capacity = 1024;
  /// Per-port RX queue bound; 0 = only the shared buffer
  /// (the historical shared-FIFO admission rule).
  std::size_t port_queue_capacity = 0;
  /// Worker-core layout of the soft switches: core count, RSS steering
  /// policy, pin map. cores.cores = 1 is the single-core datapath.
  sim::CoreSpec cores;
  /// Bonded trunk legs between the legacy switch and the S4 box.
  int trunk_count = 1;
  /// Controller-loss behaviour on the OF datapath (NativeRig's switch,
  /// HarmlessRig's SS_2). Default disabled: no probes, no degraded
  /// modes — identical to the pre-fault rigs.
  softswitch::FailoverSpec failover;
  /// Control-channel serialization gap per message (resync pacing) and
  /// one-way latency.
  sim::SimNanos control_min_gap = 0;
  sim::SimNanos control_latency = 50'000;

  [[nodiscard]] sim::IngressSpec ingress() const {
    sim::IngressSpec spec;
    spec.queue_capacity = queue_capacity;
    spec.port_queue_capacity = port_queue_capacity;
    spec.scheduler = scheduler;
    spec.cores = cores;
    return spec;
  }
};

inline net::MacAddr host_mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
inline net::Ipv4Addr host_ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

/// The legacy switch config HARMLESS needs (unique PVID per access
/// port + trunks) for `n` hosts; trunk legs occupy ports n+1..n+T with
/// VLANs distributed round-robin to mirror PortMap::make_bonded.
inline legacy::SwitchConfig harmless_legacy_config(int n, int trunk_count = 1) {
  legacy::SwitchConfig config;
  config.hostname = "bench-legacy";
  std::vector<std::set<net::VlanId>> per_trunk(static_cast<std::size_t>(trunk_count));
  for (int port = 1; port <= n; ++port) {
    config.ports[port] = legacy::PortConfig{
        legacy::PortMode::kAccess, static_cast<net::VlanId>(100 + port), {}, std::nullopt,
        true,                      ""};
    per_trunk[static_cast<std::size_t>((port - 1) % trunk_count)].insert(
        static_cast<net::VlanId>(100 + port));
  }
  for (int leg = 0; leg < trunk_count; ++leg)
    config.ports[n + 1 + leg] = legacy::PortConfig{legacy::PortMode::kTrunk, 1,
                                                   per_trunk[static_cast<std::size_t>(leg)],
                                                   std::nullopt, true, ""};
  return config;
}

/// Pre-migration network: one VLAN, plain L2 switching.
inline legacy::SwitchConfig flat_legacy_config(int n) {
  legacy::SwitchConfig config;
  config.hostname = "bench-legacy-flat";
  for (int port = 1; port <= n; ++port) config.ports[port] = legacy::PortConfig{};
  return config;
}

struct BaseRig {
  sim::Network network;
  std::vector<sim::Host*> hosts;

  void add_hosts(sim::Node& attach_to, const RigOptions& options, int first_switch_port = 0) {
    for (int i = 0; i < options.host_count; ++i) {
      sim::Host& host =
          network.add_host("h" + std::to_string(i + 1), host_mac(i), host_ip(i));
      network.connect(host, 0, attach_to,
                      static_cast<std::size_t>(first_switch_port + i), options.access_link);
      hosts.push_back(&host);
    }
  }

  /// Paced unidirectional stream: `from` offers exactly its line rate.
  void stream(int from, int to, std::size_t count, std::size_t frame_size,
              sim::SimNanos interval) {
    hosts[static_cast<std::size_t>(from)]->send_udp_stream(
        hosts[static_cast<std::size_t>(to)]->mac(), hosts[static_cast<std::size_t>(to)]->ip(),
        count, frame_size, interval);
  }
};

struct LegacyRig : BaseRig {
  legacy::LegacySwitch* device = nullptr;

  explicit LegacyRig(const RigOptions& options = {}) {
    device = &network.add_node<legacy::LegacySwitch>("legacy",
                                                     flat_legacy_config(options.host_count));
    add_hosts(*device, options);
    // Pre-learn every MAC: one warmup frame per host to a peer.
    for (int i = 0; i < options.host_count; ++i)
      stream(i, (i + 1) % options.host_count, 1, 64, 0);
    network.run();
  }
};

struct NativeRig : BaseRig {
  softswitch::SoftSwitch* datapath = nullptr;

  explicit NativeRig(const RigOptions& options = {}) {
    datapath = &network.add_node<softswitch::SoftSwitch>(
        "native-ss", 0xbe, static_cast<std::size_t>(options.host_count), 1,
        options.specialized_matchers, options.flow_cache, options.burst_size,
        options.ingress());
    datapath->pipeline().set_linear_scan(options.cache_linear_scan);
    if (options.failover.enabled()) datapath->set_failover(options.failover);
    add_hosts(*datapath, options);
    for (int i = 0; i < options.host_count; ++i) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(host_mac(i));
      mod.instructions = openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
      datapath->install(mod).check();
    }
  }
};

struct HarmlessRig : BaseRig {
  legacy::LegacySwitch* device = nullptr;
  std::optional<core::Fabric> fabric;

  explicit HarmlessRig(const RigOptions& options = {}) {
    device = &network.add_node<legacy::LegacySwitch>(
        "legacy", harmless_legacy_config(options.host_count, options.trunk_count));
    add_hosts(*device, options);
    std::vector<int> access_ports;
    for (int port = 1; port <= options.host_count; ++port) access_ports.push_back(port);
    std::vector<int> trunk_ports;
    for (int leg = 0; leg < options.trunk_count; ++leg)
      trunk_ports.push_back(options.host_count + 1 + leg);
    auto map = core::PortMap::make_bonded(access_ports, trunk_ports);
    core::FabricSpec spec;
    spec.trunk_link = options.trunk_link;
    spec.specialized_matchers = options.specialized_matchers;
    spec.flow_cache = options.flow_cache;
    spec.cache_linear_scan = options.cache_linear_scan;
    spec.burst_size = options.burst_size;
    spec.ingress = options.ingress();
    spec.control_latency = options.control_latency;
    spec.control_min_gap = options.control_min_gap;
    spec.ss2_failover = options.failover;
    fabric.emplace(core::Fabric::build(network, *device, *map, spec));
    // Static L2 program on SS_2 (what the learning app would converge to).
    for (int i = 0; i < options.host_count; ++i) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(host_mac(i));
      mod.instructions = openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
      fabric->ss2().install(mod).check();
    }
    // Pre-learn legacy MACs along the hairpin path.
    for (int i = 0; i < options.host_count; ++i)
      stream(i, (i + 1) % options.host_count, 1, 64, 0);
    network.run();
  }
};

/// Measured delivery rate for a finished run.
struct Throughput {
  double pps = 0;
  double gbps = 0;
};

inline Throughput measure(const sim::LatencyRecorder& recorder, std::size_t frame_size) {
  Throughput result;
  if (recorder.completed() < 2) return result;
  const double duration_ns =
      static_cast<double>(recorder.last_received() - recorder.first_sent());
  if (duration_ns <= 0) return result;
  result.pps = static_cast<double>(recorder.completed()) * 1e9 / duration_ns;
  result.gbps = result.pps * static_cast<double>(frame_size) * 8.0 / 1e9;
  return result;
}

}  // namespace harmless::bench

// E5 — flow-table lookup scaling: linear vs ESwitch-style specialized
// matching (the dataplane-specialization idea of the software switch
// the demo runs, Molnár et al. [9]).
//
// google-benchmark microbenchmarks over real wall-clock time, swept
// over table size and rule shape:
//   * exact  — pure exact-match L2 rules (compiles to one hash probe)
//   * acl    — prefix/wildcard ACL rules (stays a linear scan)
//   * mixed  — 90% exact + 10% ACL (the realistic enterprise table)
// The specialized matcher should be flat in table size for `exact`,
// and degrade gracefully toward linear as the wildcard share grows.
//
// A second family, datapath/*, runs whole packets through a Pipeline
// with the two-tier flow cache on vs off over a skewed workload and
// reports the measured hit rates — the wall-clock counterpart of
// bench_throughput's simulated Table 3.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string_view>

#include "net/build.hpp"
#include "openflow/pipeline.hpp"
#include "util/rng.hpp"

using namespace harmless;
using namespace harmless::openflow;

namespace {

enum class RuleShape { kExact, kAcl, kMixed };

std::vector<std::unique_ptr<FlowEntry>> make_rules(RuleShape shape, std::size_t count,
                                                   util::Rng& rng) {
  std::vector<std::unique_ptr<FlowEntry>> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto entry = std::make_unique<FlowEntry>();
    entry->priority = 10;
    const bool acl = shape == RuleShape::kAcl || (shape == RuleShape::kMixed && i % 10 == 0);
    if (acl) {
      entry->priority = 20;
      entry->match.eth_type(0x0800)
          .ip_dst_prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng.below(1u << 24)) << 8),
                         static_cast<int>(8 + rng.below(17)));
    } else {
      entry->match.eth_dst(net::MacAddr::from_u64(0x020000000000ULL + i));
    }
    entry->instructions = apply({output(static_cast<std::uint32_t>(1 + i % 8))});
    rules.push_back(std::move(entry));
  }
  return rules;
}

std::vector<FieldView> make_probe_views(std::size_t rule_count, std::size_t probes,
                                        util::Rng& rng) {
  std::vector<FieldView> views;
  views.reserve(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    net::FlowKey key;
    key.eth_src = net::MacAddr::from_u64(0x02ff);
    // Mostly hits spread over the rule space, some misses.
    key.eth_dst = net::MacAddr::from_u64(0x020000000000ULL + rng.below(rule_count + 16));
    key.ip_src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.ip_dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.src_port = 1234;
    key.dst_port = 80;
    views.push_back(build_field_view(net::parse_packet(net::make_udp(key, 64)), 1));
  }
  return views;
}

void lookup_benchmark(benchmark::State& state, RuleShape shape, bool specialized) {
  const auto rule_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  auto rules = make_rules(shape, rule_count, rng);
  std::vector<FlowEntry*> raw;
  raw.reserve(rules.size());
  for (const auto& rule : rules) raw.push_back(rule.get());

  auto matcher = make_matcher(specialized);
  matcher->rebuild(raw);
  const auto views = make_probe_views(rule_count, 1024, rng);

  std::size_t index = 0;
  std::uint64_t scanned = 0, probes = 0, lookups = 0;
  for (auto _ : state) {
    LookupCost cost;
    FlowEntry* hit = matcher->lookup(views[index], cost);
    benchmark::DoNotOptimize(hit);
    scanned += cost.entries_scanned;
    probes += cost.hash_probes;
    ++lookups;
    index = (index + 1) & 1023;
  }
  state.counters["entries_scanned/lookup"] =
      benchmark::Counter(static_cast<double>(scanned) / static_cast<double>(lookups));
  state.counters["hash_probes/lookup"] =
      benchmark::Counter(static_cast<double>(probes) / static_cast<double>(lookups));
}

/// Whole-datapath benchmark: a mixed-rule pipeline fed a skewed
/// workload (90% elephants), cache on vs off.
void datapath_benchmark(benchmark::State& state, bool flow_cache) {
  const auto rule_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  Pipeline pipeline(/*table_count=*/1, /*specialized=*/true, flow_cache);
  {
    auto rules = make_rules(RuleShape::kMixed, rule_count, rng);
    for (auto& rule : rules) pipeline.table(0).add(std::move(*rule), 0).check();
  }

  // Pre-built packet pool: 8 elephant flows + a mice tail with random
  // destinations and ports (distinct microflows, shared megaflows).
  std::vector<net::Packet> pool;
  pool.reserve(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    net::FlowKey key;
    key.eth_src = net::MacAddr::from_u64(0x02ff);
    const bool elephant = rng.chance(0.9);
    const std::uint64_t dst =
        elephant ? i % 8 : rng.below(rule_count > 16 ? rule_count : 16);
    key.eth_dst = net::MacAddr::from_u64(0x020000000000ULL + dst);
    key.ip_src = net::Ipv4Addr(0x0a000001u);
    key.ip_dst = net::Ipv4Addr(0x0a000002u + static_cast<std::uint32_t>(dst));
    key.src_port = elephant ? static_cast<std::uint16_t>(10'000 + dst)
                            : static_cast<std::uint16_t>(1024 + rng.below(50'000));
    key.dst_port = 443;
    pool.push_back(net::make_udp(key, 64));
  }

  std::size_t index = 0;
  std::uint64_t lookups = 0;
  sim::SimNanos now = 0;
  for (auto _ : state) {
    net::Packet packet = pool[index].clone();  // copy: run() consumes
    now += 50;
    auto result = pipeline.run(std::move(packet), 1, now);
    benchmark::DoNotOptimize(result);
    ++lookups;
    index = (index + 1) & 1023;
  }
  const auto& stats = pipeline.cache().stats();
  state.counters["hit_rate"] = benchmark::Counter(
      lookups > 0 ? static_cast<double>(stats.hits) / static_cast<double>(lookups) : 0);
  state.counters["megaflows"] = benchmark::Counter(static_cast<double>(pipeline.cache().megaflow_count()));
}

void register_all() {
  for (const bool flow_cache : {false, true}) {
    const std::string name =
        std::string("datapath/skewed/") + (flow_cache ? "cached" : "uncached");
    auto* bench = benchmark::RegisterBenchmark(
        name.c_str(),
        [flow_cache](benchmark::State& state) { datapath_benchmark(state, flow_cache); });
    bench->RangeMultiplier(10)->Range(10, 10000);
  }
  static const struct {
    const char* name;
    RuleShape shape;
  } kShapes[] = {{"exact", RuleShape::kExact}, {"acl", RuleShape::kAcl},
                 {"mixed", RuleShape::kMixed}};
  for (const auto& shape : kShapes) {
    for (const bool specialized : {false, true}) {
      const std::string name = std::string("lookup/") + shape.name + "/" +
                               (specialized ? "specialized" : "linear");
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(),
          [shape = shape.shape, specialized](benchmark::State& state) {
            lookup_benchmark(state, shape, specialized);
          });
      bench->RangeMultiplier(10)->Range(1, 10000);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E5 - flow-table lookup: linear vs specialized (ESwitch-style) matcher\n");
  register_all();
  // Keep the default sweep quick (~30 s); pass your own
  // --benchmark_min_time to override for tighter confidence intervals.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05s";
  const bool user_set_min_time = std::any_of(args.begin(), args.end(), [](const char* arg) {
    return std::string_view(arg).find("--benchmark_min_time") != std::string_view::npos;
  });
  if (!user_set_min_time) args.push_back(min_time.data());
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nShape check: specialized/exact stays flat (one hash probe) while\n"
      "linear/exact grows with the table; for pure ACL tables both scan, and\n"
      "the mixed table sits in between - the crossover that motivates\n"
      "dataplane specialization in the software switch HARMLESS deploys.\n"
      "datapath/skewed/cached should beat uncached on wall-clock ns/packet\n"
      "with a hit_rate near 1.0, and stay flat as the table grows (the cache\n"
      "decouples per-packet cost from rule count).\n");
  return 0;
}

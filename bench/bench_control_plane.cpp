// E8 — control-plane reactivity ("a powerful, fully reconfigurable,
// OpenFlow-enabled network device").
//
// The demo's reconfigurability story depends on three control-plane
// latencies, measured here on the full HARMLESS fabric:
//   (a) reactive path RTT — first packet of an unknown flow punts to
//       the controller and returns via packet-out, vs. the pure
//       data-plane latency once a rule exists;
//   (b) rule-to-effect latency — how long after a flow_add until
//       traffic actually flows (probes at 1 us resolution);
//   (c) install throughput — back-to-back flow_mods bounded by a
//       barrier round-trip.
// The control channel models a 50 us one-way management-network hop;
// all results scale linearly with that knob (FabricSpec::control_latency).
#include <iostream>

#include "bench/common.hpp"
#include "controller/controller.hpp"
#include "net/parse.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;
using namespace harmless::openflow;

namespace {

/// Minimal reactive app: punts come back out the right port (the app
/// knows the experiment's topology: h_i lives on port i+1).
class ReflectorApp : public controller::App {
 public:
  const char* name() const override { return "reflector"; }
  void on_connect(controller::Session& session) override {
    session.flow_add(0, 0, Match{}, apply({to_controller()}));
  }
  void on_packet_in(controller::Session& session, const PacketInMsg& event) override {
    const net::ParsedPacket parsed = net::parse_packet(event.packet);
    const std::uint32_t out = parsed.eth_dst == host_mac(1) ? 2 : 1;
    session.packet_out(event.packet.clone(), {output(out)}, event.in_port);
  }
};

double reactive_rtt_us() {
  RigOptions options;
  options.host_count = 2;
  options.access_link = sim::LinkSpec::gbps(1);
  HarmlessRig rig(options);
  rig.fabric->ss2().pipeline().table(0).remove(Match{}, /*strict=*/false);

  controller::Controller ctrl;
  ctrl.add_app<ReflectorApp>();
  ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, 200, 128, 1'000'000);  // each packet punts: no rule ever installed
  rig.network.run();
  return recorder.latency().p50() / 1000.0;
}

double dataplane_latency_us() {
  RigOptions options;
  options.host_count = 2;
  options.access_link = sim::LinkSpec::gbps(1);
  HarmlessRig rig(options);  // static L2 rules preinstalled
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, 200, 128, 1'000'000);
  rig.network.run();
  return recorder.latency().p50() / 1000.0;
}

double rule_to_effect_us() {
  RigOptions options;
  options.host_count = 2;
  options.access_link = sim::LinkSpec::gbps(1);
  HarmlessRig rig(options);
  rig.fabric->ss2().pipeline().table(0).remove(Match{}, /*strict=*/false);

  controller::Controller ctrl;
  controller::Session& session = ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  // Probe every 1 us; traffic is blackholed until the rule lands.
  const sim::SimNanos install_at = rig.network.now() + 10'000;
  rig.stream(0, 1, 2'000, 128, 1'000);
  sim::SimNanos first_delivery = -1;
  rig.hosts[1]->set_on_receive([&](const net::Packet&, const net::ParsedPacket& parsed) {
    if (parsed.udp && first_delivery < 0) first_delivery = rig.network.now();
  });
  rig.network.engine().schedule_at(install_at, [&session] {
    session.flow_add(0, 10, Match().eth_dst(host_mac(1)), apply({output(2)}));
  });
  rig.network.run();
  return first_delivery < 0 ? -1.0
                            : static_cast<double>(first_delivery - install_at) / 1000.0;
}

double installs_per_second(int count) {
  RigOptions options;
  options.host_count = 2;
  HarmlessRig rig(options);
  controller::Controller ctrl;
  controller::Session& session = ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  const sim::SimNanos start = rig.network.now();
  for (int i = 0; i < count; ++i)
    session.flow_add(0, 10,
                     Match().eth_dst(net::MacAddr::from_u64(0x0badULL + static_cast<std::uint64_t>(i))),
                     apply({output(1)}));
  session.barrier();
  rig.network.run();
  const double elapsed_ns = static_cast<double>(rig.network.now() - start);
  return static_cast<double>(count) * 1e9 / elapsed_ns;
}

}  // namespace

int main() {
  std::cout << "E8 - control-plane reactivity on the HARMLESS fabric\n"
            << "(control channel: 50 us one-way; data plane: 1G access, 10G trunk)\n\n";

  const double reactive = reactive_rtt_us();
  const double dataplane = dataplane_latency_us();
  const double rule_effect = rule_to_effect_us();
  const double rate_1k = installs_per_second(1'000);

  util::Table table({"metric", "value", "note"});
  table.add_row({"data-plane p50 (installed rule)", util::format("%.1f us", dataplane),
                 "E2's steady-state path"});
  table.add_row({"reactive p50 (punt + packet-out)", util::format("%.1f us", reactive),
                 util::format("%.0fx the data plane", reactive / dataplane)});
  table.add_row({"flow_add -> first delivery", util::format("%.1f us", rule_effect),
                 "one-way channel + probe quantization"});
  table.add_row({"flow_mod install rate", util::si_format(rate_1k, "mods/s"),
                 "1000 mods; channel models latency, not bandwidth"});
  std::cout << table.to_string() << '\n';

  std::cout << "Shape check: reactive forwarding costs ~2 channel traversals (~100 us\n"
               "+ datapath work) per packet - two orders above the data plane, which\n"
               "is why every HARMLESS app installs proactive rules and uses punts only\n"
               "for decisions; rule installs land in ~one channel delay and stream at\n"
               "channel rate, so 'fully reconfigurable' is millisecond-scale, not\n"
               "flag-day-scale.\n";
  return 0;
}

// bench_faults — Table 8: OpenFlow failure semantics under controller
// outages.
//
// A reactive L2 deployment (LearningSwitchApp + a StaticFlowApp
// program of `flows` controller-owned rules) runs on one soft switch
// while the FaultInjector crashes the controller for a configurable
// outage. Two traffic classes observe the outage:
//
//   warm — a stream whose forwarding rule was installed before the
//          crash. OpenFlow fail-secure keeps it flowing (installed
//          flows survive controller loss); only a switch reboot would
//          kill it.
//   cold — a stream that STARTS mid-outage, so its first packet needs
//          the controller. Under fail-secure it is dropped at the
//          packet-in governor until reconnect + resync; under
//          fail-standalone the switch bridges it immediately with
//          legacy MAC learning — holding legacy-baseline goodput
//          through the entire outage.
//
// Recovery time = last_resync_at - heal time: detection lag (echo
// misses) is already paid mid-outage, so this is backoff remainder +
// handshake + the full-state re-install, which the control channel's
// per-message serialization gap makes scale with `flows` (the point of
// the flow-count axis).
//
// A LegacyRig baseline row per outage shows what the hardware switch
// would have done (no controller: both classes ~100%). The fault-free
// determinism guard runs the outage-free scenario twice and insists on
// a bit-identical digest — the CI chaos-smoke job keys off it and off
// every faulted row having recovered.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "controller/apps/learning.hpp"
#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "sim/faults.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr sim::SimNanos kMs = 1'000'000;

// One paced stream every kPacketInterval; windows below count offered
// packets as window / interval.
constexpr sim::SimNanos kPacketInterval = 20'000;  // 50 kpps per stream
constexpr sim::SimNanos kOutageStart = 30 * kMs;
constexpr sim::SimNanos kColdLag = 3 * kMs;  // cold stream starts this far into the outage
constexpr sim::SimNanos kEnd = 150 * kMs;

struct Row {
  std::string mode;
  sim::SimNanos outage_ns = 0;
  std::size_t flows = 0;
  double warm_goodput_pct = 0;  // delivered/offered inside the outage window
  double cold_goodput_pct = 0;
  double recovery_ms = -1;  // last_resync_at - heal; -1 = never resynced
  std::uint64_t flows_reinstalled = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t standalone_packets = 0;
  std::uint64_t packet_ins_dropped = 0;
  std::uint64_t digest = 0;
  bool recovered = true;
};

// Count deliveries that land inside [kOutageStart, heal).
struct WindowCounter {
  sim::Engine* engine = nullptr;
  sim::SimNanos heal = 0;
  std::uint64_t in_window = 0;
  std::uint64_t total = 0;

  void attach(sim::Host& host) {
    host.set_on_receive([this](const net::Packet&, const net::ParsedPacket&) {
      ++total;
      const sim::SimNanos now = engine->now();
      if (now >= kOutageStart && now < heal) ++in_window;
    });
  }
};

double goodput_pct(std::uint64_t delivered, sim::SimNanos window, sim::SimNanos first_offer) {
  if (window <= first_offer) return 0;
  const double offered = static_cast<double>((window - first_offer) / kPacketInterval);
  if (offered <= 0) return 0;
  return 100.0 * static_cast<double>(delivered) / offered;
}

Row run_scenario(softswitch::FailoverSpec::Mode mode, sim::SimNanos outage_ns,
                 std::size_t flows) {
  const int host_count = 4;
  const sim::SimNanos heal = kOutageStart + outage_ns;

  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>(
      "dp", 0xD0, static_cast<std::size_t>(host_count), /*table_count=*/1);
  std::vector<sim::Host*> local_hosts;
  for (int i = 0; i < host_count; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
    network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    local_hosts.push_back(&host);
  }

  openflow::ControlChannel channel(network.engine());
  // The resync pacing knob: each control message serializes 5 us after
  // the previous one, so re-installing N rules takes ~5N us.
  channel.set_min_gap(5'000);
  sw.attach_channel(channel);

  softswitch::FailoverSpec spec;
  spec.mode = mode;
  spec.echo_interval_ns = 500'000;
  spec.warmup_ns = kMs;  // post-resync packet-in governor
  spec.warmup_packet_in_budget = 8;
  sw.set_failover(spec);

  controller::Controller ctrl;
  auto& program = ctrl.add_app<controller::StaticFlowApp>();
  for (std::size_t i = 0; i < flows; ++i) {
    openflow::FlowModMsg mod;
    mod.table_id = 0;
    mod.priority = 10;
    // The first two rules cover the WARM pair (h0 <-> h1) only — the
    // cold pair (h2 -> h3) must go through the learning app, so its
    // packets need a live controller. The rest are filler state
    // (synthetic MACs) whose only job is to be re-installed on resync.
    if (i < 2) {
      mod.match.eth_dst(host_mac(static_cast<int>(i)));
      mod.instructions =
          openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
    } else {
      mod.match.eth_dst(net::MacAddr::from_u64(0x0400'0000'0000ULL + i));
      mod.instructions = openflow::apply({openflow::output(1)});
    }
    program.flow(mod);
  }
  ctrl.add_app<controller::LearningSwitchApp>(/*table=*/0);
  ctrl.connect(channel, "dp");

  sim::FaultInjector injector(network.engine());
  injector.register_point("ctrl", ctrl);
  if (outage_ns > 0) {
    sim::FaultPlan plan;
    plan.crash("ctrl", kOutageStart, outage_ns);
    injector.arm(plan);
  }

  network.run_until(2 * kMs);  // handshake + program install

  WindowCounter warm{&network.engine(), heal};
  WindowCounter cold{&network.engine(), heal};
  warm.attach(*local_hosts[1]);
  cold.attach(*local_hosts[3]);
  const sim::SimNanos cold_start = kOutageStart + kColdLag;
  const std::size_t warm_count = static_cast<std::size_t>((kEnd - 2 * kMs) / kPacketInterval);
  const std::size_t cold_count =
      static_cast<std::size_t>((kEnd - cold_start) / kPacketInterval);
  local_hosts[0]->send_udp_stream(local_hosts[1]->mac(), local_hosts[1]->ip(), warm_count, 64,
                                  kPacketInterval, /*start=*/2 * kMs);
  local_hosts[2]->send_udp_stream(local_hosts[3]->mac(), local_hosts[3]->ip(), cold_count, 64,
                                  kPacketInterval, /*start=*/cold_start);

  network.run_until(kEnd);

  const auto& stats = sw.failover_stats();
  Row row;
  row.mode = (mode == softswitch::FailoverSpec::Mode::kFailSecure) ? "fail_secure"
                                                                   : "fail_standalone";
  row.outage_ns = outage_ns;
  row.flows = flows;
  row.warm_goodput_pct = goodput_pct(warm.in_window, outage_ns, 0);
  row.cold_goodput_pct = goodput_pct(cold.in_window, outage_ns, kColdLag);
  row.flows_reinstalled = stats.flows_reinstalled;
  row.disconnects = stats.disconnects;
  row.reconnects = stats.reconnects;
  row.resyncs = stats.resyncs;
  row.standalone_packets = stats.standalone_packets;
  row.packet_ins_dropped = stats.packet_ins_dropped;
  if (outage_ns > 0) {
    row.recovered = stats.disconnects > 0 && stats.reconnects == stats.disconnects &&
                    stats.resyncs == stats.reconnects && stats.last_resync_at >= heal;
    row.recovery_ms =
        stats.last_resync_at >= heal
            ? static_cast<double>(stats.last_resync_at - heal) / static_cast<double>(kMs)
            : -1.0;
  }
  // Digest for the fault-free determinism guard.
  std::uint64_t digest = 14695981039346656037ULL;
  const auto fold = [&digest](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      digest ^= (x >> (b * 8)) & 0xff;
      digest *= 1099511628211ULL;
    }
  };
  fold(network.engine().events_dispatched());
  fold(warm.total);
  fold(cold.total);
  fold(channel.to_controller().sent);
  fold(channel.to_switch().sent);
  row.digest = digest;
  return row;
}

// What the pre-migration hardware would do: no controller to lose.
Row legacy_baseline(sim::SimNanos outage_ns) {
  RigOptions options;
  options.host_count = 4;
  options.access_link = sim::LinkSpec::gbps(1);
  LegacyRig rig(options);
  const sim::SimNanos heal = kOutageStart + outage_ns;
  WindowCounter warm{&rig.network.engine(), heal};
  WindowCounter cold{&rig.network.engine(), heal};
  warm.attach(*rig.hosts[1]);
  cold.attach(*rig.hosts[3]);
  const sim::SimNanos cold_start = kOutageStart + kColdLag;
  const std::size_t warm_count = static_cast<std::size_t>((kEnd - 2 * kMs) / kPacketInterval);
  const std::size_t cold_count =
      static_cast<std::size_t>((kEnd - cold_start) / kPacketInterval);
  rig.hosts[0]->send_udp_stream(rig.hosts[1]->mac(), rig.hosts[1]->ip(), warm_count, 64,
                                kPacketInterval, /*start=*/2 * kMs);
  rig.hosts[2]->send_udp_stream(rig.hosts[3]->mac(), rig.hosts[3]->ip(), cold_count, 64,
                                kPacketInterval, /*start=*/cold_start);
  rig.network.run_until(kEnd);

  Row row;
  row.mode = "legacy_baseline";
  row.outage_ns = outage_ns;
  row.warm_goodput_pct = goodput_pct(warm.in_window, outage_ns, 0);
  row.cold_goodput_pct = goodput_pct(cold.in_window, outage_ns, kColdLag);
  return row;
}

Json to_json(const Row& row) {
  Json json = Json::object();
  json.set("mode", row.mode);
  json.set("outage_ms", static_cast<double>(row.outage_ns) / static_cast<double>(kMs));
  json.set("flows", row.flows);
  json.set("warm_goodput_pct", row.warm_goodput_pct);
  json.set("cold_goodput_pct", row.cold_goodput_pct);
  json.set("recovery_ms", row.recovery_ms);
  json.set("flows_reinstalled", row.flows_reinstalled);
  json.set("disconnects", row.disconnects);
  json.set("reconnects", row.reconnects);
  json.set("resyncs", row.resyncs);
  json.set("standalone_packets", row.standalone_packets);
  json.set("packet_ins_dropped", row.packet_ins_dropped);
  json.set("recovered", row.recovered);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::vector<sim::SimNanos> outages =
      quick ? std::vector<sim::SimNanos>{10 * kMs} : std::vector<sim::SimNanos>{10 * kMs, 40 * kMs};
  const std::vector<std::size_t> flow_counts =
      quick ? std::vector<std::size_t>{16, 128} : std::vector<std::size_t>{16, 128, 1024};

  std::cout << "bench_faults - Table 8: goodput dip and time-to-recover across controller\n"
               "outages (mode x outage x controller-owned flow count)"
            << (quick ? " [QUICK]" : "") << "\n\n";

  util::Table table({"mode", "outage_ms", "flows", "warm_good%", "cold_good%", "recovery_ms",
                     "reinstalled", "standalone_pkts", "pktin_dropped"});
  Json rows = Json::array();
  bool all_recovered = true;

  for (const sim::SimNanos outage : outages) {
    const Row base = legacy_baseline(outage);
    table.add_row({base.mode, util::format("%.0f", static_cast<double>(outage) / 1e6), "-",
                   util::format("%.1f", base.warm_goodput_pct),
                   util::format("%.1f", base.cold_goodput_pct), "-", "-", "-", "-"});
    rows.push(to_json(base));
    for (const auto mode : {softswitch::FailoverSpec::Mode::kFailSecure,
                            softswitch::FailoverSpec::Mode::kFailStandalone}) {
      for (const std::size_t flows : flow_counts) {
        const Row row = run_scenario(mode, outage, flows);
        all_recovered = all_recovered && row.recovered;
        table.add_row(
            {row.mode, util::format("%.0f", static_cast<double>(outage) / 1e6),
             util::format("%zu", row.flows), util::format("%.1f", row.warm_goodput_pct),
             util::format("%.1f", row.cold_goodput_pct),
             row.recovery_ms < 0 ? std::string("never") : util::format("%.2f", row.recovery_ms),
             util::format("%llu", static_cast<unsigned long long>(row.flows_reinstalled)),
             util::format("%llu", static_cast<unsigned long long>(row.standalone_packets)),
             util::format("%llu", static_cast<unsigned long long>(row.packet_ins_dropped))});
        rows.push(to_json(row));
      }
    }
  }
  std::cout << table.to_string() << '\n';

  // Fault-free determinism guard: the outage-free scenario twice, bit
  // identical or the bench fails (the chaos-smoke CI gate).
  const Row free1 = run_scenario(softswitch::FailoverSpec::Mode::kFailSecure, 0, 16);
  const Row free2 = run_scenario(softswitch::FailoverSpec::Mode::kFailSecure, 0, 16);
  const bool deterministic = free1.digest == free2.digest;
  std::cout << "fault-free determinism: " << (deterministic ? "OK" : "DRIFT") << '\n';

  Json report = Json::object();
  report.set("table8", std::move(rows));
  Json guard = Json::object();
  guard.set("fault_free_digest_match", deterministic);
  guard.set("all_faulted_rows_recovered", all_recovered);
  report.set("guards", std::move(guard));
  write_bench_json("BENCH_faults.json", report);

  if (!deterministic) {
    std::cerr << "FAIL: fault-free runs diverged\n";
    return 1;
  }
  if (!all_recovered) {
    std::cerr << "FAIL: a faulted scenario never reconnected + resynced\n";
    return 1;
  }
  return 0;
}

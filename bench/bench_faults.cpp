// bench_faults — Table 8: OpenFlow failure semantics under controller
// outages.
//
// A reactive L2 deployment (LearningSwitchApp + a StaticFlowApp
// program of `flows` controller-owned rules) runs on one soft switch
// while the FaultInjector crashes the controller for a configurable
// outage. Two traffic classes observe the outage:
//
//   warm — a stream whose forwarding rule was installed before the
//          crash. OpenFlow fail-secure keeps it flowing (installed
//          flows survive controller loss); only a switch reboot would
//          kill it.
//   cold — a stream that STARTS mid-outage, so its first packet needs
//          the controller. Under fail-secure it is dropped at the
//          packet-in governor until reconnect + resync; under
//          fail-standalone the switch bridges it immediately with
//          legacy MAC learning — holding legacy-baseline goodput
//          through the entire outage.
//
// Recovery time = last_resync_at - heal time: detection lag (echo
// misses) is already paid mid-outage, so this is backoff remainder +
// handshake + the full-state re-install, which the control channel's
// per-message serialization gap makes scale with `flows` (the point of
// the flow-count axis).
//
// A LegacyRig baseline row per outage shows what the hardware switch
// would have done (no controller: both classes ~100%). The fault-free
// determinism guard runs the outage-free scenario twice and insists on
// a bit-identical digest — the CI chaos-smoke job keys off it and off
// every faulted row having recovered.
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "controller/apps/learning.hpp"
#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/faults.hpp"
#include "sim/scheduler.hpp"
#include "sim/witness.hpp"
#include "softswitch/replication.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr sim::SimNanos kMs = 1'000'000;

// One paced stream every kPacketInterval; windows below count offered
// packets as window / interval.
constexpr sim::SimNanos kPacketInterval = 20'000;  // 50 kpps per stream
constexpr sim::SimNanos kOutageStart = 30 * kMs;
constexpr sim::SimNanos kColdLag = 3 * kMs;  // cold stream starts this far into the outage
constexpr sim::SimNanos kEnd = 150 * kMs;

struct Row {
  std::string mode;
  sim::SimNanos outage_ns = 0;
  std::size_t flows = 0;
  double warm_goodput_pct = 0;  // delivered/offered inside the outage window
  double cold_goodput_pct = 0;
  double recovery_ms = -1;  // last_resync_at - heal; -1 = never resynced
  std::uint64_t flows_reinstalled = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t standalone_packets = 0;
  std::uint64_t packet_ins_dropped = 0;
  std::uint64_t digest = 0;
  bool recovered = true;
};

// Count deliveries that land inside [kOutageStart, heal).
struct WindowCounter {
  sim::Engine* engine = nullptr;
  sim::SimNanos heal = 0;
  std::uint64_t in_window = 0;
  std::uint64_t total = 0;

  void attach(sim::Host& host) {
    host.set_on_receive([this](const net::Packet&, const net::ParsedPacket&) {
      ++total;
      const sim::SimNanos now = engine->now();
      if (now >= kOutageStart && now < heal) ++in_window;
    });
  }
};

double goodput_pct(std::uint64_t delivered, sim::SimNanos window, sim::SimNanos first_offer) {
  if (window <= first_offer) return 0;
  const double offered = static_cast<double>((window - first_offer) / kPacketInterval);
  if (offered <= 0) return 0;
  return 100.0 * static_cast<double>(delivered) / offered;
}

Row run_scenario(softswitch::FailoverSpec::Mode mode, sim::SimNanos outage_ns,
                 std::size_t flows) {
  const int host_count = 4;
  const sim::SimNanos heal = kOutageStart + outage_ns;

  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>(
      "dp", 0xD0, static_cast<std::size_t>(host_count), /*table_count=*/1);
  std::vector<sim::Host*> local_hosts;
  for (int i = 0; i < host_count; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
    network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    local_hosts.push_back(&host);
  }

  openflow::ControlChannel channel(network.engine());
  // The resync pacing knob: each control message serializes 5 us after
  // the previous one, so re-installing N rules takes ~5N us.
  channel.set_min_gap(5'000);
  sw.attach_channel(channel);

  softswitch::FailoverSpec spec;
  spec.mode = mode;
  spec.echo_interval_ns = 500'000;
  spec.warmup_ns = kMs;  // post-resync packet-in governor
  spec.warmup_packet_in_budget = 8;
  sw.set_failover(spec);

  controller::Controller ctrl;
  auto& program = ctrl.add_app<controller::StaticFlowApp>();
  for (std::size_t i = 0; i < flows; ++i) {
    openflow::FlowModMsg mod;
    mod.table_id = 0;
    mod.priority = 10;
    // The first two rules cover the WARM pair (h0 <-> h1) only — the
    // cold pair (h2 -> h3) must go through the learning app, so its
    // packets need a live controller. The rest are filler state
    // (synthetic MACs) whose only job is to be re-installed on resync.
    if (i < 2) {
      mod.match.eth_dst(host_mac(static_cast<int>(i)));
      mod.instructions =
          openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
    } else {
      mod.match.eth_dst(net::MacAddr::from_u64(0x0400'0000'0000ULL + i));
      mod.instructions = openflow::apply({openflow::output(1)});
    }
    program.flow(mod);
  }
  ctrl.add_app<controller::LearningSwitchApp>(/*table=*/0);
  ctrl.connect(channel, "dp");

  sim::FaultInjector injector(network.engine());
  injector.register_point("ctrl", ctrl);
  if (outage_ns > 0) {
    sim::FaultPlan plan;
    plan.crash("ctrl", kOutageStart, outage_ns);
    injector.arm(plan);
  }

  network.run_until(2 * kMs);  // handshake + program install

  WindowCounter warm{&network.engine(), heal};
  WindowCounter cold{&network.engine(), heal};
  warm.attach(*local_hosts[1]);
  cold.attach(*local_hosts[3]);
  const sim::SimNanos cold_start = kOutageStart + kColdLag;
  const std::size_t warm_count = static_cast<std::size_t>((kEnd - 2 * kMs) / kPacketInterval);
  const std::size_t cold_count =
      static_cast<std::size_t>((kEnd - cold_start) / kPacketInterval);
  local_hosts[0]->send_udp_stream(local_hosts[1]->mac(), local_hosts[1]->ip(), warm_count, 64,
                                  kPacketInterval, /*start=*/2 * kMs);
  local_hosts[2]->send_udp_stream(local_hosts[3]->mac(), local_hosts[3]->ip(), cold_count, 64,
                                  kPacketInterval, /*start=*/cold_start);

  network.run_until(kEnd);

  const auto& stats = sw.failover_stats();
  Row row;
  row.mode = (mode == softswitch::FailoverSpec::Mode::kFailSecure) ? "fail_secure"
                                                                   : "fail_standalone";
  row.outage_ns = outage_ns;
  row.flows = flows;
  row.warm_goodput_pct = goodput_pct(warm.in_window, outage_ns, 0);
  row.cold_goodput_pct = goodput_pct(cold.in_window, outage_ns, kColdLag);
  row.flows_reinstalled = stats.flows_reinstalled;
  row.disconnects = stats.disconnects;
  row.reconnects = stats.reconnects;
  row.resyncs = stats.resyncs;
  row.standalone_packets = stats.standalone_packets;
  row.packet_ins_dropped = stats.packet_ins_dropped;
  if (outage_ns > 0) {
    row.recovered = stats.disconnects > 0 && stats.reconnects == stats.disconnects &&
                    stats.resyncs == stats.reconnects && stats.last_resync_at >= heal;
    row.recovery_ms =
        stats.last_resync_at >= heal
            ? static_cast<double>(stats.last_resync_at - heal) / static_cast<double>(kMs)
            : -1.0;
  }
  // Digest for the fault-free determinism guard.
  std::uint64_t digest = 14695981039346656037ULL;
  const auto fold = [&digest](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      digest ^= (x >> (b * 8)) & 0xff;
      digest *= 1099511628211ULL;
    }
  };
  fold(network.engine().events_dispatched());
  fold(warm.total);
  fold(cold.total);
  fold(channel.to_controller().sent);
  fold(channel.to_switch().sent);
  row.digest = digest;
  return row;
}

// What the pre-migration hardware would do: no controller to lose.
Row legacy_baseline(sim::SimNanos outage_ns) {
  RigOptions options;
  options.host_count = 4;
  options.access_link = sim::LinkSpec::gbps(1);
  LegacyRig rig(options);
  const sim::SimNanos heal = kOutageStart + outage_ns;
  WindowCounter warm{&rig.network.engine(), heal};
  WindowCounter cold{&rig.network.engine(), heal};
  warm.attach(*rig.hosts[1]);
  cold.attach(*rig.hosts[3]);
  const sim::SimNanos cold_start = kOutageStart + kColdLag;
  const std::size_t warm_count = static_cast<std::size_t>((kEnd - 2 * kMs) / kPacketInterval);
  const std::size_t cold_count =
      static_cast<std::size_t>((kEnd - cold_start) / kPacketInterval);
  rig.hosts[0]->send_udp_stream(rig.hosts[1]->mac(), rig.hosts[1]->ip(), warm_count, 64,
                                kPacketInterval, /*start=*/2 * kMs);
  rig.hosts[2]->send_udp_stream(rig.hosts[3]->mac(), rig.hosts[3]->ip(), cold_count, 64,
                                kPacketInterval, /*start=*/cold_start);
  rig.network.run_until(kEnd);

  Row row;
  row.mode = "legacy_baseline";
  row.outage_ns = outage_ns;
  row.warm_goodput_pct = goodput_pct(warm.in_window, outage_ns, 0);
  row.cold_goodput_pct = goodput_pct(cold.in_window, outage_ns, kColdLag);
  return row;
}

// ---- Table 10: stateful HA — established-TCP survival ----------------
//
// A stateful firewall (only ct-tracked connections pass; everything
// else drops) makes the conntrack table load-bearing: a mid-stream
// segment with no entry classifies INVALID and dies at the priority-0
// drop. Two HA scenarios measure established-TCP goodput through a
// failure of the box that holds that table:
//
//   crash_restart — one switch crashes for 10 ms and restarts. Swept
//       over the checkpoint interval: 0 (amnesiac — the PR-8 behaviour)
//       must deliver ZERO established goodput after the restart; any
//       checkpointing cadence must deliver > 0. Two flows expose
//       snapshot staleness: one established long before the crash
//       (every cadence images it) and one 1.8 ms before it (only a
//       sub-1.8 ms cadence catches it).
//
//   takeover — active + standby behind a bench-local mux switch whose
//       steering rules flip to the standby on the takeover callback.
//       The active replicates conntrack deltas (and heartbeats) to the
//       standby; crashing the active silences the stream and the
//       standby promotes itself. Swept over replication lag (liveness
//       detection AND state arrival both ride the sync session, so lag
//       delays the takeover too) and over per-batch loss. The loss
//       rows use an out-of-band detector (explicit takeover 2 ms after
//       the crash) because a lossy sync session also eats heartbeats —
//       random premature takeovers would measure the detector, not the
//       state stream.

constexpr std::uint64_t kPr8FaultFreeDigest = 14835486554983554809ULL;
constexpr sim::SimNanos kHaCrashAt = 30 * kMs;
constexpr sim::SimNanos kHaHeal = 40 * kMs;
constexpr sim::SimNanos kHaEnd = 100 * kMs;

std::vector<openflow::FlowModMsg> ct_firewall_rules() {
  std::vector<openflow::FlowModMsg> rules;
  for (int dir = 0; dir < 2; ++dir) {
    openflow::FlowModMsg est;
    est.table_id = 0;
    est.priority = 30;
    est.match.in_port(static_cast<std::uint32_t>(dir + 1)).ct_established();
    est.instructions =
        openflow::apply({openflow::ct_commit(), openflow::output(dir == 0 ? 2u : 1u)});
    rules.push_back(est);
  }
  openflow::FlowModMsg open;
  open.table_id = 0;
  open.priority = 20;
  open.match.in_port(1).ct_new();
  open.instructions = openflow::apply({openflow::ct_commit(), openflow::output(2)});
  rules.push_back(open);
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  rules.push_back(drop);
  return rules;
}

struct HaRow {
  std::string scenario;
  double checkpoint_ms = -1;  // crash_restart axis; 0 = amnesiac
  double lag_us = -1;         // takeover axes
  double loss = -1;
  std::string detector = "-";  // takeover: "monitor" | "external"
  std::uint64_t offered = 0;   // segments offered after the measurement epoch
  std::uint64_t delivered = 0;
  double est_goodput_pct = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ct_restored = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t deltas_delivered = 0;
  bool survived = false;
};

struct HaFlow {
  net::FlowKey fwd;
  net::FlowKey rev;
  sim::SimNanos established_at = 0;
};

/// SYN at established_at, SYN|ACK 200 us later, then an ACK stream
/// every kPacketInterval until `end`. Offered counts ACKs sent at or
/// after `epoch` (the measurement window).
void schedule_flow(sim::Engine& engine, sim::Host& a, sim::Host& b, const HaFlow& flow,
                   sim::SimNanos end, sim::SimNanos epoch, std::uint64_t& offered) {
  engine.schedule_at(flow.established_at,
                     [&a, &flow] { a.send(net::make_tcp(flow.fwd, net::kTcpSyn)); });
  engine.schedule_at(flow.established_at + 200'000, [&b, &flow] {
    b.send(net::make_tcp(flow.rev, net::kTcpSyn | net::kTcpAck));
  });
  for (sim::SimNanos at = flow.established_at + 500'000; at < end; at += kPacketInterval) {
    engine.schedule_at(at, [&a, &flow, &offered, at, epoch] {
      if (at >= epoch) ++offered;
      a.send(net::make_tcp(flow.fwd, net::kTcpAck));
    });
  }
}

HaRow run_crash_restart(sim::SimNanos checkpoint_interval) {
  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("fw", 0xE0, 2, /*table_count=*/1);
  sw.enable_conntrack(openflow::CtConfig{});
  auto& a = network.add_host("a", host_mac(0), host_ip(0));
  auto& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, sw, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, sw, 1, sim::LinkSpec::gbps(10));

  openflow::ControlChannel channel(network.engine());
  channel.set_min_gap(5'000);
  sw.attach_channel(channel);
  softswitch::FailoverSpec spec;
  spec.mode = softswitch::FailoverSpec::Mode::kFailSecure;
  spec.echo_interval_ns = 500'000;
  spec.checkpoint_interval_ns = checkpoint_interval;
  sw.set_failover(spec);

  controller::Controller ctrl;
  auto& program = ctrl.add_app<controller::StaticFlowApp>();
  for (const openflow::FlowModMsg& rule : ct_firewall_rules()) program.flow(rule);
  ctrl.connect(channel, "fw");

  sim::FaultInjector injector(network.engine());
  injector.register_point("sw", sw);
  sim::FaultPlan plan;
  plan.crash("sw", kHaCrashAt, kHaHeal - kHaCrashAt);
  injector.arm(plan);

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  b.set_on_receive([&network, &delivered](const net::Packet&, const net::ParsedPacket&) {
    if (network.now() >= kHaHeal) ++delivered;
  });

  // Flow 0: established at 2 ms (every checkpoint cadence images it).
  // Flow 1: established 1.8 ms before the crash (staleness probe).
  std::vector<HaFlow> flows;
  for (int i = 0; i < 2; ++i) {
    const auto sport = static_cast<std::uint16_t>(40000 + i);
    flows.push_back(HaFlow{net::FlowKey{a.mac(), b.mac(), a.ip(), b.ip(), sport, 80},
                           net::FlowKey{b.mac(), a.mac(), b.ip(), a.ip(), 80, sport},
                           i == 0 ? 2 * kMs : kHaCrashAt - 1'800'000});
  }
  for (const HaFlow& flow : flows)
    schedule_flow(network.engine(), a, b, flow, kHaEnd, kHaHeal, offered);

  network.run_until(kHaEnd);

  HaRow row;
  row.scenario = "crash_restart";
  row.checkpoint_ms = static_cast<double>(checkpoint_interval) / static_cast<double>(kMs);
  row.offered = offered;
  row.delivered = delivered;
  row.est_goodput_pct =
      offered == 0 ? 0 : 100.0 * static_cast<double>(delivered) / static_cast<double>(offered);
  row.checkpoints = sw.failover_stats().checkpoints;
  row.ct_restored = sw.failover_stats().ct_restored;
  row.survived = delivered > 0;
  return row;
}

HaRow run_takeover(sim::SimNanos lag_ns, double loss, bool auto_monitor) {
  constexpr std::size_t kFlowCount = 8;
  sim::Network network;
  auto& mux = network.add_node<softswitch::SoftSwitch>("mux", 0xE1, 6, /*table_count=*/1);
  auto& act = network.add_node<softswitch::SoftSwitch>("act", 0xE2, 2, /*table_count=*/1);
  auto& stb = network.add_node<softswitch::SoftSwitch>("stb", 0xE3, 2, /*table_count=*/1);
  act.enable_conntrack(openflow::CtConfig{});
  stb.enable_conntrack(openflow::CtConfig{});
  auto& a = network.add_host("a", host_mac(0), host_ip(0));
  auto& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, mux, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, mux, 1, sim::LinkSpec::gbps(10));
  // Mux OF 3/4 patch to the active's two firewall ports, OF 5/6 to the
  // standby's.
  mux.bind_patch(3, act, 1);
  mux.bind_patch(4, act, 2);
  mux.bind_patch(5, stb, 1);
  mux.bind_patch(6, stb, 2);
  for (const openflow::FlowModMsg& rule : ct_firewall_rules()) {
    act.install(rule).check();
    stb.install(rule).check();
  }
  const auto steer = [&mux](std::uint32_t in, std::uint32_t out, std::uint16_t priority) {
    openflow::FlowModMsg mod;
    mod.table_id = 0;
    mod.priority = priority;
    mod.match.in_port(in);
    mod.instructions = openflow::apply({openflow::output(out)});
    mux.install(mod).check();
  };
  steer(1, 3, 10);
  steer(3, 1, 10);
  steer(2, 4, 10);
  steer(4, 2, 10);

  softswitch::ReplicationSpec rspec;
  rspec.latency_ns = lag_ns;
  rspec.loss = loss;
  // External detector: the monitor is parked (a lossy sync session
  // also loses heartbeats) and the bench promotes the standby itself.
  if (!auto_monitor) rspec.takeover_miss_threshold = 1'000'000;
  softswitch::ReplicationChannel repl(network.engine(), rspec);
  act.enable_ha_active(repl);
  stb.enable_ha_standby(repl);
  stb.set_ha_takeover_handler([&steer] {
    steer(1, 5, 20);
    steer(5, 1, 20);
    steer(2, 6, 20);
    steer(6, 2, 20);
  });

  sim::Engine& engine = network.engine();
  engine.schedule_at(kHaCrashAt, [&act] { act.fault_crash(); });
  if (!auto_monitor)
    engine.schedule_at(kHaCrashAt + 2 * kMs, [&stb] { stb.ha_takeover(); });

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  b.set_on_receive([&network, &delivered](const net::Packet&, const net::ParsedPacket&) {
    if (network.now() >= kHaCrashAt) ++delivered;
  });

  // Flows establish staggered across [14 ms, 28 ms): with lag, the
  // youngest flows' deltas are still in flight (or arrive after the
  // promotion and are refused) when the active dies.
  std::vector<HaFlow> flows;
  for (std::size_t i = 0; i < kFlowCount; ++i) {
    const auto sport = static_cast<std::uint16_t>(41000 + i);
    flows.push_back(HaFlow{net::FlowKey{a.mac(), b.mac(), a.ip(), b.ip(), sport, 80},
                           net::FlowKey{b.mac(), a.mac(), b.ip(), a.ip(), 80, sport},
                           14 * kMs + static_cast<sim::SimNanos>(i) * 2 * kMs});
  }
  for (const HaFlow& flow : flows) schedule_flow(engine, a, b, flow, kHaEnd, kHaCrashAt, offered);

  network.run_until(kHaEnd);

  HaRow row;
  row.scenario = "takeover";
  row.lag_us = static_cast<double>(lag_ns) / 1e3;
  row.loss = loss;
  row.detector = auto_monitor ? "monitor" : "external";
  row.offered = offered;
  row.delivered = delivered;
  row.est_goodput_pct =
      offered == 0 ? 0 : 100.0 * static_cast<double>(delivered) / static_cast<double>(offered);
  row.takeovers = stb.failover_stats().takeovers;
  row.deltas_delivered = repl.stats().deltas_delivered;
  row.survived = delivered > 0;
  return row;
}

// ---- Table 11: split-brain containment and incremental checkpoints ---
//
// Partition matrix x fencing. Two SNAT gateways (each fronting its own
// client pair, sharing one 8-port external pool) run active/standby
// with duplex replication. Four pre-split connections consume half the
// pool on the active — and, via the delta stream, park the same
// reservations on the standby — leaving FOUR free ports. During a
// 30 ms partition each side that believes it is active admits THREE
// new connections: if both believe it, 3 + 3 allocations from 4 free
// ports overlap by pigeonhole — the irrefutable split-brain artifact
// (one external port owned by two different flows).
//
//   fencing off — the PR-9 seam: the standby promotes on heartbeat
//       silence alone, so an active-standby partition manufactures a
//       second active and the conflict count goes positive.
//   fencing on — promotion additionally needs the witness's lease, and
//       an active that cannot renew fences itself (new commits/NAT
//       refused, established flows still served). Every cell of the
//       matrix must show ZERO conflicts and zero double-active probe
//       samples; the double partition additionally exercises warm
//       failback (the healed ex-active demotes and is resynced by the
//       new active over the reverse channel).
//
// The second half measures incremental checkpoints: an 8-core firewall
// with 32 idle connections spread across its shards plus ONE hot flow.
// Full mode re-serializes every shard every cadence; dirty-shard
// tracking serializes only the hot one — steady-state checkpoint bytes
// must drop >= 5x at equal cadence (the staleness-vs-overhead sweep's
// honesty guard).

constexpr sim::SimNanos kSplitAt = 30 * kMs;
constexpr sim::SimNanos kHealAt = 60 * kMs;
constexpr sim::SimNanos kT11End = 80 * kMs;
constexpr std::uint16_t kSnatLo = 50000;
constexpr std::uint16_t kSnatHi = 50007;  // 8 ports: 4 pre-split + 4 contested

enum class PartitionKind { kActiveStandby, kWitness, kDouble };

const char* partition_name(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kActiveStandby: return "active_standby";
    case PartitionKind::kWitness: return "witness";
    case PartitionKind::kDouble: return "double";
  }
  return "?";
}

std::vector<openflow::FlowModMsg> t11_snat_rules(net::MacAddr a_mac, net::MacAddr b_mac) {
  std::vector<openflow::FlowModMsg> rules;
  openflow::FlowModMsg out;
  out.table_id = 0;
  out.priority = 100;
  out.match.in_port(1).eth_type(0x0800).ip_proto(6);
  out.instructions = openflow::apply({openflow::ct_snat(net::Ipv4Addr(203, 0, 113, 1), kSnatLo,
                                                        kSnatHi),
                                      openflow::set_eth_dst(b_mac), openflow::output(2)});
  rules.push_back(out);
  openflow::FlowModMsg back;
  back.table_id = 0;
  back.priority = 100;
  back.match.in_port(2).eth_type(0x0800).ip_proto(6).ct_tracked();
  back.instructions =
      openflow::apply({openflow::ct_commit(), openflow::set_eth_dst(a_mac), openflow::output(1)});
  rules.push_back(back);
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  rules.push_back(drop);
  return rules;
}

struct T11Row {
  std::string partition;
  bool fencing = false;
  std::uint64_t nat_conflicts = 0;         // external ports owned by two flows
  std::uint64_t double_active_samples = 0; // 100 us probe: both unfenced-active
  std::uint64_t fenced_rejects = 0;
  std::uint64_t promotions_denied = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t demotions = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t failback_entries = 0;
};

T11Row run_partition(PartitionKind kind, bool fencing) {
  sim::Network network;
  sim::Engine& engine = network.engine();
  auto& act = network.add_node<softswitch::SoftSwitch>("act", 0xF1, 2, /*table_count=*/1);
  auto& stb = network.add_node<softswitch::SoftSwitch>("stb", 0xF2, 2, /*table_count=*/1);
  act.enable_conntrack(openflow::CtConfig{});
  stb.enable_conntrack(openflow::CtConfig{});
  auto& a1 = network.add_host("a1", host_mac(0), host_ip(0));
  auto& b1 = network.add_host("b1", host_mac(1), host_ip(1));
  auto& a2 = network.add_host("a2", host_mac(2), host_ip(2));
  auto& b2 = network.add_host("b2", host_mac(3), host_ip(3));
  network.connect(a1, 0, act, 0, sim::LinkSpec::gbps(10));
  network.connect(b1, 0, act, 1, sim::LinkSpec::gbps(10));
  network.connect(a2, 0, stb, 0, sim::LinkSpec::gbps(10));
  network.connect(b2, 0, stb, 1, sim::LinkSpec::gbps(10));
  for (const openflow::FlowModMsg& rule : t11_snat_rules(a1.mac(), b1.mac()))
    act.install(rule).check();
  for (const openflow::FlowModMsg& rule : t11_snat_rules(a2.mac(), b2.mac()))
    stb.install(rule).check();

  softswitch::ReplicationChannel ab(engine);  // act -> stb
  softswitch::ReplicationChannel ba(engine);  // stb -> act
  sim::Witness witness;
  sim::WitnessLink wl_act(engine, witness, 0xF1);
  sim::WitnessLink wl_stb(engine, witness, 0xF2);
  if (fencing) {
    act.set_ha_witness(wl_act);
    stb.set_ha_witness(wl_stb);
  }
  act.enable_ha_active(ab, &ba);
  stb.enable_ha_standby(ab, &ba);

  // Pre-split connections: four SNAT allocations on the active, the
  // same reservations parked on the standby via the delta stream.
  for (int i = 0; i < 4; ++i) {
    engine.schedule_at((5 + i) * kMs, [&a1, &b1, i] {
      a1.send(net::make_tcp(net::FlowKey{a1.mac(), b1.mac(), a1.ip(), b1.ip(),
                                         static_cast<std::uint16_t>(42000 + i), 80},
                            net::kTcpSyn));
    });
  }

  const bool split_repl = kind != PartitionKind::kWitness;
  const bool split_witness = kind != PartitionKind::kActiveStandby;
  engine.schedule_at(kSplitAt, [&ab, &ba, &wl_act, split_repl, split_witness] {
    if (split_repl) {
      ab.set_up(false);
      ba.set_up(false);
    }
    if (split_witness) wl_act.set_up(false);
  });
  engine.schedule_at(kHealAt, [&ab, &ba, &wl_act] {
    ab.set_up(true);
    ba.set_up(true);
    wl_act.set_up(true);
  });

  // Mid-split admissions, three per side. The active's clients keep
  // arriving regardless (a fenced box refuses them at the tracker);
  // the standby's clients only reach it once it claims the active
  // role (the re-steer model of Table 10's mux, without the mux).
  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(34 * kMs + static_cast<sim::SimNanos>(i) * kMs, [&a1, &b1, i] {
      a1.send(net::make_tcp(net::FlowKey{a1.mac(), b1.mac(), a1.ip(), b1.ip(),
                                         static_cast<std::uint16_t>(43000 + i), 80},
                            net::kTcpSyn));
    });
    engine.schedule_at(34 * kMs + 500'000 + static_cast<sim::SimNanos>(i) * kMs,
                       [&stb, &a2, &b2, i] {
                         if (!stb.ha_promoted()) return;
                         a2.send(net::make_tcp(
                             net::FlowKey{a2.mac(), b2.mac(), a2.ip(), b2.ip(),
                                          static_cast<std::uint16_t>(44000 + i), 80},
                             net::kTcpSyn));
                       });
  }

  // Dense probe across split and heal: any instant with two unfenced
  // actives is a containment failure.
  std::uint64_t double_active = 0;
  for (sim::SimNanos at = kSplitAt; at <= 70 * kMs; at += 100'000) {
    engine.schedule_at(at, [&act, &stb, &double_active] {
      if (act.ha_unfenced_active() && stb.ha_unfenced_active()) ++double_active;
    });
  }

  network.run_until(kT11End);

  T11Row row;
  row.partition = partition_name(kind);
  row.fencing = fencing;
  row.double_active_samples = double_active;
  row.fenced_rejects = act.pipeline().conntrack(0).stats().fenced_rejects +
                       stb.pipeline().conntrack(0).stats().fenced_rejects;
  row.promotions_denied = stb.failover_stats().ha_promotions_denied;
  row.takeovers = stb.failover_stats().takeovers;
  row.demotions = act.failover_stats().ha_demotions;
  row.failbacks = act.failover_stats().ha_failbacks;
  row.failback_entries = act.failover_stats().ha_failback_entries;

  // Conflict audit: collect every SNAT allocation on both boxes; an
  // external port owned by two different original flows is split-brain
  // damage (reply traffic for one of them lands on the other).
  std::map<std::uint16_t, std::set<std::string>> owners;
  for (const softswitch::SoftSwitch* sw : {&act, &stb}) {
    for (const openflow::ConnEntry& entry : sw->pipeline().conntrack(0).snapshot()) {
      if (entry.nat.kind != openflow::CtAction::Nat::kSource) continue;
      owners[entry.nat.port].insert(util::format("%u:%u", entry.orig.src_ip,
                                                 static_cast<unsigned>(entry.orig.src_port)));
    }
  }
  for (const auto& [port, origins] : owners)
    if (origins.size() > 1) ++row.nat_conflicts;
  return row;
}

struct CheckpointRow {
  bool incremental = false;
  std::uint64_t checkpoints = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t shards_skipped = 0;
  sim::SimNanos ns_billed = 0;
};

CheckpointRow run_checkpoint_bytes(bool incremental) {
  constexpr sim::SimNanos kCkptEnd = 100 * kMs;
  sim::Network network;
  sim::Engine& engine = network.engine();
  sim::IngressSpec ingress;
  ingress.cores.cores = 8;
  ingress.cores.rss = sim::RssPolicy::kSymmetric;
  auto& sw = network.add_node<softswitch::SoftSwitch>("fw", 0xF5, 2, /*table_count=*/1,
                                                      /*specialized=*/true, /*flow_cache=*/true,
                                                      /*burst_size=*/32, ingress);
  sw.enable_conntrack(openflow::CtConfig{});
  for (const openflow::FlowModMsg& rule : ct_firewall_rules()) sw.install(rule).check();
  auto& a = network.add_host("a", host_mac(0), host_ip(0));
  auto& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, sw, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, sw, 1, sim::LinkSpec::gbps(10));

  softswitch::FailoverSpec spec;
  spec.checkpoint_interval_ns = kMs;
  spec.incremental_checkpoints = incremental;
  sw.set_failover(spec);

  // The skew: 32 connections committed once and then idle, spread by
  // RSS across the 8 shards...
  for (int i = 0; i < 32; ++i) {
    engine.schedule_at(2 * kMs + static_cast<sim::SimNanos>(i) * 50'000, [&a, &b, i] {
      a.send(net::make_tcp(net::FlowKey{a.mac(), b.mac(), a.ip(), b.ip(),
                                        static_cast<std::uint16_t>(42000 + i), 80},
                           net::kTcpSyn));
    });
  }
  // ...and ONE hot flow ACKing every 100 us, dirtying only its shard.
  const net::FlowKey hot{a.mac(), b.mac(), a.ip(), b.ip(), 41000, 80};
  const net::FlowKey hot_rev{b.mac(), a.mac(), b.ip(), a.ip(), 80, 41000};
  engine.schedule_at(4 * kMs, [&a, hot] { a.send(net::make_tcp(hot, net::kTcpSyn)); });
  engine.schedule_at(4 * kMs + 200'000,
                     [&b, hot_rev] { b.send(net::make_tcp(hot_rev, net::kTcpSyn | net::kTcpAck)); });
  for (sim::SimNanos at = 5 * kMs; at < kCkptEnd; at += 100'000)
    engine.schedule_at(at, [&a, hot] { a.send(net::make_tcp(hot, net::kTcpAck)); });

  network.run_until(kCkptEnd);

  const auto& stats = sw.failover_stats();
  CheckpointRow row;
  row.incremental = incremental;
  row.checkpoints = stats.checkpoints;
  row.entries = stats.checkpoint_entries;
  row.bytes = stats.checkpoint_bytes;
  row.shards_skipped = stats.checkpoint_shards_skipped;
  row.ns_billed = stats.checkpoint_ns_billed;
  return row;
}

Json to_json(const T11Row& row) {
  Json json = Json::object();
  json.set("partition", row.partition);
  json.set("fencing", row.fencing);
  json.set("nat_conflicts", row.nat_conflicts);
  json.set("double_active_samples", row.double_active_samples);
  json.set("fenced_rejects", row.fenced_rejects);
  json.set("promotions_denied", row.promotions_denied);
  json.set("takeovers", row.takeovers);
  json.set("demotions", row.demotions);
  json.set("failbacks", row.failbacks);
  json.set("failback_entries", row.failback_entries);
  return json;
}

Json to_json(const CheckpointRow& row) {
  Json json = Json::object();
  json.set("scenario", std::string("checkpoint_bytes"));
  json.set("incremental", row.incremental);
  json.set("checkpoints", row.checkpoints);
  json.set("entries", row.entries);
  json.set("bytes", row.bytes);
  json.set("shards_skipped", row.shards_skipped);
  json.set("ns_billed", static_cast<std::uint64_t>(row.ns_billed));
  return json;
}

Json to_json(const HaRow& row) {
  Json json = Json::object();
  json.set("scenario", row.scenario);
  json.set("checkpoint_ms", row.checkpoint_ms);
  json.set("lag_us", row.lag_us);
  json.set("loss", row.loss);
  json.set("detector", row.detector);
  json.set("offered", row.offered);
  json.set("delivered", row.delivered);
  json.set("est_goodput_pct", row.est_goodput_pct);
  json.set("checkpoints", row.checkpoints);
  json.set("ct_restored", row.ct_restored);
  json.set("takeovers", row.takeovers);
  json.set("deltas_delivered", row.deltas_delivered);
  json.set("survived", row.survived);
  return json;
}

Json to_json(const Row& row) {
  Json json = Json::object();
  json.set("mode", row.mode);
  json.set("outage_ms", static_cast<double>(row.outage_ns) / static_cast<double>(kMs));
  json.set("flows", row.flows);
  json.set("warm_goodput_pct", row.warm_goodput_pct);
  json.set("cold_goodput_pct", row.cold_goodput_pct);
  json.set("recovery_ms", row.recovery_ms);
  json.set("flows_reinstalled", row.flows_reinstalled);
  json.set("disconnects", row.disconnects);
  json.set("reconnects", row.reconnects);
  json.set("resyncs", row.resyncs);
  json.set("standalone_packets", row.standalone_packets);
  json.set("packet_ins_dropped", row.packet_ins_dropped);
  json.set("recovered", row.recovered);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::vector<sim::SimNanos> outages =
      quick ? std::vector<sim::SimNanos>{10 * kMs} : std::vector<sim::SimNanos>{10 * kMs, 40 * kMs};
  const std::vector<std::size_t> flow_counts =
      quick ? std::vector<std::size_t>{16, 128} : std::vector<std::size_t>{16, 128, 1024};

  std::cout << "bench_faults - Table 8: goodput dip and time-to-recover across controller\n"
               "outages (mode x outage x controller-owned flow count)"
            << (quick ? " [QUICK]" : "") << "\n\n";

  util::Table table({"mode", "outage_ms", "flows", "warm_good%", "cold_good%", "recovery_ms",
                     "reinstalled", "standalone_pkts", "pktin_dropped"});
  Json rows = Json::array();
  bool all_recovered = true;

  for (const sim::SimNanos outage : outages) {
    const Row base = legacy_baseline(outage);
    table.add_row({base.mode, util::format("%.0f", static_cast<double>(outage) / 1e6), "-",
                   util::format("%.1f", base.warm_goodput_pct),
                   util::format("%.1f", base.cold_goodput_pct), "-", "-", "-", "-"});
    rows.push(to_json(base));
    for (const auto mode : {softswitch::FailoverSpec::Mode::kFailSecure,
                            softswitch::FailoverSpec::Mode::kFailStandalone}) {
      for (const std::size_t flows : flow_counts) {
        const Row row = run_scenario(mode, outage, flows);
        all_recovered = all_recovered && row.recovered;
        table.add_row(
            {row.mode, util::format("%.0f", static_cast<double>(outage) / 1e6),
             util::format("%zu", row.flows), util::format("%.1f", row.warm_goodput_pct),
             util::format("%.1f", row.cold_goodput_pct),
             row.recovery_ms < 0 ? std::string("never") : util::format("%.2f", row.recovery_ms),
             util::format("%llu", static_cast<unsigned long long>(row.flows_reinstalled)),
             util::format("%llu", static_cast<unsigned long long>(row.standalone_packets)),
             util::format("%llu", static_cast<unsigned long long>(row.packet_ins_dropped))});
        rows.push(to_json(row));
      }
    }
  }
  std::cout << table.to_string() << '\n';

  // ---- Table 10: stateful HA — established-TCP survival ----
  std::cout << "Table 10: established-TCP goodput through a crash of the box holding the\n"
               "conntrack table (checkpoint/restore vs amnesiac; active->standby takeover\n"
               "across replication lag and loss)\n\n";

  const std::vector<sim::SimNanos> checkpoint_intervals =
      quick ? std::vector<sim::SimNanos>{0, kMs}
            : std::vector<sim::SimNanos>{0, kMs, 5 * kMs, 20 * kMs};
  const std::vector<sim::SimNanos> lags =
      quick ? std::vector<sim::SimNanos>{50'000}
            : std::vector<sim::SimNanos>{50'000, 8 * kMs, 20 * kMs};
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 1.0} : std::vector<double>{0.0, 0.3, 0.7, 1.0};

  util::Table table10({"scenario", "ckpt_ms", "lag_us", "loss", "detector", "est_good%",
                       "delivered", "restored", "takeovers"});
  Json rows10 = Json::array();
  const auto add10 = [&table10, &rows10](const HaRow& row) {
    table10.add_row(
        {row.scenario, row.checkpoint_ms < 0 ? std::string("-") : util::format("%.0f", row.checkpoint_ms),
         row.lag_us < 0 ? std::string("-") : util::format("%.0f", row.lag_us),
         row.loss < 0 ? std::string("-") : util::format("%.1f", row.loss), row.detector,
         util::format("%.1f", row.est_goodput_pct),
         util::format("%llu/%llu", static_cast<unsigned long long>(row.delivered),
                      static_cast<unsigned long long>(row.offered)),
         util::format("%llu", static_cast<unsigned long long>(row.ct_restored)),
         util::format("%llu", static_cast<unsigned long long>(row.takeovers))});
    rows10.push(to_json(row));
  };

  bool amnesiac_zero = true;
  bool checkpoint_survives = true;
  for (const sim::SimNanos interval : checkpoint_intervals) {
    const HaRow row = run_crash_restart(interval);
    if (interval == 0 && row.delivered != 0) amnesiac_zero = false;
    if (interval > 0 && !row.survived) checkpoint_survives = false;
    add10(row);
  }

  double zero_lag_goodput = 0;
  bool lag_monotone = true;
  double previous = 101.0;
  for (const sim::SimNanos lag : lags) {
    const HaRow row = run_takeover(lag, 0.0, /*auto_monitor=*/true);
    if (lag == 50'000) zero_lag_goodput = row.est_goodput_pct;
    if (row.est_goodput_pct > previous + 1e-9) lag_monotone = false;
    previous = row.est_goodput_pct;
    add10(row);
  }
  bool loss_monotone = true;
  previous = 101.0;
  for (const double loss : losses) {
    const HaRow row = run_takeover(50'000, loss, /*auto_monitor=*/false);
    if (row.est_goodput_pct > previous + 1e-9) loss_monotone = false;
    previous = row.est_goodput_pct;
    add10(row);
  }
  std::cout << table10.to_string() << '\n';

  // Table 11: the split-brain matrix, fencing off (the PR-9 seam,
  // reproduced) vs on (the witness closes it), plus the incremental
  // checkpoint byte comparison. Cheap enough to run in --quick too.
  util::Table table11({"partition", "fencing", "nat_conflicts", "dbl_active", "fenced_rej",
                       "prom_denied", "takeovers", "demotions", "failbacks", "fb_entries"});
  Json rows11 = Json::array();
  std::uint64_t off_conflicts = 0;
  std::uint64_t off_double_active = 0;
  std::uint64_t on_conflicts = 0;
  std::uint64_t on_double_active = 0;
  std::uint64_t fencing_failbacks = 0;
  std::uint64_t fencing_failback_entries = 0;
  for (const PartitionKind kind :
       {PartitionKind::kActiveStandby, PartitionKind::kWitness, PartitionKind::kDouble}) {
    for (const bool fencing : {false, true}) {
      const T11Row row = run_partition(kind, fencing);
      if (fencing) {
        on_conflicts += row.nat_conflicts;
        on_double_active += row.double_active_samples;
        fencing_failbacks += row.failbacks;
        fencing_failback_entries += row.failback_entries;
      } else {
        off_conflicts += row.nat_conflicts;
        off_double_active += row.double_active_samples;
      }
      table11.add_row({row.partition, row.fencing ? "on" : "off",
                       util::format("%llu", static_cast<unsigned long long>(row.nat_conflicts)),
                       util::format("%llu", static_cast<unsigned long long>(row.double_active_samples)),
                       util::format("%llu", static_cast<unsigned long long>(row.fenced_rejects)),
                       util::format("%llu", static_cast<unsigned long long>(row.promotions_denied)),
                       util::format("%llu", static_cast<unsigned long long>(row.takeovers)),
                       util::format("%llu", static_cast<unsigned long long>(row.demotions)),
                       util::format("%llu", static_cast<unsigned long long>(row.failbacks)),
                       util::format("%llu", static_cast<unsigned long long>(row.failback_entries))});
      rows11.push(to_json(row));
    }
  }
  const CheckpointRow ckpt_full = run_checkpoint_bytes(false);
  const CheckpointRow ckpt_incr = run_checkpoint_bytes(true);
  for (const CheckpointRow* row : {&ckpt_full, &ckpt_incr}) {
    table11.add_row({row->incremental ? "ckpt_incremental" : "ckpt_full", "-",
                     util::format("%llu B", static_cast<unsigned long long>(row->bytes)),
                     util::format("%llu ent", static_cast<unsigned long long>(row->entries)),
                     util::format("%llu skip", static_cast<unsigned long long>(row->shards_skipped)),
                     "-", "-", "-", "-",
                     util::format("%llu ckpt", static_cast<unsigned long long>(row->checkpoints))});
    rows11.push(to_json(*row));
  }
  std::cout << table11.to_string() << '\n';

  const bool split_brain_reproduced = off_conflicts > 0 && off_double_active > 0;
  const bool fencing_zero_conflicts = on_conflicts == 0;
  const bool fencing_single_active = on_double_active == 0;
  const bool failback_warm = fencing_failbacks >= 1 && fencing_failback_entries > 0;
  const double ckpt_ratio = ckpt_incr.bytes > 0
                                ? static_cast<double>(ckpt_full.bytes) / static_cast<double>(ckpt_incr.bytes)
                                : 0.0;
  const bool ckpt_5x = ckpt_ratio >= 5.0;
  std::cout << "incremental checkpoint bytes: " << ckpt_incr.bytes << " vs full " << ckpt_full.bytes
            << " (" << util::format("%.1fx", ckpt_ratio) << " reduction)\n";

  // Fault-free determinism guard: the outage-free scenario twice, bit
  // identical or the bench fails (the chaos-smoke CI gate) — and, new
  // in the HA PR, pinned to the PR-8 digest: with checkpointing off
  // and no standby the whole HA layer must be byte-invisible.
  const Row free1 = run_scenario(softswitch::FailoverSpec::Mode::kFailSecure, 0, 16);
  const Row free2 = run_scenario(softswitch::FailoverSpec::Mode::kFailSecure, 0, 16);
  const bool deterministic = free1.digest == free2.digest;
  const bool ha_off_identical = free1.digest == kPr8FaultFreeDigest;
  std::cout << "fault-free determinism: " << (deterministic ? "OK" : "DRIFT") << '\n';
  std::cout << "HA-off byte-identity vs PR 8: " << (ha_off_identical ? "OK" : "DRIFT") << '\n';

  Json report = Json::object();
  report.set("table8", std::move(rows));
  report.set("table10", std::move(rows10));
  report.set("table11", std::move(rows11));
  Json guard = Json::object();
  guard.set("fault_free_digest_match", deterministic);
  guard.set("all_faulted_rows_recovered", all_recovered);
  guard.set("ha_off_matches_pr8_digest", ha_off_identical);
  guard.set("amnesiac_restart_zero_goodput", amnesiac_zero);
  guard.set("checkpointed_restart_survives", checkpoint_survives);
  guard.set("takeover_zero_lag_goodput_pct", zero_lag_goodput);
  guard.set("takeover_lag_monotone", lag_monotone);
  guard.set("takeover_loss_monotone", loss_monotone);
  guard.set("t11_split_brain_reproduced", split_brain_reproduced);
  guard.set("t11_fencing_zero_conflicts", fencing_zero_conflicts);
  guard.set("t11_fencing_at_most_one_active", fencing_single_active);
  guard.set("t11_failback_warm", failback_warm);
  guard.set("t11_incremental_checkpoint_5x", ckpt_5x);
  report.set("guards", std::move(guard));
  write_bench_json("BENCH_faults.json", report);

  bool ok = true;
  if (!deterministic) {
    std::cerr << "FAIL: fault-free runs diverged\n";
    ok = false;
  }
  if (!ha_off_identical) {
    std::cerr << "FAIL: HA-off run is not byte-identical to the PR 8 baseline\n";
    ok = false;
  }
  if (!all_recovered) {
    std::cerr << "FAIL: a faulted scenario never reconnected + resynced\n";
    ok = false;
  }
  if (!amnesiac_zero) {
    std::cerr << "FAIL: an amnesiac restart delivered established goodput\n";
    ok = false;
  }
  if (!checkpoint_survives) {
    std::cerr << "FAIL: a checkpointed restart delivered zero established goodput\n";
    ok = false;
  }
  if (zero_lag_goodput < 90.0) {
    std::cerr << "FAIL: zero-lag takeover kept only " << zero_lag_goodput
              << "% established goodput (need >= 90%)\n";
    ok = false;
  }
  if (!lag_monotone || !loss_monotone) {
    std::cerr << "FAIL: takeover goodput did not degrade monotonically with lag/loss\n";
    ok = false;
  }
  if (!split_brain_reproduced) {
    std::cerr << "FAIL: fencing-off partition did not reproduce split-brain damage "
                 "(conflicts=" << off_conflicts << ", double-active=" << off_double_active << ")\n";
    ok = false;
  }
  if (!fencing_zero_conflicts) {
    std::cerr << "FAIL: witness fencing leaked " << on_conflicts << " NAT conflicts\n";
    ok = false;
  }
  if (!fencing_single_active) {
    std::cerr << "FAIL: witness fencing allowed " << on_double_active
              << " double-active probe samples\n";
    ok = false;
  }
  if (!failback_warm) {
    std::cerr << "FAIL: no warm failback completed under fencing (failbacks="
              << fencing_failbacks << ", entries=" << fencing_failback_entries << ")\n";
    ok = false;
  }
  if (!ckpt_5x) {
    std::cerr << "FAIL: incremental checkpoints only cut bytes "
              << util::format("%.1fx", ckpt_ratio) << " (need >= 5x)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

// bench_conntrack — Table 9: the stateful conntrack tier.
//
// Three sections, one acceptance claim each:
//
//   connection_scaling — established-path per-packet *wall* cost with
//       N live connections preloaded into the table, N = 10^3..10^6.
//       The claim is O(1) classification: the ns/pkt column must stay
//       flat as the table grows three orders of magnitude (the CI
//       smoke gate checks the max/min ratio and an absolute pps
//       floor). The measured stream rides the established fast path —
//       megaflow cache hit + ct_state prelude probe per packet — which
//       is exactly the path whose cost the table size could poison.
//
//   nat_core_scaling — a symmetric-RSS multi-core SNAT gateway under
//       deliberate overload (8 access ports x 1G of 64B frames into a
//       slowed burst-32 datapath, 64 flows per port so the symmetric
//       hash spreads load evenly). Every packet traverses ct_snat:
//       commit/refresh plus the stored-mapping rewrite. Reported as
//       *simulated* delivered Mpps for cores {1,2,4}; the claim is
//       near-linear speedup, which only holds if the per-core shards
//       really are share-nothing (a shared table would serialize).
//
//   firewall_paths — stateful-firewall per-packet *simulated* busy_ns
//       (deterministic, machine-independent): the established megaflow
//       fast path vs the all-NEW slow path (distinct-sport SYNs; ct
//       megaflows pin the full 5-tuple, so every NEW connection is a
//       genuine miss: pipeline lookup + commit + megaflow install) vs
//       the cache-off pipeline as the classical reference. The win
//       column (slow/fast) is the stateful analogue of the Table 2
//       fast-path result.
//
// Everything lands in BENCH_conntrack.json; CI runs `--quick` and
// gates flatness, the established-path pps floor, the 4-core speedup,
// and the firewall fast/slow win. Wall floors are deliberately
// conservative (a fraction of a dev-box run); the simulated numbers
// are deterministic and gated tightly.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "net/l4.hpp"
#include "openflow/conntrack.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::uint8_t kUdpProto = 17;

// ---- section A: established-path cost vs live-connection count -------

struct ScalingRun {
  std::size_t connections = 0;
  std::size_t packets = 0;
  double wall_ms = 0;
  double ns_per_pkt = 0;
  double mpps = 0;  // wall-clock established-path packet rate
  std::uint64_t ct_lookups = 0;
  std::uint64_t ct_hits = 0;
};

/// One switch, conntrack on, `connections` live UDP entries preloaded
/// straight into the shard (they never send — they only occupy the
/// table), then `packets` 64B frames round-robined over 64 established
/// flows a->b. The wall clock is taken between two marker events
/// bracketing the stream, so the O(N) expiry drain at the end of the
/// run (every preloaded entry eventually idles out) never pollutes the
/// per-packet number.
ScalingRun connection_scaling(std::size_t connections, std::size_t packets) {
  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("ct-scale", 0x90, 2);
  openflow::CtConfig config;
  config.max_connections = 1'200'000;  // hold the largest preload
  sw.enable_conntrack(config);

  auto& a = network.add_host("a", host_mac(0), host_ip(0));
  auto& b = network.add_host("b", host_mac(1), host_ip(1));
  const sim::LinkSpec link = sim::LinkSpec::gbps(10);
  network.connect(a, 0, sw, 0, link);
  network.connect(b, 0, sw, 1, link);

  openflow::FlowModMsg fast;
  fast.table_id = 0;
  fast.priority = 20;
  fast.match.in_port(1).ct_established();
  fast.instructions = openflow::apply({openflow::output(2)});
  sw.install(fast).check();
  openflow::FlowModMsg commit1;
  commit1.table_id = 0;
  commit1.priority = 10;
  commit1.match.in_port(1);
  commit1.instructions = openflow::apply({openflow::ct_commit(), openflow::output(2)});
  sw.install(commit1).check();
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  sw.install(drop).check();

  // Preload: background occupancy from a disjoint address range, then
  // the 64 measured flows committed in both directions so the prelude
  // classifies them ESTABLISHED from the first frame.
  openflow::ConnTracker& ct = sw.pipeline().conntrack(0);
  const openflow::CtAction plain{};
  for (std::size_t i = 0; i < connections; ++i) {
    const openflow::CtTuple filler{0x0b000000u + static_cast<std::uint32_t>(i / 50'000),
                                   0x0c000001u,
                                   static_cast<std::uint16_t>(1000 + i % 50'000),
                                   53,
                                   kUdpProto};
    ct.process(filler, 0, 0, plain);
  }
  constexpr std::size_t kFlows = 64;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const openflow::CtTuple orig{host_ip(0).value(), host_ip(1).value(),
                                 static_cast<std::uint16_t>(20'000 + f), 7, kUdpProto};
    ct.process(orig, 0, 0, plain);
    ct.process(orig.reversed(), 0, 0, plain);  // seen_reply -> ESTABLISHED
  }

  net::FlowKey key;
  key.eth_src = a.mac();
  key.eth_dst = b.mac();
  key.ip_src = a.ip();
  key.ip_dst = b.ip();
  // Paced at 512ns (a 1G line into the 10G access link): simulated
  // pacing can't change the wall cost per packet, but it keeps the
  // ingress queue empty so no size ever drops frames and poisons the
  // comparison.
  const net::UdpTemplate frame(key, 64);
  const sim::SimNanos gap = 512;
  for (std::size_t i = 0; i < packets; ++i) {
    const auto sport = static_cast<std::uint16_t>(20'000 + i % kFlows);
    network.engine().schedule_at(static_cast<sim::SimNanos>(i) * gap, [&a, &frame, sport] {
      a.send(frame.stamp(sport, 7));
    });
  }

  // Markers around the stream: the window closes 100us of simulated
  // time after the last send — long after the final delivery, long
  // before the first 100ms expiry sweep.
  Clock::time_point window_start;
  double wall = 0;
  network.engine().schedule_at(0, [&window_start] { window_start = Clock::now(); });
  network.engine().schedule_at(static_cast<sim::SimNanos>(packets) * gap + 100'000,
                               [&wall, &window_start] { wall = seconds_since(window_start); });
  network.run();

  ScalingRun run;
  run.connections = connections;
  run.packets = packets;
  run.wall_ms = wall * 1e3;
  run.ns_per_pkt = wall * 1e9 / static_cast<double>(packets);
  run.mpps = static_cast<double>(packets) / wall / 1e6;
  run.ct_lookups = sw.counters().ct_lookups;
  run.ct_hits = sw.counters().ct_hits;
  if (b.counters().rx_udp != packets) {
    std::fprintf(stderr, "connection_scaling: delivered %llu of %zu\n",
                 static_cast<unsigned long long>(b.counters().rx_udp), packets);
    std::exit(1);
  }
  return run;
}

// ---- section B: symmetric-RSS multi-core NAT scaling -----------------

struct NatRun {
  std::size_t cores = 0;
  double offered_mpps = 0;
  double delivered_mpps = 0;  // simulated, capacity-bound under overload
  std::uint64_t delivered = 0;
  std::uint64_t connections = 0;
  std::uint64_t nat_allocated = 0;
  double wall_ms = 0;
};

/// 8 inside hosts each offer their 1G line rate of 64B UDP frames to
/// one outside server through a SNAT gateway whose datapath is slowed
/// (rx_tx_pkt_ns = 600) so even one port overloads a single core. 256
/// distinct source ports per host give the symmetric hash 2048 flows
/// to spread; every frame traverses ct_snat (commit on first sight,
/// stored-mapping rewrite after). Delivery is sampled over the steady
/// back third of the offer window — the post-offer queue drain (a
/// fixed ~2k-packet backlog regardless of core count) would otherwise
/// flatter the slowest configuration.
NatRun nat_core_scaling(std::size_t cores, std::size_t packets_per_port) {
  constexpr int kInside = 8;
  constexpr std::size_t kPortQueue = 256;
  sim::Network network;
  sim::IngressSpec ingress;
  ingress.cores.cores = cores;
  ingress.cores.rss = sim::RssPolicy::kSymmetric;
  ingress.port_queue_capacity = kPortQueue;
  ingress.queue_capacity = (kInside + 1) * kPortQueue;
  auto& sw = network.add_node<softswitch::SoftSwitch>("natgw", 0x91, kInside + 1, 2, true,
                                                      true, 32, ingress);
  openflow::CtConfig config;
  config.udp_timeout = 500'000'000;  // shorten the post-offer drain
  sw.enable_conntrack(config);
  softswitch::DatapathCosts costs;
  costs.rx_tx_pkt_ns = 600;  // ~1.5 Mpps per core: the ports overload it
  sw.set_costs(costs);

  const net::Ipv4Addr external_ip(203, 0, 113, 1);
  sim::Host& server = network.add_host("server", host_mac(16), net::Ipv4Addr(198, 51, 100, 10));
  network.connect(server, 0, sw, kInside, sim::LinkSpec::gbps(10));
  std::vector<sim::Host*> inside;
  for (int i = 0; i < kInside; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i + 1), host_mac(i), host_ip(i));
    network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    inside.push_back(&host);
  }

  for (int port = 1; port <= kInside; ++port) {
    openflow::FlowModMsg snat;
    snat.table_id = 0;
    snat.priority = 10;
    snat.match.in_port(static_cast<std::uint32_t>(port));
    snat.instructions = openflow::apply_then_goto(
        {openflow::ct_snat(external_ip, 49'152, 65'535)}, 1);
    sw.install(snat).check();
  }
  openflow::FlowModMsg route;
  route.table_id = 1;
  route.priority = 10;
  route.match.ip_dst(server.ip());
  route.instructions = openflow::apply({openflow::output(kInside + 1)});
  sw.install(route).check();
  openflow::FlowModMsg drop0;
  drop0.table_id = 0;
  drop0.priority = 0;
  sw.install(drop0).check();
  openflow::FlowModMsg drop1;
  drop1.table_id = 1;
  drop1.priority = 0;
  sw.install(drop1).check();

  constexpr std::size_t kFlowsPerPort = 256;
  const sim::SimNanos line = sim::LinkSpec::gbps(1).rate.serialization_ns(64);
  std::vector<net::UdpTemplate> frames;
  frames.reserve(kInside);
  for (int p = 0; p < kInside; ++p) {
    net::FlowKey key;
    key.eth_src = host_mac(p);
    key.eth_dst = server.mac();
    key.ip_src = host_ip(p);
    key.ip_dst = server.ip();
    frames.emplace_back(key, 64);
  }
  for (int p = 0; p < kInside; ++p) {
    sim::Host* host = inside[static_cast<std::size_t>(p)];
    const net::UdpTemplate& frame = frames[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < packets_per_port; ++i) {
      const auto sport = static_cast<std::uint16_t>(20'000 + p * kFlowsPerPort +
                                                    static_cast<int>(i % kFlowsPerPort));
      network.engine().schedule_at(static_cast<sim::SimNanos>(i) * line,
                                   [host, &frame, sport] { host->send(frame.stamp(sport, 9)); });
    }
  }

  // Steady-state sampling window: open it a third of the way into the
  // offer (the ingress queues have long since filled), close it when
  // the offer ends (before the backlog drains).
  const sim::SimNanos offer_ns = static_cast<sim::SimNanos>(packets_per_port) * line;
  const sim::SimNanos t0 = offer_ns / 3;
  std::uint64_t rx_at_t0 = 0, rx_at_end = 0;
  network.engine().schedule_at(t0, [&rx_at_t0, &server] { rx_at_t0 = server.counters().rx_udp; });
  network.engine().schedule_at(offer_ns,
                               [&rx_at_end, &server] { rx_at_end = server.counters().rx_udp; });

  const auto start = Clock::now();
  network.run();
  const double wall = seconds_since(start);

  NatRun run;
  run.cores = cores;
  run.wall_ms = wall * 1e3;
  run.offered_mpps = static_cast<double>(kInside) * 1e3 / static_cast<double>(line);
  run.delivered = rx_at_end - rx_at_t0;
  run.delivered_mpps =
      static_cast<double>(run.delivered) * 1e3 / static_cast<double>(offer_ns - t0);
  run.connections = sw.counters().ct_created;
  run.nat_allocated = sw.counters().ct_nat_allocated;
  return run;
}

// ---- section C: stateful firewall fast vs slow path ------------------

struct PathRun {
  std::string path;
  std::size_t packets = 0;
  sim::SimNanos busy_ns_per_pkt = 0;  // simulated: deterministic
  std::uint64_t cache_hits = 0;
  std::uint64_t connections = 0;
};

/// Per-packet simulated switch busy time on a stateful firewall.
/// `established`: one preloaded connection streams ACKs (megaflow fast
/// path). Otherwise: every packet is a distinct-sport SYN — ct
/// megaflows pin the full 5-tuple, so each is a genuine slow-path miss
/// (pipeline lookup + commit + megaflow install). `flow_cache` off
/// gives the classical per-packet-pipeline reference.
PathRun firewall_path(bool established, bool flow_cache, std::size_t packets,
                      const std::string& name) {
  sim::Network network;
  auto& sw = network.add_node<softswitch::SoftSwitch>("fw", 0x92, 2, 2, true, flow_cache);
  sw.enable_conntrack(openflow::CtConfig{});

  auto& a = network.add_host("a", host_mac(0), host_ip(0));
  auto& b = network.add_host("b", host_mac(1), host_ip(1));
  const sim::LinkSpec link = sim::LinkSpec::gbps(10);
  network.connect(a, 0, sw, 0, link);
  network.connect(b, 0, sw, 1, link);

  openflow::FlowModMsg fast;
  fast.table_id = 0;
  fast.priority = 20;
  fast.match.in_port(1).ct_established();
  fast.instructions = openflow::apply({openflow::output(2)});
  sw.install(fast).check();
  openflow::FlowModMsg open;
  open.table_id = 0;
  open.priority = 10;
  open.match.in_port(1);
  open.instructions = openflow::apply({openflow::ct_commit(), openflow::output(2)});
  sw.install(open).check();
  openflow::FlowModMsg reply;
  reply.table_id = 0;
  reply.priority = 10;
  reply.match.in_port(2).ct_tracked();
  reply.instructions = openflow::apply({openflow::ct_commit(), openflow::output(1)});
  sw.install(reply).check();
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  sw.install(drop).check();

  net::FlowKey key;
  key.eth_src = a.mac();
  key.eth_dst = b.mac();
  key.ip_src = a.ip();
  key.ip_dst = b.ip();
  // Paced well below the slow path's service rate: the metric is
  // simulated busy_ns per packet, so queueing adds nothing but drops
  // would subtract delivered packets.
  const sim::SimNanos line = 1'000;
  // The template must outlive the scheduled sends (they capture it by
  // reference), so it lives at function scope.
  const net::TcpTemplate frame(key, established ? net::kTcpAck : net::kTcpSyn);
  if (established) {
    // Preload the one measured connection as ESTABLISHED, then stream
    // mid-connection segments through it.
    openflow::ConnTracker& ct = sw.pipeline().conntrack(0);
    const openflow::CtTuple orig{host_ip(0).value(), host_ip(1).value(), 40'000, 80, 6};
    ct.process(orig, net::kTcpSyn, 0, openflow::CtAction{});
    ct.process(orig.reversed(), net::kTcpSyn | net::kTcpAck, 0, openflow::CtAction{});
    for (std::size_t i = 0; i < packets; ++i)
      network.engine().schedule_at(static_cast<sim::SimNanos>(i) * line,
                                   [&a, &frame] { a.send(frame.stamp(40'000, 80)); });
  } else {
    for (std::size_t i = 0; i < packets; ++i) {
      const auto sport = static_cast<std::uint16_t>(10'000 + i);
      network.engine().schedule_at(static_cast<sim::SimNanos>(i) * line,
                                   [&a, &frame, sport] { a.send(frame.stamp(sport, 80)); });
    }
  }
  network.run();

  PathRun run;
  run.path = name;
  run.packets = packets;
  run.busy_ns_per_pkt = sw.core_stats(0).busy_ns / static_cast<sim::SimNanos>(packets);
  run.cache_hits = sw.counters().cache_hits;
  run.connections = sw.counters().ct_created;
  if (b.counters().rx_tcp != packets) {
    std::fprintf(stderr, "firewall_path(%s): delivered %llu of %zu\n", name.c_str(),
                 static_cast<unsigned long long>(b.counters().rx_tcp), packets);
    std::exit(1);
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: bench_conntrack [--quick]
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  const int reps = quick ? 1 : 2;  // wall sections report the best rep
  const std::size_t scale_packets = quick ? 20'000 : 100'000;
  const std::vector<std::size_t> table_sizes =
      quick ? std::vector<std::size_t>{1'000, 10'000, 100'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};
  const std::size_t nat_packets = quick ? 1'500 : 6'000;  // per port
  const std::size_t fw_packets = quick ? 2'000 : 5'000;

  std::cout << "bench_conntrack - the stateful tier: table scaling, NAT core scaling, "
               "firewall paths"
            << (quick ? " [QUICK]" : "") << "\n\n";

  // Section A ----------------------------------------------------------
  util::Table scale_table({"connections", "packets", "wall_ms", "ns/pkt", "Mpps"});
  Json scale_rows = Json::array();
  for (const std::size_t n : table_sizes) {
    ScalingRun best;
    for (int rep = 0; rep < reps; ++rep) {
      ScalingRun run = connection_scaling(n, scale_packets);
      if (rep == 0 || run.ns_per_pkt < best.ns_per_pkt) best = run;
    }
    scale_table.add_row({util::format("%zu", best.connections),
                         util::format("%zu", best.packets),
                         util::format("%.1f", best.wall_ms),
                         util::format("%.0f", best.ns_per_pkt),
                         util::format("%.2f", best.mpps)});
    Json row = Json::object();
    row.set("connections", best.connections);
    row.set("packets", best.packets);
    row.set("wall_ms", best.wall_ms);
    row.set("ns_per_pkt", best.ns_per_pkt);
    row.set("mpps", best.mpps);
    row.set("ct_lookups", best.ct_lookups);
    row.set("ct_hits", best.ct_hits);
    scale_rows.push(std::move(row));
  }
  std::cout << "established-path cost vs live connections (wall clock)\n"
            << scale_table.to_string() << '\n';

  // Section B ----------------------------------------------------------
  util::Table nat_table(
      {"cores", "offered_Mpps", "delivered_Mpps", "speedup", "connections", "wall_ms"});
  Json nat_rows = Json::array();
  double base_mpps = 0;
  for (const std::size_t cores : {1UL, 2UL, 4UL}) {
    const NatRun run = nat_core_scaling(cores, nat_packets);
    if (cores == 1) base_mpps = run.delivered_mpps;
    const double speedup = run.delivered_mpps / base_mpps;
    nat_table.add_row({util::format("%zu", run.cores), util::format("%.2f", run.offered_mpps),
                       util::format("%.2f", run.delivered_mpps),
                       util::format("%.2f", speedup),
                       util::format("%llu", static_cast<unsigned long long>(run.connections)),
                       util::format("%.1f", run.wall_ms)});
    Json row = Json::object();
    row.set("cores", run.cores);
    row.set("offered_mpps", run.offered_mpps);
    row.set("delivered_mpps", run.delivered_mpps);
    row.set("speedup", speedup);
    row.set("delivered", run.delivered);
    row.set("connections", run.connections);
    row.set("nat_allocated", run.nat_allocated);
    nat_rows.push(std::move(row));
  }
  std::cout << "symmetric-RSS SNAT gateway capacity vs cores (simulated)\n"
            << nat_table.to_string() << '\n';

  // Section C ----------------------------------------------------------
  const PathRun fast = firewall_path(true, true, fw_packets, "established_fast");
  const PathRun slow = firewall_path(false, true, fw_packets, "new_slow");
  const PathRun pipeline = firewall_path(true, false, fw_packets, "established_no_cache");
  const double win =
      static_cast<double>(slow.busy_ns_per_pkt) / static_cast<double>(fast.busy_ns_per_pkt);
  util::Table path_table({"path", "busy_ns/pkt", "cache_hits", "connections"});
  Json path_rows = Json::array();
  for (const PathRun* run : {&fast, &slow, &pipeline}) {
    path_table.add_row(
        {run->path, util::format("%lld", static_cast<long long>(run->busy_ns_per_pkt)),
         util::format("%llu", static_cast<unsigned long long>(run->cache_hits)),
         util::format("%llu", static_cast<unsigned long long>(run->connections))});
    Json row = Json::object();
    row.set("path", run->path);
    row.set("packets", run->packets);
    row.set("busy_ns_per_pkt", run->busy_ns_per_pkt);
    row.set("cache_hits", run->cache_hits);
    row.set("connections", run->connections);
    path_rows.push(std::move(row));
  }
  std::cout << "stateful firewall per-packet cost (simulated busy_ns)\n"
            << path_table.to_string() << "\nfast-path win (new_slow / established_fast): "
            << util::format("%.2f", win) << "x\n\n";

  Json report = Json::object();
  report.set("connection_scaling", std::move(scale_rows));
  report.set("nat_core_scaling", std::move(nat_rows));
  report.set("firewall_paths", std::move(path_rows));
  report.set("fast_path_win", win);
  write_bench_json("BENCH_conntrack.json", report);
  return 0;
}

// bench_engine — wall-clock speed of the simulation engine itself.
//
// Every other bench in this directory reports *simulated* time; this
// one reports how fast the host executes the simulator — the number
// that bounds every fabric-scale study (thousands of switches, 10^6
// hosts, conntrack at millions of connections). Three scenarios:
//
//   timer_churn      — pure event-scheduler stress: K concurrent
//                      self-rescheduling timers with nearly-FIFO
//                      deadlines (the dominant service/link event
//                      shape) plus a slice of far-future timers (the
//                      expiry-sweep shape). Measures events/sec with
//                      no datapath work at all.
//   table1_native    — the Table 1 native soft-switch stream (64B
//                      back-to-back on a 10G feed): the single-core
//                      end-to-end datapath. Measures events/sec and
//                      host-Mpps (simulated packets per wall second).
//   table7_overload  — the Table 7 four-core overload (8 ports x 1G of
//                      64B frames into the deliberately slowed
//                      burst-32 datapath, stride steering): the
//                      acceptance scenario for the engine-speed work.
//
// Each scenario row reports wall_ms, events/sec, and (for the packet
// scenarios) host-Mpps. Everything is written to BENCH_engine.json;
// the CI perf-smoke job runs `--quick` and gates events/sec at a
// committed floor so engine regressions fail the build the way Table 7
// regressions do. Wall-clock numbers are machine-dependent — the floor
// is deliberately conservative (a fraction of a dev-box run) so only
// real regressions (an accidental O(n) queue, a per-event allocation
// storm) trip it, not runner jitter.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct EngineRun {
  double wall_ms = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  /// Simulated packets the datapath processed per wall-clock second
  /// (0 for the pure timer scenario).
  double host_mpps = 0;
  std::uint64_t packets = 0;
};

// ---- scenario 1: pure event churn ------------------------------------

/// `timers` concurrent self-rescheduling events; most advance by a
/// small nearly-FIFO delta (service/link shape), a few jump far ahead
/// (expiry-sweep shape). Runs until `total_events` dispatches.
EngineRun timer_churn(std::size_t timers, std::uint64_t total_events) {
  sim::Engine engine;
  util::Rng rng(7);
  std::uint64_t remaining = total_events;

  // Timer state must outlive the lambdas; index into a flat vector.
  struct Timer {
    sim::SimNanos step;
  };
  std::vector<Timer> state(timers);
  std::function<void(std::size_t)> fire = [&](std::size_t index) {
    if (remaining == 0) return;
    --remaining;
    engine.schedule_after(state[index].step, [&fire, index] { fire(index); });
  };
  for (std::size_t i = 0; i < timers; ++i) {
    // 90% short nearly-FIFO steps, 10% far-future (the two event
    // populations a calendar queue must serve at once).
    state[i].step = rng.chance(0.9) ? static_cast<sim::SimNanos>(50 + rng.below(500))
                                    : static_cast<sim::SimNanos>(100'000 + rng.below(10'000'000));
    engine.schedule_at(static_cast<sim::SimNanos>(rng.below(1'000)), [&fire, i] { fire(i); });
  }

  const auto start = Clock::now();
  engine.run();
  const double wall = seconds_since(start);

  EngineRun run;
  run.wall_ms = wall * 1e3;
  run.events = engine.events_dispatched();
  run.events_per_sec = static_cast<double>(run.events) / wall;
  return run;
}

// ---- scenario 2: Table 1 native datapath stream ----------------------

/// h1 -> h2 at the 10G line rate, 64B frames, through the batched
/// native soft switch (the Table 1 configuration).
EngineRun table1_native(std::size_t packets) {
  RigOptions options;
  options.access_link = sim::LinkSpec::gbps(10);
  NativeRig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, packets, 64, options.access_link.rate.serialization_ns(64));

  const std::uint64_t events_before = rig.network.engine().events_dispatched();
  const auto start = Clock::now();
  rig.network.run();
  const double wall = seconds_since(start);

  EngineRun run;
  run.wall_ms = wall * 1e3;
  run.events = rig.network.engine().events_dispatched() - events_before;
  run.events_per_sec = static_cast<double>(run.events) / wall;
  run.packets = rig.datapath->counters().pipeline_runs;
  run.host_mpps = static_cast<double>(run.packets) / wall / 1e6;
  return run;
}

// ---- scenario 3: Table 7 four-core overload --------------------------

/// One prebuilt frame per (src, dst) host pair; per-packet ports are
/// stamped in (net::UdpTemplate), so the generator costs a 64-byte
/// copy plus a checksum fold instead of a full header serialization.
net::UdpTemplate tuple_template(int src, int dst) {
  net::FlowKey key;
  key.eth_src = host_mac(src);
  key.eth_dst = host_mac(dst);
  key.ip_src = host_ip(src);
  key.ip_dst = host_ip(dst);
  return net::UdpTemplate(key, 64);
}

/// The Table 7 multi-core overload, verbatim (bench_throughput
/// core_scaling_run): every port offers its 1G line rate of 64B frames
/// to its neighbor against the deliberately slowed (rx_tx_pkt_ns=600)
/// burst-32 four-core datapath with partitioned ingress buffers. The
/// skewed workload keeps 90% of each port on its hot five-tuple.
EngineRun table7_overload(std::size_t cores, int ports, std::size_t packets_per_port) {
  RigOptions options;
  options.host_count = ports;
  options.access_link = sim::LinkSpec::gbps(1);
  options.burst_size = 32;
  options.cores.cores = cores;
  options.cores.rss = sim::RssPolicy::kStride;
  options.port_queue_capacity = 256;
  options.queue_capacity = static_cast<std::size_t>(ports) * 256;
  NativeRig rig(options);
  softswitch::DatapathCosts costs;
  costs.rx_tx_pkt_ns = 600;  // ~1.6 Mpps per core: the ports overload it
  rig.datapath->set_costs(costs);

  sim::LatencyRecorder recorder;
  for (sim::Host* host : rig.hosts) host->set_recorder(&recorder);

  util::Rng rng(13);
  std::vector<net::UdpTemplate> templates;
  templates.reserve(static_cast<std::size_t>(ports));
  for (int p = 0; p < ports; ++p) templates.push_back(tuple_template(p, (p + 1) % ports));
  const sim::SimNanos line = options.access_link.rate.serialization_ns(64);
  for (int p = 0; p < ports; ++p) {
    for (std::size_t i = 0; i < packets_per_port; ++i) {
      const std::uint16_t sport = rng.chance(0.9)
                                      ? static_cast<std::uint16_t>(10'000 + p)
                                      : static_cast<std::uint16_t>(1024 + rng.below(40'000));
      rig.network.engine().schedule_at(
          static_cast<sim::SimNanos>(i) * line, [&rig, &templates, p, sport] {
            rig.hosts[static_cast<std::size_t>(p)]->send(
                templates[static_cast<std::size_t>(p)].stamp(sport, 443));
          });
    }
  }

  const std::uint64_t events_before = rig.network.engine().events_dispatched();
  const auto start = Clock::now();
  rig.network.run();
  const double wall = seconds_since(start);

  EngineRun run;
  run.wall_ms = wall * 1e3;
  run.events = rig.network.engine().events_dispatched() - events_before;
  run.events_per_sec = static_cast<double>(run.events) / wall;
  run.packets = rig.datapath->counters().pipeline_runs;
  run.host_mpps = static_cast<double>(run.packets) / wall / 1e6;
  return run;
}

Json to_json(const std::string& scenario, const EngineRun& run) {
  Json row = Json::object();
  row.set("scenario", scenario);
  row.set("wall_ms", run.wall_ms);
  row.set("events", run.events);
  row.set("events_per_sec", run.events_per_sec);
  row.set("packets", run.packets);
  row.set("host_mpps", run.host_mpps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: bench_engine [--quick] [scenario-substring]
  // The optional filter runs only matching scenarios — handy under a
  // profiler (gprofng collect app ./bench_engine table7).
  bool quick = false;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      filter = argv[i];
    }
  }

  // Repetitions: wall-clock runs are noisy; report the best of R (the
  // least-perturbed run — standard practice for throughput benches).
  const int reps = quick ? 2 : 3;
  const std::uint64_t churn_events = quick ? 400'000 : 4'000'000;
  const std::size_t churn_timers = 4'096;
  const std::size_t table1_packets = quick ? 20'000 : 200'000;
  const std::size_t table7_packets = quick ? 2'000 : 6'000;  // per port

  std::cout << "bench_engine - wall-clock engine speed (events/sec, host-Mpps)"
            << (quick ? " [QUICK]" : "") << "\n\n";

  struct Scenario {
    std::string name;
    std::function<EngineRun()> run;
  };
  const std::vector<Scenario> scenarios = {
      {"timer_churn", [&] { return timer_churn(churn_timers, churn_events); }},
      {"table1_native_10g", [&] { return table1_native(table1_packets); }},
      {"table7_4core_overload", [&] { return table7_overload(4, 8, table7_packets); }},
  };

  util::Table table({"scenario", "wall_ms", "events", "Mev/s", "host_Mpps"});
  Json rows = Json::array();
  for (const Scenario& scenario : scenarios) {
    if (!filter.empty() && scenario.name.find(filter) == std::string::npos) continue;
    EngineRun best;
    for (int rep = 0; rep < reps; ++rep) {
      EngineRun run = scenario.run();
      if (rep == 0 || run.events_per_sec > best.events_per_sec) best = run;
    }
    table.add_row({scenario.name, util::format("%.1f", best.wall_ms),
               util::format("%llu", static_cast<unsigned long long>(best.events)),
               util::format("%.2f", best.events_per_sec / 1e6),
               best.packets == 0 ? std::string("-") : util::format("%.2f", best.host_mpps)});
    rows.push(to_json(scenario.name, best));
  }
  std::cout << table.to_string() << '\n';

  Json report = Json::object();
  report.set("engine", std::move(rows));
  write_bench_json("BENCH_engine.json", report);
  return 0;
}

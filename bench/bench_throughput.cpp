// E1 — throughput ("without incurring any major performance penalty").
//
// Two tables, matching the two readings of the claim:
//
//  Table 1 (capacity): RFC 2544-style no-drop rate — for each data
//  plane and frame size, a binary search over offered load finds the
//  highest rate forwarded with <0.5% loss on a 10G feed. The legacy
//  ASIC runs at line rate; the batched soft switch now holds the 10G
//  wire even at 64B (the per-packet PR-1 datapath was CPU-bound
//  there); the HARMLESS path crosses SS_1 twice per packet, so its
//  64B NDR still trails native (~0.7x) until serialization dominates.
//
//  Table 2 (deployment envelope): offered load fixed at the 1G access
//  line rate — the rates a migrated legacy switch actually serves.
//  Here HARMLESS tracks the legacy baseline at every frame size: the
//  paper's "no major performance penalty" in its operating regime.
//
//  Table 3 (flow-cache fast path): CPU-bound capacity of the software
//  datapath on a skewed elephant-flow workload against an
//  enterprise-shaped pipeline (prefix ACL + exact L2), with the
//  two-tier microflow/megaflow cache on vs off. Reports hit rates and
//  simulated Mpps; the cached datapath wins ~2.2-2.4x on a thin
//  16-rule ACL and >=3x (~4x) at realistic ACL sizes, because the
//  cache decouples per-packet cost from rule count entirely.
//
//  Table 4 (burst amortization): the batched datapath
//  (Pipeline::run_burst + DatapathCosts::burst_cost_ns) against the
//  per-packet PR-1 datapath on the same skewed workload, swept over
//  burst sizes. Batching amortizes the fixed rx/tx overhead and one
//  replay setup per megaflow group across the burst, so the speedup
//  grows super-linearly toward an asymptote set by the per-packet
//  marginal costs: >=1.5x at burst 32 with the defaults. The burst
//  bill includes the per-queue rx poll sweep, so burst 1 pays for
//  polling every port to pull one packet — batching's honest floor.
//
//  Table 5 (head-of-line blocking): the per-port RX queue + burst
//  scheduler redesign, measured. An elephant port overloads the
//  datapath ~12x while a mouse port asks for 75% of its fair share:
//  FCFS over the shared buffer collapses the mouse; RR and DRR over
//  per-port queues hold it at ~100% of demand.
//
//  Table 6 (cache scaling): the dpcls-style per-mask subtable
//  classifier vs the linear-scan ablation as the megaflow population
//  grows 64 -> 4096 on a skewed multi-mask workload. Linear tier-2
//  cost is O(#megaflows) and degrades super-linearly with population;
//  subtable cost is O(#subtables) with hit-ranked probing, so it stays
//  flat and resolves skewed traffic in <2 hashed probes per tier-2
//  lookup.
//
//  Everything is also written to BENCH_throughput.json so the numbers
//  are diffable across PRs. `--quick` shrinks every sweep to a smoke
//  run (the CI bench job uses it to keep perf evidence executable
//  without paying the full sweep).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

std::size_t kTrialPackets = 4'000;  // --quick shrinks it (and every sweep)
constexpr double kLossBudget = 0.005;  // 0.5%

/// Offered fraction of line rate -> measured loss ratio.
template <typename Rig>
double loss_at(const RigOptions& options, std::size_t frame_size, double fraction) {
  Rig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  const double line_interval =
      static_cast<double>(options.access_link.rate.serialization_ns(frame_size));
  const auto interval = static_cast<sim::SimNanos>(std::ceil(line_interval / fraction));
  rig.stream(0, 1, kTrialPackets, frame_size, interval);
  rig.network.run();
  return 1.0 - static_cast<double>(recorder.completed()) / kTrialPackets;
}

/// RFC 2544-ish binary search for the no-drop rate, in packets/s.
template <typename Rig>
double ndr_pps(const RigOptions& options, std::size_t frame_size) {
  const double line_pps =
      1e9 / static_cast<double>(options.access_link.rate.serialization_ns(frame_size));
  if (loss_at<Rig>(options, frame_size, 1.0) <= kLossBudget) return line_pps;
  double lo = 0.01, hi = 1.0;
  for (int step = 0; step < 9; ++step) {
    const double mid = (lo + hi) / 2;
    if (loss_at<Rig>(options, frame_size, mid) <= kLossBudget)
      lo = mid;
    else
      hi = mid;
  }
  return line_pps * lo;
}

/// Fixed-rate delivery (Table 2): offered exactly at line rate.
template <typename Rig>
Throughput delivered_at_line(const RigOptions& options, std::size_t frame_size) {
  Rig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, kTrialPackets, frame_size,
             options.access_link.rate.serialization_ns(frame_size));
  rig.network.run();
  return measure(recorder, frame_size);
}

// ---- Tables 3/4: the flow-cache fast path on a skewed workload -------

struct SkewedTuple {
  int src, dst;
  std::uint16_t sport, dport;
};

/// Enterprise-shaped pipeline: a prefix ACL nothing in the workload
/// hits (the common case for ACLs) falling through to exact L2.
void build_skewed_pipeline(openflow::Pipeline& pipeline, util::Rng& rng, int hosts,
                           int acl_rules) {
  using namespace openflow;
  for (int i = 0; i < acl_rules; ++i) {
    FlowEntry entry;
    entry.priority = static_cast<std::uint16_t>(20 + i % 8);
    entry.match.eth_type(0x0800).ip_dst_prefix(
        net::Ipv4Addr(0xc0a80000u + (static_cast<std::uint32_t>(rng.below(1u << 16)))),
        static_cast<int>(16 + rng.below(9)));
    entry.instructions = Instructions{};
    pipeline.table(0).add(std::move(entry), 0).check();
  }
  FlowEntry to_l2;
  to_l2.priority = 1;
  to_l2.instructions = apply_then_goto({}, 1);
  pipeline.table(0).add(std::move(to_l2), 0).check();
  for (int i = 0; i < hosts; ++i) {
    FlowEntry entry;
    entry.priority = 10;
    entry.match.eth_dst(host_mac(i));
    entry.instructions = apply({openflow::output(static_cast<std::uint32_t>(1 + i))});
    pipeline.table(1).add(std::move(entry), 0).check();
  }
}

/// Skewed traffic: 8 elephant 5-tuples carry 90% of packets; the mice
/// tail sprays random host pairs and L4 ports (distinct microflows
/// that still collapse onto per-destination megaflows).
SkewedTuple next_skewed_tuple(util::Rng& rng, int hosts) {
  if (rng.chance(0.9)) {
    const int e = static_cast<int>(rng.below(8));
    return {e % hosts, (e + 1) % hosts, static_cast<std::uint16_t>(10'000 + e), 443};
  }
  SkewedTuple tuple;
  tuple.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts)));
  tuple.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts)));
  tuple.sport = static_cast<std::uint16_t>(1024 + rng.below(40'000));
  tuple.dport = static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 8000 + rng.below(100));
  return tuple;
}

net::Packet tuple_packet(const SkewedTuple& tuple) {
  net::FlowKey key;
  key.eth_src = host_mac(tuple.src);
  key.eth_dst = host_mac(tuple.dst);
  key.ip_src = host_ip(tuple.src);
  key.ip_dst = host_ip(tuple.dst);
  key.src_port = tuple.sport;
  key.dst_port = tuple.dport;
  return net::make_udp(key, 64);
}

struct CacheRun {
  double mpps = 0;       // 1000 / average simulated ns per packet
  double hit_rate = 0;   // fraction of packets served by the cache
  double micro_rate = 0; // microflow (tier-1) share of all packets
  std::size_t megaflows = 0;
};

/// Service-cost model of one soft-switch core (rx/tx + pipeline +
/// cache accounting, exactly as SoftSwitch::service charges it),
/// driven CPU-bound: capacity = 1e9 / avg_ns packets per second.
CacheRun skewed_capacity(bool flow_cache, int hosts, int acl_rules, std::size_t packets) {
  using namespace openflow;
  Pipeline pipeline(/*table_count=*/2, /*specialized=*/true, flow_cache);
  softswitch::DatapathCosts costs;
  util::Rng rng(7);
  build_skewed_pipeline(pipeline, rng, hosts, acl_rules);

  sim::SimNanos total_ns = 0;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    const SkewedTuple tuple = next_skewed_tuple(rng, hosts);
    const auto now = static_cast<sim::SimNanos>(i) * 100;
    auto result = pipeline.run(tuple_packet(tuple), 1 + static_cast<std::uint32_t>(tuple.src),
                               now);
    total_ns += costs.packet_cost_ns(result, flow_cache);
    if (result.cache_hit) ++hits;
  }

  CacheRun run;
  const double avg_ns = static_cast<double>(total_ns) / static_cast<double>(packets);
  run.mpps = 1000.0 / avg_ns;
  run.hit_rate = static_cast<double>(hits) / static_cast<double>(packets);
  run.micro_rate = static_cast<double>(pipeline.cache().stats().microflow_hits) /
                   static_cast<double>(packets);
  run.megaflows = pipeline.cache().megaflow_count();
  return run;
}

struct BatchedRun {
  double mpps = 0;
  double hit_rate = 0;
  double groups_per_burst = 0;  // distinct megaflows replayed per burst
};

/// The batched datapath on the identical workload (same rng seed, so
/// the exact same packet sequence): bursts of `burst_size` through
/// Pipeline::run_burst, billed by DatapathCosts::burst_cost_ns —
/// exactly as SoftSwitch::service_burst charges it.
BatchedRun skewed_capacity_batched(std::size_t burst_size, int hosts, int acl_rules,
                                   std::size_t packets) {
  using namespace openflow;
  Pipeline pipeline(/*table_count=*/2, /*specialized=*/true, /*flow_cache=*/true);
  softswitch::DatapathCosts costs;
  util::Rng rng(7);
  build_skewed_pipeline(pipeline, rng, hosts, acl_rules);

  sim::SimNanos total_ns = 0;
  std::uint64_t hits = 0, bursts = 0, groups = 0;
  std::vector<BurstPacket> burst;
  burst.reserve(burst_size);
  for (std::size_t i = 0; i < packets; ++i) {
    const SkewedTuple tuple = next_skewed_tuple(rng, hosts);
    burst.push_back(BurstPacket{tuple_packet(tuple), 1 + static_cast<std::uint32_t>(tuple.src)});
    if (burst.size() < burst_size && i + 1 < packets) continue;

    const auto now = static_cast<sim::SimNanos>(i) * 100;
    const std::size_t count = burst.size();
    BurstResult result = pipeline.run_burst(std::move(burst), now);
    burst.clear();
    burst.reserve(burst_size);
    total_ns += costs.burst_cost_ns(result, /*cache_enabled=*/true, count,
                                    /*queues_polled=*/static_cast<std::size_t>(hosts));
    ++bursts;
    groups += result.replay_groups;
    for (const PipelineResult& packet_result : result.results)
      if (packet_result.cache_hit) ++hits;
  }

  BatchedRun run;
  const double avg_ns = static_cast<double>(total_ns) / static_cast<double>(packets);
  run.mpps = 1000.0 / avg_ns;
  run.hit_rate = static_cast<double>(hits) / static_cast<double>(packets);
  run.groups_per_burst = static_cast<double>(groups) / static_cast<double>(bursts);
  return run;
}

// ---- Table 5: head-of-line blocking across ports vs the scheduler ----

struct HolRun {
  double mouse_offered_pps = 0;
  double mouse_delivered_pps = 0;
  double mouse_share = 0;  // delivered / offered (offered < fair share)
  double mouse_p99_us = 0;
  double elephant_delivered_pps = 0;
  std::uint64_t mouse_port_drops = 0;
  std::uint64_t elephant_port_drops = 0;
};

/// One elephant port saturating the switch ~12x, one mouse port asking
/// for ~75% of its fair share (capacity / 2 active ports). The
/// datapath is deliberately slowed (rx_tx_pkt_ns) so the batched
/// burst-32 loop is the bottleneck, not the 10G wires — this isolates
/// what the *scheduler* does under compute overload. FCFS runs the
/// pre-refactor shared buffer; RR/DRR partition it per port.
HolRun hol_run(sim::SchedulerSpec scheduler, std::size_t port_queue_capacity) {
  RigOptions options;
  options.host_count = 4;
  options.access_link = sim::LinkSpec::gbps(10);
  options.burst_size = 32;
  options.scheduler = scheduler;
  options.port_queue_capacity = port_queue_capacity;
  NativeRig rig(options);
  softswitch::DatapathCosts costs;
  costs.rx_tx_pkt_ns = 600;  // ~1.6 Mpps core: the elephant overloads it
  rig.datapath->set_costs(costs);

  sim::LatencyRecorder mouse, elephant;
  rig.hosts[1]->set_recorder(&mouse);
  rig.hosts[3]->set_recorder(&mouse);
  rig.hosts[0]->set_recorder(&elephant);
  rig.hosts[2]->set_recorder(&elephant);

  const sim::SimNanos line = options.access_link.rate.serialization_ns(64);
  const std::size_t kElephant = kTrialPackets * 30;
  const std::size_t kMice = kTrialPackets;
  rig.stream(0, 2, kElephant, 64, line);        // 19.2 Mpps offered
  rig.stream(1, 3, kMice, 64, line * 32);       // ~0.6 Mpps: 75% of fair share
  rig.network.run();

  HolRun run;
  run.mouse_offered_pps = 1e9 / static_cast<double>(line * 32);
  run.mouse_delivered_pps = measure(mouse, 64).pps;
  run.mouse_share = static_cast<double>(mouse.completed()) / kMice;
  run.mouse_p99_us = mouse.latency().p99() / 1000.0;
  run.elephant_delivered_pps = measure(elephant, 64).pps;
  run.mouse_port_drops = rig.datapath->rx_queue_drops(2);
  run.elephant_port_drops = rig.datapath->rx_queue_drops(1);
  return run;
}

// ---- Table 6: megaflow classifier scaling (dpcls subtables vs linear) ----

struct ScalingRun {
  double mpps = 0;          // CPU-bound capacity, steady state
  double probes_per_t2 = 0; // tier-2 work units per tier-2 lookup
  double hit_rate = 0;
  std::size_t megaflows = 0;
  std::size_t subtables = 0;
};

/// Skewed multi-mask workload against a warmed cache of `flows`
/// megaflows spread over `mask_classes` distinct mask signatures
/// (disjoint ip_dst prefixes of different lengths in table 0, exact L2
/// in table 1). Hot five-tuples stay on tier 1; the mice tail churns
/// sports so every mouse is a tier-2 lookup, 80% of them inside mask
/// class 0 — the skew the hit-ranked probe order exploits. The linear
/// ablation pays one masked compare per resident megaflow instead
/// (cache_scan_ns vs cache_subtable_ns, as the datapath bills them).
ScalingRun cache_scaling(bool linear, int flows, int mask_classes, std::size_t packets) {
  using namespace openflow;
  Pipeline pipeline(/*table_count=*/2, /*specialized=*/true, /*flow_cache=*/true);
  pipeline.cache().set_linear_scan(linear);
  FlowCache::Limits limits;
  limits.max_megaflows = 8192;  // population, not capacity, is the variable
  limits.max_microflows = 1u << 16;
  pipeline.cache().set_limits(limits);
  softswitch::DatapathCosts costs;
  util::Rng rng(11);

  // Table 0: one disjoint ip_dst prefix per mask class, each with a
  // distinct prefix length -> distinct megaflow mask signature.
  for (int k = 0; k < mask_classes; ++k) {
    FlowEntry entry;
    entry.priority = 20;
    entry.match.eth_type(0x0800).ip_dst_prefix(
        net::Ipv4Addr(static_cast<std::uint32_t>(10 + k) << 24), 9 + k);
    entry.instructions = apply_then_goto({}, 1);
    pipeline.table(0).add(std::move(entry), 0).check();
  }
  FlowEntry to_l2;
  to_l2.priority = 1;
  to_l2.instructions = apply_then_goto({}, 1);
  pipeline.table(0).add(std::move(to_l2), 0).check();
  for (int f = 0; f < flows; ++f) {
    FlowEntry entry;
    entry.priority = 10;
    entry.match.eth_dst(host_mac(f));
    entry.instructions = apply({openflow::output(static_cast<std::uint32_t>(1 + f % 16))});
    pipeline.table(1).add(std::move(entry), 0).check();
  }

  auto flow_packet = [&](int f, std::uint16_t sport) {
    const int k = f % mask_classes;
    net::FlowKey key;
    key.eth_src = host_mac(f % 16);
    key.eth_dst = host_mac(f);
    key.ip_src = host_ip(f % 16);
    key.ip_dst = net::Ipv4Addr((static_cast<std::uint32_t>(10 + k) << 24) |
                               (static_cast<std::uint32_t>(f) & 0xffff));
    key.src_port = sport;
    key.dst_port = 443;
    return net::make_udp(key, 64);
  };

  // Warm the cache to full population (one slow path per flow); the
  // warmup is not billed — Table 6 measures steady-state lookup cost.
  sim::SimNanos now = 0;
  for (int f = 0; f < flows; ++f)
    (void)pipeline.run(flow_packet(f, 9), 1, now += 100);
  const FlowCache::Stats warm = pipeline.cache().stats();

  sim::SimNanos total_ns = 0;
  std::uint64_t hits = 0, scanned = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    int f;
    std::uint16_t sport;
    if (rng.chance(0.9)) {  // hot tier-1 five-tuples, all in class 0
      f = static_cast<int>(rng.below(8)) * mask_classes % flows;
      sport = static_cast<std::uint16_t>(10'000 + f);
    } else if (rng.chance(0.8)) {  // mice skewed into mask class 0
      f = static_cast<int>(rng.below(static_cast<std::uint64_t>(flows / mask_classes))) *
          mask_classes;
      sport = static_cast<std::uint16_t>(1024 + rng.below(40'000));
    } else {  // uniform mice across every mask class
      f = static_cast<int>(rng.below(static_cast<std::uint64_t>(flows)));
      sport = static_cast<std::uint16_t>(1024 + rng.below(40'000));
    }
    auto result = pipeline.run(flow_packet(f, sport), 1, now += 100);
    total_ns += costs.packet_cost_ns(result, /*cache_enabled=*/true);
    scanned += result.cache_scanned;
    if (result.cache_hit) ++hits;
  }

  const FlowCache::Stats& stats = pipeline.cache().stats();
  const std::uint64_t t2 = (stats.megaflow_hits - warm.megaflow_hits) +
                           (stats.misses - warm.misses);
  ScalingRun run;
  run.mpps = 1000.0 * static_cast<double>(packets) / static_cast<double>(total_ns);
  run.probes_per_t2 = t2 == 0 ? 0 : static_cast<double>(scanned) / static_cast<double>(t2);
  run.hit_rate = static_cast<double>(hits) / static_cast<double>(packets);
  run.megaflows = pipeline.cache().megaflow_count();
  run.subtables = pipeline.cache().subtable_count();
  return run;
}

// ---- Table 7: multi-core scaling (RSS-sharded worker cores) ----------

struct CoreScaleRun {
  double delivered_pps = 0;
  double hit_rate = 0;
  std::uint64_t queue_drops = 0;
  /// Load balance across cores: slowest core's busy_ns / mean busy_ns
  /// (1.0 = perfectly balanced; the makespan model makes imbalance
  /// visible as idle cycles on the fast cores).
  double busy_imbalance = 0;
  std::size_t busiest_core_queues = 0;
};

/// Every port offers its 1G line rate of 64B frames to its neighbor —
/// an aggregate overload of the deliberately slowed (rx_tx_pkt_ns)
/// burst-32 datapath, so delivered throughput measures the compute
/// capacity of the worker-core pool, not the wires. Skewed traffic
/// keeps 90% of each port on its hot five-tuple (tier-1 resident) and
/// churns sports on the rest; uniform churns every packet's sport.
/// Steering is the CoreSpec policy under test: RSS hash (what a NIC
/// indirection table does) or stride pinning (exact balance).
CoreScaleRun core_scaling_run(std::size_t cores, int ports, bool skewed,
                              sim::RssPolicy policy, std::size_t packets) {
  RigOptions options;
  options.host_count = ports;
  options.access_link = sim::LinkSpec::gbps(1);
  options.burst_size = 32;
  options.cores.cores = cores;
  options.cores.rss = policy;
  // Partitioned ingress buffers (the PR-3 isolation knob), with the
  // shared bound lifted out of the way: under a shared buffer, a
  // heavily-steered core's ports monopolize admission and starve the
  // light cores — measuring buffer crowding, not steering. Partitioned,
  // imbalance shows up where it belongs: as idle makespan on
  // under-steered cores (and empty cores at high core counts, the real
  // port-hash failure mode).
  options.port_queue_capacity = 256;
  options.queue_capacity = static_cast<std::size_t>(ports) * 256;
  NativeRig rig(options);
  softswitch::DatapathCosts costs;
  costs.rx_tx_pkt_ns = 600;  // ~1.6 Mpps per core: the ports overload it
  rig.datapath->set_costs(costs);

  sim::LatencyRecorder recorder;
  for (sim::Host* host : rig.hosts) host->set_recorder(&recorder);

  util::Rng rng(13);
  const sim::SimNanos line = options.access_link.rate.serialization_ns(64);
  for (int p = 0; p < ports; ++p) {
    const int dst = (p + 1) % ports;
    for (std::size_t i = 0; i < packets; ++i) {
      const std::uint16_t sport = (skewed && rng.chance(0.9))
                                      ? static_cast<std::uint16_t>(10'000 + p)
                                      : static_cast<std::uint16_t>(1024 + rng.below(40'000));
      rig.network.engine().schedule_at(
          static_cast<sim::SimNanos>(i) * line, [&rig, p, dst, sport] {
            SkewedTuple tuple{p, dst, sport, 443};
            rig.hosts[static_cast<std::size_t>(p)]->send(tuple_packet(tuple));
          });
    }
  }
  rig.network.run();

  CoreScaleRun run;
  run.delivered_pps = measure(recorder, 64).pps;
  run.queue_drops = rig.datapath->queue_drops();
  const auto& counters = rig.datapath->counters();
  const std::uint64_t cache_total = counters.cache_hits + counters.cache_misses;
  run.hit_rate = cache_total == 0
                     ? 0
                     : static_cast<double>(counters.cache_hits) / static_cast<double>(cache_total);
  sim::SimNanos busy_sum = 0, busy_max = 0;
  for (std::size_t core = 0; core < rig.datapath->core_count(); ++core) {
    const auto stats = rig.datapath->core_stats(core);
    busy_sum += stats.busy_ns;
    busy_max = std::max(busy_max, stats.busy_ns);
    run.busiest_core_queues = std::max(run.busiest_core_queues, stats.rx_queues);
  }
  run.busy_imbalance = busy_sum == 0 ? 0
                                     : static_cast<double>(busy_max) * static_cast<double>(cores) /
                                           static_cast<double>(busy_sum);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: the CI smoke configuration — every sweep shrunk so the
  // whole bench (and its JSON artifact) runs in seconds. The committed
  // BENCH_throughput.json always comes from a full run.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  if (quick) kTrialPackets = 1'000;
  const std::vector<std::size_t> frame_sizes =
      quick ? std::vector<std::size_t>{64, 512}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024, 1500};
  const std::vector<int> cache_hosts = quick ? std::vector<int>{16} : std::vector<int>{16, 64};
  const std::vector<int> cache_acls = quick ? std::vector<int>{16} : std::vector<int>{16, 48};
  const std::vector<std::size_t> burst_sizes =
      quick ? std::vector<std::size_t>{1, 32}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<int> scaling_populations =
      quick ? std::vector<int>{64, 512} : std::vector<int>{64, 256, 1024, 4096};
  const std::size_t skew_packets = quick ? 30'000 : 200'000;
  const std::size_t scaling_packets = quick ? 30'000 : 120'000;
  const std::vector<int> core_scale_ports = quick ? std::vector<int>{8} : std::vector<int>{8, 16};
  const std::vector<std::size_t> core_counts =
      quick ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t core_scale_packets = quick ? 1'500 : 6'000;  // per port

  std::cout << "E1 - throughput: legacy vs native software switch vs HARMLESS\n"
            << "(unidirectional h1->h2, preinstalled L2 state, " << kTrialPackets
            << " packets per trial" << (quick ? ", QUICK mode" : "") << ")\n\n";
  Json report = Json::object();

  {
    RigOptions options;
    options.access_link = sim::LinkSpec::gbps(10);
    options.trunk_link = sim::LinkSpec::gbps(10);
    std::cout << "Table 1 - no-drop rate on a 10G feed (<0.5% loss, binary search):\n";
    util::Table table({"frame", "legacy (pps)", "native SS (pps)", "HARMLESS (pps)",
                       "HARMLESS (Gb/s)", "vs legacy", "vs native"});
    Json rows = Json::array();
    for (const std::size_t frame_size : frame_sizes) {
      const double legacy_pps = ndr_pps<LegacyRig>(options, frame_size);
      const double native_pps = ndr_pps<NativeRig>(options, frame_size);
      const double harmless_pps = ndr_pps<HarmlessRig>(options, frame_size);
      table.add_row({std::to_string(frame_size) + "B", util::si_format(legacy_pps, "pps"),
                     util::si_format(native_pps, "pps"), util::si_format(harmless_pps, "pps"),
                     util::format("%.2f", harmless_pps * static_cast<double>(frame_size) * 8 / 1e9),
                     util::format("%.2fx", harmless_pps / legacy_pps),
                     util::format("%.2fx", harmless_pps / native_pps)});
      rows.push(Json::object()
                    .set("frame_bytes", frame_size)
                    .set("legacy_pps", legacy_pps)
                    .set("native_pps", native_pps)
                    .set("harmless_pps", harmless_pps));
    }
    std::cout << table.to_string() << '\n';
    report.set("ndr_10g", std::move(rows));
  }

  {
    RigOptions options;
    options.access_link = sim::LinkSpec::gbps(1);
    options.trunk_link = sim::LinkSpec::gbps(10);
    std::cout << "Table 2 - goodput at the 1G access line rate (deployment envelope):\n";
    util::Table table({"frame", "legacy (pps)", "native SS (pps)", "HARMLESS (pps)",
                       "HARMLESS (Gb/s)", "vs legacy", "vs native"});
    Json rows = Json::array();
    for (const std::size_t frame_size : frame_sizes) {
      const Throughput legacy_tp = delivered_at_line<LegacyRig>(options, frame_size);
      const Throughput native_tp = delivered_at_line<NativeRig>(options, frame_size);
      const Throughput harmless_tp = delivered_at_line<HarmlessRig>(options, frame_size);
      table.add_row({std::to_string(frame_size) + "B", util::si_format(legacy_tp.pps, "pps"),
                     util::si_format(native_tp.pps, "pps"),
                     util::si_format(harmless_tp.pps, "pps"),
                     util::format("%.2f", harmless_tp.gbps),
                     util::format("%.2fx", harmless_tp.pps / legacy_tp.pps),
                     util::format("%.2fx", harmless_tp.pps / native_tp.pps)});
      rows.push(Json::object()
                    .set("frame_bytes", frame_size)
                    .set("legacy_pps", legacy_tp.pps)
                    .set("native_pps", native_tp.pps)
                    .set("harmless_pps", harmless_tp.pps));
    }
    std::cout << table.to_string() << '\n';
    report.set("goodput_1g", std::move(rows));
  }

  {
    std::cout << "Table 3 - flow-cache fast path: CPU-bound soft-switch capacity on a\n"
                 "skewed elephant-flow workload (90% of packets from 8 five-tuples,\n"
                 "64B frames, prefix-ACL + exact-L2 pipeline):\n";
    util::Table table({"hosts", "ACL rules", "cache", "sim Mpps", "hit rate",
                       "microflow share", "megaflows", "speedup"});
    Json rows = Json::array();
    for (const int hosts : cache_hosts) {
      for (const int acl_rules : cache_acls) {
        const CacheRun off = skewed_capacity(false, hosts, acl_rules, skew_packets);
        const CacheRun on = skewed_capacity(true, hosts, acl_rules, skew_packets);
        table.add_row({std::to_string(hosts), std::to_string(acl_rules), "off",
                       util::format("%.2f", off.mpps), "-", "-", "-", "1.00x"});
        table.add_row({std::to_string(hosts), std::to_string(acl_rules), "on",
                       util::format("%.2f", on.mpps),
                       util::format("%.1f%%", on.hit_rate * 100),
                       util::format("%.1f%%", on.micro_rate * 100),
                       std::to_string(on.megaflows),
                       util::format("%.2fx", on.mpps / off.mpps)});
        rows.push(Json::object()
                      .set("hosts", hosts)
                      .set("acl_rules", acl_rules)
                      .set("uncached_mpps", off.mpps)
                      .set("cached_mpps", on.mpps)
                      .set("hit_rate", on.hit_rate)
                      .set("microflow_share", on.micro_rate)
                      .set("megaflows", on.megaflows)
                      .set("speedup", on.mpps / off.mpps));
      }
    }
    std::cout << table.to_string() << '\n';
    report.set("flow_cache", std::move(rows));
  }

  {
    constexpr int kHosts = 64;
    constexpr int kAclRules = 48;
    const std::size_t kPackets = skew_packets;
    const CacheRun per_packet = skewed_capacity(true, kHosts, kAclRules, kPackets);
    std::cout << "Table 4 - burst amortization: batched vs per-packet datapath on the\n"
                 "skewed elephant-flow workload (" << kHosts << " hosts, " << kAclRules
              << "-rule ACL, cache on,\nper-packet baseline "
              << util::format("%.2f", per_packet.mpps) << " Mpps):\n";
    util::Table table({"burst", "sim Mpps", "hit rate", "groups/burst", "vs per-packet"});
    Json rows = Json::array();
    for (const std::size_t burst : burst_sizes) {
      const BatchedRun run = skewed_capacity_batched(burst, kHosts, kAclRules, kPackets);
      table.add_row({std::to_string(burst), util::format("%.2f", run.mpps),
                     util::format("%.1f%%", run.hit_rate * 100),
                     util::format("%.1f", run.groups_per_burst),
                     util::format("%.2fx", run.mpps / per_packet.mpps)});
      rows.push(Json::object()
                    .set("burst_size", burst)
                    .set("batched_mpps", run.mpps)
                    .set("hit_rate", run.hit_rate)
                    .set("groups_per_burst", run.groups_per_burst)
                    .set("speedup_vs_per_packet", run.mpps / per_packet.mpps));
    }
    std::cout << table.to_string() << '\n';
    report.set("burst_sweep",
               Json::object().set("per_packet_mpps", per_packet.mpps).set("rows", std::move(rows)));
  }

  {
    std::cout << "Table 5 - head-of-line blocking across ports: an elephant port\n"
                 "saturating the burst-32 datapath ~12x vs a mouse port asking for 75%\n"
                 "of its fair share (64B, per-port rx queues, scheduler dimension):\n";
    util::Table table({"scheduler", "queues", "mouse pps", "of its demand", "p99 (us)",
                       "elephant pps", "mouse drops", "elephant drops"});
    Json rows = Json::array();
    struct Config {
      sim::SchedulerSpec spec;
      std::size_t port_queue_capacity;
      const char* queues;
    };
    const Config configs[] = {
        {{sim::SchedulerKind::kFcfs}, 0, "shared"},  // the pre-refactor datapath
        {{sim::SchedulerKind::kRoundRobin}, 256, "per-port"},
        {{sim::SchedulerKind::kDrr}, 256, "per-port"},
    };
    for (const Config& config : configs) {
      const HolRun run = hol_run(config.spec, config.port_queue_capacity);
      table.add_row({sim::to_string(config.spec.kind), config.queues,
                     util::si_format(run.mouse_delivered_pps, "pps"),
                     util::format("%.0f%%", run.mouse_share * 100),
                     util::format("%.1f", run.mouse_p99_us),
                     util::si_format(run.elephant_delivered_pps, "pps"),
                     std::to_string(run.mouse_port_drops),
                     std::to_string(run.elephant_port_drops)});
      rows.push(Json::object()
                    .set("scheduler", sim::to_string(config.spec.kind))
                    .set("port_queue_capacity", config.port_queue_capacity)
                    .set("mouse_offered_pps", run.mouse_offered_pps)
                    .set("mouse_delivered_pps", run.mouse_delivered_pps)
                    .set("mouse_share_of_demand", run.mouse_share)
                    .set("mouse_p99_us", run.mouse_p99_us)
                    .set("elephant_delivered_pps", run.elephant_delivered_pps)
                    .set("mouse_port_drops", run.mouse_port_drops)
                    .set("elephant_port_drops", run.elephant_port_drops));
    }
    std::cout << table.to_string() << '\n';
    report.set("hol_blocking", std::move(rows));
  }

  {
    std::cout << "Table 6 - cache scaling: dpcls-style per-mask subtables vs the\n"
                 "linear-scan ablation as the megaflow population grows (skewed\n"
                 "multi-mask workload: 90% hot tier-1 five-tuples, mice tail 80%\n"
                 "inside mask class 0, steady state after warmup):\n";
    util::Table table({"megaflows", "masks", "subtables", "linear Mpps", "dpcls Mpps",
                       "speedup", "scans/t2 (linear)", "probes/t2 (dpcls)"});
    Json rows = Json::array();
    for (const int flows : scaling_populations) {
      for (const int mask_classes : {1, 8}) {
        const ScalingRun linear =
            cache_scaling(/*linear=*/true, flows, mask_classes, scaling_packets);
        const ScalingRun dpcls =
            cache_scaling(/*linear=*/false, flows, mask_classes, scaling_packets);
        table.add_row({std::to_string(dpcls.megaflows), std::to_string(mask_classes),
                       std::to_string(dpcls.subtables), util::format("%.2f", linear.mpps),
                       util::format("%.2f", dpcls.mpps),
                       util::format("%.2fx", dpcls.mpps / linear.mpps),
                       util::format("%.1f", linear.probes_per_t2),
                       util::format("%.2f", dpcls.probes_per_t2)});
        rows.push(Json::object()
                      .set("population", flows)
                      .set("mask_classes", mask_classes)
                      .set("megaflows", dpcls.megaflows)
                      .set("subtables", dpcls.subtables)
                      .set("linear_mpps", linear.mpps)
                      .set("dpcls_mpps", dpcls.mpps)
                      .set("speedup", dpcls.mpps / linear.mpps)
                      .set("linear_scans_per_t2", linear.probes_per_t2)
                      .set("dpcls_probes_per_t2", dpcls.probes_per_t2)
                      .set("hit_rate", dpcls.hit_rate));
      }
    }
    std::cout << table.to_string() << '\n';
    report.set("cache_scaling", std::move(rows));
  }

  {
    std::cout << "Table 7 - multi-core scaling: RSS-sharded worker cores (per-core RX\n"
                 "queue subsets, schedulers and flow-cache shards; lockstep makespan\n"
                 "time advance) on an all-ports 64B overload of the slowed burst-32\n"
                 "datapath (~1.6 Mpps/core, 1G access feeds):\n";
    util::Table table({"ports", "workload", "steering", "cores", "delivered", "speedup",
                       "hit rate", "busy max/mean", "max queues/core"});
    Json rows = Json::array();
    for (const int ports : core_scale_ports) {
      for (const bool skewed : {true, false}) {
        if (!skewed && quick) continue;  // quick mode: skewed only
        for (const sim::RssPolicy policy : {sim::RssPolicy::kHash, sim::RssPolicy::kStride}) {
          if (!skewed && policy == sim::RssPolicy::kStride) continue;  // steering dim on skew
          double base_pps = 0;
          for (const std::size_t cores : core_counts) {
            const CoreScaleRun run =
                core_scaling_run(cores, ports, skewed, policy, core_scale_packets);
            if (cores == 1) base_pps = run.delivered_pps;
            const double speedup = base_pps == 0 ? 0 : run.delivered_pps / base_pps;
            table.add_row({std::to_string(ports), skewed ? "skewed" : "uniform",
                           sim::to_string(policy), std::to_string(cores),
                           util::si_format(run.delivered_pps, "pps"),
                           util::format("%.2fx", speedup),
                           util::format("%.1f%%", run.hit_rate * 100),
                           util::format("%.2f", run.busy_imbalance),
                           std::to_string(run.busiest_core_queues)});
            rows.push(Json::object()
                          .set("ports", ports)
                          .set("workload", skewed ? "skewed" : "uniform")
                          .set("steering", sim::to_string(policy))
                          .set("cores", cores)
                          .set("delivered_pps", run.delivered_pps)
                          .set("speedup_vs_1core", speedup)
                          .set("hit_rate", run.hit_rate)
                          .set("queue_drops", run.queue_drops)
                          .set("busy_imbalance", run.busy_imbalance)
                          .set("busiest_core_queues", run.busiest_core_queues));
          }
        }
      }
    }
    std::cout << table.to_string() << '\n';
    report.set("core_scaling", std::move(rows));
  }

  std::cout << "Shape check: Table 2 should read 1.00x across the board (the paper's\n"
               "'no major performance penalty' at access-network rates). Table 1 shows\n"
               "the honest capacity bill: the batched native switch holds the 10G wire\n"
               "even at 64B; HARMLESS still pays the double SS_1 crossing at the\n"
               "smallest frames (~0.7x) and converges to line rate from 128B on.\n"
               "Table 3 should show a >99% hit rate with a handful of megaflows\n"
               "covering the whole mice tail (fields no rule examines stay wild), and\n"
               "cached-vs-uncached speedup growing with ACL size: ~2.2-2.4x on the\n"
               "thin 16-rule ACL, >=3x (~4x) at the realistic 48-rule table — cached\n"
               "cost is flat in rule count, uncached cost is not.\n"
               "Table 4 should show batching losing badly at burst 1 (polling 64\n"
               "port queues to pull one packet), breaking even around burst 8, and\n"
               ">=1.5x from burst 32 on as the fixed rx/tx cost, the per-queue poll\n"
               "sweep and the per-group replay setup spread across the burst.\n"
               "Table 5 is the scheduler payoff: FCFS over the shared buffer\n"
               "collapses the mouse port to a sliver of its demand (the elephant's\n"
               "backlog owns both the buffer and the service order), while RR and\n"
               "DRR over per-port queues hold it within 5% of what it asked for —\n"
               "per-port isolation through an overload, the property operators\n"
               "expect the SDN-fronted box to preserve.\n"
               "Table 6 is the classifier payoff: linear tier-2 cost grows with the\n"
               "resident megaflow population (super-linear Mpps decay, thousands of\n"
               "masked compares per tier-2 lookup at 4096 entries), while the\n"
               "subtable classifier stays flat (+-2x across 64 -> 4096) and the\n"
               "hit-ranked probe order resolves the skewed tail in <2 hashed probes\n"
               "per tier-2 lookup regardless of mask diversity.\n"
               "Table 7 is the multi-core payoff, makespan-honest: stride steering\n"
               "scales ~linearly (2x/4x/8x, busy max/mean 1.00), NIC-style hash\n"
               "steering lands ~3.7-3.8x at 4 cores and visibly degrades where the\n"
               "port-hash leaves cores empty (8 cores on 8 ports: ~4.7x) — exactly\n"
               "why operators pin queues when ports are few. cores=1 reproduces\n"
               "Tables 1-6 unchanged.\n";
  write_bench_json("BENCH_throughput.json", report);
  return 0;
}

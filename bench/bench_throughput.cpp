// E1 — throughput ("without incurring any major performance penalty").
//
// Two tables, matching the two readings of the claim:
//
//  Table 1 (capacity): RFC 2544-style no-drop rate — for each data
//  plane and frame size, a binary search over offered load finds the
//  highest rate forwarded with <0.5% loss on a 10G feed. The legacy
//  ASIC runs at line rate; the software switches are CPU-bound; the
//  HARMLESS path crosses SS_1 twice per packet, so its NDR is roughly
//  half the native soft switch's until the wire becomes the limit.
//
//  Table 2 (deployment envelope): offered load fixed at the 1G access
//  line rate — the rates a migrated legacy switch actually serves.
//  Here HARMLESS tracks the legacy baseline at every frame size: the
//  paper's "no major performance penalty" in its operating regime.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

constexpr std::size_t kTrialPackets = 4'000;
constexpr double kLossBudget = 0.005;  // 0.5%

/// Offered fraction of line rate -> measured loss ratio.
template <typename Rig>
double loss_at(const RigOptions& options, std::size_t frame_size, double fraction) {
  Rig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  const double line_interval =
      static_cast<double>(options.access_link.rate.serialization_ns(frame_size));
  const auto interval = static_cast<sim::SimNanos>(std::ceil(line_interval / fraction));
  rig.stream(0, 1, kTrialPackets, frame_size, interval);
  rig.network.run();
  return 1.0 - static_cast<double>(recorder.completed()) / kTrialPackets;
}

/// RFC 2544-ish binary search for the no-drop rate, in packets/s.
template <typename Rig>
double ndr_pps(const RigOptions& options, std::size_t frame_size) {
  const double line_pps =
      1e9 / static_cast<double>(options.access_link.rate.serialization_ns(frame_size));
  if (loss_at<Rig>(options, frame_size, 1.0) <= kLossBudget) return line_pps;
  double lo = 0.01, hi = 1.0;
  for (int step = 0; step < 9; ++step) {
    const double mid = (lo + hi) / 2;
    if (loss_at<Rig>(options, frame_size, mid) <= kLossBudget)
      lo = mid;
    else
      hi = mid;
  }
  return line_pps * lo;
}

/// Fixed-rate delivery (Table 2): offered exactly at line rate.
template <typename Rig>
Throughput delivered_at_line(const RigOptions& options, std::size_t frame_size) {
  Rig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.stream(0, 1, kTrialPackets, frame_size,
             options.access_link.rate.serialization_ns(frame_size));
  rig.network.run();
  return measure(recorder, frame_size);
}

}  // namespace

int main() {
  std::cout << "E1 - throughput: legacy vs native software switch vs HARMLESS\n"
            << "(unidirectional h1->h2, preinstalled L2 state, " << kTrialPackets
            << " packets per trial)\n\n";

  {
    RigOptions options;
    options.access_link = sim::LinkSpec::gbps(10);
    options.trunk_link = sim::LinkSpec::gbps(10);
    std::cout << "Table 1 - no-drop rate on a 10G feed (<0.5% loss, binary search):\n";
    util::Table table({"frame", "legacy (pps)", "native SS (pps)", "HARMLESS (pps)",
                       "HARMLESS (Gb/s)", "vs legacy", "vs native"});
    for (const std::size_t frame_size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
      const double legacy_pps = ndr_pps<LegacyRig>(options, frame_size);
      const double native_pps = ndr_pps<NativeRig>(options, frame_size);
      const double harmless_pps = ndr_pps<HarmlessRig>(options, frame_size);
      table.add_row({std::to_string(frame_size) + "B", util::si_format(legacy_pps, "pps"),
                     util::si_format(native_pps, "pps"), util::si_format(harmless_pps, "pps"),
                     util::format("%.2f", harmless_pps * static_cast<double>(frame_size) * 8 / 1e9),
                     util::format("%.2fx", harmless_pps / legacy_pps),
                     util::format("%.2fx", harmless_pps / native_pps)});
    }
    std::cout << table.to_string() << '\n';
  }

  {
    RigOptions options;
    options.access_link = sim::LinkSpec::gbps(1);
    options.trunk_link = sim::LinkSpec::gbps(10);
    std::cout << "Table 2 - goodput at the 1G access line rate (deployment envelope):\n";
    util::Table table({"frame", "legacy (pps)", "native SS (pps)", "HARMLESS (pps)",
                       "HARMLESS (Gb/s)", "vs legacy", "vs native"});
    for (const std::size_t frame_size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
      const Throughput legacy_tp = delivered_at_line<LegacyRig>(options, frame_size);
      const Throughput native_tp = delivered_at_line<NativeRig>(options, frame_size);
      const Throughput harmless_tp = delivered_at_line<HarmlessRig>(options, frame_size);
      table.add_row({std::to_string(frame_size) + "B", util::si_format(legacy_tp.pps, "pps"),
                     util::si_format(native_tp.pps, "pps"),
                     util::si_format(harmless_tp.pps, "pps"),
                     util::format("%.2f", harmless_tp.gbps),
                     util::format("%.2fx", harmless_tp.pps / legacy_tp.pps),
                     util::format("%.2fx", harmless_tp.pps / native_tp.pps)});
    }
    std::cout << table.to_string() << '\n';
  }

  std::cout << "Shape check: Table 2 should read 1.00x across the board (the paper's\n"
               "'no major performance penalty' at access-network rates). Table 1 shows\n"
               "the honest capacity bill: HARMLESS's NDR is about half the native soft\n"
               "switch at small frames (every packet crosses SS_1 twice) and converges\n"
               "to line rate once serialization dominates (>=512B).\n";
  return 0;
}

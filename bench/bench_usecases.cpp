// E4 — the three demo use cases of §2, run at benchmark scale on the
// full HARMLESS fabric, with the numbers each demo is judged by:
//   (a) Load Balancer: per-backend share + max imbalance vs the ideal
//   (b) DMZ: allowed/denied matrix counts (policy exactness)
//   (c) Parental Control: blocked/allowed requests + data-plane-drop
//       ratio after the on-the-fly flow install
#include <iostream>

#include "bench/common.hpp"
#include "controller/apps/dmz.hpp"
#include "controller/apps/learning.hpp"
#include "controller/apps/load_balancer.hpp"
#include "controller/apps/parental.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless;
using namespace harmless::bench;

namespace {

void run_load_balancer() {
  constexpr int kBackends = 4;
  constexpr std::uint32_t kClients = 2000;

  RigOptions options;
  options.host_count = kBackends + 1;  // port 1 = uplink
  HarmlessRig rig(options);
  // Replace the static L2 program: the LB app owns SS_2's table.
  rig.fabric->ss2().pipeline().table(0).remove(openflow::Match{}, /*strict=*/false);

  controller::LoadBalancerConfig config;
  config.vip = net::Ipv4Addr(10, 0, 0, 100);
  config.vip_mac = net::MacAddr::from_u64(0x02000000dead);
  config.client_ports = {1};
  for (int i = 0; i < kBackends; ++i) {
    rig.hosts[static_cast<std::size_t>(i + 1)]->serve_http(80);
    config.backends.push_back(controller::Backend{host_mac(i + 1), host_ip(i + 1),
                                                  static_cast<std::uint32_t>(i + 2), 1});
  }
  controller::Controller ctrl;
  ctrl.add_app<controller::LoadBalancerApp>(config);
  ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  // Pace the client arrivals so the uplink queue never tail-drops.
  for (std::uint32_t client = 1; client <= kClients; ++client) {
    rig.network.engine().schedule_at(static_cast<sim::SimNanos>(client) * 5'000, [&rig, &config,
                                                                                  client] {
      net::FlowKey key;
      key.eth_src = rig.hosts[0]->mac();
      key.eth_dst = config.vip_mac;
      key.ip_src = net::Ipv4Addr(0xac100000u + client);
      key.ip_dst = config.vip;
      key.src_port = static_cast<std::uint16_t>(20000 + (client % 40000));
      key.dst_port = 80;
      rig.hosts[0]->send(net::make_http_get(key, "vip.example"));
    });
  }
  rig.network.run();

  std::cout << "(a) Load Balancer - " << kClients << " client IPs over " << kBackends
            << " backends (src-IP hash group):\n";
  util::Table table({"backend", "requests", "share", "ideal"});
  std::uint64_t total = 0;
  std::uint64_t max_served = 0;
  for (int i = 0; i < kBackends; ++i) {
    const auto served = rig.hosts[static_cast<std::size_t>(i + 1)]->counters().http_requests_served;
    total += served;
    max_served = std::max(max_served, served);
  }
  for (int i = 0; i < kBackends; ++i) {
    const auto served = rig.hosts[static_cast<std::size_t>(i + 1)]->counters().http_requests_served;
    table.add_row({"web" + std::to_string(i + 1), std::to_string(served),
                   util::format("%.1f%%", 100.0 * static_cast<double>(served) / static_cast<double>(total)),
                   util::format("%.1f%%", 100.0 / kBackends)});
  }
  std::cout << table.to_string();
  std::cout << util::format(
      "served=%llu/%u  max-imbalance=%.2fx ideal  200s delivered to uplink=%llu\n\n",
      static_cast<unsigned long long>(total), kClients,
      static_cast<double>(max_served) * kBackends / static_cast<double>(total),
      static_cast<unsigned long long>(rig.hosts[0]->counters().http_ok_received));
}

void run_dmz() {
  constexpr int kVms = 6;
  RigOptions options;
  options.host_count = kVms;
  HarmlessRig rig(options);
  rig.fabric->ss2().pipeline().table(0).remove(openflow::Match{}, /*strict=*/false);

  controller::DmzPolicy policy;
  for (int i = 0; i < kVms; ++i)
    policy.hosts.push_back(controller::DmzHost{"vm" + std::to_string(i + 1), host_ip(i),
                                               static_cast<std::uint32_t>(i + 1)});
  policy.allowed_pairs = {{"vm1", "vm2"}, {"vm3", "vm4"}};
  controller::Controller ctrl;
  ctrl.add_app<controller::DmzPolicyApp>(policy);
  ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  constexpr int kProbesPerPair = 20;
  int allowed_delivered = 0, allowed_total = 0;
  int denied_delivered = 0, denied_total = 0;
  for (int from = 0; from < kVms; ++from) {
    for (int to = 0; to < kVms; ++to) {
      if (from == to) continue;
      const bool should_pass = (from / 2 == to / 2) && (from / 2 < 2);
      const auto rx_before = rig.hosts[static_cast<std::size_t>(to)]->counters().rx_udp;
      for (int probe = 0; probe < kProbesPerPair; ++probe) {
        net::FlowKey key;
        key.eth_src = host_mac(from);
        key.eth_dst = host_mac(to);
        key.ip_src = host_ip(from);
        key.ip_dst = host_ip(to);
        key.src_port = static_cast<std::uint16_t>(1000 + probe);
        key.dst_port = 7000;
        rig.hosts[static_cast<std::size_t>(from)]->send(net::make_udp(key, 128));
      }
      rig.network.run();
      const int delivered = static_cast<int>(
          rig.hosts[static_cast<std::size_t>(to)]->counters().rx_udp - rx_before);
      if (should_pass) {
        allowed_total += kProbesPerPair;
        allowed_delivered += delivered;
      } else {
        denied_total += kProbesPerPair;
        denied_delivered += delivered;
      }
    }
  }

  std::cout << "(b) DMZ - " << kVms << " tenant VMs, pairs {vm1,vm2} and {vm3,vm4} allowed, "
            << kProbesPerPair << " probes per ordered pair:\n";
  util::Table table({"class", "probes", "delivered", "policy-correct"});
  table.add_row({"allowed pairs", std::to_string(allowed_total),
                 std::to_string(allowed_delivered),
                 allowed_delivered == allowed_total ? "yes" : "NO"});
  table.add_row({"denied pairs", std::to_string(denied_total),
                 std::to_string(denied_delivered),
                 denied_delivered == 0 ? "yes" : "NO"});
  std::cout << table.to_string() << '\n';
}

void run_parental_control() {
  constexpr int kUsers = 3;           // hosts 1..3; host 4 = web server
  constexpr int kRequestsPerUser = 50;
  RigOptions options;
  options.host_count = kUsers + 1;
  HarmlessRig rig(options);
  rig.fabric->ss2().pipeline().table(0).remove(openflow::Match{}, /*strict=*/false);

  controller::ParentalControlConfig config;
  config.blocklist[host_ip(0)] = {"games.example", "social.example"};
  config.blocklist[host_ip(1)] = {"games.example"};
  controller::Controller ctrl;
  auto& app = ctrl.add_app<controller::ParentalControlApp>(config);
  ctrl.add_app<controller::LearningSwitchApp>(/*table=*/1);
  ctrl.connect(rig.fabric->control_channel());
  rig.network.run();

  sim::Host& server = *rig.hosts[kUsers];
  server.serve_http(80);

  const char* sites[] = {"games.example", "social.example", "news.example"};
  for (int user = 0; user < kUsers; ++user) {
    for (int request = 0; request < kRequestsPerUser; ++request) {
      rig.hosts[static_cast<std::size_t>(user)]->http_get(server.mac(), server.ip(),
                                                          sites[request % 3]);
      // Let each request settle: blocked users get IP-level drop flows,
      // so ordering matters for the "first offence" accounting.
      rig.network.run();
    }
  }

  std::cout << "(c) Parental Control - " << kUsers << " users x " << kRequestsPerUser
            << " requests over 3 sites (user1 blocks 2 sites, user2 blocks 1):\n";
  util::Table table({"user", "403s received", "200s received", "note"});
  for (int user = 0; user < kUsers; ++user) {
    const auto& counters = rig.hosts[static_cast<std::size_t>(user)]->counters();
    const char* note = user == 0   ? "strictest blocklist"
                       : user == 1 ? "one blocked site"
                                   : "unrestricted";
    table.add_row({"user" + std::to_string(user + 1),
                   std::to_string(counters.http_forbidden_received),
                   std::to_string(counters.http_ok_received), note});
  }
  std::cout << table.to_string();
  std::cout << util::format(
      "app: seen=%llu blocked=%llu allowed=%llu drop-flows=%llu "
      "(after the first offence the block is pure data plane)\n\n",
      static_cast<unsigned long long>(app.stats().requests_seen),
      static_cast<unsigned long long>(app.stats().blocked),
      static_cast<unsigned long long>(app.stats().allowed),
      static_cast<unsigned long long>(app.stats().drop_flows_installed));
}

}  // namespace

int main() {
  std::cout << "E4 - the paper's three in-network use cases on the HARMLESS fabric\n\n";
  run_load_balancer();
  run_dmz();
  run_parental_control();
  std::cout << "Shape check: (a) near-even split, sticky per source IP; (b) policy\n"
               "matrix exact; (c) per-user blocking with 403s, repeats dropped in\n"
               "the data plane - all on an unmodified legacy switch.\n";
  return 0;
}

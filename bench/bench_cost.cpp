// E3 — CAPEX ("Cost-Effective Transitioning to SDN").
//
// The paper's economic argument as a sweepable table: the cost of
// giving N access ports OpenFlow capability under the three migration
// strategies, per-port cost, and the multiple each alternative pays
// over HARMLESS. A greenfield sensitivity column shows the result is
// not an artifact of treating the legacy switches as sunk.
#include <iostream>

#include "harmless/cost_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace harmless::core;
using harmless::util::Table;
using harmless::util::format;

int main() {
  CostModel model;
  std::cout << "E3 - CAPEX to SDN-enable N access ports (2017 catalog prices)\n\n";

  std::cout << "Catalog:\n";
  Table catalog({"device", "price (USD)", "ports/unit"});
  const Catalog& skus = model.catalog();
  for (const DeviceSku* sku : {&skus.legacy_switch, &skus.sdn_switch, &skus.server,
                               &skus.nic_10g, &skus.nic_quad_1g, &skus.trunk_cable})
    catalog.add_row({sku->name, format("%.0f", sku->price_usd), std::to_string(sku->ports)});
  std::cout << catalog.to_string() << '\n';

  Table table({"ports", "forklift SDN ($)", "pure software ($)", "HARMLESS ($)",
               "HARMLESS $/port", "forklift/HARMLESS", "software/HARMLESS",
               "HARMLESS greenfield ($)"});
  for (const int ports : {24, 48, 96, 192, 384}) {
    const double forklift = model.estimate(Strategy::kForkliftSdn, ports).total_usd();
    const double software = model.estimate(Strategy::kPureSoftware, ports).total_usd();
    const CostEstimate harmless_cost = model.estimate(Strategy::kHarmless, ports);
    const double greenfield =
        model.estimate(Strategy::kHarmless, ports, /*greenfield=*/true).total_usd();
    table.add_row({std::to_string(ports), format("%.0f", forklift), format("%.0f", software),
                   format("%.0f", harmless_cost.total_usd()),
                   format("%.1f", harmless_cost.usd_per_port()),
                   format("%.1fx", forklift / harmless_cost.total_usd()),
                   format("%.1fx", software / harmless_cost.total_usd()),
                   format("%.0f", greenfield)});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Example bill of materials (48 ports, HARMLESS):\n"
            << model.estimate(Strategy::kHarmless, 48).to_string() << '\n';

  std::cout << "Shape check: HARMLESS is the cheapest strategy at every N (it buys\n"
               "one server per already-owned switch); the forklift pays the full\n"
               "COTS-SDN price per 48 ports, pure software pays the port-density tax\n"
               "(chassis + quad NICs). The gap persists even greenfield.\n";
  return 0;
}

// OID ordering/parsing and the SNMP agent semantics (GET/SET/GETNEXT/
// WALK, read-only enforcement, writer rejections).
#include <gtest/gtest.h>

#include "mgmt/oid.hpp"
#include "mgmt/snmp.hpp"

namespace harmless::mgmt {
namespace {

TEST(Oid, ParseAndFormat) {
  const auto oid = Oid::parse("1.3.6.1.2.1.1.1.0");
  ASSERT_TRUE(oid);
  EXPECT_EQ(oid->to_string(), "1.3.6.1.2.1.1.1.0");
  EXPECT_EQ(oid->size(), 9u);
}

TEST(Oid, ParseRejectsGarbage) {
  EXPECT_FALSE(Oid::parse(""));
  EXPECT_FALSE(Oid::parse("1..2"));
  EXPECT_FALSE(Oid::parse("1.a.2"));
  EXPECT_FALSE(Oid::parse("1.2.99999999999999"));
}

TEST(Oid, LexicographicOrdering) {
  const Oid a{1, 3, 6};
  const Oid b{1, 3, 6, 1};
  const Oid c{1, 3, 7};
  EXPECT_LT(a, b);  // prefix sorts first
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Oid{1, 3, 6}));
}

TEST(Oid, ChildAndPrefix) {
  const Oid base{1, 3, 6};
  const Oid leaf = base.child({1, 0});
  EXPECT_EQ(leaf, (Oid{1, 3, 6, 1, 0}));
  EXPECT_TRUE(leaf.has_prefix(base));
  EXPECT_FALSE(base.has_prefix(leaf));
  EXPECT_TRUE(base.has_prefix(base));
}

class SnmpAgentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    agent_.register_var(Oid{1, 1, 0}, [this] { return SnmpValue{counter_}; });
    agent_.register_var(
        Oid{1, 2, 0}, [this] { return SnmpValue{name_}; },
        [this](const SnmpValue& value) -> std::string {
          const auto* text = std::get_if<std::string>(&value);
          if (!text) return "must be a string";
          if (text->empty()) return "must not be empty";
          name_ = *text;
          return {};
        });
    agent_.register_var(Oid{1, 3, 0}, [] { return SnmpValue{std::int64_t{42}}; });
  }

  SnmpAgent agent_;
  std::int64_t counter_ = 5;
  std::string name_ = "box";
};

TEST_F(SnmpAgentTest, GetReadsLiveValues) {
  auto value = agent_.get(Oid{1, 1, 0});
  ASSERT_TRUE(value);
  EXPECT_EQ(std::get<std::int64_t>(*value), 5);
  counter_ = 6;
  EXPECT_EQ(std::get<std::int64_t>(*agent_.get(Oid{1, 1, 0})), 6);
}

TEST_F(SnmpAgentTest, GetUnknownOidFails) {
  auto value = agent_.get(Oid{9, 9});
  EXPECT_FALSE(value);
  EXPECT_NE(value.message().find("noSuchName"), std::string::npos);
}

TEST_F(SnmpAgentTest, SetWritableVariable) {
  auto result = agent_.set(Oid{1, 2, 0}, std::string("renamed"));
  EXPECT_TRUE(result);
  EXPECT_EQ(name_, "renamed");
}

TEST_F(SnmpAgentTest, SetReadOnlyFails) {
  auto result = agent_.set(Oid{1, 1, 0}, std::int64_t{1});
  EXPECT_FALSE(result);
  EXPECT_NE(result.message().find("readOnly"), std::string::npos);
}

TEST_F(SnmpAgentTest, WriterCanRejectValues) {
  auto result = agent_.set(Oid{1, 2, 0}, std::string(""));
  EXPECT_FALSE(result);
  EXPECT_NE(result.message().find("badValue"), std::string::npos);
  EXPECT_EQ(name_, "box");  // unchanged

  result = agent_.set(Oid{1, 2, 0}, std::int64_t{3});
  EXPECT_FALSE(result);
}

TEST_F(SnmpAgentTest, GetNextWalksInOrder) {
  auto next = agent_.get_next(Oid{1, 1, 0});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, (Oid{1, 2, 0}));
  next = agent_.get_next(Oid{1, 2, 0});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, (Oid{1, 3, 0}));
  next = agent_.get_next(Oid{1, 3, 0});
  EXPECT_FALSE(next);  // endOfMib
}

TEST_F(SnmpAgentTest, GetNextFromNonexistentStartsAtSuccessor) {
  auto next = agent_.get_next(Oid{1});
  ASSERT_TRUE(next);
  EXPECT_EQ(next->oid, (Oid{1, 1, 0}));
}

TEST_F(SnmpAgentTest, WalkReturnsSubtreeOnly) {
  agent_.register_var(Oid{2, 1}, [] { return SnmpValue{std::int64_t{0}}; });
  const auto binds = agent_.walk(Oid{1});
  EXPECT_EQ(binds.size(), 3u);
  const auto all = agent_.walk(Oid{});
  EXPECT_EQ(all.size(), 4u);
  const auto none = agent_.walk(Oid{3});
  EXPECT_TRUE(none.empty());
}

TEST_F(SnmpAgentTest, UnregisterSubtree) {
  agent_.unregister_subtree(Oid{1, 2});
  EXPECT_FALSE(agent_.get(Oid{1, 2, 0}));
  EXPECT_TRUE(agent_.get(Oid{1, 1, 0}));
}

TEST_F(SnmpAgentTest, StatsCountOperations) {
  (void)agent_.get(Oid{1, 1, 0});
  (void)agent_.set(Oid{1, 2, 0}, std::string("x"));
  (void)agent_.walk(Oid{1});
  EXPECT_EQ(agent_.stats().gets, 1u);
  EXPECT_EQ(agent_.stats().sets, 1u);
  EXPECT_EQ(agent_.stats().walks, 1u);
}

TEST(SnmpValue, ToString) {
  EXPECT_EQ(snmp_value_to_string(SnmpValue{std::int64_t{-3}}), "-3");
  EXPECT_EQ(snmp_value_to_string(SnmpValue{std::string("hi")}), "hi");
}

}  // namespace
}  // namespace harmless::mgmt

// MIB binding + NAPALM-style driver tests: facts, interface walks,
// candidate/commit/rollback, dialect render/parse round-trips.
#include <gtest/gtest.h>

#include "legacy/legacy_switch.hpp"
#include "mgmt/dialects.hpp"
#include "mgmt/driver.hpp"
#include "mgmt/mib.hpp"
#include "sim/network.hpp"

namespace harmless::mgmt {
namespace {

using legacy::LegacySwitch;
using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;

SwitchConfig base_config() {
  SwitchConfig config;
  config.hostname = "edge-7";
  for (int port = 1; port <= 4; ++port)
    config.ports[port] = PortConfig{PortMode::kAccess, 1, {}, std::nullopt, true, ""};
  return config;
}

class MibDriverTest : public ::testing::Test {
 protected:
  MibDriverTest()
      : device_(network_.add_node<LegacySwitch>("dev", base_config())),
        mib_(agent_, device_),
        driver_(agent_, make_ios_like_dialect()) {}

  sim::Network network_;
  LegacySwitch& device_;
  SnmpAgent agent_;
  SwitchMib mib_;
  SnmpDriver driver_;
};

TEST_F(MibDriverTest, GetFactsReflectsDevice) {
  auto facts = driver_.get_facts();
  ASSERT_TRUE(facts);
  EXPECT_EQ(facts->hostname, "edge-7");
  EXPECT_EQ(facts->interface_count, 4);
  EXPECT_NE(facts->description.find("802.1Q"), std::string::npos);
}

TEST_F(MibDriverTest, GetInterfacesReadsRunningConfig) {
  auto interfaces = driver_.get_interfaces();
  ASSERT_TRUE(interfaces);
  ASSERT_EQ(interfaces->size(), 4u);
  EXPECT_EQ((*interfaces)[0].number, 1);
  EXPECT_EQ((*interfaces)[0].mode, PortMode::kAccess);
  EXPECT_EQ((*interfaces)[0].pvid, 1);
  EXPECT_TRUE((*interfaces)[0].enabled);
}

TEST_F(MibDriverTest, StageCommitAppliesVlanConfig) {
  const std::string config_text =
      "interface GigabitEthernet0/1\n"
      " switchport mode access\n"
      " switchport access vlan 101\n"
      "interface GigabitEthernet0/4\n"
      " switchport mode trunk\n"
      " switchport trunk allowed vlan 101,102\n";
  ASSERT_TRUE(driver_.load_merge_candidate(config_text));

  // Nothing applied yet; the diff is non-empty.
  auto diff = driver_.compare_config();
  ASSERT_TRUE(diff);
  EXPECT_FALSE(diff->empty());
  EXPECT_EQ(device_.config().ports.at(1).pvid, 1);

  ASSERT_TRUE(driver_.commit_config());
  EXPECT_EQ(device_.config().ports.at(1).pvid, 101);
  EXPECT_EQ(device_.config().ports.at(4).mode, PortMode::kTrunk);
  EXPECT_EQ(device_.config().ports.at(4).allowed_vlans, (std::set<net::VlanId>{101, 102}));

  // Post-commit the diff is clean.
  diff = driver_.compare_config();
  ASSERT_TRUE(diff);
  EXPECT_TRUE(diff->empty());
  EXPECT_EQ(mib_.commits(), 1);
}

TEST_F(MibDriverTest, RollbackRestoresPreCommitState) {
  const std::string first =
      "interface GigabitEthernet0/2\n"
      " switchport access vlan 55\n";
  ASSERT_TRUE(driver_.load_merge_candidate(first));
  ASSERT_TRUE(driver_.commit_config());
  ASSERT_EQ(device_.config().ports.at(2).pvid, 55);

  const std::string second =
      "interface GigabitEthernet0/2\n"
      " switchport access vlan 66\n";
  ASSERT_TRUE(driver_.load_merge_candidate(second));
  ASSERT_TRUE(driver_.commit_config());
  ASSERT_EQ(device_.config().ports.at(2).pvid, 66);

  ASSERT_TRUE(driver_.rollback());
  EXPECT_EQ(device_.config().ports.at(2).pvid, 55);
}

TEST_F(MibDriverTest, RollbackWithoutCommitFails) {
  EXPECT_FALSE(driver_.rollback());
}

TEST_F(MibDriverTest, BadConfigTextRejectedAtStage) {
  EXPECT_FALSE(driver_.load_merge_candidate("interface Ethernet1\n flurb\n"));
  EXPECT_FALSE(driver_.load_merge_candidate("switchport mode access\n"));  // no section
  EXPECT_FALSE(driver_.load_merge_candidate(
      "interface GigabitEthernet0/1\n switchport access vlan 4095\n"));
}

TEST_F(MibDriverTest, InvalidCandidateRejectedAtCommit) {
  // Trunk with no VLANs is structurally invalid -> commit must fail and
  // leave the device untouched.
  ASSERT_TRUE(driver_.load_merge_candidate(
      "interface GigabitEthernet0/3\n switchport mode trunk\n"));
  EXPECT_FALSE(driver_.commit_config());
  EXPECT_EQ(device_.config().ports.at(3).mode, PortMode::kAccess);
}

TEST_F(MibDriverTest, CompareConfigIsALineDiff) {
  ASSERT_TRUE(driver_.load_merge_candidate(
      "interface GigabitEthernet0/1\n switchport access vlan 77\n"));
  auto diff = driver_.compare_config();
  ASSERT_TRUE(diff);
  EXPECT_NE(diff->find("- "), std::string::npos);
  EXPECT_NE(diff->find("+   switchport access vlan 77"), std::string::npos);
}

TEST_F(MibDriverTest, CommitEmitsTrap) {
  std::vector<std::pair<Oid, std::int64_t>> traps;
  agent_.add_trap_sink([&](const SnmpAgent::VarBind& bind) {
    if (const auto* value = std::get_if<std::int64_t>(&bind.value))
      traps.emplace_back(bind.oid, *value);
  });
  ASSERT_TRUE(driver_.load_merge_candidate(
      "interface GigabitEthernet0/1\n switchport access vlan 55\n"));
  ASSERT_TRUE(driver_.commit_config());
  ASSERT_EQ(traps.size(), 1u);
  EXPECT_EQ(traps[0].first, oids::kEnterprise.child({0, 1}));
  EXPECT_EQ(traps[0].second, 1);
  EXPECT_EQ(agent_.stats().traps, 1u);
}

TEST_F(MibDriverTest, SnmpSetValidation) {
  // pvid out of range via raw SNMP.
  auto result = agent_.set(oids::kEnterprise.child({1, 2, 1}), std::int64_t{0});
  EXPECT_FALSE(result);
  result = agent_.set(oids::kEnterprise.child({1, 1, 1}), std::int64_t{7});
  EXPECT_FALSE(result);  // mode must be 1 or 2
  result = agent_.set(oids::kEnterprise.child({1, 3, 1}), std::string("1,bogus"));
  EXPECT_FALSE(result);
  result = agent_.set(oids::kEnterprise.child({2, 0}), std::int64_t{0});
  EXPECT_FALSE(result);  // commit wants 1
}

// ---------------------------------------------------------- dialects

class DialectRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DialectRoundTrip, RenderParseIsIdentity) {
  auto dialect = make_dialect(GetParam());
  ASSERT_NE(dialect, nullptr);

  SwitchConfig config;
  config.hostname = "rt-sw";
  config.ports[1] = PortConfig{PortMode::kAccess, 101, {}, std::nullopt, true, "host leg"};
  config.ports[2] = PortConfig{PortMode::kAccess, 102, {}, std::nullopt, false, ""};
  config.ports[9] =
      PortConfig{PortMode::kTrunk, 1, {101, 102, 200}, net::VlanId{200}, true, "uplink"};

  const std::string text = dialect->render(config);
  auto parsed = dialect->parse(text);
  ASSERT_TRUE(parsed) << parsed.message();
  EXPECT_EQ(parsed->hostname, "rt-sw");
  ASSERT_EQ(parsed->ports.size(), 3u);
  EXPECT_EQ(parsed->ports.at(1).pvid, 101);
  EXPECT_EQ(parsed->ports.at(1).description, "host leg");
  EXPECT_FALSE(parsed->ports.at(2).enabled);
  EXPECT_EQ(parsed->ports.at(9).mode, PortMode::kTrunk);
  EXPECT_EQ(parsed->ports.at(9).allowed_vlans, (std::set<net::VlanId>{101, 102, 200}));
  ASSERT_TRUE(parsed->ports.at(9).native_vlan);
  EXPECT_EQ(*parsed->ports.at(9).native_vlan, 200);
}

INSTANTIATE_TEST_SUITE_P(BothVendors, DialectRoundTrip,
                         ::testing::Values("ios_like", "eos_like"));

TEST(Dialects, InterfaceNamingDiffers) {
  auto ios = make_ios_like_dialect();
  auto eos = make_eos_like_dialect();
  EXPECT_EQ(ios->interface_name(3), "GigabitEthernet0/3");
  EXPECT_EQ(eos->interface_name(3), "Ethernet3");
  EXPECT_EQ(ios->parse_interface_name("GigabitEthernet0/17"), 17);
  EXPECT_EQ(eos->parse_interface_name("Ethernet17"), 17);
  EXPECT_FALSE(ios->parse_interface_name("Ethernet17"));
  EXPECT_FALSE(eos->parse_interface_name("GigabitEthernet0/17"));
  EXPECT_FALSE(eos->parse_interface_name("Ethernet0"));
}

TEST(Dialects, UnknownPlatformIsNull) {
  EXPECT_EQ(make_dialect("junos"), nullptr);
}

TEST(Dialects, ParseReportsLineNumbers) {
  auto dialect = make_ios_like_dialect();
  auto result = dialect->parse("hostname x\ninterface GigabitEthernet0/1\n bogus here\n");
  ASSERT_FALSE(result);
  EXPECT_NE(result.message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace harmless::mgmt

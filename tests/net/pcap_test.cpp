// pcap writer/reader round-trips, snaplen truncation, malformed-file
// rejection, and the simulated trunk tap capturing tagged frames.
#include <gtest/gtest.h>

#include <fstream>

#include "harmless/fabric.hpp"
#include "legacy/legacy_switch.hpp"
#include "net/build.hpp"
#include "net/pcap.hpp"
#include "sim/network.hpp"

namespace harmless::net {
namespace {

FlowKey flow() {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  key.src_port = 1;
  key.dst_port = 2;
  return key;
}

TEST(Pcap, EmptyCaptureHasOnlyHeader) {
  PcapWriter pcap;
  EXPECT_EQ(pcap.count(), 0u);
  EXPECT_EQ(pcap.bytes().size(), 24u);
  auto parsed = pcap_parse(pcap.bytes());
  ASSERT_TRUE(parsed) << parsed.message();
  EXPECT_TRUE(parsed->empty());
}

TEST(Pcap, WriteParseRoundTrip) {
  PcapWriter pcap;
  const Packet a = make_udp(flow(), 100);
  const Packet b = make_udp(flow(), 200);
  pcap.write(1'500'000'123, a);
  pcap.write(2'000'000'456, b);
  EXPECT_EQ(pcap.count(), 2u);

  auto parsed = pcap_parse(pcap.bytes());
  ASSERT_TRUE(parsed) << parsed.message();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].timestamp_ns, 1'500'000'123);
  EXPECT_EQ((*parsed)[0].frame, a.frame());
  EXPECT_EQ((*parsed)[1].timestamp_ns, 2'000'000'456);
  EXPECT_EQ((*parsed)[1].frame, b.frame());
}

TEST(Pcap, SnaplenTruncatesCaptureNotLength) {
  PcapWriter pcap(/*snaplen=*/60);
  pcap.write(0, make_udp(flow(), 500));
  auto parsed = pcap_parse(pcap.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ((*parsed)[0].frame.size(), 60u);
}

TEST(Pcap, ParseRejectsGarbage) {
  EXPECT_FALSE(pcap_parse(Bytes{1, 2, 3}));
  Bytes bogus(24, 0);
  EXPECT_FALSE(pcap_parse(bogus));  // bad magic
  PcapWriter pcap;
  pcap.write(0, make_udp(flow(), 100));
  Bytes truncated(pcap.bytes().begin(), pcap.bytes().end() - 5);
  EXPECT_FALSE(pcap_parse(truncated));
}

TEST(Pcap, SaveWritesFile) {
  PcapWriter pcap;
  pcap.write(42, make_udp(flow(), 64));
  const std::string path = ::testing::TempDir() + "/harmless_test.pcap";
  ASSERT_TRUE(pcap.save(path));
  std::ifstream in(path, std::ios::binary);
  Bytes from_disk((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(from_disk, pcap.bytes());
}

TEST(Pcap, TrunkTapSeesTaggedFrames) {
  // Build a tiny HARMLESS deployment, tap the legacy->SS_1 trunk
  // direction, and verify the capture shows the 802.1Q tags that hosts
  // themselves never see.
  sim::Network network;
  legacy::SwitchConfig config;
  config.ports[1] = legacy::PortConfig{legacy::PortMode::kAccess, 101, {}, std::nullopt,
                                       true, ""};
  config.ports[2] = legacy::PortConfig{legacy::PortMode::kAccess, 102, {}, std::nullopt,
                                       true, ""};
  config.ports[3] =
      legacy::PortConfig{legacy::PortMode::kTrunk, 1, {101, 102}, std::nullopt, true, ""};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);
  auto& h1 = network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
  auto& h2 = network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
  network.connect(h1, 0, device, 0, sim::LinkSpec::gbps(1));
  network.connect(h2, 0, device, 1, sim::LinkSpec::gbps(1));

  auto map = core::PortMap::make({1, 2}, 3);
  auto fabric = core::Fabric::build(network, device, *map);
  // Static L2 so traffic flows without a controller.
  openflow::FlowModMsg mod;
  mod.priority = 1;
  mod.instructions = openflow::apply({openflow::flood()});
  fabric.ss2().install(mod).check();

  PcapWriter pcap;
  // Channel labels use 0-based sim port indices: trunk port 3 -> "legacy:2".
  const auto trunk_up = network.find_channels("legacy:2->SS_1");
  ASSERT_EQ(trunk_up.size(), 1u);
  sim::Network::tap(*trunk_up[0], pcap);

  FlowKey key;
  key.eth_src = h1.mac();
  key.eth_dst = h2.mac();
  key.ip_src = h1.ip();
  key.ip_dst = h2.ip();
  h1.send(make_udp(key, 128));
  network.run();

  ASSERT_EQ(pcap.count(), 1u);
  auto parsed_file = pcap_parse(pcap.bytes());
  ASSERT_TRUE(parsed_file);
  const ParsedPacket captured = parse_packet((*parsed_file)[0].frame);
  ASSERT_TRUE(captured.has_vlan());
  EXPECT_EQ(captured.vlan_vid(), 101);      // tagged with the ingress port's VLAN
  EXPECT_GT((*parsed_file)[0].timestamp_ns, 0);
  // The host still received it untagged.
  EXPECT_EQ(h2.counters().rx_udp, 1u);
}

}  // namespace
}  // namespace harmless::net

// Tests for MacAddr and Ipv4Addr value types.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace harmless::net {
namespace {

TEST(MacAddr, ParseFormatsRoundTrip) {
  const auto mac = MacAddr::parse("02:00:ab:cd:ef:01");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:ab:cd:ef:01");
  EXPECT_EQ(mac->to_u64(), 0x0200abcdef01ULL);
}

TEST(MacAddr, ParseUppercase) {
  const auto mac = MacAddr::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddr::parse(""));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee"));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee:ff:00"));
  EXPECT_FALSE(MacAddr::parse("aa-bb-cc-dd-ee-ff"));
  EXPECT_FALSE(MacAddr::parse("gg:bb:cc:dd:ee:ff"));
  EXPECT_FALSE(MacAddr::parse("aa:bb:cc:dd:ee:f"));
}

TEST(MacAddr, FromU64MasksTo48Bits) {
  const auto mac = MacAddr::from_u64(0xffff0200000000abULL);
  EXPECT_EQ(mac.to_u64(), 0x0200000000abULL);
}

TEST(MacAddr, MulticastAndBroadcastBits) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  const auto multicast = MacAddr::parse("01:00:5e:00:00:01");
  ASSERT_TRUE(multicast);
  EXPECT_TRUE(multicast->is_multicast());
  EXPECT_FALSE(multicast->is_broadcast());
  const auto unicast = MacAddr::parse("02:00:00:00:00:01");
  EXPECT_FALSE(unicast->is_multicast());
  EXPECT_TRUE(MacAddr().is_zero());
}

TEST(MacAddr, HashableAndComparable) {
  std::unordered_set<MacAddr> set;
  set.insert(MacAddr::from_u64(1));
  set.insert(MacAddr::from_u64(1));
  set.insert(MacAddr::from_u64(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_LT(MacAddr::from_u64(1), MacAddr::from_u64(2));
}

TEST(Ipv4Addr, ParseFormatsRoundTrip) {
  const auto ip = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->to_string(), "10.1.2.3");
  EXPECT_EQ(ip->value(), 0x0a010203u);
  EXPECT_EQ(Ipv4Addr(10, 1, 2, 3), *ip);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1234.0.0.1"));
}

TEST(Ipv4Addr, SubnetMembership) {
  const Ipv4Addr ip(192, 168, 1, 77);
  EXPECT_TRUE(ip.in_subnet(Ipv4Addr(192, 168, 1, 0), 24));
  EXPECT_FALSE(ip.in_subnet(Ipv4Addr(192, 168, 2, 0), 24));
  EXPECT_TRUE(ip.in_subnet(Ipv4Addr(192, 168, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4Addr(0, 0, 0, 0), 0));    // everything
  EXPECT_TRUE(ip.in_subnet(ip, 32));                      // itself
  EXPECT_FALSE(Ipv4Addr(192, 168, 1, 78).in_subnet(ip, 32));
}

TEST(Ipv4Addr, SpecialAddresses) {
  EXPECT_TRUE(Ipv4Addr().is_zero());
  EXPECT_TRUE(Ipv4Addr(0xffffffffu).is_broadcast());
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(240, 0, 0, 1).is_multicast());
}

}  // namespace
}  // namespace harmless::net

// Property tests on the packet builders: every built frame must parse
// back to its FlowKey with valid checksums, across the whole size
// sweep the benchmarks use, and VLAN push/pop must be an identity.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "net/parse.hpp"
#include "util/rng.hpp"

namespace harmless::net {
namespace {

class FrameSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameSizeProperty, UdpRoundTripsAtEverySize) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x020000000011);
  key.eth_dst = MacAddr::from_u64(0x020000000022);
  key.ip_src = Ipv4Addr(172, 16, 5, 1);
  key.ip_dst = Ipv4Addr(172, 16, 5, 2);
  key.src_port = 5555;
  key.dst_port = 9000;

  const std::size_t size = GetParam();
  const Packet packet = make_udp(key, size);
  EXPECT_EQ(packet.size(), std::clamp<std::size_t>(size, kMinFrameSize, kMaxFrameSize));

  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.ipv4) << "size=" << size;
  ASSERT_TRUE(parsed.udp) << "size=" << size;
  EXPECT_EQ(parsed.eth_src, key.eth_src);
  EXPECT_EQ(parsed.eth_dst, key.eth_dst);
  EXPECT_EQ(parsed.ipv4->src, key.ip_src);
  EXPECT_EQ(parsed.ipv4->dst, key.ip_dst);
  EXPECT_EQ(parsed.src_port(), key.src_port);
  EXPECT_EQ(parsed.dst_port(), key.dst_port);
}

INSTANTIATE_TEST_SUITE_P(PaperSizeSweep, FrameSizeProperty,
                         ::testing::Values(60, 64, 128, 256, 512, 1024, 1500, 1518, 9000));

class VlanIdentityProperty : public ::testing::TestWithParam<int> {};

TEST_P(VlanIdentityProperty, PushPopIsIdentityForRandomPackets) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iteration = 0; iteration < 50; ++iteration) {
    FlowKey key;
    key.eth_src = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.eth_dst = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.ip_src = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.ip_dst = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.src_port = static_cast<std::uint16_t>(rng.below(65536));
    key.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    Packet packet = make_udp(key, 64 + rng.below(1400));
    const Bytes original = packet.frame();

    const auto vid = static_cast<VlanId>(1 + rng.below(4094));
    vlan_push(packet.frame(), VlanTag{vid, 0, false});
    ASSERT_EQ(parse_packet(packet).vlan_vid(), vid);
    const auto popped = vlan_pop(packet.frame());
    ASSERT_TRUE(popped);
    EXPECT_EQ(popped->vid, vid);
    EXPECT_EQ(packet.frame(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VlanIdentityProperty, ::testing::Range(1, 6));

TEST(BuildProperty, UdpTemplateStampMatchesMakeUdpByteForByte) {
  // The template path (serialize once, stamp ports + incremental
  // checksum per packet) must be indistinguishable from a full
  // make_udp build — every byte, at every frame size the benches use,
  // across a port sweep that exercises checksum carry/fold edges.
  util::Rng rng(2024);
  for (const std::size_t size : {60UL, 64UL, 128UL, 512UL, 1500UL}) {
    FlowKey key;
    key.eth_src = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.eth_dst = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.ip_src = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.ip_dst = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    const UdpTemplate tmpl(key, size);
    for (int i = 0; i < 64; ++i) {
      key.src_port = static_cast<std::uint16_t>(rng.below(65536));
      key.dst_port = static_cast<std::uint16_t>(rng.below(65536));
      const Packet stamped = tmpl.stamp(key.src_port, key.dst_port);
      const Packet built = make_udp(key, size);
      ASSERT_EQ(Bytes(stamped.frame().begin(), stamped.frame().end()),
                Bytes(built.frame().begin(), built.frame().end()))
          << "size=" << size << " sport=" << key.src_port << " dport=" << key.dst_port;
    }
  }
}

TEST(BuildProperty, UdpTemplateStampHitsChecksumEdgeCases) {
  // Port pairs chosen to drive the incremental sum through 0xffff
  // folds and the RFC 768 zero-avoidance rule.
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x020000000011);
  key.eth_dst = MacAddr::from_u64(0x020000000022);
  key.ip_src = Ipv4Addr(192, 168, 1, 1);
  key.ip_dst = Ipv4Addr(192, 168, 1, 2);
  const UdpTemplate tmpl(key, 64);
  const std::uint16_t ports[] = {0, 1, 0x7fff, 0x8000, 0xfffe, 0xffff};
  for (const std::uint16_t sport : ports) {
    for (const std::uint16_t dport : ports) {
      key.src_port = sport;
      key.dst_port = dport;
      const Packet stamped = tmpl.stamp(sport, dport);
      const Packet built = make_udp(key, 64);
      ASSERT_EQ(Bytes(stamped.frame().begin(), stamped.frame().end()),
                Bytes(built.frame().begin(), built.frame().end()))
          << "sport=" << sport << " dport=" << dport;
      const ParsedPacket parsed = parse_packet(stamped);
      ASSERT_TRUE(parsed.udp);
      EXPECT_EQ(parsed.src_port(), sport);
      EXPECT_EQ(parsed.dst_port(), dport);
    }
  }
}

TEST(BuildProperty, TcpTemplateStampMatchesMakeTcpByteForByte) {
  // Same contract as the UDP template: the stamped fast path must be
  // indistinguishable from a full make_tcp build, across flag sets,
  // payloads and a port sweep that exercises checksum carries.
  util::Rng rng(2025);
  const std::uint8_t flag_sets[] = {kTcpSyn, kTcpSyn | kTcpAck, kTcpAck, kTcpPsh | kTcpAck,
                                    kTcpFin | kTcpAck};
  for (const std::uint8_t flags : flag_sets) {
    FlowKey key;
    key.eth_src = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.eth_dst = MacAddr::from_u64(0x020000000000 | rng.below(1 << 20));
    key.ip_src = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    key.ip_dst = Ipv4Addr(static_cast<std::uint32_t>(rng.below(UINT32_MAX)));
    const std::string payload = (flags & kTcpPsh) != 0 ? "GET / HTTP/1.1\r\n\r\n" : "";
    const TcpTemplate tmpl(key, flags, payload);
    for (int i = 0; i < 64; ++i) {
      key.src_port = static_cast<std::uint16_t>(rng.below(65536));
      key.dst_port = static_cast<std::uint16_t>(rng.below(65536));
      const Packet stamped = tmpl.stamp(key.src_port, key.dst_port);
      const Packet built = make_tcp(key, flags, payload);
      ASSERT_EQ(Bytes(stamped.frame().begin(), stamped.frame().end()),
                Bytes(built.frame().begin(), built.frame().end()))
          << "flags=" << int(flags) << " sport=" << key.src_port << " dport=" << key.dst_port;
    }
  }
}

TEST(BuildProperty, TcpTemplateStampHitsChecksumEdgeCases) {
  // Unlike UDP, TCP has no zero-avoidance rule at the checksum field:
  // a sum that folds to 0xffff really is stored as ~0xffff == 0. The
  // port corners drive the incremental sum through both folds.
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x020000000011);
  key.eth_dst = MacAddr::from_u64(0x020000000022);
  key.ip_src = Ipv4Addr(192, 168, 1, 1);
  key.ip_dst = Ipv4Addr(192, 168, 1, 2);
  const TcpTemplate tmpl(key, kTcpSyn);
  const std::uint16_t ports[] = {0, 1, 0x7fff, 0x8000, 0xfffe, 0xffff};
  for (const std::uint16_t sport : ports) {
    for (const std::uint16_t dport : ports) {
      key.src_port = sport;
      key.dst_port = dport;
      const Packet stamped = tmpl.stamp(sport, dport);
      const Packet built = make_tcp(key, kTcpSyn);
      ASSERT_EQ(Bytes(stamped.frame().begin(), stamped.frame().end()),
                Bytes(built.frame().begin(), built.frame().end()))
          << "sport=" << sport << " dport=" << dport;
      const ParsedPacket parsed = parse_packet(stamped);
      ASSERT_TRUE(parsed.tcp);
      EXPECT_EQ(parsed.src_port(), sport);
      EXPECT_EQ(parsed.dst_port(), dport);
      EXPECT_EQ(parsed.tcp->flags, kTcpSyn);
    }
  }
}

TEST(BuildProperty, TcpPayloadSurvivesChecksummedPath) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(1);
  key.eth_dst = MacAddr::from_u64(2);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  key.src_port = 1;
  key.dst_port = 2;
  const std::string body = "payload-with-\x01-binary";
  const Packet packet = make_tcp(key, kTcpPsh, body);
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.tcp);
  EXPECT_EQ(l4_payload(parsed, packet.frame()), body);
}

TEST(BuildProperty, ArpPairIsSymmetric) {
  const auto mac_a = MacAddr::from_u64(0xa), mac_b = MacAddr::from_u64(0xb);
  const Ipv4Addr ip_a(10, 0, 0, 1), ip_b(10, 0, 0, 2);
  const Packet request = make_arp_request(mac_a, ip_a, ip_b);
  const ParsedPacket parsed_request = parse_packet(request);
  ASSERT_TRUE(parsed_request.arp);

  const Packet reply =
      make_arp_reply(mac_b, ip_b, parsed_request.arp->sender_mac, parsed_request.arp->sender_ip);
  const ParsedPacket parsed_reply = parse_packet(reply);
  ASSERT_TRUE(parsed_reply.arp);
  EXPECT_EQ(parsed_reply.arp->op, ArpOp::kReply);
  EXPECT_EQ(parsed_reply.arp->sender_ip, ip_b);
  EXPECT_EQ(parsed_reply.arp->target_ip, ip_a);
  EXPECT_EQ(parsed_reply.eth_dst, mac_a);  // unicast back
}

}  // namespace
}  // namespace harmless::net

// Full-stack parser tests over built packets, including malformed and
// truncated frames.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "net/parse.hpp"

namespace harmless::net {
namespace {

FlowKey flow() {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x020000000001);
  key.eth_dst = MacAddr::from_u64(0x020000000002);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  key.src_port = 12345;
  key.dst_port = 80;
  return key;
}

TEST(Parse, UdpPacketAllLayers) {
  const Packet packet = make_udp(flow(), 128);
  EXPECT_EQ(packet.size(), 128u);
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.l2_valid);
  EXPECT_EQ(parsed.eth_src, flow().eth_src);
  EXPECT_EQ(parsed.eth_dst, flow().eth_dst);
  EXPECT_FALSE(parsed.has_vlan());
  ASSERT_TRUE(parsed.ipv4);
  EXPECT_EQ(parsed.ipv4->src, flow().ip_src);
  EXPECT_EQ(parsed.ipv4->dst, flow().ip_dst);
  ASSERT_TRUE(parsed.udp);
  EXPECT_EQ(parsed.src_port(), 12345);
  EXPECT_EQ(parsed.dst_port(), 80);
  EXPECT_FALSE(parsed.tcp);
  EXPECT_FALSE(parsed.arp);
}

TEST(Parse, MinimumSizeFramePadsCorrectly) {
  const Packet packet = make_udp(flow(), 10);  // clamped to 60
  EXPECT_EQ(packet.size(), kMinFrameSize);
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.udp);
}

TEST(Parse, TaggedPacketExposesVlanAndInnerLayers) {
  Packet packet = make_udp(flow(), 100);
  vlan_push(packet.frame(), VlanTag{101, 0, false});
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_vlan());
  EXPECT_EQ(parsed.vlan_vid(), 101);
  ASSERT_TRUE(parsed.ipv4);  // inner layers still reachable
  EXPECT_EQ(parsed.dst_port(), 80);
  EXPECT_EQ(parsed.eth_type, 0x0800);  // effective type after tag
}

TEST(Parse, ArpRequest) {
  const Packet packet =
      make_arp_request(flow().eth_src, flow().ip_src, flow().ip_dst);
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.arp);
  EXPECT_EQ(parsed.arp->op, ArpOp::kRequest);
  EXPECT_EQ(parsed.eth_dst, MacAddr::broadcast());
  EXPECT_EQ(parsed.arp->target_ip, flow().ip_dst);
}

TEST(Parse, IcmpEcho) {
  const Packet packet = make_icmp_echo(flow(), /*request=*/true, 3, 14);
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.icmp);
  EXPECT_EQ(parsed.icmp->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed.icmp->sequence, 14);
}

TEST(Parse, HttpGetPayloadExtractable) {
  const Packet packet = make_http_get(flow(), "example.com", "/index.html");
  const ParsedPacket parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.tcp);
  const std::string_view payload = l4_payload(parsed, packet.frame());
  EXPECT_NE(payload.find("GET /index.html HTTP/1.1"), std::string_view::npos);
  EXPECT_NE(payload.find("Host: example.com"), std::string_view::npos);
}

TEST(Parse, TruncatedFramesAreSafe) {
  const Packet packet = make_udp(flow(), 128);
  for (std::size_t keep = 0; keep < packet.size(); keep += 7) {
    Bytes truncated(packet.frame().begin(), packet.frame().begin() + keep);
    const ParsedPacket parsed = parse_packet(truncated);  // must not crash
    if (keep < kEthHeaderSize) {
      EXPECT_FALSE(parsed.l2_valid);
    }
  }
}

TEST(Parse, CorruptIpChecksumDropsL3) {
  Packet packet = make_udp(flow(), 100);
  packet.frame()[kEthHeaderSize + 8] ^= 0x5a;  // mangle TTL
  const ParsedPacket parsed = parse_packet(packet);
  EXPECT_TRUE(parsed.l2_valid);
  EXPECT_FALSE(parsed.ipv4);
  EXPECT_FALSE(parsed.udp);
}

TEST(Parse, UnknownEtherTypeLeavesL3Empty) {
  const Packet packet = make_raw(flow().eth_src, flow().eth_dst, 0x88b5, Bytes(46, 1));
  const ParsedPacket parsed = parse_packet(packet);
  EXPECT_TRUE(parsed.l2_valid);
  EXPECT_EQ(parsed.eth_type, 0x88b5);
  EXPECT_FALSE(parsed.ipv4);
  EXPECT_FALSE(parsed.arp);
}

TEST(Parse, ToStringMentionsLayers) {
  const Packet udp = make_udp(flow(), 64);
  EXPECT_NE(parse_packet(udp).to_string().find("udp"), std::string::npos);
  Packet tagged = make_udp(flow(), 64);
  vlan_push(tagged.frame(), VlanTag{55, 0, false});
  EXPECT_NE(parse_packet(tagged).to_string().find("vlan 55"), std::string::npos);
}

TEST(Parse, HexdumpContainsOffsets) {
  const Packet packet = make_udp(flow(), 64);
  const std::string dump = packet.hexdump();
  EXPECT_NE(dump.find("0000:"), std::string::npos);
  EXPECT_NE(dump.find("0030:"), std::string::npos);
}

TEST(Parse, HexdumpBoundedTruncates) {
  const Packet packet = make_udp(flow(), 256);
  const std::string dump = packet.hexdump(32);
  EXPECT_NE(dump.find("0000:"), std::string::npos);
  EXPECT_EQ(dump.find("0020:"), std::string::npos);  // bytes past the bound are elided
  EXPECT_NE(dump.find("32 of 256 bytes"), std::string::npos);
  // The unbounded form dumps everything and adds no truncation note.
  const std::string full = packet.hexdump();
  EXPECT_NE(full.find("00f0:"), std::string::npos);
  EXPECT_EQ(full.find("bytes)"), std::string::npos);
}

}  // namespace
}  // namespace harmless::net

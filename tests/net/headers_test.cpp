// Header-level serialization tests: Ethernet, 802.1Q, ARP, IPv4
// (checksums), UDP/TCP/ICMP.
#include <gtest/gtest.h>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/ip.hpp"
#include "net/l4.hpp"
#include "net/vlan.hpp"

namespace harmless::net {
namespace {

const MacAddr kSrc = MacAddr::from_u64(0x020000000001);
const MacAddr kDst = MacAddr::from_u64(0x020000000002);

Bytes eth_frame(std::uint16_t ether_type, std::size_t payload = 50) {
  Bytes frame(kEthHeaderSize + payload, 0);
  EthernetHeader{kDst, kSrc, ether_type}.write(frame);
  return frame;
}

TEST(Ethernet, WriteParseRoundTrip) {
  const Bytes frame = eth_frame(0x0800);
  const auto parsed = EthernetHeader::parse(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src, kSrc);
  EXPECT_EQ(parsed->dst, kDst);
  EXPECT_EQ(parsed->ether_type, 0x0800);
}

TEST(Ethernet, ParseRejectsRunt) {
  const Bytes runt(13, 0);
  EXPECT_FALSE(EthernetHeader::parse(runt));
}

TEST(Vlan, TciPackUnpack) {
  const VlanTag tag{101, 5, true};
  EXPECT_EQ(VlanTag::from_tci(tag.tci()), tag);
  EXPECT_EQ(tag.tci() & 0x0fff, 101);
}

TEST(Vlan, PushInsertsTagAndPreservesType) {
  Bytes frame = eth_frame(0x0800);
  const std::size_t original = frame.size();
  vlan_push(frame, VlanTag{101, 0, false});
  EXPECT_EQ(frame.size(), original + 4);
  const auto tag = vlan_peek(frame);
  ASSERT_TRUE(tag);
  EXPECT_EQ(tag->vid, 101);
  // Inner EtherType slid to offset 16.
  EXPECT_EQ(rd16(frame, 16), 0x0800);
  // MACs untouched.
  const auto eth = EthernetHeader::parse(frame);
  EXPECT_EQ(eth->src, kSrc);
  EXPECT_EQ(eth->dst, kDst);
}

TEST(Vlan, PopRestoresOriginalFrame) {
  Bytes frame = eth_frame(0x0800);
  const Bytes original = frame;
  vlan_push(frame, VlanTag{202, 3, false});
  const auto popped = vlan_pop(frame);
  ASSERT_TRUE(popped);
  EXPECT_EQ(popped->vid, 202);
  EXPECT_EQ(popped->pcp, 3);
  EXPECT_EQ(frame, original);
}

TEST(Vlan, PopUntaggedIsNoop) {
  Bytes frame = eth_frame(0x0800);
  const Bytes original = frame;
  EXPECT_FALSE(vlan_pop(frame));
  EXPECT_EQ(frame, original);
}

TEST(Vlan, QinQStacking) {
  Bytes frame = eth_frame(0x0800);
  vlan_push(frame, VlanTag{100, 0, false});
  vlan_push(frame, VlanTag{200, 0, false});
  EXPECT_EQ(vlan_peek(frame)->vid, 200);  // outermost
  vlan_pop(frame);
  EXPECT_EQ(vlan_peek(frame)->vid, 100);
}

TEST(Vlan, SetVidRewritesInPlace) {
  Bytes frame = eth_frame(0x0800);
  EXPECT_FALSE(vlan_set_vid(frame, 5));  // untagged
  vlan_push(frame, VlanTag{100, 6, false});
  EXPECT_TRUE(vlan_set_vid(frame, 105));
  const auto tag = vlan_peek(frame);
  EXPECT_EQ(tag->vid, 105);
  EXPECT_EQ(tag->pcp, 6);  // priority preserved
}

TEST(Arp, SerializeParseRoundTrip) {
  ArpPacket arp;
  arp.op = ArpOp::kRequest;
  arp.sender_mac = kSrc;
  arp.sender_ip = Ipv4Addr(10, 0, 0, 1);
  arp.target_ip = Ipv4Addr(10, 0, 0, 2);
  const Bytes wire = arp.serialize();
  EXPECT_EQ(wire.size(), kArpPayloadSize);
  const auto parsed = ArpPacket::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->op, ArpOp::kRequest);
  EXPECT_EQ(parsed->sender_mac, kSrc);
  EXPECT_EQ(parsed->sender_ip, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(parsed->target_ip, Ipv4Addr(10, 0, 0, 2));
}

TEST(Arp, ParseRejectsWrongTypes) {
  ArpPacket arp;
  Bytes wire = arp.serialize();
  wire[0] = 9;  // htype
  EXPECT_FALSE(ArpPacket::parse(wire));
  wire = arp.serialize();
  wire[7] = 9;  // op = 9
  EXPECT_FALSE(ArpPacket::parse(wire));
  EXPECT_FALSE(ArpPacket::parse(Bytes(10, 0)));
}

TEST(Ipv4Header, ChecksumValidatedOnParse) {
  Ipv4Header ip;
  ip.protocol = 17;
  ip.src = Ipv4Addr(1, 2, 3, 4);
  ip.dst = Ipv4Addr(5, 6, 7, 8);
  ip.total_length = 40;
  Bytes wire = ip.serialize();
  EXPECT_EQ(internet_checksum(wire), 0);  // valid header sums to zero
  ASSERT_TRUE(Ipv4Header::parse(wire));
  wire[8] ^= 0xff;  // corrupt TTL
  EXPECT_FALSE(Ipv4Header::parse(wire));
}

TEST(Ipv4Header, ParseRejectsBadVersionAndLength) {
  Ipv4Header ip;
  ip.total_length = 20;
  Bytes wire = ip.serialize();
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(wire));
  EXPECT_FALSE(Ipv4Header::parse(Bytes(10, 0)));
}

TEST(Ipv4Header, RoundTripFields) {
  Ipv4Header ip;
  ip.dscp = 46;  // EF
  ip.ttl = 17;
  ip.protocol = 6;
  ip.identification = 0xbeef;
  ip.total_length = 120;
  ip.src = Ipv4Addr(172, 16, 0, 9);
  ip.dst = Ipv4Addr(172, 16, 0, 10);
  const auto parsed = Ipv4Header::parse(ip.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dscp, 46);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->protocol, 6);
  EXPECT_EQ(parsed->identification, 0xbeef);
  EXPECT_EQ(parsed->total_length, 120);
  EXPECT_EQ(parsed->src, ip.src);
  EXPECT_EQ(parsed->dst, ip.dst);
}

TEST(InternetChecksum, OddLengthHandled) {
  const Bytes odd{0x12, 0x34, 0x56};
  // Manually: 0x1234 + 0x5600 = 0x6834 -> ~0x6834
  EXPECT_EQ(internet_checksum(odd), static_cast<std::uint16_t>(~0x6834));
}

TEST(Udp, SerializeParseAndChecksum) {
  const Ipv4Addr src(10, 0, 0, 1), dst(10, 0, 0, 2);
  const Bytes payload{'h', 'i'};
  const Bytes segment = UdpHeader::serialize(1111, 2222, payload, src, dst);
  const auto parsed = UdpHeader::parse(segment);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 1111);
  EXPECT_EQ(parsed->dst_port, 2222);
  EXPECT_EQ(parsed->length, kUdpHeaderSize + 2);
  // Checksum over pseudo-header + segment must verify to zero.
  Bytes pseudo;
  put32(pseudo, src.value());
  put32(pseudo, dst.value());
  put8(pseudo, 0);
  put8(pseudo, 17);
  put16(pseudo, static_cast<std::uint16_t>(segment.size()));
  pseudo.insert(pseudo.end(), segment.begin(), segment.end());
  EXPECT_EQ(internet_checksum(pseudo), 0);
}

TEST(Udp, ParseRejectsBadLength) {
  Bytes segment(kUdpHeaderSize, 0);
  wr16(segment, 4, 4);  // length < header
  EXPECT_FALSE(UdpHeader::parse(segment));
  wr16(segment, 4, 100);  // length > buffer
  EXPECT_FALSE(UdpHeader::parse(segment));
}

TEST(Tcp, SerializeParseRoundTrip) {
  TcpHeader header;
  header.src_port = 40000;
  header.dst_port = 80;
  header.seq = 0x11223344;
  header.ack = 0x55667788;
  header.flags = kTcpSyn | kTcpAck;
  const Bytes segment =
      TcpHeader::serialize(header, {}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  const auto parsed = TcpHeader::parse(segment);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 40000);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->seq, 0x11223344u);
  EXPECT_EQ(parsed->ack, 0x55667788u);
  EXPECT_EQ(parsed->flags, kTcpSyn | kTcpAck);
}

TEST(Icmp, EchoRoundTrip) {
  IcmpHeader icmp;
  icmp.type = IcmpType::kEchoRequest;
  icmp.identifier = 7;
  icmp.sequence = 9;
  const Bytes segment = IcmpHeader::serialize(icmp, Bytes(8, 0xaa));
  EXPECT_EQ(internet_checksum(segment), 0);
  const auto parsed = IcmpHeader::parse(segment);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed->identifier, 7);
  EXPECT_EQ(parsed->sequence, 9);
}

TEST(Icmp, ParseRejectsUnknownType) {
  Bytes segment(kIcmpHeaderSize, 0);
  segment[0] = 13;  // timestamp, unsupported
  EXPECT_FALSE(IcmpHeader::parse(segment));
}

}  // namespace
}  // namespace harmless::net
